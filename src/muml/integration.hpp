#pragma once
// From pattern to integration scenario: when a legacy component plays one
// role of a verified coordination pattern, the *context* of the integration
// problem (paper Sec. 3, M_a^c) is the composition of all other roles plus
// the connector, and the property is the pattern constraint conjoined with
// the role invariants. This builder derives both mechanically from the
// pattern model.

#include "automata/automaton.hpp"
#include "muml/model.hpp"

namespace mui::muml {

struct IntegrationScenario {
  /// Composition of every role except the legacy one (plus the channel
  /// automaton for Channel connectors).
  automata::Automaton context;
  /// Pattern constraint ∧ all role invariants (non-empty ones), as CCTL
  /// text ready for synthesis::IntegrationConfig::property.
  std::string property;
};

/// Builds the scenario for the legacy component playing
/// `pattern.roles[legacyRoleIdx]`. Throws std::out_of_range for a bad index
/// and std::invalid_argument for patterns whose remaining parts cannot be
/// composed.
IntegrationScenario makeIntegrationScenario(
    const CoordinationPattern& pattern, std::size_t legacyRoleIdx,
    const automata::SignalTableRef& signals,
    const automata::SignalTableRef& props);

}  // namespace mui::muml
