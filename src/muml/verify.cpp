#include "muml/verify.hpp"

#include <algorithm>

#include "ctl/checker.hpp"
#include "ctl/parser.hpp"

namespace mui::muml {

PatternVerification verifyPattern(const CoordinationPattern& pattern,
                                  const automata::SignalTableRef& signals,
                                  const automata::SignalTableRef& props) {
  std::vector<automata::Automaton> parts;
  parts.reserve(pattern.roles.size() + 1);
  for (const auto& role : pattern.roles) {
    parts.push_back(role.behavior.compile(signals, props, role.name));
  }
  if (pattern.connector.kind == ConnectorSpec::Kind::Channel) {
    parts.push_back(makeChannel(signals, props, pattern.connector.channel));
  }
  std::vector<const automata::Automaton*> ptrs;
  for (const auto& p : parts) ptrs.push_back(&p);

  PatternVerification out{false, false, {}, {}, automata::composeAll(ptrs)};

  // Conjoin constraint and role invariants for the headline verdict.
  ctl::FormulaPtr phi;
  const auto conjoin = [&](const std::string& text) {
    if (text.empty()) return;
    auto f = ctl::parseFormula(text);
    phi = phi ? ctl::Formula::mkAnd(std::move(phi), std::move(f))
              : std::move(f);
  };
  conjoin(pattern.constraint);
  for (const auto& role : pattern.roles) conjoin(role.invariant);

  ctl::VerifyOptions opts;
  opts.requireDeadlockFree = true;
  out.details = ctl::verify(out.composed.automaton, phi, opts);

  // Individual flags for reporting.
  ctl::Checker checker(out.composed.automaton);
  out.constraintHolds = pattern.constraint.empty() ||
                        checker.holds(ctl::parseFormula(pattern.constraint));
  bool anyDeadlock = false;
  for (automata::StateId s = 0; s < out.composed.automaton.stateCount(); ++s) {
    if (checker.isDeadlockState(s)) {
      anyDeadlock = true;
      break;
    }
  }
  out.deadlockFree = !anyDeadlock;
  for (const auto& role : pattern.roles) {
    if (!role.invariant.empty()) {
      out.roleInvariants.emplace_back(
          role.name, checker.holds(ctl::parseFormula(role.invariant)));
    }
  }
  return out;
}

automata::RefinementResult checkPortRefinement(
    const Port& port, const Role& role,
    const automata::SignalTableRef& signals,
    const automata::SignalTableRef& props, automata::InteractionMode mode,
    bool ignoreRefusals) {
  const automata::Automaton roleAut =
      role.behavior.compile(signals, props, role.name);
  const auto alphabet =
      automata::makeAlphabet(roleAut.inputs(), roleAut.outputs(), mode);

  // Relevant propositions: the role's top-level locations.
  std::vector<std::string> relevant;
  for (rtsc::LocationId l = 0; l < role.behavior.locationCount(); ++l) {
    const std::string& n = role.behavior.location(l).name;
    const std::string top = n.substr(0, n.find("::"));
    const std::string prop = role.name + "." + top;
    if (std::find(relevant.begin(), relevant.end(), prop) == relevant.end()) {
      relevant.push_back(prop);
    }
  }
  automata::RefinementOptions opts;
  opts.relevantProps = std::move(relevant);
  opts.ignoreRefusals = ignoreRefusals;
  return automata::checkRefinement(port.behavior, roleAut, alphabet, opts);
}

}  // namespace mui::muml
