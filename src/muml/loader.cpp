#include "muml/loader.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/parse.hpp"

namespace mui::muml {

namespace {

using util::Cursor;

class Loader {
 public:
  Loader(Model& model, std::string_view text, std::string_view sourceName)
      : model_(model), cur_(text, std::string(sourceName)) {}

  void run() {
    // Semantic throws from the model classes (e.g. nondeterministic
    // transitions rejected by Automaton::addTransition) get the current
    // source location attached on the way out.
    try {
      runTopLevel();
    } catch (const util::SemanticError&) {
      throw;
    } catch (const std::invalid_argument& e) {
      cur_.failSemantic(e.what());
    }
  }

 private:
  /// Location of the next token — recorded per definition so that lint
  /// diagnostics (mui::analysis) can point back into the source file.
  util::SourceLoc here() {
    cur_.skipWs();
    return {cur_.sourceName(), cur_.line(), cur_.col()};
  }

  /// `allow MUI003 MUI006;` — records lint-rule suppressions for `entity`.
  void parseAllow(const std::string& entity) {
    do {
      model_.source.allowedRules[entity].insert(cur_.identifier());
    } while (!peekStatementEnd());
    cur_.expect(";");
  }

  void runTopLevel() {
    while (true) {
      cur_.skipWs();
      if (cur_.atEnd()) break;
      if (cur_.tryKeyword("automaton")) {
        parseAutomaton();
      } else if (cur_.tryKeyword("rtsc")) {
        parseRtsc();
      } else if (cur_.tryKeyword("pattern")) {
        parsePattern();
      } else if (cur_.tryKeyword("legacy")) {
        parseLegacy();
      } else {
        cur_.fail("expected 'automaton', 'rtsc', 'pattern', or 'legacy'");
      }
    }
  }

  // ---- automaton -----------------------------------------------------------

  void parseAutomaton() {
    const util::SourceLoc loc = here();
    const std::string name = cur_.identifier();
    if (model_.automata.count(name)) {
      cur_.failSemantic("duplicate automaton '" + name +
                        "' (an automaton with this name is already defined)");
    }
    if (model_.externals.count(name)) {
      cur_.failSemantic("automaton '" + name +
                        "' clashes with a legacy external of the same name "
                        "(hidden-component names must be unambiguous)");
    }
    model_.source.automata.emplace(name, loc);
    automata::Automaton a(model_.signals, model_.props, name);
    cur_.expect("{");
    while (!cur_.tryConsume("}")) {
      if (cur_.tryKeyword("input")) {
        signalList([&](const std::string& s) { a.addInput(s); });
      } else if (cur_.tryKeyword("output")) {
        signalList([&](const std::string& s) { a.addOutput(s); });
      } else if (cur_.tryKeyword("initial")) {
        do {
          a.markInitial(ensureState(a, cur_.identifier()));
        } while (!peekStatementEnd());
        cur_.expect(";");
      } else if (cur_.tryKeyword("state")) {
        const automata::StateId s = ensureState(a, cur_.identifier());
        if (cur_.tryKeyword("labels")) {
          do {
            a.addLabel(s, cur_.identifier());
          } while (!peekStatementEnd());
        }
        cur_.expect(";");
      } else if (cur_.tryKeyword("allow")) {
        parseAllow(name);
      } else {
        parseAutomatonTransition(a);
      }
    }
    model_.automata.emplace(name, std::move(a));
  }

  void parseAutomatonTransition(automata::Automaton& a) {
    const util::SourceLoc loc = here();
    const auto from = ensureState(a, cur_.identifier());
    cur_.expect("->");
    const auto to = ensureState(a, cur_.identifier());
    cur_.expect(":");
    automata::Interaction x;
    // Input list up to '/', output list up to ';'. Both may be empty.
    while (!cur_.tryConsume("/")) {
      if (peekStatementEnd()) break;
      x.in.set(model_.signals->intern(cur_.identifier()));
    }
    while (!peekStatementEnd()) {
      x.out.set(model_.signals->intern(cur_.identifier()));
    }
    cur_.expect(";");
    // A textually repeated transition is kept once; the occurrence is
    // recorded so `mui lint` can surface it (rule MUI006).
    if (a.hasTransitionTo(from, x, to)) {
      model_.source.duplicateTransitions.push_back(
          {a.name(),
           a.stateName(from) + " -> " + a.stateName(to) + " : " +
               automata::toString(x, *model_.signals),
           loc});
      return;
    }
    a.addTransition(from, std::move(x), to);
  }

  static automata::StateId ensureState(automata::Automaton& a,
                                       const std::string& name) {
    if (auto s = a.stateByName(name)) return *s;
    const automata::StateId s = a.addState(name);
    a.labelWithStateName(s);
    return s;
  }

  // ---- rtsc ---------------------------------------------------------------

  void parseRtsc() {
    const util::SourceLoc loc = here();
    const std::string name = cur_.identifier();
    if (model_.statecharts.count(name)) {
      cur_.failSemantic("duplicate rtsc '" + name +
                        "' (an rtsc with this name is already defined)");
    }
    model_.source.statecharts.emplace(name, loc);
    rtsc::RealTimeStatechart sc(name);
    clockNames_.clear();
    cur_.expect("{");
    while (!cur_.tryConsume("}")) {
      if (cur_.tryKeyword("input")) {
        signalList([&](const std::string& s) { sc.declareInput(s); });
      } else if (cur_.tryKeyword("output")) {
        signalList([&](const std::string& s) { sc.declareOutput(s); });
      } else if (cur_.tryKeyword("clock")) {
        do {
          const std::string clock = cur_.identifier();
          sc.addClock(clock);
          clockNames_.push_back(clock);
        } while (!peekStatementEnd());
        cur_.expect(";");
      } else if (cur_.tryKeyword("location")) {
        const std::string loc = cur_.identifier();
        rtsc::Guard inv;
        if (cur_.tryKeyword("invariant")) inv = parseGuard(sc);
        sc.addLocation(loc, std::move(inv));
        cur_.expect(";");
      } else if (cur_.tryKeyword("initial")) {
        sc.setInitial(requireLocation(sc, cur_.identifier()));
        cur_.expect(";");
      } else if (cur_.tryKeyword("allow")) {
        parseAllow(name);
      } else {
        parseRtscTransition(sc);
      }
    }
    sc.checkWellFormed();
    model_.statecharts.emplace(name, std::move(sc));
  }

  void parseRtscTransition(rtsc::RealTimeStatechart& sc) {
    rtsc::RtscTransition t;
    t.from = requireLocation(sc, cur_.identifier());
    cur_.expect("->");
    t.to = requireLocation(sc, cur_.identifier());
    cur_.expect(":");
    while (!peekStatementEnd()) {
      if (cur_.tryKeyword("trigger")) {
        t.trigger = cur_.identifier();
      } else if (cur_.tryKeyword("emit")) {
        t.effects.push_back(cur_.identifier());
      } else if (cur_.tryKeyword("guard")) {
        for (auto& c : parseGuard(sc)) t.guard.push_back(c);
      } else if (cur_.tryKeyword("reset")) {
        t.resets.push_back(requireClock(sc, cur_.identifier()));
      } else {
        cur_.fail("expected 'trigger', 'emit', 'guard', or 'reset'");
      }
    }
    cur_.expect(";");
    sc.addTransition(std::move(t));
  }

  rtsc::Guard parseGuard(const rtsc::RealTimeStatechart& sc) {
    rtsc::Guard g;
    do {
      rtsc::ClockConstraint c;
      c.clock = requireClock(sc, cur_.identifier());
      if (cur_.tryConsume("<=")) {
        c.rel = rtsc::ClockConstraint::Rel::Le;
      } else if (cur_.tryConsume("<")) {
        c.rel = rtsc::ClockConstraint::Rel::Lt;
      } else if (cur_.tryConsume(">=")) {
        c.rel = rtsc::ClockConstraint::Rel::Ge;
      } else if (cur_.tryConsume(">")) {
        c.rel = rtsc::ClockConstraint::Rel::Gt;
      } else if (cur_.tryConsume("==")) {
        c.rel = rtsc::ClockConstraint::Rel::Eq;
      } else {
        cur_.fail("expected clock relation (<=, <, >=, >, ==)");
      }
      c.bound = static_cast<std::uint32_t>(cur_.integer());
      g.push_back(c);
    } while (cur_.tryConsume("&&"));
    return g;
  }

  rtsc::LocationId requireLocation(const rtsc::RealTimeStatechart& sc,
                                   const std::string& name) {
    if (auto l = sc.locationByName(name)) return *l;
    cur_.failSemantic("rtsc '" + sc.name() + "': unknown location '" + name +
                      "' (declare locations before use)");
  }

  rtsc::ClockId requireClock(const rtsc::RealTimeStatechart& sc,
                             const std::string& name) {
    // Clock ids are indices in declaration order; names are tracked here
    // for the statechart currently being parsed.
    for (rtsc::ClockId c = 0; c < clockNames_.size(); ++c) {
      if (clockNames_[c] == name) return c;
    }
    cur_.failSemantic("rtsc '" + sc.name() + "': unknown clock '" + name +
                      "'");
  }

  // ---- pattern -------------------------------------------------------------

  void parsePattern() {
    const util::SourceLoc loc = here();
    const std::string name = cur_.identifier();
    if (model_.patterns.count(name)) {
      cur_.failSemantic("duplicate pattern '" + name +
                        "' (a pattern with this name is already defined)");
    }
    model_.source.patterns.emplace(name, loc);
    CoordinationPattern p;
    p.name = name;
    cur_.expect("{");
    while (!cur_.tryConsume("}")) {
      if (cur_.tryKeyword("role")) {
        Role r;
        r.name = cur_.identifier();
        if (!cur_.tryKeyword("uses")) cur_.fail("expected 'uses'");
        const std::string scName = cur_.identifier();
        const auto it = model_.statecharts.find(scName);
        if (it == model_.statecharts.end()) {
          cur_.failSemantic("pattern '" + name + "': unknown rtsc '" + scName +
                            "'");
        }
        r.behavior = it->second;
        if (cur_.tryKeyword("invariant")) {
          model_.source.invariants.emplace(name + "." + r.name, here());
          r.invariant = cur_.quotedString();
        }
        cur_.expect(";");
        p.roles.push_back(std::move(r));
      } else if (cur_.tryKeyword("connector")) {
        if (cur_.tryKeyword("direct")) {
          p.connector.kind = ConnectorSpec::Kind::Direct;
        } else if (cur_.tryKeyword("channel")) {
          p.connector.kind = ConnectorSpec::Kind::Channel;
          p.connector.channel.name = name + "_channel";
          while (!peekStatementEnd()) {
            if (cur_.tryKeyword("delay")) {
              p.connector.channel.delay =
                  static_cast<std::uint32_t>(cur_.integer());
            } else if (cur_.tryKeyword("capacity")) {
              p.connector.channel.capacity =
                  static_cast<std::uint32_t>(cur_.integer());
            } else if (cur_.tryKeyword("lossy")) {
              p.connector.channel.lossy = true;
            } else if (cur_.tryKeyword("routes")) {
              while (!peekStatementEnd()) {
                ChannelRoute r;
                r.source = cur_.identifier();
                cur_.expect("->");
                r.destination = cur_.identifier();
                p.connector.channel.routes.push_back(std::move(r));
              }
            } else {
              cur_.fail("expected channel attribute");
            }
          }
        } else {
          cur_.fail("expected 'direct' or 'channel'");
        }
        cur_.expect(";");
      } else if (cur_.tryKeyword("constraint")) {
        model_.source.constraints.emplace(name, here());
        p.constraint = cur_.quotedString();
        cur_.expect(";");
      } else if (cur_.tryKeyword("allow")) {
        parseAllow(name);
      } else {
        cur_.fail("expected 'role', 'connector', 'constraint', or 'allow'");
      }
    }
    model_.patterns.emplace(name, std::move(p));
  }

  // ---- legacy external -----------------------------------------------------

  /// `legacy <name> external "<binary>" { input ...; output ...; arg "...";
  /// deadline-ms N; max-respawns N; allow ...; }` — an out-of-process
  /// legacy component (docs/ADAPTERS.md). Parsing records the clause; the
  /// binary is resolved and validated lazily (muml/external.hpp) so loading
  /// a model never touches the filesystem.
  void parseLegacy() {
    const util::SourceLoc loc = here();
    const std::string name = cur_.identifier();
    if (model_.externals.count(name)) {
      cur_.failSemantic("duplicate legacy external '" + name +
                        "' (an external with this name is already defined)");
    }
    if (model_.automata.count(name)) {
      cur_.failSemantic("legacy external '" + name +
                        "' clashes with an automaton of the same name "
                        "(hidden-component names must be unambiguous)");
    }
    if (!cur_.tryKeyword("external")) cur_.fail("expected 'external'");
    model_.source.externals.emplace(name, loc);
    ExternalLegacy ext;
    ext.name = name;
    ext.path = cur_.quotedString();
    if (ext.path.empty()) {
      cur_.failSemantic("legacy external '" + name +
                        "': the adapter binary path must not be empty");
    }
    cur_.expect("{");
    while (!cur_.tryConsume("}")) {
      if (cur_.tryKeyword("input")) {
        signalList(
            [&](const std::string& s) { ext.inputs.set(model_.signals->intern(s)); });
      } else if (cur_.tryKeyword("output")) {
        signalList([&](const std::string& s) {
          ext.outputs.set(model_.signals->intern(s));
        });
      } else if (cur_.tryKeyword("arg")) {
        ext.args.push_back(cur_.quotedString());
        cur_.expect(";");
      } else if (cur_.tryKeyword("deadline-ms")) {
        ext.stepDeadlineMs = static_cast<std::uint64_t>(cur_.integer());
        if (ext.stepDeadlineMs == 0) {
          cur_.failSemantic("legacy external '" + name +
                            "': deadline-ms must be positive");
        }
        cur_.expect(";");
      } else if (cur_.tryKeyword("max-respawns")) {
        ext.maxRespawns = cur_.integer();
        cur_.expect(";");
      } else if (cur_.tryKeyword("allow")) {
        parseAllow(name);
      } else {
        cur_.fail(
            "expected 'input', 'output', 'arg', 'deadline-ms', "
            "'max-respawns', or 'allow'");
      }
    }
    model_.externals.emplace(name, std::move(ext));
  }

  // ---- shared helpers ------------------------------------------------------

  template <typename F>
  void signalList(F&& declare) {
    do {
      declare(cur_.identifier());
    } while (!peekStatementEnd());
    cur_.expect(";");
  }

  /// True when the next token is ';' (does not consume it).
  bool peekStatementEnd() {
    cur_.skipWs();
    return cur_.peek() == ';';
  }

  Model& model_;
  Cursor cur_;
  // Clock names of the rtsc currently being parsed (ids are indices).
  std::vector<std::string> clockNames_;
};

}  // namespace

Model loadModel(std::string_view text, std::string_view sourceName) {
  Model m;
  m.signals = std::make_shared<automata::SignalTable>();
  m.props = std::make_shared<automata::SignalTable>();
  loadModelInto(m, text, sourceName);
  return m;
}

Model loadModelFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open model file '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return loadModel(buf.str(), path);
}

void loadModelInto(Model& model, std::string_view text,
                   std::string_view sourceName) {
  Loader(model, text, sourceName).run();
}

}  // namespace mui::muml
