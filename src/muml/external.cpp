#include "muml/external.hpp"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "util/parse.hpp"

namespace mui::muml {

namespace {

namespace fs = std::filesystem;

util::SourceLoc locOf(const ExternalLegacy& ext, const ModelSource& source) {
  const auto it = source.externals.find(ext.name);
  return it != source.externals.end() ? it->second : util::SourceLoc{};
}

[[noreturn]] void failAt(const util::SourceLoc& loc, const std::string& msg) {
  throw util::SemanticError(msg, loc.file, loc.line, loc.col);
}

bool isExecutableFile(const fs::path& p) {
  std::error_code ec;
  return fs::is_regular_file(p, ec) && ::access(p.c_str(), X_OK) == 0;
}

std::string renderNames(const automata::SignalSet& set,
                        const automata::SignalTable& table) {
  std::string out;
  set.forEach([&](std::size_t bit) {
    if (!out.empty()) out += ' ';
    out += table.name(static_cast<util::NameId>(bit));
  });
  return out;
}

}  // namespace

std::string resolveExternalBinary(const ExternalLegacy& ext,
                                  const ModelSource& source) {
  const util::SourceLoc loc = locOf(ext, source);
  std::vector<fs::path> tried;
  const auto candidate = [&](const fs::path& p) -> std::string {
    tried.push_back(p);
    std::error_code ec;
    if (!fs::exists(p, ec)) return {};
    if (!isExecutableFile(p)) {
      failAt(loc, "legacy external '" + ext.name + "': '" + p.string() +
                      "' exists but is not an executable file");
    }
    return p.string();
  };

  const fs::path declared(ext.path);
  if (declared.is_absolute()) {
    if (auto hit = candidate(declared); !hit.empty()) return hit;
  } else {
    // Relative to the declaring model file's directory first: models ship
    // next to their adapters.
    if (!loc.file.empty()) {
      const fs::path dir = fs::path(loc.file).parent_path();
      if (auto hit = candidate(dir / declared); !hit.empty()) return hit;
    }
    // Then every directory of MUI_ADAPTER_PATH (colon separated).
    if (const char* env = std::getenv("MUI_ADAPTER_PATH")) {
      std::istringstream dirs(env);
      std::string dir;
      while (std::getline(dirs, dir, ':')) {
        if (dir.empty()) continue;
        if (auto hit = candidate(fs::path(dir) / declared); !hit.empty()) {
          return hit;
        }
      }
    }
  }

  std::string msg = "legacy external '" + ext.name +
                    "': adapter binary not found; tried";
  for (const auto& p : tried) msg += " '" + p.string() + "'";
  msg += " (relative paths resolve against the model's directory and "
         "MUI_ADAPTER_PATH)";
  failAt(loc, msg);
}

void checkExternalInterface(const ExternalLegacy& ext, const Role& role,
                            const ModelSource& source,
                            const automata::SignalTableRef& signals) {
  const util::SourceLoc loc = locOf(ext, source);
  // Role inputs are what the role *receives*; the legacy component plays
  // the role, so the sets must coincide side by side.
  automata::SignalSet roleIn, roleOut;
  for (const auto& s : role.behavior.inputs()) roleIn.set(signals->intern(s));
  for (const auto& s : role.behavior.outputs()) {
    roleOut.set(signals->intern(s));
  }
  if (!(ext.inputs == roleIn)) {
    failAt(loc, "legacy external '" + ext.name + "' declares inputs {" +
                    renderNames(ext.inputs, *signals) + "} but role '" +
                    role.name + "' requires {" +
                    renderNames(roleIn, *signals) + "}");
  }
  if (!(ext.outputs == roleOut)) {
    failAt(loc, "legacy external '" + ext.name + "' declares outputs {" +
                    renderNames(ext.outputs, *signals) + "} but role '" +
                    role.name + "' requires {" +
                    renderNames(roleOut, *signals) + "}");
  }
}

}  // namespace mui::muml
