#pragma once
// The MECHATRONIC UML metamodel subset used by the paper (Sec. "Modeling"):
// coordination patterns with roles, connectors, constraints and role
// invariants; components with ports refining roles.

#include <map>
#include <string>
#include <vector>

#include "automata/automaton.hpp"
#include "muml/channel.hpp"
#include "rtsc/rtsc.hpp"

namespace mui::muml {

/// A pattern role: protocol behavior (an RTSC) plus an optional role
/// invariant (timed ACTL, paper Fig. 1).
struct Role {
  std::string name;
  rtsc::RealTimeStatechart behavior;
  std::string invariant;  // CCTL text; empty = none
};

/// Connector between the roles. Direct connectors hand messages over
/// synchronously (the composition's matching condition is the handover);
/// Channel connectors insert an explicit QoS automaton (delay / capacity /
/// loss, see channel.hpp).
struct ConnectorSpec {
  enum class Kind { Direct, Channel };
  Kind kind = Kind::Direct;
  ChannelSpec channel;  // used when kind == Channel
};

/// A coordination pattern (paper Fig. 1): roles, a connector, and the
/// overall pattern constraint.
struct CoordinationPattern {
  std::string name;
  std::vector<Role> roles;
  ConnectorSpec connector;
  std::string constraint;  // CCTL text; empty = none
};

/// A component port: the refinement of one pattern role.
struct Port {
  std::string name;
  std::string roleName;
  automata::Automaton behavior;
};

/// A component: ports refining the roles of the patterns it participates in.
struct Component {
  std::string name;
  std::vector<Port> ports;
};

/// Container produced by the .muml loader: named automata, statecharts and
/// patterns over one shared pair of tables.
struct Model {
  automata::SignalTableRef signals;
  automata::SignalTableRef props;
  std::map<std::string, automata::Automaton> automata;
  std::map<std::string, rtsc::RealTimeStatechart> statecharts;
  std::map<std::string, CoordinationPattern> patterns;
};

}  // namespace mui::muml
