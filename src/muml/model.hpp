#pragma once
// The MECHATRONIC UML metamodel subset used by the paper (Sec. "Modeling"):
// coordination patterns with roles, connectors, constraints and role
// invariants; components with ports refining roles.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "automata/automaton.hpp"
#include "muml/channel.hpp"
#include "rtsc/rtsc.hpp"
#include "util/parse.hpp"

namespace mui::muml {

/// A pattern role: protocol behavior (an RTSC) plus an optional role
/// invariant (timed ACTL, paper Fig. 1).
struct Role {
  std::string name;
  rtsc::RealTimeStatechart behavior;
  std::string invariant;  // CCTL text; empty = none
};

/// Connector between the roles. Direct connectors hand messages over
/// synchronously (the composition's matching condition is the handover);
/// Channel connectors insert an explicit QoS automaton (delay / capacity /
/// loss, see channel.hpp).
struct ConnectorSpec {
  enum class Kind { Direct, Channel };
  Kind kind = Kind::Direct;
  ChannelSpec channel;  // used when kind == Channel
};

/// A coordination pattern (paper Fig. 1): roles, a connector, and the
/// overall pattern constraint.
struct CoordinationPattern {
  std::string name;
  std::vector<Role> roles;
  ConnectorSpec connector;
  std::string constraint;  // CCTL text; empty = none
};

/// A component port: the refinement of one pattern role.
struct Port {
  std::string name;
  std::string roleName;
  automata::Automaton behavior;
};

/// A component: ports refining the roles of the patterns it participates in.
struct Component {
  std::string name;
  std::vector<Port> ports;
};

/// An out-of-process legacy component declared by a `legacy <name> external
/// "<binary>" { ... }` clause: an adapter binary speaking the JSONL stdio
/// protocol of docs/ADAPTERS.md, plus its declared I/O interface (always
/// known from the architectural model, paper Sec. 3). The path is kept as
/// written; resolution against the declaring file's directory and
/// MUI_ADAPTER_PATH happens in resolveExternalBinary (external.hpp), not at
/// parse time.
struct ExternalLegacy {
  static constexpr std::size_t kDefaultRespawns =
      static_cast<std::size_t>(-1);  // sentinel: harness default

  std::string name;
  std::string path;
  /// Extra argv entries (`arg "...";` clauses). The literal `%model%`
  /// expands to the declaring .muml file's path when the process is built.
  std::vector<std::string> args;
  std::uint64_t stepDeadlineMs = 0;  // 0 = harness default
  std::size_t maxRespawns = kDefaultRespawns;
  automata::SignalSet inputs;
  automata::SignalSet outputs;
};

/// Side information the loader records about where each definition came
/// from — consumed by the static analysis layer (mui::analysis) to attach
/// file:line:col locations to its diagnostics, to surface transitions that
/// were written twice (the loader keeps one copy), and to honor per-entity
/// `allow MUIxxx;` lint suppressions. Models built programmatically leave
/// this empty; every consumer treats absent entries as "location unknown".
struct ModelSource {
  /// A transition that textually duplicated an existing identical one; the
  /// loader dropped the copy and recorded it here.
  struct DuplicateTransition {
    std::string automaton;  // owning automaton name
    std::string text;       // rendering such as "s0 -> s1 : a / x"
    util::SourceLoc loc;    // where the duplicate occurrence starts
  };

  std::map<std::string, util::SourceLoc> automata;     // by automaton name
  std::map<std::string, util::SourceLoc> statecharts;  // by rtsc name
  std::map<std::string, util::SourceLoc> patterns;     // by pattern name
  std::map<std::string, util::SourceLoc> externals;    // by external name
  /// Pattern constraint locations by pattern name; role invariant locations
  /// by "pattern.role".
  std::map<std::string, util::SourceLoc> constraints;
  std::map<std::string, util::SourceLoc> invariants;
  std::vector<DuplicateTransition> duplicateTransitions;
  /// Lint rule ids suppressed per entity (`allow MUI003;` inside an
  /// automaton/rtsc/pattern body), keyed by the entity name.
  std::map<std::string, std::set<std::string>> allowedRules;

  [[nodiscard]] bool allows(const std::string& entity,
                            const std::string& ruleId) const {
    const auto it = allowedRules.find(entity);
    return it != allowedRules.end() && it->second.count(ruleId) != 0;
  }
};

/// Container produced by the .muml loader: named automata, statecharts and
/// patterns over one shared pair of tables.
struct Model {
  automata::SignalTableRef signals;
  automata::SignalTableRef props;
  std::map<std::string, automata::Automaton> automata;
  std::map<std::string, rtsc::RealTimeStatechart> statecharts;
  std::map<std::string, CoordinationPattern> patterns;
  /// Out-of-process legacy declarations. Disjoint from `automata` by
  /// construction (the loader rejects name clashes) so a job's `hidden`
  /// name picks exactly one of the two worlds.
  std::map<std::string, ExternalLegacy> externals;
  ModelSource source;
};

}  // namespace mui::muml
