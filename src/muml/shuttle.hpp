#pragma once
// The RailCab shuttle models — the paper's running example.
//
// The DistanceCoordination pattern (paper Fig. 1) coordinates two successive
// shuttles: the rear shuttle proposes a convoy, the front shuttle rejects or
// starts it; breaking the convoy is symmetric. The safety constraint forbids
// the rear shuttle driving in convoy mode (reduced distance) while the front
// shuttle is in noConvoy mode (and may hence brake with full power):
//
//   AG !(rearRole.convoy && frontRole.noConvoy)
//
// Braking is modeled explicitly: an environment-controlled emergency signal
// sends the front shuttle into full braking (a noConvoy substate) or reduced
// braking (a convoy substate), with clock-bounded braking durations — this
// exercises the timed part of the RTSC semantics.
//
// Besides the pattern roles we provide the hidden *legacy* rear-shuttle
// behaviors used throughout Sec. 3-5 of the paper:
//  - correctRearLegacy(): a deterministic implementation conforming to the
//    rear role (paper Fig. 7 / Listing 1.5);
//  - faultyRearLegacy(): enters convoy mode directly after proposing
//    (paper Fig. 6 / Listings 1.3-1.4), which conflicts with the context.

#include "automata/automaton.hpp"
#include "muml/model.hpp"

namespace mui::muml::shuttle {

// Message vocabulary (rear -> front and front -> rear).
inline constexpr const char* kConvoyProposal = "convoyProposal";
inline constexpr const char* kBreakConvoyProposal = "breakConvoyProposal";
inline constexpr const char* kConvoyProposalRejected = "convoyProposalRejected";
inline constexpr const char* kStartConvoy = "startConvoy";
inline constexpr const char* kBreakConvoyRejected = "breakConvoyRejected";
inline constexpr const char* kBreakConvoyAccepted = "breakConvoyAccepted";
inline constexpr const char* kEmergency = "emergencyF";  // environment input

/// The pattern constraint of Fig. 1.
inline constexpr const char* kPatternConstraint =
    "AG !(rearRole.convoy && frontRole.noConvoy)";

/// The front role statechart (paper Fig. 5, extended with the braking
/// substates): instance name "frontRole".
rtsc::RealTimeStatechart frontRoleStatechart();

/// The rear role protocol statechart: instance name "rearRole".
rtsc::RealTimeStatechart rearRoleStatechart();

/// The DistanceCoordination pattern: both roles, a direct connector, the
/// pattern constraint, and role invariants (response-time guarantees).
CoordinationPattern distanceCoordinationPattern();

/// Compiled front-role automaton — the *context* M_a^c of the integration
/// scenario (paper Sec. 3, Fig. 5).
automata::Automaton frontRoleAutomaton(const automata::SignalTableRef& signals,
                                       const automata::SignalTableRef& props);

/// Deterministic hidden behavior of the correct legacy rear shuttle.
automata::Automaton correctRearLegacy(const automata::SignalTableRef& signals,
                                      const automata::SignalTableRef& props);

/// Hidden behavior of the faulty legacy rear shuttle: jumps to convoy mode
/// without waiting for startConvoy.
automata::Automaton faultyRearLegacy(const automata::SignalTableRef& signals,
                                     const automata::SignalTableRef& props);

}  // namespace mui::muml::shuttle
