#include "muml/shuttle.hpp"

namespace mui::muml::shuttle {

using rtsc::ClockConstraint;
using rtsc::RealTimeStatechart;
using Rel = rtsc::ClockConstraint::Rel;

RealTimeStatechart frontRoleStatechart() {
  RealTimeStatechart sc("frontRole");
  sc.declareInput(kConvoyProposal);
  sc.declareInput(kBreakConvoyProposal);
  sc.declareInput(kEmergency);
  sc.declareOutput(kConvoyProposalRejected);
  sc.declareOutput(kStartConvoy);
  sc.declareOutput(kBreakConvoyRejected);
  sc.declareOutput(kBreakConvoyAccepted);
  const rtsc::ClockId c = sc.addClock("c");

  const auto def = sc.addLocation("noConvoy::default");
  // The front shuttle must answer a convoy proposal within 2 time units.
  const auto answer =
      sc.addLocation("noConvoy::answer", {{c, Rel::Le, 2}});
  const auto fullBrake =
      sc.addLocation("noConvoy::fullBraking", {{c, Rel::Le, 3}});
  const auto convoy = sc.addLocation("convoy::default");
  const auto brk = sc.addLocation("convoy::break", {{c, Rel::Le, 2}});
  const auto reduced =
      sc.addLocation("convoy::reducedBraking", {{c, Rel::Le, 3}});
  sc.setInitial(def);

  // Convoy negotiation (Fig. 5).
  sc.addTransition({def, answer, kConvoyProposal, {}, {}, {c}});
  sc.addTransition({answer, def, std::nullopt, {kConvoyProposalRejected}, {}, {}});
  sc.addTransition({answer, convoy, std::nullopt, {kStartConvoy}, {}, {}});

  // Breaking the convoy.
  sc.addTransition({convoy, brk, kBreakConvoyProposal, {}, {}, {c}});
  sc.addTransition({brk, convoy, std::nullopt, {kBreakConvoyRejected}, {}, {}});
  sc.addTransition({brk, def, std::nullopt, {kBreakConvoyAccepted}, {}, {}});

  // Emergency braking: full power only outside convoy mode; reduced power
  // inside (the safety rationale behind the pattern constraint).
  sc.addTransition({def, fullBrake, kEmergency, {}, {}, {c}});
  sc.addTransition({fullBrake, def, std::nullopt, {}, {{c, Rel::Ge, 2}}, {}});
  sc.addTransition({convoy, reduced, kEmergency, {}, {}, {c}});
  sc.addTransition({reduced, convoy, std::nullopt, {}, {{c, Rel::Ge, 2}}, {}});

  // Stay responsive to coordination messages while braking, so a patient
  // partner is never starved (and the composition stays deadlock free).
  sc.addTransition({fullBrake, answer, kConvoyProposal, {}, {}, {c}});
  sc.addTransition({reduced, brk, kBreakConvoyProposal, {}, {}, {c}});

  return sc;
}

RealTimeStatechart rearRoleStatechart() {
  RealTimeStatechart sc("rearRole");
  sc.declareInput(kConvoyProposalRejected);
  sc.declareInput(kStartConvoy);
  sc.declareInput(kBreakConvoyRejected);
  sc.declareInput(kBreakConvoyAccepted);
  sc.declareOutput(kConvoyProposal);
  sc.declareOutput(kBreakConvoyProposal);

  const auto def = sc.addLocation("noConvoy::default");
  const auto wait = sc.addLocation("noConvoy::wait");
  const auto convoy = sc.addLocation("convoy::default");
  const auto cwait = sc.addLocation("convoy::wait");
  sc.setInitial(def);

  // The protocol is deliberately permissive: the rear shuttle *may* propose
  // at any time (nondeterministic), and must then await the answer.
  sc.addTransition({def, wait, std::nullopt, {kConvoyProposal}, {}, {}});
  sc.addTransition({wait, def, kConvoyProposalRejected, {}, {}, {}});
  sc.addTransition({wait, convoy, kStartConvoy, {}, {}, {}});
  sc.addTransition({convoy, cwait, std::nullopt, {kBreakConvoyProposal}, {}, {}});
  sc.addTransition({cwait, convoy, kBreakConvoyRejected, {}, {}, {}});
  sc.addTransition({cwait, def, kBreakConvoyAccepted, {}, {}, {}});
  return sc;
}

CoordinationPattern distanceCoordinationPattern() {
  CoordinationPattern p;
  p.name = "DistanceCoordination";
  p.constraint = kPatternConstraint;
  // Role invariants (Fig. 1 annotates the roles with timed ACTL): the
  // negotiation phases resolve within bounded time.
  p.roles.push_back({"frontRole", frontRoleStatechart(),
                     "AG (frontRole.noConvoy::answer -> AF[1,3] "
                     "(frontRole.noConvoy::default || frontRole.convoy))"});
  p.roles.push_back({"rearRole", rearRoleStatechart(),
                     "AG (rearRole.noConvoy::wait -> AF[1,6] "
                     "(rearRole.noConvoy::default || rearRole.convoy))"});
  p.connector.kind = ConnectorSpec::Kind::Direct;
  return p;
}

automata::Automaton frontRoleAutomaton(const automata::SignalTableRef& signals,
                                       const automata::SignalTableRef& props) {
  return frontRoleStatechart().compile(signals, props);
}

namespace {

/// Shared interface declaration for the hidden rear-shuttle behaviors.
automata::Automaton rearShell(const automata::SignalTableRef& signals,
                              const automata::SignalTableRef& props) {
  automata::Automaton a(signals, props, "rearRole");
  a.addInput(kConvoyProposalRejected);
  a.addInput(kStartConvoy);
  a.addInput(kBreakConvoyRejected);
  a.addInput(kBreakConvoyAccepted);
  a.addOutput(kConvoyProposal);
  a.addOutput(kBreakConvoyProposal);
  return a;
}

automata::Interaction sendOnly(const automata::SignalTableRef& signals,
                               const char* msg) {
  automata::Interaction x;
  x.out.set(signals->intern(msg));
  return x;
}

automata::Interaction recvOnly(const automata::SignalTableRef& signals,
                               const char* msg) {
  automata::Interaction x;
  x.in.set(signals->intern(msg));
  return x;
}

}  // namespace

automata::Automaton correctRearLegacy(const automata::SignalTableRef& signals,
                                      const automata::SignalTableRef& props) {
  automata::Automaton a = rearShell(signals, props);
  const auto def = a.addState("noConvoy::default");
  const auto ready = a.addState("noConvoy::ready");
  const auto wait = a.addState("noConvoy::wait");
  const auto convoy = a.addState("convoy::default");
  const auto hold = a.addState("convoy::hold");
  const auto cwait = a.addState("convoy::wait");
  for (automata::StateId s = 0; s < a.stateCount(); ++s) {
    a.labelWithStateName(s);
  }
  a.markInitial(def);

  const automata::Interaction idle{};
  // A fixed internal schedule makes the behavior input-deterministic: one
  // idle tick, then propose; in convoy, one idle tick, then propose a break.
  a.addTransition(def, idle, ready);
  a.addTransition(ready, sendOnly(signals, kConvoyProposal), wait);
  a.addTransition(wait, idle, wait);
  a.addTransition(wait, recvOnly(signals, kConvoyProposalRejected), def);
  a.addTransition(wait, recvOnly(signals, kStartConvoy), convoy);
  a.addTransition(convoy, idle, hold);
  a.addTransition(hold, sendOnly(signals, kBreakConvoyProposal), cwait);
  a.addTransition(cwait, idle, cwait);
  a.addTransition(cwait, recvOnly(signals, kBreakConvoyRejected), convoy);
  a.addTransition(cwait, recvOnly(signals, kBreakConvoyAccepted), def);
  return a;
}

automata::Automaton faultyRearLegacy(const automata::SignalTableRef& signals,
                                     const automata::SignalTableRef& props) {
  automata::Automaton a = rearShell(signals, props);
  const auto def = a.addState("noConvoy::default");
  const auto ready = a.addState("noConvoy::ready");
  const auto convoy = a.addState("convoy::default");
  for (automata::StateId s = 0; s < a.stateCount(); ++s) {
    a.labelWithStateName(s);
  }
  a.markInitial(def);

  const automata::Interaction idle{};
  a.addTransition(def, idle, ready);
  // The defect (paper Fig. 6): the component enters convoy mode directly
  // after sending the proposal, without awaiting startConvoy. The answer
  // messages are then refused — the "blocking state" of Listing 1.3.
  a.addTransition(ready, sendOnly(signals, kConvoyProposal), convoy);
  a.addTransition(convoy, idle, convoy);
  return a;
}

}  // namespace mui::muml::shuttle
