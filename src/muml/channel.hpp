#pragma once
// Connector channel automata (paper Sec. "Modeling"): "The behavior of the
// connector is described by another real-time statechart that is used to
// model channel delay and reliability, which are of crucial importance for
// real-time systems."
//
// A channel relays each message m from its source endpoint signal to its
// destination endpoint signal after `delay` time units, holding at most
// `capacity` in-flight messages (a full channel refuses further sends —
// synchronous communication then exerts backpressure on the sender). With
// `lossy`, an in-flight message may silently vanish.

#include <cstdint>
#include <string>
#include <vector>

#include "automata/automaton.hpp"

namespace mui::muml {

struct ChannelRoute {
  std::string source;       // signal consumed from the sender
  std::string destination;  // signal delivered to the receiver
};

struct ChannelSpec {
  std::string name = "channel";
  std::vector<ChannelRoute> routes;
  std::uint32_t delay = 1;     // ≥ 1 time units in transit
  std::uint32_t capacity = 1;  // in-flight messages (1 keeps the state space tiny)
  bool lossy = false;
};

/// Builds the channel automaton. Inputs are all route sources, outputs all
/// route destinations. States are named "empty" or a "+"-joined list of
/// "msg@age" entries.
automata::Automaton makeChannel(const automata::SignalTableRef& signals,
                                const automata::SignalTableRef& props,
                                const ChannelSpec& spec);

}  // namespace mui::muml
