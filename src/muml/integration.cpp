#include "muml/integration.hpp"

#include <stdexcept>

#include "automata/compose.hpp"
#include "muml/channel.hpp"

namespace mui::muml {

IntegrationScenario makeIntegrationScenario(
    const CoordinationPattern& pattern, std::size_t legacyRoleIdx,
    const automata::SignalTableRef& signals,
    const automata::SignalTableRef& props) {
  if (legacyRoleIdx >= pattern.roles.size()) {
    throw std::out_of_range("makeIntegrationScenario: bad role index");
  }

  std::vector<automata::Automaton> parts;
  for (std::size_t i = 0; i < pattern.roles.size(); ++i) {
    if (i == legacyRoleIdx) continue;
    parts.push_back(
        pattern.roles[i].behavior.compile(signals, props,
                                          pattern.roles[i].name));
  }
  if (pattern.connector.kind == ConnectorSpec::Kind::Channel) {
    parts.push_back(makeChannel(signals, props, pattern.connector.channel));
  }
  if (parts.empty()) {
    throw std::invalid_argument(
        "makeIntegrationScenario: no context parts remain");
  }

  std::vector<const automata::Automaton*> ptrs;
  for (const auto& p : parts) ptrs.push_back(&p);

  IntegrationScenario out{automata::composeAll(ptrs).automaton, {}};

  const auto conjoin = [&](const std::string& f) {
    if (f.empty()) return;
    if (out.property.empty()) {
      out.property = f;
    } else {
      out.property = "(" + out.property + ") && (" + f + ")";
    }
  };
  conjoin(pattern.constraint);
  for (const auto& role : pattern.roles) conjoin(role.invariant);
  return out;
}

}  // namespace mui::muml
