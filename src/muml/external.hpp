#pragma once
// Resolution and validation of `legacy ... external` declarations — the
// filesystem-facing half the loader deliberately defers so that parsing a
// model never touches the disk. Both helpers throw util::SemanticError
// carrying the clause's recorded file:line:col, so a missing binary or a
// mis-declared interface reads like any other model diagnostic.

#include <string>

#include "muml/model.hpp"

namespace mui::muml {

/// Resolves the adapter binary of `ext` to an executable path:
///   1. an absolute path is taken as-is;
///   2. a relative path is tried against the declaring .muml file's
///      directory (models ship next to their adapters);
///   3. each directory of the colon-separated MUI_ADAPTER_PATH environment
///      variable (how tests and CI point models at the build tree).
/// Throws util::SemanticError (located at the clause) when no candidate
/// exists, or when the found file is not executable.
std::string resolveExternalBinary(const ExternalLegacy& ext,
                                  const ModelSource& source);

/// Checks the declared I/O interface of `ext` against the role it is about
/// to play: the external's inputs must equal the role behavior's inputs and
/// likewise for outputs (paper Sec. 3 — the interface is the one part of a
/// black box that is always known, so a mismatch is a model error, not
/// something to discover through refusals). Throws util::SemanticError
/// located at the clause.
void checkExternalInterface(const ExternalLegacy& ext, const Role& role,
                            const ModelSource& source,
                            const automata::SignalTableRef& signals);

}  // namespace mui::muml
