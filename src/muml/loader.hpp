#pragma once
// Textual model format (.muml) for automata, real-time statecharts, and
// coordination patterns. The concrete syntax (see also README):
//
//   automaton Name {
//     input a b; output x;
//     initial s0 [s1 ...];
//     s0 -> s1 : a / x;        # consume a, emit x (space-separated lists)
//     s1 -> s1 : ;             # idle step
//   }
//
//   rtsc Name {
//     input a; output x;
//     clock c;
//     location idle;
//     location busy invariant c <= 5;
//     initial idle;
//     idle -> busy : trigger a emit x guard c >= 2 reset c;
//   }
//
//   pattern Name {
//     role left uses SomeRtsc invariant "AG p";
//     role right uses OtherRtsc;
//     connector direct;
//     connector channel delay 2 capacity 1 lossy routes a->b x->y;
//     constraint "AG !(p && q)";
//   }
//
//   legacy Name external "path/to/adapter" {   # out-of-process component
//     input a b; output x;                     # declared I/O interface
//     arg "--flag"; arg "%model%";             # extra argv (%model% = this file)
//     deadline-ms 2000;                        # per-step containment budget
//     max-respawns 3;                          # crash recovery budget
//   }
//
// Any block body may carry `allow MUI003 ...;` statements suppressing the
// named lint rules (see mui::analysis and docs/LINT_RULES.md) for that
// entity; the loader records them in Model::source.
//
// Comments start with '#' or '//'. States referenced in transitions are
// created on first use and auto-labeled with their hierarchical qualified
// name (e.g. automaton "rearRole", state "noConvoy::wait" yields
// propositions rearRole.noConvoy and rearRole.noConvoy::wait).

#include <string>
#include <string_view>

#include "muml/model.hpp"

namespace mui::muml {

/// Parses a model from text; throws mui::util::ParseError on syntax errors
/// and mui::util::SemanticError (an std::invalid_argument) on semantic ones
/// (duplicate names, unknown references). A non-empty `sourceName` (usually
/// the file name) prefixes every diagnostic as `name:line:col: message`.
Model loadModel(std::string_view text, std::string_view sourceName = "");

/// Reads and parses a model file; diagnostics carry the file name and line.
/// Throws std::runtime_error if the file cannot be read.
Model loadModelFile(const std::string& path);

/// Parses into an existing model (shared tables), adding definitions.
void loadModelInto(Model& model, std::string_view text,
                   std::string_view sourceName = "");

}  // namespace mui::muml
