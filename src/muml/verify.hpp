#pragma once
// Compositional pattern verification (paper Sec. "Modeling"): compile the
// role statecharts (and the connector channel, if any), compose them, and
// model check the pattern constraint, the role invariants, and deadlock
// freedom. This is the "patterns are verified once, components refine
// roles" half of the MECHATRONIC UML methodology; the legacy-integration
// loop (synthesis module) builds on the same machinery.

#include <string>
#include <vector>

#include "automata/compose.hpp"
#include "automata/refine.hpp"
#include "ctl/counterexample.hpp"
#include "muml/model.hpp"

namespace mui::muml {

struct PatternVerification {
  bool constraintHolds = false;
  bool deadlockFree = false;
  /// (invariant owner role, holds) for every role with an invariant.
  std::vector<std::pair<std::string, bool>> roleInvariants;
  /// Verification details for the conjunction (constraint ∧ invariants ∧ ¬δ).
  ctl::VerifyResult details;
  /// The composed pattern (roles + connector) for inspection/rendering.
  automata::Product composed;

  [[nodiscard]] bool ok() const {
    if (!constraintHolds || !deadlockFree) return false;
    for (const auto& [role, holds] : roleInvariants) {
      if (!holds) return false;
    }
    return true;
  }
};

/// Verifies a pattern over the shared tables. Throws std::invalid_argument
/// on malformed statecharts or unparsable constraint text.
PatternVerification verifyPattern(const CoordinationPattern& pattern,
                                  const automata::SignalTableRef& signals,
                                  const automata::SignalTableRef& props);

/// Checks that a component port refines its role (paper Sec. 2.3: "derived
/// by refining the role protocols ... not add additional behavior or block
/// guaranteed behavior"). Label matching is restricted to the role's
/// top-level location propositions ("<role>.<top-level location>"), so port
/// implementations may introduce internal substates.
automata::RefinementResult checkPortRefinement(
    const Port& port, const Role& role,
    const automata::SignalTableRef& signals,
    const automata::SignalTableRef& props,
    automata::InteractionMode mode =
        automata::InteractionMode::AtMostOneSignal,
    bool ignoreRefusals = false);

}  // namespace mui::muml
