#include "muml/channel.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>

namespace mui::muml {

namespace {

/// One in-flight message: route index and age (saturating at delay).
using Flight = std::pair<std::uint32_t, std::uint32_t>;
using State = std::vector<Flight>;  // kept sorted for canonical naming

std::string stateName(const ChannelSpec& spec, const State& st) {
  if (st.empty()) return "empty";
  std::string n;
  for (const auto& [route, age] : st) {
    if (!n.empty()) n += "+";
    n += spec.routes[route].source + "@" + std::to_string(age);
  }
  return n;
}

}  // namespace

automata::Automaton makeChannel(const automata::SignalTableRef& signals,
                                const automata::SignalTableRef& props,
                                const ChannelSpec& spec) {
  if (spec.routes.empty() || spec.routes.size() > 16) {
    throw std::invalid_argument("makeChannel: need 1..16 routes");
  }
  if (spec.delay == 0 || spec.capacity == 0 || spec.capacity > 4) {
    throw std::invalid_argument("makeChannel: delay >= 1, capacity in 1..4");
  }

  automata::Automaton a(signals, props, spec.name);
  std::vector<util::NameId> srcIds, dstIds;
  for (const auto& r : spec.routes) {
    srcIds.push_back(a.addInput(r.source));
    dstIds.push_back(a.addOutput(r.destination));
  }

  std::map<State, automata::StateId> ids;
  std::deque<State> work;
  const auto ensure = [&](State st) {
    std::sort(st.begin(), st.end());
    const auto it = ids.find(st);
    if (it != ids.end()) return it->second;
    const automata::StateId s = a.addState(stateName(spec, st));
    a.labelWithStateName(s);
    ids.emplace(st, s);
    work.push_back(std::move(st));
    return s;
  };

  a.markInitial(ensure({}));

  while (!work.empty()) {
    const State st = work.front();
    work.pop_front();
    const automata::StateId from = ids.at(st);

    // 1. Ages advance, saturating at delay (delivery offered from then on).
    State aged = st;
    for (auto& [route, age] : aged) age = std::min(age + 1, spec.delay);

    // Indices of messages due for delivery.
    std::vector<std::size_t> due;
    for (std::size_t i = 0; i < aged.size(); ++i) {
      if (aged[i].second >= spec.delay) due.push_back(i);
    }

    // 2. Every delivery subset of the due messages (hold or hand over —
    // the receiver's readiness decides through the composition)...
    for (std::size_t dmask = 0; dmask < (std::size_t{1} << due.size());
         ++dmask) {
      State kept;
      automata::SignalSet delivered;
      for (std::size_t i = 0; i < aged.size(); ++i) {
        const auto pos = std::find(due.begin(), due.end(), i);
        const bool deliver =
            pos != due.end() &&
            (dmask >> static_cast<std::size_t>(pos - due.begin())) & 1;
        if (deliver) {
          delivered.set(dstIds[aged[i].first]);
        } else {
          kept.push_back(aged[i]);
        }
      }

      // 3. ... combined with every admissible arrival subset of the routes.
      const std::size_t room = spec.capacity - kept.size();
      for (std::size_t amask = 0;
           amask < (std::size_t{1} << spec.routes.size()); ++amask) {
        if (static_cast<std::size_t>(__builtin_popcountll(amask)) > room) {
          continue;
        }
        State next = kept;
        automata::SignalSet accepted;
        for (std::size_t r = 0; r < spec.routes.size(); ++r) {
          if ((amask >> r) & 1) {
            next.emplace_back(static_cast<std::uint32_t>(r), 1u);
            accepted.set(srcIds[r]);
          }
        }
        a.addTransition(from, {accepted, delivered}, ensure(std::move(next)));
      }
    }

    // Lossiness: any single in-flight message may vanish during an idle step.
    if (spec.lossy) {
      for (std::size_t i = 0; i < aged.size(); ++i) {
        State next;
        for (std::size_t j = 0; j < aged.size(); ++j) {
          if (j != i) next.push_back(aged[j]);
        }
        a.addTransition(from, automata::Interaction{}, ensure(std::move(next)));
      }
    }
  }
  return a;
}

}  // namespace mui::muml
