#include "util/dot.hpp"

namespace mui::util {

DotWriter::DotWriter(std::string graphName) : name_(std::move(graphName)) {}

std::string DotWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void DotWriter::node(const std::string& id, const std::string& label,
                     bool doubleCircle) {
  lines_.push_back("  \"" + escape(id) + "\" [label=\"" + escape(label) +
                   "\", shape=" + (doubleCircle ? "doublecircle" : "circle") +
                   "];");
}

void DotWriter::edge(const std::string& from, const std::string& to,
                     const std::string& label) {
  lines_.push_back("  \"" + escape(from) + "\" -> \"" + escape(to) +
                   "\" [label=\"" + escape(label) + "\"];");
}

std::string DotWriter::str() const {
  std::string out = "digraph \"" + escape(name_) + "\" {\n  rankdir=LR;\n";
  for (const auto& l : lines_) {
    out += l;
    out += '\n';
  }
  out += "}\n";
  return out;
}

}  // namespace mui::util
