#pragma once
// Dynamic bitset used throughout MUI for signal sets (the A and B components
// of a transition label, see paper Def. 1) and proposition label sets.
//
// The set is conceptually unbounded: bits beyond the allocated words are 0.
// All binary operations therefore work on sets of different allocated widths.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace mui::util {

class DynBitset {
 public:
  DynBitset() = default;

  /// Singleton set {bit}.
  static DynBitset single(std::size_t bit) {
    DynBitset b;
    b.set(bit);
    return b;
  }

  /// Set containing every bit in `bits`.
  static DynBitset of(std::initializer_list<std::size_t> bits) {
    DynBitset b;
    for (std::size_t i : bits) b.set(i);
    return b;
  }

  void set(std::size_t bit) {
    ensure(bit);
    words_[bit / 64] |= (std::uint64_t{1} << (bit % 64));
  }

  void reset(std::size_t bit) {
    if (bit / 64 < words_.size()) {
      words_[bit / 64] &= ~(std::uint64_t{1} << (bit % 64));
      shrink();
    }
  }

  [[nodiscard]] bool test(std::size_t bit) const {
    return bit / 64 < words_.size() &&
           (words_[bit / 64] >> (bit % 64)) & std::uint64_t{1};
  }

  [[nodiscard]] bool empty() const { return words_.empty(); }
  [[nodiscard]] std::size_t count() const;

  /// Index of the lowest set bit; undefined on empty sets.
  [[nodiscard]] std::size_t lowest() const;

  [[nodiscard]] bool isSubsetOf(const DynBitset& other) const;
  [[nodiscard]] bool intersects(const DynBitset& other) const;

  [[nodiscard]] DynBitset operator|(const DynBitset& o) const;
  [[nodiscard]] DynBitset operator&(const DynBitset& o) const;
  /// Set difference (this \ o).
  [[nodiscard]] DynBitset operator-(const DynBitset& o) const;

  DynBitset& operator|=(const DynBitset& o) { return *this = *this | o; }
  DynBitset& operator&=(const DynBitset& o) { return *this = *this & o; }
  DynBitset& operator-=(const DynBitset& o) { return *this = *this - o; }

  bool operator==(const DynBitset& o) const { return words_ == o.words_; }
  /// Lexicographic on the canonical word representation; usable as map key.
  bool operator<(const DynBitset& o) const;

  /// Calls `f(bit)` for every set bit in ascending order.
  template <typename F>
  void forEach(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int tz = __builtin_ctzll(word);
        f(w * 64 + static_cast<std::size_t>(tz));
        word &= word - 1;
      }
    }
  }

  /// All set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> bits() const;

  [[nodiscard]] std::size_t hash() const;

  /// Debug rendering such as "{0,3,17}".
  [[nodiscard]] std::string toString() const;

 private:
  void ensure(std::size_t bit) {
    if (bit / 64 >= words_.size()) words_.resize(bit / 64 + 1, 0);
  }
  // Keep the representation canonical (no trailing zero words) so that
  // operator== / hash are structural set equality.
  void shrink() {
    while (!words_.empty() && words_.back() == 0) words_.pop_back();
  }

  std::vector<std::uint64_t> words_;
};

struct DynBitsetHash {
  std::size_t operator()(const DynBitset& b) const { return b.hash(); }
};

/// Fixed-width dense bitset over the index range [0, size). Unlike DynBitset
/// (a conceptually unbounded *set*), this is a per-state boolean vector: the
/// model checker stores satisfaction sets as one bit per automaton state
/// (8× denser than std::vector<char>, and word-parallel for the boolean
/// connectives). Bits past `size` are kept zero so operator== and count()
/// are value semantics.
class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(std::size_t size, bool value = false)
      : size_(size), words_((size + 63) / 64, value ? ~std::uint64_t{0} : 0) {
    clearTail();
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] bool test(std::size_t bit) const {
    return (words_[bit / 64] >> (bit % 64)) & std::uint64_t{1};
  }
  [[nodiscard]] bool operator[](std::size_t bit) const { return test(bit); }

  void set(std::size_t bit) {
    words_[bit / 64] |= std::uint64_t{1} << (bit % 64);
  }
  void reset(std::size_t bit) {
    words_[bit / 64] &= ~(std::uint64_t{1} << (bit % 64));
  }
  void assign(std::size_t bit, bool value) {
    value ? set(bit) : reset(bit);
  }

  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] bool any() const;
  [[nodiscard]] bool none() const { return !any(); }

  /// In-place complement within [0, size).
  void flip();

  DenseBitset& operator&=(const DenseBitset& o);
  DenseBitset& operator|=(const DenseBitset& o);

  bool operator==(const DenseBitset& o) const = default;

 private:
  void clearTail() {
    if (size_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << (size_ % 64)) - 1;
    }
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace mui::util

template <>
struct std::hash<mui::util::DynBitset> {
  std::size_t operator()(const mui::util::DynBitset& b) const noexcept {
    return b.hash();
  }
};
