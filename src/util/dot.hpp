#pragma once
// Tiny Graphviz DOT writer used to regenerate the paper's automaton figures
// (Fig. 3 chaotic automaton, Fig. 4 initial closure, Fig. 5 context, Fig. 6/7
// synthesized behavior).

#include <string>
#include <vector>

namespace mui::util {

class DotWriter {
 public:
  explicit DotWriter(std::string graphName);

  /// Declares a node. `doubleCircle` marks initial states as in the paper's
  /// figures.
  void node(const std::string& id, const std::string& label,
            bool doubleCircle = false);
  void edge(const std::string& from, const std::string& to,
            const std::string& label);

  [[nodiscard]] std::string str() const;

 private:
  static std::string escape(const std::string& s);

  std::string name_;
  std::vector<std::string> lines_;
};

}  // namespace mui::util
