#include "util/json.hpp"

#include <cstdio>

namespace mui::util {

namespace {

/// Length of the well-formed UTF-8 sequence starting at s[i], or 0 if the
/// bytes at i do not start one. Follows RFC 3629: no overlong forms, no
/// surrogates, nothing above U+10FFFF.
std::size_t utf8SequenceLength(std::string_view s, std::size_t i) {
  const auto byte = [&](std::size_t k) -> unsigned {
    return k < s.size() ? static_cast<unsigned char>(s[k]) : 0x100;
  };
  const unsigned b0 = byte(i);
  const auto cont = [&](std::size_t k, unsigned lo = 0x80, unsigned hi = 0xBF) {
    const unsigned b = byte(k);
    return b >= lo && b <= hi;
  };
  if (b0 <= 0x7F) return 1;
  if (b0 >= 0xC2 && b0 <= 0xDF) return cont(i + 1) ? 2 : 0;
  if (b0 == 0xE0) return cont(i + 1, 0xA0) && cont(i + 2) ? 3 : 0;
  if (b0 >= 0xE1 && b0 <= 0xEC) return cont(i + 1) && cont(i + 2) ? 3 : 0;
  if (b0 == 0xED) return cont(i + 1, 0x80, 0x9F) && cont(i + 2) ? 3 : 0;
  if (b0 >= 0xEE && b0 <= 0xEF) return cont(i + 1) && cont(i + 2) ? 3 : 0;
  if (b0 == 0xF0) {
    return cont(i + 1, 0x90) && cont(i + 2) && cont(i + 3) ? 4 : 0;
  }
  if (b0 >= 0xF1 && b0 <= 0xF3) {
    return cont(i + 1) && cont(i + 2) && cont(i + 3) ? 4 : 0;
  }
  if (b0 == 0xF4) {
    return cont(i + 1, 0x80, 0x8F) && cont(i + 2) && cont(i + 3) ? 4 : 0;
  }
  return 0;
}

}  // namespace

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        ++i;
        continue;
      case '\\':
        out += "\\\\";
        ++i;
        continue;
      case '\n':
        out += "\\n";
        ++i;
        continue;
      case '\t':
        out += "\\t";
        ++i;
        continue;
      case '\r':
        out += "\\r";
        ++i;
        continue;
      case '\b':
        out += "\\b";
        ++i;
        continue;
      case '\f':
        out += "\\f";
        ++i;
        continue;
      default:
        break;
    }
    if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", u);
      out += buf;
      ++i;
      continue;
    }
    if (u < 0x80) {
      out += c;
      ++i;
      continue;
    }
    if (const std::size_t len = utf8SequenceLength(s, i)) {
      out.append(s.substr(i, len));
      i += len;
    } else {
      out += "\\ufffd";
      ++i;
    }
  }
  return out;
}

std::string jsonQuote(std::string_view s) {
  return "\"" + jsonEscape(s) + "\"";
}

}  // namespace mui::util
