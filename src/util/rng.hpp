#pragma once
// Deterministic RNG for property tests and workload generators.
// splitmix64: tiny, fast, and reproducible across platforms, which matters
// because benches and parameterized tests derive workloads from fixed seeds.

#include <cstdint>

namespace mui::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) { return below(den) < num; }

  double real() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  std::uint64_t state_;
};

}  // namespace mui::util
