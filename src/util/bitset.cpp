#include "util/bitset.hpp"

#include <algorithm>

namespace mui::util {

std::size_t DynBitset::count() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
  return n;
}

std::size_t DynBitset::lowest() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * 64 + static_cast<std::size_t>(__builtin_ctzll(words_[w]));
    }
  }
  return static_cast<std::size_t>(-1);
}

bool DynBitset::isSubsetOf(const DynBitset& other) const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const std::uint64_t ow = w < other.words_.size() ? other.words_[w] : 0;
    if ((words_[w] & ~ow) != 0) return false;
  }
  return true;
}

bool DynBitset::intersects(const DynBitset& other) const {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t w = 0; w < n; ++w) {
    if ((words_[w] & other.words_[w]) != 0) return true;
  }
  return false;
}

DynBitset DynBitset::operator|(const DynBitset& o) const {
  DynBitset r;
  r.words_.resize(std::max(words_.size(), o.words_.size()), 0);
  for (std::size_t w = 0; w < r.words_.size(); ++w) {
    const std::uint64_t a = w < words_.size() ? words_[w] : 0;
    const std::uint64_t b = w < o.words_.size() ? o.words_[w] : 0;
    r.words_[w] = a | b;
  }
  r.shrink();
  return r;
}

DynBitset DynBitset::operator&(const DynBitset& o) const {
  DynBitset r;
  r.words_.resize(std::min(words_.size(), o.words_.size()), 0);
  for (std::size_t w = 0; w < r.words_.size(); ++w) {
    r.words_[w] = words_[w] & o.words_[w];
  }
  r.shrink();
  return r;
}

DynBitset DynBitset::operator-(const DynBitset& o) const {
  DynBitset r;
  r.words_ = words_;
  const std::size_t n = std::min(words_.size(), o.words_.size());
  for (std::size_t w = 0; w < n; ++w) r.words_[w] &= ~o.words_[w];
  r.shrink();
  return r;
}

bool DynBitset::operator<(const DynBitset& o) const {
  if (words_.size() != o.words_.size()) return words_.size() < o.words_.size();
  for (std::size_t w = words_.size(); w-- > 0;) {
    if (words_[w] != o.words_[w]) return words_[w] < o.words_[w];
  }
  return false;
}

std::vector<std::size_t> DynBitset::bits() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  forEach([&](std::size_t b) { out.push_back(b); });
  return out;
}

std::size_t DynBitset::hash() const {
  std::size_t h = 0xcbf29ce484222325ull;
  for (std::uint64_t w : words_) {
    h ^= static_cast<std::size_t>(w);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::size_t DenseBitset::count() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) {
    n += static_cast<std::size_t>(__builtin_popcountll(w));
  }
  return n;
}

bool DenseBitset::any() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

void DenseBitset::flip() {
  for (std::uint64_t& w : words_) w = ~w;
  clearTail();
}

DenseBitset& DenseBitset::operator&=(const DenseBitset& o) {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= o.words_[w];
  return *this;
}

DenseBitset& DenseBitset::operator|=(const DenseBitset& o) {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= o.words_[w];
  return *this;
}

std::string DynBitset::toString() const {
  std::string s = "{";
  bool first = true;
  forEach([&](std::size_t b) {
    if (!first) s += ',';
    s += std::to_string(b);
    first = false;
  });
  s += '}';
  return s;
}

}  // namespace mui::util
