#pragma once
// Minimal recursive-descent parsing kit shared by the CCTL formula parser
// (ctl/parser) and the .muml model-file parser (muml/loader).

#include <stdexcept>
#include <string>
#include <string_view>

namespace mui::util {

/// A position in a source text, as carried by parser diagnostics and by the
/// loader's per-definition bookkeeping (muml::ModelSource). Line/column are
/// 1-based; a zero line means "unknown" (e.g. models built programmatically).
struct SourceLoc {
  std::string file;
  std::size_t line = 0;
  std::size_t col = 0;

  [[nodiscard]] bool known() const { return line != 0; }

  /// "file.muml:3:7" (or ":3:7" without a file name); empty when unknown.
  [[nodiscard]] std::string toString() const {
    if (!known()) return {};
    return file + ":" + std::to_string(line) + ":" + std::to_string(col);
  }

  bool operator==(const SourceLoc&) const = default;
};

/// Formats "file.muml:3:7: msg" when a source name is known and the
/// legacy "msg (line 3, col 7)" otherwise.
inline std::string locatedMessage(const std::string& msg,
                                  const std::string& source, std::size_t line,
                                  std::size_t col) {
  if (source.empty()) {
    return msg + " (line " + std::to_string(line) + ", col " +
           std::to_string(col) + ")";
  }
  return source + ":" + std::to_string(line) + ":" + std::to_string(col) +
         ": " + msg;
}

/// Raised on any syntax error; carries a human-readable location.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& msg, std::size_t line, std::size_t col)
      : ParseError(msg, "", line, col) {}

  ParseError(const std::string& msg, const std::string& source,
             std::size_t line, std::size_t col)
      : std::runtime_error(locatedMessage(msg, source, line, col)),
        line_(line),
        col_(col) {}

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t col() const { return col_; }

 private:
  std::size_t line_;
  std::size_t col_;
};

/// Raised on semantic errors found while parsing (duplicate names, unknown
/// references). Derives from std::invalid_argument — the exception type the
/// model classes themselves throw — but adds the source location.
class SemanticError : public std::invalid_argument {
 public:
  SemanticError(const std::string& msg, const std::string& source,
                std::size_t line, std::size_t col)
      : std::invalid_argument(locatedMessage(msg, source, line, col)),
        line_(line),
        col_(col) {}

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t col() const { return col_; }

 private:
  std::size_t line_;
  std::size_t col_;
};

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  /// `sourceName` (e.g. a file name) prefixes every error location.
  Cursor(std::string_view text, std::string sourceName)
      : text_(text), source_(std::move(sourceName)) {}

  [[nodiscard]] bool atEnd() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return atEnd() ? '\0' : text_[pos_]; }
  [[nodiscard]] char peekAt(std::size_t off) const {
    return pos_ + off >= text_.size() ? '\0' : text_[pos_ + off];
  }

  char advance();

  /// Skips spaces, tabs, newlines, and `#`/`//` line comments.
  void skipWs();

  /// Consumes `tok` (after skipping whitespace) or returns false.
  bool tryConsume(std::string_view tok);

  /// Consumes `tok` or throws ParseError.
  void expect(std::string_view tok);

  /// True iff the next token is the keyword `kw` (identifier-bounded).
  bool tryKeyword(std::string_view kw);

  /// Parses an identifier: [A-Za-z_][A-Za-z0-9_.:]* . The extended tail
  /// characters allow dotted proposition names like `shuttle1.noConvoy` and
  /// hierarchical state names like `noConvoy::default`.
  std::string identifier();

  /// Parses a non-negative integer literal.
  std::size_t integer();

  /// Parses a double-quoted string literal with \" and \\ escapes.
  std::string quotedString();

  [[noreturn]] void fail(const std::string& msg) const;

  /// Like fail(), but for semantic errors: throws SemanticError (an
  /// invalid_argument) carrying the current location.
  [[noreturn]] void failSemantic(const std::string& msg) const;

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t col() const { return col_; }
  [[nodiscard]] const std::string& sourceName() const { return source_; }

 private:
  std::string_view text_;
  std::string source_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
};

}  // namespace mui::util
