#include "util/parse.hpp"

#include <cctype>

namespace mui::util {

char Cursor::advance() {
  const char c = text_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

void Cursor::skipWs() {
  while (!atEnd()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '#' || (c == '/' && peekAt(1) == '/')) {
      while (!atEnd() && peek() != '\n') advance();
    } else {
      break;
    }
  }
}

bool Cursor::tryConsume(std::string_view tok) {
  skipWs();
  if (text_.substr(pos_).substr(0, tok.size()) != tok) return false;
  for (std::size_t i = 0; i < tok.size(); ++i) advance();
  return true;
}

void Cursor::expect(std::string_view tok) {
  if (!tryConsume(tok)) fail("expected '" + std::string(tok) + "'");
}

namespace {
bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentTail(char c) {
  // '@' appears in generated state names (clock valuations, channel ages)
  // and therefore in auto-generated propositions.
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == ':' || c == '@';
}
}  // namespace

bool Cursor::tryKeyword(std::string_view kw) {
  skipWs();
  if (text_.substr(pos_).substr(0, kw.size()) != kw) return false;
  const char after = pos_ + kw.size() < text_.size() ? text_[pos_ + kw.size()] : '\0';
  if (isIdentTail(after)) return false;
  for (std::size_t i = 0; i < kw.size(); ++i) advance();
  return true;
}

std::string Cursor::identifier() {
  skipWs();
  if (atEnd() || !isIdentStart(peek())) fail("expected identifier");
  std::string out;
  while (!atEnd() && isIdentTail(peek())) out += advance();
  return out;
}

std::size_t Cursor::integer() {
  skipWs();
  if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek()))) {
    fail("expected integer");
  }
  std::size_t v = 0;
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
    v = v * 10 + static_cast<std::size_t>(advance() - '0');
  }
  return v;
}

std::string Cursor::quotedString() {
  skipWs();
  if (atEnd() || peek() != '"') fail("expected string literal");
  advance();
  std::string out;
  while (!atEnd() && peek() != '"') {
    char c = advance();
    if (c == '\\' && !atEnd()) c = advance();
    out += c;
  }
  if (atEnd()) fail("unterminated string literal");
  advance();
  return out;
}

void Cursor::fail(const std::string& msg) const {
  throw ParseError(msg, source_, line_, col_);
}

void Cursor::failSemantic(const std::string& msg) const {
  throw SemanticError(msg, source_, line_, col_);
}

}  // namespace mui::util
