#pragma once
// The one JSON string escaper of the tree. Every JSON/JSONL writer — the
// engine's batch report, the SARIF renderer, the obs journal/trace/metrics
// writers, the bench artifacts — must escape through here so that control
// characters and invalid UTF-8 in model, job, or state names can never
// produce an unparseable artifact.

#include <string>
#include <string_view>

namespace mui::util {

/// Escapes `s` for embedding between double quotes in JSON: `"` and `\`
/// are backslash-escaped, control characters (U+0000..U+001F) become their
/// short escape (\n, \t, \r, \b, \f) or \u00XX, well-formed UTF-8
/// sequences pass through unchanged, and every byte that is not part of a
/// well-formed UTF-8 sequence is replaced by � (REPLACEMENT
/// CHARACTER). The output is therefore always valid UTF-8 and always a
/// valid JSON string body.
std::string jsonEscape(std::string_view s);

/// `"` + jsonEscape(s) + `"`.
std::string jsonQuote(std::string_view s);

}  // namespace mui::util
