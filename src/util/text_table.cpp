#include "util/text_table.hpp"

#include <algorithm>
#include <cstdio>

namespace mui::util {

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths;
  for (const auto& r : rows_) {
    if (widths.size() < r.size()) widths.resize(r.size(), 0);
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  std::string out;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const auto& r = rows_[i];
    for (std::size_t c = 0; c < r.size(); ++c) {
      out += r[c];
      if (c + 1 < r.size()) out.append(widths[c] - r[c].size() + 2, ' ');
    }
    out += '\n';
    if (i == 0) {
      for (std::size_t c = 0; c < widths.size(); ++c) {
        out.append(widths[c], '-');
        if (c + 1 < widths.size()) out += "  ";
      }
      out += '\n';
    }
  }
  return out;
}

std::string fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

}  // namespace mui::util
