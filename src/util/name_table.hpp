#pragma once
// Interning table mapping names (signals, atomic propositions, states of a
// shared universe) to dense ids. Automata that are composed together must
// share one table so that their DynBitset-encoded signal sets are comparable.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mui::util {

using NameId = std::uint32_t;

class NameTable {
 public:
  /// Returns the id of `name`, interning it if new.
  NameId intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    const NameId id = static_cast<NameId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id of `name` if already interned.
  [[nodiscard]] std::optional<NameId> lookup(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] const std::string& name(NameId id) const {
    if (id >= names_.size()) throw std::out_of_range("NameTable::name: bad id");
    return names_[id];
  }

  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, NameId> ids_;
};

}  // namespace mui::util
