#pragma once
// Aligned text table printer used by the bench harness to emit the rows of
// each reproduced experiment in a stable, diffable format.

#include <string>
#include <vector>

namespace mui::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void row(std::vector<std::string> cells);

  /// Renders with column alignment and a separator under the header.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::vector<std::string>> rows_;  // rows_[0] is the header
};

/// Formats a double with `digits` fractional digits.
std::string fmt(double v, int digits = 2);

}  // namespace mui::util
