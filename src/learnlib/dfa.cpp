#include "learnlib/dfa.hpp"

#include <deque>
#include <map>
#include <stdexcept>

namespace mui::learnlib {

Dfa::Dfa(std::size_t stateCount, std::size_t alphabetSize, std::size_t initial)
    : alphabet_(alphabetSize),
      initial_(initial),
      accepting_(stateCount, 0),
      delta_(stateCount, std::vector<std::size_t>(alphabetSize, 0)) {
  if (initial >= stateCount) throw std::invalid_argument("Dfa: bad initial");
}

void Dfa::setTransition(std::size_t from, Symbol a, std::size_t to) {
  if (from >= stateCount() || to >= stateCount() || a >= alphabet_) {
    throw std::out_of_range("Dfa::setTransition");
  }
  delta_[from][a] = to;
}

void Dfa::setAccepting(std::size_t s, bool accepting) {
  if (s >= stateCount()) throw std::out_of_range("Dfa::setAccepting");
  accepting_[s] = accepting ? 1 : 0;
}

std::size_t Dfa::next(std::size_t s, Symbol a) const {
  if (s >= stateCount() || a >= alphabet_) throw std::out_of_range("Dfa::next");
  return delta_[s][a];
}

std::size_t Dfa::deltaStar(const Word& w) const {
  std::size_t s = initial_;
  for (Symbol a : w) s = next(s, a);
  return s;
}

std::vector<Word> Dfa::accessWords() const {
  std::vector<Word> access(stateCount());
  std::vector<char> seen(stateCount(), 0);
  std::deque<std::size_t> work;
  seen[initial_] = 1;
  work.push_back(initial_);
  while (!work.empty()) {
    const std::size_t s = work.front();
    work.pop_front();
    for (Symbol a = 0; a < alphabet_; ++a) {
      const std::size_t t = delta_[s][a];
      if (!seen[t]) {
        seen[t] = 1;
        access[t] = access[s];
        access[t].push_back(a);
        work.push_back(t);
      }
    }
  }
  return access;
}

std::vector<Word> Dfa::characterizationSet() const {
  std::vector<Word> w;
  w.push_back({});  // ε separates accepting from rejecting states
  // For every pair of states, find a distinguishing suffix by BFS over the
  // pair graph, and add it if no existing suffix already separates them.
  const auto separated = [&](std::size_t a, std::size_t b) {
    for (const auto& suffix : w) {
      std::size_t x = a, y = b;
      for (Symbol s : suffix) {
        x = delta_[x][s];
        y = delta_[y][s];
      }
      if (accepting_[x] != accepting_[y]) return true;
    }
    return false;
  };
  for (std::size_t a = 0; a < stateCount(); ++a) {
    for (std::size_t b = a + 1; b < stateCount(); ++b) {
      if (separated(a, b)) continue;
      // BFS for the shortest distinguishing word.
      std::map<std::pair<std::size_t, std::size_t>, Word> seen;
      std::deque<std::pair<std::size_t, std::size_t>> work;
      seen[{a, b}] = {};
      work.push_back({a, b});
      bool found = false;
      while (!work.empty() && !found) {
        const auto [x, y] = work.front();
        work.pop_front();
        for (Symbol s = 0; s < alphabet_ && !found; ++s) {
          const std::size_t nx = delta_[x][s];
          const std::size_t ny = delta_[y][s];
          auto word = seen[{x, y}];
          word.push_back(s);
          if (accepting_[nx] != accepting_[ny]) {
            w.push_back(std::move(word));
            found = true;
          } else if (nx != ny && !seen.count({nx, ny})) {
            seen[{nx, ny}] = std::move(word);
            work.push_back({nx, ny});
          }
        }
      }
      // Equivalent states have no distinguishing word — nothing to add.
    }
  }
  return w;
}

bool Dfa::equivalent(const Dfa& other) const {
  if (alphabet_ != other.alphabet_) return false;
  std::map<std::pair<std::size_t, std::size_t>, char> seen;
  std::deque<std::pair<std::size_t, std::size_t>> work;
  seen[{initial_, other.initial_}] = 1;
  work.push_back({initial_, other.initial_});
  while (!work.empty()) {
    const auto [x, y] = work.front();
    work.pop_front();
    if (accepting_[x] != other.accepting_[y]) return false;
    for (Symbol s = 0; s < alphabet_; ++s) {
      const auto nxt = std::make_pair(delta_[x][s], other.delta_[y][s]);
      if (!seen.count(nxt)) {
        seen[nxt] = 1;
        work.push_back(nxt);
      }
    }
  }
  return true;
}

automata::Automaton Dfa::toAutomaton(
    const std::vector<automata::Interaction>& alphabet,
    const automata::SignalTableRef& signals,
    const automata::SignalTableRef& props, const std::string& name) const {
  if (alphabet.size() != alphabet_) {
    throw std::invalid_argument("Dfa::toAutomaton: alphabet size mismatch");
  }
  automata::Automaton out(signals, props, name);
  automata::SignalSet ins, outs;
  for (const auto& x : alphabet) {
    ins |= x.in;
    outs |= x.out;
  }
  out.declareSignals(ins, outs);

  std::vector<automata::StateId> map(stateCount(), UINT32_MAX);
  const auto ensure = [&](std::size_t s) {
    if (map[s] == UINT32_MAX) {
      map[s] = out.addState("h" + std::to_string(s));
      out.labelWithStateName(map[s]);
    }
    return map[s];
  };
  if (accepting_[initial_]) out.markInitial(ensure(initial_));
  for (std::size_t s = 0; s < stateCount(); ++s) {
    if (!accepting_[s]) continue;
    for (Symbol a = 0; a < alphabet_; ++a) {
      const std::size_t t = delta_[s][a];
      if (!accepting_[t]) continue;
      out.addTransition(ensure(s), alphabet[a], ensure(t));
    }
  }
  return out.prunedToReachable();
}

}  // namespace mui::learnlib
