#pragma once
// Deterministic finite automata over a symbol alphabet 0..|Σ|-1 — the
// hypothesis representation of the regular-inference baselines (paper
// Sec. 6). Symbols index into an interaction alphabet (see word.hpp); the
// learned language is the prefix-closed set of executable interaction
// sequences of the legacy component.

#include <cstdint>
#include <string>
#include <vector>

#include "automata/automaton.hpp"

namespace mui::learnlib {

using Symbol = std::uint32_t;
using Word = std::vector<Symbol>;

class Dfa {
 public:
  Dfa(std::size_t stateCount, std::size_t alphabetSize, std::size_t initial);

  void setTransition(std::size_t from, Symbol a, std::size_t to);
  void setAccepting(std::size_t s, bool accepting);

  [[nodiscard]] std::size_t stateCount() const { return accepting_.size(); }
  [[nodiscard]] std::size_t alphabetSize() const { return alphabet_; }
  [[nodiscard]] std::size_t initial() const { return initial_; }
  [[nodiscard]] std::size_t next(std::size_t s, Symbol a) const;
  [[nodiscard]] bool accepting(std::size_t s) const { return accepting_[s]; }

  /// State reached by `w` from the initial state.
  [[nodiscard]] std::size_t deltaStar(const Word& w) const;
  [[nodiscard]] bool accepts(const Word& w) const {
    return accepting_[deltaStar(w)];
  }

  /// Shortest access word per state (BFS).
  [[nodiscard]] std::vector<Word> accessWords() const;

  /// A characterization set W: suffixes distinguishing every pair of
  /// inequivalent states (pairwise BFS over the pair graph). Contains ε.
  [[nodiscard]] std::vector<Word> characterizationSet() const;

  /// Language equivalence (product BFS); used by tests as ground truth.
  [[nodiscard]] bool equivalent(const Dfa& other) const;

  /// Converts the accepting part into an Automaton: states h0..hk with
  /// transitions labeled by the interaction alphabet; the rejecting part is
  /// dropped (non-members are refusals). Only accepting states reachable
  /// through accepting states are kept.
  [[nodiscard]] automata::Automaton toAutomaton(
      const std::vector<automata::Interaction>& alphabet,
      const automata::SignalTableRef& signals,
      const automata::SignalTableRef& props, const std::string& name) const;

 private:
  std::size_t alphabet_;
  std::size_t initial_;
  std::vector<char> accepting_;
  std::vector<std::vector<std::size_t>> delta_;  // [state][symbol]
};

}  // namespace mui::learnlib
