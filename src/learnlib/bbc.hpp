#pragma once
// Black-box checking (Peled/Vardi/Yannakakis, paper Sec. 6): interleave L*
// learning with model checking of the hypothesis against the context, and
// fall back to W-method conformance testing when the check passes.
//
// This is the comparison baseline for experiment E2. Contrasts with the
// chaotic-closure loop:
//  - the hypothesis is an *under*-approximation, so a passing check proves
//    nothing until an (exponential) conformance suite also passes — and the
//    final verdict is only "correct up to the assumed state bound";
//  - hypothesis states carry no real state names, so properties over legacy
//    component states are out of reach (context-side properties and
//    deadlock freedom only).

#include <string>

#include "automata/automaton.hpp"
#include "learnlib/lstar.hpp"
#include "testing/legacy.hpp"

namespace mui::learnlib {

struct BbcConfig {
  /// CCTL property over *context* propositions (empty: deadlock freedom
  /// only).
  std::string property;
  bool requireDeadlockFree = true;
  automata::InteractionMode mode = automata::InteractionMode::AtMostOneSignal;
  /// Assumed upper bound on the component's state count — the W-method's
  /// soundness assumption (paper Sec. 6, "A has at most as many states as
  /// M").
  std::size_t stateBound = 12;
  std::size_t maxRounds = 1000;
  CeStrategy ceStrategy = CeStrategy::AllPrefixes;
};

enum class BbcVerdict {
  ProvenCorrectUpToBound,
  RealError,
  Inconclusive,
};

struct BbcResult {
  BbcVerdict verdict = BbcVerdict::Inconclusive;
  std::string explanation;
  std::uint64_t membershipQueries = 0;
  std::uint64_t periods = 0;
  std::size_t equivalenceSuites = 0;
  std::size_t rounds = 0;
  std::size_t hypothesisStates = 0;
};

class BlackBoxChecker {
 public:
  BlackBoxChecker(automata::Automaton context,
                  testing::LegacyComponent& legacy, BbcConfig config);

  BbcResult run();

 private:
  automata::Automaton context_;
  testing::LegacyComponent& legacy_;
  BbcConfig config_;
};

}  // namespace mui::learnlib
