#pragma once
// Teacher and Oracle of the regular-inference setting (paper Sec. 6): the
// Learner asks membership queries against the black-box component and
// equivalence queries against a conformance-testing oracle (Vasilevskii/
// Chow W-method) — "conformance testing provides a systematic way of
// achieving an answer to an equivalence query".

#include <map>
#include <memory>
#include <optional>

#include "learnlib/dfa.hpp"
#include "testing/legacy.hpp"

namespace mui::learnlib {

class MembershipOracle {
 public:
  virtual ~MembershipOracle() = default;
  /// Is `w` an executable interaction sequence of the component?
  virtual bool member(const Word& w) = 0;
  /// Distinct queries actually executed on the component.
  [[nodiscard]] virtual std::uint64_t queries() const = 0;
  /// Total component periods driven (resets excluded).
  [[nodiscard]] virtual std::uint64_t periods() const = 0;
};

/// Asks the real component: reset, feed the interactions one per period,
/// accept iff every step executes with the expected outputs. Results are
/// memoized; only cache misses touch the component.
class LegacyMembershipOracle final : public MembershipOracle {
 public:
  LegacyMembershipOracle(testing::LegacyComponent& legacy,
                         std::vector<automata::Interaction> alphabet);

  bool member(const Word& w) override;
  [[nodiscard]] std::uint64_t queries() const override { return queries_; }
  [[nodiscard]] std::uint64_t periods() const override { return periods_; }

  [[nodiscard]] const std::vector<automata::Interaction>& alphabet() const {
    return alphabet_;
  }

 private:
  testing::LegacyComponent& legacy_;
  std::vector<automata::Interaction> alphabet_;
  std::map<Word, bool> cache_;
  std::uint64_t queries_ = 0;
  std::uint64_t periods_ = 0;
};

class EquivalenceOracle {
 public:
  virtual ~EquivalenceOracle() = default;
  /// A word on which the hypothesis and the component disagree, if any.
  virtual std::optional<Word> findCounterexample(const Dfa& hypothesis) = 0;
};

/// The W-method (Chow 1978 / Vasilevskii 1973): for a hypothesis with k
/// states and a bound n on the component's state count, the suite
/// P · Σ^{≤ n-k+1} · W is exhaustive. Exponential in n-k — the cost the
/// paper's approach avoids by never needing an equivalence check.
class WMethodOracle final : public EquivalenceOracle {
 public:
  WMethodOracle(MembershipOracle& membership, std::size_t stateBound)
      : membership_(membership), stateBound_(stateBound) {}

  std::optional<Word> findCounterexample(const Dfa& hypothesis) override;

  [[nodiscard]] std::uint64_t suitesRun() const { return suites_; }

 private:
  MembershipOracle& membership_;
  std::size_t stateBound_;
  std::uint64_t suites_ = 0;
};

/// Test-only oracle with white-box access to the hidden automaton: compares
/// languages exactly (BFS over the product of hypothesis and hidden model).
class PerfectEquivalenceOracle final : public EquivalenceOracle {
 public:
  PerfectEquivalenceOracle(const automata::Automaton& hidden,
                           std::vector<automata::Interaction> alphabet);

  std::optional<Word> findCounterexample(const Dfa& hypothesis) override;

 private:
  const automata::Automaton& hidden_;
  std::vector<automata::Interaction> alphabet_;
};

}  // namespace mui::learnlib
