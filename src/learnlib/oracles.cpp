#include "learnlib/oracles.hpp"

#include <deque>

#include "obs/metrics.hpp"

namespace mui::learnlib {

LegacyMembershipOracle::LegacyMembershipOracle(
    testing::LegacyComponent& legacy,
    std::vector<automata::Interaction> alphabet)
    : legacy_(legacy), alphabet_(std::move(alphabet)) {}

bool LegacyMembershipOracle::member(const Word& w) {
  const auto it = cache_.find(w);
  if (it != cache_.end()) return it->second;
  ++queries_;
  static obs::Counter& queries = obs::Registry::global().counter(
      "mui_lstar_membership_queries_total",
      "Uncached L* membership queries against the legacy component");
  queries.inc();
  legacy_.reset();
  bool ok = true;
  std::uint64_t steps = 0;
  for (Symbol s : w) {
    const auto& x = alphabet_.at(s);
    const auto out = legacy_.step(x.in);
    ++periods_;
    ++steps;
    if (!out || !(*out == x.out)) {
      ok = false;
      break;
    }
  }
  static obs::Counter& periods = obs::Registry::global().counter(
      "mui_lstar_periods_total",
      "Legacy-component periods driven by L* membership queries");
  periods.add(steps);
  cache_.emplace(w, ok);
  return ok;
}

std::optional<Word> WMethodOracle::findCounterexample(const Dfa& hypothesis) {
  ++suites_;
  const std::size_t k = hypothesis.stateCount();
  const std::size_t extra = stateBound_ > k ? stateBound_ - k : 0;
  const std::size_t sigma = hypothesis.alphabetSize();

  // Transition cover P: access words plus their one-symbol extensions.
  const auto access = hypothesis.accessWords();
  std::vector<Word> cover;
  cover.push_back({});
  for (std::size_t s = 0; s < k; ++s) {
    cover.push_back(access[s]);
    for (Symbol a = 0; a < sigma; ++a) {
      Word w = access[s];
      w.push_back(a);
      cover.push_back(std::move(w));
    }
  }
  const auto w = hypothesis.characterizationSet();

  std::optional<Word> counterexample;
  // p · m · s for all middles m ∈ Σ^{≤ extra}.
  const auto tryWord = [&](const Word& word) {
    if (counterexample) return;
    if (membership_.member(word) != hypothesis.accepts(word)) {
      counterexample = word;
    }
  };
  const auto sweep = [&](auto&& self, Word& middle, std::size_t depth) -> void {
    if (counterexample) return;
    for (const auto& p : cover) {
      for (const auto& suffix : w) {
        Word word = p;
        word.insert(word.end(), middle.begin(), middle.end());
        word.insert(word.end(), suffix.begin(), suffix.end());
        tryWord(word);
        if (counterexample) return;
      }
    }
    if (depth == extra) return;
    for (Symbol a = 0; a < sigma; ++a) {
      middle.push_back(a);
      self(self, middle, depth + 1);
      middle.pop_back();
      if (counterexample) return;
    }
  };
  Word middle;
  sweep(sweep, middle, 0);
  return counterexample;
}

PerfectEquivalenceOracle::PerfectEquivalenceOracle(
    const automata::Automaton& hidden,
    std::vector<automata::Interaction> alphabet)
    : hidden_(hidden), alphabet_(std::move(alphabet)) {}

std::optional<Word> PerfectEquivalenceOracle::findCounterexample(
    const Dfa& hypothesis) {
  // Product BFS of the hidden automaton (with an implicit rejecting sink)
  // and the hypothesis; a pair disagreeing on acceptance yields the word.
  constexpr std::size_t kSink = static_cast<std::size_t>(-1);
  struct Node {
    std::size_t hidden;
    std::size_t hyp;
    std::size_t parent;
    Symbol via;
  };
  std::vector<Node> nodes;
  std::map<std::pair<std::size_t, std::size_t>, char> seen;
  std::deque<std::size_t> work;

  const std::size_t h0 = hidden_.initialStates().empty()
                             ? kSink
                             : hidden_.initialStates()[0];
  nodes.push_back({h0, hypothesis.initial(), 0, 0});
  seen[{h0, hypothesis.initial()}] = 1;
  work.push_back(0);

  const auto wordTo = [&](std::size_t idx) {
    Word w;
    while (idx != 0) {
      w.push_back(nodes[idx].via);
      idx = nodes[idx].parent;
    }
    std::reverse(w.begin(), w.end());
    return w;
  };

  while (!work.empty()) {
    const std::size_t idx = work.front();
    work.pop_front();
    const auto [hs, ys] = std::make_pair(nodes[idx].hidden, nodes[idx].hyp);
    const bool hiddenAccepts = hs != kSink;
    if (hiddenAccepts != hypothesis.accepting(ys)) return wordTo(idx);
    for (Symbol a = 0; a < alphabet_.size(); ++a) {
      std::size_t nh = kSink;
      if (hs != kSink) {
        const auto succ =
            hidden_.successors(static_cast<automata::StateId>(hs),
                               alphabet_[a]);
        if (!succ.empty()) nh = succ.front();
      }
      const std::size_t ny = hypothesis.next(ys, a);
      const auto key = std::make_pair(nh, ny);
      if (!seen.count(key)) {
        seen[key] = 1;
        nodes.push_back({nh, ny, idx, a});
        work.push_back(nodes.size() - 1);
      }
    }
  }
  return std::nullopt;
}

}  // namespace mui::learnlib
