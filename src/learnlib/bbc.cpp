#include "learnlib/bbc.hpp"

#include <unordered_map>

#include "automata/compose.hpp"
#include "ctl/counterexample.hpp"
#include "ctl/parser.hpp"

namespace mui::learnlib {

BlackBoxChecker::BlackBoxChecker(automata::Automaton context,
                                 testing::LegacyComponent& legacy,
                                 BbcConfig config)
    : context_(std::move(context)), legacy_(legacy), config_(std::move(config)) {}

BbcResult BlackBoxChecker::run() {
  BbcResult res;
  const auto alphabet =
      automata::makeAlphabet(legacy_.inputs(), legacy_.outputs(), config_.mode);
  std::unordered_map<automata::Interaction, Symbol, automata::InteractionHash>
      symbolOf;
  for (Symbol a = 0; a < alphabet.size(); ++a) symbolOf.emplace(alphabet[a], a);

  LegacyMembershipOracle oracle(legacy_, alphabet);
  WMethodOracle conformance(oracle, config_.stateBound);
  LStar learner(oracle, alphabet.size(), config_.ceStrategy);

  const ctl::FormulaPtr phi =
      config_.property.empty() ? nullptr : ctl::parseFormula(config_.property);

  const auto wordOfRun = [&](const automata::Product& product,
                             const automata::Run& run) {
    Word w;
    w.reserve(run.labels.size());
    for (const auto& l : run.labels) {
      w.push_back(symbolOf.at(product.projectInteraction(l, 1)));
    }
    return w;
  };

  for (std::size_t round = 0; round < config_.maxRounds; ++round) {
    res.rounds = round + 1;
    const Dfa hypothesis = learner.buildHypothesis();
    res.hypothesisStates = hypothesis.stateCount();
    const automata::Automaton hAut =
        hypothesis.toAutomaton(alphabet, context_.signalTable(),
                               context_.propTable(), legacy_.name() + "_hyp");
    const automata::Product product = automata::compose(context_, hAut);

    ctl::VerifyOptions vo;
    vo.requireDeadlockFree = config_.requireDeadlockFree;
    const auto vres = ctl::verify(product.automaton, phi, vo);

    if (vres.holds) {
      // The hypothesis satisfies the requirement — but an
      // under-approximation proves nothing until conformance establishes
      // equivalence up to the state bound (the paper's Sec. 6 critique).
      const auto ce = conformance.findCounterexample(hypothesis);
      if (!ce) {
        res.verdict = BbcVerdict::ProvenCorrectUpToBound;
        res.explanation = "hypothesis passed the check and the W-method "
                          "suite for the assumed state bound";
        break;
      }
      learner.addCounterexample(*ce, hypothesis);
      continue;
    }

    const auto& cex = vres.cex();
    if (!cex.pathExact) {
      res.verdict = BbcVerdict::Inconclusive;
      res.explanation = "counterexample shape unsupported";
      break;
    }
    const Word word = wordOfRun(product, cex.run);
    const bool realizable = oracle.member(word);

    if (cex.kind == ctl::Counterexample::Kind::Property) {
      if (realizable) {
        res.verdict = BbcVerdict::RealError;
        res.explanation = "property counterexample realizable on the "
                          "component";
        break;
      }
      learner.addCounterexample(word, hypothesis);  // over-claimed trace
      continue;
    }

    // Deadlock counterexample.
    if (!realizable) {
      learner.addCounterexample(word, hypothesis);
      continue;
    }
    // The prefix is real; the deadlock is real iff every context offer at
    // the stuck state is refused by the component.
    const automata::StateId stuck = cex.run.states.back();
    const automata::StateId ctxState = product.origins[stuck][0];
    bool escaped = false;
    for (const auto& t : context_.transitionsFrom(ctxState)) {
      const automata::Interaction offer{t.label.out & legacy_.inputs(),
                                        t.label.in & legacy_.outputs()};
      const auto sym = symbolOf.find(offer);
      if (sym == symbolOf.end()) continue;
      Word extended = word;
      extended.push_back(sym->second);
      if (oracle.member(extended)) {
        learner.addCounterexample(extended, hypothesis);  // refusal over-claimed
        escaped = true;
        break;
      }
    }
    if (!escaped) {
      res.verdict = BbcVerdict::RealError;
      res.explanation = "reachable deadlock confirmed on the component";
      break;
    }
  }

  res.membershipQueries = oracle.queries();
  res.periods = oracle.periods();
  res.equivalenceSuites = conformance.suitesRun();
  if (res.verdict == BbcVerdict::Inconclusive && res.explanation.empty()) {
    res.explanation = "round budget exhausted";
  }
  return res;
}

}  // namespace mui::learnlib
