#pragma once
// Angluin's L* (paper Sec. 6, "the most widely recognized regular inference
// algorithm"): an observation table with prefix rows S ∪ S·Σ and suffix
// columns E, filled by membership queries; counterexamples from the
// equivalence oracle are absorbed by adding all their prefixes to S
// (Angluin's original strategy).
//
// This is the under-approximation baseline the paper contrasts with: it
// must learn enough of the *whole* component to pass an equivalence check,
// whereas the chaotic-closure loop only ever explores what the context can
// reach and needs no equivalence oracle at all.

#include "learnlib/oracles.hpp"

namespace mui::learnlib {

/// How equivalence counterexamples are absorbed into the table.
enum class CeStrategy {
  /// Angluin's original: every prefix of the counterexample joins S.
  AllPrefixes,
  /// Rivest–Schapire: binary-search the counterexample for a single
  /// distinguishing suffix, which joins E — O(log |ce|) membership queries
  /// per counterexample and a much smaller table (the "domain-specific
  /// optimization" lineage the paper cites, Sec. 6).
  RivestSchapire,
};

struct LStarStats {
  std::size_t equivalenceQueries = 0;
  std::size_t rounds = 0;          // hypotheses built
  std::size_t finalStates = 0;
  std::size_t tableRows = 0;
  std::size_t tableColumns = 0;
};

class LStar {
 public:
  LStar(MembershipOracle& oracle, std::size_t alphabetSize,
        CeStrategy strategy = CeStrategy::AllPrefixes);

  /// Closes the table (and restores consistency) and builds the hypothesis.
  Dfa buildHypothesis();

  /// Absorbs an equivalence counterexample (see CeStrategy). `hypothesis`
  /// must be the DFA the counterexample was found against.
  void addCounterexample(const Word& ce, const Dfa& hypothesis);

  /// Full learning loop against an equivalence oracle; stops after
  /// `maxRounds` hypotheses at the latest.
  Dfa learn(EquivalenceOracle& eq, std::size_t maxRounds = 1000);

  [[nodiscard]] const LStarStats& stats() const { return stats_; }

 private:
  using Row = std::vector<char>;

  Row rowOf(const Word& prefix);
  void ensureClosedAndConsistent();

  MembershipOracle& oracle_;
  std::size_t alphabet_;
  CeStrategy strategy_;
  std::vector<Word> s_;  // S: representative prefixes
  std::vector<Word> e_;  // E: distinguishing suffixes
  LStarStats stats_;
};

}  // namespace mui::learnlib
