#include "learnlib/lstar.hpp"

#include <algorithm>
#include <map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mui::learnlib {

LStar::LStar(MembershipOracle& oracle, std::size_t alphabetSize,
             CeStrategy strategy)
    : oracle_(oracle), alphabet_(alphabetSize), strategy_(strategy) {
  s_.push_back({});  // ε
  e_.push_back({});  // ε
}

LStar::Row LStar::rowOf(const Word& prefix) {
  Row row;
  row.reserve(e_.size());
  for (const auto& suffix : e_) {
    Word w = prefix;
    w.insert(w.end(), suffix.begin(), suffix.end());
    row.push_back(oracle_.member(w) ? 1 : 0);
  }
  return row;
}

void LStar::ensureClosedAndConsistent() {
  bool changed = true;
  while (changed) {
    changed = false;

    // Closedness: every one-symbol extension's row must appear among S.
    std::map<Row, std::size_t> sRows;
    for (std::size_t i = 0; i < s_.size(); ++i) sRows.emplace(rowOf(s_[i]), i);
    for (std::size_t i = 0; i < s_.size() && !changed; ++i) {
      for (Symbol a = 0; a < alphabet_ && !changed; ++a) {
        Word ext = s_[i];
        ext.push_back(a);
        if (!sRows.count(rowOf(ext))) {
          s_.push_back(std::move(ext));
          changed = true;
        }
      }
    }
    if (changed) continue;

    // Consistency: equal rows must stay equal under every extension.
    for (std::size_t i = 0; i < s_.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < s_.size() && !changed; ++j) {
        if (rowOf(s_[i]) != rowOf(s_[j])) continue;
        for (Symbol a = 0; a < alphabet_ && !changed; ++a) {
          Word wi = s_[i];
          wi.push_back(a);
          Word wj = s_[j];
          wj.push_back(a);
          const Row ri = rowOf(wi);
          const Row rj = rowOf(wj);
          if (ri == rj) continue;
          // Find the separating suffix index and extend E with a·e.
          for (std::size_t c = 0; c < ri.size(); ++c) {
            if (ri[c] != rj[c]) {
              Word suffix;
              suffix.push_back(a);
              suffix.insert(suffix.end(), e_[c].begin(), e_[c].end());
              e_.push_back(std::move(suffix));
              changed = true;
              break;
            }
          }
        }
      }
    }
  }
}

Dfa LStar::buildHypothesis() {
  ensureClosedAndConsistent();

  // Distinct rows of S become states.
  std::map<Row, std::size_t> stateOf;
  std::vector<std::size_t> repr;  // representative prefix index per state
  for (std::size_t i = 0; i < s_.size(); ++i) {
    const Row row = rowOf(s_[i]);
    if (!stateOf.count(row)) {
      stateOf.emplace(row, stateOf.size());
      repr.push_back(i);
    }
  }

  Dfa dfa(stateOf.size(), alphabet_, stateOf.at(rowOf(Word{})));
  for (const auto& [row, id] : stateOf) {
    dfa.setAccepting(id, row[0] != 0);  // E[0] is ε
  }
  for (std::size_t st = 0; st < repr.size(); ++st) {
    for (Symbol a = 0; a < alphabet_; ++a) {
      Word ext = s_[repr[st]];
      ext.push_back(a);
      dfa.setTransition(st, a, stateOf.at(rowOf(ext)));
    }
  }

  ++stats_.rounds;
  stats_.finalStates = dfa.stateCount();
  stats_.tableRows = s_.size() * (alphabet_ + 1);
  stats_.tableColumns = e_.size();
  return dfa;
}

void LStar::addCounterexample(const Word& ce, const Dfa& hypothesis) {
  if (strategy_ == CeStrategy::AllPrefixes) {
    for (std::size_t len = 1; len <= ce.size(); ++len) {
      Word prefix(ce.begin(), ce.begin() + static_cast<std::ptrdiff_t>(len));
      if (std::find(s_.begin(), s_.end(), prefix) == s_.end()) {
        s_.push_back(std::move(prefix));
      }
    }
    return;
  }

  // Rivest–Schapire: f(i) = member(access(δ*(ce[0..i))) · ce[i..]).
  // f(0) = member(ce) and f(|ce|) = hypothesis verdict, which differ; a
  // binary search finds i with f(i) ≠ f(i+1), making ce[i+1..] a suffix
  // that distinguishes two rows the table currently conflates.
  const auto access = hypothesis.accessWords();
  const auto f = [&](std::size_t i) {
    Word prefix(ce.begin(), ce.begin() + static_cast<std::ptrdiff_t>(i));
    Word w = access[hypothesis.deltaStar(prefix)];
    w.insert(w.end(), ce.begin() + static_cast<std::ptrdiff_t>(i), ce.end());
    return oracle_.member(w);
  };
  const bool f0 = f(0);
  std::size_t lo = 0, hi = ce.size();  // invariant: f(lo) == f0 != f(hi)
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    (f(mid) == f0 ? lo : hi) = mid;
  }
  Word suffix(ce.begin() + static_cast<std::ptrdiff_t>(hi), ce.end());
  if (std::find(e_.begin(), e_.end(), suffix) == e_.end()) {
    e_.push_back(std::move(suffix));
  }
  // The access prefix that exposes the split must be a candidate row.
  Word prefix(ce.begin(), ce.begin() + static_cast<std::ptrdiff_t>(lo));
  Word exposed = access[hypothesis.deltaStar(prefix)];
  if (lo < ce.size()) exposed.push_back(ce[lo]);
  if (std::find(s_.begin(), s_.end(), exposed) == s_.end()) {
    s_.push_back(std::move(exposed));
  }
}

Dfa LStar::learn(EquivalenceOracle& eq, std::size_t maxRounds) {
  const obs::ObsSpan span("learn");
  static obs::Counter& hypotheses = obs::Registry::global().counter(
      "mui_lstar_hypotheses_total", "L* hypothesis automata built");
  hypotheses.inc();
  Dfa hypothesis = buildHypothesis();
  for (std::size_t round = 0; round < maxRounds; ++round) {
    ++stats_.equivalenceQueries;
    const auto ce = eq.findCounterexample(hypothesis);
    if (!ce) return hypothesis;
    addCounterexample(*ce, hypothesis);
    hypothesis = buildHypothesis();
    hypotheses.inc();
  }
  return hypothesis;
}

}  // namespace mui::learnlib
