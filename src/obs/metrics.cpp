#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>

#include "util/json.hpp"
#include "util/text_table.hpp"

namespace mui::obs {

void Histogram::observe(std::uint64_t v) {
  buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::size_t Histogram::bucketIndex(std::uint64_t v) {
  if (v <= 1) return 0;
  const std::size_t i = std::bit_width(v - 1);  // smallest i with v <= 2^i
  return std::min<std::size_t>(i, kBuckets - 1);
}

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

namespace {

enum class Kind { Counter, Gauge, Histogram, Info };

const char* kindName(Kind k) {
  switch (k) {
    case Kind::Counter:
      return "counter";
    case Kind::Gauge:
      return "gauge";
    case Kind::Histogram:
      return "histogram";
    case Kind::Info:
      return "info";
  }
  return "?";
}

struct Entry {
  Kind kind;
  std::string help;
  std::string unit;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
  std::vector<std::pair<std::string, std::string>> labels;  // Kind::Info
};

/// `{k="v",k2="v2"}` with backslash/quote escaping, "" with no labels.
std::string labelSet(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"";
    for (const char c : v) {
      if (c == '\\' || c == '"') out += '\\';
      out += c;
    }
    out += "\"";
  }
  out += "}";
  return out;
}

/// Smallest bucket upper bound whose cumulative count reaches
/// `count * q`; 0 when the histogram is empty. Coarse by construction
/// (log2 buckets) but plenty for end-of-run tables.
std::uint64_t quantileBound(const Histogram& h, double q) {
  const std::uint64_t total = h.count();
  if (total == 0) return 0;
  const auto target =
      static_cast<std::uint64_t>(static_cast<double>(total) * q);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    cum += h.bucketCount(i);
    if (cum > target || cum == total) return Histogram::bucketBound(i);
  }
  return Histogram::bucketBound(Histogram::kBuckets - 1);
}

std::size_t highestNonEmptyBucket(const Histogram& h) {
  std::size_t hi = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (h.bucketCount(i) > 0) hi = i;
  }
  return hi;
}

}  // namespace

struct Registry::Impl {
  mutable std::mutex mu;
  std::map<std::string, Entry> entries;  // sorted → deterministic renders

  Entry& findOrCreate(const std::string& name, const std::string& help,
                      const std::string& unit, Kind kind) {
    std::lock_guard lock(mu);
    auto it = entries.find(name);
    if (it != entries.end()) {
      if (it->second.kind != kind) {
        throw std::logic_error("metric '" + name + "' already registered as " +
                               kindName(it->second.kind) + ", requested " +
                               kindName(kind));
      }
      return it->second;
    }
    Entry e;
    e.kind = kind;
    e.help = help;
    e.unit = unit;
    switch (kind) {
      case Kind::Counter:
        e.counter = std::make_unique<Counter>();
        break;
      case Kind::Gauge:
        e.gauge = std::make_unique<Gauge>();
        break;
      case Kind::Histogram:
        e.histogram = std::make_unique<Histogram>();
        break;
      case Kind::Info:
        break;  // labels only, no instrument
    }
    return entries.emplace(name, std::move(e)).first->second;
  }
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const std::string& unit) {
  return *impl_->findOrCreate(name, help, unit, Kind::Counter).counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const std::string& unit) {
  return *impl_->findOrCreate(name, help, unit, Kind::Gauge).gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               const std::string& unit) {
  return *impl_->findOrCreate(name, help, unit, Kind::Histogram).histogram;
}

void Registry::setInfo(
    const std::string& name, const std::string& help,
    std::vector<std::pair<std::string, std::string>> labels) {
  Entry& e = impl_->findOrCreate(name, help, "", Kind::Info);
  std::lock_guard lock(impl_->mu);
  e.labels = std::move(labels);
}

std::string Registry::renderText() const {
  std::lock_guard lock(impl_->mu);
  util::TextTable table({"metric", "kind", "value", "help"});
  for (const auto& [name, e] : impl_->entries) {
    std::string value;
    switch (e.kind) {
      case Kind::Counter:
        value = std::to_string(e.counter->value());
        break;
      case Kind::Gauge:
        value = std::to_string(e.gauge->value());
        break;
      case Kind::Histogram: {
        const Histogram& h = *e.histogram;
        value = "n=" + std::to_string(h.count()) +
                " sum=" + std::to_string(h.sum()) +
                " p50<=" + std::to_string(quantileBound(h, 0.50)) +
                " p95<=" + std::to_string(quantileBound(h, 0.95));
        break;
      }
      case Kind::Info:
        value = labelSet(e.labels);
        break;
    }
    std::string help = e.help;
    if (!e.unit.empty()) help += " [" + e.unit + "]";
    table.row({name, kindName(e.kind), value, help});
  }
  return table.str();
}

std::string Registry::renderJson() const {
  std::lock_guard lock(impl_->mu);
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& [name, e] : impl_->entries) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":" + util::jsonQuote(name) +
           ",\"kind\":\"" + kindName(e.kind) +
           "\",\"help\":" + util::jsonQuote(e.help) +
           ",\"unit\":" + util::jsonQuote(e.unit);
    switch (e.kind) {
      case Kind::Counter:
        out += ",\"value\":" + std::to_string(e.counter->value());
        break;
      case Kind::Gauge:
        out += ",\"value\":" + std::to_string(e.gauge->value());
        break;
      case Kind::Histogram: {
        const Histogram& h = *e.histogram;
        out += ",\"count\":" + std::to_string(h.count()) +
               ",\"sum\":" + std::to_string(h.sum()) + ",\"buckets\":[";
        const std::size_t hi = highestNonEmptyBucket(h);
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i <= hi; ++i) {
          cum += h.bucketCount(i);
          if (i > 0) out += ",";
          out += "{\"le\":\"" + std::to_string(Histogram::bucketBound(i)) +
                 "\",\"count\":" + std::to_string(cum) + "}";
        }
        if (hi > 0 || h.count() > 0) out += ",";
        out += "{\"le\":\"+Inf\",\"count\":" + std::to_string(h.count()) +
               "}]";
        break;
      }
      case Kind::Info: {
        out += ",\"labels\":{";
        bool firstLabel = true;
        for (const auto& [k, v] : e.labels) {
          if (!firstLabel) out += ",";
          firstLabel = false;
          out += util::jsonQuote(k) + ":" + util::jsonQuote(v);
        }
        out += "},\"value\":1";
        break;
      }
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string Registry::renderPrometheus() const {
  std::lock_guard lock(impl_->mu);
  std::string out;
  for (const auto& [name, e] : impl_->entries) {
    out += "# HELP " + name + " " + e.help;
    if (!e.unit.empty()) out += " (" + e.unit + ")";
    // Exposition format 0.0.4 has no "info" type; the idiom is a constant
    // gauge of 1 carrying the payload in labels.
    out += "\n# TYPE " + name + " " +
           (e.kind == Kind::Info ? "gauge" : kindName(e.kind)) + "\n";
    switch (e.kind) {
      case Kind::Counter:
        out += name + " " + std::to_string(e.counter->value()) + "\n";
        break;
      case Kind::Gauge:
        out += name + " " + std::to_string(e.gauge->value()) + "\n";
        break;
      case Kind::Histogram: {
        const Histogram& h = *e.histogram;
        const std::size_t hi = highestNonEmptyBucket(h);
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i <= hi; ++i) {
          cum += h.bucketCount(i);
          out += name + "_bucket{le=\"" +
                 std::to_string(Histogram::bucketBound(i)) +
                 "\"} " + std::to_string(cum) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count()) +
               "\n";
        out += name + "_sum " + std::to_string(h.sum()) + "\n";
        out += name + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
      case Kind::Info:
        out += name + labelSet(e.labels) + " 1\n";
        break;
    }
  }
  return out;
}

void Registry::resetAll() {
  std::lock_guard lock(impl_->mu);
  for (auto& [name, e] : impl_->entries) {
    switch (e.kind) {
      case Kind::Counter:
        e.counter->reset();
        break;
      case Kind::Gauge:
        e.gauge->reset();
        break;
      case Kind::Histogram:
        e.histogram->reset();
        break;
      case Kind::Info:
        break;  // constant; nothing to zero
    }
  }
}

std::size_t Registry::size() const {
  std::lock_guard lock(impl_->mu);
  return impl_->entries.size();
}

}  // namespace mui::obs
