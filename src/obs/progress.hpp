#pragma once
// Live job progress for the daemon's /jobs endpoint (docs/SERVE.md).
//
// A JobProgress is owned by whoever tracks the job (the serve job registry)
// and written by the engine runner and the integration loop as the job
// moves through its phases. Every field is a relaxed atomic so the writers
// stay wait-free on the hot path and a concurrent /jobs snapshot never
// blocks a verification thread; the phase and disposition strings MUST be
// string literals (static storage duration) — readers load the pointer and
// keep it past the store.

#include <atomic>
#include <cstdint>

namespace mui::obs {

class JobProgress {
 public:
  /// Current pipeline phase ("queued", "load", "lint", "presolve",
  /// "closure", "check", "test", "learn", "loop", "done", ...). The
  /// pointer must be a string literal.
  void setPhase(const char* phase) {
    phase_.store(phase, std::memory_order_relaxed);
  }
  const char* phase() const {
    return phase_.load(std::memory_order_relaxed);
  }

  /// Refinement iterations completed so far.
  void setIteration(std::uint64_t i) {
    iteration_.store(i, std::memory_order_relaxed);
  }
  std::uint64_t iteration() const {
    return iteration_.load(std::memory_order_relaxed);
  }

  /// How the job was (or is being) answered: "pending" until known, then
  /// "cache-hit", "presolved", or "loop". The pointer must be a string
  /// literal.
  void setDisposition(const char* d) {
    disposition_.store(d, std::memory_order_relaxed);
  }
  const char* disposition() const {
    return disposition_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<const char*> phase_{"queued"};
  std::atomic<std::uint64_t> iteration_{0};
  std::atomic<const char*> disposition_{"pending"};
};

}  // namespace mui::obs
