#pragma once
// Structured run journal: one JSONL event per iteration/phase/verdict of
// the verify–test–learn loop, written by runIntegration and the batch
// engine and aggregated by `mui stats` (see obs/stats.hpp).
//
// Schema policy: every event carries `"schema": kJournalSchemaVersion` and
// a `"type"` discriminator; existing fields of an event type are never
// renamed or retyped within a schema version — additions are allowed, and
// any breaking change bumps the version. Consumers must skip events whose
// schema they do not understand. The event catalog lives in
// docs/OBSERVABILITY.md.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mui::obs {

// v2 (additive over v1): every event produced on behalf of a correlated
// job carries its "ulid", and "job" events gained "presolved". Consumers
// accept the whole [kJournalMinSchemaVersion, kJournalSchemaVersion] range
// — v1 and v2 lines may interleave in one journal (e.g. a daemon restarted
// across an upgrade appending to the same file).
inline constexpr int kJournalSchemaVersion = 2;
inline constexpr int kJournalMinSchemaVersion = 1;

/// Builder for one flat JSON object: `.s()` string, `.u()`/`.i()` integer,
/// `.f()` fixed-point double, `.b()` bool, `.raw()` pre-serialized value.
/// Insertion order is preserved.
class JsonObject {
 public:
  JsonObject& s(std::string_view key, std::string_view value);
  JsonObject& u(std::string_view key, std::uint64_t value);
  JsonObject& i(std::string_view key, std::int64_t value);
  JsonObject& f(std::string_view key, double value, int digits = 3);
  JsonObject& b(std::string_view key, bool value);
  JsonObject& raw(std::string_view key, std::string_view json);

  /// The object as `{...}`.
  std::string str() const;
  bool empty() const { return body_.empty(); }

 private:
  std::string body_;
};

/// Thread-safe JSONL sink. Writers call event(); the owner serializes the
/// whole journal with text() once the run is quiesced.
class Journal {
 public:
  /// Appends `{"schema":N,"type":"<type>",<fields>}` as one line.
  void event(std::string_view type, const JsonObject& fields);

  std::string text() const;
  std::size_t eventCount() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::string text_;
  std::size_t events_ = 0;
};

/// A scalar read back from a journal line.
struct JsonValue {
  enum class Kind { String, Number, Bool, Null, Raw };
  Kind kind = Kind::Null;
  std::string text;    // decoded string, or raw JSON for Kind::Raw
  double number = 0;   // for Kind::Number
  bool boolean = false;

  std::uint64_t asUint() const {
    return number < 0 ? 0 : static_cast<std::uint64_t>(number);
  }
};

using FlatObject = std::map<std::string, JsonValue>;

/// Parses one JSON object with scalar values (strings with full escape
/// decoding including \uXXXX surrogate pairs, numbers, booleans, null);
/// nested objects/arrays are kept verbatim as Kind::Raw. Returns nullopt
/// on malformed input — callers count such lines as skipped rather than
/// aborting an aggregation.
std::optional<FlatObject> parseFlatJson(std::string_view line);

/// Parses a JSON array of flat objects (same value rules as
/// parseFlatJson). Used by consumers of the daemon's nested HTTP payloads
/// (`mui top` reading /jobs). Returns nullopt on malformed input.
std::optional<std::vector<FlatObject>> parseFlatJsonArray(
    std::string_view text);

}  // namespace mui::obs
