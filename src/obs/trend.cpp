#include "obs/trend.hpp"

#include <algorithm>
#include <cmath>

#include "obs/journal.hpp"
#include "util/json.hpp"
#include "util/text_table.hpp"

namespace mui::obs {

namespace {

/// Nearest-rank quantile (q in [0,1]) over an unsorted sample; 0 when empty.
double quantile(std::vector<double> sample, double q) {
  if (sample.empty()) return 0;
  std::sort(sample.begin(), sample.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sample.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sample[std::min(idx, sample.size() - 1)];
}

double sumIterations(const StatsReport& r) {
  double total = 0;
  for (const RunStat& run : r.runs) {
    total += static_cast<double>(run.iterations);
  }
  return total;
}

double sumTestPeriods(const StatsReport& r) {
  double total = 0;
  for (const RunStat& run : r.runs) {
    total += static_cast<double>(run.testPeriods);
  }
  return total;
}

double ratePct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

/// Work/latency metric: regression = relative growth beyond threshold.
/// A zero baseline with non-zero current has no relative delta and counts
/// as a regression when gated.
TrendMetric growthMetric(std::string name, double baseline, double current,
                         double thresholdPct, bool gated) {
  TrendMetric m;
  m.name = std::move(name);
  m.baseline = baseline;
  m.current = current;
  m.delta = current - baseline;
  m.gated = gated;
  if (baseline > 0) {
    m.deltaPct = 100.0 * m.delta / baseline;
    m.regressed = gated && m.deltaPct > thresholdPct;
  } else {
    m.deltaPct = current > 0 ? 100.0 : 0.0;
    m.regressed = gated && current > 0;
  }
  return m;
}

/// Rate metric (values already in %): regression = absolute drop beyond
/// thresholdPct percentage points.
TrendMetric rateMetric(std::string name, double baseline, double current,
                       double thresholdPct) {
  TrendMetric m;
  m.name = std::move(name);
  m.baseline = baseline;
  m.current = current;
  m.delta = current - baseline;
  m.deltaPct = m.delta;  // already percentage points
  m.gated = true;
  m.regressed = -m.delta > thresholdPct;
  return m;
}

}  // namespace

TrendReport compareTrend(const StatsReport& baseline,
                         const StatsReport& current,
                         const TrendOptions& opts) {
  TrendReport report;
  report.metrics.push_back(growthMetric("iterations", sumIterations(baseline),
                                        sumIterations(current),
                                        opts.thresholdPct, true));
  report.metrics.push_back(
      growthMetric("testPeriods", sumTestPeriods(baseline),
                   sumTestPeriods(current), opts.thresholdPct, true));
  report.metrics.push_back(rateMetric(
      "presolveRate", ratePct(baseline.presolvedJobs, baseline.jobs),
      ratePct(current.presolvedJobs, current.jobs), opts.thresholdPct));
  report.metrics.push_back(rateMetric(
      "cacheHitRate", ratePct(baseline.cacheHitJobs, baseline.jobs),
      ratePct(current.cacheHitJobs, current.jobs), opts.thresholdPct));
  const bool gateLatency = opts.latencyThresholdPct > 0;
  const double latencyThreshold =
      gateLatency ? opts.latencyThresholdPct : opts.thresholdPct;
  report.metrics.push_back(growthMetric(
      "p50WallMs", quantile(baseline.jobWallMs, 0.50),
      quantile(current.jobWallMs, 0.50), latencyThreshold, gateLatency));
  report.metrics.push_back(growthMetric(
      "p99WallMs", quantile(baseline.jobWallMs, 0.99),
      quantile(current.jobWallMs, 0.99), latencyThreshold, gateLatency));
  for (const TrendMetric& m : report.metrics) {
    if (m.regressed) report.regressed = true;
  }
  return report;
}

std::string renderTrendText(const TrendReport& report) {
  util::TextTable table(
      {"metric", "baseline", "current", "delta", "delta %", "gate", "status"});
  for (const TrendMetric& m : report.metrics) {
    table.row({m.name, util::fmt(m.baseline), util::fmt(m.current),
               util::fmt(m.delta), util::fmt(m.deltaPct),
               m.gated ? "gated" : "advisory",
               m.regressed ? "REGRESSED" : "ok"});
  }
  std::string out = table.str();
  out += "\nVERDICT: ";
  out += report.regressed ? "regressed" : "ok";
  out += "\n";
  return out;
}

std::string renderTrendJson(const TrendReport& report) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const TrendMetric& m : report.metrics) {
    if (!first) out += ",";
    first = false;
    JsonObject o;
    o.s("name", m.name)
        .f("baseline", m.baseline)
        .f("current", m.current)
        .f("delta", m.delta)
        .f("deltaPct", m.deltaPct)
        .b("gated", m.gated)
        .b("regressed", m.regressed);
    out += "\n" + o.str();
  }
  out += "\n],\"verdict\":";
  out += report.regressed ? "\"regressed\"" : "\"ok\"";
  out += "}\n";
  return out;
}

}  // namespace mui::obs
