#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/journal.hpp"
#include "util/json.hpp"

namespace mui::obs {

namespace {

struct TraceEvent {
  std::string name;
  std::string cid;  // correlation id; "" = untagged
  std::int64_t startNs = 0;
  std::int64_t durNs = 0;
  std::uint64_t arg = 0;
  bool hasArg = false;
  char ph = 'X';  // 'X' complete, 'b'/'e' async begin/end
};

/// One thread's sink. Only the owning thread appends; `mu` exists solely
/// so snapshot readers (the live /trace endpoint) see consistent entries —
/// the owner takes it uncontended on every record.
struct ThreadBuf {
  std::mutex mu;
  std::vector<TraceEvent> ring;
  std::size_t capacity = 0;
  std::uint64_t total = 0;  // events ever recorded since last reset
  std::uint32_t tid = 0;
  std::string name;
};

struct BufRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuf>> bufs;
  std::size_t capacity = Tracer::kDefaultRingCapacity;
};

BufRegistry& registry() {
  static BufRegistry r;
  return r;
}

thread_local ThreadBuf* t_buf = nullptr;
thread_local std::string t_name;

ThreadBuf& localBuf() {
  if (t_buf != nullptr) return *t_buf;
  BufRegistry& r = registry();
  std::lock_guard lock(r.mu);
  auto buf = std::make_unique<ThreadBuf>();
  buf->tid = static_cast<std::uint32_t>(r.bufs.size());
  buf->capacity = r.capacity;
  buf->name = t_name;
  t_buf = buf.get();
  r.bufs.push_back(std::move(buf));
  return *t_buf;
}

/// The process's wall-clock instant corresponding to trace timestamp 0,
/// captured together with the steady epoch so merged traces can be shifted
/// onto one axis.
std::int64_t epochUnixNs() {
  static const std::int64_t ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  return ns;
}

void serializeEvent(std::string& out, const TraceEvent& ev,
                    std::uint32_t pid, std::uint32_t tid) {
  char buf[96];
  out += "{\"ph\":\"";
  out += ev.ph;
  out += "\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(tid) + ",\"cat\":\"mui\",\"name\":" +
         util::jsonQuote(ev.name);
  if (ev.ph == 'X') {
    // Chrome trace timestamps are microseconds; keep ns precision in the
    // fraction so sub-microsecond spans survive.
    std::snprintf(buf, sizeof buf, ",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(ev.startNs) / 1000.0,
                  static_cast<double>(ev.durNs) / 1000.0);
    out += buf;
    if (ev.hasArg || !ev.cid.empty()) {
      out += ",\"args\":{";
      if (ev.hasArg) out += "\"i\":" + std::to_string(ev.arg);
      if (!ev.cid.empty()) {
        if (ev.hasArg) out += ",";
        out += "\"cid\":" + util::jsonQuote(ev.cid);
      }
      out += "}";
    }
  } else {
    // Async begin/end: correlated by (cat, id, name) across threads and —
    // after a merge — across processes.
    std::snprintf(buf, sizeof buf, ",\"ts\":%.3f",
                  static_cast<double>(ev.startNs) / 1000.0);
    out += buf;
    out += ",\"id\":" + util::jsonQuote(ev.cid) + ",\"scope\":\"mui\"";
  }
  out += "}";
}

}  // namespace

std::atomic<bool> Tracer::enabled_{false};

std::int64_t Tracer::nowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = [] {
    epochUnixNs();  // pin the wall-clock twin of the same instant
    return Clock::now();
  }();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

void Tracer::enable(std::size_t ringCapacity) {
  nowNs();  // pin the epoch before the first span
  BufRegistry& r = registry();
  std::lock_guard lock(r.mu);
  r.capacity = ringCapacity == 0 ? 1 : ringCapacity;
  for (auto& b : r.bufs) {
    std::lock_guard bufLock(b->mu);
    b->ring.clear();
    b->capacity = r.capacity;
    b->total = 0;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  BufRegistry& r = registry();
  std::lock_guard lock(r.mu);
  for (auto& b : r.bufs) {
    std::lock_guard bufLock(b->mu);
    b->ring.clear();
    b->total = 0;
  }
}

void Tracer::record(std::string name, char ph, std::int64_t startNs,
                    std::int64_t durNs, std::uint64_t arg, bool hasArg,
                    std::string cid) {
  ThreadBuf& b = localBuf();
  TraceEvent ev{std::move(name), std::move(cid), startNs, durNs,
                arg,             hasArg,         ph};
  std::lock_guard lock(b.mu);
  if (b.ring.size() < b.capacity) {
    b.ring.push_back(std::move(ev));
  } else {
    b.ring[b.total % b.capacity] = std::move(ev);
  }
  ++b.total;
}

void Tracer::asyncBegin(std::string name, const std::string& cid) {
  if (!enabled() || cid.empty()) return;
  record(std::move(name), 'b', nowNs(), 0, 0, false, cid);
}

void Tracer::asyncEnd(std::string name, const std::string& cid) {
  if (!enabled() || cid.empty()) return;
  record(std::move(name), 'e', nowNs(), 0, 0, false, cid);
}

std::string Tracer::chromeTrace(std::uint32_t pid,
                                const std::string& processName) {
  BufRegistry& r = registry();
  std::lock_guard lock(r.mu);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"muiEpochUnixNs\":" +
                    std::to_string(epochUnixNs()) + ",\"traceEvents\":[\n";
  bool first = true;
  const auto line = [&](const std::string& s) {
    if (!first) out += ",\n";
    first = false;
    out += s;
  };
  if (!processName.empty()) {
    line("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":" +
         util::jsonQuote(processName) + "}}");
  }
  for (const auto& b : r.bufs) {
    std::lock_guard bufLock(b->mu);
    if (!b->name.empty()) {
      line("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(b->tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":" +
           util::jsonQuote(b->name) + "}}");
    }
    const std::uint64_t kept =
        std::min<std::uint64_t>(b->total, b->ring.size());
    for (std::uint64_t i = b->total - kept; i < b->total; ++i) {
      std::string e;
      serializeEvent(e, b->ring[i % b->capacity], pid, b->tid);
      line(e);
    }
  }
  out += "\n]}\n";
  return out;
}

std::size_t Tracer::eventCount() {
  BufRegistry& r = registry();
  std::lock_guard lock(r.mu);
  std::size_t n = 0;
  for (const auto& b : r.bufs) {
    std::lock_guard bufLock(b->mu);
    n += static_cast<std::size_t>(
        std::min<std::uint64_t>(b->total, b->ring.size()));
  }
  return n;
}

std::uint64_t Tracer::droppedEvents() {
  BufRegistry& r = registry();
  std::lock_guard lock(r.mu);
  std::uint64_t n = 0;
  for (const auto& b : r.bufs) {
    std::lock_guard bufLock(b->mu);
    n += b->total - std::min<std::uint64_t>(b->total, b->ring.size());
  }
  return n;
}

namespace {

/// Splits a chromeTrace() document into its epoch and its event lines.
/// Returns false when the document does not look like ours.
bool splitTraceDoc(const std::string& doc, std::int64_t& epochNs,
                   std::vector<std::string>& events) {
  const auto epochKey = doc.find("\"muiEpochUnixNs\":");
  if (epochKey == std::string::npos) return false;
  epochNs = std::strtoll(doc.c_str() + epochKey + 17, nullptr, 10);
  const auto open = doc.find("\"traceEvents\":[", epochKey);
  if (open == std::string::npos) return false;
  const auto close = doc.rfind(']');
  if (close == std::string::npos || close < open) return false;
  std::size_t pos = open + 15;
  while (pos < close) {
    // One event per line, comma-separated; blank segments are skipped.
    std::size_t end = doc.find(",\n", pos);
    if (end == std::string::npos || end > close) end = close;
    std::size_t a = pos;
    while (a < end && (doc[a] == '\n' || doc[a] == ' ')) ++a;
    std::size_t z = end;
    while (z > a && (doc[z - 1] == '\n' || doc[z - 1] == ' ')) --z;
    if (z > a) events.push_back(doc.substr(a, z - a));
    pos = end + 2;
  }
  return true;
}

/// Re-serializes one parsed event with its timestamp shifted by `deltaUs`.
/// Metadata events have no timestamp and pass through unshifted.
bool shiftEvent(const std::string& line, double deltaUs, std::string& out) {
  const auto obj = parseFlatJson(line);
  if (!obj) return false;
  out = "{";
  bool first = true;
  for (const auto& [key, value] : *obj) {
    if (!first) out += ",";
    first = false;
    out += util::jsonQuote(key) + ":";
    if (key == "ts" && value.kind == JsonValue::Kind::Number) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.3f", value.number + deltaUs);
      out += buf;
      continue;
    }
    switch (value.kind) {
      case JsonValue::Kind::String:
        out += util::jsonQuote(value.text);
        break;
      case JsonValue::Kind::Number: {
        char buf[48];
        std::snprintf(buf, sizeof buf, "%.3f", value.number);
        out += buf;
        break;
      }
      case JsonValue::Kind::Bool:
        out += value.boolean ? "true" : "false";
        break;
      case JsonValue::Kind::Null:
        out += "null";
        break;
      case JsonValue::Kind::Raw:
        out += value.text;
        break;
    }
  }
  out += "}";
  return true;
}

}  // namespace

std::string mergeChromeTraces(const std::vector<std::string>& docs) {
  if (docs.empty()) return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n";
  if (docs.size() == 1) return docs.front();

  std::int64_t baseEpochNs = 0;
  std::string out;
  bool first = true;
  const auto line = [&](const std::string& s) {
    if (!first) out += ",\n";
    first = false;
    out += s;
  };
  for (std::size_t d = 0; d < docs.size(); ++d) {
    std::int64_t epochNs = 0;
    std::vector<std::string> events;
    if (!splitTraceDoc(docs[d], epochNs, events)) continue;
    if (out.empty()) {
      baseEpochNs = epochNs;
      out = "{\"displayTimeUnit\":\"ms\",\"muiEpochUnixNs\":" +
            std::to_string(baseEpochNs) + ",\"traceEvents\":[\n";
    }
    const double deltaUs =
        static_cast<double>(epochNs - baseEpochNs) / 1000.0;
    for (const auto& ev : events) {
      if (d == 0 || deltaUs == 0.0) {
        line(ev);
        continue;
      }
      std::string shifted;
      if (shiftEvent(ev, deltaUs, shifted)) line(shifted);
    }
  }
  if (out.empty()) {
    return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n";
  }
  out += "\n]}\n";
  return out;
}

void setThreadName(std::string name) {
  t_name = std::move(name);
  if (t_buf != nullptr) {
    std::lock_guard lock(registry().mu);
    t_buf->name = t_name;
  }
}

const std::string& currentThreadName() { return t_name; }

ObsSpan::ObsSpan(const char* name, std::uint64_t arg, bool hasArg) noexcept {
  if (!Tracer::enabled()) return;
  name_ = name;
  arg_ = arg;
  hasArg_ = hasArg;
  startNs_ = Tracer::nowNs();
}

ObsSpan::ObsSpan(std::string name, std::uint64_t arg, bool hasArg) {
  if (!Tracer::enabled()) return;
  name_ = std::move(name);
  arg_ = arg;
  hasArg_ = hasArg;
  startNs_ = Tracer::nowNs();
}

ObsSpan::~ObsSpan() {
  if (startNs_ < 0 || !Tracer::enabled()) return;
  Tracer::record(std::move(name_), 'X', startNs_, Tracer::nowNs() - startNs_,
                 arg_, hasArg_, std::move(cid_));
}

}  // namespace mui::obs
