#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "util/json.hpp"

namespace mui::obs {

namespace {

struct TraceEvent {
  std::string name;
  std::int64_t startNs = 0;
  std::int64_t durNs = 0;
  std::uint64_t arg = 0;
  bool hasArg = false;
};

/// One thread's sink. Only the owning thread appends; readers honor the
/// quiescence contract in trace.hpp.
struct ThreadBuf {
  std::vector<TraceEvent> ring;
  std::size_t capacity = 0;
  std::uint64_t total = 0;  // events ever recorded since last reset
  std::uint32_t tid = 0;
  std::string name;
};

struct BufRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuf>> bufs;
  std::size_t capacity = Tracer::kDefaultRingCapacity;
};

BufRegistry& registry() {
  static BufRegistry r;
  return r;
}

thread_local ThreadBuf* t_buf = nullptr;
thread_local std::string t_name;

ThreadBuf& localBuf() {
  if (t_buf != nullptr) return *t_buf;
  BufRegistry& r = registry();
  std::lock_guard lock(r.mu);
  auto buf = std::make_unique<ThreadBuf>();
  buf->tid = static_cast<std::uint32_t>(r.bufs.size());
  buf->capacity = r.capacity;
  buf->name = t_name;
  t_buf = buf.get();
  r.bufs.push_back(std::move(buf));
  return *t_buf;
}

}  // namespace

std::atomic<bool> Tracer::enabled_{false};

std::int64_t Tracer::nowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

void Tracer::enable(std::size_t ringCapacity) {
  nowNs();  // pin the epoch before the first span
  BufRegistry& r = registry();
  std::lock_guard lock(r.mu);
  r.capacity = ringCapacity == 0 ? 1 : ringCapacity;
  for (auto& b : r.bufs) {
    b->ring.clear();
    b->capacity = r.capacity;
    b->total = 0;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  BufRegistry& r = registry();
  std::lock_guard lock(r.mu);
  for (auto& b : r.bufs) {
    b->ring.clear();
    b->total = 0;
  }
}

void Tracer::record(std::string name, std::int64_t startNs, std::int64_t durNs,
                    std::uint64_t arg, bool hasArg) {
  ThreadBuf& b = localBuf();
  TraceEvent ev{std::move(name), startNs, durNs, arg, hasArg};
  if (b.ring.size() < b.capacity) {
    b.ring.push_back(std::move(ev));
  } else {
    b.ring[b.total % b.capacity] = std::move(ev);
  }
  ++b.total;
}

std::string Tracer::chromeTrace() {
  BufRegistry& r = registry();
  std::lock_guard lock(r.mu);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto line = [&](const std::string& s) {
    if (!first) out += ",\n";
    first = false;
    out += s;
  };
  char buf[96];
  for (const auto& b : r.bufs) {
    if (!b->name.empty()) {
      line("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(b->tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":" +
           util::jsonQuote(b->name) + "}}");
    }
    const std::uint64_t kept =
        std::min<std::uint64_t>(b->total, b->ring.size());
    for (std::uint64_t i = b->total - kept; i < b->total; ++i) {
      const TraceEvent& ev = b->ring[i % b->capacity];
      // Chrome trace timestamps are microseconds; keep ns precision in the
      // fraction so sub-microsecond spans survive.
      std::snprintf(buf, sizeof buf, "\"ts\":%.3f,\"dur\":%.3f",
                    static_cast<double>(ev.startNs) / 1000.0,
                    static_cast<double>(ev.durNs) / 1000.0);
      std::string e = "{\"ph\":\"X\",\"pid\":1,\"tid\":" +
                      std::to_string(b->tid) + ",\"cat\":\"mui\",\"name\":" +
                      util::jsonQuote(ev.name) + "," + buf;
      if (ev.hasArg) e += ",\"args\":{\"i\":" + std::to_string(ev.arg) + "}";
      e += "}";
      line(e);
    }
  }
  out += "\n]}\n";
  return out;
}

std::size_t Tracer::eventCount() {
  BufRegistry& r = registry();
  std::lock_guard lock(r.mu);
  std::size_t n = 0;
  for (const auto& b : r.bufs) {
    n += static_cast<std::size_t>(
        std::min<std::uint64_t>(b->total, b->ring.size()));
  }
  return n;
}

std::uint64_t Tracer::droppedEvents() {
  BufRegistry& r = registry();
  std::lock_guard lock(r.mu);
  std::uint64_t n = 0;
  for (const auto& b : r.bufs) {
    n += b->total - std::min<std::uint64_t>(b->total, b->ring.size());
  }
  return n;
}

void setThreadName(std::string name) {
  t_name = std::move(name);
  if (t_buf != nullptr) {
    std::lock_guard lock(registry().mu);
    t_buf->name = t_name;
  }
}

const std::string& currentThreadName() { return t_name; }

ObsSpan::ObsSpan(const char* name, std::uint64_t arg, bool hasArg) noexcept {
  if (!Tracer::enabled()) return;
  name_ = name;
  arg_ = arg;
  hasArg_ = hasArg;
  startNs_ = Tracer::nowNs();
}

ObsSpan::ObsSpan(std::string name, std::uint64_t arg, bool hasArg) {
  if (!Tracer::enabled()) return;
  name_ = std::move(name);
  arg_ = arg;
  hasArg_ = hasArg;
  startNs_ = Tracer::nowNs();
}

ObsSpan::~ObsSpan() {
  if (startNs_ < 0 || !Tracer::enabled()) return;
  Tracer::record(std::move(name_), startNs_, Tracer::nowNs() - startNs_, arg_,
                 hasArg_);
}

}  // namespace mui::obs
