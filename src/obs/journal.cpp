#include "obs/journal.hpp"

#include <cstdlib>

#include "util/json.hpp"
#include "util/text_table.hpp"

namespace mui::obs {

namespace {

void appendKey(std::string& body, std::string_view key) {
  if (!body.empty()) body += ",";
  body += util::jsonQuote(key);
  body += ":";
}

}  // namespace

JsonObject& JsonObject::s(std::string_view key, std::string_view value) {
  appendKey(body_, key);
  body_ += util::jsonQuote(value);
  return *this;
}

JsonObject& JsonObject::u(std::string_view key, std::uint64_t value) {
  appendKey(body_, key);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::i(std::string_view key, std::int64_t value) {
  appendKey(body_, key);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::f(std::string_view key, double value, int digits) {
  appendKey(body_, key);
  body_ += util::fmt(value, digits);
  return *this;
}

JsonObject& JsonObject::b(std::string_view key, bool value) {
  appendKey(body_, key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::raw(std::string_view key, std::string_view json) {
  appendKey(body_, key);
  body_ += json;
  return *this;
}

std::string JsonObject::str() const { return "{" + body_ + "}"; }

void Journal::event(std::string_view type, const JsonObject& fields) {
  std::string line = "{\"schema\":" + std::to_string(kJournalSchemaVersion) +
                     ",\"type\":" + util::jsonQuote(type);
  const std::string rest = fields.str();
  if (rest.size() > 2) {  // non-empty object: splice its body in
    line += ",";
    line.append(rest, 1, rest.size() - 2);
  }
  line += "}\n";
  std::lock_guard lock(mu_);
  text_ += line;
  ++events_;
}

std::string Journal::text() const {
  std::lock_guard lock(mu_);
  return text_;
}

std::size_t Journal::eventCount() const {
  std::lock_guard lock(mu_);
  return events_;
}

void Journal::clear() {
  std::lock_guard lock(mu_);
  text_.clear();
  events_ = 0;
}

// ---------------------------------------------------------------------------
// Flat JSON parser
// ---------------------------------------------------------------------------

namespace {

struct Parser {
  std::string_view s;
  std::size_t i = 0;

  bool atEnd() const { return i >= s.size(); }
  char peek() const { return s[i]; }

  void skipWs() {
    while (!atEnd() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                        s[i] == '\r')) {
      ++i;
    }
  }

  bool consume(char c) {
    skipWs();
    if (atEnd() || s[i] != c) return false;
    ++i;
    return true;
  }

  static void appendUtf8(std::string& out, unsigned cp) {
    if (cp <= 0x7F) {
      out += static_cast<char>(cp);
    } else if (cp <= 0x7FF) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp <= 0xFFFF) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool hex4(unsigned& out) {
    if (i + 4 > s.size()) return false;
    out = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = s[i + static_cast<std::size_t>(k)];
      unsigned d;
      if (c >= '0' && c <= '9') {
        d = static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        d = static_cast<unsigned>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        d = static_cast<unsigned>(c - 'A') + 10;
      } else {
        return false;
      }
      out = out * 16 + d;
    }
    i += 4;
    return true;
  }

  bool parseString(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (true) {
      if (atEnd()) return false;
      const char c = s[i++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (atEnd()) return false;
      const char e = s[i++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned cp;
          if (!hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (i + 1 < s.size() && s[i] == '\\' && s[i + 1] == 'u') {
              i += 2;
              unsigned lo;
              if (!hex4(lo) || lo < 0xDC00 || lo > 0xDFFF) return false;
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              cp = 0xFFFD;  // unpaired surrogate
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            cp = 0xFFFD;
          }
          appendUtf8(out, cp);
          break;
        }
        default:
          return false;
      }
    }
  }

  /// Skips one balanced {...} or [...] and returns it verbatim.
  bool skipNested(std::string& raw) {
    skipWs();
    const std::size_t start = i;
    int depth = 0;
    bool inString = false;
    while (!atEnd()) {
      const char c = s[i];
      if (inString) {
        if (c == '\\') {
          i += 2;
          continue;
        }
        if (c == '"') inString = false;
        ++i;
        continue;
      }
      if (c == '"') {
        inString = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        --depth;
        if (depth == 0) {
          ++i;
          raw = std::string(s.substr(start, i - start));
          return true;
        }
      }
      ++i;
    }
    return false;
  }

  bool parseValue(JsonValue& out) {
    skipWs();
    if (atEnd()) return false;
    const char c = peek();
    if (c == '"') {
      out.kind = JsonValue::Kind::String;
      return parseString(out.text);
    }
    if (c == '{' || c == '[') {
      out.kind = JsonValue::Kind::Raw;
      return skipNested(out.text);
    }
    if (s.compare(i, 4, "true") == 0) {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = true;
      i += 4;
      return true;
    }
    if (s.compare(i, 5, "false") == 0) {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = false;
      i += 5;
      return true;
    }
    if (s.compare(i, 4, "null") == 0) {
      out.kind = JsonValue::Kind::Null;
      i += 4;
      return true;
    }
    // Number.
    const std::size_t start = i;
    if (peek() == '-' || peek() == '+') ++i;
    bool digits = false;
    while (!atEnd() && ((s[i] >= '0' && s[i] <= '9') || s[i] == '.' ||
                        s[i] == 'e' || s[i] == 'E' || s[i] == '-' ||
                        s[i] == '+')) {
      if (s[i] >= '0' && s[i] <= '9') digits = true;
      ++i;
    }
    if (!digits) return false;
    const std::string num(s.substr(start, i - start));
    char* end = nullptr;
    out.kind = JsonValue::Kind::Number;
    out.number = std::strtod(num.c_str(), &end);
    return end != nullptr && *end == '\0';
  }
  bool parseObject(FlatObject& obj) {
    if (!consume('{')) return false;
    skipWs();
    if (consume('}')) return true;
    while (true) {
      skipWs();
      std::string key;
      if (!parseString(key)) return false;
      if (!consume(':')) return false;
      JsonValue value;
      if (!parseValue(value)) return false;
      obj[std::move(key)] = std::move(value);
      if (consume(',')) continue;
      if (consume('}')) return true;
      return false;
    }
  }
};

}  // namespace

std::optional<FlatObject> parseFlatJson(std::string_view line) {
  Parser p{line};
  FlatObject obj;
  if (!p.parseObject(obj)) return std::nullopt;
  p.skipWs();
  if (!p.atEnd()) return std::nullopt;
  return obj;
}

std::optional<std::vector<FlatObject>> parseFlatJsonArray(
    std::string_view text) {
  Parser p{text};
  if (!p.consume('[')) return std::nullopt;
  std::vector<FlatObject> out;
  p.skipWs();
  if (p.consume(']')) {
    p.skipWs();
    return p.atEnd() ? std::optional<std::vector<FlatObject>>(std::move(out))
                     : std::nullopt;
  }
  while (true) {
    p.skipWs();
    FlatObject obj;
    if (!p.parseObject(obj)) return std::nullopt;
    out.push_back(std::move(obj));
    if (p.consume(',')) continue;
    if (p.consume(']')) break;
    return std::nullopt;
  }
  p.skipWs();
  if (!p.atEnd()) return std::nullopt;
  return out;
}

}  // namespace mui::obs
