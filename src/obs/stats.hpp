#pragma once
// Aggregation of run journals (obs/journal.hpp) for the `mui stats` verb:
// merges one or more JSONL journals into per-iteration and per-run tables
// plus pipeline-wide totals, as text or JSON.

#include <cstdint>
#include <string>
#include <vector>

namespace mui::obs {

struct IterationStat {
  std::string run;
  std::uint64_t iteration = 0;
  std::uint64_t modelStates = 0;
  std::uint64_t modelTransitions = 0;
  std::uint64_t closureStates = 0;
  std::uint64_t productStates = 0;
  std::uint64_t statesNew = 0;
  std::uint64_t statesReused = 0;
  bool checkPassed = false;
  std::string cexKind;  // "", "deadlock", "property"
  std::uint64_t cexLength = 0;
  std::uint64_t learnedFacts = 0;
  std::uint64_t testPeriods = 0;
  double closureMs = 0;
  double composeMs = 0;
  double checkMs = 0;
  double testMs = 0;
};

struct RunStat {
  std::string run;
  std::string ulid;           // job correlation id (schema v2), "" on v1
  std::string verdict;        // from the verdict event; "" if truncated
  std::string worker;         // from the batch job event, if any
  std::uint64_t iterations = 0;
  std::uint64_t learnedFacts = 0;
  std::uint64_t testPeriods = 0;
  double closureMs = 0;
  double composeMs = 0;
  double checkMs = 0;
  double testMs = 0;
  double wallMs = 0;          // batch job wall time, if any
  bool cacheHit = false;
  bool presolved = false;     // schema v2 job events
};

struct StatsReport {
  std::vector<IterationStat> iterations;
  std::vector<RunStat> runs;
  std::uint64_t events = 0;        // journal lines consumed
  std::uint64_t skipped = 0;       // malformed / unknown-schema lines
  std::uint64_t totalIterations = 0;
  std::uint64_t totalLearnedFacts = 0;
  std::uint64_t totalTestPeriods = 0;
  double totalCheckMs = 0;
  double totalTestMs = 0;
  std::uint64_t jobs = 0;          // runs that carried a batch job event
  std::uint64_t presolvedJobs = 0;
  std::uint64_t cacheHitJobs = 0;
  std::vector<double> jobWallMs;   // per-job wall times (for latency quantiles)
};

/// Parses and merges journal texts (one string per journal file). Lines
/// that fail to parse or carry an unknown schema version are counted in
/// `skipped`, never fatal.
StatsReport aggregateJournals(const std::vector<std::string>& journals);

/// Per-iteration table, per-run table, totals line.
std::string renderStatsText(const StatsReport& report);

/// The same data as one JSON document.
std::string renderStatsJson(const StatsReport& report);

}  // namespace mui::obs
