#include "obs/ulid.hpp"

#include <chrono>
#include <cstdint>
#include <random>
#include <thread>

namespace mui::obs {

namespace {

// Crockford base32: no I, L, O, U — unambiguous when read back by humans.
constexpr char kAlphabet[] = "0123456789ABCDEFGHJKMNPQRSTVWXYZ";

std::uint64_t randomBits() {
  thread_local std::mt19937_64 rng = [] {
    std::random_device rd;
    const auto tid =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    std::seed_seq seq{static_cast<std::uint64_t>(rd()),
                      static_cast<std::uint64_t>(rd()),
                      static_cast<std::uint64_t>(tid)};
    return std::mt19937_64(seq);
  }();
  return rng();
}

}  // namespace

std::string newUlid() {
  const auto nowMs =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  const auto ts = static_cast<std::uint64_t>(nowMs) & ((1ull << 48) - 1);

  std::string out(26, '0');
  // 48-bit timestamp → 10 characters, most significant first.
  for (int i = 9; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kAlphabet[(ts >> ((9 - i) * 5)) & 31];
  }
  // 80 bits of randomness → 16 characters, 5 bits each.
  std::uint64_t bits = randomBits();
  int avail = 64;
  for (int i = 10; i < 26; ++i) {
    if (avail < 5) {
      bits = randomBits();
      avail = 64;
    }
    out[static_cast<std::size_t>(i)] = kAlphabet[bits & 31];
    bits >>= 5;
    avail -= 5;
  }
  return out;
}

bool looksLikeUlid(const std::string& s) {
  if (s.size() != 26) return false;
  for (const char c : s) {
    const bool digit = c >= '0' && c <= '9';
    const bool upper = c >= 'A' && c <= 'Z' && c != 'I' && c != 'L' &&
                       c != 'O' && c != 'U';
    if (!digit && !upper) return false;
  }
  return true;
}

}  // namespace mui::obs
