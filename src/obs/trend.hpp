#pragma once
// Benchmark trend gating for `mui stats --baseline` (docs/OBSERVABILITY.md):
// compares an aggregated journal (obs/stats.hpp) against a checked-in
// baseline journal and decides, per metric, whether the change is within
// the allowed regression threshold. The verdict is machine-readable so CI
// can fail a perf-smoke job on a real regression without flaking on noise.
//
// Gating policy:
//  - Work metrics (iterations, testPeriods) regress when they GROW by more
//    than thresholdPct relative to the baseline; a baseline of zero with a
//    non-zero current value counts as a regression (there is no meaningful
//    relative delta).
//  - Rate metrics (presolveRate, cacheHitRate, in percent) regress when
//    they DROP by more than thresholdPct percentage points — rates are
//    compared absolutely, not relatively, so a 2% → 1% wobble on a tiny
//    campaign does not read as a 50% collapse.
//  - Latency metrics (p50WallMs, p99WallMs, nearest-rank quantiles over
//    per-job wall times) are advisory by default because baselines usually
//    come from a different machine; they gate only when latencyThresholdPct
//    is set > 0.

#include <string>
#include <vector>

#include "obs/stats.hpp"

namespace mui::obs {

struct TrendOptions {
  /// Allowed growth (work metrics, relative %) or drop (rate metrics,
  /// percentage points) before a metric counts as regressed.
  double thresholdPct = 10.0;
  /// Latency gate in relative %; 0 keeps p50/p99 advisory (reported, never
  /// failing the verdict).
  double latencyThresholdPct = 0.0;
};

struct TrendMetric {
  std::string name;
  double baseline = 0;
  double current = 0;
  double delta = 0;     // current - baseline
  double deltaPct = 0;  // relative % for work/latency, pct points for rates
  bool gated = false;   // participates in the verdict
  bool regressed = false;
};

struct TrendReport {
  std::vector<TrendMetric> metrics;
  bool regressed = false;  // any gated metric regressed
};

/// Compares the current report against the baseline under `opts`.
TrendReport compareTrend(const StatsReport& baseline,
                         const StatsReport& current,
                         const TrendOptions& opts = {});

/// One row per metric plus a VERDICT line.
std::string renderTrendText(const TrendReport& report);

/// The same data as one JSON document with "verdict":"ok"|"regressed".
std::string renderTrendJson(const TrendReport& report);

}  // namespace mui::obs
