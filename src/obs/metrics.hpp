#pragma once
// Process-wide metrics for the verify–test–learn pipeline.
//
// Three instrument kinds, all lock-free on the hot path:
//   Counter   — monotonically increasing uint64 (relaxed atomic)
//   Gauge     — instantaneous int64 (relaxed atomic)
//   Histogram — fixed log2 buckets (upper bounds 1, 2, 4, ..., 2^62, +Inf)
//
// Instruments live in a Registry keyed by name; lookups are idempotent, so
// call sites keep a function-local static reference and pay only the atomic
// op per event:
//
//   static obs::Counter& pops = obs::Registry::global().counter(
//       "mui_ctl_worklist_pops_total", "CTL worklist states popped");
//   pops.add(localPops);
//
// Registry::global() is the process-wide instance the pipeline instruments;
// tests construct their own Registry for golden renderer output. Renderers
// (text table, JSON, Prometheus exposition) take a consistent-enough
// snapshot for end-of-run reporting; they do not pause writers.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace mui::obs {

class Counter {
 public:
  void inc() { add(1); }
  void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log2-bucketed histogram of non-negative integer observations. Bucket i
/// counts observations v with v <= 2^i (cumulatively rendered for
/// Prometheus); the last bucket is +Inf.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;  // le 2^0 .. 2^62, then +Inf

  void observe(std::uint64_t v);
  /// Index of the bucket recording `v`.
  static std::size_t bucketIndex(std::uint64_t v);
  /// Upper bound of bucket `i`; meaningless for the +Inf bucket.
  static std::uint64_t bucketBound(std::size_t i) { return 1ull << i; }

  std::uint64_t count() const;
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucketCount(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Named instruments plus their help strings and units. Thread-safe;
/// registration takes a lock, returned references are stable for the
/// registry's lifetime.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry all pipeline instrumentation reports to.
  static Registry& global();

  /// Finds or creates the named instrument. The help/unit of the first
  /// registration win; re-registering the same name as a different kind
  /// throws std::logic_error.
  Counter& counter(const std::string& name, const std::string& help,
                   const std::string& unit = "");
  Gauge& gauge(const std::string& name, const std::string& help,
               const std::string& unit = "");
  Histogram& histogram(const std::string& name, const std::string& help,
                       const std::string& unit = "");

  /// Registers (or replaces) an info metric: a constant `1` carrying its
  /// payload in labels, rendered as `name{k="v",...} 1` with gauge type —
  /// the Prometheus build-info idiom (e.g. mui_build_info{version=...,
  /// git_sha=...}). Unlike the instruments above this is set-once data, not
  /// a hot-path handle, so there is nothing to return.
  void setInfo(const std::string& name, const std::string& help,
               std::vector<std::pair<std::string, std::string>> labels);

  /// Human-readable table (histograms show count/sum/p50/p95).
  std::string renderText() const;
  /// {"metrics":[{"name":...,"kind":...,...}]} — one object per instrument.
  std::string renderJson() const;
  /// Prometheus text exposition format 0.0.4.
  std::string renderPrometheus() const;

  /// Zeroes every instrument (registrations survive). Test helper.
  void resetAll();

  std::size_t size() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mui::obs
