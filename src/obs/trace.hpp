#pragma once
// Low-overhead span tracing for the verify–test–learn loop.
//
// The design goal is "free unless someone is watching": an ObsSpan guard
// costs one relaxed atomic load when no sink is installed, and spans only
// materialize their name and timestamps once Tracer::enable() has run.
// Recording stays cheap per thread: every thread appends completed spans
// to its own fixed-capacity ring buffer (oldest events are overwritten
// once the ring is full, with a dropped-event count), guarded by a
// per-ring mutex that is only ever contended by a snapshot reader — so
// instrumented worker pools never contend with each other on a shared log.
//
// Tracer::chromeTrace() serializes everything into the Chrome trace-event
// JSON format (load it at chrome://tracing or https://ui.perfetto.dev):
// one track per thread — thread-pool workers name their tracks via
// setThreadName("worker-N") — with nested "X" (complete) events for the
// closure/compose/check/test/replay/learn phases of each iteration, plus
// async "b"/"e" pairs keyed by a job's correlation id (obs/ulid.hpp) that
// tie the per-phase spans of one job together across threads — and, via
// mergeChromeTraces(), across processes: `mui submit --trace-out` splices
// its own ring with the daemon's /trace snapshot into a single timeline
// (the documents carry their process's wall-clock epoch, so the merge can
// shift timestamps onto one axis).
//
// Concurrency contract: span recording is safe from any number of threads
// concurrently, and enable/disable/clear/chromeTrace may run concurrently
// with recording — chromeTrace takes a per-thread-consistent snapshot (the
// daemon serves /trace from a live ring). For a *complete* trace of a
// finished workload, still quiesce first (e.g. ThreadPool::wait()); spans
// open during a snapshot are simply not in it.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mui::obs {

/// Process-wide tracing switch and sink (see file comment for the
/// concurrency contract).
class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1 << 16;

  /// Installs the sink: resets all ring buffers to `ringCapacity` events
  /// each and turns span recording on.
  static void enable(std::size_t ringCapacity = kDefaultRingCapacity);

  /// Turns recording off. Already-recorded events are kept; spans closing
  /// after disable() are dropped.
  static void disable();

  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops all recorded events (thread registrations and names survive).
  static void clear();

  /// Opens/closes an async event pair keyed by `cid` (a job ULID): the
  /// "b"/"e" events render as one horizontal bar per job in the trace UI,
  /// spanning threads (begin may be recorded on a different thread than
  /// end). No-ops with tracing disabled or an empty cid.
  static void asyncBegin(std::string name, const std::string& cid);
  static void asyncEnd(std::string name, const std::string& cid);

  /// All recorded events as a Chrome trace-event JSON document, one event
  /// per line, with thread_name metadata for every named track. `pid`
  /// distinguishes processes once documents are merged; a non-empty
  /// `processName` adds process_name metadata. The document also carries
  /// this process's trace epoch as wall-clock nanoseconds
  /// ("muiEpochUnixNs"), which mergeChromeTraces uses to align timelines.
  static std::string chromeTrace(std::uint32_t pid = 1,
                                 const std::string& processName = "");

  /// Events currently held across all ring buffers.
  static std::size_t eventCount();

  /// Events lost to ring overwrites since the last enable()/clear().
  static std::uint64_t droppedEvents();

 private:
  friend class ObsSpan;

  static void record(std::string name, char ph, std::int64_t startNs,
                     std::int64_t durNs, std::uint64_t arg, bool hasArg,
                     std::string cid);
  /// Monotonic nanoseconds since the process's tracing epoch.
  static std::int64_t nowNs();

  static std::atomic<bool> enabled_;
};

/// Merges Chrome trace documents produced by chromeTrace() in different
/// processes into one: the first document's timeline is the reference,
/// every other document's timestamps are shifted by the difference of the
/// embedded wall-clock epochs. Documents must come from this tracer (the
/// splice relies on its one-event-per-line layout); events that fail to
/// parse are dropped. With fewer than two documents this is the identity.
std::string mergeChromeTraces(const std::vector<std::string>& docs);

/// Names the calling thread's trace track (and its worker identity for
/// crash messages; see engine::ThreadPool). Safe to call before or after
/// the thread recorded its first span, and with tracing disabled.
void setThreadName(std::string name);

/// The name set by setThreadName on this thread, or "" if none.
const std::string& currentThreadName();

/// RAII span guard: records a complete trace event for the enclosed scope.
/// The const char* overloads are for hot paths (no allocation when
/// disabled, at most one small-string copy when enabled); the std::string
/// overloads are for per-job/per-run spans with dynamic names. The
/// optional `arg` lands in the event's args (e.g. the iteration index),
/// and the optional `cid` tags the event with a job correlation id (empty
/// = untagged; see docs/OBSERVABILITY.md, "Correlation IDs").
class ObsSpan {
 public:
  explicit ObsSpan(const char* name) noexcept : ObsSpan(name, 0, false) {}
  ObsSpan(const char* name, std::uint64_t arg) noexcept
      : ObsSpan(name, arg, true) {}
  ObsSpan(const char* name, const std::string& cid) : ObsSpan(name, 0, false) {
    if (startNs_ >= 0) cid_ = cid;
  }
  ObsSpan(const char* name, std::uint64_t arg, const std::string& cid)
      : ObsSpan(name, arg, true) {
    if (startNs_ >= 0) cid_ = cid;
  }
  explicit ObsSpan(std::string name) : ObsSpan(std::move(name), 0, false) {}
  ObsSpan(std::string name, std::uint64_t arg)
      : ObsSpan(std::move(name), arg, true) {}
  ObsSpan(std::string name, const std::string& cid)
      : ObsSpan(std::move(name), 0, false) {
    if (startNs_ >= 0) cid_ = cid;
  }
  ~ObsSpan();

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  ObsSpan(const char* name, std::uint64_t arg, bool hasArg) noexcept;
  ObsSpan(std::string name, std::uint64_t arg, bool hasArg);

  std::string name_;
  std::string cid_;
  std::int64_t startNs_ = -1;  // -1: tracing was off at construction
  std::uint64_t arg_ = 0;
  bool hasArg_ = false;
};

}  // namespace mui::obs
