#pragma once
// Low-overhead span tracing for the verify–test–learn loop.
//
// The design goal is "free unless someone is watching": an ObsSpan guard
// costs one relaxed atomic load when no sink is installed, and spans only
// materialize their name and timestamps once Tracer::enable() has run.
// Recording is wait-free per thread: every thread appends completed spans
// to its own fixed-capacity ring buffer (oldest events are overwritten
// once the ring is full, with a dropped-event count), so instrumented
// worker pools never contend on a shared log.
//
// Tracer::chromeTrace() serializes everything into the Chrome trace-event
// JSON format (load it at chrome://tracing or https://ui.perfetto.dev):
// one track per thread — thread-pool workers name their tracks via
// setThreadName("worker-N") — with nested "X" (complete) events for the
// closure/compose/check/test/replay/learn phases of each iteration.
//
// Concurrency contract: span recording is safe from any number of threads
// concurrently, but enable/disable/clear/chromeTrace must be called while
// no instrumented work is running (e.g. after ThreadPool::wait()). The
// CLI obeys this by writing traces only after the verb finishes.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace mui::obs {

/// Process-wide tracing switch and sink (see file comment for the
/// concurrency contract).
class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1 << 16;

  /// Installs the sink: resets all ring buffers to `ringCapacity` events
  /// each and turns span recording on.
  static void enable(std::size_t ringCapacity = kDefaultRingCapacity);

  /// Turns recording off. Already-recorded events are kept; spans closing
  /// after disable() are dropped.
  static void disable();

  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops all recorded events (thread registrations and names survive).
  static void clear();

  /// All recorded events as a Chrome trace-event JSON document, one event
  /// per line, with thread_name metadata for every named track.
  static std::string chromeTrace();

  /// Events currently held across all ring buffers.
  static std::size_t eventCount();

  /// Events lost to ring overwrites since the last enable()/clear().
  static std::uint64_t droppedEvents();

 private:
  friend class ObsSpan;

  static void record(std::string name, std::int64_t startNs,
                     std::int64_t durNs, std::uint64_t arg, bool hasArg);
  /// Monotonic nanoseconds since the process's tracing epoch.
  static std::int64_t nowNs();

  static std::atomic<bool> enabled_;
};

/// Names the calling thread's trace track (and its worker identity for
/// crash messages; see engine::ThreadPool). Safe to call before or after
/// the thread recorded its first span, and with tracing disabled.
void setThreadName(std::string name);

/// The name set by setThreadName on this thread, or "" if none.
const std::string& currentThreadName();

/// RAII span guard: records a complete trace event for the enclosed scope.
/// The const char* overloads are for hot paths (no allocation when
/// disabled, at most one small-string copy when enabled); the std::string
/// overloads are for per-job/per-run spans with dynamic names. The
/// optional `arg` lands in the event's args (e.g. the iteration index).
class ObsSpan {
 public:
  explicit ObsSpan(const char* name) noexcept : ObsSpan(name, 0, false) {}
  ObsSpan(const char* name, std::uint64_t arg) noexcept
      : ObsSpan(name, arg, true) {}
  explicit ObsSpan(std::string name) : ObsSpan(std::move(name), 0, false) {}
  ObsSpan(std::string name, std::uint64_t arg)
      : ObsSpan(std::move(name), arg, true) {}
  ~ObsSpan();

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  ObsSpan(const char* name, std::uint64_t arg, bool hasArg) noexcept;
  ObsSpan(std::string name, std::uint64_t arg, bool hasArg);

  std::string name_;
  std::int64_t startNs_ = -1;  // -1: tracing was off at construction
  std::uint64_t arg_ = 0;
  bool hasArg_ = false;
};

}  // namespace mui::obs
