#pragma once
// ULID generation for job correlation (docs/OBSERVABILITY.md, "Correlation
// IDs"). A ULID is 26 characters of Crockford base32: a 48-bit millisecond
// timestamp followed by 80 bits of randomness — sortable by creation time,
// collision-free for any realistic job rate, and safe to embed in JSON
// without quoting concerns. `mui submit` mints one per job before the job
// line leaves the client; the daemon adopts it (or mints its own for
// clients that send none) and threads it through every journal event and
// trace span the job produces.

#include <string>

namespace mui::obs {

/// A fresh 26-character ULID. Thread-safe; each thread keeps its own
/// generator state.
std::string newUlid();

/// True iff `s` is 26 characters of Crockford base32 (the shape check
/// consumers apply before trusting a client-supplied id).
bool looksLikeUlid(const std::string& s);

}  // namespace mui::obs
