#pragma once
// Build identity and process-level gauges for /metrics (docs/SERVE.md).
//
// setBuildInfo() registers mui_build_info{version,git_sha} once at startup;
// sampleProcessGauges() refreshes mui_process_uptime_seconds,
// mui_process_resident_memory_bytes and mui_process_open_fds from /proc —
// call it right before rendering a registry (the /metrics handler and
// `--metrics-out` both do), not on a timer.

#include <string>

namespace mui::obs {

class Registry;

/// Registers the mui_build_info info metric on `reg`.
void setBuildInfo(Registry& reg, const std::string& version,
                  const std::string& gitSha);

/// Samples uptime (since first call in this process), RSS bytes and open
/// fd count into gauges on `reg`. On platforms without /proc the RSS and
/// fd gauges stay 0.
void sampleProcessGauges(Registry& reg);

}  // namespace mui::obs
