#include "obs/process.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>

#include "obs/metrics.hpp"

namespace mui::obs {

namespace {

std::chrono::steady_clock::time_point processStart() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

std::int64_t residentBytes() {
  std::ifstream statm("/proc/self/statm");
  if (!statm) return 0;
  std::uint64_t totalPages = 0, residentPages = 0;
  statm >> totalPages >> residentPages;
  if (!statm) return 0;
  const long pageSize = ::sysconf(_SC_PAGESIZE);
  if (pageSize <= 0) return 0;
  return static_cast<std::int64_t>(residentPages) * pageSize;
}

std::int64_t openFds() {
  std::error_code ec;
  std::filesystem::directory_iterator it("/proc/self/fd", ec);
  if (ec) return 0;
  std::int64_t n = 0;
  for (const auto& entry : it) {
    (void)entry;
    ++n;
  }
  // The iterator itself holds one fd while we count.
  return n > 0 ? n - 1 : 0;
}

}  // namespace

void setBuildInfo(Registry& reg, const std::string& version,
                  const std::string& gitSha) {
  processStart();  // anchor the uptime gauge at startup registration
  reg.setInfo("mui_build_info", "Build identity of this mui binary",
              {{"version", version}, {"git_sha", gitSha}});
}

void sampleProcessGauges(Registry& reg) {
  const auto uptime = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - processStart());
  reg.gauge("mui_process_uptime_seconds",
            "Seconds since process gauges were first sampled", "s")
      .set(uptime.count());
  reg.gauge("mui_process_resident_memory_bytes",
            "Resident set size from /proc/self/statm", "bytes")
      .set(residentBytes());
  reg.gauge("mui_process_open_fds", "Open file descriptors")
      .set(openFds());
}

}  // namespace mui::obs
