#include "obs/stats.hpp"

#include <map>
#include <sstream>

#include "obs/journal.hpp"
#include "util/json.hpp"
#include "util/text_table.hpp"

namespace mui::obs {

namespace {

std::string getS(const FlatObject& o, const std::string& key) {
  const auto it = o.find(key);
  return it != o.end() && it->second.kind == JsonValue::Kind::String
             ? it->second.text
             : "";
}

std::uint64_t getU(const FlatObject& o, const std::string& key) {
  const auto it = o.find(key);
  return it != o.end() && it->second.kind == JsonValue::Kind::Number
             ? it->second.asUint()
             : 0;
}

double getF(const FlatObject& o, const std::string& key) {
  const auto it = o.find(key);
  return it != o.end() && it->second.kind == JsonValue::Kind::Number
             ? it->second.number
             : 0.0;
}

bool getB(const FlatObject& o, const std::string& key) {
  const auto it = o.find(key);
  return it != o.end() && it->second.kind == JsonValue::Kind::Bool &&
         it->second.boolean;
}

RunStat& findOrAddRun(StatsReport& report,
                      std::map<std::string, std::size_t>& index,
                      const std::string& run) {
  const auto it = index.find(run);
  if (it != index.end()) return report.runs[it->second];
  index.emplace(run, report.runs.size());
  RunStat r;
  r.run = run;
  report.runs.push_back(std::move(r));
  return report.runs.back();
}

}  // namespace

StatsReport aggregateJournals(const std::vector<std::string>& journals) {
  StatsReport report;
  std::map<std::string, std::size_t> runIndex;
  for (const std::string& text : journals) {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      // Blank and whitespace-only lines (trailing newlines, CRLF journals,
      // or an empty file) are not events — skip them without counting them
      // as malformed.
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      const auto obj = parseFlatJson(line);
      // A journal may interleave lines from several schema versions (e.g.
      // a daemon restarted across an upgrade appending to one file); every
      // version in the supported range is additive, so aggregate them all.
      const std::uint64_t schema = obj ? getU(*obj, "schema") : 0;
      if (!obj ||
          schema < static_cast<std::uint64_t>(kJournalMinSchemaVersion) ||
          schema > static_cast<std::uint64_t>(kJournalSchemaVersion)) {
        ++report.skipped;
        continue;
      }
      ++report.events;
      const std::string type = getS(*obj, "type");
      const std::string run = getS(*obj, "run");
      if (type == "run_start") {
        findOrAddRun(report, runIndex, run);
      } else if (type == "iteration") {
        IterationStat it;
        it.run = run;
        it.iteration = getU(*obj, "iter");
        it.modelStates = getU(*obj, "modelStates");
        it.modelTransitions = getU(*obj, "modelTransitions");
        it.closureStates = getU(*obj, "closureStates");
        it.productStates = getU(*obj, "productStates");
        it.statesNew = getU(*obj, "statesNew");
        it.statesReused = getU(*obj, "statesReused");
        it.checkPassed = getB(*obj, "checkPassed");
        it.cexKind = getS(*obj, "cexKind");
        it.cexLength = getU(*obj, "cexLength");
        it.learnedFacts = getU(*obj, "learnedFacts");
        it.testPeriods = getU(*obj, "testPeriods");
        it.closureMs = getF(*obj, "closureMs");
        it.composeMs = getF(*obj, "composeMs");
        it.checkMs = getF(*obj, "checkMs");
        it.testMs = getF(*obj, "testMs");
        findOrAddRun(report, runIndex, run);
        report.iterations.push_back(std::move(it));
      } else if (type == "verdict") {
        RunStat& r = findOrAddRun(report, runIndex, run);
        r.verdict = getS(*obj, "verdict");
        r.iterations = getU(*obj, "iterations");
        r.learnedFacts = getU(*obj, "learnedFacts");
        r.testPeriods = getU(*obj, "testPeriods");
        r.closureMs = getF(*obj, "closureMs");
        r.composeMs = getF(*obj, "composeMs");
        r.checkMs = getF(*obj, "checkMs");
        r.testMs = getF(*obj, "testMs");
      } else if (type == "job") {
        RunStat& r = findOrAddRun(report, runIndex, run);
        if (r.verdict.empty()) r.verdict = getS(*obj, "status");
        r.worker = getS(*obj, "worker");
        r.wallMs = getF(*obj, "wallMs");
        r.cacheHit = getB(*obj, "cacheHit");
        r.presolved = getB(*obj, "presolved");
        // A daemon journal has job events but no verdict events, so the
        // job line is the only source of these per-run totals there.
        if (r.iterations == 0) r.iterations = getU(*obj, "iterations");
        if (r.learnedFacts == 0) r.learnedFacts = getU(*obj, "learnedFacts");
        if (r.testPeriods == 0) r.testPeriods = getU(*obj, "testPeriods");
        ++report.jobs;
        if (r.cacheHit) ++report.cacheHitJobs;
        if (r.presolved) ++report.presolvedJobs;
        report.jobWallMs.push_back(r.wallMs);
      }
      // Unknown event types of a known schema are ignored by design.
      if (const std::string ulid = getS(*obj, "ulid"); !ulid.empty()) {
        RunStat& r = findOrAddRun(report, runIndex, run);
        if (r.ulid.empty()) r.ulid = ulid;
      }
    }
  }
  for (const IterationStat& it : report.iterations) {
    ++report.totalIterations;
    report.totalLearnedFacts += it.learnedFacts;
    report.totalTestPeriods += it.testPeriods;
    report.totalCheckMs += it.checkMs;
    report.totalTestMs += it.testMs;
  }
  return report;
}

std::string renderStatsText(const StatsReport& report) {
  std::string out;
  if (!report.iterations.empty()) {
    util::TextTable table({"run", "iter", "model S", "closure S", "product S",
                           "new", "reused", "check", "cex", "learned",
                           "periods", "cl ms", "co ms", "ck ms", "te ms"});
    for (const IterationStat& it : report.iterations) {
      std::string cex = "-";
      if (!it.checkPassed) {
        cex = (it.cexKind.empty() ? "cex" : it.cexKind) + "/" +
              std::to_string(it.cexLength);
      }
      table.row({it.run, std::to_string(it.iteration),
                 std::to_string(it.modelStates),
                 std::to_string(it.closureStates),
                 std::to_string(it.productStates),
                 std::to_string(it.statesNew), std::to_string(it.statesReused),
                 it.checkPassed ? "pass" : "fail", cex,
                 std::to_string(it.learnedFacts),
                 std::to_string(it.testPeriods), util::fmt(it.closureMs),
                 util::fmt(it.composeMs), util::fmt(it.checkMs),
                 util::fmt(it.testMs)});
    }
    out += table.str();
    out += "\n";
  }
  if (!report.runs.empty()) {
    util::TextTable table({"run", "verdict", "worker", "iters", "learned",
                           "periods", "check ms", "test ms", "wall ms"});
    for (const RunStat& r : report.runs) {
      table.row({r.run, r.verdict.empty() ? "?" : r.verdict,
                 r.worker.empty() ? "-" : r.worker,
                 std::to_string(r.iterations), std::to_string(r.learnedFacts),
                 std::to_string(r.testPeriods), util::fmt(r.checkMs),
                 util::fmt(r.testMs),
                 r.wallMs > 0 ? util::fmt(r.wallMs) : "-"});
    }
    out += table.str();
    out += "\n";
  }
  out += "runs=" + std::to_string(report.runs.size()) +
         " iterations=" + std::to_string(report.totalIterations) +
         " learned=" + std::to_string(report.totalLearnedFacts) +
         " periods=" + std::to_string(report.totalTestPeriods) +
         " checkMs=" + util::fmt(report.totalCheckMs) +
         " testMs=" + util::fmt(report.totalTestMs) +
         " events=" + std::to_string(report.events) +
         " skipped=" + std::to_string(report.skipped);
  if (report.jobs > 0) {
    out += " jobs=" + std::to_string(report.jobs) +
           " presolved=" + std::to_string(report.presolvedJobs) +
           " cacheHits=" + std::to_string(report.cacheHitJobs);
  }
  out += "\n";
  return out;
}

std::string renderStatsJson(const StatsReport& report) {
  std::string out = "{\"iterations\":[";
  bool first = true;
  for (const IterationStat& it : report.iterations) {
    if (!first) out += ",";
    first = false;
    JsonObject o;
    o.s("run", it.run)
        .u("iter", it.iteration)
        .u("modelStates", it.modelStates)
        .u("modelTransitions", it.modelTransitions)
        .u("closureStates", it.closureStates)
        .u("productStates", it.productStates)
        .u("statesNew", it.statesNew)
        .u("statesReused", it.statesReused)
        .b("checkPassed", it.checkPassed)
        .s("cexKind", it.cexKind)
        .u("cexLength", it.cexLength)
        .u("learnedFacts", it.learnedFacts)
        .u("testPeriods", it.testPeriods)
        .f("closureMs", it.closureMs)
        .f("composeMs", it.composeMs)
        .f("checkMs", it.checkMs)
        .f("testMs", it.testMs);
    out += "\n" + o.str();
  }
  out += "\n],\"runs\":[";
  first = true;
  for (const RunStat& r : report.runs) {
    if (!first) out += ",";
    first = false;
    JsonObject o;
    o.s("run", r.run)
        .s("ulid", r.ulid)
        .s("verdict", r.verdict)
        .s("worker", r.worker)
        .u("iterations", r.iterations)
        .u("learnedFacts", r.learnedFacts)
        .u("testPeriods", r.testPeriods)
        .f("closureMs", r.closureMs)
        .f("composeMs", r.composeMs)
        .f("checkMs", r.checkMs)
        .f("testMs", r.testMs)
        .f("wallMs", r.wallMs)
        .b("cacheHit", r.cacheHit)
        .b("presolved", r.presolved);
    out += "\n" + o.str();
  }
  JsonObject totals;
  totals.u("runs", report.runs.size())
      .u("iterations", report.totalIterations)
      .u("learnedFacts", report.totalLearnedFacts)
      .u("testPeriods", report.totalTestPeriods)
      .f("checkMs", report.totalCheckMs)
      .f("testMs", report.totalTestMs)
      .u("events", report.events)
      .u("skipped", report.skipped)
      .u("jobs", report.jobs)
      .u("presolvedJobs", report.presolvedJobs)
      .u("cacheHitJobs", report.cacheHitJobs);
  out += "\n],\"totals\":" + totals.str() + "}\n";
  return out;
}

}  // namespace mui::obs
