#include "ctl/parser.hpp"

#include "util/parse.hpp"

namespace mui::ctl {

namespace {

using util::Cursor;

class Parser {
 public:
  explicit Parser(std::string_view text) : cur_(text) {}

  FormulaPtr parse() {
    FormulaPtr f = implies();
    cur_.skipWs();
    if (!cur_.atEnd()) cur_.fail("trailing input after formula");
    return f;
  }

 private:
  FormulaPtr implies() {
    FormulaPtr left = orExpr();
    if (cur_.tryConsume("->")) {
      return Formula::mkImplies(std::move(left), implies());
    }
    return left;
  }

  FormulaPtr orExpr() {
    FormulaPtr left = andExpr();
    while (cur_.tryConsume("||")) {
      left = Formula::mkOr(std::move(left), andExpr());
    }
    return left;
  }

  FormulaPtr andExpr() {
    FormulaPtr left = unary();
    while (cur_.tryConsume("&&")) {
      left = Formula::mkAnd(std::move(left), unary());
    }
    return left;
  }

  Bound bound() {
    Bound b;
    cur_.skipWs();
    if (cur_.peek() != '[') return b;
    cur_.expect("[");
    b.lo = cur_.integer();
    cur_.expect(",");
    if (cur_.tryKeyword("inf")) {
      b.hi = Bound::kInf;
    } else {
      b.hi = cur_.integer();
    }
    if (b.bounded() && b.hi < b.lo) cur_.fail("bound upper limit below lower");
    cur_.expect("]");
    return b;
  }

  FormulaPtr until(bool universal) {
    cur_.expect("[");
    FormulaPtr left = implies();
    if (!cur_.tryKeyword("U")) cur_.fail("expected 'U' in until formula");
    const Bound b = bound();
    FormulaPtr right = implies();
    cur_.expect("]");
    return universal ? Formula::mkAU(std::move(left), std::move(right), b)
                     : Formula::mkEU(std::move(left), std::move(right), b);
  }

  FormulaPtr unary() {
    if (cur_.tryConsume("!")) return Formula::mkNot(unary());
    if (cur_.tryKeyword("AG")) {
      const Bound b = bound();
      return Formula::mkAG(unary(), b);
    }
    if (cur_.tryKeyword("AF")) {
      const Bound b = bound();
      return Formula::mkAF(unary(), b);
    }
    if (cur_.tryKeyword("EG")) {
      const Bound b = bound();
      return Formula::mkEG(unary(), b);
    }
    if (cur_.tryKeyword("EF")) {
      const Bound b = bound();
      return Formula::mkEF(unary(), b);
    }
    if (cur_.tryKeyword("AX")) return Formula::mkAX(unary());
    if (cur_.tryKeyword("EX")) return Formula::mkEX(unary());
    if (cur_.tryKeyword("A")) return until(true);
    if (cur_.tryKeyword("E")) return until(false);
    if (cur_.tryConsume("(")) {
      FormulaPtr f = implies();
      cur_.expect(")");
      return f;
    }
    if (cur_.tryKeyword("true")) return Formula::mkTrue();
    if (cur_.tryKeyword("false")) return Formula::mkFalse();
    if (cur_.tryKeyword("deadlock")) return Formula::mkDeadlock();
    return Formula::mkAtom(cur_.identifier());
  }

  Cursor cur_;
};

}  // namespace

FormulaPtr parseFormula(std::string_view text) { return Parser(text).parse(); }

}  // namespace mui::ctl
