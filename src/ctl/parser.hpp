#pragma once
// Text syntax for CCTL formulas, as annotated on patterns and roles in the
// MECHATRONIC UML models (paper Fig. 1):
//
//   formula  := or ('->' or)*                      (right associative)
//   or       := and ('||' and)*
//   and      := unary ('&&' unary)*
//   unary    := '!' unary
//             | ('AG'|'AF'|'EG'|'EF') bound? unary
//             | ('AX'|'EX') unary
//             | ('A'|'E') '[' formula 'U' bound? formula ']'
//             | '(' formula ')'
//             | 'true' | 'false' | 'deadlock' | atom
//   bound    := '[' int ',' (int | 'inf') ']'
//
// Atoms are dotted names like `rearRole.convoy` or hierarchical state
// propositions like `shuttle.noConvoy::wait`.

#include <string_view>

#include "ctl/formula.hpp"

namespace mui::ctl {

/// Parses a formula; throws mui::util::ParseError on syntax errors.
FormulaPtr parseFormula(std::string_view text);

}  // namespace mui::ctl
