#pragma once
// Retained naive CCTL checker: the original sweep-until-stable implementation
// (repeated full-state Gauss–Seidel passes, O(S · diameter) per fixpoint).
//
// This is NOT used on any production path — ctl::Checker (worklist over a
// predecessor index) replaced it. It stays as the executable semantic
// reference: the differential fuzz suite (tests/test_ctl_diff.cpp) checks
// the worklist checker against it state-by-state on random automata and
// formulas, and bench_modelcheck reports the speedup of the rewrite against
// it. Keep its operator semantics bit-identical to checker.cpp's
// documentation; fix semantic bugs in both or in neither.

#include <string>
#include <vector>

#include "automata/automaton.hpp"
#include "ctl/formula.hpp"

namespace mui::ctl {

class ReferenceChecker {
 public:
  explicit ReferenceChecker(const automata::Automaton& m);

  /// Satisfaction vector (per state) of `f`.
  std::vector<char> evaluate(const FormulaPtr& f);

  /// True iff every initial state satisfies `f`.
  bool holds(const FormulaPtr& f);

  [[nodiscard]] bool isDeadlockState(automata::StateId s) const {
    return deadlock_[s];
  }

 private:
  std::vector<char> atomSat(const std::string& name);

  std::vector<char> fixAF(const std::vector<char>& phi);
  std::vector<char> fixEF(const std::vector<char>& phi);
  std::vector<char> fixAG(const std::vector<char>& phi);
  std::vector<char> fixEG(const std::vector<char>& phi);
  std::vector<char> fixAU(const std::vector<char>& phi,
                          const std::vector<char>& psi);
  std::vector<char> fixEU(const std::vector<char>& phi,
                          const std::vector<char>& psi);

  std::vector<char> boundedTemporal(Op op, const Bound& b,
                                    const std::vector<char>& phi,
                                    const std::vector<char>& psi);

  const automata::Automaton& m_;
  std::vector<std::vector<automata::StateId>> succ_;
  std::vector<char> deadlock_;
};

}  // namespace mui::ctl
