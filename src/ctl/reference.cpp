#include "ctl/reference.hpp"

#include <algorithm>
#include <stdexcept>

namespace mui::ctl {

using automata::StateId;

ReferenceChecker::ReferenceChecker(const automata::Automaton& m) : m_(m) {
  succ_.resize(m.stateCount());
  deadlock_.resize(m.stateCount(), 0);
  for (StateId s = 0; s < m.stateCount(); ++s) {
    for (const auto& t : m.transitionsFrom(s)) {
      if (std::find(succ_[s].begin(), succ_[s].end(), t.to) ==
          succ_[s].end()) {
        succ_[s].push_back(t.to);
      }
    }
    deadlock_[s] = succ_[s].empty() ? 1 : 0;
  }
}

std::vector<char> ReferenceChecker::atomSat(const std::string& name) {
  std::vector<char> sat(m_.stateCount(), 0);
  const auto id = m_.propTable()->lookup(name);
  if (!id) return sat;
  for (StateId s = 0; s < m_.stateCount(); ++s) {
    sat[s] = m_.labels(s).test(*id) ? 1 : 0;
  }
  return sat;
}

namespace {
/// Repeats `step` until no satisfaction bit changes.
template <typename F>
void untilFixpoint(std::vector<char>& sat, F&& step) {
  bool changed = true;
  while (changed) changed = step(sat);
}
}  // namespace

// AF φ (least fixpoint): φ, or all successors already satisfy AF φ and at
// least one successor exists (a path ending without φ violates AF).
std::vector<char> ReferenceChecker::fixAF(const std::vector<char>& phi) {
  std::vector<char> sat = phi;
  untilFixpoint(sat, [&](std::vector<char>& x) {
    bool changed = false;
    for (StateId s = 0; s < m_.stateCount(); ++s) {
      if (x[s] || deadlock_[s]) continue;
      bool all = true;
      for (StateId t : succ_[s]) {
        if (!x[t]) {
          all = false;
          break;
        }
      }
      if (all) {
        x[s] = 1;
        changed = true;
      }
    }
    return changed;
  });
  return sat;
}

std::vector<char> ReferenceChecker::fixEF(const std::vector<char>& phi) {
  std::vector<char> sat = phi;
  untilFixpoint(sat, [&](std::vector<char>& x) {
    bool changed = false;
    for (StateId s = 0; s < m_.stateCount(); ++s) {
      if (x[s]) continue;
      for (StateId t : succ_[s]) {
        if (x[t]) {
          x[s] = 1;
          changed = true;
          break;
        }
      }
    }
    return changed;
  });
  return sat;
}

// AG φ (greatest fixpoint): φ here and at every successor transitively;
// deadlock states satisfy the continuation vacuously.
std::vector<char> ReferenceChecker::fixAG(const std::vector<char>& phi) {
  std::vector<char> sat = phi;
  untilFixpoint(sat, [&](std::vector<char>& x) {
    bool changed = false;
    for (StateId s = 0; s < m_.stateCount(); ++s) {
      if (!x[s]) continue;
      for (StateId t : succ_[s]) {
        if (!x[t]) {
          x[s] = 0;
          changed = true;
          break;
        }
      }
    }
    return changed;
  });
  return sat;
}

// EG φ (greatest fixpoint, weak): φ along some maximal path — the path may
// end in a deadlock.
std::vector<char> ReferenceChecker::fixEG(const std::vector<char>& phi) {
  std::vector<char> sat = phi;
  untilFixpoint(sat, [&](std::vector<char>& x) {
    bool changed = false;
    for (StateId s = 0; s < m_.stateCount(); ++s) {
      if (!x[s] || deadlock_[s]) continue;
      bool any = false;
      for (StateId t : succ_[s]) {
        if (x[t]) {
          any = true;
          break;
        }
      }
      if (!any) {
        x[s] = 0;
        changed = true;
      }
    }
    return changed;
  });
  return sat;
}

std::vector<char> ReferenceChecker::fixAU(const std::vector<char>& phi,
                                          const std::vector<char>& psi) {
  std::vector<char> sat = psi;
  untilFixpoint(sat, [&](std::vector<char>& x) {
    bool changed = false;
    for (StateId s = 0; s < m_.stateCount(); ++s) {
      if (x[s] || !phi[s] || deadlock_[s]) continue;
      bool all = true;
      for (StateId t : succ_[s]) {
        if (!x[t]) {
          all = false;
          break;
        }
      }
      if (all) {
        x[s] = 1;
        changed = true;
      }
    }
    return changed;
  });
  return sat;
}

std::vector<char> ReferenceChecker::fixEU(const std::vector<char>& phi,
                                          const std::vector<char>& psi) {
  std::vector<char> sat = psi;
  untilFixpoint(sat, [&](std::vector<char>& x) {
    bool changed = false;
    for (StateId s = 0; s < m_.stateCount(); ++s) {
      if (x[s] || !phi[s]) continue;
      for (StateId t : succ_[s]) {
        if (x[t]) {
          x[s] = 1;
          changed = true;
          break;
        }
      }
    }
    return changed;
  });
  return sat;
}

// Positional evaluation of bounded operators; see ctl/checker.cpp for the
// semantics — this is the same recurrence over vector<char>.
std::vector<char> ReferenceChecker::boundedTemporal(
    Op op, const Bound& b, const std::vector<char>& phi,
    const std::vector<char>& psi) {
  const std::size_t n = m_.stateCount();
  const bool universal = (op == Op::AF || op == Op::AG || op == Op::AU);
  const bool isG = (op == Op::AG || op == Op::EG);
  const bool isU = (op == Op::AU || op == Op::EU);

  if (b.bounded() && b.hi < b.lo) {
    return std::vector<char>(n, isG ? 1 : 0);
  }

  std::vector<char> cur(n);
  std::size_t start;
  if (!b.bounded()) {
    switch (op) {
      case Op::AF:
        cur = fixAF(phi);
        break;
      case Op::EF:
        cur = fixEF(phi);
        break;
      case Op::AG:
        cur = fixAG(phi);
        break;
      case Op::EG:
        cur = fixEG(phi);
        break;
      case Op::AU:
        cur = fixAU(phi, psi);
        break;
      case Op::EU:
        cur = fixEU(phi, psi);
        break;
      default:
        throw std::logic_error("boundedTemporal: bad operator");
    }
    start = b.lo;
  } else {
    for (StateId s = 0; s < n; ++s) {
      const char target = isU ? psi[s] : phi[s];
      cur[s] = isG ? target : (b.hi >= b.lo ? target : 0);
    }
    start = b.hi;
  }

  std::vector<char> next(n);
  for (std::size_t i = start; i-- > 0;) {
    const bool inWindow = i >= b.lo;
    for (StateId s = 0; s < n; ++s) {
      bool contAll = true, contAny = false;
      for (StateId t : succ_[s]) {
        if (cur[t]) {
          contAny = true;
        } else {
          contAll = false;
        }
      }
      bool v;
      if (isG) {
        const bool here = !inWindow || phi[s];
        const bool cont = universal ? contAll
                                    : (deadlock_[s] ? true : contAny);
        v = here && cont;
      } else if (isU) {
        const bool fulfilled = inWindow && psi[s];
        const bool cont =
            phi[s] && !deadlock_[s] && (universal ? contAll : contAny);
        v = fulfilled || cont;
      } else {  // F
        const bool fulfilled = inWindow && phi[s];
        const bool cont = !deadlock_[s] && (universal ? contAll : contAny);
        v = fulfilled || cont;
      }
      next[s] = v ? 1 : 0;
    }
    cur.swap(next);
  }
  return cur;
}

std::vector<char> ReferenceChecker::evaluate(const FormulaPtr& f) {
  const std::size_t n = m_.stateCount();
  switch (f->op) {
    case Op::True:
      return std::vector<char>(n, 1);
    case Op::False:
      return std::vector<char>(n, 0);
    case Op::Atom:
      return atomSat(f->atom);
    case Op::Deadlock:
      return deadlock_;
    case Op::Not: {
      auto v = evaluate(f->lhs);
      for (auto& x : v) x = !x;
      return v;
    }
    case Op::And: {
      auto a = evaluate(f->lhs);
      const auto b = evaluate(f->rhs);
      for (std::size_t i = 0; i < n; ++i) a[i] = a[i] && b[i];
      return a;
    }
    case Op::Or: {
      auto a = evaluate(f->lhs);
      const auto b = evaluate(f->rhs);
      for (std::size_t i = 0; i < n; ++i) a[i] = a[i] || b[i];
      return a;
    }
    case Op::Implies: {
      auto a = evaluate(f->lhs);
      const auto b = evaluate(f->rhs);
      for (std::size_t i = 0; i < n; ++i) a[i] = !a[i] || b[i];
      return a;
    }
    case Op::AX: {
      const auto p = evaluate(f->lhs);
      std::vector<char> v(n, 0);
      for (StateId s = 0; s < n; ++s) {
        bool all = true;
        for (StateId t : succ_[s]) {
          if (!p[t]) {
            all = false;
            break;
          }
        }
        v[s] = all ? 1 : 0;  // vacuously true on deadlock states
      }
      return v;
    }
    case Op::EX: {
      const auto p = evaluate(f->lhs);
      std::vector<char> v(n, 0);
      for (StateId s = 0; s < n; ++s) {
        for (StateId t : succ_[s]) {
          if (p[t]) {
            v[s] = 1;
            break;
          }
        }
      }
      return v;
    }
    case Op::AF:
    case Op::EF:
    case Op::AG:
    case Op::EG: {
      const auto p = evaluate(f->lhs);
      if (f->bound.lo == 0 && !f->bound.bounded()) {
        switch (f->op) {
          case Op::AF:
            return fixAF(p);
          case Op::EF:
            return fixEF(p);
          case Op::AG:
            return fixAG(p);
          default:
            return fixEG(p);
        }
      }
      return boundedTemporal(f->op, f->bound, p, {});
    }
    case Op::AU:
    case Op::EU: {
      const auto p = evaluate(f->lhs);
      const auto q = evaluate(f->rhs);
      if (f->bound.lo == 0 && !f->bound.bounded()) {
        return f->op == Op::AU ? fixAU(p, q) : fixEU(p, q);
      }
      return boundedTemporal(f->op, f->bound, p, q);
    }
  }
  throw std::logic_error("ReferenceChecker::evaluate: unknown operator");
}

bool ReferenceChecker::holds(const FormulaPtr& f) {
  const auto sat = evaluate(f);
  for (StateId q : m_.initialStates()) {
    if (!sat[q]) return false;
  }
  return true;
}

}  // namespace mui::ctl
