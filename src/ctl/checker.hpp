#pragma once
// Explicit-state CCTL model checker over the discrete-time automaton model —
// the RAVEN-replacing substrate (DESIGN.md §2).
//
// Evaluation computes the satisfaction set of every subformula over all
// states; the verdict is taken over the initial states. Maximal paths may be
// finite (ending in a deadlock state); see formula.hpp for the resulting
// weak bounded semantics. One transition = one time unit, so bounds count
// transitions.
//
// The unbounded fixpoints run as worklist algorithms over a precomputed
// predecessor index (CSR over the duplicate-free edge set): least fixpoints
// propagate satisfaction backwards from the seed set, universal operators
// keep a pending-successor counter per state, greatest fixpoints delete
// states whose continuation died. Every edge is visited a constant number of
// times, so each operator costs O(S + E) instead of the O(S · diameter)
// Gauss–Seidel sweeps of the retained reference implementation
// (ctl/reference.hpp). Satisfaction sets are dense bitsets (one bit per
// state, word-parallel boolean connectives).

#include <string>
#include <unordered_set>
#include <vector>

#include "automata/automaton.hpp"
#include "ctl/formula.hpp"
#include "util/bitset.hpp"

namespace mui::ctl {

using automata::Automaton;
using automata::StateId;

/// Per-state satisfaction set: bit s = "state s satisfies the formula".
using SatSet = util::DenseBitset;

class Checker {
 public:
  explicit Checker(const Automaton& m);

  /// Satisfaction set (per state) of `f`.
  SatSet evaluate(const FormulaPtr& f);

  /// True iff every initial state satisfies `f`.
  bool holds(const FormulaPtr& f);

  /// δ per state: no outgoing transition.
  [[nodiscard]] bool isDeadlockState(StateId s) const {
    return deadlock_[s];
  }

  /// All deadlock states at once (counterexample search targets this set).
  [[nodiscard]] const SatSet& deadlockSet() const { return deadlock_; }

  /// Atoms that named no proposition of the model (treated as false);
  /// surfaced so property typos do not silently verify.
  [[nodiscard]] const std::vector<std::string>& unknownAtoms() const {
    return unknownAtoms_;
  }

  [[nodiscard]] const Automaton& model() const { return m_; }

 private:
  SatSet atomSat(const std::string& name);

  // Unbounded fixpoints (worklist, O(S + E) each).
  SatSet fixAF(const SatSet& phi);
  SatSet fixEF(const SatSet& phi);
  SatSet fixAG(const SatSet& phi);
  SatSet fixEG(const SatSet& phi);
  SatSet fixAU(const SatSet& phi, const SatSet& psi);
  SatSet fixEU(const SatSet& phi, const SatSet& psi);

  // Positional (bounded / lower-bounded) evaluation; see checker.cpp.
  SatSet boundedTemporal(Op op, const Bound& b, const SatSet& phi,
                         const SatSet& psi);

  // CSR slices over the duplicate-free successor/predecessor lists.
  [[nodiscard]] std::size_t outDegree(StateId s) const {
    return succHead_[s + 1] - succHead_[s];
  }
  template <typename F>
  void forSucc(StateId s, F&& f) const {
    for (std::uint32_t i = succHead_[s]; i < succHead_[s + 1]; ++i) {
      f(succList_[i]);
    }
  }
  template <typename F>
  void forPred(StateId s, F&& f) const {
    for (std::uint32_t i = predHead_[s]; i < predHead_[s + 1]; ++i) {
      f(predList_[i]);
    }
  }

  const Automaton& m_;
  // Duplicate-free edge set in CSR form, forwards and backwards.
  std::vector<std::uint32_t> succHead_;  // size n+1
  std::vector<StateId> succList_;
  std::vector<std::uint32_t> predHead_;  // size n+1
  std::vector<StateId> predList_;
  SatSet deadlock_;
  std::vector<std::string> unknownAtoms_;
  std::unordered_set<std::string> unknownAtomSet_;
};

}  // namespace mui::ctl
