#pragma once
// Explicit-state CCTL model checker over the discrete-time automaton model —
// the RAVEN-replacing substrate (DESIGN.md §2).
//
// Evaluation computes the satisfaction set of every subformula over all
// states; the verdict is taken over the initial states. Maximal paths may be
// finite (ending in a deadlock state); see formula.hpp for the resulting
// weak bounded semantics. One transition = one time unit, so bounds count
// transitions.

#include <string>
#include <vector>

#include "automata/automaton.hpp"
#include "ctl/formula.hpp"

namespace mui::ctl {

using automata::Automaton;
using automata::StateId;

class Checker {
 public:
  explicit Checker(const Automaton& m);

  /// Satisfaction vector (per state) of `f`.
  std::vector<char> evaluate(const FormulaPtr& f);

  /// True iff every initial state satisfies `f`.
  bool holds(const FormulaPtr& f);

  /// δ per state: no outgoing transition.
  [[nodiscard]] bool isDeadlockState(StateId s) const {
    return deadlock_[s];
  }

  /// Atoms that named no proposition of the model (treated as false);
  /// surfaced so property typos do not silently verify.
  [[nodiscard]] const std::vector<std::string>& unknownAtoms() const {
    return unknownAtoms_;
  }

  [[nodiscard]] const Automaton& model() const { return m_; }

 private:
  std::vector<char> atomSat(const std::string& name);

  // Unbounded fixpoints.
  std::vector<char> fixAF(const std::vector<char>& phi);
  std::vector<char> fixEF(const std::vector<char>& phi);
  std::vector<char> fixAG(const std::vector<char>& phi);
  std::vector<char> fixEG(const std::vector<char>& phi);
  std::vector<char> fixAU(const std::vector<char>& phi,
                          const std::vector<char>& psi);
  std::vector<char> fixEU(const std::vector<char>& phi,
                          const std::vector<char>& psi);

  // Positional (bounded / lower-bounded) evaluation; see checker.cpp.
  std::vector<char> boundedTemporal(Op op, const Bound& b,
                                    const std::vector<char>& phi,
                                    const std::vector<char>& psi);

  const Automaton& m_;
  std::vector<std::vector<StateId>> succ_;  // duplicate-free successor sets
  std::vector<char> deadlock_;
  std::vector<std::string> unknownAtoms_;
};

}  // namespace mui::ctl
