#pragma once
// CTL / clocked-CTL (CCTL) formulas (paper Sec. 2.1).
//
// Time bounds on temporal operators are in discrete time units; since each
// transition of the automaton model takes exactly one time unit (paper
// Sec. 2), a bound [a, b] ranges over transition counts. The paper's
// properties are timed-ACTL (A-quantified) formulas such as the maximal-delay
// pattern AG(¬p1 ∨ AF[1,d] p2) and invariants like
// AG ¬(rearRole.convoy ∧ frontRole.noConvoy).
//
// Path semantics are over *maximal* paths: infinite, or ending in a state
// without outgoing transitions (a deadlock, Sec. 2.1's δ). Bounded operators
// use weak semantics beyond a path's end (a position that does not exist
// imposes no constraint for G and offers no witness for F), which keeps the
// standard dualities (¬AF[a,b]φ ≡ EG[a,b]¬φ etc.) intact.

#include <cstdint>
#include <limits>
#include <memory>
#include <string>

namespace mui::ctl {

enum class Op {
  True,
  False,
  Atom,      // named atomic proposition
  Deadlock,  // structural predicate δ: state has no outgoing transition
  Not,
  And,
  Or,
  Implies,
  AX,
  EX,
  AF,
  EF,
  AG,
  EG,
  AU,  // A[lhs U rhs]
  EU,  // E[lhs U rhs]
};

/// Time bound [lo, hi] for F/G/U operators; unbounded when hi == kInf.
struct Bound {
  static constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
  std::size_t lo = 0;
  std::size_t hi = kInf;

  [[nodiscard]] bool bounded() const { return hi != kInf; }
  bool operator==(const Bound&) const = default;
};

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

class Formula {
 public:
  Op op;
  std::string atom;       // Op::Atom
  Bound bound;            // AF/EF/AG/EG/AU/EU
  FormulaPtr lhs, rhs;    // operands (rhs only for binary ops)

  // ---- Factories -----------------------------------------------------------
  static FormulaPtr mkTrue();
  static FormulaPtr mkFalse();
  static FormulaPtr mkAtom(std::string name);
  static FormulaPtr mkDeadlock();
  static FormulaPtr mkNot(FormulaPtr f);
  static FormulaPtr mkAnd(FormulaPtr a, FormulaPtr b);
  static FormulaPtr mkOr(FormulaPtr a, FormulaPtr b);
  static FormulaPtr mkImplies(FormulaPtr a, FormulaPtr b);
  static FormulaPtr mkAX(FormulaPtr f);
  static FormulaPtr mkEX(FormulaPtr f);
  static FormulaPtr mkAF(FormulaPtr f, Bound b = {});
  static FormulaPtr mkEF(FormulaPtr f, Bound b = {});
  static FormulaPtr mkAG(FormulaPtr f, Bound b = {});
  static FormulaPtr mkEG(FormulaPtr f, Bound b = {});
  static FormulaPtr mkAU(FormulaPtr a, FormulaPtr b, Bound bd = {});
  static FormulaPtr mkEU(FormulaPtr a, FormulaPtr b, Bound bd = {});

  /// True iff the formula is in the ACTL fragment (only A path quantifiers
  /// outside negations) — the compositional fragment of Def. 5 for which
  /// verification verdicts transfer through refinement.
  [[nodiscard]] bool isACTL() const;

  [[nodiscard]] std::string toString() const;
};

/// Number of nodes in the formula tree (atoms and constants count 1). The
/// fuzzer's shrinker (src/fuzz/shrink.hpp) uses this as its simplification
/// order: a replacement candidate is accepted only if it is strictly smaller.
std::size_t formulaSize(const FormulaPtr& f);

/// Negation normal form: negations pushed to the atoms. Throws
/// std::invalid_argument for negated Until (we do not implement Release; the
/// paper's property patterns never need it).
FormulaPtr toNNF(const FormulaPtr& f);

/// The paper's chaotic-closure formula weakening (Sec. 2.7): converts to NNF
/// and replaces every literal p by (p ∨ chaosProp) and ¬p by (¬p ∨
/// chaosProp), so chaotic states satisfy every (weakened) literal and the
/// closure never produces spurious *property* witnesses.
FormulaPtr weakenForChaos(const FormulaPtr& f,
                          const std::string& chaosProp = "p_chaos");

}  // namespace mui::ctl
