#include "ctl/checker.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace mui::ctl {

namespace {

/// Worklist pops across all fixpoint computations. Hot loops count into a
/// local and flush once per fixpoint, so the hot path stays atomic-free.
obs::Counter& popsCounter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "mui_ctl_worklist_pops_total",
      "States popped from CTL fixpoint worklists");
  return c;
}

}  // namespace

Checker::Checker(const Automaton& m) : m_(m) {
  static obs::Counter& checkers = obs::Registry::global().counter(
      "mui_ctl_checkers_total", "CTL checkers constructed");
  static obs::Histogram& bits = obs::Registry::global().histogram(
      "mui_ctl_satset_bits", "Bit width of sat-set bitsets (= model states)",
      "states");
  checkers.inc();
  bits.observe(m.stateCount());
  const std::size_t n = m.stateCount();
  deadlock_ = SatSet(n);
  succHead_.assign(n + 1, 0);
  succList_.reserve(m.transitionCount());
  std::vector<StateId> targets;
  for (StateId s = 0; s < n; ++s) {
    targets.clear();
    for (const auto& t : m.transitionsFrom(s)) targets.push_back(t.to);
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    succList_.insert(succList_.end(), targets.begin(), targets.end());
    succHead_[s + 1] = static_cast<std::uint32_t>(succList_.size());
    if (targets.empty()) deadlock_.set(s);
  }
  // Invert the duplicate-free edge set: counting sort into CSR.
  predHead_.assign(n + 1, 0);
  for (const StateId t : succList_) ++predHead_[t + 1];
  for (std::size_t s = 0; s < n; ++s) predHead_[s + 1] += predHead_[s];
  predList_.resize(succList_.size());
  std::vector<std::uint32_t> cursor(predHead_.begin(), predHead_.end() - 1);
  for (StateId s = 0; s < n; ++s) {
    forSucc(s, [&](StateId t) { predList_[cursor[t]++] = s; });
  }
}

SatSet Checker::atomSat(const std::string& name) {
  SatSet sat(m_.stateCount());
  const auto id = m_.propTable()->lookup(name);
  if (!id) {
    if (unknownAtomSet_.insert(name).second) unknownAtoms_.push_back(name);
    return sat;
  }
  for (StateId s = 0; s < m_.stateCount(); ++s) {
    if (m_.labels(s).test(*id)) sat.set(s);
  }
  return sat;
}

namespace {
/// Seeds the worklist with every state currently in `sat`.
std::vector<StateId> statesOf(const SatSet& sat) {
  std::vector<StateId> work;
  work.reserve(sat.count());
  for (StateId s = 0; s < sat.size(); ++s) {
    if (sat[s]) work.push_back(s);
  }
  return work;
}
}  // namespace

// AF φ (least fixpoint): φ, or all successors already satisfy AF φ and at
// least one successor exists (a path ending without φ violates AF). Each
// state keeps a pending-successor counter; it joins the set when the last
// successor does.
SatSet Checker::fixAF(const SatSet& phi) {
  SatSet sat = phi;
  std::vector<std::uint32_t> pending(m_.stateCount());
  for (StateId s = 0; s < m_.stateCount(); ++s) {
    pending[s] = static_cast<std::uint32_t>(outDegree(s));
  }
  std::vector<StateId> work = statesOf(sat);
  std::uint64_t pops = 0;
  while (!work.empty()) {
    const StateId t = work.back();
    work.pop_back();
    ++pops;
    forPred(t, [&](StateId s) {
      if (sat[s]) return;
      if (--pending[s] == 0) {  // deadlock states have no incoming decrement
        sat.set(s);
        work.push_back(s);
      }
    });
  }
  popsCounter().add(pops);
  return sat;
}

// EF φ: plain backward reachability of the φ states.
SatSet Checker::fixEF(const SatSet& phi) {
  SatSet sat = phi;
  std::vector<StateId> work = statesOf(sat);
  std::uint64_t pops = 0;
  while (!work.empty()) {
    const StateId t = work.back();
    work.pop_back();
    ++pops;
    forPred(t, [&](StateId s) {
      if (!sat[s]) {
        sat.set(s);
        work.push_back(s);
      }
    });
  }
  popsCounter().add(pops);
  return sat;
}

// AG φ (greatest fixpoint): φ here and at every successor transitively —
// equivalently ¬EF ¬φ, so one backward closure of the ¬φ states suffices;
// deadlock states satisfy the continuation vacuously.
SatSet Checker::fixAG(const SatSet& phi) {
  SatSet bad = phi;
  bad.flip();
  bad = fixEF(bad);
  bad.flip();
  return bad;
}

// EG φ (greatest fixpoint, weak): φ along some maximal path — the path may
// end in a deadlock. States are deleted when their last satisfying successor
// is deleted (live-successor counter).
SatSet Checker::fixEG(const SatSet& phi) {
  SatSet sat = phi;
  std::vector<std::uint32_t> live(m_.stateCount(), 0);
  for (StateId s = 0; s < m_.stateCount(); ++s) {
    forSucc(s, [&](StateId t) {
      if (sat[t]) ++live[s];
    });
  }
  std::vector<StateId> work;
  for (StateId s = 0; s < m_.stateCount(); ++s) {
    if (sat[s] && !deadlock_[s] && live[s] == 0) {
      sat.reset(s);
      work.push_back(s);
    }
  }
  std::uint64_t pops = 0;
  while (!work.empty()) {
    const StateId t = work.back();
    work.pop_back();
    ++pops;
    forPred(t, [&](StateId s) {
      if (!sat[s] || deadlock_[s]) return;
      if (--live[s] == 0) {
        sat.reset(s);
        work.push_back(s);
      }
    });
  }
  popsCounter().add(pops);
  return sat;
}

SatSet Checker::fixAU(const SatSet& phi, const SatSet& psi) {
  SatSet sat = psi;
  std::vector<std::uint32_t> pending(m_.stateCount());
  for (StateId s = 0; s < m_.stateCount(); ++s) {
    pending[s] = static_cast<std::uint32_t>(outDegree(s));
  }
  std::vector<StateId> work = statesOf(sat);
  std::uint64_t pops = 0;
  while (!work.empty()) {
    const StateId t = work.back();
    work.pop_back();
    ++pops;
    forPred(t, [&](StateId s) {
      if (sat[s] || !phi[s]) return;  // ¬φ states can never join
      if (--pending[s] == 0) {
        sat.set(s);
        work.push_back(s);
      }
    });
  }
  popsCounter().add(pops);
  return sat;
}

SatSet Checker::fixEU(const SatSet& phi, const SatSet& psi) {
  SatSet sat = psi;
  std::vector<StateId> work = statesOf(sat);
  std::uint64_t pops = 0;
  while (!work.empty()) {
    const StateId t = work.back();
    work.pop_back();
    ++pops;
    forPred(t, [&](StateId s) {
      if (!sat[s] && phi[s]) {
        sat.set(s);
        work.push_back(s);
      }
    });
  }
  popsCounter().add(pops);
  return sat;
}

// Positional evaluation of bounded (or lower-bounded) temporal operators.
// sat_i(s) answers "does the operator hold at s seen as position i of the
// window"; computed backwards from the window end. For hi == inf the value
// at position lo is the corresponding unbounded fixpoint. The result is
// sat_0. (`psi` is used only for AU/EU.)
SatSet Checker::boundedTemporal(Op op, const Bound& b, const SatSet& phi,
                                const SatSet& psi) {
  const std::size_t n = m_.stateCount();
  const bool universal = (op == Op::AF || op == Op::AG || op == Op::AU);
  const bool isG = (op == Op::AG || op == Op::EG);
  const bool isU = (op == Op::AU || op == Op::EU);

  // Empty window: G-type trivially true, F/U-type trivially false.
  if (b.bounded() && b.hi < b.lo) {
    return SatSet(n, isG);
  }

  // cur = sat at position i+1 while computing position i.
  SatSet cur(n);
  std::size_t start;  // first position computed going backwards is start-1
  if (!b.bounded()) {
    // Position lo == unbounded fixpoint; then walk lo-1 .. 0.
    switch (op) {
      case Op::AF:
        cur = fixAF(phi);
        break;
      case Op::EF:
        cur = fixEF(phi);
        break;
      case Op::AG:
        cur = fixAG(phi);
        break;
      case Op::EG:
        cur = fixEG(phi);
        break;
      case Op::AU:
        cur = fixAU(phi, psi);
        break;
      case Op::EU:
        cur = fixEU(phi, psi);
        break;
      default:
        throw std::logic_error("boundedTemporal: bad operator");
    }
    start = b.lo;
  } else {
    // Position hi: last chance for F/U; last constrained position for G.
    const SatSet& target = isU ? psi : phi;
    if (isG || b.hi >= b.lo) cur = target;
    start = b.hi;
  }

  SatSet next(n);
  for (std::size_t i = start; i-- > 0;) {
    const bool inWindow = i >= b.lo;
    for (StateId s = 0; s < n; ++s) {
      // Continuation through the successors.
      bool contAll = true, contAny = false;
      forSucc(s, [&](StateId t) {
        if (cur[t]) {
          contAny = true;
        } else {
          contAll = false;
        }
      });
      bool v;
      if (isG) {
        const bool here = !inWindow || phi[s];
        // Weak semantics: a path that ends imposes/offers nothing further.
        const bool cont = universal ? contAll  // vacuous on deadlock
                                    : (deadlock_[s] ? true : contAny);
        v = here && cont;
      } else if (isU) {
        const bool fulfilled = inWindow && psi[s];
        const bool cont =
            phi[s] && !deadlock_[s] && (universal ? contAll : contAny);
        v = fulfilled || cont;
      } else {  // F
        const bool fulfilled = inWindow && phi[s];
        const bool cont = !deadlock_[s] && (universal ? contAll : contAny);
        v = fulfilled || cont;
      }
      next.assign(s, v);
    }
    std::swap(cur, next);
  }
  return cur;
}

SatSet Checker::evaluate(const FormulaPtr& f) {
  const std::size_t n = m_.stateCount();
  switch (f->op) {
    case Op::True:
      return SatSet(n, true);
    case Op::False:
      return SatSet(n);
    case Op::Atom:
      return atomSat(f->atom);
    case Op::Deadlock:
      return deadlock_;
    case Op::Not: {
      auto v = evaluate(f->lhs);
      v.flip();
      return v;
    }
    case Op::And: {
      auto a = evaluate(f->lhs);
      a &= evaluate(f->rhs);
      return a;
    }
    case Op::Or: {
      auto a = evaluate(f->lhs);
      a |= evaluate(f->rhs);
      return a;
    }
    case Op::Implies: {
      auto a = evaluate(f->lhs);
      a.flip();
      a |= evaluate(f->rhs);
      return a;
    }
    case Op::AX: {
      const auto p = evaluate(f->lhs);
      SatSet v(n);
      for (StateId s = 0; s < n; ++s) {
        bool all = true;
        forSucc(s, [&](StateId t) { all = all && p[t]; });
        if (all) v.set(s);  // vacuously true on deadlock states
      }
      return v;
    }
    case Op::EX: {
      const auto p = evaluate(f->lhs);
      SatSet v(n);
      for (StateId s = 0; s < n; ++s) {
        bool any = false;
        forSucc(s, [&](StateId t) { any = any || p[t]; });
        if (any) v.set(s);
      }
      return v;
    }
    case Op::AF:
    case Op::EF:
    case Op::AG:
    case Op::EG: {
      const auto p = evaluate(f->lhs);
      if (f->bound.lo == 0 && !f->bound.bounded()) {
        switch (f->op) {
          case Op::AF:
            return fixAF(p);
          case Op::EF:
            return fixEF(p);
          case Op::AG:
            return fixAG(p);
          default:
            return fixEG(p);
        }
      }
      return boundedTemporal(f->op, f->bound, p, SatSet(n));
    }
    case Op::AU:
    case Op::EU: {
      const auto p = evaluate(f->lhs);
      const auto q = evaluate(f->rhs);
      if (f->bound.lo == 0 && !f->bound.bounded()) {
        return f->op == Op::AU ? fixAU(p, q) : fixEU(p, q);
      }
      return boundedTemporal(f->op, f->bound, p, q);
    }
  }
  throw std::logic_error("Checker::evaluate: unknown operator");
}

bool Checker::holds(const FormulaPtr& f) {
  const auto sat = evaluate(f);
  for (StateId q : m_.initialStates()) {
    if (!sat[q]) return false;
  }
  return true;
}

}  // namespace mui::ctl
