#include "ctl/formula.hpp"

#include <stdexcept>

namespace mui::ctl {

namespace {
FormulaPtr make(Op op, std::string atom, Bound bound, FormulaPtr lhs,
                FormulaPtr rhs) {
  auto f = std::make_shared<Formula>();
  f->op = op;
  f->atom = std::move(atom);
  f->bound = bound;
  f->lhs = std::move(lhs);
  f->rhs = std::move(rhs);
  return f;
}
}  // namespace

FormulaPtr Formula::mkTrue() { return make(Op::True, {}, {}, {}, {}); }
FormulaPtr Formula::mkFalse() { return make(Op::False, {}, {}, {}, {}); }
FormulaPtr Formula::mkAtom(std::string name) {
  return make(Op::Atom, std::move(name), {}, {}, {});
}
FormulaPtr Formula::mkDeadlock() { return make(Op::Deadlock, {}, {}, {}, {}); }
FormulaPtr Formula::mkNot(FormulaPtr f) {
  return make(Op::Not, {}, {}, std::move(f), {});
}
FormulaPtr Formula::mkAnd(FormulaPtr a, FormulaPtr b) {
  return make(Op::And, {}, {}, std::move(a), std::move(b));
}
FormulaPtr Formula::mkOr(FormulaPtr a, FormulaPtr b) {
  return make(Op::Or, {}, {}, std::move(a), std::move(b));
}
FormulaPtr Formula::mkImplies(FormulaPtr a, FormulaPtr b) {
  return make(Op::Implies, {}, {}, std::move(a), std::move(b));
}
FormulaPtr Formula::mkAX(FormulaPtr f) {
  return make(Op::AX, {}, {}, std::move(f), {});
}
FormulaPtr Formula::mkEX(FormulaPtr f) {
  return make(Op::EX, {}, {}, std::move(f), {});
}
FormulaPtr Formula::mkAF(FormulaPtr f, Bound b) {
  return make(Op::AF, {}, b, std::move(f), {});
}
FormulaPtr Formula::mkEF(FormulaPtr f, Bound b) {
  return make(Op::EF, {}, b, std::move(f), {});
}
FormulaPtr Formula::mkAG(FormulaPtr f, Bound b) {
  return make(Op::AG, {}, b, std::move(f), {});
}
FormulaPtr Formula::mkEG(FormulaPtr f, Bound b) {
  return make(Op::EG, {}, b, std::move(f), {});
}
FormulaPtr Formula::mkAU(FormulaPtr a, FormulaPtr b, Bound bd) {
  return make(Op::AU, {}, bd, std::move(a), std::move(b));
}
FormulaPtr Formula::mkEU(FormulaPtr a, FormulaPtr b, Bound bd) {
  return make(Op::EU, {}, bd, std::move(a), std::move(b));
}

namespace {
bool isACTLImpl(const Formula& f, bool negated) {
  switch (f.op) {
    case Op::True:
    case Op::False:
    case Op::Atom:
    case Op::Deadlock:
      return true;
    case Op::Not:
      return isACTLImpl(*f.lhs, !negated);
    case Op::And:
    case Op::Or:
      return isACTLImpl(*f.lhs, negated) && isACTLImpl(*f.rhs, negated);
    case Op::Implies:
      return isACTLImpl(*f.lhs, !negated) && isACTLImpl(*f.rhs, negated);
    case Op::AX:
    case Op::AF:
    case Op::AG:
      return !negated && isACTLImpl(*f.lhs, negated);
    case Op::AU:
      return !negated && isACTLImpl(*f.lhs, negated) &&
             isACTLImpl(*f.rhs, negated);
    case Op::EX:
    case Op::EF:
    case Op::EG:
      return negated && isACTLImpl(*f.lhs, negated);
    case Op::EU:
      return negated && isACTLImpl(*f.lhs, negated) &&
             isACTLImpl(*f.rhs, negated);
  }
  return false;
}

std::string boundStr(const Bound& b) {
  if (!b.bounded() && b.lo == 0) return "";
  return "[" + std::to_string(b.lo) + "," +
         (b.bounded() ? std::to_string(b.hi) : std::string("inf")) + "]";
}
}  // namespace

bool Formula::isACTL() const { return isACTLImpl(*this, false); }

std::string Formula::toString() const {
  switch (op) {
    case Op::True:
      return "true";
    case Op::False:
      return "false";
    case Op::Atom:
      return atom;
    case Op::Deadlock:
      return "deadlock";
    case Op::Not:
      return "!(" + lhs->toString() + ")";
    case Op::And:
      return "(" + lhs->toString() + " && " + rhs->toString() + ")";
    case Op::Or:
      return "(" + lhs->toString() + " || " + rhs->toString() + ")";
    case Op::Implies:
      return "(" + lhs->toString() + " -> " + rhs->toString() + ")";
    case Op::AX:
      return "AX (" + lhs->toString() + ")";
    case Op::EX:
      return "EX (" + lhs->toString() + ")";
    case Op::AF:
      return "AF" + boundStr(bound) + " (" + lhs->toString() + ")";
    case Op::EF:
      return "EF" + boundStr(bound) + " (" + lhs->toString() + ")";
    case Op::AG:
      return "AG" + boundStr(bound) + " (" + lhs->toString() + ")";
    case Op::EG:
      return "EG" + boundStr(bound) + " (" + lhs->toString() + ")";
    case Op::AU:
      return "A[" + lhs->toString() + " U" + boundStr(bound) + " " +
             rhs->toString() + "]";
    case Op::EU:
      return "E[" + lhs->toString() + " U" + boundStr(bound) + " " +
             rhs->toString() + "]";
  }
  return "?";
}

namespace {
FormulaPtr nnf(const FormulaPtr& f, bool neg) {
  switch (f->op) {
    case Op::True:
      return neg ? Formula::mkFalse() : Formula::mkTrue();
    case Op::False:
      return neg ? Formula::mkTrue() : Formula::mkFalse();
    case Op::Atom:
    case Op::Deadlock:
      return neg ? Formula::mkNot(f) : f;
    case Op::Not:
      return nnf(f->lhs, !neg);
    case Op::And:
      return neg ? Formula::mkOr(nnf(f->lhs, true), nnf(f->rhs, true))
                 : Formula::mkAnd(nnf(f->lhs, false), nnf(f->rhs, false));
    case Op::Or:
      return neg ? Formula::mkAnd(nnf(f->lhs, true), nnf(f->rhs, true))
                 : Formula::mkOr(nnf(f->lhs, false), nnf(f->rhs, false));
    case Op::Implies:
      // a -> b  ≡  ¬a ∨ b
      return neg ? Formula::mkAnd(nnf(f->lhs, false), nnf(f->rhs, true))
                 : Formula::mkOr(nnf(f->lhs, true), nnf(f->rhs, false));
    case Op::AX:
      return neg ? Formula::mkEX(nnf(f->lhs, true))
                 : Formula::mkAX(nnf(f->lhs, false));
    case Op::EX:
      return neg ? Formula::mkAX(nnf(f->lhs, true))
                 : Formula::mkEX(nnf(f->lhs, false));
    case Op::AF:
      return neg ? Formula::mkEG(nnf(f->lhs, true), f->bound)
                 : Formula::mkAF(nnf(f->lhs, false), f->bound);
    case Op::EF:
      return neg ? Formula::mkAG(nnf(f->lhs, true), f->bound)
                 : Formula::mkEF(nnf(f->lhs, false), f->bound);
    case Op::AG:
      return neg ? Formula::mkEF(nnf(f->lhs, true), f->bound)
                 : Formula::mkAG(nnf(f->lhs, false), f->bound);
    case Op::EG:
      return neg ? Formula::mkAF(nnf(f->lhs, true), f->bound)
                 : Formula::mkEG(nnf(f->lhs, false), f->bound);
    case Op::AU:
    case Op::EU:
      if (neg) {
        throw std::invalid_argument(
            "toNNF: negated Until is not supported (no Release operator)");
      }
      return f->op == Op::AU
                 ? Formula::mkAU(nnf(f->lhs, false), nnf(f->rhs, false),
                                 f->bound)
                 : Formula::mkEU(nnf(f->lhs, false), nnf(f->rhs, false),
                                 f->bound);
  }
  throw std::logic_error("toNNF: unknown operator");
}

FormulaPtr weaken(const FormulaPtr& f, const FormulaPtr& chaos) {
  switch (f->op) {
    case Op::True:
    case Op::False:
    case Op::Deadlock:
      return f;
    case Op::Atom:
      return Formula::mkOr(f, chaos);
    case Op::Not:
      // NNF guarantees the operand is an atom (δ included).
      return f->lhs->op == Op::Deadlock ? f : Formula::mkOr(f, chaos);
    case Op::And:
      return Formula::mkAnd(weaken(f->lhs, chaos), weaken(f->rhs, chaos));
    case Op::Or:
      return Formula::mkOr(weaken(f->lhs, chaos), weaken(f->rhs, chaos));
    case Op::AX:
      return Formula::mkAX(weaken(f->lhs, chaos));
    case Op::EX:
      return Formula::mkEX(weaken(f->lhs, chaos));
    case Op::AF:
      return Formula::mkAF(weaken(f->lhs, chaos), f->bound);
    case Op::EF:
      return Formula::mkEF(weaken(f->lhs, chaos), f->bound);
    case Op::AG:
      return Formula::mkAG(weaken(f->lhs, chaos), f->bound);
    case Op::EG:
      return Formula::mkEG(weaken(f->lhs, chaos), f->bound);
    case Op::AU:
      return Formula::mkAU(weaken(f->lhs, chaos), weaken(f->rhs, chaos),
                           f->bound);
    case Op::EU:
      return Formula::mkEU(weaken(f->lhs, chaos), weaken(f->rhs, chaos),
                           f->bound);
    case Op::Implies:
      break;  // eliminated by NNF
  }
  throw std::logic_error("weakenForChaos: non-NNF operator");
}
}  // namespace

std::size_t formulaSize(const FormulaPtr& f) {
  if (!f) return 0;
  return 1 + formulaSize(f->lhs) + formulaSize(f->rhs);
}

FormulaPtr toNNF(const FormulaPtr& f) { return nnf(f, false); }

FormulaPtr weakenForChaos(const FormulaPtr& f, const std::string& chaosProp) {
  return weaken(toNNF(f), Formula::mkAtom(chaosProp));
}

}  // namespace mui::ctl
