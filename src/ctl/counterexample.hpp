#pragma once
// Counterexample generation for the verification step (paper Sec. 4.1).
//
// For the ACTL patterns used by MECHATRONIC UML constraints — invariants
// AG ψ, bounded leads-to AG(p → AF[a,b] q), bounded/unbounded AF at top
// level, conjunctions thereof — the generator produces a concrete run of the
// model witnessing the violation (Listing 1.1 style). Deadlock freedom ¬δ
// is checked as a reachability question and witnessed by a shortest path to
// a stuck state. For formulas outside this fragment a non-exact witness
// (the violating initial state) is returned and flagged.

#include <optional>
#include <string>
#include <vector>

#include "automata/automaton.hpp"
#include "automata/run.hpp"
#include "ctl/checker.hpp"
#include "ctl/formula.hpp"

namespace mui::ctl {

struct Counterexample {
  enum class Kind { Property, Deadlock };
  Kind kind = Kind::Property;
  automata::Run run;
  /// False when only an approximate witness could be constructed (formula
  /// shape outside the supported ACTL fragment).
  bool pathExact = true;
  std::string note;
};

/// Counterexample search order — experiment E7 compares these (paper Sec. 7
/// suggests "specific strategies ... to derive counterexamples (e.g., the
/// shortest one)").
enum class CexSearch {
  Shortest,   // BFS: shortest violating run
  DepthFirst  // DFS: first violating run found depth-first (often longer)
};

struct VerifyOptions {
  bool requireDeadlockFree = true;
  /// Maximum number of counterexamples to produce (E7: handing the testing
  /// step several counterexamples per verification round).
  std::size_t maxCounterexamples = 1;
  CexSearch search = CexSearch::Shortest;
  /// Correlation id tagging this check's trace span (obs/ulid.hpp); the
  /// integration loop passes its job ulid so per-check time shows up under
  /// the right job in a merged timeline. Empty = untagged.
  std::string traceId;
};

struct VerifyResult {
  bool holds = false;
  std::vector<Counterexample> counterexamples;  // empty iff holds
  std::size_t stateCount = 0;                   // explored model size
  std::vector<std::string> unknownAtoms;

  [[nodiscard]] const Counterexample& cex() const {
    return counterexamples.front();
  }
};

/// Checks m ⊨ φ ∧ ¬δ (the ¬δ conjunct iff requireDeadlockFree) and produces
/// counterexamples on failure. Property violations are searched before
/// deadlocks only if the property fails; otherwise deadlock reachability is
/// reported. Pass phi == nullptr to check deadlock freedom alone.
VerifyResult verify(const automata::Automaton& m, const FormulaPtr& phi,
                    const VerifyOptions& opts = {});

}  // namespace mui::ctl
