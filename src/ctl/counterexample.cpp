#include "ctl/counterexample.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "obs/trace.hpp"

namespace mui::ctl {

using automata::Automaton;
using automata::Interaction;
using automata::Run;

namespace {

struct PathNode {
  StateId s;
  std::size_t parent;  // self-index for roots
  Interaction label;   // label from parent
};

Run buildRun(const std::vector<PathNode>& nodes, std::size_t idx) {
  Run run;
  std::size_t i = idx;
  while (nodes[i].parent != i) {
    run.states.push_back(nodes[i].s);
    run.labels.push_back(nodes[i].label);
    i = nodes[i].parent;
  }
  run.states.push_back(nodes[i].s);
  std::reverse(run.states.begin(), run.states.end());
  std::reverse(run.labels.begin(), run.labels.end());
  return run;
}

/// Finds up to k runs from the initial states to distinct target states.
std::vector<Run> searchPaths(const Automaton& m, const SatSet& target,
                             std::size_t k, CexSearch order) {
  std::vector<PathNode> nodes;
  std::vector<char> visited(m.stateCount(), 0);
  std::deque<std::size_t> work;
  std::vector<Run> out;
  std::unordered_set<StateId> hitTargets;

  const auto visit = [&](StateId s, std::size_t parent,
                         const Interaction& via, bool root) {
    if (visited[s]) return;
    visited[s] = 1;
    const std::size_t idx = nodes.size();
    nodes.push_back({s, root ? idx : parent, via});
    work.push_back(idx);
  };

  for (StateId q : m.initialStates()) visit(q, 0, {}, true);

  while (!work.empty() && out.size() < k) {
    std::size_t idx;
    if (order == CexSearch::Shortest) {
      idx = work.front();
      work.pop_front();
    } else {
      idx = work.back();
      work.pop_back();
    }
    const StateId s = nodes[idx].s;
    if (target[s] && hitTargets.insert(s).second) {
      out.push_back(buildRun(nodes, idx));
      if (out.size() >= k) break;
    }
    for (const auto& t : m.transitionsFrom(s)) {
      visit(t.to, idx, t.label, false);
    }
  }
  return out;
}

/// Depth-window search for bounded AG violations: runs of length in
/// [lo, hi] ending in a target state.
std::vector<Run> searchPathsInWindow(const Automaton& m, const SatSet& target,
                                     std::size_t lo, std::size_t hi,
                                     std::size_t k, CexSearch order) {
  struct DepthNode {
    StateId s;
    std::size_t depth;
    std::size_t parent;
    Interaction label;
  };
  std::vector<DepthNode> nodes;
  std::unordered_set<std::uint64_t> visited;
  std::deque<std::size_t> work;
  std::vector<Run> out;

  const auto key = [](StateId s, std::size_t d) {
    return (static_cast<std::uint64_t>(d) << 32) | s;
  };
  const auto visit = [&](StateId s, std::size_t depth, std::size_t parent,
                         const Interaction& via, bool root) {
    if (depth > hi || !visited.insert(key(s, depth)).second) return;
    const std::size_t idx = nodes.size();
    nodes.push_back({s, depth, root ? idx : parent, via});
    work.push_back(idx);
  };

  for (StateId q : m.initialStates()) visit(q, 0, 0, {}, true);

  while (!work.empty() && out.size() < k) {
    std::size_t idx;
    if (order == CexSearch::Shortest) {
      idx = work.front();
      work.pop_front();
    } else {
      idx = work.back();
      work.pop_back();
    }
    const StateId s = nodes[idx].s;
    const std::size_t depth = nodes[idx].depth;
    if (depth >= lo && target[s]) {
      Run run;
      std::size_t i = idx;
      while (nodes[i].parent != i) {
        run.states.push_back(nodes[i].s);
        run.labels.push_back(nodes[i].label);
        i = nodes[i].parent;
      }
      run.states.push_back(nodes[i].s);
      std::reverse(run.states.begin(), run.states.end());
      std::reverse(run.labels.begin(), run.labels.end());
      out.push_back(std::move(run));
      continue;
    }
    for (const auto& t : m.transitionsFrom(s)) {
      visit(t.to, depth + 1, idx, t.label, false);
    }
  }
  return out;
}

/// Appends to `run` a suffix from its final state witnessing ¬AF[a,b]χ: a
/// maximal-path prefix along which χ never holds inside the window. Returns
/// false if the invariant (final state violates the AF) does not hold.
bool appendNotAFWitness(Checker& checker, const Automaton& m, Run& run,
                        const FormulaPtr& chi, Bound bound) {
  StateId cur = run.states.back();
  std::size_t i = 0;
  std::unordered_set<StateId> seenSinceLo;
  while (true) {
    if (bound.bounded() && i >= bound.hi) return true;  // window exhausted
    if (m.transitionsFrom(cur).empty()) return true;    // path died without χ
    if (i >= bound.lo && !bound.bounded()) {
      // Unbounded tail: stop at a lasso (state revisited after lo).
      if (!seenSinceLo.insert(cur).second) return true;
    }
    // The AF obligation seen from position i+1 of the original window.
    const Bound remaining{bound.lo > i + 1 ? bound.lo - (i + 1) : 0,
                          bound.bounded() ? bound.hi - (i + 1) : Bound::kInf};
    const auto sat = checker.evaluate(Formula::mkAF(chi, remaining));
    bool advanced = false;
    for (const auto& t : m.transitionsFrom(cur)) {
      if (!sat[t.to]) {
        run.labels.push_back(t.label);
        run.states.push_back(t.to);
        cur = t.to;
        advanced = true;
        break;
      }
    }
    if (!advanced) return false;  // should not happen if cur violates AF
    ++i;
  }
}

/// Propositional formulas (boolean combinations of literals) are witnessed
/// by the violating state itself.
bool isPropositional(const FormulaPtr& f) {
  switch (f->op) {
    case Op::True:
    case Op::False:
    case Op::Atom:
    case Op::Deadlock:
      return true;
    case Op::Not:
    case Op::And:
    case Op::Or:
    case Op::Implies:
      return isPropositional(f->lhs) &&
             (f->rhs == nullptr || isPropositional(f->rhs));
    default:
      return false;
  }
}

/// Flattens an Or-chain into its arms.
void orArms(const FormulaPtr& f, std::vector<FormulaPtr>& arms) {
  if (f->op == Op::Or) {
    orArms(f->lhs, arms);
    orArms(f->rhs, arms);
  } else {
    arms.push_back(f);
  }
}

/// Extends `run` (ending in a state violating ψ) with a suffix making the
/// violation observable. Returns whether the resulting path is exact.
bool extendWitness(Checker& checker, const Automaton& m, Run& run,
                   const FormulaPtr& psi, const SatSet& psiSat) {
  const StateId s = run.states.back();
  if (isPropositional(psi)) return true;
  switch (psi->op) {
    case Op::And: {
      const auto l = checker.evaluate(psi->lhs);
      if (!l[s]) return extendWitness(checker, m, run, psi->lhs, l);
      const auto r = checker.evaluate(psi->rhs);
      return extendWitness(checker, m, run, psi->rhs, r);
    }
    case Op::Or: {
      // Every arm is false at s. Propositional arms are witnessed by the
      // state itself; a single temporal AF arm gets a path suffix. Multiple
      // temporal arms would need a joint witness — approximate then.
      std::vector<FormulaPtr> arms;
      orArms(psi, arms);
      const FormulaPtr* temporal = nullptr;
      for (const auto& arm : arms) {
        if (isPropositional(arm)) continue;
        if (arm->op == Op::AF && temporal == nullptr) {
          temporal = &arm;
        } else {
          return false;
        }
      }
      if (temporal == nullptr) return true;
      return appendNotAFWitness(checker, m, run, (*temporal)->lhs,
                                (*temporal)->bound);
    }
    case Op::Implies: {
      // ¬(a → b): a holds here, b fails — extend along b's failure.
      const auto r = checker.evaluate(psi->rhs);
      return extendWitness(checker, m, run, psi->rhs, r);
    }
    case Op::AF:
      return appendNotAFWitness(checker, m, run, psi->lhs, psi->bound);
    default:
      (void)psiSat;
      return false;  // approximate witness
  }
}

void collectPropertyCexs(Checker& checker, const Automaton& m,
                         const FormulaPtr& phi, const VerifyOptions& opts,
                         std::vector<Counterexample>& out) {
  if (out.size() >= opts.maxCounterexamples) return;
  const auto sat = checker.evaluate(phi);
  bool fails = false;
  StateId badInitial = 0;
  for (StateId q : m.initialStates()) {
    if (!sat[q]) {
      fails = true;
      badInitial = q;
      break;
    }
  }
  if (!fails) return;

  const std::size_t want = opts.maxCounterexamples - out.size();

  switch (phi->op) {
    case Op::And: {
      collectPropertyCexs(checker, m, phi->lhs, opts, out);
      collectPropertyCexs(checker, m, phi->rhs, opts, out);
      if (!out.empty()) return;
      break;  // conjunction fails only jointly — fall through to approximate
    }
    case Op::AG: {
      const auto inner = checker.evaluate(phi->lhs);
      SatSet bad = inner;
      bad.flip();
      const bool windowed = phi->bound.lo > 0 || phi->bound.bounded();
      auto runs = windowed
                      ? searchPathsInWindow(m, bad, phi->bound.lo,
                                            phi->bound.bounded()
                                                ? phi->bound.hi
                                                : Bound::kInf,
                                            want, opts.search)
                      : searchPaths(m, bad, want, opts.search);
      for (auto& run : runs) {
        Counterexample cex;
        cex.kind = Counterexample::Kind::Property;
        cex.run = std::move(run);
        cex.pathExact =
            extendWitness(checker, m, cex.run, phi->lhs, inner);
        cex.note = "violates " + phi->toString();
        out.push_back(std::move(cex));
        if (out.size() >= opts.maxCounterexamples) return;
      }
      if (!out.empty()) return;
      break;
    }
    case Op::AF: {
      Counterexample cex;
      cex.kind = Counterexample::Kind::Property;
      cex.run.states.push_back(badInitial);
      cex.pathExact =
          appendNotAFWitness(checker, m, cex.run, phi->lhs, phi->bound);
      cex.note = "violates " + phi->toString();
      out.push_back(std::move(cex));
      return;
    }
    case Op::Atom:
    case Op::Deadlock:
    case Op::Not:
    case Op::Or:
    case Op::Implies:
    case Op::True:
    case Op::False: {
      Counterexample cex;
      cex.kind = Counterexample::Kind::Property;
      cex.run.states.push_back(badInitial);
      cex.pathExact = true;  // the initial state itself is the witness
      cex.note = "initial state violates " + phi->toString();
      out.push_back(std::move(cex));
      return;
    }
    default:
      break;
  }

  // Fallback: approximate witness at a violating initial state.
  Counterexample cex;
  cex.kind = Counterexample::Kind::Property;
  cex.run.states.push_back(badInitial);
  cex.pathExact = false;
  cex.note = "approximate witness for " + phi->toString();
  out.push_back(std::move(cex));
}

}  // namespace

VerifyResult verify(const Automaton& m, const FormulaPtr& phi,
                    const VerifyOptions& opts) {
  const obs::ObsSpan span("verify", opts.traceId);
  Checker checker(m);
  VerifyResult result;
  result.stateCount = m.stateCount();

  const bool phiHolds = phi == nullptr || checker.holds(phi);
  if (!phiHolds) {
    collectPropertyCexs(checker, m, phi, opts, result.counterexamples);
  }

  if (opts.requireDeadlockFree &&
      result.counterexamples.size() < opts.maxCounterexamples) {
    const SatSet& dead = checker.deadlockSet();
    if (dead.any()) {
      auto runs = searchPaths(
          m, dead, opts.maxCounterexamples - result.counterexamples.size(),
          opts.search);
      for (auto& run : runs) {
        Counterexample cex;
        cex.kind = Counterexample::Kind::Deadlock;
        cex.run = std::move(run);
        cex.pathExact = true;
        cex.note = "reachable deadlock state '" +
                   m.stateName(cex.run.states.back()) + "'";
        result.counterexamples.push_back(std::move(cex));
      }
    }
  }

  result.holds = result.counterexamples.empty();
  result.unknownAtoms = checker.unknownAtoms();
  return result;
}

}  // namespace mui::ctl
