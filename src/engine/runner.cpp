#include "engine/runner.hpp"

#include <chrono>
#include <stdexcept>

#include <memory>

#include "analysis/analyze.hpp"
#include "analysis/semantic.hpp"
#include "automata/rename.hpp"
#include "muml/external.hpp"
#include "obs/metrics.hpp"
#include "engine/thread_pool.hpp"
#include "muml/integration.hpp"
#include "muml/loader.hpp"
#include "obs/journal.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "synthesis/verifier.hpp"
#include "testing/legacy.hpp"
#include "testing/subprocess.hpp"

namespace mui::engine {

namespace {

using Clock = std::chrono::steady_clock;

JobStatus statusOf(synthesis::Verdict v) {
  switch (v) {
    case synthesis::Verdict::ProvenCorrect:
      return JobStatus::Proven;
    case synthesis::Verdict::RealError:
      return JobStatus::RealError;
    case synthesis::Verdict::IterationLimit:
      return JobStatus::IterationLimit;
    case synthesis::Verdict::Unsupported:
      return JobStatus::Unsupported;
    case synthesis::Verdict::Cancelled:
      return JobStatus::Timeout;
    case synthesis::Verdict::AdapterFailure:
      return JobStatus::AdapterFailure;
  }
  return JobStatus::EngineError;
}

void countPresolve(analysis::PresolveVerdict v) {
  static obs::Counter& proved = obs::Registry::global().counter(
      "mui_presolve_proved_total",
      "jobs pre-solved to proven by the semantic analyzer");
  static obs::Counter& refuted = obs::Registry::global().counter(
      "mui_presolve_refuted_total",
      "jobs pre-solved to real-error by the semantic analyzer");
  static obs::Counter& skipped = obs::Registry::global().counter(
      "mui_presolve_skipped_total",
      "jobs the semantic pre-solver passed to the refinement loop");
  switch (v) {
    case analysis::PresolveVerdict::Proved:
      proved.inc();
      break;
    case analysis::PresolveVerdict::Refuted:
      refuted.inc();
      break;
    case analysis::PresolveVerdict::Skipped:
      skipped.inc();
      break;
  }
}

}  // namespace

JobResult runJob(const Job& job, TextCache& texts, ResultCache& results,
                 const RunnerOptions& options) {
  const obs::ObsSpan span("job:" + job.name, job.ulid);
  JobResult out;
  out.job = job;
  out.worker = ThreadPool::currentWorkerName();
  obs::JobProgress* const progress = options.progress;
  if (progress != nullptr) progress->setPhase("load");
  const auto start = Clock::now();
  const auto elapsedMs = [&start] {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
  };
  const auto finish = [&]() -> JobResult& {
    out.wallMs = elapsedMs();
    if (progress != nullptr) {
      progress->setPhase("done");
      progress->setIteration(out.iterations);
      if (out.cacheHit) {
        progress->setDisposition("cache-hit");
      } else if (out.presolved) {
        progress->setDisposition("presolved");
      } else {
        progress->setDisposition("loop");
      }
    }
    if (options.journal != nullptr) {
      obs::JsonObject fields;
      fields.s("run", job.name);
      if (!job.ulid.empty()) fields.s("ulid", job.ulid);
      fields.s("model", job.modelPath)
          .s("status", jobStatusName(out.status))
          .s("worker", out.worker)
          .b("cacheHit", out.cacheHit)
          .b("presolved", out.presolved)
          .f("wallMs", out.wallMs)
          .u("iterations", out.iterations)
          .u("learnedFacts", out.learnedFacts)
          .u("testPeriods", out.testPeriods);
      options.journal->event("job", fields);
    }
    return out;
  };

  try {
    const std::string text = texts.get(job.modelPath);
    const std::uint64_t timeoutMs =
        job.timeoutMs != 0 ? job.timeoutMs : options.defaultTimeoutMs;

    // Content key of everything that determines the job's outcome; see the
    // ResultCache contract in cache.hpp.
    const JobKey key = makeJobKey(text, job, timeoutMs);
    if (auto hit = results.lookup(key)) {
      out.status = hit->status;
      out.explanation = hit->explanation;
      out.iterations = hit->iterations;
      out.testPeriods = hit->testPeriods;
      out.learnedFacts = hit->learnedFacts;
      out.cacheHit = true;
      return finish();
    }

    const muml::Model model = muml::loadModel(text, job.modelPath);

    // Lint pre-flight: a model that fails the error-severity rules (unknown
    // formula atoms, missing initial states, clashing composition alphabets)
    // can only yield vacuous or spurious verdicts — fail the job fast with
    // the diagnostics instead of spending verification time on it.
    if (options.lintPreflight) {
      if (progress != nullptr) progress->setPhase("lint");
      const auto lint =
          analysis::run(model, analysis::RuleSet::errorsOnly());
      if (lint.hasErrors()) {
        const auto messages = lint.errorMessages();
        std::string what = "lint: " + messages.front();
        if (messages.size() > 1) {
          what += " (+" + std::to_string(messages.size() - 1) +
                  " more error-level finding(s))";
        }
        out.status = JobStatus::EngineError;
        out.explanation = std::move(what);
        return finish();
      }
    }

    // Full semantic diagnostic tier (--semantic): like the lint pre-flight
    // but flow-sensitive, gating on error-level MUI1xx findings.
    if (options.semanticDiagnostics) {
      const auto semantic = analysis::runSemantic(model);
      if (options.journal != nullptr) {
        obs::JsonObject fields;
        fields.s("run", job.name);
        if (!job.ulid.empty()) fields.s("ulid", job.ulid);
        fields.u("findings", semantic.diagnostics.size())
            .u("errors", semantic.count(analysis::Severity::Error))
            .u("suppressed", semantic.suppressed);
        options.journal->event("analyze", fields);
      }
      if (semantic.hasErrors()) {
        out.status = JobStatus::EngineError;
        out.explanation = "semantic: " + semantic.errorMessages().front();
        return finish();
      }
    }

    const auto pit = model.patterns.find(job.pattern);
    if (pit == model.patterns.end()) {
      throw std::runtime_error("no pattern named '" + job.pattern + "' in " +
                               job.modelPath);
    }
    const auto& pattern = pit->second;
    std::size_t roleIdx = pattern.roles.size();
    for (std::size_t i = 0; i < pattern.roles.size(); ++i) {
      if (pattern.roles[i].name == job.legacyRole) roleIdx = i;
    }
    if (roleIdx == pattern.roles.size()) {
      throw std::runtime_error("pattern '" + job.pattern + "' has no role '" +
                               job.legacyRole + "'");
    }
    const auto hit = model.automata.find(job.hidden);
    const auto eit = model.externals.find(job.hidden);
    const bool external = eit != model.externals.end();
    if (hit == model.automata.end() && !external) {
      throw std::runtime_error("no automaton or legacy external named '" +
                               job.hidden + "' in " + job.modelPath);
    }

    const auto scenario = muml::makeIntegrationScenario(
        pattern, roleIdx, model.signals, model.props);
    const std::string property =
        job.formula.empty() ? scenario.property : job.formula;

    std::unique_ptr<testing::LegacyComponent> legacy;
    if (external) {
      // An out-of-process legacy: the hidden behavior lives in an adapter
      // binary (docs/ADAPTERS.md). The semantic pre-solve needs a concrete
      // hidden automaton, so the job always goes through the refinement
      // loop; results are never cached because the binary's content is not
      // part of the JobKey (see the ResultCache contract in cache.hpp).
      muml::checkExternalInterface(eit->second, pattern.roles[roleIdx],
                                   model.source, model.signals);
      testing::SubprocessConfig scfg =
          testing::configFromExternal(model, eit->second);
      scfg.journal = options.journal;
      scfg.ulid = job.ulid;
      legacy = std::make_unique<testing::SubprocessLegacy>(std::move(scfg));
    } else {
      const automata::Automaton hiddenAsRole = automata::withInstanceName(
          hit->second, pattern.roles[roleIdx].name);

      // Semantic pre-solve: for properties inside the AG-safety fragment
      // the verdict is decidable by plain forward reachability on the
      // concrete composition — no closure, no learning, no testing.
      // Definitive outcomes short-circuit the refinement loop and are
      // cached under the same content key a loop result would use (fuzz
      // oracle O6 checks that the two paths agree).
      if (options.semanticPresolve) {
        if (progress != nullptr) progress->setPhase("presolve");
        const analysis::PresolveOutcome pre =
            analysis::presolveIntegration(scenario.context, hiddenAsRole,
                                          property);
        countPresolve(pre.verdict);
        if (options.journal != nullptr) {
          obs::JsonObject fields;
          fields.s("run", job.name);
          if (!job.ulid.empty()) fields.s("ulid", job.ulid);
          fields.s("verdict", analysis::presolveVerdictName(pre.verdict))
              .s("rule", pre.ruleId)
              .u("productStates", pre.productStates);
          options.journal->event("presolve", fields);
        }
        if (pre.verdict != analysis::PresolveVerdict::Skipped) {
          out.status = pre.verdict == analysis::PresolveVerdict::Proved
                           ? JobStatus::Proven
                           : JobStatus::RealError;
          out.explanation = pre.explanation;
          out.presolved = true;
          results.store(key, CachedOutcome{out.status, out.explanation,
                                           out.iterations, out.testPeriods,
                                           out.learnedFacts});
          return finish();
        }
      }

      legacy = std::make_unique<testing::AutomatonLegacy>(hiddenAsRole);
    }

    synthesis::IntegrationConfig cfg;
    cfg.property = property;
    cfg.journal = options.journal;
    cfg.runId = job.name;
    cfg.ulid = job.ulid;
    cfg.progress = progress;
    if (job.maxIterations != 0) cfg.maxIterations = job.maxIterations;
    if (timeoutMs != 0) {
      const auto deadline = start + std::chrono::milliseconds(timeoutMs);
      cfg.cancelRequested = [deadline] { return Clock::now() >= deadline; };
    }

    const auto res =
        synthesis::runIntegration(scenario.context, *legacy, std::move(cfg));
    out.status = statusOf(res.verdict);
    out.explanation = res.verdict == synthesis::Verdict::Cancelled
                          ? "deadline of " + std::to_string(timeoutMs) +
                                " ms exceeded"
                          : res.explanation;
    out.iterations = res.iterations;
    out.testPeriods = res.totalTestPeriods;
    out.learnedFacts = res.totalLearnedFacts;
    out.closureMs = res.totalClosureMs;
    out.composeMs = res.totalComposeMs;
    out.checkMs = res.totalCheckMs;
    out.testMs = res.totalTestMs;
    out.productStatesNew = res.totalProductStatesNew;
    out.productStatesReused = res.totalProductStatesReused;

    if (out.status != JobStatus::Timeout &&
        out.status != JobStatus::EngineError && !external) {
      results.store(key, CachedOutcome{out.status, out.explanation,
                                       out.iterations, out.testPeriods,
                                       out.learnedFacts});
    }
  } catch (const testing::AdapterFailure& e) {
    // Adapter death before the loop even starts (spawn failure, broken
    // handshake during the initial reset/probe) carries the same distinct
    // status as an in-loop containment abort.
    out.status = JobStatus::AdapterFailure;
    out.explanation = e.what();
  } catch (const std::exception& e) {
    out.status = JobStatus::EngineError;
    out.explanation = e.what();
  } catch (...) {
    out.status = JobStatus::EngineError;
    out.explanation = "unknown exception";
  }
  if (out.status == JobStatus::EngineError && !out.worker.empty()) {
    // Crash isolation: say which worker the job died on.
    out.explanation = "[" + out.worker + "] " + out.explanation;
  }
  return finish();
}

}  // namespace mui::engine
