#include "engine/thread_pool.hpp"

namespace mui::engine {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    stop_ = true;
  }
  workCv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mu_);
    queue_.push_back(std::move(task));
  }
  workCv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mu_);
  idleCv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      workCv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      // Tasks are wrapped by the runner and should never throw; swallowing
      // here keeps a stray exception from terminating the process.
    }
    {
      std::unique_lock lock(mu_);
      --active_;
    }
    idleCv_.notify_all();
  }
}

}  // namespace mui::engine
