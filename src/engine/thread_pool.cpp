#include "engine/thread_pool.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mui::engine {

namespace {

thread_local const std::string* t_workerName = nullptr;

obs::Gauge& queueDepthGauge() {
  static obs::Gauge& g = obs::Registry::global().gauge(
      "mui_engine_queue_depth", "Tasks waiting in the thread-pool queue");
  return g;
}

obs::Counter& tasksCounter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "mui_engine_tasks_total", "Tasks executed by thread-pool workers");
  return c;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workerNames_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workerNames_.push_back("worker-" + std::to_string(i));
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    stop_ = true;
  }
  workCv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mu_);
    queue_.push_back(std::move(task));
    queueDepthGauge().set(static_cast<std::int64_t>(queue_.size()));
  }
  workCv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mu_);
  idleCv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

const std::string& ThreadPool::currentWorkerName() {
  static const std::string empty;
  return t_workerName != nullptr ? *t_workerName : empty;
}

void ThreadPool::workerLoop(std::size_t index) {
  t_workerName = &workerNames_[index];
  obs::setThreadName(workerNames_[index]);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      workCv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      queueDepthGauge().set(static_cast<std::int64_t>(queue_.size()));
      ++active_;
    }
    tasksCounter().inc();
    try {
      task();
    } catch (...) {
      // Tasks are wrapped by the runner and should never throw; swallowing
      // here keeps a stray exception from terminating the process.
    }
    {
      std::unique_lock lock(mu_);
      --active_;
    }
    idleCv_.notify_all();
  }
}

}  // namespace mui::engine
