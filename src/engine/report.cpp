#include "engine/report.hpp"

#include "util/json.hpp"
#include "util/text_table.hpp"

namespace mui::engine {

namespace {

using util::jsonEscape;

constexpr JobStatus kAllStatuses[] = {
    JobStatus::Proven,         JobStatus::RealError,
    JobStatus::IterationLimit, JobStatus::Unsupported,
    JobStatus::AdapterFailure, JobStatus::Timeout,
    JobStatus::EngineError,
};

}  // namespace

std::string renderBatchReport(const BatchReport& report) {
  util::TextTable table({"job", "model", "pattern", "role", "hidden", "status",
                         "iters", "test periods", "learned", "wall ms",
                         "cl/co/ck/te ms", "reuse", "cache"});
  for (const auto& r : report.results) {
    // Phase breakdown: closure / compose / check / test wall-clock totals,
    // and composition reuse as reused/(new+reused) product states.
    const std::string phases = r.cacheHit
                                   ? "-"
                                   : util::fmt(r.closureMs, 1) + "/" +
                                         util::fmt(r.composeMs, 1) + "/" +
                                         util::fmt(r.checkMs, 1) + "/" +
                                         util::fmt(r.testMs, 1);
    const std::string reuse =
        r.cacheHit ? "-"
                   : std::to_string(r.productStatesReused) + "/" +
                         std::to_string(r.productStatesNew +
                                        r.productStatesReused);
    table.row({r.job.name, r.job.modelPath, r.job.pattern, r.job.legacyRole,
               r.job.hidden, jobStatusName(r.status),
               std::to_string(r.iterations), std::to_string(r.testPeriods),
               std::to_string(r.learnedFacts), util::fmt(r.wallMs, 1), phases,
               reuse,
               r.cacheHit ? "hit" : (r.presolved ? "presolved" : "-")});
  }

  std::string out = table.str();
  out += "batch: " + std::to_string(report.results.size()) + " jobs on " +
         std::to_string(report.threads) + " thread(s) in " +
         util::fmt(report.wallMs, 1) + " ms;";
  for (const JobStatus s : kAllStatuses) {
    if (const std::size_t n = report.count(s)) {
      out += " " + std::string(jobStatusName(s)) + " " + std::to_string(n) +
             ",";
    }
  }
  if (out.back() == ',' || out.back() == ';') out.pop_back();
  out += "; cache " + std::to_string(report.cacheHits) + "/" +
         std::to_string(report.cacheHits + report.cacheMisses) + " hits (" +
         util::fmt(report.cacheHitRate() * 100.0, 0) + "%)\n";
  return out;
}

std::string writeBatchSummary(const BatchReport& report) {
  std::string out;
  for (const auto& r : report.results) {
    out += "{\"type\":\"job\",\"name\":\"" + jsonEscape(r.job.name) +
           "\",\"ulid\":\"" + jsonEscape(r.job.ulid) +
           "\",\"model\":\"" + jsonEscape(r.job.modelPath) +
           "\",\"pattern\":\"" + jsonEscape(r.job.pattern) +
           "\",\"role\":\"" + jsonEscape(r.job.legacyRole) +
           "\",\"hidden\":\"" + jsonEscape(r.job.hidden) + "\",\"status\":\"" +
           jobStatusName(r.status) + "\",\"worker\":\"" +
           jsonEscape(r.worker) + "\",\"explanation\":\"" +
           jsonEscape(r.explanation) +
           "\",\"iterations\":" + std::to_string(r.iterations) +
           ",\"testPeriods\":" + std::to_string(r.testPeriods) +
           ",\"learnedFacts\":" + std::to_string(r.learnedFacts) +
           ",\"wallMs\":" + util::fmt(r.wallMs, 3) +
           ",\"closureMs\":" + util::fmt(r.closureMs, 3) +
           ",\"composeMs\":" + util::fmt(r.composeMs, 3) +
           ",\"checkMs\":" + util::fmt(r.checkMs, 3) +
           ",\"testMs\":" + util::fmt(r.testMs, 3) +
           ",\"productStatesNew\":" + std::to_string(r.productStatesNew) +
           ",\"productStatesReused\":" +
           std::to_string(r.productStatesReused) +
           ",\"cacheHit\":" + (r.cacheHit ? "true" : "false") +
           ",\"presolved\":" + (r.presolved ? "true" : "false") + "}\n";
  }
  out += "{\"type\":\"batch\",\"jobs\":" +
         std::to_string(report.results.size()) +
         ",\"threads\":" + std::to_string(report.threads) +
         ",\"wallMs\":" + util::fmt(report.wallMs, 3) +
         ",\"cacheHits\":" + std::to_string(report.cacheHits) +
         ",\"cacheMisses\":" + std::to_string(report.cacheMisses);
  for (const JobStatus s : kAllStatuses) {
    out += ",\"" + std::string(jobStatusName(s)) +
           "\":" + std::to_string(report.count(s));
  }
  out += "}\n";
  return out;
}

}  // namespace mui::engine
