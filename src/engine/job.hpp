#pragma once
// The batch-integration job model — the unit of work of mui::engine.
//
// The paper's verification/testing/learning loop runs once per (model,
// pattern, legacyRole, hiddenAutomaton, formula) tuple. In practice legacy
// integration is a *campaign* of many such independent jobs — one per
// component revision, per role, per property — so the engine's vocabulary
// is a list of Jobs (parsed from a manifest, see manifest.hpp) and the
// aggregated BatchReport the executor produces (see engine.hpp).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mui::engine {

/// One integration job, as listed on a `job ...` manifest line.
struct Job {
  std::string name;        // display name; the manifest parser numbers
                           // unnamed jobs "job1", "job2", ...
  std::string ulid;        // correlation id (obs/ulid.hpp) threading this
                           // job through traces and journal events; NOT
                           // part of the result-cache key. Assigned by
                           // runBatch / the serve daemon when empty.
  std::string modelPath;   // .muml file (resolved by the manifest parser)
  std::string pattern;     // coordination pattern within the model
  std::string legacyRole;  // the role the hidden component plays
  std::string hidden;      // automaton acting as the hidden legacy component
  std::string formula;     // optional property override; empty derives the
                           // property from the pattern constraint and the
                           // role invariants (muml::makeIntegrationScenario)
  std::uint64_t timeoutMs = 0;    // per-job deadline; 0 = batch default
  std::size_t maxIterations = 0;  // iteration budget; 0 = verifier default
};

/// Terminal state of a job. The first four mirror synthesis::Verdict;
/// AdapterFailure surfaces an out-of-process legacy that crashed, hung, or
/// broke protocol beyond its recovery budget (docs/ADAPTERS.md); the last
/// two are engine-level: a deadline hit maps Verdict::Cancelled to
/// Timeout, and any exception escaping the job (unreadable file, unknown
/// pattern/role/automaton, model errors) is folded into EngineError so one
/// broken job never takes down the batch.
enum class JobStatus {
  Proven,
  RealError,
  IterationLimit,
  Unsupported,
  AdapterFailure,
  Timeout,
  EngineError,
};

/// One-word status name ("proven", "real-error", "timeout", ...).
const char* jobStatusName(JobStatus s);

/// Inverse of jobStatusName; nullopt for unknown names. Used by consumers
/// of serialized results (persistent cache replay, the serve protocol).
std::optional<JobStatus> jobStatusFromName(std::string_view name);

struct JobResult {
  Job job;
  JobStatus status = JobStatus::EngineError;
  std::string explanation;
  std::size_t iterations = 0;
  std::uint64_t testPeriods = 0;
  std::size_t learnedFacts = 0;
  double wallMs = 0;
  /// Per-phase wall-clock totals over all refinement iterations (closure
  /// construction / composition / CCTL checking / replay testing). Zero for
  /// cache hits — no phase ran.
  double closureMs = 0;
  double composeMs = 0;
  double checkMs = 0;
  double testMs = 0;
  /// Composition reuse across iterations (see IterationRecord): product
  /// states interned fresh vs. served from the incremental-compose arena.
  std::size_t productStatesNew = 0;
  std::size_t productStatesReused = 0;
  bool cacheHit = false;
  /// The semantic pre-solve stage (analysis::presolveIntegration) decided
  /// the verdict statically; the refinement loop never ran.
  bool presolved = false;
  /// Thread-pool worker that ran the job ("worker-3"); empty when the job
  /// ran off-pool (direct runJob call).
  std::string worker;
};

/// Aggregated outcome of one runBatch call; results are in manifest order
/// regardless of completion order.
struct BatchReport {
  std::vector<JobResult> results;
  std::size_t threads = 1;
  double wallMs = 0;
  std::size_t cacheHits = 0;
  std::size_t cacheMisses = 0;

  [[nodiscard]] std::size_t count(JobStatus s) const;
  [[nodiscard]] bool allProven() const;
  /// hits / (hits + misses); 0 when no lookups happened.
  [[nodiscard]] double cacheHitRate() const;
};

}  // namespace mui::engine
