#include "engine/persistent_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace mui::engine {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::optional<std::uint64_t> parseHex64(const std::string& text) {
  if (text.empty() || text.size() > 16) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 16);
  if (errno != 0 || end != text.c_str() + text.size()) return std::nullopt;
  return v;
}

obs::Counter& writeErrorCounter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "mui_engine_persistent_cache_write_errors_total",
      "Persistent-cache append failures (cache disabled for the run)");
  return c;
}

}  // namespace

std::string PersistentResultCache::encodeRecord(std::uint64_t hash,
                                                std::string_view material,
                                                const CachedOutcome& outcome) {
  obs::JsonObject fields;
  fields.u("schema", 1)
      .s("type", "result")
      .s("key", hex64(hash))
      .s("material", material)
      .s("status", jobStatusName(outcome.status))
      .s("explanation", outcome.explanation)
      .u("iterations", outcome.iterations)
      .u("testPeriods", outcome.testPeriods)
      .u("learnedFacts", outcome.learnedFacts);
  return fields.str();
}

PersistentResultCache::PersistentResultCache(std::string path,
                                             bool fsyncEachAppend)
    : path_(std::move(path)), fsync_(fsyncEachAppend) {
  replayLog();
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open result-cache log '" + path_ +
                             "' for append: " + std::system_category().message(errno));
  }
}

PersistentResultCache::~PersistentResultCache() {
  if (fd_ >= 0) ::close(fd_);
}

void PersistentResultCache::replayLog() {
  static obs::Counter& replayed = obs::Registry::global().counter(
      "mui_engine_persistent_cache_replayed_total",
      "Records loaded from the persistent result-cache log at startup");
  static obs::Counter& skipped = obs::Registry::global().counter(
      "mui_engine_persistent_cache_skipped_total",
      "Malformed or corrupt persistent-cache records skipped on replay");
  static obs::Counter& collisions = obs::Registry::global().counter(
      "mui_engine_persistent_cache_collisions_total",
      "Persistent-cache hashes poisoned by conflicting key material");

  std::ifstream in(path_);
  if (!in) return;  // no log yet: first run
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const bool endsWithNewline = !text.empty() && text.back() == '\n';

  std::size_t lineStart = 0;
  while (lineStart < text.size()) {
    const std::size_t eol = text.find('\n', lineStart);
    const bool lastLine = eol == std::string::npos;
    const std::string_view line(text.data() + lineStart,
                                (lastLine ? text.size() : eol) - lineStart);
    lineStart = lastLine ? text.size() : eol + 1;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;

    const auto reject = [&] {
      ++replay_.skipped;
      skipped.inc();
      if (lastLine && !endsWithNewline) replay_.truncatedTail = true;
    };

    const auto obj = obs::parseFlatJson(line);
    if (!obj) {
      reject();
      continue;
    }
    const auto field = [&](const char* name) -> const obs::JsonValue* {
      const auto it = obj->find(name);
      return it == obj->end() ? nullptr : &it->second;
    };
    const auto* schema = field("schema");
    const auto* type = field("type");
    const auto* keyField = field("key");
    const auto* material = field("material");
    const auto* status = field("status");
    if (schema == nullptr || schema->asUint() != 1 || type == nullptr ||
        type->text != "result" || keyField == nullptr || material == nullptr ||
        status == nullptr) {
      reject();
      continue;
    }
    const auto hash = parseHex64(keyField->text);
    const auto parsedStatus = jobStatusFromName(status->text);
    if (!hash || !parsedStatus || fnv1a(material->text) != *hash) {
      reject();  // torn write, hand edit, or key/material divergence
      continue;
    }

    CachedOutcome outcome;
    outcome.status = *parsedStatus;
    if (const auto* e = field("explanation")) outcome.explanation = e->text;
    if (const auto* v = field("iterations")) {
      outcome.iterations = static_cast<std::size_t>(v->asUint());
    }
    if (const auto* v = field("testPeriods")) outcome.testPeriods = v->asUint();
    if (const auto* v = field("learnedFacts")) {
      outcome.learnedFacts = static_cast<std::size_t>(v->asUint());
    }

    if (poisoned_.count(*hash) != 0) {
      ++replay_.skipped;
      skipped.inc();
      continue;
    }
    if (const auto it = map_.find(*hash); it != map_.end()) {
      if (it->second.material == material->text) {
        it->second.outcome = std::move(outcome);  // newer record wins
        ++replay_.superseded;
        continue;
      }
      // Two different key materials behind one 64-bit hash: a genuine
      // collision. Serve neither — correctness beats hit rate.
      map_.erase(it);
      poisoned_.insert(*hash);
      ++replay_.collisions;
      collisions.inc();
      continue;
    }
    map_.emplace(*hash, Entry{material->text, std::move(outcome)});
    ++replay_.replayed;
    replayed.inc();
  }
  needsLeadingNewline_ = !text.empty() && !endsWithNewline;
}

std::optional<CachedOutcome> PersistentResultCache::lookup(
    std::uint64_t hash, std::string_view material) {
  static obs::Counter& hits = obs::Registry::global().counter(
      "mui_engine_persistent_cache_hits_total", "Persistent-cache hits");
  static obs::Counter& collisions = obs::Registry::global().counter(
      "mui_engine_persistent_cache_collisions_total",
      "Persistent-cache hashes poisoned by conflicting key material");
  std::unique_lock lock(mu_);
  const auto it = map_.find(hash);
  if (it == map_.end()) return std::nullopt;
  if (it->second.material != material) {
    collisions.inc();
    return std::nullopt;
  }
  hits.inc();
  return it->second.outcome;
}

void PersistentResultCache::writeRecord(const std::string& line) {
  if (fd_ < 0) return;  // appends disabled after a write error
  std::string data;
  data.reserve(line.size() + 2);
  if (needsLeadingNewline_) data += '\n';
  data += line;
  data += '\n';
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd_, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A failing log (disk full, revoked mount) must not fail jobs: keep
      // serving from memory and stop appending.
      writeErrorCounter().inc();
      ::close(fd_);
      fd_ = -1;
      return;
    }
    written += static_cast<std::size_t>(n);
  }
  needsLeadingNewline_ = false;
  if (fsync_) ::fsync(fd_);
}

void PersistentResultCache::append(std::uint64_t hash,
                                   std::string_view material,
                                   const CachedOutcome& outcome) {
  static obs::Counter& appends = obs::Registry::global().counter(
      "mui_engine_persistent_cache_appends_total",
      "Records appended to the persistent result-cache log");
  std::unique_lock lock(mu_);
  if (poisoned_.count(hash) != 0) return;
  if (const auto it = map_.find(hash); it != map_.end()) {
    if (it->second.material != material) {
      // Runtime collision: poison in memory only; the conflicting record
      // never reaches the log.
      map_.erase(it);
      poisoned_.insert(hash);
      return;
    }
    return;  // exact duplicate: the log already has it
  }
  writeRecord(encodeRecord(hash, material, outcome));
  map_.emplace(hash,
               Entry{std::string(material), outcome});
  appends.inc();
}

std::size_t PersistentResultCache::size() const {
  std::unique_lock lock(mu_);
  return map_.size();
}

std::size_t PersistentResultCache::compact(const std::string& path) {
  // Replay through the normal constructor (fsync off: the rewrite below is
  // synced as a whole), then atomically replace the log with one live
  // record per key.
  PersistentResultCache cache(path, /*fsyncEachAppend=*/false);
  const std::string tmp = path + ".compact";
  {
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      throw std::runtime_error("cannot write compacted cache '" + tmp +
                               "': " + std::system_category().message(errno));
    }
    std::string out;
    {
      std::unique_lock lock(cache.mu_);
      for (const auto& [hash, entry] : cache.map_) {
        out += encodeRecord(hash, entry.material, entry.outcome);
        out += '\n';
      }
    }
    std::size_t written = 0;
    while (written < out.size()) {
      const ssize_t n = ::write(fd, out.data() + written,
                                out.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        throw std::runtime_error("cannot write compacted cache '" + tmp +
                                 "': " + std::system_category().message(err));
      }
      written += static_cast<std::size_t>(n);
    }
    ::fsync(fd);
    ::close(fd);
  }
  std::filesystem::rename(tmp, path);
  return cache.size();
}

}  // namespace mui::engine
