#include "engine/cache.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "engine/persistent_cache.hpp"
#include "obs/metrics.hpp"

namespace mui::engine {

std::uint64_t fnv1a(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

JobKey makeJobKey(std::string_view modelText, const Job& job,
                  std::uint64_t timeoutMs) {
  const std::string budgets =
      std::to_string(timeoutMs) + "\x1f" + std::to_string(job.maxIterations);
  const std::string_view fields[] = {modelText,  job.pattern, job.legacyRole,
                                     job.hidden, job.formula, budgets};
  JobKey key;
  std::size_t total = budgets.size();
  for (const std::string_view f : fields) total += f.size() + 24;
  key.material.reserve(total);
  for (const std::string_view f : fields) {
    key.material += std::to_string(f.size());
    key.material += ':';
    key.material += f;
    key.material += '\x1f';
  }
  key.hash = fnv1a(key.material);
  return key;
}

void TextCache::prime(std::string path, std::string text) {
  std::unique_lock lock(mu_);
  texts_[std::move(path)] = Entry{std::move(text), /*fromDisk=*/false, {}, 0};
}

TextCache::Entry TextCache::readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open model file '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  Entry entry{buf.str(), /*fromDisk=*/true, {}, 0};
  // Stat after the read: a writer racing the read is caught by the next
  // get() seeing a newer mtime/size than the one recorded here.
  std::error_code ec;
  entry.mtime = std::filesystem::last_write_time(path, ec);
  if (!ec) entry.size = std::filesystem::file_size(path, ec);
  return entry;
}

std::string TextCache::get(const std::string& path) {
  std::unique_lock lock(mu_);
  if (const auto it = texts_.find(path); it != texts_.end()) {
    if (!it->second.fromDisk) return it->second.text;
    std::error_code ec;
    const auto mtime = std::filesystem::last_write_time(path, ec);
    if (ec) return it->second.text;  // file vanished: serve the cached copy
    const auto size = std::filesystem::file_size(path, ec);
    if (ec || (mtime == it->second.mtime && size == it->second.size)) {
      return it->second.text;
    }
    static obs::Counter& reloads = obs::Registry::global().counter(
        "mui_engine_text_cache_reloads_total",
        "Model files re-read after an mtime/size change");
    reloads.inc();
    it->second = readFile(path);
    return it->second.text;
  }
  return texts_.emplace(path, readFile(path)).first->second.text;
}

ResultCache::ResultCache(std::size_t maxEntries)
    : maxEntries_(maxEntries == 0 ? 1 : maxEntries) {}

void ResultCache::attachPersistent(PersistentResultCache* backing) {
  std::unique_lock lock(mu_);
  persistent_ = backing;
}

std::size_t ResultCache::entryBytes(const Entry& e) {
  return sizeof(Entry) + e.material.size() + e.outcome.explanation.size();
}

void ResultCache::evictIfNeeded() {
  static obs::Counter& evictions = obs::Registry::global().counter(
      "mui_engine_cache_evictions_total", "Result-cache LRU evictions");
  static obs::Gauge& bytes = obs::Registry::global().gauge(
      "mui_engine_cache_bytes", "Approximate resident result-cache bytes",
      "bytes");
  while (map_.size() > maxEntries_) {
    const Entry& victim = lru_.back();
    bytes_ -= entryBytes(victim);
    map_.erase(victim.hash);
    lru_.pop_back();
    ++evictions_;
    evictions.inc();
  }
  bytes.set(static_cast<std::int64_t>(bytes_));
}

std::optional<CachedOutcome> ResultCache::lookup(const JobKey& key) {
  static obs::Counter& hits = obs::Registry::global().counter(
      "mui_engine_cache_hits_total", "Result-cache hits");
  static obs::Counter& misses = obs::Registry::global().counter(
      "mui_engine_cache_misses_total", "Result-cache misses");
  static obs::Counter& collisions = obs::Registry::global().counter(
      "mui_engine_cache_collisions_total",
      "Result-cache lookups whose hash matched but key material differed");
  std::unique_lock lock(mu_);
  if (const auto it = map_.find(key.hash); it != map_.end()) {
    if (it->second->material == key.material) {
      lru_.splice(lru_.begin(), lru_, it->second);  // mark most recently used
      ++hits_;
      hits.inc();
      return it->second->outcome;
    }
    ++collisions_;
    collisions.inc();
    ++misses_;
    misses.inc();
    return std::nullopt;
  }
  if (persistent_ != nullptr) {
    if (auto hit = persistent_->lookup(key.hash, key.material)) {
      // Promote to memory so repeated duplicates stop touching the log map.
      lru_.push_front(Entry{key.hash, key.material, *hit});
      map_[key.hash] = lru_.begin();
      bytes_ += entryBytes(lru_.front());
      evictIfNeeded();
      ++hits_;
      hits.inc();
      return hit;
    }
  }
  ++misses_;
  misses.inc();
  return std::nullopt;
}

void ResultCache::store(const JobKey& key, CachedOutcome outcome) {
  std::unique_lock lock(mu_);
  if (const auto it = map_.find(key.hash); it != map_.end()) {
    if (it->second->material != key.material) {
      ++collisions_;  // keep the resident entry; do not poison the log
      return;
    }
    bytes_ -= entryBytes(*it->second);
    it->second->outcome = outcome;
    bytes_ += entryBytes(*it->second);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key.hash, key.material, outcome});
    map_[key.hash] = lru_.begin();
    bytes_ += entryBytes(lru_.front());
    evictIfNeeded();
  }
  if (persistent_ != nullptr) {
    persistent_->append(key.hash, key.material, outcome);
  }
}

std::size_t ResultCache::hits() const {
  std::unique_lock lock(mu_);
  return hits_;
}

std::size_t ResultCache::misses() const {
  std::unique_lock lock(mu_);
  return misses_;
}

std::size_t ResultCache::evictions() const {
  std::unique_lock lock(mu_);
  return evictions_;
}

std::size_t ResultCache::collisions() const {
  std::unique_lock lock(mu_);
  return collisions_;
}

std::size_t ResultCache::size() const {
  std::unique_lock lock(mu_);
  return map_.size();
}

std::size_t ResultCache::bytes() const {
  std::unique_lock lock(mu_);
  return bytes_;
}

}  // namespace mui::engine
