#include "engine/cache.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace mui::engine {

std::uint64_t fnv1a(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void TextCache::prime(std::string path, std::string text) {
  std::unique_lock lock(mu_);
  texts_[std::move(path)] = std::move(text);
}

std::string TextCache::get(const std::string& path) {
  std::unique_lock lock(mu_);
  if (const auto it = texts_.find(path); it != texts_.end()) {
    return it->second;
  }
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open model file '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return texts_.emplace(path, buf.str()).first->second;
}

std::optional<CachedOutcome> ResultCache::lookup(std::uint64_t key) {
  static obs::Counter& hits = obs::Registry::global().counter(
      "mui_engine_cache_hits_total", "Result-cache hits");
  static obs::Counter& misses = obs::Registry::global().counter(
      "mui_engine_cache_misses_total", "Result-cache misses");
  std::unique_lock lock(mu_);
  if (const auto it = map_.find(key); it != map_.end()) {
    ++hits_;
    hits.inc();
    return it->second;
  }
  ++misses_;
  misses.inc();
  return std::nullopt;
}

void ResultCache::store(std::uint64_t key, CachedOutcome outcome) {
  std::unique_lock lock(mu_);
  map_[key] = std::move(outcome);
}

std::size_t ResultCache::hits() const {
  std::unique_lock lock(mu_);
  return hits_;
}

std::size_t ResultCache::misses() const {
  std::unique_lock lock(mu_);
  return misses_;
}

}  // namespace mui::engine
