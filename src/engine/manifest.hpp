#pragma once
// The job-manifest text format (reference: docs/BATCH_FORMAT.md).
//
// One directive per line, `#` or `//` comments, blank lines ignored:
//
//   # railcab revision sweep
//   default model=../models/railcab.muml pattern=DistanceCoordination role=rearRole
//   job hidden=rearShipped
//   job name=faulty-rev hidden=rearFaulty timeout-ms=5000
//   job model=../models/watchdog.muml pattern=Watchdog role=device hidden=deviceCrawl
//
// `default key=value...` sets fallback values for every *subsequent* job
// that does not set the key itself; `job key=value...` appends one job.
// Values are bare tokens or double-quoted strings (with backslash escapes
// for quote and backslash) — formulas need the quotes. Keys: name, model,
// pattern, role, hidden, formula, timeout-ms, max-iterations. A job must
// end up with model, pattern, role, and hidden set.

#include <string>
#include <string_view>
#include <vector>

#include "engine/job.hpp"

namespace mui::engine {

/// Parses manifest text into jobs. Relative model paths are resolved
/// against `baseDir` (pass the manifest's directory; empty keeps paths as
/// written). Errors throw util::ParseError carrying `sourceName` and the
/// line/column of the offending token.
std::vector<Job> parseManifest(std::string_view text,
                               const std::string& sourceName = "",
                               const std::string& baseDir = "");

/// Renders jobs as manifest text; round-trips through parseManifest (with
/// an empty baseDir).
std::string writeManifest(const std::vector<Job>& jobs);

}  // namespace mui::engine
