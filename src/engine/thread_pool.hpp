#pragma once
// A minimal fixed-size worker pool — the first concurrency layer in the
// codebase. Deliberately small: a FIFO queue, submit(), and wait(); no
// futures, no work stealing. Jobs are coarse (one whole integration loop
// each, typically milliseconds to seconds), so queue contention is noise.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mui::engine {

/// Fixed worker pool. submit() never blocks; wait() blocks until every
/// submitted task has finished. Tasks must not throw — the batch runner
/// catches everything per job (runner.cpp) and a worker additionally
/// swallows stray exceptions as a last line of defense, because an
/// exception escaping a std::thread terminates the process.
class ThreadPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();  // waits for pending work, then joins

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);
  void wait();

  [[nodiscard]] std::size_t threadCount() const { return workers_.size(); }

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable workCv_;  // work available or stopping
  std::condition_variable idleCv_;  // a task finished
  std::size_t active_ = 0;          // tasks currently executing
  bool stop_ = false;
};

}  // namespace mui::engine
