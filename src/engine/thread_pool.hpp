#pragma once
// A minimal fixed-size worker pool — the first concurrency layer in the
// codebase. Deliberately small: a FIFO queue, submit(), and wait(); no
// futures, no work stealing. Jobs are coarse (one whole integration loop
// each, typically milliseconds to seconds), so queue contention is noise.
//
// Every worker has a stable name ("worker-0" .. "worker-N-1") registered
// as its obs trace track and readable from inside a task via
// currentWorkerName(), so batch reports and crash-isolation messages can
// say which worker ran a job instead of a raw thread id.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mui::engine {

/// Fixed worker pool. submit() never blocks; wait() blocks until every
/// submitted task has finished. Tasks must not throw — the batch runner
/// catches everything per job (runner.cpp) and a worker additionally
/// swallows stray exceptions as a last line of defense, because an
/// exception escaping a std::thread terminates the process.
class ThreadPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();  // waits for pending work, then joins

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);
  void wait();

  [[nodiscard]] std::size_t threadCount() const { return workers_.size(); }

  /// Stable worker ids, "worker-0" .. "worker-N-1".
  [[nodiscard]] const std::vector<std::string>& workerNames() const {
    return workerNames_;
  }

  /// The name of the pool worker executing the calling thread's current
  /// task, or "" when called off-pool (e.g. from main).
  static const std::string& currentWorkerName();

 private:
  void workerLoop(std::size_t index);

  std::vector<std::string> workerNames_;  // fixed before workers start
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable workCv_;  // work available or stopping
  std::condition_variable idleCv_;  // a task finished
  std::size_t active_ = 0;          // tasks currently executing
  bool stop_ = false;
};

}  // namespace mui::engine
