#include "engine/engine.hpp"

#include <chrono>

#include "engine/runner.hpp"
#include "engine/thread_pool.hpp"
#include "obs/journal.hpp"
#include "obs/ulid.hpp"

namespace mui::engine {

BatchReport runBatch(const std::vector<Job>& jobs,
                     const BatchOptions& options) {
  TextCache texts;
  return runBatch(jobs, options, texts);
}

BatchReport runBatch(const std::vector<Job>& jobs, const BatchOptions& options,
                     TextCache& texts) {
  const auto start = std::chrono::steady_clock::now();

  BatchReport report;
  report.results.resize(jobs.size());

  ResultCache cache;
  if (options.persistent != nullptr) cache.attachPersistent(options.persistent);
  RunnerOptions runnerOptions;
  runnerOptions.defaultTimeoutMs = options.defaultTimeoutMs;
  runnerOptions.lintPreflight = options.lintPreflight;
  runnerOptions.semanticPresolve = options.semanticPresolve;
  runnerOptions.semanticDiagnostics = options.semanticDiagnostics;
  runnerOptions.journal = options.journal;

  // Every job gets a correlation id before dispatch so its trace spans and
  // journal events line up; callers (the serve daemon) may have assigned
  // one already — keep those.
  std::vector<Job> correlated(jobs);
  for (Job& job : correlated) {
    if (job.ulid.empty()) job.ulid = obs::newUlid();
  }

  {
    ThreadPool pool(options.threads);
    report.threads = pool.threadCount();
    for (std::size_t i = 0; i < correlated.size(); ++i) {
      // Each task writes only its own slot; the vector is pre-sized, so no
      // synchronization beyond the pool's completion barrier is needed.
      pool.submit([&, i] {
        report.results[i] = runJob(correlated[i], texts, cache, runnerOptions);
      });
    }
    pool.wait();
  }

  report.cacheHits = cache.hits();
  report.cacheMisses = cache.misses();
  report.wallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  if (options.journal != nullptr) {
    obs::JsonObject fields;
    fields.u("jobs", jobs.size())
        .u("threads", report.threads)
        .f("wallMs", report.wallMs)
        .u("cacheHits", report.cacheHits)
        .u("cacheMisses", report.cacheMisses);
    for (const JobStatus s :
         {JobStatus::Proven, JobStatus::RealError, JobStatus::IterationLimit,
          JobStatus::Unsupported, JobStatus::AdapterFailure,
          JobStatus::Timeout, JobStatus::EngineError}) {
      if (const std::size_t n = report.count(s)) {
        fields.u(jobStatusName(s), n);
      }
    }
    options.journal->event("batch", fields);
  }
  return report;
}

}  // namespace mui::engine
