#pragma once
// Reporting for batch runs, in the style of synthesis/report.hpp: an
// aligned per-job table plus a one-paragraph batch summary for humans, and
// a JSON-lines serialization for machines (one object per job, then one
// `batch` summary object).

#include <string>

#include "engine/job.hpp"

namespace mui::engine {

/// Per-job table (name, model, pattern, role, hidden, status, iterations,
/// test periods, learned facts, wall ms, cache) followed by the summary
/// paragraph.
std::string renderBatchReport(const BatchReport& report);

/// JSON lines: {"type":"job",...} per job, then {"type":"batch",...}.
std::string writeBatchSummary(const BatchReport& report);

}  // namespace mui::engine
