#pragma once
// Durable result cache: an append-only JSONL log of completed job
// outcomes, keyed by the same fnv1a content hashes as the in-memory
// ResultCache (cache.hpp) and layered underneath it, so duplicate
// verification work is shared *across* runs and clients, not just within
// one process.
//
// Log format (reference: docs/SERVE.md). One record per line:
//
//   {"schema":1,"type":"result","key":"<16 hex digits>","material":"...",
//    "status":"proven","explanation":"...","iterations":3,"testPeriods":9,
//    "learnedFacts":2}
//
// `material` is the job's full key material (JobKey::material — model text
// included), and `key` must equal fnv1a(material). Storing the material
// makes 64-bit collisions *detectable*: two records with the same key but
// different material poison that hash — neither is ever served — instead
// of one silently answering for the other. It also lets replay reject
// records whose key does not digest from their material (torn writes, hand
// edits).
//
// Durability model: records are appended under a mutex as one write() and
// (by default) fsync'd, so a crash loses at most the record being written.
// Replay tolerates exactly that: a malformed final line is counted as a
// truncated tail and skipped, and the next append starts on a fresh line.
// The log only grows; compact() rewrites it to one record per live key
// (runbook: docs/SERVE.md).

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "engine/cache.hpp"

namespace mui::engine {

class PersistentResultCache {
 public:
  struct ReplayStats {
    std::size_t replayed = 0;   // live records loaded
    std::size_t superseded = 0; // older records overwritten by a later one
    std::size_t skipped = 0;    // malformed / wrong-schema / bad-digest lines
    std::size_t collisions = 0; // hashes poisoned by conflicting material
    bool truncatedTail = false; // final line had no newline or did not parse
  };

  /// Opens (creating if absent) and replays the log at `path`; throws
  /// std::runtime_error when the file cannot be created or opened for
  /// append. `fsyncEachAppend` trades durability for append latency.
  explicit PersistentResultCache(std::string path, bool fsyncEachAppend = true);
  ~PersistentResultCache();

  PersistentResultCache(const PersistentResultCache&) = delete;
  PersistentResultCache& operator=(const PersistentResultCache&) = delete;

  /// The outcome stored for `hash`, provided the stored material is
  /// byte-identical to `material`; a mismatch is a detected collision and
  /// a miss.
  std::optional<CachedOutcome> lookup(std::uint64_t hash,
                                      std::string_view material);

  /// Appends one record (no-op for poisoned hashes and exact duplicates).
  void append(std::uint64_t hash, std::string_view material,
              const CachedOutcome& outcome);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const ReplayStats& replayStats() const { return replay_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// One log record as a JSONL line (no trailing newline); exposed for
  /// tests and compaction tooling.
  static std::string encodeRecord(std::uint64_t hash,
                                  std::string_view material,
                                  const CachedOutcome& outcome);

  /// Rewrites the log at `path` to one record per live key, dropping
  /// superseded, malformed, and collision-poisoned records. Returns the
  /// number of records kept. Must not run concurrently with a daemon
  /// appending to the same file.
  static std::size_t compact(const std::string& path);

 private:
  struct Entry {
    std::string material;
    CachedOutcome outcome;
  };

  void replayLog();                            // constructor helper
  void writeRecord(const std::string& line);   // callers hold mu_

  mutable std::mutex mu_;
  std::string path_;
  bool fsync_;
  int fd_ = -1;
  bool needsLeadingNewline_ = false;  // log ended in a truncated record
  std::unordered_map<std::uint64_t, Entry> map_;
  std::unordered_set<std::uint64_t> poisoned_;
  ReplayStats replay_;
};

}  // namespace mui::engine
