#pragma once
// Executes one Job end to end:
//
//   TextCache (model text) → muml::loadModel → muml::makeIntegrationScenario
//   → cancellation-aware loop (synthesis::runIntegration) → JobResult
//
// with a ResultCache consultation keyed by the job's content hash before
// the expensive part. All failure modes are folded into the result —
// deadline hits become JobStatus::Timeout, any escaping exception becomes
// JobStatus::EngineError — so runJob never throws. That is the batch's
// crash isolation: a broken job is a row in the report, not a dead batch.

#include <cstdint>

#include "engine/cache.hpp"
#include "engine/job.hpp"

namespace mui::obs {
class Journal;
class JobProgress;
}  // namespace mui::obs

namespace mui::engine {

struct RunnerOptions {
  /// Deadline applied to jobs whose own timeoutMs is 0 (0 = no deadline).
  std::uint64_t defaultTimeoutMs = 0;
  /// Lint the loaded model (error-severity rules only, see
  /// analysis::RuleSet::errorsOnly) before running the integration loop; a
  /// model with error-level findings becomes an engine-error row carrying
  /// the diagnostics instead of burning verification time.
  bool lintPreflight = true;
  /// Semantic pre-solve (analysis::presolveIntegration): decide the job's
  /// verdict statically on the composed product when the property falls in
  /// the AG-safety fragment, skipping the refinement loop entirely.
  /// Definitive outcomes are cached under the same JobKey as loop results.
  bool semanticPresolve = true;
  /// Run the full semantic diagnostic tier (analysis::runSemantic, rules
  /// MUI1xx) on each loaded model and fail jobs on error-level findings —
  /// the `--semantic` batch flag. Off by default: the tier's product
  /// explorations cost real time and the findings are advisory.
  bool semanticDiagnostics = false;
  /// Structured run journal: when set, the integration loop writes its
  /// per-iteration events here and the runner appends one "job" event per
  /// completed job. Shared across workers (the journal locks internally);
  /// must outlive the batch.
  obs::Journal* journal = nullptr;
  /// Live progress sink for this job (the daemon's /jobs endpoint): the
  /// runner and the integration loop update its phase / iteration /
  /// disposition as the job advances. Per-job, unlike the shared journal;
  /// must outlive the runJob call. Null = no live introspection.
  obs::JobProgress* progress = nullptr;
};

JobResult runJob(const Job& job, TextCache& texts, ResultCache& results,
                 const RunnerOptions& options = {});

}  // namespace mui::engine
