#pragma once
// Shared-work caches for the batch engine. Both are thread-safe behind a
// coarse mutex — every cached unit of work is orders of magnitude more
// expensive than the lock.
//
// TextCache — model-file contents keyed by path, so N jobs over the same
// .muml file read it once. prime() registers in-memory models under virtual
// paths (benches and tests run whole batches without touching the disk).
//
// ResultCache — completed integration outcomes keyed by a content hash of
// everything that determines the loop's behavior: the model text (which
// fixes the context automata and the hidden component, i.e. every
// composition and chaotic closure the loop will build), the pattern / role
// / hidden-automaton names, the property, and the iteration and deadline
// budgets. Repeated jobs over the same model revision therefore share the
// whole verification/testing/learning effort, not just the parse. Keying
// by content (not path) means two manifests pointing different paths at
// identical model revisions still share. Timeout and engine-error outcomes
// are never stored: they are not functions of the key alone.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "engine/job.hpp"

namespace mui::engine {

/// 64-bit FNV-1a digest of `data`; chain fields by passing the previous
/// digest as `seed` (a field separator is mixed in by the callers).
std::uint64_t fnv1a(std::string_view data,
                    std::uint64_t seed = 14695981039346656037ull);

class TextCache {
 public:
  /// Registers in-memory content under a (virtual) path, replacing any
  /// previous entry.
  void prime(std::string path, std::string text);

  /// Returns the content for `path`, reading the file on first use.
  /// Throws std::runtime_error if the file cannot be read.
  std::string get(const std::string& path);

 private:
  std::mutex mu_;
  std::unordered_map<std::string, std::string> texts_;
};

/// The terminal outcome of a job key — everything a duplicate job needs to
/// report without re-running the loop.
struct CachedOutcome {
  JobStatus status = JobStatus::EngineError;
  std::string explanation;
  std::size_t iterations = 0;
  std::uint64_t testPeriods = 0;
  std::size_t learnedFacts = 0;
};

class ResultCache {
 public:
  /// Returns the cached outcome and counts a hit, or counts a miss.
  std::optional<CachedOutcome> lookup(std::uint64_t key);
  void store(std::uint64_t key, CachedOutcome outcome);

  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, CachedOutcome> map_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace mui::engine
