#pragma once
// Shared-work caches for the batch engine and the serve daemon. Both are
// thread-safe behind a coarse mutex — every cached unit of work is orders
// of magnitude more expensive than the lock.
//
// TextCache — model-file contents keyed by path, so N jobs over the same
// .muml file read it once. prime() registers in-memory models under virtual
// paths (benches and tests run whole batches without touching the disk).
// Entries read from disk are revalidated against the file's mtime and size
// on every get(), so a long-running daemon serving a re-saved model file
// re-reads it instead of returning a stale parse; primed entries are never
// invalidated. A file that disappears after being cached keeps serving the
// cached copy (daemon robustness over strictness).
//
// ResultCache — completed integration outcomes keyed by a content hash of
// everything that determines the loop's behavior: the model text (which
// fixes the context automata and the hidden component, i.e. every
// composition and chaotic closure the loop will build), the pattern / role
// / hidden-automaton names, the property, and the iteration and deadline
// budgets. Repeated jobs over the same model revision therefore share the
// whole verification/testing/learning effort, not just the parse. Keying
// by content (not path) means two manifests pointing different paths at
// identical model revisions still share. Timeout and engine-error outcomes
// are never stored: they are not functions of the key alone.
//
// A JobKey carries both the 64-bit fnv1a digest (the map key) and the full
// length-prefixed key material it digests. Lookups compare the material on
// a hash match, so a 64-bit collision is detected and reported as a miss
// instead of silently serving the wrong verdict. The cache is bounded by
// an LRU entry cap (a long-running daemon cannot tolerate unbounded
// growth) and can be layered over a PersistentResultCache
// (persistent_cache.hpp) so outcomes survive across runs and clients.

#include <cstdint>
#include <filesystem>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "engine/job.hpp"

namespace mui::engine {

class PersistentResultCache;

/// 64-bit FNV-1a digest of `data`; chain fields by passing the previous
/// digest as `seed` (the key material embeds length prefixes so chained
/// fields cannot alias across boundaries).
std::uint64_t fnv1a(std::string_view data,
                    std::uint64_t seed = 14695981039346656037ull);

/// Content key of one job: `material` is the injective length-prefixed
/// concatenation of model text, pattern, role, hidden automaton, formula,
/// and budgets; `hash` is fnv1a(material). Two keys are equal iff their
/// materials are byte-identical — the hash alone is only a map index.
struct JobKey {
  std::uint64_t hash = 0;
  std::string material;
};

/// Builds the key for (modelText, job, effective timeout). Every field is
/// encoded as `<decimal length>:<bytes>\x1f`, which makes the material an
/// injective function of the tuple and mixes the field lengths into the
/// digest.
JobKey makeJobKey(std::string_view modelText, const Job& job,
                  std::uint64_t timeoutMs);

class TextCache {
 public:
  /// Registers in-memory content under a (virtual) path, replacing any
  /// previous entry. Primed entries are never invalidated.
  void prime(std::string path, std::string text);

  /// Returns the content for `path`, reading the file on first use and
  /// re-reading it when its mtime or size changed since it was cached.
  /// Throws std::runtime_error if the file cannot be read.
  std::string get(const std::string& path);

 private:
  struct Entry {
    std::string text;
    bool fromDisk = false;  // primed entries skip revalidation
    std::filesystem::file_time_type mtime{};
    std::uintmax_t size = 0;
  };

  static Entry readFile(const std::string& path);

  std::mutex mu_;
  std::unordered_map<std::string, Entry> texts_;
};

/// The terminal outcome of a job key — everything a duplicate job needs to
/// report without re-running the loop.
struct CachedOutcome {
  JobStatus status = JobStatus::EngineError;
  std::string explanation;
  std::size_t iterations = 0;
  std::uint64_t testPeriods = 0;
  std::size_t learnedFacts = 0;
};

class ResultCache {
 public:
  /// Generous default for the LRU entry cap: far beyond any batch, small
  /// enough that a daemon full of multi-KB model texts stays in the
  /// hundreds of MB.
  static constexpr std::size_t kDefaultMaxEntries = 1 << 16;

  explicit ResultCache(std::size_t maxEntries = kDefaultMaxEntries);

  /// Layers a durable cache underneath: memory misses consult it, stores
  /// append to it, and hits found there are promoted into memory. The
  /// backing must outlive this cache.
  void attachPersistent(PersistentResultCache* backing);

  /// Returns the cached outcome and counts a hit, or counts a miss. A
  /// hash match whose material differs is a detected collision: counted,
  /// reported as a miss, and the resident entry is left alone.
  std::optional<CachedOutcome> lookup(const JobKey& key);
  void store(const JobKey& key, CachedOutcome outcome);

  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;
  [[nodiscard]] std::size_t evictions() const;
  [[nodiscard]] std::size_t collisions() const;
  [[nodiscard]] std::size_t size() const;
  /// Approximate resident bytes (key material + outcome payloads).
  [[nodiscard]] std::size_t bytes() const;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::string material;
    CachedOutcome outcome;
  };
  using LruList = std::list<Entry>;

  static std::size_t entryBytes(const Entry& e);
  void evictIfNeeded();  // callers hold mu_

  mutable std::mutex mu_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, LruList::iterator> map_;
  PersistentResultCache* persistent_ = nullptr;
  std::size_t maxEntries_;
  std::size_t bytes_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
  std::size_t collisions_ = 0;
};

}  // namespace mui::engine
