#pragma once
// mui::engine — the concurrent batch integration engine.
//
// The paper's loop proves one integration at a time; production workloads
// are campaigns: hundreds of (model revision, pattern, role, hidden
// component, property) tuples re-verified on every component change. This
// engine runs such a campaign from a job manifest on a thread pool, with
//
//   * per-job cancellation on deadline (the loop's cancelRequested hook),
//   * crash isolation (a throwing job becomes an `engine-error` row,
//     never a dead batch — see runner.hpp),
//   * a content-hash result cache so duplicate jobs share the whole
//     verification/testing/learning effort (see cache.hpp), and
//   * an aggregated report (render/serialize via report.hpp).
//
// CLI front end: `mui batch <manifest> [--jobs N] [--timeout-ms T]
// [--out file]`. Scaling characteristics: bench/bench_batch.cpp.

#include "engine/cache.hpp"
#include "engine/job.hpp"

namespace mui::obs {
class Journal;
}  // namespace mui::obs

namespace mui::engine {

class PersistentResultCache;

struct BatchOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t threads = 1;
  /// Deadline for jobs without their own timeout-ms (0 = unlimited).
  std::uint64_t defaultTimeoutMs = 0;
  /// Per-job lint pre-flight (see RunnerOptions::lintPreflight); the CLI
  /// exposes `mui batch --no-lint` to turn it off.
  bool lintPreflight = true;
  /// Semantic verdict pre-solving (see RunnerOptions::semanticPresolve);
  /// the CLI exposes `mui batch --no-presolve` to turn it off.
  bool semanticPresolve = true;
  /// Full MUI1xx diagnostic pass per model (see
  /// RunnerOptions::semanticDiagnostics); the CLI flag is `--semantic`.
  bool semanticDiagnostics = false;
  /// Structured run journal (obs/journal.hpp): per-iteration and per-job
  /// events from every worker plus one closing "batch" event. Must outlive
  /// the call; the CLI exposes `mui batch --journal-out`.
  obs::Journal* journal = nullptr;
  /// Durable result cache layered under the batch's in-memory cache
  /// (persistent_cache.hpp): outcomes already in the log are served
  /// without re-running, fresh ones are appended. Must outlive the call;
  /// the CLI exposes `mui batch --cache <file>`.
  PersistentResultCache* persistent = nullptr;
};

/// Runs every job, at most `threads` at a time; results keep manifest
/// order. Caches live for the duration of the call, so duplicate jobs
/// within one batch share work. Job failures never throw (see runner.hpp);
/// only setup errors (e.g. zero jobs is fine, but a broken TextCache
/// prime) could surface as per-job engine-errors.
BatchReport runBatch(const std::vector<Job>& jobs,
                     const BatchOptions& options = {});

/// Same, over a caller-primed TextCache — tests and benches inject
/// in-memory models under virtual paths and never touch the disk.
BatchReport runBatch(const std::vector<Job>& jobs, const BatchOptions& options,
                     TextCache& texts);

}  // namespace mui::engine
