#include "engine/job.hpp"

#include <algorithm>

namespace mui::engine {

const char* jobStatusName(JobStatus s) {
  switch (s) {
    case JobStatus::Proven:
      return "proven";
    case JobStatus::RealError:
      return "real-error";
    case JobStatus::IterationLimit:
      return "iter-limit";
    case JobStatus::Unsupported:
      return "unsupported";
    case JobStatus::AdapterFailure:
      return "adapter-failure";
    case JobStatus::Timeout:
      return "timeout";
    case JobStatus::EngineError:
      return "engine-error";
  }
  return "?";
}

std::optional<JobStatus> jobStatusFromName(std::string_view name) {
  for (const JobStatus s :
       {JobStatus::Proven, JobStatus::RealError, JobStatus::IterationLimit,
        JobStatus::Unsupported, JobStatus::AdapterFailure, JobStatus::Timeout,
        JobStatus::EngineError}) {
    if (name == jobStatusName(s)) return s;
  }
  return std::nullopt;
}

std::size_t BatchReport::count(JobStatus s) const {
  return static_cast<std::size_t>(
      std::count_if(results.begin(), results.end(),
                    [s](const JobResult& r) { return r.status == s; }));
}

bool BatchReport::allProven() const {
  return std::all_of(results.begin(), results.end(), [](const JobResult& r) {
    return r.status == JobStatus::Proven;
  });
}

double BatchReport::cacheHitRate() const {
  const std::size_t total = cacheHits + cacheMisses;
  return total == 0 ? 0.0
                    : static_cast<double>(cacheHits) /
                          static_cast<double>(total);
}

}  // namespace mui::engine
