#include "engine/manifest.hpp"

#include <cctype>
#include <filesystem>
#include <optional>
#include <utility>

#include "util/parse.hpp"

namespace mui::engine {

namespace {

struct Token {
  std::string key;
  std::string value;
  std::size_t col = 1;  // 1-based column of the key
};

class LineLexer {
 public:
  LineLexer(std::string_view line, const std::string& source, std::size_t lineNo)
      : line_(line), source_(source), lineNo_(lineNo) {}

  /// Next `key=value` token, or nullopt at end of line / comment start.
  std::optional<Token> next() {
    skipSpace();
    if (atEnd()) return std::nullopt;
    Token tok;
    tok.col = pos_ + 1;
    while (!atEnd() && line_[pos_] != '=' && !isSpace(line_[pos_])) {
      tok.key += line_[pos_++];
    }
    if (atEnd() || line_[pos_] != '=') {
      fail("expected key=value, got '" + tok.key + "'", tok.col);
    }
    ++pos_;  // '='
    if (!atEnd() && line_[pos_] == '"') {
      ++pos_;
      while (!atEnd() && line_[pos_] != '"') {
        char c = line_[pos_++];
        if (c == '\\' && !atEnd()) c = line_[pos_++];
        tok.value += c;
      }
      if (atEnd()) fail("unterminated string value", tok.col);
      ++pos_;  // closing '"'
    } else {
      while (!atEnd() && !isSpace(line_[pos_])) tok.value += line_[pos_++];
    }
    return tok;
  }

  /// First word of the line (the directive).
  std::string word() {
    skipSpace();
    std::string w;
    while (!atEnd() && !isSpace(line_[pos_])) w += line_[pos_++];
    return w;
  }

  [[noreturn]] void fail(const std::string& msg, std::size_t col) const {
    throw util::ParseError(msg, source_, lineNo_, col);
  }

 private:
  static bool isSpace(char c) { return c == ' ' || c == '\t' || c == '\r'; }

  [[nodiscard]] bool atEnd() const {
    return pos_ >= line_.size() || line_[pos_] == '#' ||
           (line_[pos_] == '/' && pos_ + 1 < line_.size() &&
            line_[pos_ + 1] == '/');
  }

  void skipSpace() {
    while (pos_ < line_.size() && isSpace(line_[pos_])) ++pos_;
  }

  std::string_view line_;
  const std::string& source_;
  std::size_t lineNo_;
  std::size_t pos_ = 0;
};

std::uint64_t parseCount(const Token& tok, const LineLexer& lex) {
  if (tok.value.empty()) lex.fail("empty value for " + tok.key, tok.col);
  std::uint64_t v = 0;
  for (const char c : tok.value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      lex.fail("value of " + tok.key + " must be a non-negative integer, got '" +
                   tok.value + "'",
               tok.col);
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::string resolvePath(const std::string& path, const std::string& baseDir) {
  if (baseDir.empty()) return path;
  const std::filesystem::path p(path);
  if (p.is_absolute()) return path;
  return (std::filesystem::path(baseDir) / p).lexically_normal().string();
}

/// Applies one key=value to `job`. Returns false for an unknown key.
bool applyField(Job& job, const Token& tok, const LineLexer& lex,
                const std::string& baseDir, bool allowName) {
  if (tok.key == "name") {
    if (!allowName) lex.fail("'name' is not allowed in a default", tok.col);
    job.name = tok.value;
  } else if (tok.key == "model") {
    job.modelPath = resolvePath(tok.value, baseDir);
  } else if (tok.key == "pattern") {
    job.pattern = tok.value;
  } else if (tok.key == "role") {
    job.legacyRole = tok.value;
  } else if (tok.key == "hidden") {
    job.hidden = tok.value;
  } else if (tok.key == "formula") {
    job.formula = tok.value;
  } else if (tok.key == "timeout-ms") {
    job.timeoutMs = parseCount(tok, lex);
  } else if (tok.key == "max-iterations") {
    job.maxIterations = static_cast<std::size_t>(parseCount(tok, lex));
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::vector<Job> parseManifest(std::string_view text,
                               const std::string& sourceName,
                               const std::string& baseDir) {
  std::vector<Job> jobs;
  Job defaults;  // accumulated `default` directive values (name unused)

  std::size_t lineNo = 0;
  std::size_t lineStart = 0;
  while (lineStart <= text.size()) {
    const std::size_t eol = text.find('\n', lineStart);
    const std::string_view line =
        text.substr(lineStart, eol == std::string_view::npos
                                   ? std::string_view::npos
                                   : eol - lineStart);
    ++lineNo;

    LineLexer lex(line, sourceName, lineNo);
    const std::string directive = lex.word();
    if (directive.empty()) {
      // blank or comment-only line
    } else if (directive == "default") {
      while (const auto tok = lex.next()) {
        if (!applyField(defaults, *tok, lex, baseDir, /*allowName=*/false)) {
          lex.fail("unknown key '" + tok->key + "'", tok->col);
        }
      }
    } else if (directive == "job") {
      Job job = defaults;
      job.name.clear();
      while (const auto tok = lex.next()) {
        if (!applyField(job, *tok, lex, baseDir, /*allowName=*/true)) {
          lex.fail("unknown key '" + tok->key + "'", tok->col);
        }
      }
      if (job.name.empty()) job.name = "job" + std::to_string(jobs.size() + 1);
      const std::pair<const char*, const std::string*> required[] = {
          {"model", &job.modelPath},
          {"pattern", &job.pattern},
          {"role", &job.legacyRole},
          {"hidden", &job.hidden}};
      for (const auto& [field, value] : required) {
        if (value->empty()) {
          lex.fail("job '" + job.name + "' is missing required key '" + field +
                       "'",
                   1);
        }
      }
      jobs.push_back(std::move(job));
    } else {
      lex.fail("expected 'job' or 'default', got '" + directive + "'", 1);
    }

    if (eol == std::string_view::npos) break;
    lineStart = eol + 1;
  }
  return jobs;
}

std::string writeManifest(const std::vector<Job>& jobs) {
  std::string out;
  const auto quote = [](const std::string& s) {
    std::string q = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') q += '\\';
      q += c;
    }
    q += '"';
    return q;
  };
  for (const auto& job : jobs) {
    out += "job name=" + job.name + " model=" + job.modelPath +
           " pattern=" + job.pattern + " role=" + job.legacyRole +
           " hidden=" + job.hidden;
    if (!job.formula.empty()) out += " formula=" + quote(job.formula);
    if (job.timeoutMs != 0) {
      out += " timeout-ms=" + std::to_string(job.timeoutMs);
    }
    if (job.maxIterations != 0) {
      out += " max-iterations=" + std::to_string(job.maxIterations);
    }
    out += '\n';
  }
  return out;
}

}  // namespace mui::engine
