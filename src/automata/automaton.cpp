#include "automata/automaton.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "util/dot.hpp"

namespace mui::automata {

Automaton::Automaton(SignalTableRef signals, SignalTableRef props,
                     std::string name)
    : signals_(std::move(signals)),
      props_(std::move(props)),
      name_(std::move(name)) {
  if (!signals_ || !props_) {
    throw std::invalid_argument("Automaton: null table");
  }
}

Automaton Automaton::withFreshTables(std::string name) {
  return Automaton(std::make_shared<SignalTable>(),
                   std::make_shared<SignalTable>(), std::move(name));
}

StateId Automaton::addState(const std::string& stateName) {
  if (stateByName(stateName)) {
    throw std::invalid_argument("Automaton::addState: duplicate state '" +
                                stateName + "'");
  }
  stateNames_.push_back(stateName);
  labels_.emplace_back();
  trans_.emplace_back();
  byLabel_.emplace_back();
  const StateId id = static_cast<StateId>(stateNames_.size() - 1);
  stateIds_.emplace(stateName, id);
  return id;
}

StateId Automaton::ensureState(const std::string& stateName) {
  if (auto s = stateByName(stateName)) return *s;
  return addState(stateName);
}

void Automaton::markInitial(StateId s) {
  if (s >= stateCount()) throw std::out_of_range("markInitial: bad state");
  if (!isInitial(s)) initial_.push_back(s);
}

util::NameId Automaton::addInput(const std::string& signal) {
  const util::NameId id = signals_->intern(signal);
  inputs_.set(id);
  return id;
}

util::NameId Automaton::addOutput(const std::string& signal) {
  const util::NameId id = signals_->intern(signal);
  outputs_.set(id);
  return id;
}

void Automaton::addLabel(StateId s, const std::string& prop) {
  if (s >= stateCount()) throw std::out_of_range("addLabel: bad state");
  labels_[s].set(props_->intern(prop));
}

void Automaton::addLabels(StateId s, const PropSet& props) {
  if (s >= stateCount()) throw std::out_of_range("addLabels: bad state");
  labels_[s] |= props;
}

void Automaton::labelWithStateName(StateId s) {
  const std::string& n = stateName(s);
  const std::string prefix = name_.empty() ? std::string() : name_ + ".";
  // Add a proposition for each "::"-separated hierarchical prefix.
  std::size_t pos = 0;
  while (true) {
    const std::size_t sep = n.find("::", pos);
    if (sep == std::string::npos) break;
    addLabel(s, prefix + n.substr(0, sep));
    pos = sep + 2;
  }
  addLabel(s, prefix + n);
}

void Automaton::addTransition(StateId from, Interaction label, StateId to) {
  if (from >= stateCount() || to >= stateCount()) {
    throw std::out_of_range("addTransition: bad state");
  }
  if (!label.in.isSubsetOf(inputs_)) {
    throw std::invalid_argument("addTransition: A not a subset of I");
  }
  if (!label.out.isSubsetOf(outputs_)) {
    throw std::invalid_argument("addTransition: B not a subset of O");
  }
  auto& slot = byLabel_[from][label];
  if (std::find(slot.begin(), slot.end(), to) != slot.end()) return;
  slot.push_back(to);
  trans_[from].push_back({from, std::move(label), to});
}

std::size_t Automaton::transitionCount() const {
  std::size_t n = 0;
  for (const auto& v : trans_) n += v.size();
  return n;
}

const std::string& Automaton::stateName(StateId s) const {
  if (s >= stateCount()) throw std::out_of_range("stateName: bad state");
  return stateNames_[s];
}

std::optional<StateId> Automaton::stateByName(
    const std::string& stateName) const {
  auto it = stateIds_.find(stateName);
  if (it == stateIds_.end()) return std::nullopt;
  return it->second;
}

const PropSet& Automaton::labels(StateId s) const {
  if (s >= stateCount()) throw std::out_of_range("labels: bad state");
  return labels_[s];
}

const std::vector<Transition>& Automaton::transitionsFrom(StateId s) const {
  if (s >= stateCount()) throw std::out_of_range("transitionsFrom: bad state");
  return trans_[s];
}

bool Automaton::isInitial(StateId s) const {
  return std::find(initial_.begin(), initial_.end(), s) != initial_.end();
}

bool Automaton::hasTransition(StateId from, const Interaction& x) const {
  if (from >= stateCount()) throw std::out_of_range("hasTransition: bad state");
  return byLabel_[from].contains(x);
}

bool Automaton::hasTransitionTo(StateId from, const Interaction& x,
                                StateId to) const {
  if (from >= stateCount()) {
    throw std::out_of_range("hasTransitionTo: bad state");
  }
  const auto it = byLabel_[from].find(x);
  if (it == byLabel_[from].end()) return false;
  return std::find(it->second.begin(), it->second.end(), to) !=
         it->second.end();
}

std::vector<StateId> Automaton::successors(StateId from,
                                           const Interaction& x) const {
  if (from >= stateCount()) throw std::out_of_range("successors: bad state");
  const auto it = byLabel_[from].find(x);
  if (it == byLabel_[from].end()) return {};
  return it->second;
}

std::vector<Interaction> Automaton::enabledInteractions(StateId s) const {
  if (s >= stateCount()) {
    throw std::out_of_range("enabledInteractions: bad state");
  }
  std::vector<Interaction> out;
  out.reserve(byLabel_[s].size());
  if (byLabel_[s].size() == trans_[s].size()) {
    // No duplicate labels: the transition list is already the answer.
    for (const auto& t : trans_[s]) out.push_back(t.label);
    return out;
  }
  for (const auto& t : trans_[s]) {
    // First occurrence: the index lists successors in insertion order, so
    // t is its label's first transition iff t.to leads that list.
    if (byLabel_[s].find(t.label)->second.front() == t.to) {
      out.push_back(t.label);
    }
  }
  return out;
}

bool Automaton::composableWith(const Automaton& other) const {
  if (signals_ != other.signals_) return false;
  return !inputs_.intersects(other.inputs_) &&
         !outputs_.intersects(other.outputs_);
}

bool Automaton::orthogonalTo(const Automaton& other) const {
  return composableWith(other) && !inputs_.intersects(other.outputs_) &&
         !outputs_.intersects(other.inputs_);
}

std::vector<bool> Automaton::reachableStates() const {
  std::vector<bool> seen(stateCount(), false);
  std::deque<StateId> work;
  for (StateId s : initial_) {
    if (!seen[s]) {
      seen[s] = true;
      work.push_back(s);
    }
  }
  while (!work.empty()) {
    const StateId s = work.front();
    work.pop_front();
    for (const auto& t : trans_[s]) {
      if (!seen[t.to]) {
        seen[t.to] = true;
        work.push_back(t.to);
      }
    }
  }
  return seen;
}

Automaton Automaton::prunedToReachable(std::vector<StateId>* oldToNew) const {
  const auto seen = reachableStates();
  Automaton out(signals_, props_, name_);
  out.inputs_ = inputs_;
  out.outputs_ = outputs_;
  std::vector<StateId> map(stateCount(), UINT32_MAX);
  for (StateId s = 0; s < stateCount(); ++s) {
    if (seen[s]) {
      map[s] = out.addState(stateNames_[s]);
      out.labels_[map[s]] = labels_[s];
    }
  }
  for (StateId s = 0; s < stateCount(); ++s) {
    if (!seen[s]) continue;
    for (const auto& t : trans_[s]) {
      out.addTransition(map[s], t.label, map[t.to]);
    }
  }
  for (StateId s : initial_) {
    if (seen[s]) out.markInitial(map[s]);
  }
  if (oldToNew) *oldToNew = std::move(map);
  return out;
}

bool Automaton::deterministic() const {
  for (StateId s = 0; s < stateCount(); ++s) {
    for (std::size_t i = 0; i < trans_[s].size(); ++i) {
      for (std::size_t j = i + 1; j < trans_[s].size(); ++j) {
        if (trans_[s][i].label == trans_[s][j].label) return false;
      }
    }
  }
  return true;
}

bool Automaton::admitsRun(const Run& run) const {
  if (!run.wellFormed()) return false;
  for (StateId s : run.states) {
    if (s >= stateCount()) return false;
  }
  if (!isInitial(run.states.front())) return false;
  const std::size_t regularSteps =
      run.deadlock ? run.labels.size() - 1 : run.labels.size();
  for (std::size_t i = 0; i < regularSteps; ++i) {
    if (!hasTransitionTo(run.states[i], run.labels[i], run.states[i + 1])) {
      return false;
    }
  }
  if (run.deadlock) {
    // Def. 2: the final interaction must have no successor.
    if (hasTransition(run.states.back(), run.labels.back())) return false;
  }
  return true;
}

void Automaton::checkInvariants() const {
  for (StateId s = 0; s < stateCount(); ++s) {
    for (const auto& t : trans_[s]) {
      if (t.from != s || t.to >= stateCount()) {
        throw std::logic_error("Automaton invariant violated: bad transition");
      }
      if (!t.label.in.isSubsetOf(inputs_) ||
          !t.label.out.isSubsetOf(outputs_)) {
        throw std::logic_error("Automaton invariant violated: label not in I/O");
      }
    }
  }
  for (StateId s : initial_) {
    if (s >= stateCount()) {
      throw std::logic_error("Automaton invariant violated: bad initial state");
    }
  }
}

std::string Automaton::toDot() const {
  util::DotWriter dot(name_.empty() ? "automaton" : name_);
  for (StateId s = 0; s < stateCount(); ++s) {
    dot.node(stateNames_[s], stateNames_[s], isInitial(s));
  }
  for (StateId s = 0; s < stateCount(); ++s) {
    for (const auto& t : trans_[s]) {
      dot.edge(stateNames_[s], stateNames_[t.to],
               interactionToString(t.label));
    }
  }
  return dot.str();
}

std::string Automaton::toText() const {
  std::string out;
  out += "automaton " + (name_.empty() ? std::string("<anon>") : name_) + ": " +
         std::to_string(stateCount()) + " states, " +
         std::to_string(transitionCount()) + " transitions\n";
  for (StateId s = 0; s < stateCount(); ++s) {
    out += (isInitial(s) ? "  -> " : "     ") + stateNames_[s] + "\n";
    for (const auto& t : trans_[s]) {
      out += "        --" + interactionToString(t.label) + "--> " +
             stateNames_[t.to] + "\n";
    }
  }
  return out;
}

}  // namespace mui::automata
