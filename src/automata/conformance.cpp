#include "automata/conformance.hpp"

namespace mui::automata {

ConformanceResult checkObservationConformance(const IncompleteAutomaton& m,
                                              const Automaton& real) {
  const Automaton& base = m.base();
  std::vector<StateId> map(base.stateCount());
  for (StateId s = 0; s < base.stateCount(); ++s) {
    const auto r = real.stateByName(base.stateName(s));
    if (!r) {
      return {false, "state '" + base.stateName(s) +
                         "' does not exist in the concrete component"};
    }
    map[s] = *r;
  }
  for (StateId q : base.initialStates()) {
    if (!real.isInitial(map[q])) {
      return {false, "state '" + base.stateName(q) +
                         "' is initial in the model but not in the component"};
    }
  }
  for (StateId s = 0; s < base.stateCount(); ++s) {
    for (const auto& t : base.transitionsFrom(s)) {
      if (!real.hasTransitionTo(map[s], t.label, map[t.to])) {
        return {false, "transition " + base.stateName(s) + " --" +
                           base.interactionToString(t.label) + "--> " +
                           base.stateName(t.to) +
                           " is not a transition of the component"};
      }
    }
    for (const auto& x : m.forbiddenAt(s)) {
      if (real.hasTransition(map[s], x)) {
        return {false, "interaction " + base.interactionToString(x) +
                           " is in T-bar at '" + base.stateName(s) +
                           "' but the component supports it"};
      }
    }
  }
  return {true, {}};
}

}  // namespace mui::automata
