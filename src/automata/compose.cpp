#include "automata/compose.hpp"

#include <deque>
#include <stdexcept>
#include <unordered_map>

namespace mui::automata {

Interaction Product::projectInteraction(const Interaction& x,
                                        std::size_t k) const {
  return {x.in & componentInputs[k], x.out & componentOutputs[k]};
}

Run Product::projectRun(const Run& run, std::size_t k) const {
  Run out;
  out.deadlock = run.deadlock;
  out.states.reserve(run.states.size());
  for (StateId p : run.states) out.states.push_back(origins[p][k]);
  out.labels.reserve(run.labels.size());
  for (const auto& l : run.labels) out.labels.push_back(projectInteraction(l, k));
  return out;
}

std::string Product::renderRun(const Run& run) const {
  const SignalTable& sig = *automaton.signalTable();
  std::string out;
  const auto stateLine = [&](StateId p) {
    std::string line;
    for (std::size_t k = 0; k < componentNames.size(); ++k) {
      if (k) line += ", ";
      line += componentNames[k] + "." + componentStateNames[k][origins[p][k]];
    }
    return line;
  };
  const auto interactionLine = [&](const Interaction& x) {
    std::string line;
    const auto add = [&](const std::string& part) {
      if (!line.empty()) line += ", ";
      line += part;
    };
    (x.in | x.out).forEach([&](std::size_t s) {
      const std::string& n = sig.name(static_cast<util::NameId>(s));
      if (x.out.test(s)) {
        for (std::size_t k = 0; k < componentNames.size(); ++k) {
          if (componentOutputs[k].test(s)) add(componentNames[k] + "." + n + "!");
        }
      }
      if (x.in.test(s)) {
        for (std::size_t k = 0; k < componentNames.size(); ++k) {
          if (componentInputs[k].test(s)) add(componentNames[k] + "." + n + "?");
        }
      }
    });
    return line.empty() ? std::string("(idle)") : line;
  };
  const std::size_t regularSteps =
      run.deadlock ? run.labels.size() - 1 : run.labels.size();
  for (std::size_t i = 0; i < regularSteps; ++i) {
    out += stateLine(run.states[i]) + "\n";
    out += interactionLine(run.labels[i]) + "\n";
  }
  if (run.deadlock) {
    if (!run.labels.empty()) {
      out += stateLine(run.states.back()) + "\n";
      out += interactionLine(run.labels.back()) + "  [blocked]\n";
    }
    out += "DEADLOCK\n";
  } else {
    out += stateLine(run.states.back()) + "\n";
  }
  return out;
}

namespace {

/// Wraps a single automaton as a trivial (1-component) Product.
Product wrap(const Automaton& a) {
  Product p{Automaton(a.signalTable(), a.propTable(), a.name()),
            {a.name()},
            {{}},
            {a.inputs()},
            {a.outputs()},
            {}};
  p.automaton = a;  // exact copy, including unreachable states
  p.componentStateNames[0].reserve(a.stateCount());
  for (StateId s = 0; s < a.stateCount(); ++s) {
    p.componentStateNames[0].push_back(a.stateName(s));
    p.origins.push_back({s});
  }
  return p;
}

/// Composes an accumulated product with one more component, flattening the
/// per-component origins.
Product composeStep(const Product& acc, const Automaton& b) {
  const Automaton& a = acc.automaton;
  if (a.signalTable() != b.signalTable() || a.propTable() != b.propTable()) {
    throw std::invalid_argument("compose: automata must share tables");
  }
  if (!a.composableWith(b)) {
    throw std::invalid_argument(
        "compose: not composable (I or O sets overlap)");
  }

  Product p{Automaton(a.signalTable(), a.propTable()), {}, {}, {}, {}, {}};
  p.componentNames = acc.componentNames;
  p.componentNames.push_back(b.name());
  p.componentStateNames = acc.componentStateNames;
  p.componentStateNames.emplace_back();
  for (StateId s = 0; s < b.stateCount(); ++s) {
    p.componentStateNames.back().push_back(b.stateName(s));
  }
  p.componentInputs = acc.componentInputs;
  p.componentInputs.push_back(b.inputs());
  p.componentOutputs = acc.componentOutputs;
  p.componentOutputs.push_back(b.outputs());

  Automaton prod(a.signalTable(), a.propTable(),
                 a.name().empty() || b.name().empty()
                     ? a.name() + b.name()
                     : a.name() + "|" + b.name());
  prod.declareSignals(a.inputs() | b.inputs(), a.outputs() | b.outputs());

  std::unordered_map<std::uint64_t, StateId> ids;
  std::deque<std::pair<StateId, StateId>> work;
  const auto key = [](StateId x, StateId y) {
    return (std::uint64_t{x} << 32) | y;
  };
  const auto ensure = [&](StateId sa, StateId sb) {
    const auto it = ids.find(key(sa, sb));
    if (it != ids.end()) return it->second;
    const StateId id =
        prod.addState(a.stateName(sa) + "|" + b.stateName(sb));
    // Def. 3: L''((s, s')) = L(s) ∪ L'(s').
    prod.addLabels(id, a.labels(sa));
    prod.addLabels(id, b.labels(sb));
    ids.emplace(key(sa, sb), id);
    // Flattened origins: component states of sa plus sb.
    auto origin = acc.origins[sa];
    origin.push_back(sb);
    p.origins.push_back(std::move(origin));
    work.emplace_back(sa, sb);
    return id;
  };

  // Q'' = Q × Q'.
  for (StateId qa : a.initialStates()) {
    for (StateId qb : b.initialStates()) {
      prod.markInitial(ensure(qa, qb));
    }
  }

  while (!work.empty()) {
    const auto [sa, sb] = work.front();
    work.pop_front();
    const StateId from = ids.at(key(sa, sb));
    for (const auto& ta : a.transitionsFrom(sa)) {
      for (const auto& tb : b.transitionsFrom(sb)) {
        // Matching condition of Def. 3, on the shared alphabet: what M reads
        // of M''s outputs must equal what M' writes into M's inputs (and
        // vice versa). For the paper's closed systems — every output wired
        // to a partner input — this is exactly (A ∩ O') = B' and
        // (A' ∩ O) = B; the restriction to the partner's input alphabet
        // additionally lets environment-facing outputs pass through
        // (DESIGN.md §6).
        if ((ta.label.in & b.outputs()) != (tb.label.out & a.inputs())) {
          continue;
        }
        if ((tb.label.in & a.outputs()) != (ta.label.out & b.inputs())) {
          continue;
        }
        const Interaction joint{ta.label.in | tb.label.in,
                                ta.label.out | tb.label.out};
        const StateId to = ensure(ta.to, tb.to);
        prod.addTransition(from, joint, to);
      }
    }
  }

  p.automaton = std::move(prod);
  return p;
}

}  // namespace

Product compose(const Automaton& a, const Automaton& b) {
  return composeStep(wrap(a), b);
}

Product composeAll(const std::vector<const Automaton*>& components) {
  if (components.empty()) {
    throw std::invalid_argument("composeAll: no components");
  }
  Product acc = wrap(*components.front());
  for (std::size_t i = 1; i < components.size(); ++i) {
    acc = composeStep(acc, *components[i]);
  }
  return acc;
}

}  // namespace mui::automata
