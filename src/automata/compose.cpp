#include "automata/compose.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace mui::automata {

namespace {

struct ComposeMetrics {
  obs::Counter& products;
  obs::Counter& statesNew;
  obs::Counter& statesReused;
  obs::Histogram& productStates;

  static const ComposeMetrics& get() {
    static ComposeMetrics m{
        obs::Registry::global().counter("mui_compose_products_total",
                                        "Product automata built"),
        obs::Registry::global().counter(
            "mui_compose_product_states_new_total",
            "Product states interned for the first time"),
        obs::Registry::global().counter(
            "mui_compose_product_states_reused_total",
            "Product states reused from a previous composition"),
        obs::Registry::global().histogram("mui_compose_product_states",
                                          "States per product automaton",
                                          "states"),
    };
    return m;
  }
};

}  // namespace

Interaction Product::projectInteraction(const Interaction& x,
                                        std::size_t k) const {
  return {x.in & componentInputs[k], x.out & componentOutputs[k]};
}

Run Product::projectRun(const Run& run, std::size_t k) const {
  Run out;
  out.deadlock = run.deadlock;
  out.states.reserve(run.states.size());
  for (StateId p : run.states) out.states.push_back(origins[p][k]);
  out.labels.reserve(run.labels.size());
  for (const auto& l : run.labels) out.labels.push_back(projectInteraction(l, k));
  return out;
}

std::string Product::renderRun(const Run& run) const {
  const SignalTable& sig = *automaton.signalTable();
  std::string out;
  // Two lines of roughly 16 chars per component and step is a good first
  // guess; appending in place below avoids the per-step temporaries.
  out.reserve(run.states.size() * componentNames.size() * 32 + 16);
  const auto appendStateLine = [&](StateId p) {
    for (std::size_t k = 0; k < componentNames.size(); ++k) {
      if (k) out += ", ";
      out += componentNames[k];
      out += '.';
      out += componentStateNames[k][origins[p][k]];
    }
  };
  const auto appendInteractionLine = [&](const Interaction& x) {
    const std::size_t start = out.size();
    const auto add = [&](std::size_t k, const std::string& n, char dir) {
      if (out.size() != start) out += ", ";
      out += componentNames[k];
      out += '.';
      out += n;
      out += dir;
    };
    (x.in | x.out).forEach([&](std::size_t s) {
      const std::string& n = sig.name(static_cast<util::NameId>(s));
      if (x.out.test(s)) {
        for (std::size_t k = 0; k < componentNames.size(); ++k) {
          if (componentOutputs[k].test(s)) add(k, n, '!');
        }
      }
      if (x.in.test(s)) {
        for (std::size_t k = 0; k < componentNames.size(); ++k) {
          if (componentInputs[k].test(s)) add(k, n, '?');
        }
      }
    });
    if (out.size() == start) out += "(idle)";
  };
  const std::size_t regularSteps =
      run.deadlock ? run.labels.size() - 1 : run.labels.size();
  for (std::size_t i = 0; i < regularSteps; ++i) {
    appendStateLine(run.states[i]);
    out += '\n';
    appendInteractionLine(run.labels[i]);
    out += '\n';
  }
  if (run.deadlock) {
    if (!run.labels.empty()) {
      appendStateLine(run.states.back());
      out += '\n';
      appendInteractionLine(run.labels.back());
      out += "  [blocked]\n";
    }
    out += "DEADLOCK\n";
  } else {
    appendStateLine(run.states.back());
    out += '\n';
  }
  return out;
}

namespace {

/// Wraps a single automaton as a trivial (1-component) Product.
Product wrap(const Automaton& a) {
  Product p{Automaton(a.signalTable(), a.propTable(), a.name()),
            {a.name()},
            {{}},
            {a.inputs()},
            {a.outputs()},
            {}};
  p.automaton = a;  // exact copy, including unreachable states
  p.componentStateNames[0].reserve(a.stateCount());
  for (StateId s = 0; s < a.stateCount(); ++s) {
    p.componentStateNames[0].push_back(a.stateName(s));
    p.origins.push_back({s});
  }
  return p;
}

/// Composes an accumulated product with one more component, flattening the
/// per-component origins.
Product composeStep(const Product& acc, const Automaton& b) {
  const Automaton& a = acc.automaton;
  if (a.signalTable() != b.signalTable() || a.propTable() != b.propTable()) {
    throw std::invalid_argument("compose: automata must share tables");
  }
  if (!a.composableWith(b)) {
    throw std::invalid_argument(
        "compose: not composable (I or O sets overlap)");
  }

  Product p{Automaton(a.signalTable(), a.propTable()), {}, {}, {}, {}, {}};
  p.componentNames = acc.componentNames;
  p.componentNames.push_back(b.name());
  p.componentStateNames = acc.componentStateNames;
  p.componentStateNames.emplace_back();
  for (StateId s = 0; s < b.stateCount(); ++s) {
    p.componentStateNames.back().push_back(b.stateName(s));
  }
  p.componentInputs = acc.componentInputs;
  p.componentInputs.push_back(b.inputs());
  p.componentOutputs = acc.componentOutputs;
  p.componentOutputs.push_back(b.outputs());

  Automaton prod(a.signalTable(), a.propTable(),
                 a.name().empty() || b.name().empty()
                     ? a.name() + b.name()
                     : a.name() + "|" + b.name());
  prod.declareSignals(a.inputs() | b.inputs(), a.outputs() | b.outputs());

  std::unordered_map<std::uint64_t, StateId> ids;
  std::deque<std::pair<StateId, StateId>> work;
  const auto key = [](StateId x, StateId y) {
    return (std::uint64_t{x} << 32) | y;
  };
  const auto ensure = [&](StateId sa, StateId sb) {
    const auto it = ids.find(key(sa, sb));
    if (it != ids.end()) return it->second;
    const StateId id =
        prod.addState(a.stateName(sa) + "|" + b.stateName(sb));
    // Def. 3: L''((s, s')) = L(s) ∪ L'(s').
    prod.addLabels(id, a.labels(sa));
    prod.addLabels(id, b.labels(sb));
    ids.emplace(key(sa, sb), id);
    // Flattened origins: component states of sa plus sb.
    auto origin = acc.origins[sa];
    origin.push_back(sb);
    p.origins.push_back(std::move(origin));
    work.emplace_back(sa, sb);
    return id;
  };

  // Q'' = Q × Q'.
  for (StateId qa : a.initialStates()) {
    for (StateId qb : b.initialStates()) {
      prod.markInitial(ensure(qa, qb));
    }
  }

  while (!work.empty()) {
    const auto [sa, sb] = work.front();
    work.pop_front();
    const StateId from = ids.at(key(sa, sb));
    for (const auto& ta : a.transitionsFrom(sa)) {
      for (const auto& tb : b.transitionsFrom(sb)) {
        // Matching condition of Def. 3, on the shared alphabet: what M reads
        // of M''s outputs must equal what M' writes into M's inputs (and
        // vice versa). For the paper's closed systems — every output wired
        // to a partner input — this is exactly (A ∩ O') = B' and
        // (A' ∩ O) = B; the restriction to the partner's input alphabet
        // additionally lets environment-facing outputs pass through
        // (DESIGN.md §6).
        if ((ta.label.in & b.outputs()) != (tb.label.out & a.inputs())) {
          continue;
        }
        if ((tb.label.in & a.outputs()) != (ta.label.out & b.inputs())) {
          continue;
        }
        const Interaction joint{ta.label.in | tb.label.in,
                                ta.label.out | tb.label.out};
        const StateId to = ensure(ta.to, tb.to);
        prod.addTransition(from, joint, to);
      }
    }
  }

  p.automaton = std::move(prod);
  return p;
}

}  // namespace

Product compose(const Automaton& a, const Automaton& b) {
  return composeStep(wrap(a), b);
}

Product composeAll(const std::vector<const Automaton*>& components) {
  if (components.empty()) {
    throw std::invalid_argument("composeAll: no components");
  }
  Product acc = wrap(*components.front());
  for (std::size_t i = 1; i < components.size(); ++i) {
    acc = composeStep(acc, *components[i]);
  }
  const ComposeMetrics& m = ComposeMetrics::get();
  m.products.inc();
  m.statesNew.add(acc.automaton.stateCount());  // full rebuild: all new
  m.productStates.observe(acc.automaton.stateCount());
  return acc;
}

IncrementalComposer::IncrementalComposer(const Automaton& context)
    : context_(context) {}

Product IncrementalComposer::compose(const std::vector<const Automaton*>& others,
                                     const StableKey& stableKey) {
  if (others.empty()) {
    throw std::invalid_argument("IncrementalComposer: need >= 1 partner");
  }
  std::vector<const Automaton*> parts;
  parts.reserve(others.size() + 1);
  parts.push_back(&context_);
  parts.insert(parts.end(), others.begin(), others.end());
  const std::size_t n = parts.size();

  for (std::size_t i = 0; i < n; ++i) {
    if (parts[i]->signalTable() != context_.signalTable() ||
        parts[i]->propTable() != context_.propTable()) {
      throw std::invalid_argument("compose: automata must share tables");
    }
    // Pairwise composability is equivalent to the fold's accumulated check
    // because the components' I (resp. O) sets are pairwise disjoint.
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!parts[i]->composableWith(*parts[j])) {
        throw std::invalid_argument(
            "compose: not composable (I or O sets overlap)");
      }
    }
  }

  stats_ = {};

  const auto keyOf = [&](std::size_t k, StateId s) {
    return stableKey ? stableKey(k, s) : std::uint64_t{s};
  };

  // Matching condition of Def. 3 between components i and j. With pairwise
  // disjoint input (and output) alphabets, requiring it for every pair is
  // equivalent to the fold's accumulated-alphabet check: intersecting both
  // sides of the accumulated equation with I_i (resp. I_j) recovers exactly
  // the pairwise equations.
  const auto matches = [&](const Transition& ti, std::size_t i,
                           const Transition& tj, std::size_t j) {
    return (ti.label.in & parts[j]->outputs()) ==
               (tj.label.out & parts[i]->inputs()) &&
           (tj.label.in & parts[i]->outputs()) ==
               (ti.label.out & parts[j]->inputs());
  };

  struct LocalState {
    ArenaEntry* entry;
    std::vector<StateId> tuple;
  };
  std::vector<LocalState> locals;
  std::unordered_map<std::vector<std::uint64_t>, std::uint32_t, KeyVecHash>
      localIds;
  std::deque<std::uint32_t> work;

  const auto ensure = [&](const std::vector<StateId>& tuple) -> std::uint32_t {
    std::vector<std::uint64_t> raw(n);
    for (std::size_t i = 0; i < n; ++i) raw[i] = tuple[i];
    const auto [lit, fresh] =
        localIds.try_emplace(std::move(raw),
                             static_cast<std::uint32_t>(locals.size()));
    if (!fresh) return lit->second;
    std::vector<std::uint64_t> key(n);
    for (std::size_t i = 0; i < n; ++i) key[i] = keyOf(i, tuple[i]);
    const auto [ait, interned] = arena_.try_emplace(std::move(key));
    if (interned) {
      ArenaEntry& e = ait->second;
      e.seq = nextSeq_++;
      std::size_t len = n;
      for (std::size_t i = 0; i < n; ++i) {
        len += parts[i]->stateName(tuple[i]).size();
      }
      e.name.reserve(len);
      for (std::size_t i = 0; i < n; ++i) {
        if (i) e.name += '|';
        e.name += parts[i]->stateName(tuple[i]);
      }
      // Def. 3: L''((s_0, …, s_k)) = L(s_0) ∪ … ∪ L(s_k).
      for (std::size_t i = 0; i < n; ++i) e.labels |= parts[i]->labels(tuple[i]);
      ++stats_.statesNew;
    } else {
      ++stats_.statesReused;
    }
    locals.push_back({&ait->second, tuple});
    work.push_back(lit->second);
    return lit->second;
  };

  // Q'' = Q_0 × … × Q_k, discovered in the same nested order as the fold.
  std::vector<std::uint32_t> initialLocals;
  {
    std::vector<StateId> tuple(n);
    const auto seed = [&](const auto& self, std::size_t k) -> void {
      if (k == n) {
        initialLocals.push_back(ensure(tuple));
        return;
      }
      for (StateId q : parts[k]->initialStates()) {
        tuple[k] = q;
        self(self, k + 1);
      }
    };
    seed(seed, 0);
  }

  // Single n-ary frontier BFS — no intermediate fold products. Transition
  // combinations are enumerated in the fold's lexicographic nesting (first
  // component outermost) so the discovery order, and with it every
  // per-state adjacency order, matches composeAll exactly.
  struct Edge {
    std::uint32_t from;
    Interaction label;
    std::uint32_t to;
  };
  std::vector<Edge> edges;
  std::vector<const Transition*> pick(n);
  std::vector<StateId> target(n);
  while (!work.empty()) {
    const std::uint32_t cur = work.front();
    work.pop_front();
    const std::vector<StateId> tuple = locals[cur].tuple;  // locals may grow
    const auto expand = [&](const auto& self, std::size_t k) -> void {
      if (k == n) {
        Interaction joint;
        for (std::size_t i = 0; i < n; ++i) {
          joint.in |= pick[i]->label.in;
          joint.out |= pick[i]->label.out;
          target[i] = pick[i]->to;
        }
        edges.push_back({cur, std::move(joint), ensure(target)});
        return;
      }
      for (const auto& t : parts[k]->transitionsFrom(tuple[k])) {
        bool ok = true;
        for (std::size_t j = 0; j < k && ok; ++j) {
          ok = matches(*pick[j], j, t, k);
        }
        if (!ok) continue;
        pick[k] = &t;
        self(self, k + 1);
      }
    };
    expand(expand, 0);
  }

  // Assemble the Product, ordering states by first-ever-discovery sequence:
  // on monotone growth (the refinement loop only adds knowledge) previously
  // seen product states keep their ids across calls.
  std::string prodName = parts[0]->name();
  for (std::size_t i = 1; i < n; ++i) {
    const std::string& nm = parts[i]->name();
    prodName = prodName.empty() || nm.empty() ? prodName + nm
                                              : prodName + "|" + nm;
  }
  Product p{Automaton(context_.signalTable(), context_.propTable(),
                      std::move(prodName)),
            {}, {}, {}, {}, {}};
  SignalSet ins, outs;
  for (std::size_t i = 0; i < n; ++i) {
    p.componentNames.push_back(parts[i]->name());
    auto& names = p.componentStateNames.emplace_back();
    names.reserve(parts[i]->stateCount());
    for (StateId s = 0; s < parts[i]->stateCount(); ++s) {
      names.push_back(parts[i]->stateName(s));
    }
    p.componentInputs.push_back(parts[i]->inputs());
    p.componentOutputs.push_back(parts[i]->outputs());
    ins |= parts[i]->inputs();
    outs |= parts[i]->outputs();
  }
  p.automaton.declareSignals(ins, outs);

  std::vector<std::uint32_t> order(locals.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return locals[a].entry->seq < locals[b].entry->seq;
  });
  std::vector<StateId> finalId(locals.size());
  p.origins.resize(locals.size());
  for (const std::uint32_t li : order) {
    const StateId id = p.automaton.addState(locals[li].entry->name);
    p.automaton.addLabels(id, locals[li].entry->labels);
    p.origins[id] = locals[li].tuple;
    finalId[li] = id;
  }
  for (const std::uint32_t li : initialLocals) {
    p.automaton.markInitial(finalId[li]);
  }
  for (const Edge& e : edges) {
    p.automaton.addTransition(finalId[e.from], e.label, finalId[e.to]);
  }

  stats_.states = locals.size();
  stats_.transitions = p.automaton.transitionCount();
  const ComposeMetrics& m = ComposeMetrics::get();
  m.products.inc();
  m.statesNew.add(stats_.statesNew);
  m.statesReused.add(stats_.statesReused);
  m.productStates.observe(stats_.states);
  return p;
}

}  // namespace mui::automata
