#pragma once
// Incomplete automata (paper Def. 6/7) and the learning steps (Def. 11/12).
//
// An incomplete automaton M = (S, I, O, T, T̄, Q) carries, besides the known
// transitions T, the set T̄ of interactions *known to be refused* by the real
// component. Runs (Def. 7) treat only T̄ entries as deadlocks — absence of a
// transition encodes ignorance, not refusal. This is what makes the chaotic
// closure (chaos.hpp) a safe over-approximation at every learning stage.

#include <string>
#include <vector>

#include "automata/automaton.hpp"
#include "automata/run.hpp"

namespace mui::automata {

/// A refused interaction at a state: an element of T̄.
struct ForbiddenEntry {
  StateId state;
  Interaction label;

  bool operator==(const ForbiddenEntry&) const = default;
};

class IncompleteAutomaton {
 public:
  IncompleteAutomaton(SignalTableRef signals, SignalTableRef props,
                      std::string name = {});

  /// Wraps an existing automaton (empty T̄).
  explicit IncompleteAutomaton(Automaton base);

  // ---- Construction (delegates to the underlying automaton) ---------------

  StateId addState(const std::string& stateName);
  StateId ensureState(const std::string& stateName);
  void markInitial(StateId s);
  util::NameId addInput(const std::string& signal);
  util::NameId addOutput(const std::string& signal);
  void declareSignals(const SignalSet& ins, const SignalSet& outs);
  void addLabel(StateId s, const std::string& prop);
  void labelWithStateName(StateId s) { base_.labelWithStateName(s); }

  /// Adds (from, A, B, to) to T. Throws if (from, A, B) ∈ T̄ (consistency
  /// requirement of Def. 6).
  void addTransition(StateId from, Interaction label, StateId to);

  /// Adds (s, A, B) to T̄. Throws if a transition (s, A, B, ·) ∈ T exists.
  void forbid(StateId s, Interaction label);

  // ---- Accessors -----------------------------------------------------------

  [[nodiscard]] const Automaton& base() const { return base_; }
  [[nodiscard]] bool isForbidden(StateId s, const Interaction& label) const;
  [[nodiscard]] const std::vector<Interaction>& forbiddenAt(StateId s) const;
  [[nodiscard]] std::size_t forbiddenCount() const;

  // ---- Def. 6/7 semantics --------------------------------------------------

  /// Determinism of an incomplete automaton: for any (s, A, B),
  /// |{(s,A,B,s') ∈ T} ∪ {(s,A,B) ∈ T̄}| ≤ 1.
  [[nodiscard]] bool deterministic() const;

  /// Completeness w.r.t. an interaction alphabet: every (s, A, B) is either
  /// in T (for exactly one target when deterministic) xor in T̄.
  [[nodiscard]] bool complete(const std::vector<Interaction>& alphabet) const;

  /// Def. 7 runs: a deadlock run requires its final interaction ∈ T̄.
  [[nodiscard]] bool admitsRun(const Run& run) const;

  // ---- Learning (Def. 11/12) -----------------------------------------------

  /// What one learning step added — used for the strict-monotone-progress
  /// argument of Sec. 4.4 (Thm. 2's termination).
  struct LearnDelta {
    std::size_t newStates = 0;
    std::size_t newTransitions = 0;
    std::size_t newForbidden = 0;

    [[nodiscard]] bool any() const {
      return newStates + newTransitions + newForbidden > 0;
    }
  };

  /// Merges an observed run into the model. States are identified by their
  /// monitored names (Def. 10's state-aware observation). For a regular run
  /// this is Def. 11 (extend S, T, Q); for a blocked run the regular prefix
  /// is learned per Def. 11 and the refused final interaction is added to T̄
  /// per Def. 12. New states are auto-labeled with their hierarchical
  /// qualified name (see Automaton::labelWithStateName).
  LearnDelta learn(const ObservedRun& run);

  /// Number of (state, transition, forbidden) facts known — the strictly
  /// increasing measure used for termination.
  [[nodiscard]] std::size_t knowledge() const;

 private:
  Automaton base_;
  std::vector<std::vector<Interaction>> forbidden_;  // by state

  void ensureForbiddenSlot(StateId s);
};

}  // namespace mui::automata
