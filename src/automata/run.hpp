#pragma once
// Runs and traces (paper Def. 2 / Def. 7).
//
// A regular run is s1, A1/B1, s2, ... ; a deadlock run additionally ends with
// an interaction An/Bn that has no successor ("the last interaction was
// blocked"). We represent both with one struct:
//   - regular run:   states.size() == labels.size() + 1
//   - deadlock run:  states.size() == labels.size()  (last label blocked)

#include <cstdint>
#include <string>
#include <vector>

#include "automata/signals.hpp"

namespace mui::automata {

using StateId = std::uint32_t;

struct Run {
  std::vector<StateId> states;
  std::vector<Interaction> labels;
  bool deadlock = false;

  [[nodiscard]] bool wellFormed() const {
    if (states.empty()) return false;
    return deadlock ? states.size() == labels.size()
                    : states.size() == labels.size() + 1;
  }

  /// Number of interaction steps (deadlocked final interaction included).
  [[nodiscard]] std::size_t length() const { return labels.size(); }
};

/// A run observed on the real legacy component via monitoring (paper
/// Listings 1.2/1.3/1.5): state *names* as reported by the probes plus the
/// performed interactions. Used as input to learning (Def. 11/12), where the
/// names are interned into the incomplete automaton's state set.
struct ObservedRun {
  std::vector<std::string> stateNames;
  std::vector<Interaction> labels;
  bool blocked = false;  // true: the final interaction was refused (Def. 12)

  [[nodiscard]] bool wellFormed() const {
    if (stateNames.empty()) return false;
    return blocked ? stateNames.size() == labels.size()
                   : stateNames.size() == labels.size() + 1;
  }
};

}  // namespace mui::automata
