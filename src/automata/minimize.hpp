#pragma once
// Bisimulation minimization (partition refinement) for the discrete
// automaton model. Bisimilarity here respects both the labeling and the
// refusal structure: two states are equivalent only if they carry the same
// propositions and afford the same interactions with bisimilar successors.
// CTL properties (hence CCTL verdicts) and refinement in both directions
// are preserved — the quotient can replace a composed product or a chaotic
// closure wherever it appears (validated by property tests).

#include "automata/automaton.hpp"

namespace mui::automata {

/// The bisimulation quotient of `a`, restricted to reachable states. Block
/// representatives keep the name of their lowest-numbered member; labels are
/// the (identical) member labels.
Automaton minimizeBisimulation(const Automaton& a);

/// Partition of `a`'s states into bisimulation classes: result[s] is the
/// class index of state s (classes numbered densely from 0). Unreachable
/// states participate normally (callers prune as needed).
std::vector<std::size_t> bisimulationClasses(const Automaton& a);

}  // namespace mui::automata
