#pragma once
// Observation conformance (paper Def. 10): [M] ⊆ [M_r] for an incomplete
// automaton M against the concrete component M_r, where runs include states
// ("the defined notion of observation includes states in our case").
//
// States are identified by name: a learned model's states are exactly the
// state names reported by the monitoring probes, so conformance reduces to
// structural containment.

#include <string>

#include "automata/incomplete.hpp"

namespace mui::automata {

struct ConformanceResult {
  bool conforms = false;
  std::string reason;  // human-readable witness on failure
};

/// Checks that M is observation conforming to the concrete automaton `real`:
///  - every state of M names a state of `real`,
///  - M's initial states are initial in `real`,
///  - every transition of M (mapped by name) is a transition of `real`,
///  - every T̄ entry of M is refused by `real` (no such transition).
/// Together these give [M] ⊆ [real] per Def. 7/10. With Thm. 1 this yields
/// real ⊑ chaos(M).
ConformanceResult checkObservationConformance(const IncompleteAutomaton& m,
                                              const Automaton& real);

}  // namespace mui::automata
