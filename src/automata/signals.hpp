#pragma once
// Signals and interaction labels (paper Def. 1).
//
// A transition of an automaton carries a pair (A, B) with A ⊆ I (consumed
// input signals) and B ⊆ O (produced output signals). We call such a pair an
// Interaction. The chaotic automaton (Def. 8) ranges over ℘(I) × ℘(O); since
// that set is exponential, every construction that must enumerate "all
// possible interactions" is parameterized by an InteractionMode (DESIGN.md
// §6.1).

#include <memory>
#include <string>
#include <vector>

#include "util/bitset.hpp"
#include "util/name_table.hpp"

namespace mui::automata {

using SignalSet = util::DynBitset;
using PropSet = util::DynBitset;
using SignalTable = util::NameTable;
using SignalTableRef = std::shared_ptr<util::NameTable>;

/// One transition label (A, B): inputs consumed and outputs produced in a
/// single (unit-time) step.
struct Interaction {
  SignalSet in;
  SignalSet out;

  bool operator==(const Interaction&) const = default;
  bool operator<(const Interaction& o) const {
    if (in == o.in) return out < o.out;
    return in < o.in;
  }

  [[nodiscard]] bool idle() const { return in.empty() && out.empty(); }
  [[nodiscard]] std::size_t hash() const {
    return in.hash() * 0x9e3779b97f4a7c15ull + out.hash();
  }
};

struct InteractionHash {
  std::size_t operator()(const Interaction& x) const { return x.hash(); }
};

/// How "all possible interactions" (℘(I) × ℘(O) in the paper) is enumerated.
enum class InteractionMode {
  /// Exact Def. 8: every subset pair. Exponential in |I| + |O|; only for
  /// small alphabets.
  FullPowerset,
  /// Message-interleaving semantics used by the paper's RailCab example:
  /// per step a component consumes at most one signal or produces at most
  /// one signal (or idles). Linear in |I| + |O|.
  AtMostOneSignal,
};

/// Enumerates the interaction alphabet for the given I/O sets under `mode`.
/// The result is duplicate-free and deterministic (sorted).
std::vector<Interaction> makeAlphabet(const SignalSet& inputs,
                                      const SignalSet& outputs,
                                      InteractionMode mode);

/// Renders an interaction as e.g. "{a,b}/{x}" ("-" for the empty set).
std::string toString(const Interaction& x, const SignalTable& signals);

}  // namespace mui::automata
