#include "automata/incomplete.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace mui::automata {

IncompleteAutomaton::IncompleteAutomaton(SignalTableRef signals,
                                         SignalTableRef props,
                                         std::string name)
    : base_(std::move(signals), std::move(props), std::move(name)) {}

IncompleteAutomaton::IncompleteAutomaton(Automaton base)
    : base_(std::move(base)) {
  forbidden_.resize(base_.stateCount());
}

StateId IncompleteAutomaton::addState(const std::string& stateName) {
  const StateId s = base_.addState(stateName);
  ensureForbiddenSlot(s);
  return s;
}

StateId IncompleteAutomaton::ensureState(const std::string& stateName) {
  const StateId s = base_.ensureState(stateName);
  ensureForbiddenSlot(s);
  return s;
}

void IncompleteAutomaton::markInitial(StateId s) { base_.markInitial(s); }

util::NameId IncompleteAutomaton::addInput(const std::string& signal) {
  return base_.addInput(signal);
}

util::NameId IncompleteAutomaton::addOutput(const std::string& signal) {
  return base_.addOutput(signal);
}

void IncompleteAutomaton::declareSignals(const SignalSet& ins,
                                         const SignalSet& outs) {
  base_.declareSignals(ins, outs);
}

void IncompleteAutomaton::addLabel(StateId s, const std::string& prop) {
  base_.addLabel(s, prop);
}

void IncompleteAutomaton::addTransition(StateId from, Interaction label,
                                        StateId to) {
  if (isForbidden(from, label)) {
    throw std::invalid_argument(
        "IncompleteAutomaton::addTransition: interaction is in T-bar "
        "(Def. 6 consistency)");
  }
  base_.addTransition(from, std::move(label), to);
}

void IncompleteAutomaton::forbid(StateId s, Interaction label) {
  if (base_.hasTransition(s, label)) {
    throw std::invalid_argument(
        "IncompleteAutomaton::forbid: interaction is in T "
        "(Def. 6 consistency)");
  }
  ensureForbiddenSlot(s);
  if (!isForbidden(s, label)) forbidden_[s].push_back(std::move(label));
}

bool IncompleteAutomaton::isForbidden(StateId s,
                                      const Interaction& label) const {
  if (s >= forbidden_.size()) return false;
  return std::find(forbidden_[s].begin(), forbidden_[s].end(), label) !=
         forbidden_[s].end();
}

const std::vector<Interaction>& IncompleteAutomaton::forbiddenAt(
    StateId s) const {
  static const std::vector<Interaction> kEmpty;
  return s < forbidden_.size() ? forbidden_[s] : kEmpty;
}

std::size_t IncompleteAutomaton::forbiddenCount() const {
  std::size_t n = 0;
  for (const auto& v : forbidden_) n += v.size();
  return n;
}

bool IncompleteAutomaton::deterministic() const {
  if (!base_.deterministic()) return false;
  // A transition and a T̄ entry on the same (s, A, B) would already be
  // rejected at construction, so base determinism suffices; we re-check the
  // consistency invariant defensively.
  for (StateId s = 0; s < base_.stateCount(); ++s) {
    for (const auto& x : forbiddenAt(s)) {
      if (base_.hasTransition(s, x)) return false;
    }
  }
  return true;
}

bool IncompleteAutomaton::complete(
    const std::vector<Interaction>& alphabet) const {
  for (StateId s = 0; s < base_.stateCount(); ++s) {
    for (const auto& x : alphabet) {
      const bool inT = base_.hasTransition(s, x);
      const bool inBar = isForbidden(s, x);
      if (inT == inBar) return false;  // must be exactly one (xor)
    }
  }
  return true;
}

bool IncompleteAutomaton::admitsRun(const Run& run) const {
  if (!run.wellFormed()) return false;
  for (StateId s : run.states) {
    if (s >= base_.stateCount()) return false;
  }
  if (!base_.isInitial(run.states.front())) return false;
  const std::size_t regularSteps =
      run.deadlock ? run.labels.size() - 1 : run.labels.size();
  for (std::size_t i = 0; i < regularSteps; ++i) {
    if (!base_.hasTransitionTo(run.states[i], run.labels[i],
                               run.states[i + 1])) {
      return false;
    }
  }
  if (run.deadlock) {
    // Def. 7: deadlocks only where explicitly recorded in T̄.
    if (!isForbidden(run.states.back(), run.labels.back())) return false;
  }
  return true;
}

IncompleteAutomaton::LearnDelta IncompleteAutomaton::learn(
    const ObservedRun& run) {
  if (!run.wellFormed()) {
    throw std::invalid_argument("IncompleteAutomaton::learn: malformed run");
  }
  LearnDelta delta;

  const auto ensureNamed = [&](const std::string& n) {
    if (auto existing = base_.stateByName(n)) return *existing;
    const StateId s = addState(n);
    base_.labelWithStateName(s);
    ++delta.newStates;
    return s;
  };

  std::vector<StateId> ids;
  ids.reserve(run.stateNames.size());
  for (const auto& n : run.stateNames) ids.push_back(ensureNamed(n));

  // Def. 11: Q' = Q ∪ {s ∉ Q | π = s ...}.
  if (!base_.isInitial(ids.front())) {
    base_.markInitial(ids.front());
  }

  const std::size_t regularSteps =
      run.blocked ? run.labels.size() - 1 : run.labels.size();
  for (std::size_t i = 0; i < regularSteps; ++i) {
    if (!base_.hasTransitionTo(ids[i], run.labels[i], ids[i + 1])) {
      addTransition(ids[i], run.labels[i], ids[i + 1]);
      ++delta.newTransitions;
    }
  }
  if (run.blocked) {
    // Def. 12: T̄' = T̄ ∪ {(s, A, B)}.
    if (!isForbidden(ids.back(), run.labels.back())) {
      forbid(ids.back(), run.labels.back());
      ++delta.newForbidden;
    }
  }
  static obs::Counter& states = obs::Registry::global().counter(
      "mui_learn_states_total", "States learned into incomplete models");
  static obs::Counter& transitions = obs::Registry::global().counter(
      "mui_learn_transitions_total",
      "Transitions learned into incomplete models");
  static obs::Counter& forbidden = obs::Registry::global().counter(
      "mui_learn_forbidden_total",
      "Forbidden interactions learned into incomplete models");
  states.add(delta.newStates);
  transitions.add(delta.newTransitions);
  forbidden.add(delta.newForbidden);
  return delta;
}

std::size_t IncompleteAutomaton::knowledge() const {
  return base_.stateCount() + base_.transitionCount() + forbiddenCount();
}

void IncompleteAutomaton::ensureForbiddenSlot(StateId s) {
  if (forbidden_.size() <= s) forbidden_.resize(s + 1);
}

}  // namespace mui::automata
