#pragma once
// Random model generators for property-based tests and benchmark workloads.
//
// The generators are fully deterministic in the seed so that every test and
// bench row is reproducible.

#include <cstdint>
#include <string>

#include "automata/automaton.hpp"

namespace mui::automata {

struct RandomSpec {
  std::size_t states = 6;
  std::size_t inputs = 2;   // number of input signals ("<name>_in<k>")
  std::size_t outputs = 2;  // number of output signals ("<name>_out<k>")
  /// Probability (numerator over 100) that a given (state, interaction) has
  /// a transition beyond the connectivity spine.
  std::uint64_t densityPct = 40;
  InteractionMode mode = InteractionMode::AtMostOneSignal;
  /// Input-deterministic (unique response per input set) — the legacy
  /// component discipline of the paper's Sec. 4.3.
  bool deterministic = true;
  /// When set, every state keeps at least one outgoing transition so the
  /// automaton alone has no trivially dead states.
  bool noLocalDeadlocks = true;
  /// Label every state with its qualified name (the default supports
  /// property checking; disable for minimization experiments where unique
  /// labels would prevent any merging).
  bool labelStates = true;
  std::uint64_t seed = 1;
  std::string name = "rand";
};

/// Generates a connected random automaton over fresh signals interned into
/// `signals`. States are named "<name>_q<k>" and labeled with their names.
Automaton randomAutomaton(const RandomSpec& spec, const SignalTableRef& signals,
                          const SignalTableRef& props);

/// The I/O-mirrored twin of `a`: same graph, every label (A, B) becomes
/// (B, A). The mirror is composable with `a` and synchronizes with it in
/// lockstep — the canonical "fully exercising" context for a legacy
/// component in experiments E1–E3.
Automaton mirrored(const Automaton& a, const std::string& name);

/// A connected random sub-automaton of `a`: keeps all states reachable via a
/// randomly chosen subset of roughly `keepPct`% of transitions (always
/// keeping a connectivity spine from the initial states). Used to model a
/// context that exercises only part of the legacy behavior.
Automaton subAutomaton(const Automaton& a, std::uint64_t keepPct,
                       std::uint64_t seed, const std::string& name);

/// A structure-preserving random copy of `a`: states are re-inserted in a
/// seeded random order (permuting the state ids) and, with `freshNames`,
/// renamed to opaque "r<k>" identifiers. Label sets are copied verbatim —
/// unlike withInstanceName this does NOT relabel, so every CTL/CCTL verdict
/// is invariant under the transformation. This is the renaming half of the
/// fuzzer's O5 metamorphic oracle (src/fuzz/oracles.hpp).
Automaton shuffledCopy(const Automaton& a, std::uint64_t seed,
                       bool freshNames = true);

}  // namespace mui::automata
