#include "automata/minimize.hpp"

#include <algorithm>
#include <map>

namespace mui::automata {

std::vector<std::size_t> bisimulationClasses(const Automaton& a) {
  const std::size_t n = a.stateCount();
  std::vector<std::size_t> cls(n, 0);
  std::size_t classCount = 0;

  // Initial partition: by labeling.
  {
    std::map<PropSet, std::size_t> byLabels;
    for (StateId s = 0; s < n; ++s) {
      const auto it = byLabels.emplace(a.labels(s), byLabels.size()).first;
      cls[s] = it->second;
    }
    classCount = byLabels.size();
  }

  // Refine until stable: split by the set of (interaction, successor class)
  // moves — which also separates states with different refusals. Refinement
  // only ever splits classes, so a stable class count means a fixpoint.
  using Signature = std::vector<std::pair<Interaction, std::size_t>>;
  while (true) {
    std::map<std::pair<std::size_t, Signature>, std::size_t> next;
    std::vector<std::size_t> newCls(n);
    for (StateId s = 0; s < n; ++s) {
      Signature sig;
      for (const auto& t : a.transitionsFrom(s)) {
        sig.emplace_back(t.label, cls[t.to]);
      }
      std::sort(sig.begin(), sig.end());
      sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
      const auto it =
          next.emplace(std::make_pair(cls[s], std::move(sig)), next.size())
              .first;
      newCls[s] = it->second;
    }
    const bool stable = next.size() == classCount;
    classCount = next.size();
    cls = std::move(newCls);
    if (stable) break;
  }
  return cls;
}

Automaton minimizeBisimulation(const Automaton& a) {
  const auto cls = bisimulationClasses(a);
  const std::size_t n = a.stateCount();
  std::size_t classCount = 0;
  for (std::size_t c : cls) classCount = std::max(classCount, c + 1);

  // Representative: the lowest-numbered member of each class.
  std::vector<StateId> repr(classCount, UINT32_MAX);
  for (StateId s = 0; s < n; ++s) {
    if (repr[cls[s]] == UINT32_MAX) repr[cls[s]] = s;
  }

  Automaton out(a.signalTable(), a.propTable(), a.name());
  out.declareSignals(a.inputs(), a.outputs());
  for (std::size_t c = 0; c < classCount; ++c) {
    const StateId q = out.addState(a.stateName(repr[c]));
    out.addLabels(q, a.labels(repr[c]));
  }
  for (std::size_t c = 0; c < classCount; ++c) {
    for (const auto& t : a.transitionsFrom(repr[c])) {
      out.addTransition(static_cast<StateId>(c), t.label,
                        static_cast<StateId>(cls[t.to]));
    }
  }
  for (StateId q : a.initialStates()) {
    out.markInitial(static_cast<StateId>(cls[q]));
  }
  return out.prunedToReachable();
}

}  // namespace mui::automata
