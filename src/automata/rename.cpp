#include "automata/rename.hpp"

#include <stdexcept>

namespace mui::automata {

Automaton renameSignals(const Automaton& a,
                        const std::map<std::string, std::string>& mapping) {
  const SignalTableRef& table = a.signalTable();

  // Build the id-level map and validate.
  std::map<util::NameId, util::NameId> idMap;
  SignalSet sources;
  for (const auto& [from, to] : mapping) {
    const auto fromId = table->lookup(from);
    if (!fromId || !(a.inputs().test(*fromId) || a.outputs().test(*fromId))) {
      throw std::invalid_argument("renameSignals: '" + from +
                                  "' is not a signal of '" + a.name() + "'");
    }
    idMap[*fromId] = table->intern(to);
    sources.set(*fromId);
  }
  const auto translate = [&](const SignalSet& s) {
    SignalSet out = s - sources;
    s.forEach([&](std::size_t bit) {
      const auto it = idMap.find(static_cast<util::NameId>(bit));
      if (it != idMap.end()) out.set(it->second);
    });
    return out;
  };

  const SignalSet newIns = translate(a.inputs());
  const SignalSet newOuts = translate(a.outputs());
  // Collision check: a target may not merge with a distinct remaining signal.
  if (newIns.count() != a.inputs().count() ||
      newOuts.count() != a.outputs().count()) {
    throw std::invalid_argument(
        "renameSignals: mapping target collides with an existing signal");
  }

  Automaton out(table, a.propTable(), a.name());
  out.declareSignals(newIns, newOuts);
  for (StateId s = 0; s < a.stateCount(); ++s) {
    const StateId n = out.addState(a.stateName(s));
    out.addLabels(n, a.labels(s));
  }
  for (StateId s = 0; s < a.stateCount(); ++s) {
    for (const auto& t : a.transitionsFrom(s)) {
      out.addTransition(s, {translate(t.label.in), translate(t.label.out)},
                        t.to);
    }
  }
  for (StateId q : a.initialStates()) out.markInitial(q);
  return out;
}

Automaton withInstanceName(const Automaton& a, const std::string& name) {
  Automaton out(a.signalTable(), a.propTable(), name);
  out.declareSignals(a.inputs(), a.outputs());
  for (StateId s = 0; s < a.stateCount(); ++s) {
    out.addState(a.stateName(s));
    out.labelWithStateName(s);
  }
  for (StateId s = 0; s < a.stateCount(); ++s) {
    for (const auto& t : a.transitionsFrom(s)) {
      out.addTransition(s, t.label, t.to);
    }
  }
  for (StateId q : a.initialStates()) out.markInitial(q);
  return out;
}

}  // namespace mui::automata
