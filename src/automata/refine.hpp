#pragma once
// Automata refinement M ⊑ M' (paper Def. 4): trace inclusion with
// label-matching end states (condition 1) plus deadlock-trace inclusion
// (condition 2). Refinement implies simulation and additionally preserves
// deadlock freedom (Lemma 1) and compositional constraints (Def. 5, Lemma 3).
//
// Two checkers are provided (DESIGN.md §6.2):
//  - checkRefinement: exact decision via a subset construction on the
//    abstract automaton. Exponential in |S'| in the worst case; fine for the
//    model sizes the learning loop produces, and used heavily in tests to
//    validate Thm. 1 and Lemmas 2/5/7.
//  - simulates: greatest-fixpoint simulation with a refusal side condition —
//    a sound, polynomial approximation (simulates ⇒ refines).
//
// `wildcardProp`, when set, marks abstract states (the closure's s_∀/s_δ)
// whose labeling is considered compatible with anything — this implements
// the paper's formula-weakening trick (Sec. 2.7) on the refinement side, as
// used in the proof of Thm. 1.

#include <optional>
#include <string>
#include <vector>

#include "automata/automaton.hpp"

namespace mui::automata {

struct RefinementResult {
  bool holds = false;
  std::string reason;  // human-readable witness on failure

  explicit operator bool() const { return holds; }
};

struct RefinementOptions {
  /// Proposition that makes an abstract state's labels match anything.
  std::optional<std::string> wildcardProp;
  /// When set, label matching compares only these propositions (both sides
  /// intersected with the set). Used for port-vs-role refinement, where a
  /// concrete component adds internal substates whose leaf propositions the
  /// role does not know about.
  std::optional<std::vector<std::string>> relevantProps;
  /// Check only condition 1 (trace inclusion with labels), skipping the
  /// deadlock-trace condition 2. Useful for role-conformance checks where a
  /// concrete component commits to one of the role's allowed schedules and
  /// thereby refuses interactions the role merely *may* take.
  bool ignoreRefusals = false;
};

/// Exact check of Def. 4: impl ⊑ abs over the given interaction alphabet
/// (the alphabet stands for ℘(I) × ℘(O) in the deadlock condition).
/// Requires both automata to share tables and to have identical I/O sets.
RefinementResult checkRefinement(const Automaton& impl, const Automaton& abs,
                                 const std::vector<Interaction>& alphabet,
                                 const RefinementOptions& opts = {});

/// Sound approximation: a split simulation preorder. Returns true only if
/// impl ⊑ abs (never a false positive); may return false for automata that
/// do refine.
bool simulates(const Automaton& impl, const Automaton& abs,
               const std::vector<Interaction>& alphabet,
               const RefinementOptions& opts = {});

}  // namespace mui::automata
