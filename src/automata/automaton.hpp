#pragma once
// The automaton model of paper Def. 1/2, extended with a state labeling
// (Sec. 2.1): M = (S, I, O, T, L, Q).
//
// Time semantics: each transition takes exactly one time unit (paper Sec. 2),
// so CCTL time bounds translate to transition counts.
//
// Automata that interact share a SignalTable (for I/O signal identity) and a
// proposition table (for labels); composition checks this.

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "automata/run.hpp"
#include "automata/signals.hpp"

namespace mui::automata {

struct Transition {
  StateId from;
  Interaction label;
  StateId to;

  bool operator==(const Transition&) const = default;
};

class Automaton {
 public:
  /// `name` is the instance name used to qualify states in renderings and
  /// auto-generated propositions (e.g. "frontRole").
  Automaton(SignalTableRef signals, SignalTableRef props,
            std::string name = {});

  /// Convenience: creates fresh shared tables.
  static Automaton withFreshTables(std::string name = {});

  // ---- Construction -------------------------------------------------------

  /// Adds a state; names must be unique within the automaton.
  StateId addState(const std::string& stateName);

  /// Adds the state if not present; returns its id either way.
  StateId ensureState(const std::string& stateName);

  void markInitial(StateId s);

  /// Declares a signal in I (resp. O), interning it in the shared table.
  util::NameId addInput(const std::string& signal);
  util::NameId addOutput(const std::string& signal);

  /// Declares whole signal sets at once (used by composition and closure
  /// constructions, where I/O sets are derived rather than built up).
  void declareSignals(const SignalSet& ins, const SignalSet& outs) {
    inputs_ |= ins;
    outputs_ |= outs;
  }

  /// Labels state `s` with atomic proposition `prop`.
  void addLabel(StateId s, const std::string& prop);

  /// Unions a whole proposition set into state `s` (Def. 3 label union).
  void addLabels(StateId s, const PropSet& props);

  /// Labels state `s` with its hierarchically decomposed qualified name:
  /// for automaton name "rearRole" and state "noConvoy::wait" this adds
  /// propositions "rearRole.noConvoy" and "rearRole.noConvoy::wait". This is
  /// the convention that lets the paper's constraints (e.g.
  /// `rearRole.convoy`) refer to component states.
  void labelWithStateName(StateId s);

  /// Adds transition (from, A, B, to); validates A ⊆ I and B ⊆ O.
  /// Duplicate transitions are ignored.
  void addTransition(StateId from, Interaction label, StateId to);

  // ---- Accessors -----------------------------------------------------------

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t stateCount() const { return stateNames_.size(); }
  [[nodiscard]] std::size_t transitionCount() const;
  [[nodiscard]] const std::string& stateName(StateId s) const;
  [[nodiscard]] std::optional<StateId> stateByName(
      const std::string& stateName) const;
  [[nodiscard]] const PropSet& labels(StateId s) const;
  [[nodiscard]] const std::vector<Transition>& transitionsFrom(
      StateId s) const;
  [[nodiscard]] const std::vector<StateId>& initialStates() const {
    return initial_;
  }
  [[nodiscard]] bool isInitial(StateId s) const;

  [[nodiscard]] const SignalSet& inputs() const { return inputs_; }
  [[nodiscard]] const SignalSet& outputs() const { return outputs_; }
  [[nodiscard]] const SignalTableRef& signalTable() const { return signals_; }
  [[nodiscard]] const SignalTableRef& propTable() const { return props_; }

  /// hasTransition / hasTransitionTo / successors are O(1) hash lookups in
  /// the per-state interaction index (the replay/testing hot path queries
  /// them once per period; they used to scan transitionsFrom linearly).
  [[nodiscard]] bool hasTransition(StateId from, const Interaction& x) const;
  [[nodiscard]] bool hasTransitionTo(StateId from, const Interaction& x,
                                     StateId to) const;
  [[nodiscard]] std::vector<StateId> successors(StateId from,
                                                const Interaction& x) const;

  /// Interactions enabled at `s` (duplicate-free, in first-occurrence order).
  [[nodiscard]] std::vector<Interaction> enabledInteractions(StateId s) const;

  // ---- Analysis ------------------------------------------------------------

  /// Composability per paper Sec. 2: I ∩ I' = ∅ and O ∩ O' = ∅, over a
  /// shared signal table.
  [[nodiscard]] bool composableWith(const Automaton& other) const;

  /// Orthogonality: composable and additionally I ∩ O' = ∅ and O ∩ I' = ∅.
  [[nodiscard]] bool orthogonalTo(const Automaton& other) const;

  /// Per-state reachability from the initial states.
  [[nodiscard]] std::vector<bool> reachableStates() const;

  /// Copy restricted to reachable states. If `oldToNew` is non-null it
  /// receives the state renumbering (UINT32_MAX for removed states).
  [[nodiscard]] Automaton prunedToReachable(
      std::vector<StateId>* oldToNew = nullptr) const;

  /// Determinism of a concrete automaton: at most one successor per
  /// (state, interaction).
  [[nodiscard]] bool deterministic() const;

  /// True iff `run` is a run of this automaton (including the deadlock
  /// condition for deadlock runs, judged against this automaton's
  /// transitions).
  [[nodiscard]] bool admitsRun(const Run& run) const;

  /// Validates internal consistency (used by tests).
  void checkInvariants() const;

  /// Graphviz rendering (regenerates the paper's automaton figures).
  [[nodiscard]] std::string toDot() const;

  /// Human-readable one-line-per-transition dump.
  [[nodiscard]] std::string toText() const;

  [[nodiscard]] std::string interactionToString(const Interaction& x) const {
    return automata::toString(x, *signals_);
  }

 private:
  SignalTableRef signals_;
  SignalTableRef props_;
  std::string name_;
  SignalSet inputs_;
  SignalSet outputs_;
  std::vector<std::string> stateNames_;
  std::unordered_map<std::string, StateId> stateIds_;
  std::vector<PropSet> labels_;
  std::vector<std::vector<Transition>> trans_;
  /// Per-state interaction index: label → successor states in insertion
  /// order. Maintained by addTransition; mirrors trans_ exactly.
  std::vector<std::unordered_map<Interaction, std::vector<StateId>,
                                 InteractionHash>>
      byLabel_;
  std::vector<StateId> initial_;
};

}  // namespace mui::automata
