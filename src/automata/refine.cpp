#include "automata/refine.hpp"

#include <deque>
#include <set>
#include <stdexcept>

namespace mui::automata {

namespace {

void validateInterfaces(const Automaton& impl, const Automaton& abs) {
  if (impl.signalTable() != abs.signalTable() ||
      impl.propTable() != abs.propTable()) {
    throw std::invalid_argument("refinement: automata must share tables");
  }
  if (!(impl.inputs() == abs.inputs()) || !(impl.outputs() == abs.outputs())) {
    throw std::invalid_argument(
        "refinement: automata must have identical I/O interfaces");
  }
}

std::optional<util::NameId> wildcardId(const Automaton& abs,
                                       const RefinementOptions& opts) {
  if (!opts.wildcardProp) return std::nullopt;
  return abs.propTable()->lookup(*opts.wildcardProp);
}

/// Precomputed label-comparison context for one (impl, abs, opts) triple.
struct LabelCmp {
  std::optional<util::NameId> wildcard;
  std::optional<PropSet> relevant;

  LabelCmp(const Automaton& abs, const RefinementOptions& opts)
      : wildcard(wildcardId(abs, opts)) {
    if (opts.relevantProps) {
      PropSet set;
      for (const auto& p : *opts.relevantProps) {
        if (auto id = abs.propTable()->lookup(p)) set.set(*id);
      }
      relevant = std::move(set);
    }
  }

  bool operator()(const Automaton& impl, StateId s, const Automaton& abs,
                  StateId t) const {
    if (wildcard && abs.labels(t).test(*wildcard)) return true;
    if (relevant) {
      return (impl.labels(s) & *relevant) == (abs.labels(t) & *relevant);
    }
    return impl.labels(s) == abs.labels(t);
  }
};

}  // namespace

RefinementResult checkRefinement(const Automaton& impl, const Automaton& abs,
                                 const std::vector<Interaction>& alphabet,
                                 const RefinementOptions& opts) {
  validateInterfaces(impl, abs);
  const LabelCmp labelMatch(abs, opts);

  struct Node {
    StateId s;
    std::vector<StateId> absStates;  // sorted, duplicate-free
    std::size_t parent;              // index into nodes; self for roots
    Interaction viaLabel;            // label from parent (roots: unused)
  };
  std::vector<Node> nodes;
  std::set<std::pair<StateId, std::vector<StateId>>> seen;
  std::deque<std::size_t> work;

  const auto traceTo = [&](std::size_t idx) {
    std::vector<std::string> parts;
    while (nodes[idx].parent != idx) {
      parts.push_back(impl.interactionToString(nodes[idx].viaLabel));
      idx = nodes[idx].parent;
    }
    std::string out = "[";
    for (std::size_t i = parts.size(); i-- > 0;) {
      out += parts[i];
      if (i) out += ", ";
    }
    return out + "]";
  };

  const auto push = [&](StateId s, std::vector<StateId> absStates,
                        std::size_t parent, const Interaction& via) {
    auto key = std::make_pair(s, absStates);
    if (!seen.insert(std::move(key)).second) return;
    nodes.push_back({s, std::move(absStates), parent, via});
    work.push_back(nodes.size() - 1);
  };

  std::vector<StateId> absInit(abs.initialStates());
  std::sort(absInit.begin(), absInit.end());
  absInit.erase(std::unique(absInit.begin(), absInit.end()), absInit.end());
  for (StateId q : impl.initialStates()) {
    const std::size_t idx = nodes.size();
    auto key = std::make_pair(q, absInit);
    if (seen.insert(key).second) {
      nodes.push_back({q, absInit, idx, Interaction{}});
      work.push_back(idx);
    }
  }
  if (!impl.initialStates().empty() && absInit.empty()) {
    return {false, "abstract automaton has no initial states"};
  }

  while (!work.empty()) {
    const std::size_t idx = work.front();
    work.pop_front();
    const StateId s = nodes[idx].s;
    const std::vector<StateId> absStates = nodes[idx].absStates;

    // Condition 1: some same-trace abstract run ends in a label-equal state.
    bool matched = false;
    for (StateId t : absStates) {
      if (labelMatch(impl, s, abs, t)) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      return {false, "condition 1 violated after trace " + traceTo(idx) +
                         ": no abstract state with matching labels for '" +
                         impl.stateName(s) + "'"};
    }

    // Condition 2: every interaction blocked in impl at s must be blockable
    // in abs on the same trace.
    for (const auto& x : alphabet) {
      if (opts.ignoreRefusals) break;
      if (impl.hasTransition(s, x)) continue;
      bool blockable = false;
      for (StateId t : absStates) {
        if (!abs.hasTransition(t, x)) {
          blockable = true;
          break;
        }
      }
      if (!blockable) {
        return {false, "condition 2 violated after trace " + traceTo(idx) +
                           ": impl refuses " + impl.interactionToString(x) +
                           " at '" + impl.stateName(s) +
                           "' but the abstraction cannot deadlock there"};
      }
    }

    // Expand per enabled interaction.
    for (const auto& x : impl.enabledInteractions(s)) {
      std::vector<StateId> next;
      for (StateId t : absStates) {
        for (StateId u : abs.successors(t, x)) next.push_back(u);
      }
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      if (next.empty()) {
        return {false, "condition 1 violated: trace " + traceTo(idx) + " + " +
                           impl.interactionToString(x) +
                           " is not a trace of the abstraction"};
      }
      for (StateId t : impl.successors(s, x)) {
        push(t, next, idx, x);
      }
    }
  }
  return {true, {}};
}

bool simulates(const Automaton& impl, const Automaton& abs,
               const std::vector<Interaction>& alphabet,
               const RefinementOptions& opts) {
  validateInterfaces(impl, abs);
  const LabelCmp labelMatch(abs, opts);
  const std::size_t n = impl.stateCount();
  const std::size_t m = abs.stateCount();

  // Shared forward-simulation refinement loop over an initial relation.
  const auto solve = [&](std::vector<std::vector<char>>& rel) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (StateId s = 0; s < n; ++s) {
        for (StateId t = 0; t < m; ++t) {
          if (!rel[s][t]) continue;
          bool ok = true;
          for (const auto& tr : impl.transitionsFrom(s)) {
            bool found = false;
            for (StateId u : abs.successors(t, tr.label)) {
              if (rel[tr.to][u]) {
                found = true;
                break;
              }
            }
            if (!found) {
              ok = false;
              break;
            }
          }
          if (!ok) {
            rel[s][t] = 0;
            changed = true;
          }
        }
      }
    }
  };

  const auto coversInitials = [&](const std::vector<std::vector<char>>& rel) {
    for (StateId q : impl.initialStates()) {
      bool any = false;
      for (StateId t : abs.initialStates()) {
        if (rel[q][t]) {
          any = true;
          break;
        }
      }
      if (!any) return false;
    }
    return true;
  };

  // R1: condition 1 (labels at every matched state).
  std::vector<std::vector<char>> r1(n, std::vector<char>(m, 0));
  for (StateId s = 0; s < n; ++s) {
    for (StateId t = 0; t < m; ++t) {
      r1[s][t] = labelMatch(impl, s, abs, t) ? 1 : 0;
    }
  }
  solve(r1);
  if (!coversInitials(r1)) return false;

  if (opts.ignoreRefusals) return true;

  // R2: condition 2 (refusals at every matched state; labels irrelevant).
  std::vector<std::vector<char>> r2(n, std::vector<char>(m, 0));
  for (StateId s = 0; s < n; ++s) {
    for (StateId t = 0; t < m; ++t) {
      bool ok = true;
      for (const auto& x : alphabet) {
        if (!impl.hasTransition(s, x) && abs.hasTransition(t, x)) {
          ok = false;
          break;
        }
      }
      r2[s][t] = ok ? 1 : 0;
    }
  }
  solve(r2);
  return coversInitials(r2);
}

}  // namespace mui::automata
