#pragma once
// The chaotic automaton (paper Def. 8) and the chaotic closure (Def. 9).
//
// chaos(M) is the safe over-approximation at the heart of the approach: it
// extends an incomplete behavioral model M of the legacy component with
// "anything could happen" continuations (s_∀ accepts everything, s_δ refuses
// everything), so that the real component always *refines* chaos(M)
// (Thm. 1) and verification verdicts transfer (Lemma 5).

#include <string>
#include <vector>

#include "automata/incomplete.hpp"

namespace mui::automata {

/// Default name of the fresh proposition p' labeling the chaotic states
/// (paper Sec. 2.7: instead of doubling chaos states per proposition subset,
/// formulas are weakened with p ↦ p ∨ p_chaos).
inline constexpr const char* kChaosProp = "p_chaos";

/// Which chaos continuations the closure adds from the (s, 1) copies.
enum class ClosureStyle {
  /// Literal Def. 9: chaos edges for every (A, B) ∉ T̄ — including
  /// interactions already in T.
  PaperExact,
  /// Chaos edges only for (A, B) ∉ T̄ ∧ (A, B) not enabled in T at s.
  /// Exploits the determinism of the legacy component (paper Sec. 4.3): a
  /// known (s, A, B) has a unique known successor, so no chaotic
  /// continuation is possible for it. This keeps Thm. 1 valid for
  /// deterministic components and guarantees that every counterexample
  /// entering chaos does so via a genuinely unknown interaction — the
  /// strict-progress property behind Thm. 2's termination (DESIGN.md §6).
  DeterministicTarget,
};

/// The chaotic closure chaos(M) with bookkeeping to map closure states back
/// to the known model.
struct Closure {
  /// How a closure state originated (Def. 9's construction).
  enum class Kind : std::uint8_t {
    Copy0,      // (s, 0): no further extension assumed — unknowns deadlock
    Copy1,      // (s, 1): all extensions assumed — unknowns lead to chaos
    ChaosAll,   // s_∀
    ChaosDelta  // s_δ
  };
  struct Origin {
    Kind kind;
    StateId knownState;  // valid for Copy0/Copy1
  };

  Automaton automaton;
  StateId sAll = 0;
  StateId sDelta = 0;
  std::vector<Origin> origins;  // indexed by closure state
  /// Twin maps: copy0[s] / copy1[s] are the closure states (s, 0) / (s, 1)
  /// of known-model state s. The copy-1 twin carries the chaos edges and is
  /// used when enumerating the component's *possible* moves.
  std::vector<StateId> copy0;
  std::vector<StateId> copy1;

  [[nodiscard]] bool isChaos(StateId s) const {
    const Kind k = origins[s].kind;
    return k == Kind::ChaosAll || k == Kind::ChaosDelta;
  }
  [[nodiscard]] bool isKnown(StateId s) const { return !isChaos(s); }
  /// Known-model state behind a Copy0/Copy1 closure state. Paper Sec. 4.2:
  /// runs treat (s, i) as equivalent to s.
  [[nodiscard]] StateId knownOrigin(StateId s) const {
    return origins[s].knownState;
  }
};

/// The maximal chaotic automaton of Def. 8 over the given interface, with
/// both states initial and both labeled `chaosProp`.
Automaton chaoticAutomaton(const SignalTableRef& signals,
                           const SignalTableRef& props, const SignalSet& ins,
                           const SignalSet& outs,
                           const std::vector<Interaction>& alphabet,
                           const std::string& name = "chaos",
                           const std::string& chaosProp = kChaosProp);

/// Which copies of the known states the closure contains.
enum class ClosureCopies {
  /// Literal Def. 9: both (s, 0) (unknown interactions deadlock — the
  /// pessimistic reading needed for deadlock-freedom checking) and (s, 1)
  /// (unknown interactions lead to chaos).
  Both,
  /// Only the (s, 1) copies: unknown continuations all go to chaos, which
  /// satisfies every weakened literal. Verifying a property on this
  /// *optimistic* closure ensures any all-known counterexample is forced by
  /// the visited states alone — i.e. real — even for bounded-liveness
  /// obligations whose witnesses need a path suffix. Dying paths here stem
  /// only from *verified* refusals (T̄), never from ignorance. Sound for
  /// property checking when deadlock freedom is established against the
  /// Both-closure (see synthesis/verifier.hpp).
  Copy1Only,
};

/// The chaotic closure of Def. 9. `alphabet` stands for ℘(I) × ℘(O) (see
/// InteractionMode). State naming: (s, 0) keeps the known state's name,
/// (s, 1) is primed ("name'"), and the chaos states are "s_all" / "s_delta"
/// as in the paper's listings. With ClosureCopies::Copy1Only the (s, 1)
/// copies keep the unprimed names (there is no twin to distinguish from).
Closure chaoticClosure(const IncompleteAutomaton& m,
                       const std::vector<Interaction>& alphabet,
                       ClosureStyle style = ClosureStyle::DeterministicTarget,
                       ClosureCopies copies = ClosureCopies::Both,
                       const std::string& chaosProp = kChaosProp);

}  // namespace mui::automata
