#include "automata/signals.hpp"

#include <algorithm>
#include <stdexcept>

namespace mui::automata {

namespace {

// Enumerates all subsets of the given base set. Throws if the base set has
// more than `kPowersetLimit` elements to protect against accidental blowup.
constexpr std::size_t kPowersetLimit = 16;

std::vector<SignalSet> subsets(const SignalSet& base) {
  const auto bits = base.bits();
  if (bits.size() > kPowersetLimit) {
    throw std::invalid_argument(
        "makeAlphabet(FullPowerset): alphabet too large (" +
        std::to_string(bits.size()) + " signals); use AtMostOneSignal");
  }
  std::vector<SignalSet> out;
  out.reserve(std::size_t{1} << bits.size());
  for (std::size_t mask = 0; mask < (std::size_t{1} << bits.size()); ++mask) {
    SignalSet s;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (mask & (std::size_t{1} << i)) s.set(bits[i]);
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

std::vector<Interaction> makeAlphabet(const SignalSet& inputs,
                                      const SignalSet& outputs,
                                      InteractionMode mode) {
  std::vector<Interaction> out;
  switch (mode) {
    case InteractionMode::FullPowerset: {
      const auto ins = subsets(inputs);
      const auto outs = subsets(outputs);
      out.reserve(ins.size() * outs.size());
      for (const auto& a : ins) {
        for (const auto& b : outs) out.push_back({a, b});
      }
      break;
    }
    case InteractionMode::AtMostOneSignal: {
      out.push_back({SignalSet{}, SignalSet{}});  // idle step
      inputs.forEach([&](std::size_t s) {
        out.push_back({SignalSet::single(s), SignalSet{}});
      });
      outputs.forEach([&](std::size_t s) {
        out.push_back({SignalSet{}, SignalSet::single(s)});
      });
      break;
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string toString(const Interaction& x, const SignalTable& signals) {
  const auto render = [&](const SignalSet& s) {
    if (s.empty()) return std::string("-");
    std::string r = "{";
    bool first = true;
    s.forEach([&](std::size_t b) {
      if (!first) r += ',';
      r += signals.name(static_cast<util::NameId>(b));
      first = false;
    });
    r += '}';
    return r;
  };
  return render(x.in) + "/" + render(x.out);
}

}  // namespace mui::automata
