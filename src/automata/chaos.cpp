#include "automata/chaos.hpp"

namespace mui::automata {

Automaton chaoticAutomaton(const SignalTableRef& signals,
                           const SignalTableRef& props, const SignalSet& ins,
                           const SignalSet& outs,
                           const std::vector<Interaction>& alphabet,
                           const std::string& name,
                           const std::string& chaosProp) {
  Automaton a(signals, props, name);
  a.declareSignals(ins, outs);
  const StateId sAll = a.addState("s_all");
  const StateId sDelta = a.addState("s_delta");
  a.addLabel(sAll, chaosProp);
  a.addLabel(sDelta, chaosProp);
  // Q_c = {s_δ, s_∀}: the component may refuse everything from the start.
  a.markInitial(sAll);
  a.markInitial(sDelta);
  // T_c: s_∀ supports every interaction and may move to s_∀ or s_δ.
  for (const auto& x : alphabet) {
    a.addTransition(sAll, x, sAll);
    a.addTransition(sAll, x, sDelta);
  }
  return a;
}

Closure chaoticClosure(const IncompleteAutomaton& m,
                       const std::vector<Interaction>& alphabet,
                       ClosureStyle style, ClosureCopies copies,
                       const std::string& chaosProp) {
  const bool both = copies == ClosureCopies::Both;
  const Automaton& base = m.base();
  Closure c{Automaton(base.signalTable(), base.propTable(), base.name()),
            0,
            0,
            {},
            {},
            {}};
  Automaton& out = c.automaton;
  out.declareSignals(base.inputs(), base.outputs());

  // 1. Double the state set: (s, 0) keeps the name, (s, 1) is primed.
  std::vector<StateId>& copy0 = c.copy0;
  std::vector<StateId>& copy1 = c.copy1;
  copy0.resize(base.stateCount());
  copy1.resize(base.stateCount());
  for (StateId s = 0; s < base.stateCount(); ++s) {
    if (both) {
      copy0[s] = out.addState(base.stateName(s));
      c.origins.push_back({Closure::Kind::Copy0, s});
      copy1[s] = out.addState(base.stateName(s) + "'");
      c.origins.push_back({Closure::Kind::Copy1, s});
      out.addLabels(copy0[s], base.labels(s));
    } else {
      copy1[s] = out.addState(base.stateName(s));
      c.origins.push_back({Closure::Kind::Copy1, s});
      copy0[s] = copy1[s];
    }
    out.addLabels(copy1[s], base.labels(s));
  }

  // ... and include the chaotic automaton (s_∀, s_δ; Def. 8 as sub-structure,
  // but *not* initial here — chaos is only reachable through (s, 1) states).
  c.sAll = out.addState("s_all");
  c.origins.push_back({Closure::Kind::ChaosAll, 0});
  c.sDelta = out.addState("s_delta");
  c.origins.push_back({Closure::Kind::ChaosDelta, 0});
  out.addLabel(c.sAll, chaosProp);
  out.addLabel(c.sDelta, chaosProp);

  // 2. Known transitions, re-choosing the copy bit at every step (all four
  // combinations, literally as in Def. 9).
  for (StateId s = 0; s < base.stateCount(); ++s) {
    for (const auto& t : base.transitionsFrom(s)) {
      out.addTransition(copy1[s], t.label, copy1[t.to]);
      if (both) {
        out.addTransition(copy0[s], t.label, copy0[t.to]);
        out.addTransition(copy0[s], t.label, copy1[t.to]);
        out.addTransition(copy1[s], t.label, copy0[t.to]);
      }
    }
  }

  // Chaos continuations from the (s, 1) copies.
  for (StateId s = 0; s < base.stateCount(); ++s) {
    for (const auto& x : alphabet) {
      if (m.isForbidden(s, x)) continue;
      if (style == ClosureStyle::DeterministicTarget &&
          base.hasTransition(s, x)) {
        continue;  // known interaction with unique known successor
      }
      out.addTransition(copy1[s], x, c.sAll);
      out.addTransition(copy1[s], x, c.sDelta);
    }
  }

  // T_c inside the closure.
  for (const auto& x : alphabet) {
    out.addTransition(c.sAll, x, c.sAll);
    out.addTransition(c.sAll, x, c.sDelta);
  }

  // Q' = {(s, 0) | s ∈ Q} ∪ {(s, 1) | s ∈ Q}.
  for (StateId q : base.initialStates()) {
    if (both) out.markInitial(copy0[q]);
    out.markInitial(copy1[q]);
  }
  return c;
}

}  // namespace mui::automata
