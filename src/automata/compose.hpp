#pragma once
// Synchronous parallel composition M ‖ M' (paper Def. 3).
//
// A product transition combines one transition from every component per time
// step; the local matching condition (A ∩ O') = B' and (A' ∩ O) = B enforces
// synchronous communication (sending and receiving happen within the same
// step). Only reachable product states are kept, as required by Def. 3.

#include <string>
#include <vector>

#include "automata/automaton.hpp"

namespace mui::automata {

/// A composed automaton plus the bookkeeping needed to project product states
/// and runs back onto the components (used for counterexample rendering and
/// for projecting a counterexample onto the legacy component, paper Sec. 4.2).
struct Product {
  Automaton automaton;
  /// Instance name of every component, in composition order.
  std::vector<std::string> componentNames;
  /// State names of every component (componentStateNames[k][s]).
  std::vector<std::vector<std::string>> componentStateNames;
  /// Component inputs/outputs, for projecting interactions.
  std::vector<SignalSet> componentInputs;
  std::vector<SignalSet> componentOutputs;
  /// origins[p][k] = state of component k in product state p.
  std::vector<std::vector<StateId>> origins;

  /// Projects a product interaction onto component k: (A'' ∩ I_k, B'' ∩ O_k).
  [[nodiscard]] Interaction projectInteraction(const Interaction& x,
                                               std::size_t k) const;

  /// Projects a product run onto component k (state ids are component k's).
  [[nodiscard]] Run projectRun(const Run& run, std::size_t k) const;

  /// Renders a product run in the paper's Listing 1.1 style: alternating
  /// state lines ("inst.state, inst.state") and interaction lines
  /// ("inst.sig!, inst.sig?").
  [[nodiscard]] std::string renderRun(const Run& run) const;
};

/// Binary composition per Def. 3. Throws std::invalid_argument if the
/// automata are not composable (shared tables, I ∩ I' = ∅, O ∩ O' = ∅).
Product compose(const Automaton& a, const Automaton& b);

/// n-ary composition: fold of binary compositions with flattened origins.
/// Requires at least one component.
Product composeAll(const std::vector<const Automaton*>& components);

}  // namespace mui::automata
