#pragma once
// Synchronous parallel composition M ‖ M' (paper Def. 3).
//
// A product transition combines one transition from every component per time
// step; the local matching condition (A ∩ O') = B' and (A' ∩ O) = B enforces
// synchronous communication (sending and receiving happen within the same
// step). Only reachable product states are kept, as required by Def. 3.

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "automata/automaton.hpp"

namespace mui::automata {

/// A composed automaton plus the bookkeeping needed to project product states
/// and runs back onto the components (used for counterexample rendering and
/// for projecting a counterexample onto the legacy component, paper Sec. 4.2).
struct Product {
  Automaton automaton;
  /// Instance name of every component, in composition order.
  std::vector<std::string> componentNames;
  /// State names of every component (componentStateNames[k][s]).
  std::vector<std::vector<std::string>> componentStateNames;
  /// Component inputs/outputs, for projecting interactions.
  std::vector<SignalSet> componentInputs;
  std::vector<SignalSet> componentOutputs;
  /// origins[p][k] = state of component k in product state p.
  std::vector<std::vector<StateId>> origins;

  /// Projects a product interaction onto component k: (A'' ∩ I_k, B'' ∩ O_k).
  [[nodiscard]] Interaction projectInteraction(const Interaction& x,
                                               std::size_t k) const;

  /// Projects a product run onto component k (state ids are component k's).
  [[nodiscard]] Run projectRun(const Run& run, std::size_t k) const;

  /// Renders a product run in the paper's Listing 1.1 style: alternating
  /// state lines ("inst.state, inst.state") and interaction lines
  /// ("inst.sig!, inst.sig?").
  [[nodiscard]] std::string renderRun(const Run& run) const;
};

/// Binary composition per Def. 3. Throws std::invalid_argument if the
/// automata are not composable (shared tables, I ∩ I' = ∅, O ∩ O' = ∅).
Product compose(const Automaton& a, const Automaton& b);

/// n-ary composition: fold of binary compositions with flattened origins.
/// Requires at least one component.
Product composeAll(const std::vector<const Automaton*>& components);

/// Reuse counters of one IncrementalComposer::compose call.
struct ComposeStats {
  std::size_t states = 0;       // product states this call
  std::size_t statesNew = 0;    // interned for the first time (name + labels
                                // constructed from scratch)
  std::size_t statesReused = 0; // served from the persistent arena
  std::size_t transitions = 0;
};

/// Composes a fixed context with a changing set of partner automata, once
/// per refinement iteration, reusing work across calls.
///
/// The refinement loop (synthesis/verifier.cpp) recomposes closure ‖ context
/// every iteration, but only the closures change — and mostly by *growing*.
/// This composer explores the product with a single n-ary frontier BFS (no
/// intermediate fold products) and interns every product state in a
/// persistent arena keyed by a caller-supplied *stable key* per component
/// state. A product state whose key tuple was seen in an earlier call reuses
/// its interned name and label set instead of rebuilding them, and keeps a
/// stable product id as long as the reachable region grows monotonically
/// (ids are assigned by first-ever-discovery order of the live states).
///
/// Contract for `StableKey(k, s)`: k is the component index (0 = context),
/// s a state of that component in the *current* call. Equal keys across
/// calls must denote states with identical name and label set; distinct
/// states of one call must map to distinct keys. The default keys states by
/// their id — correct whenever the component automata themselves are stable.
///
/// The result is equal to composeAll({&context, others...}) as an automaton
/// (same reachable states, transitions, labels and initial states; state
/// ids may be permuted between the incremental and the from-scratch path).
class IncrementalComposer {
 public:
  using StableKey = std::function<std::uint64_t(std::size_t, StateId)>;

  /// The context must outlive the composer and must not change between
  /// compose() calls.
  explicit IncrementalComposer(const Automaton& context);

  /// Composes context ‖ others[0] ‖ others[1] ‖ ….  The component count and
  /// order must be the same on every call.
  Product compose(const std::vector<const Automaton*>& others,
                  const StableKey& stableKey = {});

  [[nodiscard]] const ComposeStats& lastStats() const { return stats_; }
  /// States ever interned (arena size; memory is bounded by the full
  /// reachable product over all calls).
  [[nodiscard]] std::size_t internedStates() const { return arena_.size(); }

 private:
  struct ArenaEntry {
    std::string name;
    PropSet labels;
    std::uint64_t seq;  // first-ever-discovery order, global across calls
  };
  struct KeyVecHash {
    std::size_t operator()(const std::vector<std::uint64_t>& k) const {
      std::size_t h = 0xcbf29ce484222325ull;
      for (const std::uint64_t w : k) {
        h ^= static_cast<std::size_t>(w);
        h *= 0x100000001b3ull;
      }
      return h;
    }
  };

  const Automaton& context_;
  std::unordered_map<std::vector<std::uint64_t>, ArenaEntry, KeyVecHash>
      arena_;
  std::uint64_t nextSeq_ = 0;
  ComposeStats stats_;
};

}  // namespace mui::automata
