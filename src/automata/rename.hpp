#pragma once
// Signal renaming — the plumbing needed to insert explicit connector
// channels between components: a channel relays `m` from its source
// endpoint signal to a distinct destination endpoint signal, so the
// receiving component must be rebound to the destination names.

#include <map>
#include <string>

#include "automata/automaton.hpp"

namespace mui::automata {

/// A copy of `a` with every signal in `mapping` replaced (inputs, outputs,
/// and transition labels). Signals not mentioned are kept. The new names
/// are interned into the same shared table. Throws std::invalid_argument
/// if a mapping source is not a signal of `a`, or if a mapping target
/// collides with one of `a`'s remaining signals.
Automaton renameSignals(const Automaton& a,
                        const std::map<std::string, std::string>& mapping);

/// A copy of `a` under a new instance name, with every state freshly
/// auto-labeled with the new hierarchical qualified names (old labels are
/// dropped — this is for binding a component to a pattern role, where the
/// role's propositions must see the component's states).
Automaton withInstanceName(const Automaton& a, const std::string& name);

}  // namespace mui::automata
