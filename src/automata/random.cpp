#include "automata/random.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace mui::automata {

Automaton randomAutomaton(const RandomSpec& spec, const SignalTableRef& signals,
                          const SignalTableRef& props) {
  if (spec.states == 0) {
    throw std::invalid_argument("randomAutomaton: need at least one state");
  }
  util::Rng rng(spec.seed * 0x9e3779b97f4a7c15ull + 1);
  Automaton a(signals, props, spec.name);
  for (std::size_t i = 0; i < spec.inputs; ++i) {
    a.addInput(spec.name + "_in" + std::to_string(i));
  }
  for (std::size_t i = 0; i < spec.outputs; ++i) {
    a.addOutput(spec.name + "_out" + std::to_string(i));
  }
  for (std::size_t i = 0; i < spec.states; ++i) {
    const StateId s = a.addState(spec.name + "_q" + std::to_string(i));
    if (spec.labelStates) a.labelWithStateName(s);
  }
  a.markInitial(0);

  const auto alphabet =
      makeAlphabet(a.inputs(), a.outputs(), spec.mode);

  // Input-determinism (the legacy-component discipline of Sec. 4.3): at most
  // one response per (state, input set).
  const auto canAdd = [&](StateId from, const Interaction& x) {
    if (!spec.deterministic) return true;
    for (const auto& t : a.transitionsFrom(from)) {
      if (t.label.in == x.in) return false;
    }
    return true;
  };

  // Connectivity spine: every state k > 0 gets one incoming transition from
  // an earlier state, so the automaton is connected from the initial state.
  for (StateId k = 1; k < spec.states; ++k) {
    bool placed = false;
    for (std::size_t attempt = 0; attempt < 4 * alphabet.size() && !placed;
         ++attempt) {
      const StateId from = static_cast<StateId>(rng.below(k));
      const auto& x = alphabet[rng.below(alphabet.size())];
      if (canAdd(from, x)) {
        a.addTransition(from, x, k);
        placed = true;
      }
    }
    if (!placed) {
      // Exhaustive fallback over all (from, label) pairs.
      for (StateId from = 0; from < k && !placed; ++from) {
        for (const auto& x : alphabet) {
          if (canAdd(from, x)) {
            a.addTransition(from, x, k);
            placed = true;
            break;
          }
        }
      }
    }
    if (!placed) {
      throw std::invalid_argument(
          "randomAutomaton: alphabet too small for a deterministic "
          "connected automaton of this size");
    }
  }

  // Density fill.
  for (StateId s = 0; s < spec.states; ++s) {
    for (const auto& x : alphabet) {
      if (!canAdd(s, x)) continue;
      if (rng.chance(spec.densityPct, 100)) {
        a.addTransition(s, x, static_cast<StateId>(rng.below(spec.states)));
      }
    }
  }

  if (spec.noLocalDeadlocks) {
    const Interaction idle{};
    for (StateId s = 0; s < spec.states; ++s) {
      if (a.transitionsFrom(s).empty()) a.addTransition(s, idle, s);
    }
  }
  return a;
}

Automaton mirrored(const Automaton& a, const std::string& name) {
  Automaton m(a.signalTable(), a.propTable(), name);
  m.declareSignals(a.outputs(), a.inputs());  // swapped
  for (StateId s = 0; s < a.stateCount(); ++s) {
    const StateId t = m.addState(a.stateName(s));
    m.labelWithStateName(t);
  }
  for (StateId s = 0; s < a.stateCount(); ++s) {
    for (const auto& tr : a.transitionsFrom(s)) {
      m.addTransition(s, {tr.label.out, tr.label.in}, tr.to);
    }
  }
  for (StateId q : a.initialStates()) m.markInitial(q);
  return m;
}

Automaton subAutomaton(const Automaton& a, std::uint64_t keepPct,
                       std::uint64_t seed, const std::string& name) {
  util::Rng rng(seed * 0x2545f4914f6cdd1dull + 7);

  // Choose kept transitions: a random spanning structure from the initial
  // states plus a keepPct% sample of the remaining transitions.
  std::vector<char> visited(a.stateCount(), 0);
  std::vector<Transition> kept;
  std::vector<StateId> frontier;
  for (StateId q : a.initialStates()) {
    if (!visited[q]) {
      visited[q] = 1;
      frontier.push_back(q);
    }
  }
  while (!frontier.empty()) {
    const std::size_t pick = rng.below(frontier.size());
    const StateId s = frontier[pick];
    frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(pick));
    for (const auto& t : a.transitionsFrom(s)) {
      if (!visited[t.to]) {
        visited[t.to] = 1;
        kept.push_back(t);
        frontier.push_back(t.to);
      } else if (rng.chance(keepPct, 100)) {
        kept.push_back(t);
      }
    }
  }

  Automaton out(a.signalTable(), a.propTable(), name);
  out.declareSignals(a.inputs(), a.outputs());
  for (StateId s = 0; s < a.stateCount(); ++s) {
    const StateId t = out.addState(a.stateName(s));
    out.addLabels(t, a.labels(s));
  }
  for (const auto& t : kept) out.addTransition(t.from, t.label, t.to);
  for (StateId q : a.initialStates()) out.markInitial(q);
  return out.prunedToReachable();
}

Automaton shuffledCopy(const Automaton& a, std::uint64_t seed,
                       bool freshNames) {
  util::Rng rng(seed * 0xd1b54a32d192ed03ull + 11);
  std::vector<StateId> order(a.stateCount());
  for (StateId s = 0; s < a.stateCount(); ++s) order[s] = s;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  Automaton out(a.signalTable(), a.propTable(), a.name());
  out.declareSignals(a.inputs(), a.outputs());
  std::vector<StateId> oldToNew(a.stateCount());
  for (std::size_t k = 0; k < order.size(); ++k) {
    const StateId orig = order[k];
    const StateId fresh = out.addState(
        freshNames ? "r" + std::to_string(k) : a.stateName(orig));
    out.addLabels(fresh, a.labels(orig));
    oldToNew[orig] = fresh;
  }
  for (StateId s = 0; s < a.stateCount(); ++s) {
    for (const auto& t : a.transitionsFrom(s)) {
      out.addTransition(oldToNew[s], t.label, oldToNew[t.to]);
    }
  }
  for (StateId q : a.initialStates()) out.markInitial(oldToNew[q]);
  return out;
}

}  // namespace mui::automata
