#pragma once
// Real-Time Statecharts (RTSC) — the behavior notation of MECHATRONIC UML
// roles, connectors, and component internals (paper Sec. "Modeling").
//
// The paper maps RTSC to finite transition systems where "discrete time is
// mapped to single states and transitions" (Sec. 2). This module implements
// that mapping: an RTSC with integer clocks, location invariants, guards,
// triggers/effects and resets is *compiled* to an automata::Automaton by
// unfolding clock valuations up to (max constant + 1), saturating beyond.
//
// Step semantics (one automaton transition = one time unit):
//   1. all clocks advance by 1 (saturating at the cap);
//   2. either an RTSC transition whose guard holds for the advanced values
//      fires — consuming its trigger, emitting its effects, applying its
//      resets, and requiring the target invariant for the resulting values —
//   3. or the statechart stays in its location, which requires the location
//      invariant to hold for the advanced values. A configuration whose
//      invariant expires with no enabled transition is *stuck*: time cannot
//      progress, which surfaces as a deadlock state (the δ of Sec. 2.1) —
//      exactly how missed deadlines manifest in the verification step.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "automata/automaton.hpp"

namespace mui::rtsc {

using LocationId = std::uint32_t;
using ClockId = std::uint32_t;

struct ClockConstraint {
  enum class Rel { Le, Lt, Ge, Gt, Eq };
  ClockId clock = 0;
  Rel rel = Rel::Le;
  std::uint32_t bound = 0;

  [[nodiscard]] bool eval(std::uint32_t value) const;
};

/// Conjunction of clock constraints; empty = true.
using Guard = std::vector<ClockConstraint>;

struct RtscTransition {
  LocationId from = 0;
  LocationId to = 0;
  /// Input message consumed when firing (at most one per step, matching the
  /// AtMostOneSignal interaction discipline of the RailCab models).
  std::optional<std::string> trigger;
  /// Output messages emitted when firing.
  std::vector<std::string> effects;
  Guard guard;
  std::vector<ClockId> resets;
};

struct Location {
  std::string name;
  /// Conjunction; staying in (or entering) the location requires it.
  Guard invariant;
};

class RealTimeStatechart {
 public:
  explicit RealTimeStatechart(std::string name = {});

  // ---- Construction --------------------------------------------------------

  LocationId addLocation(const std::string& name, Guard invariant = {});
  ClockId addClock(const std::string& name);
  void declareInput(const std::string& message);
  void declareOutput(const std::string& message);
  void addTransition(RtscTransition t);
  void setInitial(LocationId l);

  // ---- Accessors -----------------------------------------------------------

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t locationCount() const { return locations_.size(); }
  [[nodiscard]] std::size_t clockCount() const { return clocks_.size(); }
  [[nodiscard]] const Location& location(LocationId l) const;
  [[nodiscard]] const std::vector<RtscTransition>& transitions() const {
    return transitions_;
  }
  [[nodiscard]] const std::vector<std::string>& inputs() const {
    return inputs_;
  }
  [[nodiscard]] const std::vector<std::string>& outputs() const {
    return outputs_;
  }
  [[nodiscard]] std::optional<LocationId> locationByName(
      const std::string& name) const;
  [[nodiscard]] std::optional<LocationId> initialLocation() const {
    return initial_;
  }

  /// Largest constant in any guard or invariant; clock values saturate at
  /// maxConstant() + 1 during compilation.
  [[nodiscard]] std::uint32_t maxConstant() const;

  /// Validates the statechart; throws std::invalid_argument with a
  /// description of the first problem (no initial location, dangling
  /// location/clock references, undeclared trigger/effect messages).
  void checkWellFormed() const;

  // ---- Compilation ---------------------------------------------------------

  /// Unfolds to the discrete automaton model over the shared tables. States
  /// are named "loc" (clock-free) or "loc@c1=v,...". Every state is labeled
  /// with the hierarchical location propositions ("<instance>.<loc prefix>")
  /// so CCTL constraints can refer to locations regardless of clock values.
  /// `instanceName` overrides the statechart name as automaton name and
  /// proposition prefix — a pattern role compiles under its *role* name.
  [[nodiscard]] automata::Automaton compile(
      const automata::SignalTableRef& signals,
      const automata::SignalTableRef& props,
      const std::string& instanceName = {}) const;

 private:
  std::string name_;
  std::vector<Location> locations_;
  std::vector<std::string> clocks_;
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
  std::vector<RtscTransition> transitions_;
  std::optional<LocationId> initial_;
};

}  // namespace mui::rtsc
