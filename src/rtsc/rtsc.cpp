#include "rtsc/rtsc.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>

namespace mui::rtsc {

bool ClockConstraint::eval(std::uint32_t value) const {
  switch (rel) {
    case Rel::Le:
      return value <= bound;
    case Rel::Lt:
      return value < bound;
    case Rel::Ge:
      return value >= bound;
    case Rel::Gt:
      return value > bound;
    case Rel::Eq:
      return value == bound;
  }
  return false;
}

RealTimeStatechart::RealTimeStatechart(std::string name)
    : name_(std::move(name)) {}

LocationId RealTimeStatechart::addLocation(const std::string& name,
                                           Guard invariant) {
  if (locationByName(name)) {
    throw std::invalid_argument("RTSC: duplicate location '" + name + "'");
  }
  locations_.push_back({name, std::move(invariant)});
  return static_cast<LocationId>(locations_.size() - 1);
}

ClockId RealTimeStatechart::addClock(const std::string& name) {
  clocks_.push_back(name);
  return static_cast<ClockId>(clocks_.size() - 1);
}

void RealTimeStatechart::declareInput(const std::string& message) {
  if (std::find(inputs_.begin(), inputs_.end(), message) == inputs_.end()) {
    inputs_.push_back(message);
  }
}

void RealTimeStatechart::declareOutput(const std::string& message) {
  if (std::find(outputs_.begin(), outputs_.end(), message) == outputs_.end()) {
    outputs_.push_back(message);
  }
}

void RealTimeStatechart::addTransition(RtscTransition t) {
  transitions_.push_back(std::move(t));
}

void RealTimeStatechart::setInitial(LocationId l) {
  if (l >= locations_.size()) {
    throw std::out_of_range("RTSC::setInitial: bad location");
  }
  initial_ = l;
}

const Location& RealTimeStatechart::location(LocationId l) const {
  if (l >= locations_.size()) {
    throw std::out_of_range("RTSC::location: bad location");
  }
  return locations_[l];
}

std::optional<LocationId> RealTimeStatechart::locationByName(
    const std::string& name) const {
  for (LocationId l = 0; l < locations_.size(); ++l) {
    if (locations_[l].name == name) return l;
  }
  return std::nullopt;
}

std::uint32_t RealTimeStatechart::maxConstant() const {
  std::uint32_t m = 0;
  const auto scan = [&](const Guard& g) {
    for (const auto& c : g) m = std::max(m, c.bound);
  };
  for (const auto& l : locations_) scan(l.invariant);
  for (const auto& t : transitions_) scan(t.guard);
  return m;
}

void RealTimeStatechart::checkWellFormed() const {
  if (!initial_) {
    throw std::invalid_argument("RTSC '" + name_ + "': no initial location");
  }
  const auto checkGuard = [&](const Guard& g, const std::string& where) {
    for (const auto& c : g) {
      if (c.clock >= clocks_.size()) {
        throw std::invalid_argument("RTSC '" + name_ + "': unknown clock in " +
                                    where);
      }
    }
  };
  for (const auto& l : locations_) checkGuard(l.invariant, l.name);
  for (const auto& t : transitions_) {
    if (t.from >= locations_.size() || t.to >= locations_.size()) {
      throw std::invalid_argument("RTSC '" + name_ +
                                  "': transition references unknown location");
    }
    checkGuard(t.guard, "transition guard");
    for (ClockId c : t.resets) {
      if (c >= clocks_.size()) {
        throw std::invalid_argument("RTSC '" + name_ +
                                    "': reset of unknown clock");
      }
    }
    if (t.trigger && std::find(inputs_.begin(), inputs_.end(), *t.trigger) ==
                         inputs_.end()) {
      throw std::invalid_argument("RTSC '" + name_ + "': trigger '" +
                                  *t.trigger + "' is not a declared input");
    }
    for (const auto& e : t.effects) {
      if (std::find(outputs_.begin(), outputs_.end(), e) == outputs_.end()) {
        throw std::invalid_argument("RTSC '" + name_ + "': effect '" + e +
                                    "' is not a declared output");
      }
    }
  }
}

namespace {

using ClockVals = std::vector<std::uint32_t>;

bool holds(const Guard& g, const ClockVals& v) {
  for (const auto& c : g) {
    if (!c.eval(v[c.clock])) return false;
  }
  return true;
}

std::string configName(const RealTimeStatechart& sc, LocationId l,
                       const ClockVals& v) {
  std::string n = sc.location(l).name;
  if (!v.empty()) {
    n += "@";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) n += ",";
      n += std::to_string(v[i]);
    }
  }
  return n;
}

}  // namespace

automata::Automaton RealTimeStatechart::compile(
    const automata::SignalTableRef& signals,
    const automata::SignalTableRef& props,
    const std::string& instanceName) const {
  checkWellFormed();
  const std::string& inst = instanceName.empty() ? name_ : instanceName;
  automata::Automaton out(signals, props, inst);
  for (const auto& m : inputs_) out.addInput(m);
  for (const auto& m : outputs_) out.addOutput(m);

  const std::uint32_t cap = maxConstant() + 1;

  // Hierarchical location labels (ignoring the clock part of state names).
  const auto labelWithLocation = [&](automata::StateId s, LocationId l) {
    const std::string& n = locations_[l].name;
    const std::string prefix = inst.empty() ? std::string() : inst + ".";
    std::size_t pos = 0;
    while (true) {
      const std::size_t sep = n.find("::", pos);
      if (sep == std::string::npos) break;
      out.addLabel(s, prefix + n.substr(0, sep));
      pos = sep + 2;
    }
    out.addLabel(s, prefix + n);
  };

  std::map<std::pair<LocationId, ClockVals>, automata::StateId> ids;
  std::deque<std::pair<LocationId, ClockVals>> work;
  const auto ensure = [&](LocationId l, const ClockVals& v) {
    const auto key = std::make_pair(l, v);
    const auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    const automata::StateId s = out.addState(configName(*this, l, v));
    labelWithLocation(s, l);
    ids.emplace(key, s);
    work.push_back(key);
    return s;
  };

  const ClockVals zero(clocks_.size(), 0);
  out.markInitial(ensure(*initial_, zero));

  const auto interaction = [&](const RtscTransition& t) {
    automata::Interaction x;
    if (t.trigger) x.in.set(signals->intern(*t.trigger));
    for (const auto& e : t.effects) x.out.set(signals->intern(e));
    return x;
  };

  while (!work.empty()) {
    const auto [loc, vals] = work.front();
    work.pop_front();
    const automata::StateId from = ids.at({loc, vals});

    // 1. Time advances by one unit (saturating).
    ClockVals advanced = vals;
    for (auto& v : advanced) v = std::min(v + 1, cap);

    // 2. Fire an enabled transition...
    for (const auto& t : transitions_) {
      if (t.from != loc || !holds(t.guard, advanced)) continue;
      ClockVals next = advanced;
      for (ClockId c : t.resets) next[c] = 0;
      if (!holds(locations_[t.to].invariant, next)) continue;
      out.addTransition(from, interaction(t), ensure(t.to, next));
    }

    // 3. ... or let time pass in place, while the invariant allows it.
    if (holds(locations_[loc].invariant, advanced)) {
      out.addTransition(from, automata::Interaction{}, ensure(loc, advanced));
    }
  }
  return out;
}

}  // namespace mui::rtsc
