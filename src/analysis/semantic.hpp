#pragma once
// The semantic static-analysis tier (rules MUI101+) — a flow-sensitive,
// whole-integration analyzer layered above the syntactic lint (MUI001-010).
//
// Where the MUI0xx rules look at each entity in isolation, this tier reasons
// about the *composition* the verification loop would explore: it builds the
// synchronous product of the pattern context with a concrete legacy stand-in
// (and, for the chaos diagnostics, with the iteration-0 chaotic closure),
// computes shared graph substrates once per job — forward reachability,
// Tarjan SCCs, and a dominator-style must-pass analysis — and derives
// verdict-level facts from them:
//
//   MUI101 statically-proven property   every reachable product state
//          satisfies the AG-safety property and none deadlocks — the
//          integration verdict is pre-solved to *proven*, with a per-conjunct
//          proof artifact.
//   MUI102 guaranteed violation/chaos reachability   a property violation or
//          deadlock is reachable in the composition (pessimistic verdict
//          statically known: *real error*), with the dominator chain every
//          counterexample must pass through; the diagnostic also reports
//          when the iteration-0 chaotic closure already reaches chaos, i.e.
//          the loop cannot conclude without learning.
//   MUI103 divergence/livelock SCC   a reachable non-trivial SCC whose
//          transitions exchange no signals and which has no exit — the
//          composition can spin forever without progress.
//   MUI104 dead transition under composition   a component transition that
//          is locally enabled but fires in no reachable product step.
//   MUI105 interface coverage gap   flow-sensitive send/receive coverage
//          between legacy stub and context, beyond MUI004's declared-name
//          matching: a trigger no reachable context transition ever emits,
//          or an emission no reachable context transition ever consumes.
//
// Two entry points share the substrates:
//
//   presolveIntegration() — the engine's pre-solve stage (engine/runner.cpp,
//   also reached through the serve dispatch path): decides φ ∧ ¬δ for the
//   supported AG-safety fragment directly on the composed product and
//   short-circuits the refinement loop when definitive. Soundness is
//   differential-tested against the worklist checker by fuzz oracle O6.
//
//   runSemantic() — the `mui analyze` surface: every pattern × role × (model
//   automaton composable as that role's legacy stand-in) combination is
//   analyzed, producing MUI1xx diagnostics with related-location chains.
//
// Findings honor the same `allow MUIxxx;` suppression clauses and RuleSet
// disabling as the syntactic tier. analysis::run never emits MUI1xx rules;
// the tiers stay separate so the cheap lint pre-flight keeps its cost.

#include <cstddef>
#include <string>

#include "analysis/diagnostic.hpp"
#include "analysis/rules.hpp"
#include "automata/automaton.hpp"
#include "muml/model.hpp"

namespace mui::analysis {

struct SemanticOptions {
  /// Product-state exploration budget. When a composition exceeds the cap,
  /// proofs (MUI101) are withheld — only refutations found inside the
  /// explored prefix remain definitive.
  std::size_t stateCap = 50000;
  /// Cap on related-location notes attached per diagnostic (dominator
  /// chains, per-conjunct proof artifacts).
  std::size_t maxRelated = 8;
};

/// Verdict of the static pre-solve stage.
enum class PresolveVerdict {
  Proved,   // φ ∧ ¬δ holds on the composition (MUI101)
  Refuted,  // a violation or deadlock is reachable (MUI102)
  Skipped,  // outside the supported fragment / over budget / not composable
};

/// "proved" / "refuted" / "skipped" (metrics + journal vocabulary).
const char* presolveVerdictName(PresolveVerdict v);

struct PresolveOutcome {
  PresolveVerdict verdict = PresolveVerdict::Skipped;
  /// MUI101 for Proved, MUI102 for Refuted, empty for Skipped.
  std::string ruleId;
  /// Human-readable justification (witness state / per-conjunct summary for
  /// definitive verdicts, the reason for skipping otherwise).
  std::string explanation;
  /// Reachable product states explored.
  std::size_t productStates = 0;
};

/// Statically decides the integration verdict of `context ‖ hidden` against
/// the CCTL `property` text (empty = deadlock freedom only), mirroring the
/// semantics of ctl::verify on the concrete composition: conjuncts of
/// unbounded AG over propositional bodies plus top-level propositional
/// conjuncts are evaluated by forward reachability; unknown atoms are false
/// (exactly as the checker treats them). Returns Skipped — never a wrong
/// verdict — when the property leaves that fragment, the automata are not
/// composable, or the state cap is hit before a refutation is found.
/// Never throws.
PresolveOutcome presolveIntegration(const automata::Automaton& context,
                                    const automata::Automaton& hidden,
                                    const std::string& property,
                                    const SemanticOptions& opts = {});

/// Runs the semantic tier over a whole model: per pattern, the full role
/// composition (MUI103/MUI104), and per pattern × role × composable model
/// automaton, the integration-level rules (MUI101/MUI102/MUI104/MUI105).
/// Diagnostics carry related-location chains rendered into SARIF by
/// writeSarif. Compilation failures of ill-formed patterns are skipped
/// (the syntactic tier reports those).
Report runSemantic(const muml::Model& model,
                   const RuleSet& rules = RuleSet::all(),
                   const SemanticOptions& opts = {});

}  // namespace mui::analysis
