#pragma once
// Diagnostic vocabulary of the model lint subsystem (mui::analysis).
//
// The paper's verification/testing/learning loop silently degrades when its
// *inputs* are malformed: a mistyped formula atom never holds, an automaton
// without initial states verifies everything vacuously, a sink state is a
// structural deadlock the checker will dutifully report every iteration.
// The lint layer finds such problems statically and reports them as
// Diagnostics — one finding each, carrying a stable rule id (MUI001…), a
// severity, the entity it is about, and (when the model came from a .muml
// file) the source location recorded by the loader.

#include <cstddef>
#include <string>
#include <vector>

#include "util/parse.hpp"

namespace mui::analysis {

enum class Severity {
  Note,     // informational; never affects exit codes or batch gating
  Warning,  // suspicious; `mui lint` exits 1
  Error,    // verification over this model is meaningless; batch jobs are
            // short-circuited to engine-error rows
};

/// "note" / "warning" / "error".
const char* severityName(Severity s);

/// A supporting note attached to a finding — the semantic tier (MUI1xx)
/// uses chains of these for proof artifacts: the dominator states every
/// counterexample must pass through, or the per-conjunct reachability facts
/// behind a pre-solved verdict. Rendered as SARIF relatedLocations.
struct RelatedNote {
  std::string message;
  util::SourceLoc loc;  // unknown for facts about synthesized products
};

/// One lint finding.
struct Diagnostic {
  std::string ruleId;    // stable id, e.g. "MUI003"
  Severity severity = Severity::Warning;
  std::string subject;   // entity (automaton/rtsc/pattern) it is about
  std::string message;   // human-readable, without location or severity
  util::SourceLoc loc;   // unknown for programmatically built models
  std::vector<RelatedNote> related;  // supporting chain, most causal first

  /// "file:3:7: warning: message [MUI003]" (location omitted if unknown).
  [[nodiscard]] std::string toString() const;
};

/// The outcome of one analysis::run call.
struct Report {
  std::vector<Diagnostic> diagnostics;
  /// Findings dropped because the model carries a matching `allow` clause.
  std::size_t suppressed = 0;

  [[nodiscard]] std::size_t count(Severity s) const;
  /// Any finding at `s` or above?
  [[nodiscard]] bool hasAtLeast(Severity s) const;
  /// The `mui lint` gate: no warnings and no errors (notes are fine).
  [[nodiscard]] bool clean() const { return !hasAtLeast(Severity::Warning); }
  [[nodiscard]] bool hasErrors() const { return hasAtLeast(Severity::Error); }
  /// Messages of all error-level findings (batch pre-flight explanations).
  [[nodiscard]] std::vector<std::string> errorMessages() const;
};

}  // namespace mui::analysis
