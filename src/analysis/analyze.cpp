#include "analysis/analyze.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "automata/chaos.hpp"
#include "ctl/parser.hpp"
#include "muml/channel.hpp"
#include "util/parse.hpp"

namespace mui::analysis {

namespace {

using automata::Automaton;
using automata::SignalSet;
using automata::StateId;

class Analyzer {
 public:
  Analyzer(const muml::Model& model, const RuleSet& rules)
      : model_(model), rules_(rules) {}

  Report run() {
    for (const auto& [name, aut] : model_.automata) checkAutomaton(name, aut);
    for (const auto& [name, sc] : model_.statecharts) checkRtsc(name, sc);
    for (const auto& [name, p] : model_.patterns) checkPattern(p);
    return std::move(report_);
  }

 private:
  void emit(const char* ruleId, const std::string& subject,
            const std::string& message, const util::SourceLoc& loc) {
    if (!rules_.enabled(ruleId)) return;
    if (model_.source.allows(subject, ruleId)) {
      ++report_.suppressed;
      return;
    }
    const RuleInfo* info = findRule(ruleId);
    report_.diagnostics.push_back(
        {ruleId, info ? info->defaultSeverity : Severity::Warning, subject,
         message, loc, {}});
  }

  [[nodiscard]] util::SourceLoc locOf(
      const std::map<std::string, util::SourceLoc>& table,
      const std::string& key) const {
    const auto it = table.find(key);
    return it == table.end() ? util::SourceLoc{} : it->second;
  }

  // ---- automaton rules -----------------------------------------------------

  void checkAutomaton(const std::string& name, const Automaton& a) {
    const util::SourceLoc loc = locOf(model_.source.automata, name);
    const std::string where = "automaton '" + name + "'";

    // MUI009: without an initial state everything below is vacuous; the
    // reachability-based rules are skipped to avoid a diagnostic avalanche.
    if (a.initialStates().empty()) {
      emit(kNoInitialState, name,
           where + " has no initial state; every property holds vacuously",
           loc);
      return;
    }

    // MUI001/MUI002: one reachability fixpoint serves both rules.
    const std::vector<bool> reach = a.reachableStates();
    const auto chaosId = model_.props->lookup(automata::kChaosProp);
    for (StateId s = 0; s < a.stateCount(); ++s) {
      if (!reach[s]) {
        emit(kUnreachableState, name,
             where + ": state '" + a.stateName(s) +
                 "' is unreachable from the initial states",
             loc);
        continue;
      }
      const bool chaotic = chaosId && a.labels(s).test(*chaosId);
      if (a.transitionsFrom(s).empty() && !chaotic) {
        emit(kSinkState, name,
             where + ": state '" + a.stateName(s) +
                 "' has no outgoing transition (structural deadlock)",
             loc);
      }
    }

    // MUI003: signals declared but on no transition label.
    SignalSet usedIn, usedOut;
    for (StateId s = 0; s < a.stateCount(); ++s) {
      for (const auto& t : a.transitionsFrom(s)) {
        usedIn |= t.label.in;
        usedOut |= t.label.out;
      }
    }
    const auto reportUnused = [&](const SignalSet& declared,
                                  const SignalSet& used, const char* dir,
                                  const char* verb) {
      (declared - used).forEach([&](std::size_t bit) {
        emit(kUnusedSignal, name,
             where + ": " + dir + " '" +
                 model_.signals->name(static_cast<util::NameId>(bit)) +
                 "' is declared but never " + verb,
             loc);
      });
    };
    reportUnused(a.inputs(), usedIn, "input", "consumed");
    reportUnused(a.outputs(), usedOut, "output", "produced");

    // MUI005: the loop's termination argument (paper Thm. 2, DESIGN.md §6)
    // and the DeterministicTarget closure assume deterministic components.
    if (!a.deterministic()) {
      for (StateId s = 0; s < a.stateCount(); ++s) {
        for (const auto& x : a.enabledInteractions(s)) {
          if (a.successors(s, x).size() > 1) {
            emit(kNondeterministicStub, name,
                 where + ": state '" + a.stateName(s) +
                     "' has multiple successors under " +
                     a.interactionToString(x) +
                     "; legacy stubs must be deterministic",
                 loc);
          }
        }
      }
    }

    // MUI006: textual duplicates the loader deduplicated.
    for (const auto& dup : model_.source.duplicateTransitions) {
      if (dup.automaton != name) continue;
      emit(kDuplicateTransition, name,
           where + ": transition '" + dup.text +
               "' is written more than once (kept one copy)",
           dup.loc);
    }
  }

  // ---- rtsc rules ----------------------------------------------------------

  void checkRtsc(const std::string& name,
                 const rtsc::RealTimeStatechart& sc) {
    const util::SourceLoc loc = locOf(model_.source.statecharts, name);
    const std::string where = "rtsc '" + name + "'";
    std::set<std::string> usedIn, usedOut;
    for (const auto& t : sc.transitions()) {
      if (t.trigger) usedIn.insert(*t.trigger);
      usedOut.insert(t.effects.begin(), t.effects.end());
    }
    for (const auto& in : sc.inputs()) {
      if (!usedIn.count(in)) {
        emit(kUnusedSignal, name,
             where + ": input '" + in + "' is declared but never consumed",
             loc);
      }
    }
    for (const auto& out : sc.outputs()) {
      if (!usedOut.count(out)) {
        emit(kUnusedSignal, name,
             where + ": output '" + out + "' is declared but never produced",
             loc);
      }
    }
  }

  // ---- pattern rules -------------------------------------------------------

  void checkPattern(const muml::CoordinationPattern& p) {
    const util::SourceLoc loc = locOf(model_.source.patterns, p.name);

    // The parts verification would compose: roles compiled under their role
    // names, plus the connector's channel automaton if there is one.
    std::vector<Automaton> parts;
    std::vector<std::string> partNames;
    for (const auto& role : p.roles) {
      parts.push_back(
          role.behavior.compile(model_.signals, model_.props, role.name));
      partNames.push_back("role '" + role.name + "'");
    }
    if (p.connector.kind == muml::ConnectorSpec::Kind::Channel) {
      parts.push_back(
          muml::makeChannel(model_.signals, model_.props,
                            p.connector.channel));
      partNames.push_back("channel connector");
    }

    checkAlphabets(p, parts, partNames, loc);

    // Valid proposition universe for the pattern's formulas: everything the
    // composed parts label their states with, plus the chaotic closure's
    // fresh proposition (constraints are checked against context ‖ chaos(M)).
    std::set<std::string> props;
    props.insert(automata::kChaosProp);
    for (const auto& part : parts) {
      for (StateId s = 0; s < part.stateCount(); ++s) {
        part.labels(s).forEach([&](std::size_t bit) {
          props.insert(model_.props->name(static_cast<util::NameId>(bit)));
        });
      }
    }

    checkFormula(p.name, "constraint", p.constraint,
                 locOf(model_.source.constraints, p.name), props);
    for (const auto& role : p.roles) {
      checkFormula(p.name, "invariant of role '" + role.name + "'",
                   role.invariant,
                   locOf(model_.source.invariants, p.name + "." + role.name),
                   props);
    }
  }

  /// MUI004 over the composition inputs: clashing I/O claims (composition
  /// would be rejected outright), outputs no peer consumes (a send that can
  /// only block under synchronous semantics), and inputs no peer produces
  /// (note-level: often environment-driven, like an emergency signal).
  void checkAlphabets(const muml::CoordinationPattern& p,
                      const std::vector<Automaton>& parts,
                      const std::vector<std::string>& partNames,
                      const util::SourceLoc& loc) {
    const std::string where = "pattern '" + p.name + "'";
    const auto signalNames = [&](const SignalSet& set) {
      std::string out;
      set.forEach([&](std::size_t bit) {
        if (!out.empty()) out += ", ";
        out += model_.signals->name(static_cast<util::NameId>(bit));
      });
      return out;
    };

    for (std::size_t i = 0; i < parts.size(); ++i) {
      for (std::size_t j = i + 1; j < parts.size(); ++j) {
        if (parts[i].inputs().intersects(parts[j].inputs())) {
          emit(kAlphabetMismatch, p.name,
               where + ": " + partNames[i] + " and " + partNames[j] +
                   " both claim input(s) " +
                   signalNames(parts[i].inputs() & parts[j].inputs()) +
                   "; composition requires disjoint inputs",
               loc);
        }
        if (parts[i].outputs().intersects(parts[j].outputs())) {
          emit(kAlphabetMismatch, p.name,
               where + ": " + partNames[i] + " and " + partNames[j] +
                   " both claim output(s) " +
                   signalNames(parts[i].outputs() & parts[j].outputs()) +
                   "; composition requires disjoint outputs",
               loc);
        }
      }
    }

    SignalSet allIn, allOut;
    for (const auto& part : parts) {
      allIn |= part.inputs();
      allOut |= part.outputs();
    }
    for (std::size_t i = 0; i < parts.size(); ++i) {
      (parts[i].outputs() - allIn).forEach([&](std::size_t bit) {
        emit(kAlphabetMismatch, p.name,
             where + ": output '" +
                 model_.signals->name(static_cast<util::NameId>(bit)) +
                 "' of " + partNames[i] +
                 " is consumed by no other part; the send can only block",
             loc);
      });
      (parts[i].inputs() - allOut).forEach([&](std::size_t bit) {
        if (!rules_.enabled(kAlphabetMismatch)) return;
        if (model_.source.allows(p.name, kAlphabetMismatch)) {
          ++report_.suppressed;
          return;
        }
        // Note-level variant of MUI004: unfed inputs are legal for
        // environment-driven signals, but worth surfacing.
        report_.diagnostics.push_back(
            {kAlphabetMismatch, Severity::Note, p.name,
             where + ": input '" +
                 model_.signals->name(static_cast<util::NameId>(bit)) +
                 "' of " + partNames[i] +
                 " is produced by no other part (environment signal?)",
             loc, {}});
      });
    }
  }

  /// MUI007/MUI008/MUI010 over one CCTL text (empty = no formula).
  void checkFormula(const std::string& pattern, const std::string& what,
                    const std::string& text, const util::SourceLoc& loc,
                    const std::set<std::string>& props) {
    if (text.empty()) return;
    const std::string where = "pattern '" + pattern + "': " + what;
    ctl::FormulaPtr phi;
    try {
      phi = ctl::parseFormula(text);
    } catch (const std::exception& e) {
      emit(kBadFormulaAtom, pattern,
           where + " does not parse: " + e.what(), loc);
      return;
    }

    std::set<std::string> unknown;
    bool degenerate = false;
    walk(phi, props, unknown, degenerate);
    for (const auto& atom : unknown) {
      emit(kBadFormulaAtom, pattern,
           where + " references unknown atom '" + atom +
               "' (no part of the composition labels a state with it)",
           loc);
    }
    if (degenerate) {
      emit(kDegenerateBound, pattern,
           where + " carries the vacuous time bound [0,0], which collapses "
               "the temporal operator to 'now'",
           loc);
    }
    if (!phi->isACTL()) {
      emit(kNonActlFormula, pattern,
           where + " is not in the ACTL fragment; the verdict does not "
               "transfer through refinement (paper Def. 5)",
           loc);
    }
  }

  static void walk(const ctl::FormulaPtr& f, const std::set<std::string>& props,
                   std::set<std::string>& unknown, bool& degenerate) {
    if (!f) return;
    if (f->op == ctl::Op::Atom && !props.count(f->atom)) {
      unknown.insert(f->atom);
    }
    switch (f->op) {
      case ctl::Op::AF:
      case ctl::Op::EF:
      case ctl::Op::AG:
      case ctl::Op::EG:
      case ctl::Op::AU:
      case ctl::Op::EU:
        // Empty windows (hi < lo) are rejected by the parser, so the only
        // degenerate bound that can reach us is the point window [0,0],
        // which collapses the temporal operator to "now".
        if (f->bound.bounded() && f->bound.lo == 0 && f->bound.hi == 0) {
          degenerate = true;
        }
        break;
      default:
        break;
    }
    walk(f->lhs, props, unknown, degenerate);
    walk(f->rhs, props, unknown, degenerate);
  }

  const muml::Model& model_;
  const RuleSet& rules_;
  Report report_;
};

}  // namespace

Report run(const muml::Model& model, const RuleSet& rules) {
  return Analyzer(model, rules).run();
}

}  // namespace mui::analysis
