#pragma once
// The lint rule registry: every rule the analyzer can compute, with its
// stable id, short kebab-case name (used by renderers and SARIF), default
// severity, and a one-line description. docs/LINT_RULES.md is the
// user-facing catalogue; tests/test_analysis.cpp holds one triggering and
// one clean model per rule.

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.hpp"

namespace mui::analysis {

struct RuleInfo {
  const char* id;           // "MUI001"
  const char* name;         // "unreachable-state"
  Severity defaultSeverity;
  const char* description;  // one line, shown in SARIF rule metadata
};

// Stable rule ids. New rules append; ids are never reused.
inline constexpr const char* kUnreachableState = "MUI001";
inline constexpr const char* kSinkState = "MUI002";
inline constexpr const char* kUnusedSignal = "MUI003";
inline constexpr const char* kAlphabetMismatch = "MUI004";
inline constexpr const char* kNondeterministicStub = "MUI005";
inline constexpr const char* kDuplicateTransition = "MUI006";
inline constexpr const char* kBadFormulaAtom = "MUI007";
inline constexpr const char* kDegenerateBound = "MUI008";
inline constexpr const char* kNoInitialState = "MUI009";
inline constexpr const char* kNonActlFormula = "MUI010";

// The semantic tier (flow-sensitive, whole-integration rules; see
// analysis/semantic.hpp). MUI1xx ids are emitted only by runSemantic /
// presolveIntegration, never by the syntactic analysis::run pass.
inline constexpr const char* kStaticallyProven = "MUI101";
inline constexpr const char* kGuaranteedViolation = "MUI102";
inline constexpr const char* kLivelockScc = "MUI103";
inline constexpr const char* kDeadTransition = "MUI104";
inline constexpr const char* kInterfaceGap = "MUI105";

/// Every known rule, in id order.
const std::vector<RuleInfo>& allRules();

/// Registry lookup; nullptr for unknown ids.
const RuleInfo* findRule(std::string_view id);

/// The set of rules one analysis::run call computes. Default-constructed =
/// everything enabled; rules can be disabled by id (CLI --disable, or a
/// caller that only cares about a subset).
class RuleSet {
 public:
  /// All registered rules enabled.
  static RuleSet all() { return {}; }

  /// Only error-severity rules — the batch engine's cheap pre-flight gate.
  static RuleSet errorsOnly();

  RuleSet& disable(std::string_view id) {
    disabled_.insert(std::string(id));
    return *this;
  }
  RuleSet& enable(std::string_view id) {
    disabled_.erase(std::string(id));
    return *this;
  }
  [[nodiscard]] bool enabled(std::string_view id) const {
    return disabled_.count(std::string(id)) == 0;
  }

 private:
  std::set<std::string> disabled_;
};

}  // namespace mui::analysis
