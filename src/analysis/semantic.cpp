#include "analysis/semantic.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "automata/chaos.hpp"
#include "automata/compose.hpp"
#include "automata/incomplete.hpp"
#include "automata/rename.hpp"
#include "automata/signals.hpp"
#include "ctl/parser.hpp"
#include "muml/channel.hpp"
#include "muml/integration.hpp"

namespace mui::analysis {

namespace {

using automata::Automaton;
using automata::Interaction;
using automata::SignalSet;
using automata::StateId;

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

// ---- AG-safety fragment ----------------------------------------------------

bool isPropositional(const ctl::Formula* f) {
  if (f == nullptr) return false;
  switch (f->op) {
    case ctl::Op::True:
    case ctl::Op::False:
    case ctl::Op::Deadlock:
    case ctl::Op::Atom:
      return true;
    case ctl::Op::Not:
      return isPropositional(f->lhs.get());
    case ctl::Op::And:
    case ctl::Op::Or:
    case ctl::Op::Implies:
      return isPropositional(f->lhs.get()) && isPropositional(f->rhs.get());
    default:
      return false;
  }
}

bool mentionsDeadlock(const ctl::Formula* f) {
  if (f == nullptr) return false;
  if (f->op == ctl::Op::Deadlock) return true;
  return mentionsDeadlock(f->lhs.get()) || mentionsDeadlock(f->rhs.get());
}

/// φ split into what the pre-solver decides by reachability: conjuncts of
/// *unbounded* AG over propositional bodies, plus top-level propositional
/// conjuncts (evaluated at the initial states). `complete` means the whole
/// property falls into the fragment — required for proving; refuting only
/// needs one violated conjunct.
struct SafetyFragment {
  ctl::FormulaPtr root;  // keeps conjunct pointers alive
  std::vector<const ctl::Formula*> agConjuncts;  // the AG nodes
  std::vector<const ctl::Formula*> nowConjuncts;
  bool parsed = false;
  bool complete = false;
};

SafetyFragment splitSafety(const std::string& property) {
  SafetyFragment out;
  out.parsed = true;
  out.complete = true;
  if (property.empty()) return out;
  try {
    out.root = ctl::parseFormula(property);
  } catch (const std::exception&) {
    out.parsed = false;
    out.complete = false;
    return out;
  }
  std::deque<const ctl::Formula*> work{out.root.get()};
  while (!work.empty()) {
    const ctl::Formula* f = work.front();
    work.pop_front();
    if (f->op == ctl::Op::And) {
      work.push_back(f->lhs.get());
      work.push_back(f->rhs.get());
    } else if (f->op == ctl::Op::AG && !f->bound.bounded() &&
               f->bound.lo == 0 && isPropositional(f->lhs.get())) {
      out.agConjuncts.push_back(f);
    } else if (isPropositional(f)) {
      out.nowConjuncts.push_back(f);
    } else {
      out.complete = false;
    }
  }
  return out;
}

// ---- Product exploration ---------------------------------------------------

/// The synchronous product context ‖ partner, explored breadth-first under a
/// state cap with the exact matching rule of automata::compose (Def. 3).
/// Keeps the per-node origin pair, the BFS tree (for witness paths), edge
/// silence (for the livelock rule), and which partner transitions fired
/// (for the dead-transition rule).
struct ProductGraph {
  struct Edge {
    std::size_t to;
    bool silent;  // the joint interaction exchanges no signals
  };

  const Automaton* ctx = nullptr;
  const Automaton* stub = nullptr;
  std::vector<StateId> ctxState;   // per node
  std::vector<StateId> stubState;  // per node
  std::vector<std::size_t> parent;  // BFS tree; self-index for initials
  std::vector<std::vector<Edge>> succ;
  std::vector<char> expanded;
  std::size_t initialCount = 0;  // nodes [0, initialCount) are initial
  bool capped = false;
  /// firedStub[s] parallels stub->transitionsFrom(s): transition fired in
  /// some explored product step.
  std::vector<std::vector<char>> firedStub;

  [[nodiscard]] std::size_t size() const { return ctxState.size(); }
  [[nodiscard]] std::string name(std::size_t n) const {
    return ctx->stateName(ctxState[n]) + "|" + stub->stateName(stubState[n]);
  }
  [[nodiscard]] std::size_t depth(std::size_t n) const {
    std::size_t d = 0;
    while (parent[n] != n) {
      n = parent[n];
      ++d;
    }
    return d;
  }
};

ProductGraph explore(const Automaton& ctx, const Automaton& stub,
                     std::size_t cap) {
  ProductGraph g;
  g.ctx = &ctx;
  g.stub = &stub;
  g.firedStub.resize(stub.stateCount());
  for (StateId s = 0; s < stub.stateCount(); ++s) {
    g.firedStub[s].assign(stub.transitionsFrom(s).size(), 0);
  }

  std::unordered_map<std::uint64_t, std::size_t> ids;
  const auto key = [](StateId a, StateId b) {
    return (std::uint64_t{a} << 32) | b;
  };
  std::deque<std::size_t> work;
  const auto ensure = [&](StateId a, StateId b,
                          std::size_t from) -> std::size_t {
    const auto it = ids.find(key(a, b));
    if (it != ids.end()) return it->second;
    if (g.size() >= cap) {
      g.capped = true;
      return kNone;
    }
    const std::size_t n = g.size();
    ids.emplace(key(a, b), n);
    g.ctxState.push_back(a);
    g.stubState.push_back(b);
    g.parent.push_back(from == kNone ? n : from);
    g.succ.emplace_back();
    g.expanded.push_back(0);
    work.push_back(n);
    return n;
  };

  for (StateId qa : ctx.initialStates()) {
    for (StateId qb : stub.initialStates()) {
      ensure(qa, qb, kNone);
    }
  }
  g.initialCount = g.size();

  while (!work.empty()) {
    const std::size_t n = work.front();
    work.pop_front();
    const StateId sa = g.ctxState[n];
    const StateId sb = g.stubState[n];
    bool complete = true;
    const auto& fromCtx = ctx.transitionsFrom(sa);
    const auto& fromStub = stub.transitionsFrom(sb);
    for (const auto& ta : fromCtx) {
      for (std::size_t j = 0; j < fromStub.size(); ++j) {
        const auto& tb = fromStub[j];
        // Matching condition of Def. 3 (see automata/compose.cpp): what one
        // side reads of the other's outputs must be exactly what the other
        // writes into its inputs.
        if ((ta.label.in & stub.outputs()) != (tb.label.out & ctx.inputs())) {
          continue;
        }
        if ((tb.label.in & ctx.outputs()) != (ta.label.out & stub.inputs())) {
          continue;
        }
        const std::size_t to = ensure(ta.to, tb.to, n);
        if (to == kNone) {
          complete = false;
          continue;
        }
        g.firedStub[sb][j] = 1;
        const Interaction joint{ta.label.in | tb.label.in,
                                ta.label.out | tb.label.out};
        g.succ[n].push_back({to, joint.idle()});
      }
    }
    // A node whose successor set was truncated by the cap must not be
    // mistaken for a deadlock.
    g.expanded[n] = complete ? 1 : 0;
  }
  return g;
}

// ---- Propositional evaluation ----------------------------------------------

/// Evaluates a propositional body at one product node. Atom semantics mirror
/// ctl::Checker exactly: an atom holds iff some component state of the node
/// carries the label; unknown atoms are false. Op::Deadlock is structural
/// (no outgoing product transition) and only trustworthy on expanded nodes.
class PropEval {
 public:
  explicit PropEval(const ProductGraph& g)
      : g_(g), props_(*g.ctx->propTable()) {}

  [[nodiscard]] bool eval(const ctl::Formula* f, std::size_t n) const {
    switch (f->op) {
      case ctl::Op::True:
        return true;
      case ctl::Op::False:
        return false;
      case ctl::Op::Deadlock:
        return g_.succ[n].empty();
      case ctl::Op::Atom: {
        const auto id = props_.lookup(f->atom);
        if (!id) return false;
        return g_.ctx->labels(g_.ctxState[n]).test(*id) ||
               g_.stub->labels(g_.stubState[n]).test(*id);
      }
      case ctl::Op::Not:
        return !eval(f->lhs.get(), n);
      case ctl::Op::And:
        return eval(f->lhs.get(), n) && eval(f->rhs.get(), n);
      case ctl::Op::Or:
        return eval(f->lhs.get(), n) || eval(f->rhs.get(), n);
      case ctl::Op::Implies:
        return !eval(f->lhs.get(), n) || eval(f->rhs.get(), n);
      default:
        return false;  // unreachable: bodies are pre-checked propositional
    }
  }

 private:
  const ProductGraph& g_;
  const util::NameTable& props_;
};

// ---- Dominators (must-pass analysis) ---------------------------------------

/// Immediate dominators of the explored product graph under a virtual root
/// that feeds every initial node (Cooper–Harvey–Kennedy iteration over
/// reverse post-order). idom[n] == kNone means "dominated by the root only"
/// (or unreachable). The chain idom*(target) is exactly the set of states
/// every path from an initial state to `target` must pass through.
std::vector<std::size_t> immediateDominators(const ProductGraph& g) {
  const std::size_t n = g.size();
  std::vector<std::size_t> order;  // post-order
  order.reserve(n);
  std::vector<char> seen(n, 0);
  for (std::size_t r = 0; r < g.initialCount; ++r) {
    if (seen[r]) continue;
    // Iterative DFS with an explicit edge cursor.
    std::vector<std::pair<std::size_t, std::size_t>> stack{{r, 0}};
    seen[r] = 1;
    while (!stack.empty()) {
      auto& [v, cursor] = stack.back();
      if (cursor < g.succ[v].size()) {
        const std::size_t w = g.succ[v][cursor++].to;
        if (!seen[w]) {
          seen[w] = 1;
          stack.emplace_back(w, 0);
        }
      } else {
        order.push_back(v);
        stack.pop_back();
      }
    }
  }

  std::vector<std::size_t> rpoIndex(n, kNone);
  for (std::size_t i = 0; i < order.size(); ++i) {
    rpoIndex[order[i]] = order.size() - 1 - i;
  }
  std::vector<std::vector<std::size_t>> preds(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (const auto& e : g.succ[v]) preds[e.to].push_back(v);
  }

  // idom in node indices; kNone plays the role of the virtual root.
  std::vector<std::size_t> idom(n, kNone);
  std::vector<char> processed(n, 0);
  for (std::size_t r = 0; r < g.initialCount; ++r) processed[r] = 1;

  const auto intersect = [&](std::size_t a, std::size_t b) {
    // Walk both fingers up to the common dominator; kNone (the root)
    // absorbs everything.
    while (a != b) {
      if (a == kNone || b == kNone) return kNone;
      while (a != kNone && b != kNone && rpoIndex[a] > rpoIndex[b]) {
        a = idom[a];
      }
      if (a == b) break;
      while (a != kNone && b != kNone && rpoIndex[b] > rpoIndex[a]) {
        b = idom[b];
      }
    }
    return a == b ? a : kNone;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    // order[] is post-order; iterating it back to front is RPO.
    for (std::size_t i = order.size(); i-- > 0;) {
      const std::size_t v = order[i];
      if (v < g.initialCount) continue;  // initials: dominated by the root
      std::size_t best = kNone;
      bool first = true;
      for (const std::size_t p : preds[v]) {
        if (!processed[p]) continue;
        best = first ? p : intersect(best, p);
        first = false;
      }
      if (first) continue;  // no processed predecessor yet
      processed[v] = 1;
      if (idom[v] != best) {
        idom[v] = best;
        changed = true;
      }
    }
  }
  return idom;
}

/// The must-pass chain to `target`: its proper dominators, initial-most
/// first. Capped at `maxLen`.
std::vector<std::size_t> mustPassChain(const std::vector<std::size_t>& idom,
                                       std::size_t target,
                                       std::size_t maxLen) {
  std::vector<std::size_t> chain;
  for (std::size_t d = idom[target]; d != kNone; d = idom[d]) {
    chain.push_back(d);
    if (chain.size() >= maxLen) break;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

// ---- Tarjan SCCs -----------------------------------------------------------

/// Iterative Tarjan over a successor-list graph. Returns the component id
/// per node and the component count.
std::vector<std::size_t> stronglyConnected(
    const std::vector<std::vector<ProductGraph::Edge>>& succ,
    std::size_t& componentCount) {
  const std::size_t n = succ.size();
  std::vector<std::size_t> comp(n, kNone), low(n, 0), index(n, kNone);
  std::vector<std::size_t> stack;
  std::vector<char> onStack(n, 0);
  std::size_t next = 0;
  componentCount = 0;

  struct Frame {
    std::size_t v;
    std::size_t cursor;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kNone) continue;
    std::vector<Frame> frames{{root, 0}};
    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::size_t v = f.v;
      if (f.cursor == 0) {
        index[v] = low[v] = next++;
        stack.push_back(v);
        onStack[v] = 1;
      }
      if (f.cursor < succ[v].size()) {
        const std::size_t w = succ[v][f.cursor++].to;
        if (index[w] == kNone) {
          frames.push_back({w, 0});
        } else if (onStack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
      } else {
        if (low[v] == index[v]) {
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            onStack[w] = 0;
            comp[w] = componentCount;
            if (w == v) break;
          }
          ++componentCount;
        }
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
  return comp;
}

// ---- Integration analysis (MUI101/MUI102 substrate) ------------------------

struct IntegrationAnalysis {
  ProductGraph graph;
  SafetyFragment fragment;
  PresolveOutcome outcome;
  /// Refutation witness: violating/deadlocked node, and the violated AG
  /// conjunct (nullptr for a deadlock or initial-state violation).
  std::size_t witness = kNone;
  const ctl::Formula* violated = nullptr;
  bool witnessIsDeadlock = false;
};

IntegrationAnalysis analyzeIntegration(const Automaton& context,
                                       const Automaton& hidden,
                                       const std::string& property,
                                       const SemanticOptions& opts) {
  IntegrationAnalysis a;
  auto& out = a.outcome;

  if (context.signalTable() != hidden.signalTable() ||
      context.propTable() != hidden.propTable()) {
    out.explanation = "context and stub do not share signal tables";
    return a;
  }
  if (!context.composableWith(hidden)) {
    out.explanation = "context and stub are not composable";
    return a;
  }
  a.fragment = splitSafety(property);
  if (!a.fragment.parsed) {
    out.explanation = "property does not parse";
    return a;
  }
  // Even with no supported conjunct the exploration is worthwhile: a
  // reachable deadlock refutes φ ∧ ¬δ outright.
  a.graph = explore(context, hidden, opts.stateCap);
  const ProductGraph& g = a.graph;
  out.productStates = g.size();
  const PropEval eval(g);

  // Refutation 1: a reachable state violating a supported AG conjunct.
  // Sound even when capped or when other conjuncts are unsupported — one
  // failing conjunct fails the conjunction. Deadlock-mentioning bodies are
  // only evaluated when the graph is complete (succ sets are exact).
  for (const ctl::Formula* ag : a.fragment.agConjuncts) {
    const ctl::Formula* body = ag->lhs.get();
    if (g.capped && mentionsDeadlock(body)) continue;
    for (std::size_t n = 0; n < g.size(); ++n) {
      if (g.capped && !g.expanded[n] && mentionsDeadlock(body)) continue;
      if (!eval.eval(body, n)) {
        a.witness = n;
        a.violated = ag;
        out.verdict = PresolveVerdict::Refuted;
        out.ruleId = kGuaranteedViolation;
        out.explanation = "presolved: real error - reachable state '" +
                          g.name(n) + "' (depth " + std::to_string(g.depth(n)) +
                          ") violates '" + ag->toString() + "'";
        return a;
      }
    }
  }

  // Refutation 2: a top-level propositional conjunct failing at an initial
  // state.
  for (const ctl::Formula* now : a.fragment.nowConjuncts) {
    if (g.capped && mentionsDeadlock(now)) continue;
    for (std::size_t n = 0; n < g.initialCount; ++n) {
      if (!eval.eval(now, n)) {
        a.witness = n;
        out.verdict = PresolveVerdict::Refuted;
        out.ruleId = kGuaranteedViolation;
        out.explanation =
            "presolved: real error - initial state '" + g.name(n) +
            "' violates '" + now->toString() + "'";
        return a;
      }
    }
  }

  // Refutation 3: a reachable deadlock (¬δ is part of every integration
  // check). Only trustworthy on a completely explored graph.
  if (!g.capped) {
    for (std::size_t n = 0; n < g.size(); ++n) {
      if (g.succ[n].empty()) {
        a.witness = n;
        a.witnessIsDeadlock = true;
        out.verdict = PresolveVerdict::Refuted;
        out.ruleId = kGuaranteedViolation;
        out.explanation = "presolved: real error - reachable deadlock state '" +
                          g.name(n) + "' (depth " +
                          std::to_string(g.depth(n)) + ")";
        return a;
      }
    }
  }

  // Proof: every conjunct supported, none violated, no deadlock, graph
  // complete.
  if (a.fragment.complete && !g.capped) {
    out.verdict = PresolveVerdict::Proved;
    out.ruleId = kStaticallyProven;
    out.explanation =
        "presolved: proven - " +
        std::string(property.empty()
                        ? "deadlock freedom holds"
                        : "AG-safety property and deadlock freedom hold") +
        " on all " + std::to_string(g.size()) + " reachable product states";
    return a;
  }

  out.explanation = g.capped
                        ? "state cap (" + std::to_string(opts.stateCap) +
                              ") exceeded before a definitive verdict"
                        : "property outside the AG-safety fragment";
  return a;
}

// ---- Model-level analyzer --------------------------------------------------

class SemanticAnalyzer {
 public:
  SemanticAnalyzer(const muml::Model& model, const RuleSet& rules,
                   const SemanticOptions& opts)
      : model_(model), rules_(rules), opts_(opts) {}

  Report run() {
    for (const auto& [name, pattern] : model_.patterns) {
      analyzePattern(pattern);
    }
    return std::move(report_);
  }

 private:
  void emit(const char* ruleId, const std::string& subject,
            const std::string& message, const util::SourceLoc& loc,
            std::vector<RelatedNote> related = {}) {
    if (!rules_.enabled(ruleId)) return;
    if (model_.source.allows(subject, ruleId)) {
      ++report_.suppressed;
      return;
    }
    const RuleInfo* info = findRule(ruleId);
    Diagnostic d{ruleId, info ? info->defaultSeverity : Severity::Warning,
                 subject, message, loc, std::move(related)};
    report_.diagnostics.push_back(std::move(d));
  }

  [[nodiscard]] util::SourceLoc locOf(
      const std::map<std::string, util::SourceLoc>& table,
      const std::string& key) const {
    const auto it = table.find(key);
    return it == table.end() ? util::SourceLoc{} : it->second;
  }

  void analyzePattern(const muml::CoordinationPattern& p) {
    const util::SourceLoc loc = locOf(model_.source.patterns, p.name);

    // Compile the parts exactly as verification would; ill-formed patterns
    // are the syntactic tier's business.
    std::vector<Automaton> parts;
    std::vector<std::string> partNames;
    std::vector<char> partIsRole;
    try {
      for (const auto& role : p.roles) {
        parts.push_back(
            role.behavior.compile(model_.signals, model_.props, role.name));
        partNames.push_back("role '" + role.name + "'");
        partIsRole.push_back(1);
      }
      if (p.connector.kind == muml::ConnectorSpec::Kind::Channel) {
        parts.push_back(muml::makeChannel(model_.signals, model_.props,
                                          p.connector.channel));
        partNames.push_back("channel connector");
        partIsRole.push_back(0);
      }
    } catch (const std::exception&) {
      return;
    }

    checkPatternProduct(p, parts, partNames, partIsRole, loc);

    for (std::size_t r = 0; r < p.roles.size(); ++r) {
      analyzeRoleCandidates(p, r);
    }
  }

  /// MUI103 + MUI104 over the full role composition.
  void checkPatternProduct(const muml::CoordinationPattern& p,
                           const std::vector<Automaton>& parts,
                           const std::vector<std::string>& partNames,
                           const std::vector<char>& partIsRole,
                           const util::SourceLoc& loc) {
    std::optional<automata::Product> composed;
    try {
      std::vector<const Automaton*> ptrs;
      ptrs.reserve(parts.size());
      for (const auto& part : parts) ptrs.push_back(&part);
      composed = automata::composeAll(ptrs);
    } catch (const std::exception&) {
      return;  // not composable: MUI004 reports the cause
    }
    const automata::Product& prod = *composed;
    const Automaton& pa = prod.automaton;
    if (pa.stateCount() > opts_.stateCap) return;

    std::vector<std::vector<ProductGraph::Edge>> succ(pa.stateCount());
    for (StateId s = 0; s < pa.stateCount(); ++s) {
      for (const auto& t : pa.transitionsFrom(s)) {
        succ[s].push_back({t.to, t.label.idle()});
      }
    }
    reportLivelocks(p.name, "pattern '" + p.name + "'", loc, succ,
                    [&](std::size_t s) {
                      return pa.stateName(static_cast<StateId>(s));
                    });

    // MUI104: a role transition that fires in no reachable product step,
    // although its source state is visited.
    for (std::size_t k = 0; k < parts.size(); ++k) {
      if (!partIsRole[k]) continue;
      std::set<std::string> fired;
      std::vector<char> visited(parts[k].stateCount(), 0);
      for (StateId ps = 0; ps < pa.stateCount(); ++ps) {
        visited[prod.origins[ps][k]] = 1;
        for (const auto& t : pa.transitionsFrom(ps)) {
          fired.insert(transitionKey(parts[k], prod.origins[ps][k],
                                     prod.projectInteraction(t.label, k),
                                     prod.origins[t.to][k]));
        }
      }
      for (StateId s = 0; s < parts[k].stateCount(); ++s) {
        if (!visited[s]) continue;  // MUI001-style causes, not dead syncs
        for (const auto& t : parts[k].transitionsFrom(s)) {
          if (fired.count(transitionKey(parts[k], s, t.label, t.to))) continue;
          emit(kDeadTransition, p.name,
               "pattern '" + p.name + "': " + partNames[k] + " transition '" +
                   parts[k].stateName(s) + " -" +
                   parts[k].interactionToString(t.label) + "-> " +
                   parts[k].stateName(t.to) +
                   "' fires in no reachable step of the role composition",
               loc);
        }
      }
    }
  }

  static std::string transitionKey(const Automaton& a, StateId from,
                                   const Interaction& x, StateId to) {
    return std::to_string(from) + "|" + a.interactionToString(x) + "|" +
           std::to_string(to);
  }

  /// MUI103 over any transition system given as silent-flagged successor
  /// lists: reachable non-trivial SCCs whose internal steps exchange no
  /// signals and which cannot be left.
  template <typename NameOf>
  void reportLivelocks(const std::string& subject, const std::string& where,
                       const util::SourceLoc& loc,
                       const std::vector<std::vector<ProductGraph::Edge>>& succ,
                       NameOf&& nameOf) {
    const std::size_t stateCount = succ.size();
    std::size_t componentCount = 0;
    const std::vector<std::size_t> comp =
        stronglyConnected(succ, componentCount);

    std::vector<std::size_t> compSize(componentCount, 0);
    std::vector<char> nontrivial(componentCount, 0), exits(componentCount, 0),
        loud(componentCount, 0);
    for (std::size_t s = 0; s < stateCount; ++s) ++compSize[comp[s]];
    for (std::size_t s = 0; s < stateCount; ++s) {
      for (const auto& e : succ[s]) {
        if (comp[e.to] != comp[s]) {
          exits[comp[s]] = 1;
        } else {
          nontrivial[comp[s]] = 1;  // an internal edge: cycle exists
          if (!e.silent) loud[comp[s]] = 1;
        }
      }
    }
    for (std::size_t c = 0; c < componentCount; ++c) {
      if (!nontrivial[c] || exits[c] || loud[c]) continue;
      std::vector<RelatedNote> related;
      std::string members;
      std::size_t listed = 0;
      for (std::size_t s = 0; s < stateCount && listed < opts_.maxRelated;
           ++s) {
        if (comp[s] != c) continue;
        related.push_back({"cycle member '" + nameOf(s) + "'", {}});
        if (!members.empty()) members += ", ";
        members += "'" + nameOf(s) + "'";
        ++listed;
      }
      emit(kLivelockScc, subject,
           where + ": " + std::to_string(compSize[c]) +
               "-state cycle through " + members +
               (compSize[c] > listed ? " (and more)" : "") +
               " exchanges no signals and has no exit; the composition can "
               "diverge here",
           loc, std::move(related));
    }
  }

  /// Integration-level rules for every model automaton that can stand in as
  /// `role` of `p`: MUI105 (flow coverage), MUI101/MUI102 (verdict
  /// pre-solving), MUI103/MUI104 on the context ‖ candidate product.
  void analyzeRoleCandidates(const muml::CoordinationPattern& p,
                             std::size_t roleIdx) {
    std::optional<muml::IntegrationScenario> scenario;
    try {
      scenario = muml::makeIntegrationScenario(p, roleIdx, model_.signals,
                                               model_.props);
    } catch (const std::exception&) {
      return;
    }
    const std::string& roleName = p.roles[roleIdx].name;
    const Automaton& context = scenario->context;

    // Flow-sensitive context signal usage (the context automaton contains
    // exactly the reachable composed states).
    SignalSet ctxEmits, ctxConsumes;
    for (StateId s = 0; s < context.stateCount(); ++s) {
      for (const auto& t : context.transitionsFrom(s)) {
        ctxEmits |= t.label.out;
        ctxConsumes |= t.label.in;
      }
    }

    for (const auto& [candName, cand] : model_.automata) {
      Automaton stub(model_.signals, model_.props);
      try {
        stub = automata::withInstanceName(cand, roleName);
      } catch (const std::exception&) {
        continue;
      }
      if (!context.composableWith(stub)) continue;
      const util::SourceLoc candLoc = locOf(model_.source.automata, candName);
      const std::string where = "automaton '" + candName + "' as role '" +
                                roleName + "' of pattern '" + p.name + "'";

      checkInterfaceCoverage(candName, where, candLoc, context, stub,
                             ctxEmits, ctxConsumes);

      const IntegrationAnalysis a =
          analyzeIntegration(context, stub, scenario->property, opts_);
      if (a.outcome.verdict == PresolveVerdict::Proved) {
        emitProof(candName, where, candLoc, a, scenario->property);
      } else if (a.outcome.verdict == PresolveVerdict::Refuted) {
        emitRefutation(candName, where, candLoc, a, context, stub);
      }

      if (!a.graph.capped && a.graph.size() > 0) {
        reportLivelocks(candName, where, candLoc, a.graph.succ,
                        [&](std::size_t n) { return a.graph.name(n); });
        checkDeadStubTransitions(candName, where, candLoc, a.graph, stub);
      }
    }
  }

  void checkInterfaceCoverage(const std::string& subject,
                              const std::string& where,
                              const util::SourceLoc& loc,
                              const Automaton& context, const Automaton& stub,
                              const SignalSet& ctxEmits,
                              const SignalSet& ctxConsumes) {
    const std::vector<bool> reach = stub.reachableStates();
    SignalSet stubTriggers, stubEmits;
    for (StateId s = 0; s < stub.stateCount(); ++s) {
      if (!reach[s]) continue;
      for (const auto& t : stub.transitionsFrom(s)) {
        stubTriggers |= t.label.in;
        stubEmits |= t.label.out;
      }
    }
    // Beyond MUI004 (declared-name matching): restrict to signals the
    // context *declares* but never actually moves on a reachable transition.
    ((stubTriggers & context.outputs()) - ctxEmits).forEach([&](std::size_t b) {
      emit(kInterfaceGap, subject,
           where + ": stub transitions trigger on '" + signalName(b) +
               "' but no reachable context transition emits it; those "
               "transitions are flow-dead in every product",
           loc);
    });
    ((stubEmits & context.inputs()) - ctxConsumes).forEach([&](std::size_t b) {
      emit(kInterfaceGap, subject,
           where + ": stub emits '" + signalName(b) +
               "' but no reachable context transition consumes it; the send "
               "can never synchronize",
           loc);
    });
  }

  [[nodiscard]] std::string signalName(std::size_t bit) const {
    return model_.signals->name(static_cast<util::NameId>(bit));
  }

  /// MUI104 on the stub side of context ‖ stub.
  void checkDeadStubTransitions(const std::string& subject,
                                const std::string& where,
                                const util::SourceLoc& loc,
                                const ProductGraph& g, const Automaton& stub) {
    std::vector<char> visited(stub.stateCount(), 0);
    for (std::size_t n = 0; n < g.size(); ++n) visited[g.stubState[n]] = 1;
    for (StateId s = 0; s < stub.stateCount(); ++s) {
      if (!visited[s]) continue;
      const auto& ts = stub.transitionsFrom(s);
      for (std::size_t j = 0; j < ts.size(); ++j) {
        if (g.firedStub[s][j]) continue;
        emit(kDeadTransition, subject,
             where + ": transition '" + stub.stateName(s) + " -" +
                 stub.interactionToString(ts[j].label) + "-> " +
                 stub.stateName(ts[j].to) +
                 "' fires in no reachable step of the composition",
             loc);
      }
    }
  }

  void emitProof(const std::string& subject, const std::string& where,
                 const util::SourceLoc& loc, const IntegrationAnalysis& a,
                 const std::string& property) {
    std::vector<RelatedNote> related;
    for (const ctl::Formula* ag : a.fragment.agConjuncts) {
      if (related.size() >= opts_.maxRelated) break;
      related.push_back({"conjunct '" + ag->toString() + "': no reachable " +
                             "state among " + std::to_string(a.graph.size()) +
                             " can violate it",
                         {}});
    }
    related.push_back({"no reachable deadlock state", {}});
    emit(kStaticallyProven, subject,
         where + ": " +
             (property.empty() ? std::string("deadlock freedom holds")
                               : "the AG-safety property and deadlock "
                                 "freedom hold") +
             " on all " + std::to_string(a.graph.size()) +
             " reachable product states; the engine pre-solves this "
             "integration to proven",
         loc, std::move(related));
  }

  void emitRefutation(const std::string& subject, const std::string& where,
                      const util::SourceLoc& loc, const IntegrationAnalysis& a,
                      const Automaton& context, const Automaton& stub) {
    std::vector<RelatedNote> related;
    // Dominator-style must-pass chain: the states every counterexample
    // must traverse to reach the witness.
    const std::vector<std::size_t> idom = immediateDominators(a.graph);
    for (const std::size_t d :
         mustPassChain(idom, a.witness, opts_.maxRelated)) {
      related.push_back({"every path to the violation passes through '" +
                             a.graph.name(d) + "'",
                         {}});
    }
    related.push_back(
        {a.witnessIsDeadlock
             ? "witness '" + a.graph.name(a.witness) + "' deadlocks"
             : "witness '" + a.graph.name(a.witness) + "' violates '" +
                   (a.violated ? a.violated->toString()
                               : std::string("an initial-state conjunct")) +
                   "'",
         {}});
    related.push_back({chaosNote(context, stub), {}});
    emit(kGuaranteedViolation, subject,
         where + ": " +
             (a.witnessIsDeadlock
                  ? "a deadlock is reachable"
                  : "a property violation is reachable") +
             " at depth " + std::to_string(a.graph.depth(a.witness)) +
             "; the engine pre-solves this integration to real-error",
         loc, std::move(related));
  }

  /// Iteration-0 chaos diagnosis: does the chaotic closure of the empty
  /// behavioral model (interface + initial state only, Lemma 4) already
  /// reach chaos when composed with the context? If so the pessimistic
  /// product cannot prove anything before learning.
  [[nodiscard]] std::string chaosNote(const Automaton& context,
                                      const Automaton& stub) const {
    try {
      automata::IncompleteAutomaton m0(model_.signals, model_.props,
                                       stub.name());
      m0.declareSignals(stub.inputs(), stub.outputs());
      for (const StateId s0 : stub.initialStates()) {
        const StateId s = m0.ensureState(stub.stateName(s0));
        m0.markInitial(s);
        m0.labelWithStateName(s);
      }
      const automata::Closure closure = automata::chaoticClosure(
          m0,
          automata::makeAlphabet(stub.inputs(), stub.outputs(),
                                 automata::InteractionMode::AtMostOneSignal),
          automata::ClosureStyle::DeterministicTarget,
          automata::ClosureCopies::Both);
      const ProductGraph g =
          explore(context, closure.automaton, opts_.stateCap);
      for (std::size_t n = 0; n < g.size(); ++n) {
        if (closure.isChaos(g.stubState[n])) {
          return "the iteration-0 chaotic closure reaches chaos ('" +
                 closure.automaton.stateName(g.stubState[n]) + "') at depth " +
                 std::to_string(g.depth(n)) +
                 "; the refinement loop must learn before concluding on its "
                 "own";
        }
      }
      return g.capped ? "iteration-0 chaos reachability not decided (cap)"
                      : "the iteration-0 chaotic closure never reaches "
                        "chaos: the pessimistic product alone decides this "
                        "integration";
    } catch (const std::exception& e) {
      return std::string("iteration-0 chaos analysis unavailable: ") +
             e.what();
    }
  }

  const muml::Model& model_;
  const RuleSet& rules_;
  const SemanticOptions& opts_;
  Report report_;
};

}  // namespace

const char* presolveVerdictName(PresolveVerdict v) {
  switch (v) {
    case PresolveVerdict::Proved:
      return "proved";
    case PresolveVerdict::Refuted:
      return "refuted";
    case PresolveVerdict::Skipped:
      return "skipped";
  }
  return "skipped";
}

PresolveOutcome presolveIntegration(const automata::Automaton& context,
                                    const automata::Automaton& hidden,
                                    const std::string& property,
                                    const SemanticOptions& opts) {
  try {
    return analyzeIntegration(context, hidden, property, opts).outcome;
  } catch (const std::exception& e) {
    PresolveOutcome out;
    out.explanation = std::string("presolve error: ") + e.what();
    return out;
  } catch (...) {
    PresolveOutcome out;
    out.explanation = "presolve error: unknown exception";
    return out;
  }
}

Report runSemantic(const muml::Model& model, const RuleSet& rules,
                   const SemanticOptions& opts) {
  return SemanticAnalyzer(model, rules, opts).run();
}

}  // namespace mui::analysis
