#include "analysis/diagnostic.hpp"

namespace mui::analysis {

const char* severityName(Severity s) {
  switch (s) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "?";
}

std::string Diagnostic::toString() const {
  std::string out;
  if (loc.known()) out += loc.toString() + ": ";
  out += severityName(severity);
  out += ": ";
  out += message;
  out += " [" + ruleId + "]";
  return out;
}

std::size_t Report::count(Severity s) const {
  std::size_t n = 0;
  for (const auto& d : diagnostics) {
    if (d.severity == s) ++n;
  }
  return n;
}

bool Report::hasAtLeast(Severity s) const {
  for (const auto& d : diagnostics) {
    if (d.severity >= s) return true;
  }
  return false;
}

std::vector<std::string> Report::errorMessages() const {
  std::vector<std::string> out;
  for (const auto& d : diagnostics) {
    if (d.severity == Severity::Error) out.push_back(d.toString());
  }
  return out;
}

}  // namespace mui::analysis
