#include "analysis/render.hpp"

#include <cstdio>

#include "analysis/rules.hpp"
#include "util/json.hpp"

namespace mui::analysis {

namespace {

using util::jsonEscape;

/// SARIF "level" values happen to match our severity names.
const char* sarifLevel(Severity s) { return severityName(s); }

}  // namespace

std::string renderText(const Report& report) {
  std::string out;
  for (const auto& d : report.diagnostics) {
    out += d.toString();
    out += '\n';
    for (const auto& note : d.related) {
      out += "    note: ";
      if (note.loc.known()) out += note.loc.toString() + ": ";
      out += note.message;
      out += '\n';
    }
  }
  const std::size_t errors = report.count(Severity::Error);
  const std::size_t warnings = report.count(Severity::Warning);
  const std::size_t notes = report.count(Severity::Note);
  if (errors == 0 && warnings == 0 && notes == 0) {
    out += "clean";
  } else {
    out += std::to_string(errors) + " error(s), " + std::to_string(warnings) +
           " warning(s), " + std::to_string(notes) + " note(s)";
  }
  if (report.suppressed != 0) {
    out += " (" + std::to_string(report.suppressed) + " suppressed)";
  }
  out += '\n';
  return out;
}

std::string writeSarif(const Report& report) {
  std::string out;
  out +=
      "{\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"mui-lint\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/mui/docs/LINT_RULES.md\",\n"
      "          \"rules\": [\n";
  const auto& rules = allRules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += "            {\"id\": \"" + jsonEscape(rules[i].id) +
           "\", \"name\": \"" + jsonEscape(rules[i].name) +
           "\", \"shortDescription\": {\"text\": \"" +
           jsonEscape(rules[i].description) +
           "\"}, \"defaultConfiguration\": {\"level\": \"" +
           sarifLevel(rules[i].defaultSeverity) + "\"}}";
    out += i + 1 < rules.size() ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    out += "        {\"ruleId\": \"" + jsonEscape(d.ruleId) +
           "\", \"level\": \"" + sarifLevel(d.severity) +
           "\", \"message\": {\"text\": \"" + jsonEscape(d.message) + "\"}";
    if (d.loc.known()) {
      out += ", \"locations\": [{\"physicalLocation\": "
             "{\"artifactLocation\": {\"uri\": \"" +
             jsonEscape(d.loc.file) + "\"}, \"region\": {\"startLine\": " +
             std::to_string(d.loc.line) +
             ", \"startColumn\": " + std::to_string(d.loc.col) + "}}}]";
    }
    // The semantic tier's supporting chains (dominator must-pass states,
    // per-conjunct proof facts) ride along as relatedLocations.
    if (!d.related.empty()) {
      out += ", \"relatedLocations\": [";
      for (std::size_t j = 0; j < d.related.size(); ++j) {
        const RelatedNote& note = d.related[j];
        out += "{\"message\": {\"text\": \"" + jsonEscape(note.message) + "\"}";
        if (note.loc.known()) {
          out += ", \"physicalLocation\": {\"artifactLocation\": {\"uri\": "
                 "\"" +
                 jsonEscape(note.loc.file) + "\"}, \"region\": {\"startLine\": " +
                 std::to_string(note.loc.line) +
                 ", \"startColumn\": " + std::to_string(note.loc.col) + "}}";
        }
        out += "}";
        if (j + 1 < d.related.size()) out += ", ";
      }
      out += "]";
    }
    out += "}";
    out += i + 1 < report.diagnostics.size() ? ",\n" : "\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace mui::analysis
