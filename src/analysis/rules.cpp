#include "analysis/rules.hpp"

namespace mui::analysis {

const std::vector<RuleInfo>& allRules() {
  static const std::vector<RuleInfo> rules = {
      {kUnreachableState, "unreachable-state", Severity::Warning,
       "state is not reachable from any initial state"},
      {kSinkState, "sink-state", Severity::Warning,
       "reachable state has no outgoing transition (structural deadlock) and "
       "is not part of a chaotic closure"},
      {kUnusedSignal, "unused-signal", Severity::Warning,
       "signal is declared in the interface but used by no transition"},
      {kAlphabetMismatch, "alphabet-mismatch", Severity::Warning,
       "pattern parts slated for composition have mismatched interfaces "
       "(clashing declarations, unconsumed outputs, unfed inputs)"},
      {kNondeterministicStub, "nondeterministic-stub", Severity::Warning,
       "automaton (a legacy component stand-in) is nondeterministic; the "
       "integration loop's termination argument assumes determinism"},
      {kDuplicateTransition, "duplicate-transition", Severity::Warning,
       "transition is written more than once; the loader kept one copy"},
      {kBadFormulaAtom, "bad-formula-atom", Severity::Error,
       "constraint or invariant does not parse, or references an atom that "
       "is no proposition of the composed pattern"},
      {kDegenerateBound, "degenerate-bound", Severity::Warning,
       "temporal bound is the vacuous point window [0,0], which collapses "
       "the operator to 'now' (empty windows hi < lo are parse errors)"},
      {kNoInitialState, "no-initial-state", Severity::Error,
       "automaton has no initial state; every property holds vacuously"},
      {kNonActlFormula, "non-actl-formula", Severity::Warning,
       "formula leaves the ACTL fragment; verdicts do not transfer through "
       "refinement (paper Def. 5)"},
  };
  return rules;
}

const RuleInfo* findRule(std::string_view id) {
  for (const auto& r : allRules()) {
    if (id == r.id) return &r;
  }
  return nullptr;
}

RuleSet RuleSet::errorsOnly() {
  RuleSet set;
  for (const auto& r : allRules()) {
    if (r.defaultSeverity != Severity::Error) set.disable(r.id);
  }
  return set;
}

}  // namespace mui::analysis
