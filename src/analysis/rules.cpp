#include "analysis/rules.hpp"

namespace mui::analysis {

const std::vector<RuleInfo>& allRules() {
  static const std::vector<RuleInfo> rules = {
      {kUnreachableState, "unreachable-state", Severity::Warning,
       "state is not reachable from any initial state"},
      {kSinkState, "sink-state", Severity::Warning,
       "reachable state has no outgoing transition (structural deadlock) and "
       "is not part of a chaotic closure"},
      {kUnusedSignal, "unused-signal", Severity::Warning,
       "signal is declared in the interface but used by no transition"},
      {kAlphabetMismatch, "alphabet-mismatch", Severity::Warning,
       "pattern parts slated for composition have mismatched interfaces "
       "(clashing declarations, unconsumed outputs, unfed inputs)"},
      {kNondeterministicStub, "nondeterministic-stub", Severity::Warning,
       "automaton (a legacy component stand-in) is nondeterministic; the "
       "integration loop's termination argument assumes determinism"},
      {kDuplicateTransition, "duplicate-transition", Severity::Warning,
       "transition is written more than once; the loader kept one copy"},
      {kBadFormulaAtom, "bad-formula-atom", Severity::Error,
       "constraint or invariant does not parse, or references an atom that "
       "is no proposition of the composed pattern"},
      {kDegenerateBound, "degenerate-bound", Severity::Warning,
       "temporal bound is the vacuous point window [0,0], which collapses "
       "the operator to 'now' (empty windows hi < lo are parse errors)"},
      {kNoInitialState, "no-initial-state", Severity::Error,
       "automaton has no initial state; every property holds vacuously"},
      {kNonActlFormula, "non-actl-formula", Severity::Warning,
       "formula leaves the ACTL fragment; verdicts do not transfer through "
       "refinement (paper Def. 5)"},
      {kStaticallyProven, "statically-proven-property", Severity::Note,
       "every reachable state of the composition satisfies the AG-safety "
       "property and none deadlocks; the integration verdict is pre-solved "
       "to proven without running the refinement loop"},
      {kGuaranteedViolation, "guaranteed-violation", Severity::Note,
       "a property violation or deadlock is reachable in the composition "
       "(pessimistic verdict statically known: real error); the related "
       "chain lists the states every counterexample must pass through"},
      {kLivelockScc, "livelock-scc", Severity::Warning,
       "reachable non-trivial SCC exchanges no signals and has no exit; the "
       "composition can diverge without making progress"},
      {kDeadTransition, "dead-transition", Severity::Note,
       "transition is enabled in the component but fires in no reachable "
       "step of the composition"},
      {kInterfaceGap, "interface-coverage-gap", Severity::Warning,
       "legacy stub and context declare matching alphabets (MUI004) but no "
       "reachable transition ever produces/consumes the signal, so the "
       "synchronization is flow-dead"},
  };
  return rules;
}

const RuleInfo* findRule(std::string_view id) {
  for (const auto& r : allRules()) {
    if (id == r.id) return &r;
  }
  return nullptr;
}

RuleSet RuleSet::errorsOnly() {
  RuleSet set;
  for (const auto& r : allRules()) {
    if (r.defaultSeverity != Severity::Error) set.disable(r.id);
  }
  return set;
}

}  // namespace mui::analysis
