#pragma once
// The model lint analyzer: cheap fixpoint passes over a loaded muml::Model
// that find well-formedness problems *before* any verification time is
// spent. The batch engine (PR 1) runs hundreds of jobs from one model file;
// a single malformed automaton or mistyped formula atom silently turns a
// whole campaign into vacuous passes or wasted counterexample-test-learn
// iterations, so this gate pays for itself on the first run.
//
// Checks (see rules.hpp for the registry and docs/LINT_RULES.md for the
// catalogue):
//   MUI001 unreachable states          MUI006 duplicate transitions
//   MUI002 sink (deadlock) states      MUI007 bad formula atoms / parses
//   MUI003 unused interface signals    MUI008 degenerate time bounds
//   MUI004 composition alphabet        MUI009 missing initial states
//          mismatches                  MUI010 non-ACTL formulas
//   MUI005 nondeterministic stubs
//
// Entry point: run(model [, rules]). Diagnostics honor per-entity
// `allow MUIxxx;` clauses recorded by the loader (Model::source).
//
// Surfaces: `mui lint <model> [--format text|json]` (render.hpp), the batch
// runner's pre-flight (engine/runner.cpp), and this library API.

#include "analysis/diagnostic.hpp"
#include "analysis/rules.hpp"
#include "muml/model.hpp"

namespace mui::analysis {

/// Runs every enabled rule over the model. Pattern analysis compiles the
/// role statecharts (under their role names, as verification would) to
/// know the composition alphabets and the valid proposition universe; this
/// interns names into the model's shared tables but never alters behavior.
/// May propagate std::invalid_argument for statecharts that are themselves
/// ill-formed (impossible for loader-produced models, which validate at
/// parse time).
Report run(const muml::Model& model, const RuleSet& rules = RuleSet::all());

}  // namespace mui::analysis
