#pragma once
// Rendering for lint reports: a compiler-style text listing for humans and
// a SARIF 2.1.0 document for CI annotation (GitHub code scanning, IDE
// importers). `mui lint --format json` emits the SARIF form.

#include <string>

#include "analysis/diagnostic.hpp"

namespace mui::analysis {

/// One "file:line:col: severity: message [RULE]" line per diagnostic,
/// then a one-line summary ("clean" or the per-severity counts, plus the
/// suppressed count when non-zero).
std::string renderText(const Report& report);

/// SARIF 2.1.0: a single run of driver "mui-lint" with the full rule
/// registry in tool.driver.rules and one result per diagnostic (ruleId,
/// level, message, physical location when known).
std::string writeSarif(const Report& report);

}  // namespace mui::analysis
