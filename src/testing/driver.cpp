#include "testing/driver.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mui::testing {

namespace {

struct ReplayMetrics {
  obs::Counter& tests;
  obs::Counter& steps;
  obs::Counter& confirmed;
  obs::Counter& diverged;
  obs::Counter& blocked;

  static const ReplayMetrics& get() {
    static ReplayMetrics m{
        obs::Registry::global().counter("mui_replay_tests_total",
                                        "Counterexample tests executed"),
        obs::Registry::global().counter(
            "mui_replay_steps_total",
            "Legacy-component periods driven during tests"),
        obs::Registry::global().counter("mui_replay_confirmed_total",
                                        "Tests that confirmed the trace"),
        obs::Registry::global().counter("mui_replay_diverged_total",
                                        "Tests where the component diverged"),
        obs::Registry::global().counter("mui_replay_blocked_total",
                                        "Tests where the component blocked"),
    };
    return m;
  }
};

}  // namespace

void CounterexampleTestDriver::logMessages(Recorder& rec,
                                           const SignalSet& signals,
                                           bool outgoing,
                                           std::uint64_t period) const {
  signals.forEach([&](std::size_t s) {
    rec.onMessage(signals_.name(static_cast<util::NameId>(s)), legacy_.name(),
                  outgoing, period);
  });
}

TestOutcome CounterexampleTestDriver::execute(
    const std::vector<automata::Interaction>& expectedSteps) {
  const obs::ObsSpan span("replay", expectedSteps.size());
  const std::uint64_t periodsBefore = periods_;
  TestOutcome out;

  // ---- Phase 1: execute on the "target" with minimal probes. -------------
  legacy_.reset();
  std::vector<SignalSet> actualOutputs;
  for (std::size_t k = 0; k < expectedSteps.size(); ++k) {
    const auto& expected = expectedSteps[k];
    logMessages(out.targetLog, expected.in, /*outgoing=*/false, k + 1);
    const auto produced = legacy_.step(expected.in);
    ++periods_;
    if (!produced) {
      out.kind = TestOutcome::Kind::Blocked;
      out.executedSteps = k;
      break;
    }
    logMessages(out.targetLog, *produced, /*outgoing=*/true, k + 1);
    actualOutputs.push_back(*produced);
    out.executedSteps = k + 1;
    if (!(*produced == expected.out)) {
      out.kind = TestOutcome::Kind::Diverged;
      break;
    }
  }
  const std::size_t replaySteps = actualOutputs.size();

  // ---- Phase 2: deterministic replay with full instrumentation. ----------
  legacy_.reset();
  out.observed.stateNames.push_back(legacy_.currentStateName());
  out.replayLog.onCurrentState(legacy_.currentStateName(), 0);
  for (std::size_t k = 0; k < replaySteps; ++k) {
    const auto& inputs = expectedSteps[k].in;
    logMessages(out.replayLog, inputs, /*outgoing=*/false, k + 1);
    const auto produced = legacy_.step(inputs);
    ++periods_;
    if (!produced || !(*produced == actualOutputs[k])) {
      throw std::logic_error(
          "deterministic replay diverged from the recorded execution "
          "(probe effect or nondeterministic component)");
    }
    logMessages(out.replayLog, *produced, /*outgoing=*/true, k + 1);
    out.replayLog.onTiming(k + 1);
    out.replayLog.onCurrentState(legacy_.currentStateName(), k + 1);
    out.observed.labels.push_back({inputs, *produced});
    out.observed.stateNames.push_back(legacy_.currentStateName());
  }

  // ---- Assemble the learnable runs. ---------------------------------------
  switch (out.kind) {
    case TestOutcome::Kind::Confirmed:
      break;  // regular observed run as-is
    case TestOutcome::Kind::Blocked:
      // Append the refused interaction (Def. 12): states == labels.
      out.observed.labels.push_back(expectedSteps[out.executedSteps]);
      out.observed.blocked = true;
      break;
    case TestOutcome::Kind::Diverged: {
      // The observed run ends with the *actual* output (Def. 11); the
      // *expected* interaction is additionally refused at the divergence
      // state because the component is deterministic (Def. 12).
      automata::ObservedRun refusal;
      const std::size_t divergeIdx = out.executedSteps - 1;
      refusal.stateNames.assign(out.observed.stateNames.begin(),
                                out.observed.stateNames.begin() +
                                    static_cast<std::ptrdiff_t>(divergeIdx) +
                                    1);
      refusal.labels.assign(out.observed.labels.begin(),
                            out.observed.labels.begin() +
                                static_cast<std::ptrdiff_t>(divergeIdx));
      refusal.labels.push_back(expectedSteps[divergeIdx]);
      refusal.blocked = true;
      out.refusalRun = std::move(refusal);
      break;
    }
  }
  if (!out.observed.wellFormed()) {
    throw std::logic_error("test driver produced a malformed observed run");
  }
  const ReplayMetrics& m = ReplayMetrics::get();
  m.tests.inc();
  m.steps.add(periods_ - periodsBefore);
  switch (out.kind) {
    case TestOutcome::Kind::Confirmed:
      m.confirmed.inc();
      break;
    case TestOutcome::Kind::Diverged:
      m.diverged.inc();
      break;
    case TestOutcome::Kind::Blocked:
      m.blocked.inc();
      break;
  }
  return out;
}

}  // namespace mui::testing
