#pragma once
// Composite legacy component: several I/O-disjoint legacy components driven
// in lockstep as a single black box. This realizes the baseline variant of
// the paper's Sec.-7 multi-legacy extension (learning one joint model) that
// experiment E6 compares against true per-component parallel learning.

#include <memory>
#include <vector>

#include "testing/legacy.hpp"

namespace mui::testing {

class CompositeLegacy final : public LegacyComponent {
 public:
  /// Takes ownership; parts must have pairwise disjoint inputs and outputs.
  explicit CompositeLegacy(std::vector<std::unique_ptr<LegacyComponent>> parts,
                           std::string name = "composite");

  void reset() override;
  /// A joint step: every part receives its share of the inputs; the step is
  /// refused if any part refuses (lockstep semantics of Def. 3).
  std::optional<SignalSet> step(const SignalSet& inputs) override;
  [[nodiscard]] std::string currentStateName() const override;
  [[nodiscard]] const SignalSet& inputs() const override { return inputs_; }
  [[nodiscard]] const SignalSet& outputs() const override { return outputs_; }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<LegacyComponent> clone() const override;

 private:
  std::vector<std::unique_ptr<LegacyComponent>> parts_;
  std::string name_;
  SignalSet inputs_;
  SignalSet outputs_;
};

}  // namespace mui::testing
