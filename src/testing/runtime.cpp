#include "testing/runtime.hpp"

#include <algorithm>
#include <stdexcept>

namespace mui::testing {

PeriodicRuntime::PeriodicRuntime(const automata::Automaton& environment,
                                 LegacyComponent& legacy, std::uint64_t seed)
    : env_(environment), legacy_(legacy), rng_(seed) {
  if (env_.initialStates().size() != 1) {
    throw std::invalid_argument(
        "PeriodicRuntime: environment needs one initial state");
  }
  envState_ = env_.initialStates()[0];
  legacy_.reset();
}

void PeriodicRuntime::reset() {
  envState_ = env_.initialStates()[0];
  legacy_.reset();
  period_ = 0;
}

std::uint64_t PeriodicRuntime::run(std::uint64_t periods, Recorder& recorder) {
  const auto& sigTable = *env_.signalTable();
  std::uint64_t executed = 0;
  for (; executed < periods; ++executed) {
    // Candidate environment moves in random order.
    auto candidates = env_.transitionsFrom(envState_);
    for (std::size_t i = candidates.size(); i > 1; --i) {
      std::swap(candidates[i - 1], candidates[rng_.below(i)]);
    }

    bool stepped = false;
    for (const auto& cand : candidates) {
      // Inputs the environment move would deliver to the legacy component.
      const SignalSet legacyIn = cand.label.out & legacy_.inputs();
      // Probe a clone: would the component accept, and do its outputs match
      // what the environment move consumes from it?
      const auto probe = legacy_.clone();
      const auto out = probe->step(legacyIn);
      if (!out) continue;
      if (!((cand.label.in & legacy_.outputs()) ==
            (*out & env_.inputs()))) {
        continue;
      }
      // Commit.
      ++period_;
      legacyIn.forEach([&](std::size_t s) {
        recorder.onMessage(sigTable.name(static_cast<util::NameId>(s)),
                           legacy_.name(), /*outgoing=*/false, period_);
      });
      const auto committed = legacy_.step(legacyIn);
      if (!committed || !(*committed == *out)) {
        throw std::logic_error(
            "PeriodicRuntime: component diverged from its probe clone "
            "(nondeterministic legacy component)");
      }
      committed->forEach([&](std::size_t s) {
        recorder.onMessage(sigTable.name(static_cast<util::NameId>(s)),
                           legacy_.name(), /*outgoing=*/true, period_);
      });
      recorder.onTiming(period_);
      recorder.onCurrentState(legacy_.currentStateName(), period_);
      envState_ = cand.to;
      stepped = true;
      break;
    }
    if (!stepped) break;  // joint deadlock
  }
  return executed;
}

}  // namespace mui::testing
