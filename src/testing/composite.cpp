#include "testing/composite.hpp"

#include <stdexcept>

namespace mui::testing {

CompositeLegacy::CompositeLegacy(
    std::vector<std::unique_ptr<LegacyComponent>> parts, std::string name)
    : parts_(std::move(parts)), name_(std::move(name)) {
  if (parts_.empty()) {
    throw std::invalid_argument("CompositeLegacy: no parts");
  }
  for (const auto& p : parts_) {
    if (p->inputs().intersects(inputs_) || p->outputs().intersects(outputs_)) {
      throw std::invalid_argument(
          "CompositeLegacy: parts must have disjoint I/O");
    }
    inputs_ |= p->inputs();
    outputs_ |= p->outputs();
  }
}

void CompositeLegacy::reset() {
  for (auto& p : parts_) p->reset();
}

std::optional<SignalSet> CompositeLegacy::step(const SignalSet& inputs) {
  // Probe all parts on clones first so a late refusal does not leave the
  // composite half-stepped.
  SignalSet out;
  std::vector<std::unique_ptr<LegacyComponent>> probes;
  probes.reserve(parts_.size());
  for (const auto& p : parts_) {
    auto probe = p->clone();
    const auto produced = probe->step(inputs & p->inputs());
    if (!produced) return std::nullopt;
    out |= *produced;
    probes.push_back(std::move(probe));
  }
  parts_ = std::move(probes);  // commit the advanced clones
  return out;
}

std::string CompositeLegacy::currentStateName() const {
  std::string n;
  for (const auto& p : parts_) {
    if (!n.empty()) n += "|";
    n += p->currentStateName();
  }
  return n;
}

std::unique_ptr<LegacyComponent> CompositeLegacy::clone() const {
  std::vector<std::unique_ptr<LegacyComponent>> copies;
  copies.reserve(parts_.size());
  for (const auto& p : parts_) copies.push_back(p->clone());
  return std::unique_ptr<LegacyComponent>(
      new CompositeLegacy(std::move(copies), name_));
}

}  // namespace mui::testing
