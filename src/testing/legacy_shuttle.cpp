#include "testing/legacy_shuttle.hpp"

#include "muml/shuttle.hpp"

namespace mui::testing {

void ShuttleControllerFirmware::init() { mode_ = MODE_DEFAULT; }

int ShuttleControllerFirmware::tick(int rx, int* tx) {
  *tx = OUT_NONE;
  switch (mode_) {
    case MODE_DEFAULT:
      if (rx != MSG_NONE) return RC_UNEXPECTED_MSG;
      mode_ = MODE_READY;  // arm the proposal for the next period
      return RC_OK;
    case MODE_READY:
      if (rx != MSG_NONE) return RC_UNEXPECTED_MSG;
      *tx = OUT_CONVOY_PROPOSAL;
      // The faulty revision assumes the convoy is granted immediately; the
      // shipped firmware waits for the front shuttle's answer.
      mode_ = faulty_ ? MODE_CONVOY : MODE_WAIT;
      return RC_OK;
    case MODE_WAIT:
      switch (rx) {
        case MSG_NONE:
          return RC_OK;  // keep waiting
        case MSG_CONVOY_PROPOSAL_REJECTED:
          mode_ = MODE_DEFAULT;
          return RC_OK;
        case MSG_START_CONVOY:
          mode_ = MODE_CONVOY;
          return RC_OK;
        default:
          return RC_UNEXPECTED_MSG;
      }
    case MODE_CONVOY:
      if (rx != MSG_NONE) return RC_UNEXPECTED_MSG;
      if (faulty_) return RC_OK;  // the old revision just drives on
      mode_ = MODE_HOLD;
      return RC_OK;
    case MODE_HOLD:
      if (rx != MSG_NONE) return RC_UNEXPECTED_MSG;
      *tx = OUT_BREAK_CONVOY_PROPOSAL;
      mode_ = MODE_CONVOY_WAIT;
      return RC_OK;
    case MODE_CONVOY_WAIT:
      switch (rx) {
        case MSG_NONE:
          return RC_OK;
        case MSG_BREAK_CONVOY_REJECTED:
          mode_ = MODE_CONVOY;
          return RC_OK;
        case MSG_BREAK_CONVOY_ACCEPTED:
          mode_ = MODE_DEFAULT;
          return RC_OK;
        default:
          return RC_UNEXPECTED_MSG;
      }
  }
  return RC_UNEXPECTED_MSG;
}

const char* ShuttleControllerFirmware::debugModeName() const {
  switch (mode_) {
    case MODE_DEFAULT:
      return "noConvoy::default";
    case MODE_READY:
      return "noConvoy::ready";
    case MODE_WAIT:
      return "noConvoy::wait";
    case MODE_CONVOY:
      return "convoy::default";
    case MODE_HOLD:
      return "convoy::hold";
    case MODE_CONVOY_WAIT:
      return "convoy::wait";
  }
  return "?";
}

FirmwareShuttleLegacy::FirmwareShuttleLegacy(
    const automata::SignalTableRef& signals, bool faultyRevision)
    : signals_(signals), fw_(faultyRevision) {
  namespace sh = muml::shuttle;
  inRejected_ = signals_->intern(sh::kConvoyProposalRejected);
  inStart_ = signals_->intern(sh::kStartConvoy);
  inBreakRejected_ = signals_->intern(sh::kBreakConvoyRejected);
  inBreakAccepted_ = signals_->intern(sh::kBreakConvoyAccepted);
  outProposal_ = signals_->intern(sh::kConvoyProposal);
  outBreakProposal_ = signals_->intern(sh::kBreakConvoyProposal);
  inputs_.set(inRejected_);
  inputs_.set(inStart_);
  inputs_.set(inBreakRejected_);
  inputs_.set(inBreakAccepted_);
  outputs_.set(outProposal_);
  outputs_.set(outBreakProposal_);
  fw_.init();
}

void FirmwareShuttleLegacy::reset() { fw_.init(); }

std::optional<SignalSet> FirmwareShuttleLegacy::step(const SignalSet& inputs) {
  // Marshal the signal set onto the single-message legacy bus.
  if (inputs.count() > 1) return std::nullopt;  // the bus carries one message
  int rx = ShuttleControllerFirmware::MSG_NONE;
  if (inputs.test(inRejected_)) {
    rx = ShuttleControllerFirmware::MSG_CONVOY_PROPOSAL_REJECTED;
  } else if (inputs.test(inStart_)) {
    rx = ShuttleControllerFirmware::MSG_START_CONVOY;
  } else if (inputs.test(inBreakRejected_)) {
    rx = ShuttleControllerFirmware::MSG_BREAK_CONVOY_REJECTED;
  } else if (inputs.test(inBreakAccepted_)) {
    rx = ShuttleControllerFirmware::MSG_BREAK_CONVOY_ACCEPTED;
  } else if (!inputs.empty()) {
    return std::nullopt;  // signal outside the legacy interface
  }

  ShuttleControllerFirmware saved = fw_;  // roll back on refusal
  int tx = ShuttleControllerFirmware::OUT_NONE;
  if (fw_.tick(rx, &tx) != ShuttleControllerFirmware::RC_OK) {
    fw_ = saved;
    return std::nullopt;
  }
  SignalSet out;
  if (tx == ShuttleControllerFirmware::OUT_CONVOY_PROPOSAL) {
    out.set(outProposal_);
  } else if (tx == ShuttleControllerFirmware::OUT_BREAK_CONVOY_PROPOSAL) {
    out.set(outBreakProposal_);
  }
  return out;
}

std::string FirmwareShuttleLegacy::currentStateName() const {
  return fw_.debugModeName();
}

std::unique_ptr<LegacyComponent> FirmwareShuttleLegacy::clone() const {
  return std::make_unique<FirmwareShuttleLegacy>(*this);
}

}  // namespace mui::testing
