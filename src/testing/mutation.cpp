#include "testing/mutation.hpp"

#include <vector>

#include "util/rng.hpp"

namespace mui::testing {

namespace {

using automata::Automaton;
using automata::Interaction;
using automata::StateId;
using automata::Transition;

/// Rebuilds `original` with `edit` applied to the matching transition.
/// `edit` returns false to drop the transition, or mutates it in place.
template <typename Edit>
Automaton rebuild(const Automaton& original, const Transition& target,
                  Edit&& edit) {
  Automaton out(original.signalTable(), original.propTable(), original.name());
  out.declareSignals(original.inputs(), original.outputs());
  for (StateId s = 0; s < original.stateCount(); ++s) {
    out.addState(original.stateName(s));
    out.addLabels(s, original.labels(s));
  }
  for (StateId s = 0; s < original.stateCount(); ++s) {
    for (const auto& t : original.transitionsFrom(s)) {
      Transition copy = t;
      if (t == target) {
        if (!edit(copy)) continue;  // deleted
      }
      out.addTransition(copy.from, copy.label, copy.to);
    }
  }
  for (StateId q : original.initialStates()) out.markInitial(q);
  return out;
}

std::vector<Transition> allTransitions(const Automaton& a) {
  std::vector<Transition> out;
  for (StateId s = 0; s < a.stateCount(); ++s) {
    for (const auto& t : a.transitionsFrom(s)) out.push_back(t);
  }
  return out;
}

}  // namespace

std::string Mutation::describe(const Automaton& original) const {
  std::string out;
  switch (op) {
    case MutationOp::DeleteTransition:
      out = "delete ";
      break;
    case MutationOp::DropOutputs:
      out = "silence ";
      break;
    case MutationOp::RedirectTarget:
      out = "redirect ";
      break;
  }
  out += original.stateName(from) + " --" +
         original.interactionToString(label) + "-->";
  if (op == MutationOp::RedirectTarget) {
    out += " to " + original.stateName(newTarget);
  }
  return out;
}

std::optional<std::pair<Automaton, Mutation>> mutateAutomaton(
    const Automaton& original, MutationOp op, std::uint64_t seed) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ull + 17);
  auto sites = allTransitions(original);
  // Random visiting order.
  for (std::size_t i = sites.size(); i > 1; --i) {
    std::swap(sites[i - 1], sites[rng.below(i)]);
  }

  for (const auto& site : sites) {
    Mutation m;
    m.op = op;
    m.from = site.from;
    m.label = site.label;
    switch (op) {
      case MutationOp::DeleteTransition: {
        return std::make_pair(
            rebuild(original, site, [](Transition&) { return false; }), m);
      }
      case MutationOp::DropOutputs: {
        if (site.label.out.empty()) continue;  // already silent
        // The silenced transition keeps its input set, so determinism is
        // unaffected; only the output changes.
        return std::make_pair(rebuild(original, site,
                                      [](Transition& t) {
                                        t.label.out = {};
                                        return true;
                                      }),
                              m);
      }
      case MutationOp::RedirectTarget: {
        if (original.stateCount() < 2) continue;
        StateId target = static_cast<StateId>(
            rng.below(original.stateCount()));
        if (target == site.to) {
          target = static_cast<StateId>((target + 1) % original.stateCount());
        }
        if (target == site.to) continue;
        m.newTarget = target;
        return std::make_pair(rebuild(original, site,
                                      [&](Transition& t) {
                                        t.to = target;
                                        return true;
                                      }),
                              m);
      }
    }
  }
  return std::nullopt;
}

}  // namespace mui::testing
