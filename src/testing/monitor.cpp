#include "testing/monitor.hpp"

namespace mui::testing {

void Recorder::onCurrentState(const std::string& stateName,
                              std::uint64_t period) {
  if (level_ != ProbeLevel::Full) return;  // probe compiled out on target
  events_.push_back(
      {MonitorEvent::Kind::CurrentState, stateName, {}, false, period});
}

void Recorder::onMessage(const std::string& message, const std::string& port,
                         bool outgoing, std::uint64_t period) {
  events_.push_back(
      {MonitorEvent::Kind::Message, message, port, outgoing, period});
}

void Recorder::onTiming(std::uint64_t period) {
  if (level_ != ProbeLevel::Full) return;
  events_.push_back({MonitorEvent::Kind::Timing, {}, {}, false, period});
}

std::string Recorder::render() const {
  std::string out;
  for (const auto& e : events_) {
    switch (e.kind) {
      case MonitorEvent::Kind::CurrentState:
        out += "[CurrentState] name=\"" + e.name + "\"\n";
        break;
      case MonitorEvent::Kind::Message:
        out += "[Message] name=\"" + e.name + "\", portName=\"" + e.portName +
               "\", type=\"" + (e.outgoing ? "outgoing" : "incoming") + "\"\n";
        break;
      case MonitorEvent::Kind::Timing:
        out += "[Timing] count=" + std::to_string(e.period) + "\n";
        break;
    }
  }
  return out;
}

}  // namespace mui::testing
