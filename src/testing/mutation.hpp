#pragma once
// Structural mutation operators for hidden component behaviors — the fault
// model behind experiment E11 (mutation adequacy): how many seeded defects
// does the integration loop kill (RealError), and are the survivors truly
// equivalent in the given context (ProvenCorrect *and* ground truth holds)?
//
// Mutants are generated on the automaton level so that ground truth remains
// model-checkable; all operators preserve input-determinism (a mutation
// that would break it is skipped and another site is drawn).

#include <cstdint>
#include <optional>
#include <string>

#include "automata/automaton.hpp"

namespace mui::testing {

enum class MutationOp {
  DeleteTransition,  // introduces a refusal
  DropOutputs,       // the transition fires silently (outputs := ∅)
  RedirectTarget,    // the transition jumps to a random other state
};

struct Mutation {
  MutationOp op = MutationOp::DeleteTransition;
  automata::StateId from = 0;
  automata::Interaction label;
  automata::StateId newTarget = 0;  // RedirectTarget only

  [[nodiscard]] std::string describe(
      const automata::Automaton& original) const;
};

/// Draws a random applicable mutation (deterministic in `seed`) and applies
/// it. Returns std::nullopt if no applicable site exists (e.g. DropOutputs
/// would violate input-determinism everywhere). The mutant keeps the
/// original's name, states, and labels.
std::optional<std::pair<automata::Automaton, Mutation>> mutateAutomaton(
    const automata::Automaton& original, MutationOp op, std::uint64_t seed);

}  // namespace mui::testing
