#pragma once
// Out-of-process legacy components (the paper's actual premise: a black box
// you do *not* control and cannot link). SubprocessLegacy spawns an adapter
// binary and speaks a line-oriented JSONL protocol over the child's
// stdin/stdout — one flat JSON object per line, written through the
// centralized UTF-8-validating escaper (util/json.hpp) and read back with
// obs::parseFlatJson:
//
//   -> {"cmd":"hello"}
//   <- {"ok":true,"name":"bci","inputs":"hello cmd","outputs":"ack done"}
//   -> {"cmd":"step","inputs":"hello"}
//   <- {"ok":true,"outputs":""}          accepted; empty output set
//   <- {"ok":true,"refused":true}        refusal (state unchanged)
//   -> {"cmd":"probe"}
//   <- {"ok":true,"state":"acking"}
//   -> {"cmd":"reset"}   <- {"ok":true}
//   -> {"cmd":"quit"}    (no response; the adapter exits)
//
// docs/ADAPTERS.md is the normative protocol spec.
//
// Containment contract: a dead, hung, or garbling adapter NEVER hangs or
// crashes the harness. Every exchange runs under a poll(2) deadline; a
// deadline hit SIGKILLs the child and raises AdapterFailure(Timeout).
// Unexpected death (EOF/EPIPE) is retried by a bounded respawn: because
// legacy components are input-deterministic (paper Sec. 3), replaying the
// accepted-step log against a fresh process reconstructs the hidden state
// exactly, so the pending command can be retried soundly. When the respawn
// budget runs out — or the adapter answers garbage — AdapterFailure
// propagates to the verifier, which surfaces it as the distinct
// Verdict::AdapterFailure (never an ordinary engine error).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/journal.hpp"
#include "testing/legacy.hpp"

namespace mui::muml {
struct ExternalLegacy;
struct Model;
}  // namespace mui::muml

namespace mui::testing {

/// Raised when an adapter subprocess cannot deliver a sound answer. The
/// kind distinguishes the failure classes the fault-injection matrix tests:
/// Spawn (binary would not start / no hello), Crash (died, respawn budget
/// exhausted), Timeout (step deadline fired, child SIGKILLed), Protocol
/// (unparseable or out-of-spec response — garbage is an error, not a parse
/// abort), Replay (the respawned process diverged from the accepted-step
/// log, i.e. the binary is not input-deterministic).
class AdapterFailure : public std::runtime_error {
 public:
  enum class Kind { Spawn, Crash, Timeout, Protocol, Replay };

  AdapterFailure(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// One-word kind name ("spawn", "crash", "timeout", "protocol", "replay").
const char* adapterFailureKindName(AdapterFailure::Kind kind);

struct SubprocessConfig {
  /// Resolved path of the adapter binary (see muml::resolveExternalBinary).
  std::string binary;
  /// Extra argv entries after the binary path.
  std::vector<std::string> args;
  /// Component name (reported by name()); defaults to the binary path.
  std::string name;
  /// Shared signal universe and the declared I/O interface (paper Sec. 3:
  /// the interface is always known from the architectural model).
  automata::SignalTableRef signals;
  automata::SignalSet inputs;
  automata::SignalSet outputs;
  /// Per-exchange deadline. A slower adapter is indistinguishable from a
  /// hung one; the deadline is the containment budget the fault-injection
  /// tests gate on.
  std::uint64_t stepDeadlineMs = 2000;
  /// Crash recoveries allowed over the component's lifetime (clones start
  /// with a fresh budget). Timeouts are never retried: replaying the same
  /// deterministic input into a binary that just hung would only burn
  /// another full deadline.
  std::size_t maxRespawns = 3;
  /// Optional lifecycle journal ("adapter" events: spawn/crash/timeout/
  /// respawn/exit), ULID-correlated like every other event of a job.
  obs::Journal* journal = nullptr;
  std::string ulid;
};

/// LegacyComponent implementation backed by an adapter subprocess. Not
/// thread-safe (like every LegacyComponent); safe to destroy at any time —
/// the destructor asks the child to quit and SIGKILLs it if it lingers.
class SubprocessLegacy final : public LegacyComponent {
 public:
  explicit SubprocessLegacy(SubprocessConfig config);
  ~SubprocessLegacy() override;

  SubprocessLegacy(const SubprocessLegacy&) = delete;
  SubprocessLegacy& operator=(const SubprocessLegacy&) = delete;

  void reset() override;
  std::optional<SignalSet> step(const SignalSet& inputs) override;
  [[nodiscard]] std::string currentStateName() const override;
  [[nodiscard]] const SignalSet& inputs() const override;
  [[nodiscard]] const SignalSet& outputs() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<LegacyComponent> clone() const override;

  /// Lifecycle introspection for tests: crash recoveries performed so far,
  /// and the live child pid (-1 when no process is running — the process
  /// is spawned lazily on the first exchange).
  [[nodiscard]] std::size_t respawns() const { return respawnsUsed_; }
  [[nodiscard]] int pid() const { return pid_; }

 private:
  struct LoggedStep {
    SignalSet inputs;
    SignalSet outputs;
  };

  // All process state is mutable: the const white-box probe
  // currentStateName() may need to (re)spawn and replay.
  void ensureProcess();
  void spawnProcess();
  void killProcess();
  void reapProcess();
  void handshake();
  void replayLog();
  /// One request/response exchange against the live process. Throws
  /// AdapterFailure(Crash/Timeout/Protocol); never respawns.
  obs::FlatObject exchangeChecked(const std::string& line);
  /// exchangeChecked plus the bounded crash-respawn-replay-retry loop.
  obs::FlatObject command(const std::string& line);
  void journalEvent(const char* event, const char* detail = nullptr) const;

  [[nodiscard]] std::string renderSignals(const SignalSet& set) const;
  [[nodiscard]] SignalSet parseOutputs(const std::string& text) const;

  SubprocessConfig config_;
  mutable int pid_ = -1;
  mutable int toChild_ = -1;    // write end of the child's stdin
  mutable int fromChild_ = -1;  // read end of the child's stdout
  mutable std::string readBuf_;
  mutable std::vector<LoggedStep> log_;
  mutable std::size_t respawnsUsed_ = 0;
};

/// Builds the SubprocessConfig for a `legacy ... external` model clause:
/// resolves the binary (muml::resolveExternalBinary — throws a located
/// SemanticError when missing or not executable), expands the `%model%`
/// argument placeholder to the declaring .muml file's path, and copies the
/// declared I/O interface. journal/ulid are left for the caller.
SubprocessConfig configFromExternal(const muml::Model& model,
                                    const muml::ExternalLegacy& ext);

}  // namespace mui::testing
