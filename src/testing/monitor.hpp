#pragma once
// Monitoring events and probe levels (paper Sec. 5, Listings 1.2/1.3/1.5).
//
// Probe levels reflect the paper's probe-effect discussion: on the target
// system only the events needed for deterministic replay are recorded
// (messages + period numbers); during replay on the host, additional probes
// (current state, timing) can be enabled without perturbing the execution.

#include <cstdint>
#include <string>
#include <vector>

namespace mui::testing {

enum class ProbeLevel {
  ReplayOnly,  // messages and period numbers only (Listing 1.2)
  Full,        // + current state and timing counters (Listing 1.3/1.5)
};

struct MonitorEvent {
  enum class Kind { CurrentState, Message, Timing };
  Kind kind = Kind::Message;
  std::string name;              // state name or message name
  std::string portName;          // Message only
  bool outgoing = false;         // Message only
  std::uint64_t period = 0;      // period the event belongs to

  bool operator==(const MonitorEvent&) const = default;
};

/// Collects monitor events subject to a probe level and renders them in the
/// paper's listing format.
class Recorder {
 public:
  explicit Recorder(ProbeLevel level) : level_(level) {}

  [[nodiscard]] ProbeLevel level() const { return level_; }

  void onCurrentState(const std::string& stateName, std::uint64_t period);
  void onMessage(const std::string& message, const std::string& port,
                 bool outgoing, std::uint64_t period);
  void onTiming(std::uint64_t period);

  [[nodiscard]] const std::vector<MonitorEvent>& events() const {
    return events_;
  }

  /// Listing 1.2/1.3 format:
  ///   [CurrentState] name="noConvoy::default"
  ///   [Message] name="convoyProposal", portName="rearRole", type="outgoing"
  ///   [Timing] count=1
  [[nodiscard]] std::string render() const;

 private:
  ProbeLevel level_;
  std::vector<MonitorEvent> events_;
};

}  // namespace mui::testing
