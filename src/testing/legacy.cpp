#include "testing/legacy.hpp"

#include <stdexcept>

namespace mui::testing {

AutomatonLegacy::AutomatonLegacy(automata::Automaton hidden)
    : hidden_(std::move(hidden)) {
  if (hidden_.initialStates().size() != 1) {
    throw std::invalid_argument(
        "AutomatonLegacy: need exactly one initial state");
  }
  // Input-determinism: the response to any input set must be unique.
  for (automata::StateId s = 0; s < hidden_.stateCount(); ++s) {
    const auto& ts = hidden_.transitionsFrom(s);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      for (std::size_t j = i + 1; j < ts.size(); ++j) {
        if (ts[i].label.in == ts[j].label.in) {
          throw std::invalid_argument(
              "AutomatonLegacy: not input-deterministic at state '" +
              hidden_.stateName(s) + "'");
        }
      }
    }
  }
  current_ = hidden_.initialStates()[0];
}

void AutomatonLegacy::reset() { current_ = hidden_.initialStates()[0]; }

std::optional<SignalSet> AutomatonLegacy::step(const SignalSet& inputs) {
  for (const auto& t : hidden_.transitionsFrom(current_)) {
    if (t.label.in == inputs) {
      current_ = t.to;
      return t.label.out;
    }
  }
  return std::nullopt;  // refused
}

std::string AutomatonLegacy::currentStateName() const {
  return hidden_.stateName(current_);
}

const SignalSet& AutomatonLegacy::inputs() const { return hidden_.inputs(); }
const SignalSet& AutomatonLegacy::outputs() const { return hidden_.outputs(); }
std::string AutomatonLegacy::name() const { return hidden_.name(); }

std::unique_ptr<LegacyComponent> AutomatonLegacy::clone() const {
  return std::make_unique<AutomatonLegacy>(*this);
}

}  // namespace mui::testing
