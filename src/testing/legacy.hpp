#pragma once
// The black-box legacy component interface (paper Sec. 1/3).
//
// A legacy component is reactive and input-deterministic: in each period it
// is fed the set of input signals arriving in that period and either
// produces its unique output set (advancing its hidden state) or *refuses*
// the inputs (a blocked interaction — the raw material of T̄, Def. 12).
//
// The interface description (I/O signal sets) is known from the
// architectural model; the hidden state is observable only through the
// white-box probe `currentStateName()`, which the harness consults only at
// the Full instrumentation level (deterministic replay, paper Sec. 5).

#include <memory>
#include <optional>
#include <string>

#include "automata/automaton.hpp"

namespace mui::testing {

using automata::SignalSet;

class LegacyComponent {
 public:
  virtual ~LegacyComponent() = default;

  /// Returns to the initial state.
  virtual void reset() = 0;

  /// Executes one period with the given inputs. Returns the produced output
  /// signals, or std::nullopt if the component refuses the inputs (the
  /// state is then unchanged).
  virtual std::optional<SignalSet> step(const SignalSet& inputs) = 0;

  /// White-box state probe (Full instrumentation only).
  [[nodiscard]] virtual std::string currentStateName() const = 0;

  /// Structural interface description (always known, paper Sec. 3).
  [[nodiscard]] virtual const SignalSet& inputs() const = 0;
  [[nodiscard]] virtual const SignalSet& outputs() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Independent copy in the current state (used by the periodic runtime to
  /// probe candidate synchronizations without committing).
  [[nodiscard]] virtual std::unique_ptr<LegacyComponent> clone() const = 0;
};

/// Wraps a deterministic automaton as a legacy component. Throws
/// std::invalid_argument if the automaton is not input-deterministic (two
/// transitions from one state consuming the same input set) or has no
/// unique initial state.
class AutomatonLegacy final : public LegacyComponent {
 public:
  explicit AutomatonLegacy(automata::Automaton hidden);

  void reset() override;
  std::optional<SignalSet> step(const SignalSet& inputs) override;
  [[nodiscard]] std::string currentStateName() const override;
  [[nodiscard]] const SignalSet& inputs() const override;
  [[nodiscard]] const SignalSet& outputs() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<LegacyComponent> clone() const override;

  /// The hidden model — for tests and ground-truth comparisons only.
  [[nodiscard]] const automata::Automaton& hidden() const { return hidden_; }

 private:
  automata::Automaton hidden_;
  automata::StateId current_ = 0;
};

}  // namespace mui::testing
