#include "testing/subprocess.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include "muml/external.hpp"
#include "muml/model.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace mui::testing {

namespace {

using Clock = std::chrono::steady_clock;

// A dying adapter closes its stdin pipe; the next write must come back as
// EPIPE (handled as a crash), not as a process-killing SIGPIPE.
void ignoreSigpipeOnce() {
  static const bool done = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

obs::Counter& spawnsCounter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "mui_adapter_spawns_total", "Adapter subprocesses spawned");
  return c;
}

obs::Counter& crashesCounter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "mui_adapter_crashes_total",
      "Adapter subprocesses that died unexpectedly (EOF/EPIPE mid-protocol)");
  return c;
}

obs::Counter& timeoutsCounter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "mui_adapter_timeouts_total",
      "Adapter exchanges killed by the per-step deadline");
  return c;
}

obs::Counter& respawnsCounter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "mui_adapter_respawns_total",
      "Adapter crash recoveries (respawn + accepted-step-log replay)");
  return c;
}

/// Splits a space-separated signal-name list (the wire format keeps signal
/// sets inside one flat JSON string so responses stay parseFlatJson-able).
std::vector<std::string> splitNames(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string word;
  while (in >> word) out.push_back(word);
  return out;
}

std::string truncated(std::string_view line) {
  constexpr std::size_t kMax = 160;
  std::string s(line.substr(0, kMax));
  if (line.size() > kMax) s += "...";
  return s;
}

}  // namespace

const char* adapterFailureKindName(AdapterFailure::Kind kind) {
  switch (kind) {
    case AdapterFailure::Kind::Spawn:
      return "spawn";
    case AdapterFailure::Kind::Crash:
      return "crash";
    case AdapterFailure::Kind::Timeout:
      return "timeout";
    case AdapterFailure::Kind::Protocol:
      return "protocol";
    case AdapterFailure::Kind::Replay:
      return "replay";
  }
  return "?";
}

SubprocessLegacy::SubprocessLegacy(SubprocessConfig config)
    : config_(std::move(config)) {
  if (config_.binary.empty()) {
    throw std::invalid_argument("SubprocessLegacy: empty adapter binary path");
  }
  if (!config_.signals) {
    throw std::invalid_argument("SubprocessLegacy: no signal table");
  }
  if (config_.name.empty()) config_.name = config_.binary;
  ignoreSigpipeOnce();
}

SubprocessLegacy::~SubprocessLegacy() {
  if (pid_ < 0) return;
  // Best effort polite shutdown: quit + stdin EOF, then a bounded wait
  // before SIGKILL — a hung adapter must not hang the harness destructor.
  const std::string quit = "{\"cmd\":\"quit\"}\n";
  if (toChild_ >= 0) {
    (void)!::write(toChild_, quit.data(), quit.size());
    ::close(toChild_);
    toChild_ = -1;
  }
  for (int i = 0; i < 20; ++i) {
    if (::waitpid(pid_, nullptr, WNOHANG) == pid_) {
      pid_ = -1;
      break;
    }
    ::usleep(10 * 1000);
  }
  if (pid_ >= 0) {
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }
  if (fromChild_ >= 0) ::close(fromChild_);
  fromChild_ = -1;
  journalEvent("exit");
}

void SubprocessLegacy::journalEvent(const char* event,
                                    const char* detail) const {
  if (config_.journal == nullptr) return;
  obs::JsonObject fields;
  fields.s("adapter", config_.name);
  if (!config_.ulid.empty()) fields.s("ulid", config_.ulid);
  fields.s("event", event);
  if (pid_ >= 0) fields.i("pid", pid_);
  if (detail != nullptr) fields.s("detail", detail);
  config_.journal->event("adapter", fields);
}

void SubprocessLegacy::spawnProcess() {
  int inPipe[2];   // harness -> child stdin
  int outPipe[2];  // child stdout -> harness
  if (::pipe(inPipe) != 0) {
    throw AdapterFailure(AdapterFailure::Kind::Spawn,
                         "adapter '" + config_.name +
                             "': pipe() failed: " + std::strerror(errno));
  }
  if (::pipe(outPipe) != 0) {
    ::close(inPipe[0]);
    ::close(inPipe[1]);
    throw AdapterFailure(AdapterFailure::Kind::Spawn,
                         "adapter '" + config_.name +
                             "': pipe() failed: " + std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {inPipe[0], inPipe[1], outPipe[0], outPipe[1]}) {
      ::close(fd);
    }
    throw AdapterFailure(AdapterFailure::Kind::Spawn,
                         "adapter '" + config_.name +
                             "': fork() failed: " + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: wire the pipes to stdio, drop every other inherited fd (the
    // serve daemon's sockets must not leak into adapters), exec.
    ::dup2(inPipe[0], STDIN_FILENO);
    ::dup2(outPipe[1], STDOUT_FILENO);
    for (int fd = 3; fd < 1024; ++fd) ::close(fd);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(config_.binary.c_str()));
    for (const auto& a : config_.args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(config_.binary.c_str(), argv.data());
    ::_exit(127);
  }
  ::close(inPipe[0]);
  ::close(outPipe[1]);
  pid_ = pid;
  toChild_ = inPipe[1];
  fromChild_ = outPipe[0];
  readBuf_.clear();
  spawnsCounter().inc();
  journalEvent("spawn");
}

void SubprocessLegacy::killProcess() {
  if (pid_ >= 0) {
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }
  if (toChild_ >= 0) ::close(toChild_);
  if (fromChild_ >= 0) ::close(fromChild_);
  toChild_ = -1;
  fromChild_ = -1;
  readBuf_.clear();
}

void SubprocessLegacy::reapProcess() {
  if (pid_ >= 0) {
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }
  if (toChild_ >= 0) ::close(toChild_);
  if (fromChild_ >= 0) ::close(fromChild_);
  toChild_ = -1;
  fromChild_ = -1;
  readBuf_.clear();
}

obs::FlatObject SubprocessLegacy::exchangeChecked(const std::string& line) {
  // Write the request. EPIPE means the child died under us.
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(toChild_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      reapProcess();
      throw AdapterFailure(AdapterFailure::Kind::Crash,
                           "adapter '" + config_.name +
                               "' died (write failed: " +
                               std::strerror(errno) + ")");
    }
    off += static_cast<std::size_t>(n);
  }

  // Read one response line under the deadline.
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.stepDeadlineMs);
  std::string response;
  while (true) {
    const std::size_t nl = readBuf_.find('\n');
    if (nl != std::string::npos) {
      response = readBuf_.substr(0, nl);
      readBuf_.erase(0, nl + 1);
      break;
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) {
      timeoutsCounter().inc();
      journalEvent("timeout");
      killProcess();
      throw AdapterFailure(
          AdapterFailure::Kind::Timeout,
          "adapter '" + config_.name + "' exceeded the step deadline of " +
              std::to_string(config_.stepDeadlineMs) + " ms (killed)");
    }
    struct pollfd pfd {};
    pfd.fd = fromChild_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (rc < 0) {
      if (errno == EINTR) continue;
      reapProcess();
      throw AdapterFailure(AdapterFailure::Kind::Crash,
                           "adapter '" + config_.name +
                               "': poll() failed: " + std::strerror(errno));
    }
    if (rc == 0) continue;  // deadline re-checked at the top of the loop
    char chunk[4096];
    const ssize_t n = ::read(fromChild_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      reapProcess();
      throw AdapterFailure(AdapterFailure::Kind::Crash,
                           "adapter '" + config_.name +
                               "': read() failed: " + std::strerror(errno));
    }
    if (n == 0) {
      reapProcess();
      throw AdapterFailure(AdapterFailure::Kind::Crash,
                           "adapter '" + config_.name +
                               "' died (EOF before a response)");
    }
    readBuf_.append(chunk, static_cast<std::size_t>(n));
  }

  const auto parsed = obs::parseFlatJson(response);
  if (!parsed) {
    throw AdapterFailure(AdapterFailure::Kind::Protocol,
                         "adapter '" + config_.name +
                             "' answered garbage (not a JSON object): " +
                             truncated(response));
  }
  const auto ok = parsed->find("ok");
  if (ok == parsed->end() || ok->second.kind != obs::JsonValue::Kind::Bool ||
      !ok->second.boolean) {
    std::string what = "adapter '" + config_.name + "' reported an error";
    const auto err = parsed->find("error");
    if (err != parsed->end()) what += ": " + err->second.text;
    throw AdapterFailure(AdapterFailure::Kind::Protocol, what);
  }
  return *parsed;
}

void SubprocessLegacy::handshake() {
  obs::FlatObject hello;
  try {
    hello = exchangeChecked("{\"cmd\":\"hello\"}\n");
  } catch (const AdapterFailure& e) {
    if (e.kind() != AdapterFailure::Kind::Crash) throw;
    // A binary that exits before greeting never started as an adapter —
    // that is a spawn failure, not a crash worth a respawn.
    throw AdapterFailure(AdapterFailure::Kind::Spawn,
                         "adapter '" + config_.name +
                             "' failed to start: " + e.what());
  }
  // The adapter's self-described interface must match the declared one —
  // integrating against the wrong binary should fail in the handshake, not
  // as a confusing refusal pattern deep inside the loop.
  const auto checkSide = [&](const char* key, const SignalSet& declared) {
    const auto it = hello.find(key);
    if (it == hello.end()) return;  // self-description is optional
    SignalSet reported;
    for (const auto& name : splitNames(it->second.text)) {
      const auto id = config_.signals->lookup(name);
      if (!id) {
        throw AdapterFailure(AdapterFailure::Kind::Protocol,
                             "adapter '" + config_.name + "' declares " +
                                 std::string(key) + " signal '" + name +
                                 "' which is not in the model's alphabet");
      }
      reported.set(*id);
    }
    if (!(reported == declared)) {
      throw AdapterFailure(
          AdapterFailure::Kind::Protocol,
          "adapter '" + config_.name + "' declares " + std::string(key) +
              " {" + renderSignals(reported) + "} but the model declares {" +
              renderSignals(declared) + "}");
    }
  };
  checkSide("inputs", config_.inputs);
  checkSide("outputs", config_.outputs);
}

void SubprocessLegacy::replayLog() {
  // Sound by input-determinism (paper Sec. 3): the accepted-step log is a
  // function of the inputs only, so a fresh process fed the same inputs
  // lands in the same hidden state. Divergence disproves the premise.
  for (const LoggedStep& step : log_) {
    const std::string line = "{\"cmd\":\"step\",\"inputs\":" +
                             util::jsonQuote(renderSignals(step.inputs)) +
                             "}\n";
    const obs::FlatObject resp = exchangeChecked(line);
    const auto refused = resp.find("refused");
    if (refused != resp.end() && refused->second.boolean) {
      throw AdapterFailure(AdapterFailure::Kind::Replay,
                           "adapter '" + config_.name +
                               "' refused a previously accepted step during "
                               "replay — not input-deterministic");
    }
    const auto out = resp.find("outputs");
    const SignalSet produced =
        out != resp.end() ? parseOutputs(out->second.text) : SignalSet{};
    if (!(produced == step.outputs)) {
      throw AdapterFailure(AdapterFailure::Kind::Replay,
                           "adapter '" + config_.name +
                               "' produced {" + renderSignals(produced) +
                               "} instead of {" +
                               renderSignals(step.outputs) +
                               "} during replay — not input-deterministic");
    }
  }
}

void SubprocessLegacy::ensureProcess() {
  if (pid_ >= 0) return;
  spawnProcess();
  handshake();
  replayLog();
}

obs::FlatObject SubprocessLegacy::command(const std::string& line) {
  while (true) {
    try {
      ensureProcess();
      return exchangeChecked(line);
    } catch (const AdapterFailure& e) {
      if (e.kind() != AdapterFailure::Kind::Crash) throw;
      crashesCounter().inc();
      journalEvent("crash", e.what());
      if (respawnsUsed_ >= config_.maxRespawns) {
        throw AdapterFailure(
            AdapterFailure::Kind::Crash,
            std::string(e.what()) + "; respawn budget of " +
                std::to_string(config_.maxRespawns) + " exhausted");
      }
      ++respawnsUsed_;
      respawnsCounter().inc();
      journalEvent("respawn");
      // Loop: ensureProcess() respawns and replays the accepted-step log,
      // then the pending command is retried.
    }
  }
}

void SubprocessLegacy::reset() {
  log_.clear();
  if (pid_ < 0) return;  // a lazily spawned fresh process starts reset
  command("{\"cmd\":\"reset\"}\n");
}

std::optional<SignalSet> SubprocessLegacy::step(const SignalSet& inputs) {
  const std::string line = "{\"cmd\":\"step\",\"inputs\":" +
                           util::jsonQuote(renderSignals(inputs)) + "}\n";
  const obs::FlatObject resp = command(line);
  const auto refused = resp.find("refused");
  if (refused != resp.end() &&
      refused->second.kind == obs::JsonValue::Kind::Bool &&
      refused->second.boolean) {
    return std::nullopt;  // refusals do not advance state: nothing to log
  }
  const auto out = resp.find("outputs");
  SignalSet produced =
      out != resp.end() ? parseOutputs(out->second.text) : SignalSet{};
  log_.push_back({inputs, produced});
  return produced;
}

std::string SubprocessLegacy::currentStateName() const {
  auto* self = const_cast<SubprocessLegacy*>(this);
  const obs::FlatObject resp = self->command("{\"cmd\":\"probe\"}\n");
  const auto state = resp.find("state");
  if (state == resp.end() ||
      state->second.kind != obs::JsonValue::Kind::String) {
    throw AdapterFailure(AdapterFailure::Kind::Protocol,
                         "adapter '" + config_.name +
                             "' answered a probe without a \"state\" string");
  }
  return state->second.text;
}

const SignalSet& SubprocessLegacy::inputs() const { return config_.inputs; }

const SignalSet& SubprocessLegacy::outputs() const { return config_.outputs; }

std::string SubprocessLegacy::name() const { return config_.name; }

std::unique_ptr<LegacyComponent> SubprocessLegacy::clone() const {
  // A clone is a fresh process with the same accepted-step log: it lazily
  // spawns and replays into the current hidden state on first use (sound by
  // input-determinism, same argument as crash recovery).
  auto copy = std::make_unique<SubprocessLegacy>(config_);
  copy->log_ = log_;
  return copy;
}

std::string SubprocessLegacy::renderSignals(const SignalSet& set) const {
  std::string out;
  set.forEach([&](std::size_t bit) {
    if (!out.empty()) out += ' ';
    out += config_.signals->name(static_cast<util::NameId>(bit));
  });
  return out;
}

SignalSet SubprocessLegacy::parseOutputs(const std::string& text) const {
  SignalSet set;
  for (const auto& name : splitNames(text)) {
    const auto id = config_.signals->lookup(name);
    if (!id || !config_.outputs.test(*id)) {
      throw AdapterFailure(AdapterFailure::Kind::Protocol,
                           "adapter '" + config_.name +
                               "' produced undeclared output signal '" +
                               name + "'");
    }
    set.set(*id);
  }
  return set;
}

SubprocessConfig configFromExternal(const muml::Model& model,
                                    const muml::ExternalLegacy& ext) {
  SubprocessConfig cfg;
  cfg.binary = muml::resolveExternalBinary(ext, model.source);
  cfg.name = ext.name;
  cfg.signals = model.signals;
  cfg.inputs = ext.inputs;
  cfg.outputs = ext.outputs;
  if (ext.stepDeadlineMs != 0) cfg.stepDeadlineMs = ext.stepDeadlineMs;
  if (ext.maxRespawns != muml::ExternalLegacy::kDefaultRespawns) {
    cfg.maxRespawns = ext.maxRespawns;
  }
  const std::string modelPath = [&] {
    const auto it = model.source.externals.find(ext.name);
    return it != model.source.externals.end() ? it->second.file
                                              : std::string();
  }();
  for (const auto& arg : ext.args) {
    cfg.args.push_back(arg == "%model%" ? modelPath : arg);
  }
  return cfg;
}

}  // namespace mui::testing
