#pragma once
// A hand-written "legacy code" rear-shuttle controller, in the style of the
// embedded C code the paper's approach targets: integer mode variables,
// switch-based stepping, numeric return codes — no model, no documentation
// of the protocol. The adapter below puts it behind the LegacyComponent
// interface so the integration loop can treat it exactly like any other
// black box (with the state-name probe as the only white-box concession,
// paper Sec. 5).
//
// Two builds of the controller exist: the shipped (correct) firmware and an
// older faulty revision that enters convoy mode straight after proposing —
// the defect of paper Fig. 6 / Listing 1.3.

#include "testing/legacy.hpp"

namespace mui::testing {

/// The raw legacy controller ("firmware").
class ShuttleControllerFirmware {
 public:
  // Message codes on the coordination bus (legacy wire protocol).
  enum : int {
    MSG_NONE = 0,
    MSG_CONVOY_PROPOSAL_REJECTED = 1,
    MSG_START_CONVOY = 2,
    MSG_BREAK_CONVOY_REJECTED = 3,
    MSG_BREAK_CONVOY_ACCEPTED = 4,
  };
  enum : int {
    OUT_NONE = 0,
    OUT_CONVOY_PROPOSAL = 1,
    OUT_BREAK_CONVOY_PROPOSAL = 2,
  };
  // Return codes of tick().
  enum : int { RC_OK = 0, RC_UNEXPECTED_MSG = -1 };

  explicit ShuttleControllerFirmware(bool faultyRevision)
      : faulty_(faultyRevision) {}

  void init();

  /// Executes one control period. `rx` is the message received this period
  /// (MSG_NONE if the bus was silent); `tx` receives the message to send.
  /// Returns RC_UNEXPECTED_MSG (without changing state) when the received
  /// message makes no sense in the current mode — the behavior that shows
  /// up as a blocked interaction during testing.
  int tick(int rx, int* tx);

  /// Debug hook (compiled into the instrumented build only, in the spirit
  /// of the paper's probe discussion): the current mode as text.
  [[nodiscard]] const char* debugModeName() const;

 private:
  // Controller modes. The faulty revision lacks the WAIT handshake.
  enum Mode {
    MODE_DEFAULT = 0,
    MODE_READY = 1,
    MODE_WAIT = 2,
    MODE_CONVOY = 3,
    MODE_HOLD = 4,
    MODE_CONVOY_WAIT = 5,
  };
  int mode_ = MODE_DEFAULT;
  bool faulty_ = false;
};

/// Adapter: ShuttleControllerFirmware behind the LegacyComponent interface.
/// State names follow the monitored hierarchy of the paper's listings
/// ("noConvoy::default", "noConvoy::wait", "convoy::default", ...).
class FirmwareShuttleLegacy final : public LegacyComponent {
 public:
  /// `signals` must be the shared signal table of the surrounding model so
  /// that the adapter's signal ids line up with the context automaton.
  FirmwareShuttleLegacy(const automata::SignalTableRef& signals,
                        bool faultyRevision);

  void reset() override;
  std::optional<SignalSet> step(const SignalSet& inputs) override;
  [[nodiscard]] std::string currentStateName() const override;
  [[nodiscard]] const SignalSet& inputs() const override { return inputs_; }
  [[nodiscard]] const SignalSet& outputs() const override { return outputs_; }
  [[nodiscard]] std::string name() const override { return "rearRole"; }
  [[nodiscard]] std::unique_ptr<LegacyComponent> clone() const override;

 private:
  automata::SignalTableRef signals_;
  SignalSet inputs_;
  SignalSet outputs_;
  util::NameId inRejected_, inStart_, inBreakRejected_, inBreakAccepted_;
  util::NameId outProposal_, outBreakProposal_;
  ShuttleControllerFirmware fw_;
};

}  // namespace mui::testing
