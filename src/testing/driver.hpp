#pragma once
// Counterexample-based testing (paper Sec. 5).
//
// The driver executes the legacy-side projection of a model-checker
// counterexample against the real component in two phases, mirroring the
// paper's deterministic-replay methodology:
//
//   Phase 1 (target): run with ReplayOnly probes — only messages and period
//   numbers are recorded (Listing 1.2), keeping the probe effect minimal.
//
//   Phase 2 (host): deterministically replay the recorded inputs with Full
//   instrumentation — state and timing probes enabled (Listing 1.3/1.5).
//   The replay cross-checks that outputs are reproduced identically; a
//   mismatch would indicate a probe effect or nondeterminism and raises.
//
// The outcome distinguishes the three cases of Sec. 4.2/4.3: the trace is
// Confirmed (candidate real counterexample), the component Diverged with a
// different output (a new regular run to learn, Def. 11, plus a justified
// refusal of the expected interaction, Def. 12 — the component is
// deterministic), or it Blocked outright (a refusal to learn, Def. 12).

#include <optional>
#include <vector>

#include "automata/run.hpp"
#include "testing/legacy.hpp"
#include "testing/monitor.hpp"

namespace mui::testing {

struct TestOutcome {
  enum class Kind { Confirmed, Diverged, Blocked };
  Kind kind = Kind::Confirmed;

  /// Steps successfully executed (for Diverged this includes the diverging
  /// step, which did execute — with a different output).
  std::size_t executedSteps = 0;

  /// The state-enriched run actually observed (regular for
  /// Confirmed/Diverged, blocked for Blocked). Input to learn() (Def. 11/12).
  automata::ObservedRun observed;

  /// For Diverged: the expected interaction is also refused at the
  /// divergence state (determinism), yielding an additional Def.-12 fact.
  std::optional<automata::ObservedRun> refusalRun;

  Recorder targetLog{ProbeLevel::ReplayOnly};  // phase 1 (Listing 1.2)
  Recorder replayLog{ProbeLevel::Full};        // phase 2 (Listing 1.3/1.5)
};

class CounterexampleTestDriver {
 public:
  CounterexampleTestDriver(LegacyComponent& legacy,
                           const automata::SignalTable& signals)
      : legacy_(legacy), signals_(signals) {}

  /// Executes the projected counterexample (one expected interaction per
  /// period) against the component.
  TestOutcome execute(const std::vector<automata::Interaction>& expectedSteps);

  /// Total periods driven on the component so far (test effort metric).
  [[nodiscard]] std::uint64_t periodsDriven() const { return periods_; }

 private:
  void logMessages(Recorder& rec, const SignalSet& signals, bool outgoing,
                   std::uint64_t period) const;

  LegacyComponent& legacy_;
  const automata::SignalTable& signals_;
  std::uint64_t periods_ = 0;
};

}  // namespace mui::testing
