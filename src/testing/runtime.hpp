#pragma once
// A periodic runtime coupling a legacy component with an environment
// automaton in lockstep periods — the "execute the system in the real
// environment" half of the paper's replay methodology (Sec. 5). Used by the
// examples to produce Listing-1.2-style target recordings, and by tests to
// cross-validate operational execution against the composition semantics.

#include <cstdint>

#include "automata/automaton.hpp"
#include "testing/legacy.hpp"
#include "testing/monitor.hpp"
#include "util/rng.hpp"

namespace mui::testing {

class PeriodicRuntime {
 public:
  /// `environment` plays the context role; nondeterministic environment
  /// choices are resolved pseudo-randomly from `seed`.
  PeriodicRuntime(const automata::Automaton& environment,
                  LegacyComponent& legacy, std::uint64_t seed);

  /// Executes up to `periods` lockstep periods, logging the legacy
  /// component's messages (and, under Full probes, states/timing) into
  /// `recorder`. Stops early when no joint step is possible (system
  /// deadlock). Returns the number of periods executed.
  std::uint64_t run(std::uint64_t periods, Recorder& recorder);

  [[nodiscard]] automata::StateId environmentState() const { return envState_; }
  void reset();

 private:
  const automata::Automaton& env_;
  LegacyComponent& legacy_;
  util::Rng rng_;
  automata::StateId envState_;
  std::uint64_t period_ = 0;
};

}  // namespace mui::testing
