#pragma once
// Human-readable reporting for integration results: the per-iteration
// journal as an aligned table (the shape of paper Fig. 2's loop unrolled)
// and a one-paragraph verdict summary. Used by the examples and the bench
// harness.

#include <string>

#include "synthesis/verifier.hpp"

namespace mui::synthesis {

/// One-word verdict name ("proven", "real-error", ...).
const char* verdictName(Verdict v);

/// The journal as an aligned text table:
///   iter  model S/T/F  closure S  product S  cex  len  periods  learned
std::string renderJournal(const IntegrationResult& result);

/// Verdict, explanation, and headline numbers in a short paragraph.
std::string renderSummary(const IntegrationResult& result);

}  // namespace mui::synthesis
