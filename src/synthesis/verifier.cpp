#include "synthesis/verifier.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "automata/minimize.hpp"
#include "ctl/formula.hpp"
#include "ctl/parser.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "synthesis/initial.hpp"
#include "synthesis/report.hpp"
#include "testing/subprocess.hpp"

namespace mui::synthesis {

namespace {
constexpr std::size_t kNoChaos = static_cast<std::size_t>(-1);
}

IntegrationVerifier::IntegrationVerifier(
    automata::Automaton context,
    std::vector<testing::LegacyComponent*> legacies, IntegrationConfig config)
    : context_(std::move(context)),
      legacies_(std::move(legacies)),
      config_(std::move(config)) {
  if (legacies_.empty()) {
    throw std::invalid_argument("IntegrationVerifier: no legacy components");
  }
  if (config_.minimizeContext) {
    context_ = automata::minimizeBisimulation(context_);
  }
  for (auto* legacy : legacies_) {
    models_.push_back(
        initialModel(*legacy, context_.signalTable(), context_.propTable()));
    alphabets_.push_back(
        automata::makeAlphabet(legacy->inputs(), legacy->outputs(),
                               config_.mode));
  }
  suites_.resize(legacies_.size());
}

IntegrationVerifier::IntegrationVerifier(automata::Automaton context,
                                         testing::LegacyComponent& legacy,
                                         IntegrationConfig config)
    : IntegrationVerifier(std::move(context), std::vector{&legacy},
                          std::move(config)) {}

IntegrationResult IntegrationVerifier::run() {
  IntegrationResult res;

  const std::string runId =
      config_.runId.empty() ? context_.name() : config_.runId;
  const obs::ObsSpan runSpan("integration:" + runId, config_.ulid);
  obs::Journal* const journal = config_.journal;
  obs::JobProgress* const progress = config_.progress;
  // Every event of this run opens with the run label and, when the run is
  // correlated, its job ulid (journal schema v2).
  const auto baseFields = [&] {
    obs::JsonObject o;
    o.s("run", runId);
    if (!config_.ulid.empty()) o.s("ulid", config_.ulid);
    return o;
  };
  if (journal != nullptr) {
    journal->event("run_start",
                   baseFields()
                       .u("legacies", legacies_.size())
                       .s("property", config_.property)
                       .u("maxIterations", config_.maxIterations)
                       .b("incrementalCompose", config_.incrementalCompose));
  }

  ctl::FormulaPtr phi;
  if (!config_.property.empty()) {
    // Sec. 2.7 weakening: chaotic states satisfy every literal, so the
    // over-approximation never produces spurious *property* witnesses.
    phi = ctl::weakenForChaos(ctl::parseFormula(config_.property));
  }

  const auto totalKnowledge = [&] {
    std::size_t n = 0;
    for (const auto& m : models_) n += m.knowledge();
    return n;
  };

  // Cooperative cancellation: polled between the phases of each iteration so
  // a deadline interrupts even a single long iteration at the next phase
  // boundary (model checking itself is not interruptible).
  bool wasCancelled = false;
  const auto cancelled = [&] {
    wasCancelled =
        wasCancelled || (config_.cancelRequested && config_.cancelRequested());
    return wasCancelled;
  };

  // Which abstractions the configuration actually needs: no property means
  // the optimistic product would be checked against nothing, and deadlock
  // freedom off means the pessimistic product would be, too. Skipping them
  // is the degenerate case of sharing exploration between the abstractions.
  const bool needOpt = phi != nullptr;
  const bool needPess = config_.requireDeadlockFree;

  const auto accumulate = [&res](const IterationRecord& rec) {
    res.totalProductStatesNew += rec.productStatesNew;
    res.totalProductStatesReused += rec.productStatesReused;
    res.totalClosureMs += rec.closureMs;
    res.totalComposeMs += rec.composeMs;
    res.totalCheckMs += rec.checkMs;
    res.totalTestMs += rec.testMs;
  };

  const auto emitIteration = [&](const IterationRecord& rec) {
    if (journal == nullptr) return;
    std::string cexKind;
    if (!rec.checkPassed) {
      cexKind = rec.cexWasDeadlock ? "deadlock" : "property";
    }
    journal->event("iteration",
                   baseFields()
                       .u("iter", rec.iteration)
                       .u("modelStates", rec.modelStates)
                       .u("modelTransitions", rec.modelTransitions)
                       .u("modelForbidden", rec.modelForbidden)
                       .u("closureStates", rec.closureStates)
                       .u("productStates", rec.productStates)
                       .u("statesNew", rec.productStatesNew)
                       .u("statesReused", rec.productStatesReused)
                       .b("checkPassed", rec.checkPassed)
                       .s("cexKind", cexKind)
                       .u("cexLength", rec.cexLength)
                       .u("learnedFacts", rec.learnedFacts)
                       .u("testPeriods", rec.testPeriods)
                       .f("closureMs", rec.closureMs)
                       .f("composeMs", rec.composeMs)
                       .f("checkMs", rec.checkMs)
                       .f("testMs", rec.testMs));
  };

  for (std::size_t iter = 0; iter < config_.maxIterations && !cancelled();
       ++iter) {
    const obs::ObsSpan iterSpan("iteration", iter, config_.ulid);
    if (progress != nullptr) progress->setIteration(iter + 1);
    IterationRecord rec;
    rec.iteration = iter;
    for (const auto& m : models_) {
      rec.modelStates += m.base().stateCount();
      rec.modelTransitions += m.base().transitionCount();
      rec.modelForbidden += m.forbiddenCount();
    }

    using Clock = std::chrono::steady_clock;
    auto mark = Clock::now();
    const auto lapMs = [&mark] {
      const auto now = Clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(now - mark).count();
      mark = now;
      return ms;
    };

    // 1. Closures and compositions with the context. Two abstractions are
    // checked per round (see ClosureCopies):
    //  - the *pessimistic* product (Def. 9 verbatim, both copies) decides
    //    deadlock freedom — unknown interactions may be refusals;
    //  - the *optimistic* product (copy-1 only) decides the property —
    //    unknown continuations end in chaos, which satisfies every
    //    weakened literal, so a surviving violation is forced by the
    //    visited (learned) states alone and is therefore real. The
    //    combination is sound: once the pessimistic ¬δ check passes, the
    //    real system has no unlearned refusals on reachable paths, and
    //    ACTL properties transfer through the optimistic abstraction.
    std::vector<automata::Closure> closuresPess, closuresOpt;
    {
      const obs::ObsSpan span("closure", config_.ulid);
      if (progress != nullptr) progress->setPhase("closure");
      for (std::size_t k = 0; k < models_.size(); ++k) {
        if (needPess) {
          closuresPess.push_back(
              automata::chaoticClosure(models_[k], alphabets_[k],
                                       config_.closureStyle,
                                       automata::ClosureCopies::Both));
        }
        if (needOpt) {
          closuresOpt.push_back(
              automata::chaoticClosure(models_[k], alphabets_[k],
                                       config_.closureStyle,
                                       automata::ClosureCopies::Copy1Only));
        }
        if (needPess || needOpt) {
          rec.closureStates +=
              (needPess ? closuresPess : closuresOpt).back().automaton
                  .stateCount();
        }
      }
    }
    rec.closureMs = lapMs();

    // Closure states are rebuilt every round, but their *origins* (kind +
    // known-model state) are stable: learned models only grow, and closure
    // state names/labels are functions of the origin. That makes the origin
    // the safe arena key for cross-iteration reuse.
    const auto keyFor = [](const std::vector<automata::Closure>& cs) {
      return [&cs](std::size_t k, automata::StateId s) -> std::uint64_t {
        if (k == 0) return s;  // the context is fixed
        const auto& o = cs[k - 1].origins[s];
        const std::uint64_t known =
            o.kind == automata::Closure::Kind::Copy0 ||
                    o.kind == automata::Closure::Kind::Copy1
                ? o.knownState
                : 0;
        return (std::uint64_t{static_cast<std::uint8_t>(o.kind)} << 32) |
               known;
      };
    };
    const auto composeWith =
        [&](const std::vector<automata::Closure>& cs,
            std::optional<automata::IncrementalComposer>& composer) {
          std::vector<const automata::Automaton*> parts;
          if (config_.incrementalCompose) {
            for (const auto& c : cs) parts.push_back(&c.automaton);
            if (!composer) composer.emplace(context_);
            automata::Product p = composer->compose(parts, keyFor(cs));
            rec.productStatesNew += composer->lastStats().statesNew;
            rec.productStatesReused += composer->lastStats().statesReused;
            return p;
          }
          parts.push_back(&context_);
          for (const auto& c : cs) parts.push_back(&c.automaton);
          automata::Product p = automata::composeAll(parts);
          rec.productStatesNew += p.automaton.stateCount();
          return p;
        };
    std::optional<automata::Product> productPess, productOpt;
    {
      const obs::ObsSpan span("compose", config_.ulid);
      if (progress != nullptr) progress->setPhase("compose");
      if (needPess) productPess = composeWith(closuresPess, composerPess_);
      if (needOpt) productOpt = composeWith(closuresOpt, composerOpt_);
    }
    rec.productStates = productPess ? productPess->automaton.stateCount()
                        : productOpt ? productOpt->automaton.stateCount()
                                     : 0;
    rec.composeMs = lapMs();

    // 2. Verification step (Sec. 4.1).
    ctl::VerifyResult propRes{true, {}, 0, {}};
    ctl::VerifyResult dlRes{true, {}, 0, {}};
    {
      const obs::ObsSpan span("check", config_.ulid);
      if (progress != nullptr) progress->setPhase("check");
      ctl::VerifyOptions vo;
      vo.maxCounterexamples = config_.counterexamplesPerCheck;
      vo.search = config_.search;
      vo.traceId = config_.ulid;
      vo.requireDeadlockFree = false;
      if (needOpt) propRes = ctl::verify(productOpt->automaton, phi, vo);
      vo.requireDeadlockFree = true;
      if (needPess) dlRes = ctl::verify(productPess->automaton, nullptr, vo);
    }
    rec.checkPassed = propRes.holds && dlRes.holds;
    rec.checkMs = lapMs();
    // Atoms can become known as states are learned: report the final round's
    // view, not the union over all rounds.
    res.unknownAtoms.clear();
    for (const auto& atom : propRes.unknownAtoms) {
      if (atom != automata::kChaosProp) res.unknownAtoms.push_back(atom);
    }

    if (rec.checkPassed) {
      accumulate(rec);
      emitIteration(rec);
      res.journal.push_back(std::move(rec));
      res.verdict = Verdict::ProvenCorrect;
      res.explanation =
          "the abstraction satisfies the property and deadlock freedom; by "
          "Lemma 5 the real integration is correct";
      break;
    }
    if (cancelled()) break;  // don't start testing past the deadline

    // 3./4. Testing and learning steps per counterexample — property
    // counterexamples first (fast conflict detection), then deadlocks.
    const std::size_t knowledgeBefore = totalKnowledge();
    const auto& firstCex =
        !propRes.holds ? propRes.cex() : dlRes.cex();
    rec.cexWasDeadlock =
        firstCex.kind == ctl::Counterexample::Kind::Deadlock;
    rec.cexLength = firstCex.run.length();
    bool realError = false;
    bool unsupported = false;
    const auto process = [&](const ctl::VerifyResult& vres,
                             const automata::Product& product,
                             const std::vector<automata::Closure>& closures) {
      for (const auto& cex : vres.counterexamples) {
        if (cancelled()) return;
        if (config_.keepTraces) {
          rec.cexText += product.renderRun(cex.run);
          rec.cexText += "--\n";
        }
        if (!cex.pathExact) {
          unsupported = true;
          continue;
        }
        const auto handling =
            handleCounterexample(cex, product, closures, rec);
        if (handling.realError) {
          res.verdict = Verdict::RealError;
          res.explanation = handling.errorText;
          res.counterexampleText = product.renderRun(cex.run);
          realError = true;
          return;
        }
      }
    };
    bool adapterFailed = false;
    {
      const obs::ObsSpan span("test", config_.ulid);
      if (progress != nullptr) progress->setPhase("test");
      // Containment boundary for out-of-process legacies: a subprocess
      // adapter that crashes, hangs, or garbles beyond its recovery budget
      // aborts the run with the distinct AdapterFailure verdict instead of
      // tearing down the harness (the component could not be observed, so
      // neither Lemma 5 nor Lemma 6 applies).
      try {
        if (!propRes.holds) process(propRes, *productOpt, closuresOpt);
        if (!realError && !dlRes.holds) {
          process(dlRes, *productPess, closuresPess);
        }
      } catch (const testing::AdapterFailure& e) {
        res.verdict = Verdict::AdapterFailure;
        res.explanation = e.what();
        adapterFailed = true;
      }
    }
    rec.testMs = lapMs();
    rec.learnedFacts = totalKnowledge() - knowledgeBefore;
    res.totalLearnedFacts += rec.learnedFacts;
    res.totalTestPeriods += rec.testPeriods;
    const bool progressed = rec.learnedFacts > 0;
    accumulate(rec);
    emitIteration(rec);
    res.journal.push_back(std::move(rec));
    if (adapterFailed) break;
    if (realError) break;
    if (wasCancelled) break;
    if (!progressed) {
      res.verdict = Verdict::Unsupported;
      res.explanation =
          unsupported
              ? "counterexample shape outside the supported ACTL fragment"
              : "no learning progress (use ClosureStyle::DeterministicTarget "
                "for guaranteed progress)";
      break;
    }
  }

  res.iterations = res.journal.size();
  res.learnedModels = models_;
  if (config_.recordTests) res.recordedTests = suites_;
  if (wasCancelled && res.verdict != Verdict::RealError &&
      res.verdict != Verdict::ProvenCorrect &&
      res.verdict != Verdict::AdapterFailure) {
    res.verdict = Verdict::Cancelled;
    res.explanation =
        "stopped by the cancellation hook before reaching a verdict";
  } else if (res.verdict == Verdict::IterationLimit) {
    res.explanation = "iteration budget exhausted";
  }

  static obs::Counter& iterations = obs::Registry::global().counter(
      "mui_integration_iterations_total", "Verify-test-learn iterations run");
  static obs::Counter& learned = obs::Registry::global().counter(
      "mui_integration_learned_facts_total",
      "Facts (states+transitions+refusals) learned across all runs");
  static obs::Counter& periods = obs::Registry::global().counter(
      "mui_integration_test_periods_total",
      "Legacy periods driven by counterexample tests across all runs");
  iterations.add(res.iterations);
  learned.add(res.totalLearnedFacts);
  periods.add(res.totalTestPeriods);

  if (journal != nullptr) {
    journal->event("verdict",
                   baseFields()
                       .s("verdict", verdictName(res.verdict))
                       .s("explanation", res.explanation)
                       .u("iterations", res.iterations)
                       .u("learnedFacts", res.totalLearnedFacts)
                       .u("testPeriods", res.totalTestPeriods)
                       .u("productStatesNew", res.totalProductStatesNew)
                       .u("productStatesReused", res.totalProductStatesReused)
                       .f("closureMs", res.totalClosureMs)
                       .f("composeMs", res.totalComposeMs)
                       .f("checkMs", res.totalCheckMs)
                       .f("testMs", res.totalTestMs));
  }
  return res;
}

IntegrationResult runIntegration(automata::Automaton context,
                                 testing::LegacyComponent& legacy,
                                 IntegrationConfig config) {
  return IntegrationVerifier(std::move(context), legacy, std::move(config))
      .run();
}

IntegrationVerifier::CexHandling IntegrationVerifier::handleCounterexample(
    const ctl::Counterexample& cex, const automata::Product& product,
    const std::vector<automata::Closure>& closures, IterationRecord& rec) {
  const automata::Run& run = cex.run;

  // Positions where each legacy's closure side first enters chaos.
  std::vector<std::size_t> chaosAt(legacies_.size(), kNoChaos);
  for (std::size_t pos = 0; pos < run.states.size(); ++pos) {
    for (std::size_t k = 0; k < legacies_.size(); ++k) {
      if (chaosAt[k] != kNoChaos) continue;
      const automata::StateId cs = product.origins[run.states[pos]][k + 1];
      if (closures[k].isChaos(cs)) chaosAt[k] = pos;
    }
  }
  const bool anyChaos =
      std::any_of(chaosAt.begin(), chaosAt.end(),
                  [](std::size_t p) { return p != kNoChaos; });

  const auto projectSteps = [&](std::size_t k) {
    std::vector<automata::Interaction> steps;
    steps.reserve(run.labels.size());
    for (const auto& l : run.labels) {
      steps.push_back(product.projectInteraction(l, k + 1));
    }
    return steps;
  };

  const auto runTest = [&](std::size_t k,
                           std::vector<automata::Interaction> steps) {
    testing::CounterexampleTestDriver driver(*legacies_[k],
                                             *context_.signalTable());
    auto outcome = driver.execute(steps);
    rec.testPeriods += driver.periodsDriven();
    if (config_.recordTests) {
      ComponentTest test;
      test.name = "iter" + std::to_string(rec.iteration) + "/" +
                  (cex.kind == ctl::Counterexample::Kind::Deadlock
                       ? "deadlock"
                       : "property") +
                  "#" + std::to_string(suites_[k].tests.size());
      test.steps = std::move(steps);
      test.expectedKind = outcome.kind;
      test.expected = outcome.observed;
      suites_[k].tests.push_back(std::move(test));
    }
    if (config_.keepTraces) {
      rec.monitorText += "# target recording (legacy " +
                         legacies_[k]->name() + ")\n" +
                         outcome.targetLog.render();
      rec.monitorText += "# deterministic replay (full probes)\n" +
                         outcome.replayLog.render();
    }
    return outcome;
  };

  CexHandling out;

  if (!anyChaos) {
    if (cex.kind == ctl::Counterexample::Kind::Property) {
      // Listing 1.4: the violation lies entirely within learned behavior;
      // observation conformance (Def. 10) makes it realizable — a proof of
      // conflict without further testing.
      out.realError = true;
      out.errorText =
          "property violation within the learned (synthesized) behavior — "
          "realizable by observation conformance (fast conflict detection)";
      return out;
    }

    // Deadlock among learned states: decide by testing the unknown context
    // offers at the stuck state.
    std::vector<const automata::Automaton*> parts;
    parts.push_back(&context_);
    for (const auto& c : closures) parts.push_back(&c.automaton);
    const automata::StateId p = run.states.back();

    bool anyUnknown = false;
    bool anyEscape = false;
    for (std::size_t k = 0; k < legacies_.size(); ++k) {
      const automata::StateId cs = product.origins[p][k + 1];
      const automata::StateId sk = closures[k].knownOrigin(cs);
      for (const auto& x : jointOffers(product, parts, closures, p, k)) {
        if (models_[k].base().hasTransition(sk, x)) {
          // The offer is already known to be accepted. This happens when a
          // previous counterexample of the same batch taught it (the stuck
          // state is stale), or — with several legacies — when the combo
          // hinges on another legacy's still-unknown part. Either way the
          // deadlock is not confirmed.
          anyEscape = true;
          continue;
        }
        if (models_[k].isForbidden(sk, x)) continue;  // verified refusal
        anyUnknown = true;
        auto steps = projectSteps(k);
        steps.push_back(x);
        const auto outcome = runTest(k, std::move(steps));
        out.learnedAnything |= applyOutcome(k, outcome);
      }
    }
    if (out.learnedAnything) return out;
    if (!anyUnknown && !anyEscape) {
      out.realError = true;
      out.errorText =
          "reachable deadlock: every interaction the context offers at the "
          "final state is verifiably refused by the legacy component(s)";
      return out;
    }
    return out;  // unresolved here; the next iteration re-checks
  }

  // The counterexample enters chaos: test every legacy that does, over the
  // full projected interaction sequence; learning merges the observations.
  for (std::size_t k = 0; k < legacies_.size(); ++k) {
    if (chaosAt[k] == kNoChaos) continue;
    const auto outcome = runTest(k, projectSteps(k));
    out.learnedAnything |= applyOutcome(k, outcome);
  }
  return out;
}

std::vector<automata::Interaction> IntegrationVerifier::jointOffers(
    const automata::Product& product,
    const std::vector<const automata::Automaton*>& parts,
    const std::vector<automata::Closure>& closures, automata::StateId p,
    std::size_t legacyIdx) const {
  const automata::SignalSet& legacyIn = legacies_[legacyIdx]->inputs();
  const automata::SignalSet& legacyOut = legacies_[legacyIdx]->outputs();

  // Indices of the participating components other than the legacy.
  std::vector<std::size_t> others;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != legacyIdx + 1) others.push_back(i);
  }

  std::vector<automata::Interaction> offers;
  std::vector<const automata::Transition*> chosen(others.size(), nullptr);

  const auto pairwiseOk = [&](std::size_t a, std::size_t b) {
    const auto& ta = *chosen[a];
    const auto& tb = *chosen[b];
    const automata::Automaton& aa = *parts[others[a]];
    const automata::Automaton& ab = *parts[others[b]];
    return (ta.label.in & ab.outputs()) == (tb.label.out & aa.inputs()) &&
           (tb.label.in & aa.outputs()) == (ta.label.out & ab.inputs());
  };

  const auto emit = [&] {
    automata::Interaction x;
    for (const auto* t : chosen) {
      x.in |= t->label.out & legacyIn;
      x.out |= t->label.in & legacyOut;
    }
    if (std::find(offers.begin(), offers.end(), x) == offers.end()) {
      offers.push_back(std::move(x));
    }
  };

  const auto recurse = [&](auto&& self, std::size_t idx) -> void {
    if (idx == others.size()) {
      emit();
      return;
    }
    automata::StateId s = product.origins[p][others[idx]];
    if (others[idx] > 0) {
      // Another legacy's closure: move to the copy-1 twin so its chaotic
      // (possible-but-unknown) moves participate in the offers.
      const auto& cl = closures[others[idx] - 1];
      s = cl.copy1[cl.knownOrigin(s)];
    }
    for (const auto& t : parts[others[idx]]->transitionsFrom(s)) {
      chosen[idx] = &t;
      bool ok = true;
      for (std::size_t j = 0; j < idx && ok; ++j) ok = pairwiseOk(j, idx);
      if (ok) self(self, idx + 1);
    }
    chosen[idx] = nullptr;
  };
  recurse(recurse, 0);
  return offers;
}

bool IntegrationVerifier::applyOutcome(std::size_t legacyIdx,
                                       const testing::TestOutcome& outcome) {
  const obs::ObsSpan span("learn", config_.ulid);
  bool any = models_[legacyIdx].learn(outcome.observed).any();
  if (outcome.refusalRun) {
    any = models_[legacyIdx].learn(*outcome.refusalRun).any() || any;
  }
  return any;
}

}  // namespace mui::synthesis
