#pragma once
// The iterative behavior-synthesis engine (paper Fig. 2, Secs. 3-4).
//
// Loop per iteration i:
//   1. Build the chaotic closures chaos(M_l^i) of the learned models
//      (Def. 9) and compose them with the context (Def. 3).
//   2. Model check the weakened property plus deadlock freedom (Sec. 4.1,
//      Lemma 5). Success proves the integration correct for the real
//      system — without having learned the rest of the legacy component.
//   3. Otherwise project the counterexample onto the legacy component(s)
//      and test it with deterministic replay (Sec. 4.2, Sec. 5):
//        - a property counterexample that stays entirely in learned states
//          is a *real* integration error (fast conflict detection,
//          Listing 1.4; no test needed — observation conformance already
//          guarantees realizability);
//        - a deadlock whose context offers are all verifiably refused (T̄)
//          is a *real* deadlock;
//        - anything else yields new observations, which the learning step
//          merges into M_l^{i+1} (Defs. 11/12, Lemma 7) — strictly
//          increasing knowledge, which bounds the number of iterations for
//          finite deterministic components (Thm. 2 discussion, Sec. 4.4).
//
// The engine supports multiple legacy components (paper Sec. 7 future
// work): every legacy gets its own model/closure, counterexamples are
// projected per component, and deadlock offers are computed from the joint
// moves of the respective other components.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "automata/chaos.hpp"
#include "automata/compose.hpp"
#include "automata/incomplete.hpp"
#include "ctl/counterexample.hpp"
#include "synthesis/test_suite.hpp"
#include "testing/driver.hpp"
#include "testing/legacy.hpp"

namespace mui::obs {
class Journal;
class JobProgress;
}  // namespace mui::obs

namespace mui::synthesis {

struct IntegrationConfig {
  /// CCTL property text (empty: deadlock freedom only). Must be over the
  /// propositions of the context and the legacy state names.
  std::string property;
  bool requireDeadlockFree = true;
  automata::InteractionMode mode = automata::InteractionMode::AtMostOneSignal;
  automata::ClosureStyle closureStyle =
      automata::ClosureStyle::DeterministicTarget;
  ctl::CexSearch search = ctl::CexSearch::Shortest;
  /// Counterexamples requested per verification round (paper Sec. 7
  /// suggests deriving several; experiment E7 measures the effect).
  std::size_t counterexamplesPerCheck = 1;
  std::size_t maxIterations = 100000;
  /// Keep rendered counterexample/monitor texts in the journal (examples
  /// use this to reproduce the paper's listings; benches leave it off).
  bool keepTraces = false;
  /// Replace the context by its bisimulation quotient before the loop —
  /// shrinks every product the checker sees; counterexample rendering then
  /// shows class-representative state names.
  bool minimizeContext = false;
  /// Reuse composition work across refinement iterations: the closure ‖
  /// context products are explored by per-abstraction IncrementalComposers
  /// that intern product states across rounds (keyed by the stable closure
  /// origins, so a state survives the per-iteration closure rebuild), and
  /// the loop skips the optimistic product when no property is set and the
  /// pessimistic product when deadlock freedom is not required. Verdicts
  /// and journals are identical either way (tests/test_ctl_diff.cpp checks
  /// this); off recomposes from scratch like the original loop.
  bool incrementalCompose = true;
  /// Record every executed component test (stimulus + observed outcome) as
  /// a regression suite (paper abstract: "systematic generation of
  /// component tests"); see test_suite.hpp.
  bool recordTests = false;
  /// Cooperative cancellation hook, polled between the phases of every
  /// iteration (before closures, after the verification step, and between
  /// counterexample tests). Returning true stops the loop with
  /// Verdict::Cancelled. Leave empty for an uninterruptible run. The
  /// callable is invoked from the thread executing run(); the batch engine
  /// uses it for per-job deadlines (src/engine/runner.cpp).
  std::function<bool()> cancelRequested;
  /// Structured run journal (obs/journal.hpp): when set, the loop emits one
  /// JSONL event per iteration plus run_start/verdict events, labeled with
  /// `runId`. The journal must outlive run(); it may be shared between
  /// concurrent runs (it locks internally).
  obs::Journal* journal = nullptr;
  /// Label for journal events and the run's trace span (e.g. the job name);
  /// defaults to the context automaton's name when empty.
  std::string runId;
  /// Job correlation id (obs/ulid.hpp): tags every journal event and trace
  /// span of this run so a merged client+daemon timeline can attribute them
  /// to one job. Empty = untagged (journal events then omit "ulid").
  std::string ulid;
  /// Live progress sink (obs/progress.hpp): the loop publishes its current
  /// phase and iteration count for the daemon's /jobs endpoint. Null = no
  /// live introspection. Must outlive run().
  obs::JobProgress* progress = nullptr;
};

enum class Verdict {
  ProvenCorrect,   // Lemma 5: property + ¬δ hold for the real integration
  RealError,       // Lemma 6 / Listing 1.4: a realizable violation exists
  IterationLimit,  // budget exhausted (cannot happen for finite components
                   // with DeterministicTarget closures before completeness)
  Unsupported,     // property shape outside the counterexample fragment, or
                   // no learning progress (possible with PaperExact style)
  Cancelled,       // config.cancelRequested fired (deadline or external stop)
  AdapterFailure,  // an out-of-process legacy (testing::SubprocessLegacy)
                   // crashed, hung, or broke protocol beyond its recovery
                   // budget — the component could not be observed, so no
                   // integration verdict exists (distinct from EngineError:
                   // the harness itself is fine)
};

struct IterationRecord {
  std::size_t iteration = 0;
  // Learned-model sizes (summed over legacies) before this iteration's check.
  std::size_t modelStates = 0;
  std::size_t modelTransitions = 0;
  std::size_t modelForbidden = 0;
  std::size_t closureStates = 0;  // summed closure sizes
  std::size_t productStates = 0;
  bool checkPassed = false;
  bool cexWasDeadlock = false;
  std::size_t cexLength = 0;
  std::size_t learnedFacts = 0;      // knowledge delta during this iteration
  std::uint64_t testPeriods = 0;     // legacy periods driven this iteration
  /// Composition reuse (summed over the products built this iteration):
  /// product states interned for the first time vs. served from the
  /// composer's arena. With incrementalCompose off, every state counts as
  /// new.
  std::size_t productStatesNew = 0;
  std::size_t productStatesReused = 0;
  /// Wall-clock phase breakdown of this iteration, in milliseconds.
  double closureMs = 0;  // chaotic closures (Def. 9)
  double composeMs = 0;  // products with the context (Def. 3)
  double checkMs = 0;    // CCTL checks + counterexample extraction
  double testMs = 0;     // projection, replay testing, learning
  std::string cexText;               // rendered (keepTraces only)
  std::string monitorText;           // replay log (keepTraces only)
};

struct IntegrationResult {
  Verdict verdict = Verdict::IterationLimit;
  std::string explanation;
  /// RealError: the witness run rendered in Listing-1.1 style.
  std::string counterexampleText;
  std::vector<IterationRecord> journal;
  /// Final learned model per legacy component.
  std::vector<automata::IncompleteAutomaton> learnedModels;
  std::size_t iterations = 0;
  std::uint64_t totalTestPeriods = 0;
  std::size_t totalLearnedFacts = 0;
  /// Totals of the per-iteration phase/reuse metrics (see IterationRecord).
  std::size_t totalProductStatesNew = 0;
  std::size_t totalProductStatesReused = 0;
  double totalClosureMs = 0;
  double totalComposeMs = 0;
  double totalCheckMs = 0;
  double totalTestMs = 0;
  /// Atoms of the property that named no proposition of the composed model
  /// (typo or wrong instance prefix — they evaluate to false silently).
  std::vector<std::string> unknownAtoms;
  /// Regression suite per legacy component (recordTests only).
  std::vector<ComponentTestSuite> recordedTests;
};

class IntegrationVerifier {
 public:
  /// Multi-legacy constructor. The context automaton and the legacy
  /// components must share the signal universe; components must be pairwise
  /// composable with the context and each other.
  IntegrationVerifier(automata::Automaton context,
                      std::vector<testing::LegacyComponent*> legacies,
                      IntegrationConfig config);

  /// Single-legacy convenience.
  IntegrationVerifier(automata::Automaton context,
                      testing::LegacyComponent& legacy,
                      IntegrationConfig config);

  IntegrationResult run();

 private:
  struct CexHandling {
    bool realError = false;
    bool learnedAnything = false;
    std::string errorText;
  };

  CexHandling handleCounterexample(const ctl::Counterexample& cex,
                                   const automata::Product& product,
                                   const std::vector<automata::Closure>& closures,
                                   IterationRecord& record);

  /// Legacy-k interactions required by some joint move of all *other*
  /// components at product state `p` (deduplicated). Other legacies are
  /// taken at their copy-1 twin so their *possible* (chaotic) moves count —
  /// a real deadlock must be unescapable for every behavior the others
  /// might still reveal.
  std::vector<automata::Interaction> jointOffers(
      const automata::Product& product,
      const std::vector<const automata::Automaton*>& parts,
      const std::vector<automata::Closure>& closures, automata::StateId p,
      std::size_t legacyIdx) const;

  bool applyOutcome(std::size_t legacyIdx, const testing::TestOutcome& outcome);

  automata::Automaton context_;
  std::vector<testing::LegacyComponent*> legacies_;
  IntegrationConfig config_;
  std::vector<automata::IncompleteAutomaton> models_;
  std::vector<std::vector<automata::Interaction>> alphabets_;
  std::vector<ComponentTestSuite> suites_;  // recordTests only
  /// Iteration-scoped composition caches (incrementalCompose): one arena per
  /// abstraction, created lazily on the first round and reused for the rest
  /// of the loop. They reference context_, which is fixed after construction.
  std::optional<automata::IncrementalComposer> composerPess_;
  std::optional<automata::IncrementalComposer> composerOpt_;
};

/// Re-entrant one-shot entry point: builds a fresh verifier and runs it.
/// Safe to call from many threads concurrently as long as each call gets
/// its own legacy instance and its own context/config (a verifier keeps no
/// global state; the signal tables referenced by `context` must not be
/// shared with a concurrently running call). The batch engine drives every
/// job through this function.
IntegrationResult runIntegration(automata::Automaton context,
                                 testing::LegacyComponent& legacy,
                                 IntegrationConfig config);

}  // namespace mui::synthesis
