#include "synthesis/test_suite.hpp"

#include "util/parse.hpp"

namespace mui::synthesis {

namespace {

std::string interactionText(const automata::Interaction& x,
                            const automata::SignalTable& signals) {
  return automata::toString(x, signals);
}

const char* kindName(testing::TestOutcome::Kind k) {
  switch (k) {
    case testing::TestOutcome::Kind::Confirmed:
      return "confirmed";
    case testing::TestOutcome::Kind::Diverged:
      return "diverged";
    case testing::TestOutcome::Kind::Blocked:
      return "blocked";
  }
  return "?";
}

}  // namespace

SuiteRunResult runSuite(const ComponentTestSuite& suite,
                        testing::LegacyComponent& component,
                        const automata::SignalTable& signals) {
  SuiteRunResult result;
  testing::CounterexampleTestDriver driver(component, signals);
  for (const auto& test : suite.tests) {
    const auto outcome = driver.execute(test.steps);
    std::string diff;
    if (outcome.kind != test.expectedKind) {
      diff = std::string("outcome ") + kindName(outcome.kind) + " (expected " +
             kindName(test.expectedKind) + ")";
    } else if (outcome.observed.labels.size() != test.expected.labels.size()) {
      diff = "observed " + std::to_string(outcome.observed.labels.size()) +
             " interactions (expected " +
             std::to_string(test.expected.labels.size()) + ")";
    } else {
      for (std::size_t i = 0; i < test.expected.labels.size() && diff.empty();
           ++i) {
        if (!(outcome.observed.labels[i] == test.expected.labels[i])) {
          diff = "interaction " + std::to_string(i) + " is " +
                 interactionText(outcome.observed.labels[i], signals) +
                 " (expected " +
                 interactionText(test.expected.labels[i], signals) + ")";
        }
      }
      for (std::size_t i = 0;
           i < test.expected.stateNames.size() && diff.empty(); ++i) {
        if (outcome.observed.stateNames[i] != test.expected.stateNames[i]) {
          diff = "state " + std::to_string(i) + " is '" +
                 outcome.observed.stateNames[i] + "' (expected '" +
                 test.expected.stateNames[i] + "')";
        }
      }
    }
    if (diff.empty()) {
      ++result.passed;
    } else {
      result.failures.push_back(test.name + ": " + diff);
    }
  }
  return result;
}

std::string renderSuite(const ComponentTestSuite& suite,
                        const automata::SignalTable& signals) {
  std::string out;
  for (const auto& test : suite.tests) {
    out += "test " + test.name + " (" + kindName(test.expectedKind) + ", " +
           std::to_string(test.steps.size()) + " steps)\n";
    for (std::size_t i = 0; i < test.steps.size(); ++i) {
      out += "  step " + std::to_string(i) + ": " +
             interactionText(test.steps[i], signals);
      if (i + 1 < test.expected.stateNames.size()) {
        out += "  -> " + test.expected.stateNames[i + 1];
      }
      out += "\n";
    }
  }
  return out;
}

namespace {

std::string signalCsv(const automata::SignalSet& set,
                      const automata::SignalTable& signals) {
  std::string out;
  set.forEach([&](std::size_t bit) {
    if (!out.empty()) out += ",";
    out += signals.name(static_cast<util::NameId>(bit));
  });
  return out;
}

automata::SignalSet csvSignals(const std::string& csv,
                               automata::SignalTable& signals) {
  automata::SignalSet out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string name =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!name.empty()) out.set(signals.intern(name));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::string interactionAttrs(const automata::Interaction& x,
                             const automata::SignalTable& signals) {
  return "in=\"" + signalCsv(x.in, signals) + "\" out=\"" +
         signalCsv(x.out, signals) + "\"";
}

}  // namespace

std::string writeSuite(const ComponentTestSuite& suite,
                       const automata::SignalTable& signals) {
  std::string out;
  for (const auto& test : suite.tests) {
    out += "suite-test \"" + test.name + "\" kind=" +
           kindName(test.expectedKind) + "\n";
    for (const auto& step : test.steps) {
      out += "stimulus " + interactionAttrs(step, signals) + "\n";
    }
    out += "observed state=\"" + test.expected.stateNames.front() + "\"\n";
    const std::size_t regular = test.expected.blocked
                                    ? test.expected.labels.size() - 1
                                    : test.expected.labels.size();
    for (std::size_t i = 0; i < regular; ++i) {
      out += "observed " + interactionAttrs(test.expected.labels[i], signals) +
             " state=\"" + test.expected.stateNames[i + 1] + "\"\n";
    }
    if (test.expected.blocked) {
      out += "observed-blocked " +
             interactionAttrs(test.expected.labels.back(), signals) + "\n";
    }
    out += "end\n";
  }
  return out;
}

ComponentTestSuite parseSuite(std::string_view text,
                              automata::SignalTable& signals) {
  util::Cursor cur(text);
  ComponentTestSuite suite;
  const auto interaction = [&]() {
    automata::Interaction x;
    cur.expect("in=");
    x.in = csvSignals(cur.quotedString(), signals);
    cur.expect("out=");
    x.out = csvSignals(cur.quotedString(), signals);
    return x;
  };
  while (true) {
    cur.skipWs();
    if (cur.atEnd()) break;
    if (!cur.tryKeyword("suite-test")) cur.fail("expected 'suite-test'");
    ComponentTest test;
    test.name = cur.quotedString();
    cur.expect("kind=");
    if (cur.tryKeyword("confirmed")) {
      test.expectedKind = testing::TestOutcome::Kind::Confirmed;
    } else if (cur.tryKeyword("diverged")) {
      test.expectedKind = testing::TestOutcome::Kind::Diverged;
    } else if (cur.tryKeyword("blocked")) {
      test.expectedKind = testing::TestOutcome::Kind::Blocked;
    } else {
      cur.fail("expected test kind");
    }
    bool sawInitialState = false;
    while (!cur.tryKeyword("end")) {
      if (cur.tryKeyword("stimulus")) {
        test.steps.push_back(interaction());
      } else if (cur.tryKeyword("observed-blocked")) {
        test.expected.labels.push_back(interaction());
        test.expected.blocked = true;
      } else if (cur.tryKeyword("observed")) {
        if (sawInitialState) test.expected.labels.push_back(interaction());
        cur.expect("state=");
        test.expected.stateNames.push_back(cur.quotedString());
        sawInitialState = true;
      } else {
        cur.fail("expected 'stimulus', 'observed', or 'end'");
      }
    }
    if (!test.expected.wellFormed()) {
      cur.fail("malformed observed run in test '" + test.name + "'");
    }
    suite.tests.push_back(std::move(test));
  }
  return suite;
}

}  // namespace mui::synthesis
