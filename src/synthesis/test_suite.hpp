#pragma once
// Systematic component test generation (paper abstract: "incremental
// synthesis using formal verification techniques for the systematic
// generation of component tests").
//
// Every counterexample the verification step produces is, projected onto
// the legacy component, a concrete test case. The integration loop can
// record these cases together with the observed outcome; the resulting
// suite is a *regression oracle* for the component: a later revision that
// behaves differently on any recorded case (different outputs, different
// refusals, different states under full instrumentation) is flagged without
// re-running the verification loop.

#include <string>
#include <vector>

#include "automata/run.hpp"
#include "testing/driver.hpp"
#include "testing/legacy.hpp"

namespace mui::synthesis {

/// One recorded component test: the stimulus and the outcome the recorded
/// component exhibited.
struct ComponentTest {
  std::string name;  // e.g. "iter3/property cex"
  std::vector<automata::Interaction> steps;
  testing::TestOutcome::Kind expectedKind = testing::TestOutcome::Kind::Confirmed;
  /// Expected observation (state names + performed interactions) under full
  /// instrumentation.
  automata::ObservedRun expected;
};

struct ComponentTestSuite {
  std::vector<ComponentTest> tests;

  [[nodiscard]] std::size_t size() const { return tests.size(); }
};

struct SuiteRunResult {
  std::size_t passed = 0;
  std::vector<std::string> failures;  // "name: what differed"

  [[nodiscard]] bool allPassed() const { return failures.empty(); }
};

/// Replays every recorded test against `component` and compares outcome
/// kind, interactions, and monitored states.
SuiteRunResult runSuite(const ComponentTestSuite& suite,
                        testing::LegacyComponent& component,
                        const automata::SignalTable& signals);

/// Renders the suite in the monitoring listing style (one block per test).
std::string renderSuite(const ComponentTestSuite& suite,
                        const automata::SignalTable& signals);

/// Persistent text format (one line per step):
///   suite-test <name> <confirmed|diverged|blocked>
///   state <name>
///   step in=<sig,sig|-> out=<sig,sig|-> state <name>
///   [refused in=... out=...]          # blocked tests: the final refusal
/// Round-trips through parseSuite.
std::string writeSuite(const ComponentTestSuite& suite,
                       const automata::SignalTable& signals);

/// Parses the writeSuite format; signals are interned into `signals`.
/// Throws util::ParseError on malformed input.
ComponentTestSuite parseSuite(std::string_view text,
                              automata::SignalTable& signals);

}  // namespace mui::synthesis
