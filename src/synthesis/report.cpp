#include "synthesis/report.hpp"

#include "util/text_table.hpp"

namespace mui::synthesis {

const char* verdictName(Verdict v) {
  switch (v) {
    case Verdict::ProvenCorrect:
      return "proven";
    case Verdict::RealError:
      return "real-error";
    case Verdict::IterationLimit:
      return "iter-limit";
    case Verdict::Unsupported:
      return "unsupported";
    case Verdict::Cancelled:
      return "cancelled";
    case Verdict::AdapterFailure:
      return "adapter-failure";
  }
  return "?";
}

std::string renderJournal(const IntegrationResult& result) {
  util::TextTable table({"iter", "model S/T/F", "closure S", "product S",
                         "cex", "cex len", "test periods", "learned"});
  for (const auto& rec : result.journal) {
    table.row({std::to_string(rec.iteration),
               std::to_string(rec.modelStates) + "/" +
                   std::to_string(rec.modelTransitions) + "/" +
                   std::to_string(rec.modelForbidden),
               std::to_string(rec.closureStates),
               std::to_string(rec.productStates),
               rec.checkPassed ? "-"
                               : (rec.cexWasDeadlock ? "deadlock" : "property"),
               std::to_string(rec.cexLength), std::to_string(rec.testPeriods),
               std::to_string(rec.learnedFacts)});
  }
  return table.str();
}

std::string renderSummary(const IntegrationResult& result) {
  std::string out = "verdict: ";
  out += verdictName(result.verdict);
  out += " (" + result.explanation + ") after " +
         std::to_string(result.iterations) + " iterations, " +
         std::to_string(result.totalTestPeriods) + " test periods, " +
         std::to_string(result.totalLearnedFacts) + " learned facts";
  std::size_t states = 0, transitions = 0, refusals = 0;
  for (const auto& m : result.learnedModels) {
    states += m.base().stateCount();
    transitions += m.base().transitionCount();
    refusals += m.forbiddenCount();
  }
  out += "; learned model(s): " + std::to_string(states) + " states, " +
         std::to_string(transitions) + " transitions, " +
         std::to_string(refusals) + " refusals\n";
  if (!result.unknownAtoms.empty()) {
    out += "WARNING: property atoms matching no proposition:";
    for (const auto& a : result.unknownAtoms) out += " " + a;
    out += "\n";
  }
  return out;
}

}  // namespace mui::synthesis
