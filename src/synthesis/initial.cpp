#include "synthesis/initial.hpp"

namespace mui::synthesis {

automata::IncompleteAutomaton initialModel(
    testing::LegacyComponent& legacy,
    const automata::SignalTableRef& signals,
    const automata::SignalTableRef& props) {
  automata::IncompleteAutomaton m(signals, props, legacy.name());
  m.declareSignals(legacy.inputs(), legacy.outputs());
  legacy.reset();
  // A zero-length observed run seeds the initial state (Def. 11 marks the
  // run's first state initial and labels it).
  m.learn({{legacy.currentStateName()}, {}, false});
  return m;
}

}  // namespace mui::synthesis
