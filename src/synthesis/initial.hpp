#pragma once
// Initial behavior synthesis (paper Sec. 3, Lemma 4): build the trivial
// incomplete automaton M_l^0 from the structural interface description and
// the initial state of the legacy component. The chaotic closure of this
// model (Fig. 4(b)) is the first safe abstraction M_a^0.

#include "automata/incomplete.hpp"
#include "testing/legacy.hpp"

namespace mui::synthesis {

/// Builds M_l^0 = ({s0}, I, O, ∅, ∅, {s0}): the component's interface plus
/// its (probed) initial state, nothing else. The state is auto-labeled with
/// its hierarchical qualified name so properties can refer to it.
automata::IncompleteAutomaton initialModel(
    testing::LegacyComponent& legacy,
    const automata::SignalTableRef& signals,
    const automata::SignalTableRef& props);

}  // namespace mui::synthesis
