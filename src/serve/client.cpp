#include "serve/client.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "serve/protocol.hpp"
#include "serve/socket.hpp"

namespace mui::serve {

SubmitOutcome submitJobs(const std::vector<engine::Job>& jobs,
                         const SubmitOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  Fd fd = connectTcp(options.host, options.port);
  LineReader reader(fd.get());
  writeAll(fd.get(),
           writeHelloLine(options.clientName, options.deadlineMs) + "\n");

  SubmitOutcome out;
  out.report.results.resize(jobs.size());
  out.report.threads = 1;

  // Wave loop: submit everything, collect results/sheds, re-submit the
  // shed wave after the daemon's retry-after, until every job has a
  // result or its retries are spent. Job id = submission index + 1.
  std::vector<std::size_t> toSend(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) toSend[i] = i;
  std::size_t round = 0;
  std::uint64_t retryAfterMs = 50;

  while (!toSend.empty()) {
    std::string wave;
    for (const std::size_t idx : toSend) {
      wave += writeJobLine(idx + 1, jobs[idx]) + "\n";
    }
    writeAll(fd.get(), wave);

    std::vector<std::size_t> shedNow;
    std::size_t awaiting = toSend.size();
    while (awaiting > 0) {
      const auto line = reader.next();
      if (!line) {
        throw std::runtime_error(
            "daemon closed the connection before all results arrived");
      }
      const Response res = parseResponse(*line);
      switch (res.type) {
        case Response::Type::Welcome:
        case Response::Type::Stats:
          break;  // informational
        case Response::Type::Result: {
          if (res.id == 0 || res.id > jobs.size()) {
            throw std::runtime_error("daemon sent a result with unknown id " +
                                     std::to_string(res.id));
          }
          const std::size_t idx = res.id - 1;
          out.report.results[idx] = res.result;
          out.report.results[idx].job = jobs[idx];
          --awaiting;
          break;
        }
        case Response::Type::Shed: {
          if (res.id == 0 || res.id > jobs.size()) {
            throw std::runtime_error("daemon shed an unknown job id " +
                                     std::to_string(res.id));
          }
          shedNow.push_back(res.id - 1);
          if (res.retryAfterMs != 0) retryAfterMs = res.retryAfterMs;
          --awaiting;
          break;
        }
        case Response::Type::Error:
          throw std::runtime_error("daemon rejected a request: " + res.error);
        case Response::Type::Done:
          throw std::runtime_error(
              "daemon sent 'done' while results were still pending");
        case Response::Type::Invalid:
          throw std::runtime_error("unparseable daemon reply: " + res.error);
      }
    }

    if (shedNow.empty()) break;
    if (round >= options.maxRetryRounds) {
      for (const std::size_t idx : shedNow) {
        auto& r = out.report.results[idx];
        r.job = jobs[idx];
        r.status = engine::JobStatus::EngineError;
        r.explanation = "load-shed by daemon (queue full after " +
                        std::to_string(round) + " retry round(s))";
      }
      break;
    }
    ++round;
    out.shedRetries += shedNow.size();
    std::this_thread::sleep_for(std::chrono::milliseconds(retryAfterMs));
    toSend = std::move(shedNow);
  }

  writeAll(fd.get(), writeEndLine() + "\n");
  while (const auto line = reader.next()) {
    const Response res = parseResponse(*line);
    if (res.type == Response::Type::Done) {
      out.serverCacheHits = res.cacheHits;
      out.serverCacheMisses = res.cacheMisses;
      out.report.cacheHits = res.cacheHits;
      out.report.cacheMisses = res.cacheMisses;
      break;
    }
  }
  out.report.wallMs = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return out;
}

}  // namespace mui::serve
