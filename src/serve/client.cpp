#include "serve/client.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/trace.hpp"
#include "obs/ulid.hpp"
#include "serve/protocol.hpp"
#include "serve/socket.hpp"

namespace mui::serve {

SubmitOutcome submitJobs(const std::vector<engine::Job>& jobs,
                         const SubmitOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const obs::ObsSpan submitSpan("submit");
  Fd fd = connectTcp(options.host, options.port);
  LineReader reader(fd.get());
  writeAll(fd.get(), writeHelloLine(options.clientName, options.deadlineMs,
                                    options.trace) +
                         "\n");

  // Mint the correlation ids client-side so both rings of a merged trace
  // (this process and the daemon) key the job's spans identically.
  std::vector<engine::Job> correlated(jobs);
  for (engine::Job& job : correlated) {
    if (job.ulid.empty()) job.ulid = obs::newUlid();
  }

  SubmitOutcome out;
  out.report.results.resize(correlated.size());
  out.report.threads = 1;

  // Wave loop: submit everything, collect results/sheds, re-submit the
  // shed wave after the daemon's retry-after, until every job has a
  // result or its retries are spent. Job id = submission index + 1.
  std::vector<std::size_t> toSend(correlated.size());
  for (std::size_t i = 0; i < correlated.size(); ++i) toSend[i] = i;
  std::size_t round = 0;
  std::uint64_t retryAfterMs = 50;

  while (!toSend.empty()) {
    std::string wave;
    for (const std::size_t idx : toSend) {
      wave += writeJobLine(idx + 1, correlated[idx]) + "\n";
      if (round == 0) {
        // Client-side async bracket: submission to result, spanning the
        // wire. Opened once per job, not per retry wave.
        obs::Tracer::asyncBegin("submit:" + correlated[idx].name,
                                correlated[idx].ulid);
      }
    }
    writeAll(fd.get(), wave);

    std::vector<std::size_t> shedNow;
    std::size_t awaiting = toSend.size();
    while (awaiting > 0) {
      const auto line = reader.next();
      if (!line) {
        throw std::runtime_error(
            "daemon closed the connection before all results arrived");
      }
      const Response res = parseResponse(*line);
      switch (res.type) {
        case Response::Type::Welcome:
        case Response::Type::Stats:
          break;  // informational
        case Response::Type::Result: {
          if (res.id == 0 || res.id > correlated.size()) {
            throw std::runtime_error("daemon sent a result with unknown id " +
                                     std::to_string(res.id));
          }
          const std::size_t idx = res.id - 1;
          out.report.results[idx] = res.result;
          out.report.results[idx].job = correlated[idx];
          obs::Tracer::asyncEnd("submit:" + correlated[idx].name,
                                correlated[idx].ulid);
          --awaiting;
          break;
        }
        case Response::Type::Shed: {
          if (res.id == 0 || res.id > correlated.size()) {
            throw std::runtime_error("daemon shed an unknown job id " +
                                     std::to_string(res.id));
          }
          shedNow.push_back(res.id - 1);
          if (res.retryAfterMs != 0) retryAfterMs = res.retryAfterMs;
          --awaiting;
          break;
        }
        case Response::Type::Error:
          throw std::runtime_error("daemon rejected a request: " + res.error);
        case Response::Type::Done:
          throw std::runtime_error(
              "daemon sent 'done' while results were still pending");
        case Response::Type::Invalid:
          throw std::runtime_error("unparseable daemon reply: " + res.error);
      }
    }

    if (shedNow.empty()) break;
    if (round >= options.maxRetryRounds) {
      for (const std::size_t idx : shedNow) {
        auto& r = out.report.results[idx];
        r.job = correlated[idx];
        r.status = engine::JobStatus::EngineError;
        r.explanation = "load-shed by daemon (queue full after " +
                        std::to_string(round) + " retry round(s))";
        obs::Tracer::asyncEnd("submit:" + correlated[idx].name,
                              correlated[idx].ulid);
      }
      break;
    }
    ++round;
    out.shedRetries += shedNow.size();
    std::this_thread::sleep_for(std::chrono::milliseconds(retryAfterMs));
    toSend = std::move(shedNow);
  }

  writeAll(fd.get(), writeEndLine() + "\n");
  while (const auto line = reader.next()) {
    const Response res = parseResponse(*line);
    if (res.type == Response::Type::Done) {
      out.serverCacheHits = res.cacheHits;
      out.serverCacheMisses = res.cacheMisses;
      out.report.cacheHits = res.cacheHits;
      out.report.cacheMisses = res.cacheMisses;
      break;
    }
  }
  out.report.wallMs = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return out;
}

std::string httpGet(const std::string& host, std::uint16_t port,
                    const std::string& path) {
  Fd fd = connectTcp(host, port);
  writeAll(fd.get(), "GET " + path + " HTTP/1.0\r\nHost: " + host +
                         "\r\nConnection: close\r\n\r\n");
  LineReader reader(fd.get());
  const auto status = reader.next();
  if (!status) throw std::runtime_error("empty HTTP response from daemon");
  // "HTTP/1.1 200 OK" — the code is the second token.
  const std::size_t sp = status->find(' ');
  if (sp == std::string::npos || status->compare(sp + 1, 3, "200") != 0) {
    throw std::runtime_error("HTTP GET " + path + " failed: " + *status);
  }
  while (const auto header = reader.next()) {
    if (header->empty()) break;  // end of header block
  }
  std::string body;
  while (const auto line = reader.next()) {
    body += *line;
    body += '\n';
  }
  return body;
}

}  // namespace mui::serve
