#pragma once
// Client side of the serve protocol — the library behind `mui submit` and
// the round-trip tests. Connects to a running daemon, pipelines every job
// in one connection, collects the streamed results back into manifest
// order, and optionally retries jobs the daemon shed (honoring its
// retry-after hint). The outcome reuses the engine's BatchReport, so the
// CLI renders a submit exactly like a local batch.

#include <cstdint>
#include <string>
#include <vector>

#include "engine/job.hpp"

namespace mui::serve {

struct SubmitOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // required
  /// Client-level deadline sent in the hello; applies server-side to jobs
  /// without their own timeout-ms (0 = none).
  std::uint64_t deadlineMs = 0;
  /// Rounds of re-submission for shed jobs; 0 reports them as shed
  /// immediately (engine-error rows marked "load-shed").
  std::size_t maxRetryRounds = 8;
  std::string clientName = "mui-submit";
  /// Trace context label sent in the hello (`mui submit --trace-context`);
  /// the daemon attaches it to the /jobs rows of this connection's jobs.
  std::string trace;
};

struct SubmitOutcome {
  /// Results in submission order. Shed jobs that exhausted their retries
  /// are EngineError rows whose explanation starts with "load-shed".
  engine::BatchReport report;
  /// Jobs re-submitted after a shed reply (across all rounds).
  std::uint64_t shedRetries = 0;
  /// Daemon-side totals for this connection, from the done line.
  std::uint64_t serverCacheHits = 0;
  std::uint64_t serverCacheMisses = 0;
};

/// Submits `jobs` and blocks until every one has a result (or exhausted
/// its shed retries). Throws std::runtime_error when the daemon is
/// unreachable or the connection breaks mid-protocol.
///
/// Correlation: every job without a ulid gets one minted here, *before*
/// the wire — the daemon adopts it (server.hpp), so the client's spans and
/// the daemon's spans of one job share an id. The returned results carry
/// the correlated jobs.
SubmitOutcome submitJobs(const std::vector<engine::Job>& jobs,
                         const SubmitOptions& options);

/// Minimal HTTP GET against the daemon's introspection endpoints (/jobs,
/// /trace, /metrics, /stats): returns the response body on 200, throws
/// std::runtime_error on connection failure or any other status.
std::string httpGet(const std::string& host, std::uint16_t port,
                    const std::string& path);

}  // namespace mui::serve
