#pragma once
// mui::serve — verification as a service.
//
// The paper's verify–test–learn loop is dominated by repeated verification
// of near-identical integration jobs. The batch engine (engine/engine.hpp)
// already shares that work within one process; this daemon promotes it to
// a long-running service whose caches outlive any single run:
//
//   * jobs arrive as newline-delimited JSON over loopback TCP
//     (protocol.hpp), reusing the manifest job schema, and results stream
//     back as JSONL in completion order;
//   * every job runs on the engine thread pool through engine::runJob, so
//     crash isolation, lint pre-flight, and per-job deadlines behave
//     exactly as in `mui batch`;
//   * per-client deadlines: a hello's deadline-ms applies to all of that
//     connection's jobs without their own timeout-ms, and the server-wide
//     --max-timeout-ms caps everything;
//   * the in-memory ResultCache is layered over a PersistentResultCache
//     (engine/persistent_cache.hpp), so duplicate jobs are answered from
//     cache across daemon restarts and across clients;
//   * admission control: at most queueLimit jobs may be accepted-but-
//     unfinished; beyond that the daemon sheds load with a retry-after
//     reply instead of queueing without bound;
//   * the same port answers HTTP GETs — /metrics (Prometheus exposition
//     of obs::Registry::global()), /healthz, /stats, /jobs (live in-flight
//     job table with phase and correlation id; `mui top` polls it), and
//     /trace (the daemon's ring buffers as a Chrome trace document, ready
//     for mergeChromeTraces with a client ring) — distinguished by
//     first-line sniffing;
//   * correlation: every accepted job gets a ULID (the client's, when it
//     sent a well-formed one, so client and daemon spans share the id) and
//     an async b/e trace pair spanning queue wait plus execution;
//   * graceful drain: requestDrain() (the CLI wires SIGTERM/SIGINT to it)
//     stops accepting connections and new jobs, finishes in-flight work,
//     flushes replies, and wait() returns.
//
// CLI front ends: `mui serve` (daemon) and `mui submit` (client.hpp).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "engine/cache.hpp"
#include "obs/progress.hpp"
#include "serve/socket.hpp"

namespace mui::obs {
class Journal;
}  // namespace mui::obs

namespace mui::engine {
class PersistentResultCache;
class ThreadPool;
}  // namespace mui::engine

namespace mui::serve {

struct ServeOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = kernel-assigned; read back via port()
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t threads = 0;
  /// Admission bound: accepted-but-unfinished jobs beyond this are shed.
  std::size_t queueLimit = 256;
  /// Suggested client back-off carried in shed replies.
  std::uint64_t retryAfterMs = 250;
  /// Deadline for jobs with neither their own timeout-ms nor a client
  /// deadline (0 = unlimited).
  std::uint64_t defaultTimeoutMs = 0;
  /// Hard cap applied to every effective deadline (0 = none).
  std::uint64_t maxTimeoutMs = 0;
  /// Durable result-cache log; empty disables persistence.
  std::string cachePath;
  bool fsyncCache = true;
  /// In-memory result-cache LRU entry cap.
  std::size_t cacheMaxEntries = engine::ResultCache::kDefaultMaxEntries;
  bool lintPreflight = true;
  /// Semantic verdict pre-solving per job (RunnerOptions::semanticPresolve);
  /// `mui serve --no-presolve` turns it off.
  bool semanticPresolve = true;
  /// Reported in the protocol welcome line.
  std::string version = "dev";
  /// Structured run journal shared with the engine runner; must outlive
  /// the server.
  obs::Journal* journal = nullptr;
};

/// Point-in-time operational snapshot (the /stats payload).
struct ServeStats {
  double uptimeMs = 0;
  bool draining = false;
  std::size_t threads = 0;
  std::uint64_t connections = 0;
  std::uint64_t httpRequests = 0;
  std::uint64_t jobsAccepted = 0;
  std::uint64_t jobsCompleted = 0;
  std::uint64_t jobsShed = 0;
  std::uint64_t protocolErrors = 0;
  std::size_t queueDepth = 0;
  std::size_t cacheEntries = 0;
  std::size_t cacheBytes = 0;
  std::size_t cacheHits = 0;
  std::size_t cacheMisses = 0;
  std::size_t cacheEvictions = 0;
  std::size_t cacheCollisions = 0;
  std::size_t persistentEntries = 0;
  std::size_t persistentReplayed = 0;
  std::size_t persistentCollisions = 0;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();  // drains and joins if the caller has not already

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Replays the persistent cache, binds the listener, and starts the
  /// accept loop and worker pool. Throws on bind or cache-open failure.
  void start();

  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Begins a graceful drain: no new connections or jobs; in-flight jobs
  /// run to completion. Idempotent and callable from any thread (the CLI
  /// calls it from its signal-wait thread).
  void requestDrain();

  /// Blocks until the drain is complete: accept loop exited, every client
  /// connection finished and closed, worker pool idle.
  void wait();

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] ServeStats stats() const;

 private:
  struct Conn;

  /// One accepted-but-unfinished job as seen by /jobs: identity (ulid,
  /// name, submitting client and its trace context), queue/run timing, and
  /// the live JobProgress the runner writes through. Kept by shared_ptr so
  /// a snapshot renders safely while the worker finishes the job.
  struct InflightJob {
    std::string ulid;
    std::string name;
    std::string client;
    std::string trace;
    std::chrono::steady_clock::time_point accepted;
    /// steady_clock time_since_epoch ns of execution start; -1 = queued.
    std::atomic<std::int64_t> startedNs{-1};
    obs::JobProgress progress;
  };

  void acceptLoop();
  void reapFinishedConnections();  // callers hold connsMu_
  void serveConnection(const std::shared_ptr<Conn>& conn);
  void jsonlSession(LineReader& reader, const std::shared_ptr<Conn>& conn,
                    const std::string& firstLine);
  void handleLine(const std::shared_ptr<Conn>& conn, const std::string& line);
  void handleJob(const std::shared_ptr<Conn>& conn, std::uint64_t id,
                 engine::Job job);
  void handleHttp(LineReader& reader, Conn& conn,
                  const std::string& requestLine);
  std::string statsJson() const;
  std::string jobsJson() const;
  static void writeLine(Conn& conn, const std::string& line);

  ServeOptions options_;
  std::chrono::steady_clock::time_point startTime_;

  engine::TextCache texts_;
  engine::ResultCache results_;
  std::unique_ptr<engine::PersistentResultCache> persistent_;
  std::unique_ptr<engine::ThreadPool> pool_;

  Fd listen_;
  std::uint16_t port_ = 0;
  std::thread acceptThread_;

  struct ConnHandle {
    std::thread thread;
    std::shared_ptr<Conn> conn;
  };
  mutable std::mutex connsMu_;
  std::list<ConnHandle> conns_;

  mutable std::mutex inflightMu_;
  std::list<std::shared_ptr<InflightJob>> inflight_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> waited_{false};
  std::atomic<std::size_t> pending_{0};  // accepted-but-unfinished jobs
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> httpRequests_{0};
  std::atomic<std::uint64_t> jobsAccepted_{0};
  std::atomic<std::uint64_t> jobsCompleted_{0};
  std::atomic<std::uint64_t> jobsShed_{0};
  std::atomic<std::uint64_t> protocolErrors_{0};
};

}  // namespace mui::serve
