#include "serve/server.hpp"

#include <condition_variable>
#include <utility>

#include "engine/persistent_cache.hpp"
#include "engine/runner.hpp"
#include "engine/thread_pool.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/process.hpp"
#include "obs/trace.hpp"
#include "obs/ulid.hpp"
#include "serve/protocol.hpp"

namespace mui::serve {

namespace {

struct ServeMetrics {
  obs::Counter& connections;
  obs::Counter& httpRequests;
  obs::Counter& jobs;
  obs::Counter& shed;
  obs::Counter& protocolErrors;
  obs::Gauge& queueDepth;
  obs::Histogram& jobWallMs;

  static ServeMetrics& get() {
    auto& reg = obs::Registry::global();
    static ServeMetrics m{
        reg.counter("mui_serve_connections_total",
                    "Client connections accepted by the daemon"),
        reg.counter("mui_serve_http_requests_total",
                    "HTTP requests (/metrics, /healthz, /stats) served"),
        reg.counter("mui_serve_jobs_total",
                    "Verification jobs accepted for execution"),
        reg.counter("mui_serve_shed_total",
                    "Jobs refused by admission control (queue full or "
                    "draining)"),
        reg.counter("mui_serve_protocol_errors_total",
                    "Malformed protocol lines received"),
        reg.gauge("mui_serve_queue_depth",
                  "Jobs accepted but not yet finished"),
        reg.histogram("mui_serve_job_wall_ms",
                      "Per-job wall time as seen by the daemon", "ms"),
    };
    return m;
  }
};

std::string httpResponse(int code, const char* reason,
                         const std::string& contentType,
                         const std::string& body, bool headOnly) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + contentType +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  if (!headOnly) out += body;
  return out;
}

}  // namespace

/// Per-connection state shared between the session thread (reads requests,
/// writes protocol replies) and the pool workers that finish its jobs
/// (write result lines). `writeMu` serializes the socket; `jobMu`/`cv`
/// track outstanding jobs so the done line goes out last.
struct Server::Conn {
  Fd fd;
  std::mutex writeMu;
  std::atomic<bool> writeBroken{false};

  std::mutex jobMu;
  std::condition_variable cv;
  std::size_t outstanding = 0;

  std::uint64_t deadlineMs = 0;  // session thread only (set by hello)
  std::uint64_t nextId = 0;      // session thread only
  std::string client;            // session thread only (set by hello)
  std::string trace;             // session thread only (set by hello)

  std::atomic<std::uint64_t> jobs{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> cacheHits{0};
  std::atomic<std::uint64_t> cacheMisses{0};

  std::atomic<bool> done{false};  // session thread exited (reap signal)
};

Server::Server(ServeOptions options)
    : options_(std::move(options)), results_(options_.cacheMaxEntries) {}

Server::~Server() {
  if (started_.load() && !waited_.load()) {
    requestDrain();
    wait();
  }
}

void Server::start() {
  startTime_ = std::chrono::steady_clock::now();
  if (!options_.cachePath.empty()) {
    persistent_ = std::make_unique<engine::PersistentResultCache>(
        options_.cachePath, options_.fsyncCache);
    results_.attachPersistent(persistent_.get());
  }
  listen_ = listenTcp(options_.host, options_.port, port_);
  pool_ = std::make_unique<engine::ThreadPool>(options_.threads);
  if (options_.journal != nullptr) {
    obs::JsonObject fields;
    fields.s("host", options_.host)
        .u("port", port_)
        .u("threads", pool_->threadCount())
        .u("queueLimit", options_.queueLimit);
    if (persistent_ != nullptr) {
      const auto& replay = persistent_->replayStats();
      fields.s("cache", options_.cachePath)
          .u("cacheReplayed", replay.replayed)
          .u("cacheSkipped", replay.skipped)
          .u("cacheCollisions", replay.collisions)
          .b("cacheTruncatedTail", replay.truncatedTail);
    }
    options_.journal->event("serve-start", fields);
  }
  started_.store(true);
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

void Server::requestDrain() { draining_.store(true); }

void Server::wait() {
  if (!started_.load() || waited_.exchange(true)) return;
  if (acceptThread_.joinable()) acceptThread_.join();
  {
    std::unique_lock lock(connsMu_);
    // Sessions blocked in read see EOF and finalize; their write side
    // stays open so pending results and the done line still go out.
    for (auto& handle : conns_) shutdownRead(handle.conn->fd.get());
  }
  for (;;) {
    ConnHandle handle;
    {
      std::unique_lock lock(connsMu_);
      if (conns_.empty()) break;
      handle = std::move(conns_.front());
      conns_.pop_front();
    }
    if (handle.thread.joinable()) handle.thread.join();
  }
  pool_->wait();
  listen_.reset();
  if (options_.journal != nullptr) {
    obs::JsonObject fields;
    fields.u("jobs", jobsAccepted_.load())
        .u("shed", jobsShed_.load())
        .u("connections", connections_.load())
        .u("cacheHits", results_.hits())
        .u("cacheMisses", results_.misses());
    if (persistent_ != nullptr) {
      fields.u("persistentEntries", persistent_->size());
    }
    options_.journal->event("serve-stop", fields);
  }
}

void Server::acceptLoop() {
  while (!draining_.load()) {
    auto conn = acceptWithTimeout(listen_.get(), 200);
    {
      std::unique_lock lock(connsMu_);
      reapFinishedConnections();
    }
    if (!conn) continue;
    connections_.fetch_add(1);
    ServeMetrics::get().connections.inc();
    auto state = std::make_shared<Conn>();
    state->fd = std::move(*conn);
    std::unique_lock lock(connsMu_);
    conns_.emplace_back();
    ConnHandle& handle = conns_.back();
    handle.conn = state;
    handle.thread = std::thread([this, state] { serveConnection(state); });
  }
}

void Server::reapFinishedConnections() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->conn->done.load()) {
      if (it->thread.joinable()) it->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::writeLine(Conn& conn, const std::string& line) {
  if (conn.writeBroken.load()) return;
  std::unique_lock lock(conn.writeMu);
  try {
    writeAll(conn.fd.get(), line + "\n");
  } catch (const std::exception&) {
    // The peer vanished; its jobs still finish (and populate the caches),
    // only the replies are dropped.
    conn.writeBroken.store(true);
  }
}

void Server::serveConnection(const std::shared_ptr<Conn>& conn) {
  try {
    LineReader reader(conn->fd.get());
    const auto first = reader.next();
    if (first) {
      if (first->rfind("GET ", 0) == 0 || first->rfind("HEAD ", 0) == 0) {
        handleHttp(reader, *conn, *first);
      } else {
        jsonlSession(reader, conn, *first);
      }
    }
  } catch (const std::exception&) {
    // Socket error mid-session: the connection is dropped, accepted jobs
    // run to completion via their shared_ptr on the worker side.
  }
  // Never close the descriptor while workers may still write through it —
  // also reached on the exception path, where jsonlSession did not wait.
  {
    std::unique_lock lock(conn->jobMu);
    conn->cv.wait(lock, [&] { return conn->outstanding == 0; });
  }
  conn->fd.reset();
  conn->done.store(true);
}

void Server::jsonlSession(LineReader& reader,
                          const std::shared_ptr<Conn>& conn,
                          const std::string& firstLine) {
  std::string line = firstLine;
  for (;;) {
    bool sessionEnd = false;
    if (line.find_first_not_of(" \t") != std::string::npos) {
      const Request req = parseRequest(line);
      switch (req.type) {
        case Request::Type::Hello:
          conn->deadlineMs = req.deadlineMs;
          conn->client = req.client;
          conn->trace = req.trace;
          writeLine(*conn,
                    writeWelcomeLine(options_.version, pool_->threadCount()));
          break;
        case Request::Type::Stats:
          writeLine(*conn, statsJson());
          break;
        case Request::Type::End:
          sessionEnd = true;
          break;
        case Request::Type::Job: {
          const std::uint64_t id = req.id != 0 ? req.id : ++conn->nextId;
          handleJob(conn, id, req.job);
          break;
        }
        case Request::Type::Invalid:
          protocolErrors_.fetch_add(1);
          ServeMetrics::get().protocolErrors.inc();
          writeLine(*conn, writeErrorLine(req.error));
          break;
      }
    }
    if (sessionEnd) break;
    auto next = reader.next();
    if (!next) break;  // client EOF counts as end
    line = std::move(*next);
  }
  // Everything this client submitted must be answered before `done`.
  {
    std::unique_lock lock(conn->jobMu);
    conn->cv.wait(lock, [&] { return conn->outstanding == 0; });
  }
  writeLine(*conn, writeDoneLine(conn->jobs.load(), conn->shed.load(),
                                 conn->cacheHits.load(),
                                 conn->cacheMisses.load()));
}

void Server::handleJob(const std::shared_ptr<Conn>& conn, std::uint64_t id,
                       engine::Job job) {
  auto& metrics = ServeMetrics::get();
  // Admission control: accepted-but-unfinished jobs are strictly bounded;
  // everything beyond sheds with a retry-after hint. A draining daemon
  // sheds too — the client's retry will find it gone and fail over.
  const std::size_t before = pending_.fetch_add(1);
  if (draining_.load() || before >= options_.queueLimit) {
    pending_.fetch_sub(1);
    jobsShed_.fetch_add(1);
    conn->shed.fetch_add(1);
    metrics.shed.inc();
    writeLine(*conn, writeShedLine(id, options_.retryAfterMs));
    return;
  }
  jobsAccepted_.fetch_add(1);
  conn->jobs.fetch_add(1);
  metrics.jobs.inc();
  metrics.queueDepth.set(static_cast<std::int64_t>(pending_.load()));
  {
    std::unique_lock lock(conn->jobMu);
    ++conn->outstanding;
  }

  if (job.name.empty()) job.name = "job" + std::to_string(id);
  // Correlation: adopt the client's ULID when it sent a well-formed one —
  // then the client-side spans and the daemon-side spans of this job share
  // an id in a merged timeline — otherwise mint one here. Either way every
  // downstream journal event and trace span of this job carries it.
  if (!obs::looksLikeUlid(job.ulid)) job.ulid = obs::newUlid();
  // Effective deadline: the job's own, else the client's, else the server
  // default — always clipped to the server-wide cap.
  std::uint64_t timeoutMs = job.timeoutMs != 0 ? job.timeoutMs
                            : conn->deadlineMs != 0 ? conn->deadlineMs
                                                    : options_.defaultTimeoutMs;
  if (options_.maxTimeoutMs != 0 &&
      (timeoutMs == 0 || timeoutMs > options_.maxTimeoutMs)) {
    timeoutMs = options_.maxTimeoutMs;
  }
  job.timeoutMs = timeoutMs;

  auto inflight = std::make_shared<InflightJob>();
  inflight->ulid = job.ulid;
  inflight->name = job.name;
  inflight->client = conn->client;
  inflight->trace = conn->trace;
  inflight->accepted = std::chrono::steady_clock::now();
  {
    std::unique_lock lock(inflightMu_);
    inflight_.push_back(inflight);
  }
  // The async pair brackets queue wait plus execution; its begin and end
  // may land on different threads (session vs. worker), which is exactly
  // what b/e events are for.
  obs::Tracer::asyncBegin("job:" + job.name, job.ulid);

  pool_->submit([this, conn, id, inflight, job = std::move(job)] {
    inflight->startedNs.store(
        std::chrono::steady_clock::now().time_since_epoch().count());
    engine::RunnerOptions runnerOptions;
    runnerOptions.lintPreflight = options_.lintPreflight;
    runnerOptions.semanticPresolve = options_.semanticPresolve;
    runnerOptions.journal = options_.journal;
    runnerOptions.progress = &inflight->progress;
    const engine::JobResult result =
        engine::runJob(job, texts_, results_, runnerOptions);
    obs::Tracer::asyncEnd("job:" + job.name, job.ulid);
    {
      std::unique_lock lock(inflightMu_);
      inflight_.remove(inflight);
    }
    auto& m = ServeMetrics::get();
    m.jobWallMs.observe(static_cast<std::uint64_t>(result.wallMs));
    (result.cacheHit ? conn->cacheHits : conn->cacheMisses).fetch_add(1);
    writeLine(*conn, writeResultLine(id, result));
    jobsCompleted_.fetch_add(1);
    pending_.fetch_sub(1);
    m.queueDepth.set(static_cast<std::int64_t>(pending_.load()));
    {
      std::unique_lock lock(conn->jobMu);
      --conn->outstanding;
    }
    conn->cv.notify_all();
  });
}

void Server::handleHttp(LineReader& reader, Conn& conn,
                        const std::string& requestLine) {
  // Drain the header block; the daemon ignores headers and bodies.
  while (const auto header = reader.next()) {
    if (header->empty()) break;
  }
  httpRequests_.fetch_add(1);
  ServeMetrics::get().httpRequests.inc();

  const bool headOnly = requestLine.rfind("HEAD ", 0) == 0;
  const std::size_t pathStart = requestLine.find(' ') + 1;
  const std::size_t pathEnd = requestLine.find(' ', pathStart);
  const std::string path = requestLine.substr(
      pathStart,
      pathEnd == std::string::npos ? std::string::npos : pathEnd - pathStart);

  std::string response;
  if (path == "/metrics") {
    obs::sampleProcessGauges(obs::Registry::global());
    response = httpResponse(
        200, "OK", "text/plain; version=0.0.4; charset=utf-8",
        obs::Registry::global().renderPrometheus(), headOnly);
  } else if (path == "/jobs") {
    response = httpResponse(200, "OK", "application/json", jobsJson() + "\n",
                            headOnly);
  } else if (path == "/trace") {
    // Live snapshot of this process's rings: pid 2 / "mui-serve" so a
    // client document (pid 1) merges into a two-process timeline.
    response = httpResponse(200, "OK", "application/json",
                            obs::Tracer::chromeTrace(2, "mui-serve"),
                            headOnly);
  } else if (path == "/healthz") {
    response = draining_.load()
                   ? httpResponse(503, "Service Unavailable", "text/plain",
                                  "draining\n", headOnly)
                   : httpResponse(200, "OK", "text/plain", "ok\n", headOnly);
  } else if (path == "/stats") {
    response = httpResponse(200, "OK", "application/json",
                            statsJson() + "\n", headOnly);
  } else {
    response =
        httpResponse(404, "Not Found", "text/plain", "not found\n", headOnly);
  }
  std::unique_lock lock(conn.writeMu);
  writeAll(conn.fd.get(), response);
}

ServeStats Server::stats() const {
  ServeStats s;
  s.uptimeMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - startTime_)
                   .count();
  s.draining = draining_.load();
  s.threads = pool_ != nullptr ? pool_->threadCount() : 0;
  s.connections = connections_.load();
  s.httpRequests = httpRequests_.load();
  s.jobsAccepted = jobsAccepted_.load();
  s.jobsCompleted = jobsCompleted_.load();
  s.jobsShed = jobsShed_.load();
  s.protocolErrors = protocolErrors_.load();
  s.queueDepth = pending_.load();
  s.cacheEntries = results_.size();
  s.cacheBytes = results_.bytes();
  s.cacheHits = results_.hits();
  s.cacheMisses = results_.misses();
  s.cacheEvictions = results_.evictions();
  s.cacheCollisions = results_.collisions();
  if (persistent_ != nullptr) {
    s.persistentEntries = persistent_->size();
    s.persistentReplayed = persistent_->replayStats().replayed;
    s.persistentCollisions = persistent_->replayStats().collisions;
  }
  return s;
}

std::string Server::jobsJson() const {
  const auto now = std::chrono::steady_clock::now();
  std::string jobs;
  std::size_t count = 0;
  {
    std::unique_lock lock(inflightMu_);
    for (const auto& j : inflight_) {
      const std::int64_t startedNs = j->startedNs.load();
      const auto queuedUntil =
          startedNs < 0
              ? now
              : std::chrono::steady_clock::time_point(
                    std::chrono::steady_clock::duration(startedNs));
      const double queuedMs =
          std::chrono::duration<double, std::milli>(queuedUntil - j->accepted)
              .count();
      const double runMs =
          startedNs < 0 ? 0
                        : std::chrono::duration<double, std::milli>(
                              now - queuedUntil)
                              .count();
      obs::JsonObject o;
      o.s("ulid", j->ulid)
          .s("name", j->name)
          .s("client", j->client)
          .s("trace", j->trace)
          .s("phase", j->progress.phase())
          .s("disposition", j->progress.disposition())
          .u("iteration", j->progress.iteration())
          .f("queuedMs", queuedMs)
          .f("runMs", runMs);
      if (count > 0) jobs += ",";
      jobs += "\n" + o.str();
      ++count;
    }
  }
  return "{\"inflight\":" + std::to_string(count) + ",\"jobs\":[" + jobs +
         "\n]}";
}

std::string Server::statsJson() const {
  const ServeStats s = stats();
  obs::JsonObject o;
  o.u("schema", kProtocolSchemaVersion)
      .s("type", "stats")
      .f("uptimeMs", s.uptimeMs)
      .b("draining", s.draining)
      .u("threads", s.threads)
      .u("connections", s.connections)
      .u("httpRequests", s.httpRequests)
      .u("jobsAccepted", s.jobsAccepted)
      .u("jobsCompleted", s.jobsCompleted)
      .u("jobsShed", s.jobsShed)
      .u("protocolErrors", s.protocolErrors)
      .u("queueDepth", s.queueDepth)
      .u("cacheEntries", s.cacheEntries)
      .u("cacheBytes", s.cacheBytes)
      .u("cacheHits", s.cacheHits)
      .u("cacheMisses", s.cacheMisses)
      .u("cacheEvictions", s.cacheEvictions)
      .u("cacheCollisions", s.cacheCollisions);
  if (persistent_ != nullptr) {
    o.s("cachePath", options_.cachePath)
        .u("persistentEntries", s.persistentEntries)
        .u("persistentReplayed", s.persistentReplayed)
        .u("persistentCollisions", s.persistentCollisions);
  }
  return o.str();
}

}  // namespace mui::serve
