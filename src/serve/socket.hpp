#pragma once
// Thin POSIX TCP helpers for the serve subsystem: an RAII fd, loopback
// listen/connect, full-buffer writes, and a buffered newline-delimited
// reader. Deliberately minimal — the daemon speaks line protocols only
// (JSONL jobs, HTTP GET), so there is nothing here beyond what those
// need. All errors surface as std::runtime_error with the errno text.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mui::serve {

/// Move-only owner of a file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port; port 0 lets the kernel pick and
/// `boundPort` reports the actual one. Throws on resolution/bind failure
/// (e.g. the port is taken).
Fd listenTcp(const std::string& host, std::uint16_t port,
             std::uint16_t& boundPort);

/// Blocking connect; throws when nothing listens there.
Fd connectTcp(const std::string& host, std::uint16_t port);

/// Accepts one connection, waiting at most `timeoutMs`; nullopt on
/// timeout (the caller re-checks its stop flag and polls again).
std::optional<Fd> acceptWithTimeout(int listenFd, int timeoutMs);

/// Writes the whole buffer; throws on a closed or failing peer. Uses
/// MSG_NOSIGNAL so a vanished client is an exception, not a SIGPIPE.
void writeAll(int fd, std::string_view data);

/// Unblocks any thread blocked reading `fd` (they see EOF); the write
/// side stays open so in-flight replies can still be delivered.
void shutdownRead(int fd);

/// Buffered reader returning one '\n'-terminated line at a time (without
/// the terminator; a trailing '\r' is trimmed for HTTP request lines).
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Next line, or nullopt at EOF. A final unterminated chunk before EOF
  /// is returned as a line. Throws on socket errors.
  std::optional<std::string> next();

 private:
  int fd_;
  std::string buf_;
  std::size_t pos_ = 0;
  bool eof_ = false;
};

}  // namespace mui::serve
