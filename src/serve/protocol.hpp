#pragma once
// The mui serve wire protocol (reference: docs/SERVE.md): newline-
// delimited JSON over a loopback TCP connection, reusing the manifest job
// schema (engine/manifest.hpp) — the same keys a `job ...` manifest line
// takes appear as JSON fields, so anything that can write a manifest can
// drive the daemon.
//
// Client → server, one object per line:
//   {"schema":1,"type":"hello","client":"ci","deadline-ms":5000,
//    "trace":"ci-run-42"}
//   {"schema":1,"type":"job","id":1,"name":"wd-compliant",
//    "ulid":"01JGV...","model":"/abs/path/watchdog.muml",
//    "pattern":"Watchdog","role":"device","hidden":"deviceCompliant",
//    "formula":"","timeout-ms":0,"max-iterations":0}
//   {"schema":1,"type":"stats"}
//   {"schema":1,"type":"end"}
//
// Server → client:
//   {"schema":1,"type":"welcome","version":"...","threads":8}
//   {"schema":1,"type":"result","id":1,"name":"wd-compliant",
//    "ulid":"01JGV...","status":"proven","explanation":"...",
//    "cacheHit":false,"presolved":false,"iterations":3,"testPeriods":9,
//    "learnedFacts":2,"wallMs":12.5,"worker":"worker-0"}
//   {"schema":1,"type":"shed","id":2,"retry-after-ms":250}
//   {"schema":1,"type":"stats", ...ServeStats fields...}
//   {"schema":1,"type":"error","message":"..."}
//   {"schema":1,"type":"done","jobs":10,"shed":0,"cacheHits":4,
//    "cacheMisses":6}
//
// Results stream back in completion order, correlated by `id`; `done` is
// sent after `end` (or client EOF) once every accepted job has finished.
//
// Schema note: "trace" on hello (a client-supplied trace context label),
// "ulid" on job (the client-minted correlation id, obs/ulid.hpp) and
// "ulid"/"presolved" on result are additive fields within schema 1 —
// absent on old peers, never required.
// HTTP GETs on the same port (the first line starts with "GET ") bypass
// this protocol entirely — see server.hpp.

#include <cstdint>
#include <string>
#include <string_view>

#include "engine/job.hpp"

namespace mui::serve {

inline constexpr int kProtocolSchemaVersion = 1;

/// One parsed client request.
struct Request {
  enum class Type { Hello, Job, Stats, End, Invalid };
  Type type = Type::Invalid;
  std::string error;  // for Invalid: what was wrong with the line

  // Hello
  std::string client;
  std::string trace;  // client-supplied trace context, "" = none
  std::uint64_t deadlineMs = 0;

  // Job
  std::uint64_t id = 0;  // 0 = client did not number the job
  engine::Job job;
};

/// Parses one request line; never throws — malformed input yields
/// Type::Invalid with a diagnostic.
Request parseRequest(std::string_view line);

std::string writeHelloLine(const std::string& client, std::uint64_t deadlineMs,
                           const std::string& trace = "");
std::string writeJobLine(std::uint64_t id, const engine::Job& job);
std::string writeStatsRequestLine();
std::string writeEndLine();

/// One parsed server reply.
struct Response {
  enum class Type { Welcome, Result, Shed, Stats, Error, Done, Invalid };
  Type type = Type::Invalid;
  std::string error;  // for Invalid / Error

  std::uint64_t id = 0;
  engine::JobResult result;      // for Result (job field left empty)
  std::uint64_t retryAfterMs = 0;  // for Shed

  // Done
  std::uint64_t jobs = 0;
  std::uint64_t shed = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;

  std::string raw;  // original line (Stats consumers read fields from it)
};

/// Parses one response line; never throws.
Response parseResponse(std::string_view line);

std::string writeWelcomeLine(const std::string& version, std::size_t threads);
std::string writeResultLine(std::uint64_t id, const engine::JobResult& r);
std::string writeShedLine(std::uint64_t id, std::uint64_t retryAfterMs);
std::string writeErrorLine(std::string_view message);
std::string writeDoneLine(std::uint64_t jobs, std::uint64_t shed,
                          std::uint64_t cacheHits, std::uint64_t cacheMisses);

}  // namespace mui::serve
