#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <system_error>

namespace mui::serve {

namespace {

[[noreturn]] void fail(const std::string& what) {
  // std::system_category().message is the thread-safe strerror: the daemon
  // hits this from worker threads (concurrency-mt-unsafe).
  throw std::runtime_error(
      what + ": " + std::system_category().message(errno));
}

sockaddr_in makeAddr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("invalid IPv4 address '" + host +
                             "' (the daemon binds numeric loopback "
                             "addresses only)");
  }
  return addr;
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Fd listenTcp(const std::string& host, std::uint16_t port,
             std::uint16_t& boundPort) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) fail("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = makeAddr(host, port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    fail("cannot bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    fail("getsockname");
  }
  boundPort = ntohs(addr.sin_port);
  return fd;
}

Fd connectTcp(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) fail("socket");
  const sockaddr_in addr = makeAddr(host, port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    fail("cannot connect to " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

std::optional<Fd> acceptWithTimeout(int listenFd, int timeoutMs) {
  pollfd pfd{listenFd, POLLIN, 0};
  const int n = ::poll(&pfd, 1, timeoutMs);
  if (n < 0) {
    if (errno == EINTR) return std::nullopt;
    fail("poll");
  }
  if (n == 0 || (pfd.revents & POLLIN) == 0) return std::nullopt;
  Fd conn(::accept4(listenFd, nullptr, nullptr, SOCK_CLOEXEC));
  if (!conn.valid()) {
    if (errno == ECONNABORTED || errno == EINTR) return std::nullopt;
    fail("accept");
  }
  const int one = 1;
  ::setsockopt(conn.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

void writeAll(int fd, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write");
    }
    written += static_cast<std::size_t>(n);
  }
}

void shutdownRead(int fd) { ::shutdown(fd, SHUT_RD); }

std::optional<std::string> LineReader::next() {
  for (;;) {
    const std::size_t eol = buf_.find('\n', pos_);
    if (eol != std::string::npos) {
      std::string line = buf_.substr(pos_, eol - pos_);
      pos_ = eol + 1;
      if (pos_ > (1u << 16)) {  // keep the buffer from growing unbounded
        buf_.erase(0, pos_);
        pos_ = 0;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (eof_) {
      if (pos_ >= buf_.size()) return std::nullopt;
      std::string line = buf_.substr(pos_);
      pos_ = buf_.size();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("read");
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace mui::serve
