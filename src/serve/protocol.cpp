#include "serve/protocol.hpp"

#include "obs/journal.hpp"

namespace mui::serve {

namespace {

const obs::JsonValue* field(const obs::FlatObject& obj, const char* name) {
  const auto it = obj.find(name);
  return it == obj.end() ? nullptr : &it->second;
}

std::string str(const obs::FlatObject& obj, const char* name) {
  const auto* v = field(obj, name);
  return v == nullptr ? std::string() : v->text;
}

std::uint64_t uns(const obs::FlatObject& obj, const char* name) {
  const auto* v = field(obj, name);
  return v == nullptr ? 0 : v->asUint();
}

double num(const obs::FlatObject& obj, const char* name) {
  const auto* v = field(obj, name);
  return v == nullptr ? 0 : v->number;
}

obs::JsonObject header(const char* type) {
  obs::JsonObject o;
  o.u("schema", kProtocolSchemaVersion).s("type", type);
  return o;
}

}  // namespace

Request parseRequest(std::string_view line) {
  Request req;
  const auto obj = obs::parseFlatJson(line);
  if (!obj) {
    req.error = "malformed JSON request line";
    return req;
  }
  if (uns(*obj, "schema") != kProtocolSchemaVersion) {
    req.error = "unsupported or missing schema (expected " +
                std::to_string(kProtocolSchemaVersion) + ")";
    return req;
  }
  const std::string type = str(*obj, "type");
  if (type == "hello") {
    req.type = Request::Type::Hello;
    req.client = str(*obj, "client");
    req.trace = str(*obj, "trace");
    req.deadlineMs = uns(*obj, "deadline-ms");
    return req;
  }
  if (type == "stats") {
    req.type = Request::Type::Stats;
    return req;
  }
  if (type == "end") {
    req.type = Request::Type::End;
    return req;
  }
  if (type != "job") {
    req.error = "unknown request type '" + type + "'";
    return req;
  }
  req.id = uns(*obj, "id");
  req.job.name = str(*obj, "name");
  req.job.ulid = str(*obj, "ulid");
  req.job.modelPath = str(*obj, "model");
  req.job.pattern = str(*obj, "pattern");
  req.job.legacyRole = str(*obj, "role");
  req.job.hidden = str(*obj, "hidden");
  req.job.formula = str(*obj, "formula");
  req.job.timeoutMs = uns(*obj, "timeout-ms");
  req.job.maxIterations = static_cast<std::size_t>(uns(*obj, "max-iterations"));
  for (const auto& [key, value] : {std::pair<const char*, const std::string*>{
                                       "model", &req.job.modelPath},
                                   {"pattern", &req.job.pattern},
                                   {"role", &req.job.legacyRole},
                                   {"hidden", &req.job.hidden}}) {
    if (value->empty()) {
      req.error = std::string("job is missing required field '") + key + "'";
      return req;
    }
  }
  req.type = Request::Type::Job;
  return req;
}

std::string writeHelloLine(const std::string& client, std::uint64_t deadlineMs,
                           const std::string& trace) {
  auto o = header("hello");
  o.s("client", client);
  if (!trace.empty()) o.s("trace", trace);
  if (deadlineMs != 0) o.u("deadline-ms", deadlineMs);
  return o.str();
}

std::string writeJobLine(std::uint64_t id, const engine::Job& job) {
  auto o = header("job");
  o.u("id", id).s("name", job.name);
  if (!job.ulid.empty()) o.s("ulid", job.ulid);
  o.s("model", job.modelPath)
      .s("pattern", job.pattern)
      .s("role", job.legacyRole)
      .s("hidden", job.hidden);
  if (!job.formula.empty()) o.s("formula", job.formula);
  if (job.timeoutMs != 0) o.u("timeout-ms", job.timeoutMs);
  if (job.maxIterations != 0) o.u("max-iterations", job.maxIterations);
  return o.str();
}

std::string writeStatsRequestLine() { return header("stats").str(); }

std::string writeEndLine() { return header("end").str(); }

Response parseResponse(std::string_view line) {
  Response res;
  res.raw = std::string(line);
  const auto obj = obs::parseFlatJson(line);
  if (!obj) {
    res.error = "malformed JSON response line";
    return res;
  }
  if (uns(*obj, "schema") != kProtocolSchemaVersion) {
    res.error = "unsupported or missing schema";
    return res;
  }
  const std::string type = str(*obj, "type");
  if (type == "welcome") {
    res.type = Response::Type::Welcome;
    return res;
  }
  if (type == "error") {
    res.type = Response::Type::Error;
    res.error = str(*obj, "message");
    return res;
  }
  if (type == "stats") {
    res.type = Response::Type::Stats;
    return res;
  }
  if (type == "shed") {
    res.type = Response::Type::Shed;
    res.id = uns(*obj, "id");
    res.retryAfterMs = uns(*obj, "retry-after-ms");
    return res;
  }
  if (type == "done") {
    res.type = Response::Type::Done;
    res.jobs = uns(*obj, "jobs");
    res.shed = uns(*obj, "shed");
    res.cacheHits = uns(*obj, "cacheHits");
    res.cacheMisses = uns(*obj, "cacheMisses");
    return res;
  }
  if (type != "result") {
    res.error = "unknown response type '" + type + "'";
    return res;
  }
  res.id = uns(*obj, "id");
  res.result.job.name = str(*obj, "name");
  res.result.job.ulid = str(*obj, "ulid");
  const auto status = engine::jobStatusFromName(str(*obj, "status"));
  if (!status) {
    res.error = "result with unknown status '" + str(*obj, "status") + "'";
    return res;
  }
  res.result.status = *status;
  res.result.explanation = str(*obj, "explanation");
  res.result.iterations = static_cast<std::size_t>(uns(*obj, "iterations"));
  res.result.testPeriods = uns(*obj, "testPeriods");
  res.result.learnedFacts = static_cast<std::size_t>(uns(*obj, "learnedFacts"));
  res.result.wallMs = num(*obj, "wallMs");
  res.result.worker = str(*obj, "worker");
  if (const auto* v = field(*obj, "cacheHit")) {
    res.result.cacheHit = v->boolean;
  }
  if (const auto* v = field(*obj, "presolved")) {
    res.result.presolved = v->boolean;
  }
  res.type = Response::Type::Result;
  return res;
}

std::string writeWelcomeLine(const std::string& version, std::size_t threads) {
  auto o = header("welcome");
  o.s("version", version).u("threads", threads);
  return o.str();
}

std::string writeResultLine(std::uint64_t id, const engine::JobResult& r) {
  auto o = header("result");
  o.u("id", id).s("name", r.job.name);
  if (!r.job.ulid.empty()) o.s("ulid", r.job.ulid);
  o.s("status", engine::jobStatusName(r.status))
      .s("explanation", r.explanation)
      .b("cacheHit", r.cacheHit)
      .b("presolved", r.presolved)
      .u("iterations", r.iterations)
      .u("testPeriods", r.testPeriods)
      .u("learnedFacts", r.learnedFacts)
      .f("wallMs", r.wallMs)
      .s("worker", r.worker);
  return o.str();
}

std::string writeShedLine(std::uint64_t id, std::uint64_t retryAfterMs) {
  auto o = header("shed");
  o.u("id", id).u("retry-after-ms", retryAfterMs);
  return o.str();
}

std::string writeErrorLine(std::string_view message) {
  auto o = header("error");
  o.s("message", message);
  return o.str();
}

std::string writeDoneLine(std::uint64_t jobs, std::uint64_t shed,
                          std::uint64_t cacheHits, std::uint64_t cacheMisses) {
  auto o = header("done");
  o.u("jobs", jobs)
      .u("shed", shed)
      .u("cacheHits", cacheHits)
      .u("cacheMisses", cacheMisses);
  return o.str();
}

}  // namespace mui::serve
