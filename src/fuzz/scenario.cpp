#include "fuzz/scenario.hpp"

#include <algorithm>
#include <set>

#include "automata/random.hpp"
#include "testing/mutation.hpp"
#include "util/name_table.hpp"

namespace mui::fuzz {

namespace {

using automata::Automaton;
using automata::RandomSpec;
using ctl::Formula;

/// One of the four context families (see generateScenario doc).
Automaton drawContext(util::Rng& rng, const Automaton& hidden,
                      const RandomSpec& hiddenSpec, const ScenarioSpec& spec) {
  switch (rng.below(4)) {
    case 0:
      return automata::mirrored(hidden, "ctx");
    case 1:
      return automata::mirrored(
          automata::subAutomaton(hidden, 40 + rng.below(50), rng.next(), "sub"),
          "ctx");
    case 2: {
      // Independent behavior over the same interface: reusing the hidden
      // spec's name re-interns the same signal names, so the mirror swaps
      // onto exactly the hidden component's I/O sets. Labeling is left to
      // mirrored() so the states carry "ctx.*" propositions only.
      RandomSpec cs = hiddenSpec;
      cs.states = spec.minStates + rng.below(spec.maxStates - spec.minStates + 1);
      cs.densityPct = 20 + rng.below(60);
      cs.deterministic = false;
      cs.labelStates = false;
      cs.seed = rng.next();
      const Automaton other = automata::randomAutomaton(
          cs, hidden.signalTable(), hidden.propTable());
      return automata::mirrored(other, "ctx");
    }
    default: {
      // Faulty counterpart: the mirror with one or two structural mutations.
      Automaton m = automata::mirrored(hidden, "ctx");
      const std::size_t mutations = 1 + rng.below(2);
      for (std::size_t i = 0; i < mutations; ++i) {
        const auto op = static_cast<testing::MutationOp>(rng.below(3));
        if (auto mutated = testing::mutateAutomaton(m, op, rng.next())) {
          m = std::move(mutated->first);
        }
      }
      return m;
    }
  }
}

}  // namespace

Scenario generateScenario(std::uint64_t seed, const ScenarioSpec& spec) {
  util::Rng rng(seed ^ 0x6d75695f66757a7aull);  // "mui_fuzz"
  auto signals = std::make_shared<util::NameTable>();
  auto props = std::make_shared<util::NameTable>();

  RandomSpec hs;
  hs.states = spec.minStates + rng.below(spec.maxStates - spec.minStates + 1);
  hs.inputs = 1 + rng.below(spec.maxInputs);
  hs.outputs = 1 + rng.below(spec.maxOutputs);
  hs.densityPct = 20 + rng.below(60);
  hs.deterministic = true;  // legacy-component discipline (Sec. 4.3)
  hs.noLocalDeadlocks = rng.chance(3, 4);
  hs.seed = rng.next();
  hs.name = "legacy";
  Automaton hidden = automata::randomAutomaton(hs, signals, props);
  Automaton context = drawContext(rng, hidden, hs, spec);

  Scenario s{std::move(signals), std::move(props), std::move(hidden),
             std::move(context), std::string(), seed};
  if (!rng.chance(1, 5)) {  // 20% of scenarios check deadlock freedom only
    s.property = randomActlProperty(rng, scenarioAtoms(s));
  }
  return s;
}

std::vector<std::string> scenarioAtoms(const Scenario& s) {
  std::set<std::size_t> bits;
  for (const Automaton* a : {&s.hidden, &s.context}) {
    for (automata::StateId st = 0; st < a->stateCount(); ++st) {
      a->labels(st).forEach([&](std::size_t bit) { bits.insert(bit); });
    }
  }
  std::vector<std::string> atoms;
  atoms.reserve(bits.size());
  for (const std::size_t bit : bits) {
    atoms.push_back(s.props->name(static_cast<util::NameId>(bit)));
  }
  return atoms;
}

std::string randomActlProperty(util::Rng& rng,
                               const std::vector<std::string>& atoms) {
  if (atoms.empty()) return "";
  const auto atom = [&]() -> const std::string& {
    return atoms[rng.below(atoms.size())];
  };
  const auto bound = [&] {
    const std::uint64_t lo = rng.below(3);
    const std::uint64_t hi = lo + 1 + rng.below(4);
    return "[" + std::to_string(lo) + "," + std::to_string(hi) + "]";
  };
  // Every template is inside the counterexample-supported ACTL fragment.
  const auto simple = [&]() -> std::string {
    switch (rng.below(5)) {
      case 0:
        return "AG !(" + atom() + " && " + atom() + ")";
      case 1:
        return "AG (" + atom() + " -> AF" + bound() + " " + atom() + ")";
      case 2:
        return "AF" + bound() + " " + atom();
      case 3:
        return "AG (" + atom() + " -> " + atom() + ")";
      default:
        return "AG (" + atom() + " || !" + atom() + ")";
    }
  };
  std::string text = simple();
  if (rng.chance(1, 4)) text = "(" + text + ") && (" + simple() + ")";
  return text;
}

ctl::FormulaPtr randomCctlFormula(util::Rng& rng,
                                  const std::vector<std::string>& atoms,
                                  std::size_t depth) {
  const auto leaf = [&]() -> ctl::FormulaPtr {
    switch (rng.below(8)) {
      case 0:
        return Formula::mkTrue();
      case 1:
        return Formula::mkFalse();
      case 2:
        return Formula::mkDeadlock();
      default:
        if (atoms.empty()) return Formula::mkTrue();
        return Formula::mkAtom(atoms[rng.below(atoms.size())]);
    }
  };
  if (depth == 0) return leaf();
  const auto sub = [&] { return randomCctlFormula(rng, atoms, depth - 1); };
  const auto bound = [&]() -> ctl::Bound {
    if (rng.chance(1, 2)) return {};
    const std::size_t lo = rng.below(3);
    return {lo, lo + rng.below(4)};
  };
  switch (rng.below(13)) {
    case 0:
      return Formula::mkNot(sub());
    case 1:
      return Formula::mkAnd(sub(), sub());
    case 2:
      return Formula::mkOr(sub(), sub());
    case 3:
      return Formula::mkImplies(sub(), sub());
    case 4:
      return Formula::mkAX(sub());
    case 5:
      return Formula::mkEX(sub());
    case 6:
      return Formula::mkAF(sub(), bound());
    case 7:
      return Formula::mkEF(sub(), bound());
    case 8:
      return Formula::mkAG(sub(), bound());
    case 9:
      return Formula::mkEG(sub(), bound());
    case 10:
      return Formula::mkAU(sub(), sub(), bound());
    case 11:
      return Formula::mkEU(sub(), sub(), bound());
    default:
      return leaf();
  }
}

std::string canonicalText(const automata::Automaton& a) {
  const auto& props = *a.propTable();
  std::vector<std::string> states;
  states.reserve(a.stateCount());
  for (automata::StateId s = 0; s < a.stateCount(); ++s) {
    std::string line = "s " + a.stateName(s);
    if (a.isInitial(s)) line += " *";
    std::vector<std::string> labels;
    a.labels(s).forEach([&](std::size_t bit) {
      labels.push_back(props.name(static_cast<util::NameId>(bit)));
    });
    std::sort(labels.begin(), labels.end());
    for (const auto& p : labels) line += " [" + p + "]";
    states.push_back(std::move(line));
  }
  std::sort(states.begin(), states.end());

  std::vector<std::string> transitions;
  transitions.reserve(a.transitionCount());
  for (automata::StateId s = 0; s < a.stateCount(); ++s) {
    for (const auto& t : a.transitionsFrom(s)) {
      transitions.push_back("t " + a.stateName(t.from) + " -" +
                            a.interactionToString(t.label) + "-> " +
                            a.stateName(t.to));
    }
  }
  std::sort(transitions.begin(), transitions.end());

  std::string out = "automaton " + a.name() + "\n";
  for (const auto& line : states) out += line + "\n";
  for (const auto& line : transitions) out += line + "\n";
  return out;
}

}  // namespace mui::fuzz
