#pragma once
// Reproducer files: a failing (usually shrunk) scenario serialized as a
// plain .muml model plus `# key: value` header comments carrying the fuzz
// metadata (oracle, seed, property, automaton roles, exact repro command).
// Because the payload is ordinary .muml, reproducers load in every tool
// (`mui check`, `mui lint`, …) as well as via `mui fuzz --replay` and the
// corpus-replay test (tests/test_corpus_replay.cpp).

#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz/oracles.hpp"
#include "fuzz/scenario.hpp"

namespace mui::fuzz {

struct Reproducer {
  OracleId oracle = OracleId::O1CheckerAgreement;
  std::uint64_t seed = 0;
  Scenario scenario;
  /// Non-empty when the finding only manifests under an intentional fault
  /// injection (`# inject-bug:` header) — replay applies it automatically,
  /// so self-test reproducers keep reproducing.
  std::string injectBug;
};

/// Renders the reproducer file text (deterministic).
std::string writeReproducer(const Reproducer& r);

/// Parses a reproducer file's text. Throws std::invalid_argument when the
/// header is missing/garbled or the payload lacks the named automata, and
/// propagates .muml parse errors.
Reproducer parseReproducer(std::string_view text,
                           std::string_view sourceName = "");

/// Reads and parses a reproducer file. Throws std::runtime_error when the
/// file cannot be read.
Reproducer loadReproducerFile(const std::string& path);

/// Re-runs the recorded oracle on the recorded scenario. `ok == false`
/// means the violation still reproduces.
OracleResult replayReproducer(const Reproducer& r,
                              const OracleOptions& opts = {});

}  // namespace mui::fuzz
