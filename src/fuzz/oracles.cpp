#include "fuzz/oracles.hpp"

#include <utility>

#include "analysis/semantic.hpp"
#include "automata/chaos.hpp"
#include "automata/compose.hpp"
#include "automata/incomplete.hpp"
#include "automata/minimize.hpp"
#include "automata/random.hpp"
#include "automata/refine.hpp"
#include "ctl/checker.hpp"
#include "ctl/counterexample.hpp"
#include "ctl/parser.hpp"
#include "ctl/reference.hpp"
#include "synthesis/initial.hpp"
#include "synthesis/verifier.hpp"
#include "testing/legacy.hpp"
#include "util/rng.hpp"

namespace mui::fuzz {

namespace {

using automata::Automaton;
using automata::Interaction;
using automata::StateId;

/// The formula workload of an oracle: the scenario property (when present)
/// plus, unless pinned, a seed-derived batch of random CCTL formulas.
std::vector<std::pair<std::string, ctl::FormulaPtr>> formulasFor(
    const Scenario& s, const OracleOptions& opts, std::uint64_t salt) {
  std::vector<std::pair<std::string, ctl::FormulaPtr>> out;
  if (!s.property.empty()) {
    out.emplace_back(s.property, ctl::parseFormula(s.property));
  }
  if (!opts.propertyOnly) {
    util::Rng rng(s.seed * 0x9e3779b97f4a7c15ull + salt);
    const auto atoms = scenarioAtoms(s);
    for (std::size_t i = 0; i < opts.formulasPerScenario; ++i) {
      auto f = randomCctlFormula(rng, atoms, 1 + rng.below(3));
      out.emplace_back(f->toString(), std::move(f));
    }
  }
  return out;
}

OracleResult violation(std::string detail, std::string formula = {}) {
  OracleResult r;
  r.ok = false;
  r.detail = std::move(detail);
  r.failingFormula = std::move(formula);
  return r;
}

// ---- O1: worklist checker vs reference checker ----------------------------

OracleResult checkO1(const Scenario& s, const OracleOptions& opts) {
  const auto product = automata::compose(s.hidden, s.context);
  const Automaton& m = product.automaton;
  ctl::Checker fast(m);
  ctl::ReferenceChecker ref(m);
  for (StateId st = 0; st < m.stateCount(); ++st) {
    if (fast.isDeadlockState(st) != ref.isDeadlockState(st)) {
      return violation("O1: deadlock predicate disagrees on product state '" +
                       m.stateName(st) + "'");
    }
  }
  for (const auto& [text, f] : formulasFor(s, opts, 0xf1)) {
    ctl::SatSet fast_sat = fast.evaluate(f);
    if (opts.injectBug == BugInjection::O1DeadlockAF &&
        f->op == ctl::Op::AF) {
      // Fault injection: pretend the worklist checker concluded that stuck
      // states satisfy AF (vacuous liveness).
      for (StateId st = 0; st < m.stateCount(); ++st) {
        if (m.transitionsFrom(st).empty()) fast_sat.set(st);
      }
    }
    const std::vector<char> ref_sat = ref.evaluate(f);
    for (StateId st = 0; st < m.stateCount(); ++st) {
      if (fast_sat.test(st) != (ref_sat[st] != 0)) {
        return violation(
            "O1: worklist and reference checker disagree on product state '" +
                m.stateName(st) + "' (worklist=" +
                (fast_sat.test(st) ? "true" : "false") + ", reference=" +
                (ref_sat[st] != 0 ? "true" : "false") + ") for formula " +
                text,
            text);
      }
    }
  }
  return {};
}

// ---- O2: Thm. 1 safety + Lemma 5 transfer ---------------------------------

/// Learns a random partial model of the hidden behavior into `m0`, exactly
/// as the loop would: observation runs from the initial state (Def. 11) and
/// occasional verified refusals (Def. 12).
void learnRandomFacts(util::Rng& rng, const Automaton& hidden,
                      const std::vector<Interaction>& alphabet,
                      automata::IncompleteAutomaton& m0) {
  const std::size_t walks = rng.below(4);
  for (std::size_t w = 0; w < walks; ++w) {
    StateId cur = hidden.initialStates().front();
    automata::ObservedRun run;
    run.stateNames.push_back(hidden.stateName(cur));
    const std::size_t len = 1 + rng.below(5);
    for (std::size_t step = 0; step < len; ++step) {
      const auto& ts = hidden.transitionsFrom(cur);
      if (ts.empty()) break;
      const auto& t = ts[rng.below(ts.size())];
      run.labels.push_back(t.label);
      cur = t.to;
      run.stateNames.push_back(hidden.stateName(cur));
    }
    m0.learn(run);
    if (rng.chance(1, 2)) {
      // A genuine refusal at the walk's end state: any alphabet interaction
      // whose input set the hidden component does not respond to there.
      std::vector<Interaction> refused;
      for (const auto& x : alphabet) {
        bool enabled = false;
        for (const auto& t : hidden.transitionsFrom(cur)) {
          if (t.label.in == x.in) {
            enabled = true;
            break;
          }
        }
        if (!enabled) refused.push_back(x);
      }
      if (!refused.empty()) {
        automata::ObservedRun blocked = run;
        blocked.labels.push_back(refused[rng.below(refused.size())]);
        blocked.blocked = true;
        m0.learn(blocked);
      }
    }
  }
}

/// An automaton with the same states, labels and initials as `a` but no
/// transitions yet.
Automaton stateSkeleton(const Automaton& a) {
  Automaton out(a.signalTable(), a.propTable(), a.name());
  out.declareSignals(a.inputs(), a.outputs());
  for (StateId st = 0; st < a.stateCount(); ++st) {
    const StateId n = out.addState(a.stateName(st));
    out.addLabels(n, a.labels(st));
  }
  for (StateId q : a.initialStates()) out.markInitial(q);
  return out;
}

/// A random input-deterministic behavior consistent with the learned model:
/// every fact of M0's T is kept, T̄ entries are never contradicted, and the
/// unknown sites are freely kept, dropped, or re-invented — the space of
/// "rest of the component" behaviors Thm. 1 quantifies over.
Automaton consistentVariant(const Automaton& hidden,
                            const automata::IncompleteAutomaton& m0,
                            const std::vector<Interaction>& alphabet,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  Automaton v = stateSkeleton(hidden);
  for (StateId st = 0; st < hidden.stateCount(); ++st) {
    const auto ms = m0.base().stateByName(hidden.stateName(st));
    const auto knownInput = [&](const automata::SignalSet& in) {
      if (!ms) return false;
      for (const auto& kt : m0.base().transitionsFrom(*ms)) {
        if (kt.label.in == in) return true;
      }
      return false;
    };
    for (const auto& t : hidden.transitionsFrom(st)) {
      // M0 facts must be reproduced exactly; unknown behavior is kept with
      // high probability so variants stay close to realistic refinements.
      if (knownInput(t.label.in) || rng.chance(7, 10)) {
        v.addTransition(t.from, t.label, t.to);
      }
    }
    for (const auto& x : alphabet) {
      if (!rng.chance(1, 4)) continue;
      bool taken = false;  // input-determinism: one response per input set
      for (const auto& vt : v.transitionsFrom(st)) {
        if (vt.label.in == x.in) {
          taken = true;
          break;
        }
      }
      if (taken || knownInput(x.in)) continue;
      if (ms && m0.isForbidden(*ms, x)) continue;  // T̄ fact
      v.addTransition(st, x,
                      static_cast<StateId>(rng.below(hidden.stateCount())));
    }
  }
  return v;
}

OracleResult checkO2(const Scenario& s, const OracleOptions& opts) {
  util::Rng rng(s.seed * 0x2545f4914f6cdd1dull + 0xf2);
  const auto alphabet =
      automata::makeAlphabet(s.hidden.inputs(), s.hidden.outputs(),
                             automata::InteractionMode::AtMostOneSignal);
  testing::AutomatonLegacy probe(s.hidden);
  automata::IncompleteAutomaton m0 =
      synthesis::initialModel(probe, s.signals, s.props);
  learnRandomFacts(rng, s.hidden, alphabet, m0);
  const auto closure = automata::chaoticClosure(
      m0, alphabet, automata::ClosureStyle::DeterministicTarget,
      automata::ClosureCopies::Both);

  std::vector<Automaton> variants;
  variants.push_back(s.hidden);
  for (std::size_t i = 0; i < opts.variantsPerScenario; ++i) {
    variants.push_back(consistentVariant(s.hidden, m0, alphabet, rng.next()));
  }

  automata::RefinementOptions ropts;
  ropts.wildcardProp = automata::kChaosProp;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto r =
        automata::checkRefinement(variants[i], closure.automaton, alphabet,
                                  ropts);
    if (!r.holds) {
      return violation("O2: Thm. 1 violated — " +
                       std::string(i == 0 ? "the hidden behavior"
                                          : "consistent refinement #" +
                                                std::to_string(i)) +
                       " does not refine chaos(M0): " + r.reason);
    }
  }

  // Lemma 5 transfer, phrased exactly as the verifier's ProvenCorrect
  // condition (synthesis/verifier.cpp): deadlock freedom against the
  // pessimistic Both-copies closure, the weakened property against the
  // optimistic Copy1Only closure. When both pass, every consistent
  // refinement composed with the context must satisfy φ ∧ ¬δ.
  ctl::VerifyOptions deadlockOnly;
  const bool absDeadlockFree =
      ctl::verify(automata::compose(closure.automaton, s.context).automaton,
                  nullptr, deadlockOnly)
          .holds;
  bool absPropertyHolds = true;
  ctl::FormulaPtr phi;
  if (!s.property.empty()) {
    phi = ctl::parseFormula(s.property);
    const auto optimistic = automata::chaoticClosure(
        m0, alphabet, automata::ClosureStyle::DeterministicTarget,
        automata::ClosureCopies::Copy1Only);
    ctl::VerifyOptions propOnly;
    propOnly.requireDeadlockFree = false;
    absPropertyHolds =
        ctl::verify(
            automata::compose(optimistic.automaton, s.context).automaton,
            ctl::weakenForChaos(phi), propOnly)
            .holds;
  }
  if (absDeadlockFree && absPropertyHolds) {
    for (std::size_t i = 0; i < variants.size(); ++i) {
      const auto conc = automata::compose(variants[i], s.context);
      if (!ctl::verify(conc.automaton, phi, {}).holds) {
        return violation(
            "O2: Lemma 5 transfer violated — the abstraction passes (weakened "
            "property + deadlock freedom) but " +
                std::string(i == 0 ? "the hidden behavior"
                                   : "refinement #" + std::to_string(i)) +
                " ∥ ctx violates φ ∧ ¬δ (φ = " +
                (s.property.empty() ? "true" : s.property) + ")",
            s.property);
      }
    }
  }
  return {};
}

// ---- O3: integration verdict vs ground truth ------------------------------

OracleResult checkO3(const Scenario& s, const OracleOptions& opts) {
  testing::AutomatonLegacy legacy(s.hidden);
  synthesis::IntegrationConfig cfg;
  cfg.property = s.property;
  cfg.requireDeadlockFree = true;
  cfg.maxIterations = opts.maxIterations;
  cfg.runId = "fuzz-O3";
  const auto res = synthesis::runIntegration(s.context, legacy, cfg);

  const ctl::FormulaPtr phi =
      s.property.empty() ? nullptr : ctl::parseFormula(s.property);
  const auto truth =
      ctl::verify(automata::compose(s.hidden, s.context).automaton, phi, {});

  if (res.verdict == synthesis::Verdict::ProvenCorrect && !truth.holds) {
    return violation(
        "O3: Lemma 5 broken — ProvenCorrect after " +
            std::to_string(res.iterations) +
            " iterations, but the concrete composition violates the "
            "obligation (" +
            (truth.counterexamples.empty() ? "?"
                                           : truth.cex().note) +
            ")",
        s.property);
  }
  if (res.verdict == synthesis::Verdict::RealError && truth.holds) {
    return violation(
        "O3: Lemma 6 broken — RealError claimed (" + res.explanation +
            ") but the concrete composition satisfies the property and "
            "deadlock freedom",
        s.property);
  }
  return {};
}

// ---- O4: incremental composition vs full recomposition --------------------

OracleResult checkO4(const Scenario& s, const OracleOptions&) {
  util::Rng rng(s.seed * 0x9e3779b97f4a7c15ull + 0xf4);
  // A partial revision of the hidden model over the same state set, as the
  // refinement loop produces between iterations (the composer keys arena
  // entries by state id, so the state set must stay aligned across calls).
  Automaton partial = stateSkeleton(s.hidden);
  for (StateId st = 0; st < s.hidden.stateCount(); ++st) {
    for (const auto& t : s.hidden.transitionsFrom(st)) {
      if (rng.chance(7, 10)) partial.addTransition(t.from, t.label, t.to);
    }
  }

  automata::IncrementalComposer composer(s.context);
  const auto check = [&](const Automaton& other,
                         const char* what) -> std::optional<std::string> {
    const auto inc = composer.compose({&other});
    const auto scratch = automata::composeAll({&s.context, &other});
    if (canonicalText(inc.automaton) != canonicalText(scratch.automaton)) {
      return "O4: incremental product not isomorphic to full recomposition (" +
             std::string(what) + ")";
    }
    return std::nullopt;
  };
  const std::vector<std::pair<const Automaton*, const char*>> calls = {
      {&partial, "partial model"},
      {&s.hidden, "grown model"},
      {&s.hidden, "repeat call"}};
  for (const auto& [other, what] : calls) {
    if (auto err = check(*other, what)) return violation(std::move(*err));
  }
  if (composer.lastStats().statesNew != 0) {
    return violation(
        "O4: repeat composition interned " +
        std::to_string(composer.lastStats().statesNew) +
        " new product states (arena reuse broken)");
  }
  return {};
}

// ---- O5: verdict invariance under quotient and renaming -------------------

OracleResult checkO5(const Scenario& s, const OracleOptions& opts) {
  const Automaton product =
      automata::compose(s.hidden, s.context).automaton;
  ctl::Checker base(product);
  const Automaton minimized = automata::minimizeBisimulation(product);
  const Automaton renamed =
      automata::shuffledCopy(product, s.seed * 31 + 0xf5);
  ctl::Checker quotient(minimized);
  ctl::Checker shuffled(renamed);
  for (const auto& [text, f] : formulasFor(s, opts, 0xf5)) {
    const bool verdict = base.holds(f);
    if (quotient.holds(f) != verdict) {
      return violation(
          "O5: verdict changed under bisimulation minimization (product " +
              std::string(verdict ? "holds" : "violates") + ") for formula " +
              text,
          text);
    }
    if (shuffled.holds(f) != verdict) {
      return violation(
          "O5: verdict changed under state renaming/reordering for formula " +
              text,
          text);
    }
  }
  return {};
}

// ---- O6: semantic pre-solve vs ground truth --------------------------------

OracleResult checkO6(const Scenario& s, const OracleOptions&) {
  const analysis::PresolveOutcome pre =
      analysis::presolveIntegration(s.context, s.hidden, s.property);
  if (pre.verdict == analysis::PresolveVerdict::Skipped) return {};

  const ctl::FormulaPtr phi =
      s.property.empty() ? nullptr : ctl::parseFormula(s.property);
  const auto truth =
      ctl::verify(automata::compose(s.hidden, s.context).automaton, phi, {});

  if (pre.verdict == analysis::PresolveVerdict::Proved && !truth.holds) {
    return violation(
        "O6: pre-solver proved the integration (" + pre.explanation +
            ") but the concrete composition violates the obligation (" +
            (truth.counterexamples.empty() ? "?" : truth.cex().note) + ")",
        s.property);
  }
  if (pre.verdict == analysis::PresolveVerdict::Refuted && truth.holds) {
    return violation(
        "O6: pre-solver refuted the integration (" + pre.explanation +
            ") but the concrete composition satisfies the property and "
            "deadlock freedom",
        s.property);
  }
  return {};
}

}  // namespace

const char* toString(OracleId id) {
  switch (id) {
    case OracleId::O1CheckerAgreement:
      return "O1";
    case OracleId::O2ChaosSafety:
      return "O2";
    case OracleId::O3VerdictSound:
      return "O3";
    case OracleId::O4IncrementalCompose:
      return "O4";
    case OracleId::O5VerdictInvariance:
      return "O5";
    case OracleId::O6PresolveSound:
      return "O6";
  }
  return "O?";
}

std::optional<OracleId> oracleFromString(std::string_view text) {
  for (const OracleId id : allOracles()) {
    if (text == toString(id)) return id;
  }
  return std::nullopt;
}

std::vector<OracleId> allOracles() {
  return {OracleId::O1CheckerAgreement, OracleId::O2ChaosSafety,
          OracleId::O3VerdictSound, OracleId::O4IncrementalCompose,
          OracleId::O5VerdictInvariance, OracleId::O6PresolveSound};
}

const char* describeOracle(OracleId id) {
  switch (id) {
    case OracleId::O1CheckerAgreement:
      return "worklist Checker agrees with ReferenceChecker state-by-state";
    case OracleId::O2ChaosSafety:
      return "Thm. 1: consistent refinements refine chaos(M0); verdicts "
             "transfer (Lemma 5)";
    case OracleId::O3VerdictSound:
      return "integration verdict matches the concrete ground truth "
             "(Lemmas 5/6)";
    case OracleId::O4IncrementalCompose:
      return "incremental composition isomorphic to full recomposition";
    case OracleId::O5VerdictInvariance:
      return "verdicts invariant under minimization and state renaming";
    case OracleId::O6PresolveSound:
      return "semantic pre-solve verdicts agree with the concrete ground "
             "truth";
  }
  return "";
}

std::optional<BugInjection> bugInjectionFromString(std::string_view text) {
  if (text == "none") return BugInjection::None;
  if (text == "o1-deadlock-af") return BugInjection::O1DeadlockAF;
  return std::nullopt;
}

const char* toString(BugInjection b) {
  switch (b) {
    case BugInjection::None:
      return "none";
    case BugInjection::O1DeadlockAF:
      return "o1-deadlock-af";
  }
  return "none";
}

OracleResult checkOracle(OracleId id, const Scenario& s,
                         const OracleOptions& opts) {
  switch (id) {
    case OracleId::O1CheckerAgreement:
      return checkO1(s, opts);
    case OracleId::O2ChaosSafety:
      return checkO2(s, opts);
    case OracleId::O3VerdictSound:
      return checkO3(s, opts);
    case OracleId::O4IncrementalCompose:
      return checkO4(s, opts);
    case OracleId::O5VerdictInvariance:
      return checkO5(s, opts);
    case OracleId::O6PresolveSound:
      return checkO6(s, opts);
  }
  return {};
}

}  // namespace mui::fuzz
