#pragma once
// Greedy reproducer shrinking. Given a scenario on which an oracle fails,
// repeatedly tries structure-removing simplifications — drop a transition,
// drop a state, replace the property by a smaller subformula — and keeps
// each one only if the oracle still fails afterwards. The result is a local
// minimum: removing any single remaining element makes the failure vanish,
// which is what makes checked-in reproducers (tests/corpus/) readable.
//
// The exposing formula reported by the failing oracle is pinned first: it
// becomes the scenario property and the oracle is re-run in propertyOnly
// mode, so shrinking never wanders off to a *different* violation drawn
// from the random formula workload.
//
// Oracle crashes (exceptions) are shrunk exactly like violations: a
// candidate "still fails" if the oracle throws again.

#include <cstdint>
#include <string>

#include "fuzz/oracles.hpp"
#include "fuzz/scenario.hpp"

namespace mui::fuzz {

struct ShrinkOutcome {
  Scenario scenario;     // the minimized failing scenario
  OracleOptions options; // options the minimized failure reproduces under
  std::string failure;   // oracle detail (or exception text) on the minimum
  bool crashed = false;  // minimum fails by throwing, not by a verdict
  std::size_t rounds = 0;
  std::size_t attempts = 0;  // oracle executions spent
};

/// Shrinks `s` against oracle `id`. Precondition: checkOracle(id, s, opts)
/// currently fails (returns !ok or throws); if it does not, the scenario is
/// returned unchanged with an empty failure text.
ShrinkOutcome shrinkScenario(const Scenario& s, OracleId id,
                             const OracleOptions& opts = {});

}  // namespace mui::fuzz
