#include "fuzz/reproducer.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "muml/loader.hpp"
#include "muml/writer.hpp"

namespace mui::fuzz {

namespace {
constexpr const char* kMagic = "# mui fuzz reproducer v1";

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}
}  // namespace

std::string writeReproducer(const Reproducer& r) {
  std::ostringstream out;
  out << kMagic << "\n";
  out << "# oracle: " << toString(r.oracle) << "\n";
  out << "# seed: " << r.seed << "\n";
  out << "# legacy: " << r.scenario.hidden.name() << "\n";
  out << "# context: " << r.scenario.context.name() << "\n";
  if (!r.scenario.property.empty()) {
    out << "# property: " << r.scenario.property << "\n";
  }
  if (!r.injectBug.empty()) {
    out << "# inject-bug: " << r.injectBug << "\n";
  }
  out << "# repro: mui fuzz --replay <this-file>\n";
  out << "\n";
  out << muml::writeAutomaton(r.scenario.hidden);
  out << "\n";
  out << muml::writeAutomaton(r.scenario.context);
  return out.str();
}

Reproducer parseReproducer(std::string_view text, std::string_view sourceName) {
  const std::string where =
      sourceName.empty() ? "reproducer" : std::string(sourceName);
  std::map<std::string, std::string> header;
  {
    std::istringstream in{std::string(text)};
    std::string line;
    bool sawMagic = false;
    while (std::getline(in, line)) {
      line = trim(line);
      if (line.empty()) continue;
      if (line == kMagic) {
        sawMagic = true;
        continue;
      }
      if (line.rfind("# ", 0) != 0) break;  // payload reached
      const auto colon = line.find(": ");
      if (colon == std::string::npos) continue;
      header[line.substr(2, colon - 2)] = line.substr(colon + 2);
    }
    if (!sawMagic) {
      throw std::invalid_argument(where + ": missing '" + kMagic +
                                  "' header line");
    }
  }

  const auto oracleIt = header.find("oracle");
  if (oracleIt == header.end()) {
    throw std::invalid_argument(where + ": missing '# oracle:' header");
  }
  const auto oracle = oracleFromString(oracleIt->second);
  if (!oracle) {
    throw std::invalid_argument(where + ": unknown oracle '" +
                                oracleIt->second + "'");
  }
  std::uint64_t seed = 0;
  if (const auto it = header.find("seed"); it != header.end()) {
    seed = std::stoull(it->second);
  }
  std::string injectBug =
      header.count("inject-bug") ? header.at("inject-bug") : "";
  if (!injectBug.empty() && !bugInjectionFromString(injectBug)) {
    throw std::invalid_argument(where + ": unknown inject-bug '" + injectBug +
                                "'");
  }

  muml::Model model = muml::loadModel(text, sourceName);
  const std::string legacyName =
      header.count("legacy") ? header.at("legacy") : "legacy";
  const std::string contextName =
      header.count("context") ? header.at("context") : "ctx";
  const auto find = [&](const std::string& name) -> automata::Automaton {
    const auto it = model.automata.find(name);
    if (it == model.automata.end()) {
      throw std::invalid_argument(where + ": payload has no automaton '" +
                                  name + "'");
    }
    return it->second;
  };
  automata::Automaton hidden = find(legacyName);
  automata::Automaton context = find(contextName);
  return Reproducer{
      *oracle, seed,
      Scenario{model.signals, model.props, std::move(hidden),
               std::move(context),
               header.count("property") ? header.at("property") : "", seed},
      std::move(injectBug)};
}

Reproducer loadReproducerFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read reproducer: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parseReproducer(buf.str(), path);
}

OracleResult replayReproducer(const Reproducer& r, const OracleOptions& opts) {
  OracleOptions effective = opts;
  if (effective.injectBug == BugInjection::None && !r.injectBug.empty()) {
    effective.injectBug = *bugInjectionFromString(r.injectBug);
  }
  return checkOracle(r.oracle, r.scenario, effective);
}

}  // namespace mui::fuzz
