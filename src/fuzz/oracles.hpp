#pragma once
// The six metamorphic oracles of the fuzzing subsystem. Each one turns a
// guarantee of the paper — or an internal implementation equivalence — into
// an executable check over a generated scenario:
//
//   O1  The worklist ctl::Checker and the naive ctl::ReferenceChecker agree
//       state-by-state on the composed model, for the scenario property and
//       a batch of random CCTL formulas (plus the deadlock predicate).
//   O2  Thm. 1 safety: the hidden behavior and every consistent refinement
//       of a partially learned model M0 refine chaos(M0); and when
//       chaos(M0) ∥ context ⊨ weaken(φ), every such refinement composed
//       with the context satisfies φ (Lemma 5 transfer).
//   O3  Verdict soundness: runIntegration's ProvenCorrect implies the
//       concrete composition satisfies φ ∧ ¬δ (Lemma 5), and RealError
//       implies it does not (Lemma 6 — replayed counterexamples admit no
//       false negatives).
//   O4  IncrementalComposer products are isomorphic to full recomposition
//       across model revisions, and repeat calls reuse the whole arena.
//   O5  CCTL verdicts are invariant under bisimulation minimization and
//       under state renaming/reordering (automata::shuffledCopy).
//   O6  Pre-solve soundness: when analysis::presolveIntegration returns a
//       definitive verdict (Proved/Refuted) for the scenario, it agrees
//       with ctl::verify on the concrete composition; Skipped is always
//       acceptable.
//
// checkOracle never reports flaky results: everything derives from the
// scenario seed. Violations carry the exposing formula so the shrinker
// (shrink.hpp) can pin it while minimizing the automata.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/scenario.hpp"

namespace mui::fuzz {

enum class OracleId {
  O1CheckerAgreement,
  O2ChaosSafety,
  O3VerdictSound,
  O4IncrementalCompose,
  O5VerdictInvariance,
  O6PresolveSound,
};

/// "O1" .. "O6".
const char* toString(OracleId id);
std::optional<OracleId> oracleFromString(std::string_view text);
/// All six, in numeric order.
std::vector<OracleId> allOracles();
/// One-line catalog entry (usage text and docs/FUZZING.md).
const char* describeOracle(OracleId id);

/// Intentional fault injection — the self-test proving the harness can
/// catch and shrink a checker bug (see tests/test_fuzz_oracles.cpp and the
/// `--inject-bug` CLI flag). The bug corrupts the oracle's *observation* of
/// the worklist checker, never the production checker itself.
enum class BugInjection {
  None,
  /// O1 sees every deadlock state as satisfying a top-level AF formula —
  /// the classic "vacuous liveness at a stuck state" checker bug.
  O1DeadlockAF,
};
std::optional<BugInjection> bugInjectionFromString(std::string_view text);
/// "none", "o1-deadlock-af" — inverse of bugInjectionFromString.
const char* toString(BugInjection b);

struct OracleOptions {
  BugInjection injectBug = BugInjection::None;
  /// Check only the scenario's own property; skip the random differential
  /// formulas. The shrinker sets this after pinning the exposing formula
  /// into Scenario::property.
  bool propertyOnly = false;
  /// Random CCTL formulas per scenario for O1/O5.
  std::size_t formulasPerScenario = 4;
  /// Consistent refinements per scenario for O2.
  std::size_t variantsPerScenario = 3;
  /// Iteration budget for O3's integration loop.
  std::size_t maxIterations = 1000;
};

struct OracleResult {
  bool ok = true;
  std::string detail;          // human-readable violation description
  std::string failingFormula;  // formula text that exposed it, if any
};

/// Runs one oracle on the scenario. Exceptions escape to the caller — the
/// campaign layer treats them as crash findings and shrinks them like
/// ordinary violations.
OracleResult checkOracle(OracleId id, const Scenario& s,
                         const OracleOptions& opts = {});

}  // namespace mui::fuzz
