#pragma once
// Fuzzing campaigns: N seeded scenarios × the selected oracles, optionally
// in parallel on the engine thread pool, with crash isolation per scenario
// (an oracle that throws becomes a finding, not a dead campaign).
//
// Determinism contract (tested by tests/test_fuzz_oracles.cpp and the CI
// determinism gate): the campaign report and its rendered summary depend
// only on (seed, runs, oracle selection, oracle options). Scenario i always
// uses seed `base + i`, findings are aggregated in scenario order whatever
// the worker interleaving was, and the summary contains no wall-clock data.
// A time budget only truncates the *number* of scenarios executed — each
// scenario runs to completion — so budget-limited campaigns are prefixes of
// unlimited ones.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fuzz/oracles.hpp"
#include "fuzz/shrink.hpp"

namespace mui::obs {
class Journal;
}  // namespace mui::obs

namespace mui::fuzz {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t runs = 100;
  /// Worker threads; 1 = run inline on the caller, 0 = hardware concurrency.
  std::size_t jobs = 1;
  /// Wall-clock budget in seconds; 0 = unlimited. Checked between
  /// scenarios, never inside one.
  std::uint64_t timeBudgetSec = 0;
  /// Directory for reproducer files; empty = do not write any.
  std::string outDir;
  /// Oracles to run; empty = all five.
  std::vector<OracleId> oracles;
  OracleOptions oracle;
  /// Shrink failing scenarios before reporting (off: raw scenario).
  bool shrink = true;
  /// Optional journal for fuzz_start / fuzz_finding / fuzz_summary events.
  obs::Journal* journal = nullptr;
};

struct FuzzFinding {
  std::uint64_t scenarioSeed = 0;
  OracleId oracle = OracleId::O1CheckerAgreement;
  bool crashed = false;
  std::string detail;          // violation/crash text (after shrinking)
  std::string failingFormula;  // pinned property, if any
  std::size_t shrunkStates = 0;  // total states of the minimized scenario
  std::string reproducer;        // reproducer file text
  std::string path;              // file path when outDir was set
};

struct FuzzReport {
  std::uint64_t seed = 0;
  std::size_t runs = 0;      // requested
  std::size_t executed = 0;  // actually run (== runs unless budget hit)
  std::vector<OracleId> oracles;
  std::map<std::string, std::size_t> checks;      // oracle name -> checks run
  std::map<std::string, std::size_t> violations;  // oracle name -> failures
  std::vector<FuzzFinding> findings;              // scenario order
  std::size_t crashes = 0;
  bool budgetExhausted = false;

  [[nodiscard]] bool clean() const { return findings.empty(); }
};

FuzzReport runCampaign(const FuzzOptions& opts);

/// Deterministic human-readable summary (the `mui fuzz` stdout report).
std::string renderFuzzSummary(const FuzzReport& r);

}  // namespace mui::fuzz
