#include "fuzz/shrink.hpp"

#include <exception>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "ctl/parser.hpp"

namespace mui::fuzz {

namespace {

using automata::Automaton;
using automata::StateId;
using ctl::Formula;
using ctl::FormulaPtr;

constexpr std::size_t kMaxRounds = 12;
constexpr std::size_t kMaxAttempts = 4000;

/// Runs the oracle and classifies the outcome; crashes count as failures.
struct Evaluator {
  OracleId id;
  std::size_t attempts = 0;

  bool fails(const Scenario& s, const OracleOptions& opts,
             std::string* detail = nullptr, bool* crashed = nullptr) {
    if (attempts >= kMaxAttempts) return false;  // budget: stop accepting
    ++attempts;
    try {
      const OracleResult r = checkOracle(id, s, opts);
      if (detail) *detail = r.detail;
      if (crashed) *crashed = false;
      return !r.ok;
    } catch (const std::exception& e) {
      if (detail) *detail = std::string("crash: ") + e.what();
      if (crashed) *crashed = true;
      return true;
    } catch (...) {
      if (detail) *detail = "crash: non-standard exception";
      if (crashed) *crashed = true;
      return true;
    }
  }
};

/// Copy of `a` keeping only the states/transitions the predicates accept.
/// Names, labels, signal sets and initial markers survive; state ids are
/// renumbered densely.
Automaton copyFiltered(
    const Automaton& a, const std::function<bool(StateId)>& keepState,
    const std::function<bool(const automata::Transition&)>& keepTransition) {
  Automaton out(a.signalTable(), a.propTable(), a.name());
  out.declareSignals(a.inputs(), a.outputs());
  std::vector<StateId> map(a.stateCount(), UINT32_MAX);
  for (StateId s = 0; s < a.stateCount(); ++s) {
    if (!keepState(s)) continue;
    map[s] = out.addState(a.stateName(s));
    out.addLabels(map[s], a.labels(s));
  }
  for (StateId s = 0; s < a.stateCount(); ++s) {
    if (map[s] == UINT32_MAX) continue;
    for (const auto& t : a.transitionsFrom(s)) {
      if (map[t.to] == UINT32_MAX || !keepTransition(t)) continue;
      out.addTransition(map[s], t.label, map[t.to]);
    }
  }
  for (StateId q : a.initialStates()) {
    if (map[q] != UINT32_MAX) out.markInitial(map[q]);
  }
  return out;
}

Scenario withAutomaton(const Scenario& s, bool hidden, Automaton a) {
  Scenario c = s;
  (hidden ? c.hidden : c.context) = std::move(a);
  return c;
}

/// One pass of single-transition removal over one scenario automaton.
bool dropTransitionsPass(Scenario& s, bool hidden, Evaluator& eval,
                         const OracleOptions& opts) {
  bool progress = false;
  std::size_t index = 0;
  for (;;) {
    const Automaton& a = hidden ? s.hidden : s.context;
    // Flatten to (state, position-in-state) so indices survive re-copies.
    std::vector<automata::Transition> all;
    for (StateId st = 0; st < a.stateCount(); ++st) {
      for (const auto& t : a.transitionsFrom(st)) all.push_back(t);
    }
    if (index >= all.size()) return progress;
    const automata::Transition victim = all[index];
    Scenario cand = withAutomaton(
        s, hidden,
        copyFiltered(
            a, [](StateId) { return true; },
            [&](const automata::Transition& t) { return !(t == victim); }));
    if (eval.fails(cand, opts)) {
      s = std::move(cand);
      progress = true;  // same index now names the next transition
    } else {
      ++index;
    }
  }
}

/// One pass of single-state removal (with its incident transitions).
bool dropStatesPass(Scenario& s, bool hidden, Evaluator& eval,
                    const OracleOptions& opts) {
  bool progress = false;
  StateId index = 0;
  for (;;) {
    const Automaton& a = hidden ? s.hidden : s.context;
    if (a.stateCount() <= 1 || index >= a.stateCount()) return progress;
    const bool soleInitial =
        a.initialStates().size() == 1 && a.initialStates().front() == index;
    if (soleInitial) {
      ++index;
      continue;
    }
    const StateId victim = index;
    Scenario cand = withAutomaton(
        s, hidden,
        copyFiltered(
            a, [&](StateId st) { return st != victim; },
            [](const automata::Transition&) { return true; }));
    if (eval.fails(cand, opts)) {
      s = std::move(cand);
      progress = true;
    } else {
      ++index;
    }
  }
}

/// Rebuilds `f` with the given children, preserving operator and bound.
FormulaPtr rebuild(const FormulaPtr& f, FormulaPtr a, FormulaPtr b) {
  switch (f->op) {
    case ctl::Op::Not:
      return Formula::mkNot(std::move(a));
    case ctl::Op::And:
      return Formula::mkAnd(std::move(a), std::move(b));
    case ctl::Op::Or:
      return Formula::mkOr(std::move(a), std::move(b));
    case ctl::Op::Implies:
      return Formula::mkImplies(std::move(a), std::move(b));
    case ctl::Op::AX:
      return Formula::mkAX(std::move(a));
    case ctl::Op::EX:
      return Formula::mkEX(std::move(a));
    case ctl::Op::AF:
      return Formula::mkAF(std::move(a), f->bound);
    case ctl::Op::EF:
      return Formula::mkEF(std::move(a), f->bound);
    case ctl::Op::AG:
      return Formula::mkAG(std::move(a), f->bound);
    case ctl::Op::EG:
      return Formula::mkEG(std::move(a), f->bound);
    case ctl::Op::AU:
      return Formula::mkAU(std::move(a), std::move(b), f->bound);
    case ctl::Op::EU:
      return Formula::mkEU(std::move(a), std::move(b), f->bound);
    default:
      return f;
  }
}

/// Strictly smaller replacement candidates for `f`, in preference order:
/// constants, the children themselves, then recursive child shrinks.
void collectReplacements(const FormulaPtr& f, std::vector<FormulaPtr>& out) {
  if (!f) return;
  if (f->op != ctl::Op::True) out.push_back(Formula::mkTrue());
  if (f->op != ctl::Op::False) out.push_back(Formula::mkFalse());
  if (f->lhs) out.push_back(f->lhs);
  if (f->rhs) out.push_back(f->rhs);
  if (f->lhs) {
    std::vector<FormulaPtr> sub;
    collectReplacements(f->lhs, sub);
    for (auto& r : sub) out.push_back(rebuild(f, std::move(r), f->rhs));
  }
  if (f->rhs) {
    std::vector<FormulaPtr> sub;
    collectReplacements(f->rhs, sub);
    for (auto& r : sub) out.push_back(rebuild(f, f->lhs, std::move(r)));
  }
}

/// Greedy property simplification to a fixpoint.
bool shrinkPropertyPass(Scenario& s, Evaluator& eval,
                        const OracleOptions& opts) {
  if (s.property.empty()) return false;
  bool progress = false;
  for (;;) {
    FormulaPtr current;
    try {
      current = ctl::parseFormula(s.property);
    } catch (const std::exception&) {
      return progress;  // unparsable property: nothing to shrink
    }
    const std::size_t size = ctl::formulaSize(current);
    std::vector<FormulaPtr> candidates;
    collectReplacements(current, candidates);
    std::set<std::string> seen;
    bool improved = false;
    for (const auto& cand : candidates) {
      if (ctl::formulaSize(cand) >= size) continue;
      const std::string text = cand->toString();
      if (!seen.insert(text).second) continue;
      Scenario trial = s;
      trial.property = text;
      if (eval.fails(trial, opts)) {
        s = std::move(trial);
        improved = true;
        progress = true;
        break;
      }
    }
    if (!improved) return progress;
  }
}

}  // namespace

ShrinkOutcome shrinkScenario(const Scenario& s, OracleId id,
                             const OracleOptions& opts) {
  ShrinkOutcome out{s, opts, {}, false, 0, 0};
  Evaluator eval{id};

  std::string detail;
  bool crashed = false;
  if (!eval.fails(out.scenario, out.options, &detail, &crashed)) {
    out.attempts = eval.attempts;
    return out;  // precondition violated: nothing to shrink
  }

  // Pin the exposing formula so the minimum witnesses *this* violation, not
  // whatever else the random formula workload might turn up on the way down.
  if (!crashed) {
    const OracleResult r = checkOracle(id, out.scenario, out.options);
    if (!r.ok && !r.failingFormula.empty()) {
      Scenario pinned = out.scenario;
      pinned.property = r.failingFormula;
      OracleOptions pinnedOpts = out.options;
      pinnedOpts.propertyOnly = true;
      ++eval.attempts;
      if (eval.fails(pinned, pinnedOpts)) {
        out.scenario = std::move(pinned);
        out.options = pinnedOpts;
      }
    }
  }

  for (std::size_t round = 0; round < kMaxRounds; ++round) {
    bool progress = false;
    progress |= dropTransitionsPass(out.scenario, /*hidden=*/true, eval,
                                    out.options);
    progress |= dropTransitionsPass(out.scenario, /*hidden=*/false, eval,
                                    out.options);
    progress |= dropStatesPass(out.scenario, /*hidden=*/true, eval,
                               out.options);
    progress |= dropStatesPass(out.scenario, /*hidden=*/false, eval,
                               out.options);
    progress |= shrinkPropertyPass(out.scenario, eval, out.options);
    out.rounds = round + 1;
    if (!progress) break;
  }

  // Final capture runs outside the attempt budget so the outcome always
  // carries the minimized failure text.
  try {
    out.failure = checkOracle(id, out.scenario, out.options).detail;
    out.crashed = false;
  } catch (const std::exception& e) {
    out.failure = std::string("crash: ") + e.what();
    out.crashed = true;
  } catch (...) {
    out.failure = "crash: non-standard exception";
    out.crashed = true;
  }
  out.attempts = eval.attempts + 1;
  return out;
}

}  // namespace mui::fuzz
