#pragma once
// Seeded scenario fabrication for the property-based fuzzing subsystem.
//
// A scenario is one complete integration problem drawn from a seed: a hidden
// concrete legacy behavior ("legacy", input-deterministic per Sec. 4.3), a
// composable context ("ctx"), and a CCTL property over their state
// propositions. The five metamorphic oracles (oracles.hpp) then attack the
// paper's guarantees on it — the chaotic closure is a safe over-approximation
// (Thm. 1), verdicts transfer (Lemma 5), counterexamples admit no false
// negatives (Lemma 6) — plus the implementation-level equivalences (worklist
// vs reference checker, incremental vs from-scratch composition, verdict
// invariance under bisimulation quotient and state renaming).
//
// Everything here is deterministic in the seed: generating the same seed
// twice yields structurally identical automata and the same property text,
// which is what makes `mui fuzz --seed S` campaigns and checked-in
// reproducers replayable.

#include <cstdint>
#include <string>
#include <vector>

#include "automata/automaton.hpp"
#include "ctl/formula.hpp"
#include "util/rng.hpp"

namespace mui::fuzz {

/// Size knobs for scenario generation. The defaults keep automata tiny
/// (2–5 states, 1–2 signals each way) so that a 200-run campaign finishes in
/// seconds while still covering deadlocks, refusals, and partial contexts.
struct ScenarioSpec {
  std::size_t minStates = 2;
  std::size_t maxStates = 5;
  std::size_t maxInputs = 2;
  std::size_t maxOutputs = 2;
};

/// One self-contained fuzz scenario over its own pair of fresh tables.
struct Scenario {
  automata::SignalTableRef signals;
  automata::SignalTableRef props;
  automata::Automaton hidden;   // the concrete legacy behavior ("legacy")
  automata::Automaton context;  // the composable context ("ctx")
  std::string property;         // ACTL text; empty = deadlock freedom only
  std::uint64_t seed = 0;

  [[nodiscard]] std::size_t totalStates() const {
    return hidden.stateCount() + context.stateCount();
  }
};

/// Fabricates the scenario for `seed`. The context is drawn from four
/// families: the full mirror of the hidden behavior (exercises everything),
/// the mirror of a random sub-automaton (partial exercise — the common
/// integration situation), an independently generated behavior over the same
/// interface, and a mutated mirror (faulty counterpart).
Scenario generateScenario(std::uint64_t seed, const ScenarioSpec& spec = {});

/// The deduplicated state propositions of both scenario automata, in
/// deterministic (interning) order — the atom vocabulary for properties.
std::vector<std::string> scenarioAtoms(const Scenario& s);

/// Random property in the counterexample-supported ACTL fragment
/// (counterexample.hpp): invariants AG ψ, bounded leads-to
/// AG(p → AF[a,b] q), top-level AF, and conjunctions thereof.
std::string randomActlProperty(util::Rng& rng,
                               const std::vector<std::string>& atoms);

/// Random full-CCTL formula (both path quantifiers, bounded and unbounded
/// operators, deadlock atom) of the given depth — the O1/O5 differential
/// workload.
ctl::FormulaPtr randomCctlFormula(util::Rng& rng,
                                  const std::vector<std::string>& atoms,
                                  std::size_t depth);

/// Canonical structural fingerprint of an automaton: states sorted by name
/// with their label sets and initial markers, transitions sorted by
/// (source, label, target) rendering. Two automata over the same tables have
/// equal fingerprints iff they are isomorphic modulo state ids — the O4
/// comparison between incremental and from-scratch composition.
std::string canonicalText(const automata::Automaton& a);

}  // namespace mui::fuzz
