#include "fuzz/campaign.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "engine/thread_pool.hpp"
#include "fuzz/reproducer.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace mui::fuzz {

namespace {

/// Everything one scenario produced, aggregated in index order afterwards.
struct ScenarioOutcome {
  bool executed = false;
  std::size_t checksRun = 0;  // oracle checks (== oracle count when executed)
  std::vector<FuzzFinding> findings;
};

FuzzFinding makeFinding(std::uint64_t scenarioSeed, OracleId oracle,
                        const Scenario& scenario, const OracleOptions& opts,
                        bool crashed, std::string detail,
                        std::string failingFormula, bool shrink,
                        std::size_t* checksSpent) {
  FuzzFinding f;
  f.scenarioSeed = scenarioSeed;
  f.oracle = oracle;
  f.crashed = crashed;
  f.detail = std::move(detail);
  f.failingFormula = std::move(failingFormula);

  Scenario minimal = scenario;
  if (shrink) {
    try {
      ShrinkOutcome s = shrinkScenario(scenario, oracle, opts);
      if (checksSpent) *checksSpent += s.attempts;
      minimal = std::move(s.scenario);
      f.crashed = s.crashed;
      if (!s.failure.empty()) f.detail = s.failure;
      if (!minimal.property.empty()) f.failingFormula = minimal.property;
    } catch (const std::exception& e) {
      // Shrinking itself must never lose the finding.
      f.detail += " [shrink failed: " + std::string(e.what()) + "]";
    }
  }
  f.shrunkStates = minimal.totalStates();
  const std::string injectBug = opts.injectBug == BugInjection::None
                                    ? std::string()
                                    : toString(opts.injectBug);
  f.reproducer = writeReproducer(
      Reproducer{oracle, scenarioSeed, std::move(minimal), injectBug});
  return f;
}

ScenarioOutcome runScenario(std::uint64_t scenarioSeed,
                            const std::vector<OracleId>& oracles,
                            const OracleOptions& oracleOpts, bool shrink) {
  ScenarioOutcome out;
  out.executed = true;
  Scenario scenario = generateScenario(scenarioSeed);
  for (const OracleId id : oracles) {
    ++out.checksRun;
    bool failed = false;
    bool crashed = false;
    std::string detail;
    std::string formula;
    try {
      const OracleResult r = checkOracle(id, scenario, oracleOpts);
      failed = !r.ok;
      detail = r.detail;
      formula = r.failingFormula;
    } catch (const std::exception& e) {
      failed = true;
      crashed = true;
      detail = std::string("crash: ") + e.what();
    } catch (...) {
      failed = true;
      crashed = true;
      detail = "crash: non-standard exception";
    }
    if (failed) {
      out.findings.push_back(makeFinding(scenarioSeed, id, scenario,
                                         oracleOpts, crashed,
                                         std::move(detail), std::move(formula),
                                         shrink, &out.checksRun));
    }
  }
  return out;
}

std::string reproFileName(const FuzzFinding& f) {
  return std::string("repro_") + toString(f.oracle) + "_" +
         std::to_string(f.scenarioSeed) + ".muml";
}

}  // namespace

FuzzReport runCampaign(const FuzzOptions& opts) {
  static obs::Counter& scenariosTotal = obs::Registry::global().counter(
      "mui_fuzz_scenarios_total", "Fuzz scenarios executed");
  static obs::Counter& checksTotal = obs::Registry::global().counter(
      "mui_fuzz_oracle_checks_total", "Fuzz oracle checks executed");
  static obs::Counter& violationsTotal = obs::Registry::global().counter(
      "mui_fuzz_violations_total", "Fuzz oracle violations found");

  const std::vector<OracleId> oracles =
      opts.oracles.empty() ? allOracles() : opts.oracles;

  FuzzReport report;
  report.seed = opts.seed;
  report.runs = opts.runs;
  report.oracles = oracles;
  for (const OracleId id : oracles) {
    report.checks[toString(id)] = 0;
    report.violations[toString(id)] = 0;
  }

  if (opts.journal) {
    std::string names;
    for (const OracleId id : oracles) {
      if (!names.empty()) names += ",";
      names += toString(id);
    }
    opts.journal->event("fuzz_start", obs::JsonObject{}
                                          .u("seed", opts.seed)
                                          .u("runs", opts.runs)
                                          .s("oracles", names));
  }

  const auto start = std::chrono::steady_clock::now();
  const auto expired = [&] {
    if (opts.timeBudgetSec == 0) return false;
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return elapsed >= std::chrono::seconds(opts.timeBudgetSec);
  };

  std::vector<ScenarioOutcome> outcomes(opts.runs);
  const auto runOne = [&](std::size_t i) {
    if (expired()) return;  // truncation: this scenario never starts
    outcomes[i] = runScenario(opts.seed + i, oracles, opts.oracle,
                              opts.shrink);
  };

  if (opts.jobs == 1 || opts.runs <= 1) {
    for (std::size_t i = 0; i < opts.runs; ++i) runOne(i);
  } else {
    engine::ThreadPool pool(opts.jobs);
    for (std::size_t i = 0; i < opts.runs; ++i) {
      pool.submit([&, i] {
        try {
          runOne(i);
        } catch (...) {
          // ThreadPool tasks must not throw; a scenario that somehow
          // escapes its own isolation is dropped (outcomes[i] stays
          // unexecuted) rather than killing the campaign.
        }
      });
    }
    pool.wait();
  }

  // Index-ordered aggregation: identical reports whatever the interleaving.
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ScenarioOutcome& o = outcomes[i];
    if (!o.executed) continue;
    ++report.executed;
    for (const OracleId id : oracles) ++report.checks[toString(id)];
    for (const FuzzFinding& f : o.findings) {
      ++report.violations[toString(f.oracle)];
      if (f.crashed) ++report.crashes;
      report.findings.push_back(f);
    }
  }
  report.budgetExhausted = report.executed < report.runs;

  scenariosTotal.add(report.executed);
  for (const auto& kv : report.checks) checksTotal.add(kv.second);
  violationsTotal.add(report.findings.size());

  if (!opts.outDir.empty() && !report.findings.empty()) {
    std::filesystem::create_directories(opts.outDir);
    for (FuzzFinding& f : report.findings) {
      const std::filesystem::path p =
          std::filesystem::path(opts.outDir) / reproFileName(f);
      std::ofstream out(p);
      out << f.reproducer;
      f.path = p.string();
    }
  }

  if (opts.journal) {
    for (const FuzzFinding& f : report.findings) {
      opts.journal->event("fuzz_finding",
                          obs::JsonObject{}
                              .u("scenario_seed", f.scenarioSeed)
                              .s("oracle", toString(f.oracle))
                              .b("crashed", f.crashed)
                              .u("shrunk_states", f.shrunkStates)
                              .s("detail", f.detail));
    }
    opts.journal->event("fuzz_summary",
                        obs::JsonObject{}
                            .u("seed", report.seed)
                            .u("runs", report.runs)
                            .u("executed", report.executed)
                            .u("violations", report.findings.size())
                            .u("crashes", report.crashes)
                            .b("budget_exhausted", report.budgetExhausted));
  }
  return report;
}

std::string renderFuzzSummary(const FuzzReport& r) {
  std::ostringstream out;
  out << "fuzz campaign: seed=" << r.seed << " runs=" << r.runs
      << " executed=" << r.executed << "\n";
  for (const OracleId id : r.oracles) {
    const std::string name = toString(id);
    out << "  " << name << ": checks=" << r.checks.at(name)
        << " violations=" << r.violations.at(name) << "  ("
        << describeOracle(id) << ")\n";
  }
  for (const FuzzFinding& f : r.findings) {
    out << "FINDING " << toString(f.oracle) << " seed=" << f.scenarioSeed
        << (f.crashed ? " [crash]" : "")
        << " shrunk-states=" << f.shrunkStates;
    if (!f.path.empty()) out << " repro=" << f.path;
    out << "\n    " << f.detail << "\n";
  }
  if (r.budgetExhausted) {
    out << "time budget exhausted after " << r.executed << "/" << r.runs
        << " scenarios\n";
  }
  if (r.clean()) {
    out << "clean: no oracle violations\n";
  } else {
    out << "violations=" << r.findings.size() << " crashes=" << r.crashes
        << "\n";
  }
  return out.str();
}

}  // namespace mui::fuzz
