// Out-of-process legacy adapters (testing/subprocess.hpp): the JSONL
// protocol against real spawned binaries, differential conformance between
// in-process and out-of-process incarnations of the same hidden component,
// the fault-injection containment matrix (crash / hang / garbage / early
// exit), the `legacy ... external` loader surface and its located
// diagnostics, and the engine/serve plumbing of the distinct
// adapter-failure verdict. The adapter binaries are built by tools/
// (adapter_automaton, adapter_bci) and found via MUI_ADAPTER_PATH, which
// this suite points at MUI_ADAPTER_DIR.

#include <gtest/gtest.h>

#include <signal.h>
#include <stdlib.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "automata/rename.hpp"
#include "engine/engine.hpp"
#include "muml/external.hpp"
#include "muml/integration.hpp"
#include "muml/loader.hpp"
#include "muml/writer.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "synthesis/verifier.hpp"
#include "testing/legacy.hpp"
#include "testing/subprocess.hpp"
#include "util/parse.hpp"

namespace {

using namespace mui;
using mui::testing::AdapterFailure;

const std::string kBciModel = std::string(MUI_MODELS_DIR) + "/bci.muml";
const std::string kFixture =
    std::string(MUI_FIXTURES_DIR) + "/hang_external.muml";

// The adapter binaries live in the build's tools directory; every binary
// resolution in this suite goes through the MUI_ADAPTER_PATH fallback.
const bool kEnvReady = [] {
  ::setenv("MUI_ADAPTER_PATH", MUI_ADAPTER_DIR, 1);
  return true;
}();

muml::Model loadBci() { return muml::loadModelFile(kBciModel); }
muml::Model loadFixture() { return muml::loadModelFile(kFixture); }

mui::testing::SubprocessConfig cfgFor(const muml::Model& model,
                                 const std::string& name) {
  return mui::testing::configFromExternal(model, model.externals.at(name));
}

automata::SignalSet sset(const muml::Model& model,
                         std::initializer_list<const char*> names) {
  automata::SignalSet out;
  for (const char* n : names) {
    const auto id = model.signals->lookup(n);
    EXPECT_TRUE(id.has_value()) << n;
    if (id) out.set(*id);
  }
  return out;
}

struct RunStats {
  synthesis::Verdict verdict;
  std::size_t iterations;
  std::uint64_t testPeriods;
  std::size_t learnedFacts;
  std::string explanation;
};

RunStats runScenario(const muml::Model& model, const std::string& patternName,
                     const std::string& roleName,
                     mui::testing::LegacyComponent& legacy) {
  const auto& pattern = model.patterns.at(patternName);
  std::size_t roleIdx = pattern.roles.size();
  for (std::size_t i = 0; i < pattern.roles.size(); ++i) {
    if (pattern.roles[i].name == roleName) roleIdx = i;
  }
  EXPECT_LT(roleIdx, pattern.roles.size()) << "no role " << roleName;
  const auto scenario = muml::makeIntegrationScenario(
      pattern, roleIdx, model.signals, model.props);
  synthesis::IntegrationConfig cfg;
  cfg.property = scenario.property;
  cfg.runId = "adapter-test";
  const auto res =
      synthesis::runIntegration(scenario.context, legacy, std::move(cfg));
  return {res.verdict, res.iterations, res.totalTestPeriods,
          res.totalLearnedFacts, res.explanation};
}

std::filesystem::path testDir(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "mui_adapter_tests" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

engine::Job externalJob(std::string name, std::string modelPath,
                        std::string pattern, std::string role,
                        std::string hidden) {
  engine::Job job;
  job.name = std::move(name);
  job.modelPath = std::move(modelPath);
  job.pattern = std::move(pattern);
  job.legacyRole = std::move(role);
  job.hidden = std::move(hidden);
  return job;
}

// ------------------------------------------------------------------ loader

TEST(ExternalLoader, ParsesTheLegacyExternalClause) {
  const muml::Model m = muml::loadModel(R"mm(
legacy fw external "adapter_bci" {
  input hello cmd;
  output ack done;
  arg "--flag"; arg "%model%";
  deadline-ms 250;
  max-respawns 7;
}
)mm",
                                        "inline.muml");
  const auto& ext = m.externals.at("fw");
  EXPECT_EQ(ext.path, "adapter_bci");
  ASSERT_EQ(ext.args.size(), 2u);
  EXPECT_EQ(ext.args[0], "--flag");
  EXPECT_EQ(ext.args[1], "%model%");
  EXPECT_EQ(ext.stepDeadlineMs, 250u);
  EXPECT_EQ(ext.maxRespawns, 7u);
  EXPECT_TRUE(ext.inputs.test(*m.signals->lookup("hello")));
  EXPECT_TRUE(ext.inputs.test(*m.signals->lookup("cmd")));
  EXPECT_TRUE(ext.outputs.test(*m.signals->lookup("ack")));
  EXPECT_TRUE(ext.outputs.test(*m.signals->lookup("done")));
  // The clause's source location is recorded for located diagnostics.
  EXPECT_EQ(m.source.externals.at("fw").line, 2u);
}

TEST(ExternalLoader, RejectsDuplicatesClashesAndBadBodies) {
  // Duplicate external name.
  EXPECT_THROW(
      muml::loadModel("legacy a external \"x\" { input i; }"
                      "legacy a external \"y\" { input i; }"),
      util::SemanticError);
  // External vs automaton name clashes, both declaration orders.
  EXPECT_THROW(
      muml::loadModel("automaton a { initial s; }"
                      "legacy a external \"x\" { input i; }"),
      util::SemanticError);
  EXPECT_THROW(
      muml::loadModel("legacy a external \"x\" { input i; }"
                      "automaton a { initial s; }"),
      util::SemanticError);
  // Empty binary path and zero deadline are semantic errors.
  EXPECT_THROW(muml::loadModel("legacy a external \"\" { input i; }"),
               util::SemanticError);
  EXPECT_THROW(
      muml::loadModel("legacy a external \"x\" { deadline-ms 0; }"),
      util::SemanticError);
  // Unknown body keyword is a parse error.
  EXPECT_THROW(muml::loadModel("legacy a external \"x\" { frobnicate; }"),
               util::ParseError);
}

TEST(ExternalLoader, WriterRoundTripsExternals) {
  const muml::Model m = loadBci();
  const muml::Model re = muml::loadModel(muml::writeModel(m), "rt.muml");
  ASSERT_EQ(re.externals.size(), m.externals.size());
  const auto& a = m.externals.at("bciSim");
  const auto& b = re.externals.at("bciSim");
  EXPECT_EQ(b.path, a.path);
  EXPECT_EQ(b.args, a.args);
  EXPECT_EQ(b.stepDeadlineMs, a.stepDeadlineMs);
  EXPECT_EQ(b.maxRespawns, a.maxRespawns);
  EXPECT_TRUE(b.inputs.test(*re.signals->lookup("hello")));
  EXPECT_TRUE(b.outputs.test(*re.signals->lookup("done")));
  // The default respawn budget round-trips as the default (not rendered).
  EXPECT_EQ(re.externals.at("bciFirmware").maxRespawns, 2u);
}

// -------------------------------------------------------------- resolution

TEST(ExternalResolution, MissingBinaryDiagnosticIsLocatedAndListsPaths) {
  const muml::Model m = loadFixture();
  try {
    muml::resolveExternalBinary(m.externals.at("deviceMissing"), m.source);
    FAIL() << "expected SemanticError";
  } catch (const util::SemanticError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("hang_external.muml:"), std::string::npos) << what;
    EXPECT_NE(what.find("not found"), std::string::npos) << what;
    EXPECT_NE(what.find("no_such_adapter_binary"), std::string::npos) << what;
    EXPECT_NE(what.find("MUI_ADAPTER_PATH"), std::string::npos) << what;
    EXPECT_GT(e.line(), 0u);
    EXPECT_GT(e.col(), 0u);
  }
}

TEST(ExternalResolution, ExistingButNotExecutableIsItsOwnDiagnostic) {
  const auto dir = testDir("notexec");
  std::ofstream(dir / "shim") << "not a program\n";
  const muml::Model m = muml::loadModel(
      "legacy dev external \"shim\" { input i; output o; }",
      (dir / "m.muml").string());
  try {
    muml::resolveExternalBinary(m.externals.at("dev"), m.source);
    FAIL() << "expected SemanticError";
  } catch (const util::SemanticError& e) {
    EXPECT_NE(std::string(e.what()).find("not an executable"),
              std::string::npos)
        << e.what();
  }
}

TEST(ExternalResolution, RelativePathsResolveAgainstTheModelDirectory) {
  const auto dir = testDir("reldir");
  const auto shim = dir / "shim.sh";
  std::ofstream(shim) << "#!/bin/sh\nexit 0\n";
  std::filesystem::permissions(shim,
                               std::filesystem::perms::owner_all |
                                   std::filesystem::perms::group_read |
                                   std::filesystem::perms::others_read);
  const muml::Model m = muml::loadModel(
      "legacy dev external \"shim.sh\" { input i; output o; }",
      (dir / "m.muml").string());
  EXPECT_EQ(muml::resolveExternalBinary(m.externals.at("dev"), m.source),
            shim.string());
}

TEST(ExternalResolution, AdapterPathEnvironmentIsTheFallback) {
  const muml::Model m = loadBci();
  const std::string resolved =
      muml::resolveExternalBinary(m.externals.at("bciFirmware"), m.source);
  EXPECT_EQ(resolved, std::string(MUI_ADAPTER_DIR) + "/adapter_bci");
}

TEST(ExternalResolution, InterfaceMismatchIsCaughtBeforeSpawning) {
  const muml::Model m = loadFixture();
  const auto& pattern = m.patterns.at("Watchdog");
  const auto& role = pattern.roles[1];
  ASSERT_EQ(role.name, "device");
  try {
    muml::checkExternalInterface(m.externals.at("deviceWrongIface"), role,
                                 m.source, m.signals);
    FAIL() << "expected SemanticError";
  } catch (const util::SemanticError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("extraSignal"), std::string::npos) << what;
    EXPECT_NE(what.find("requires"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------- protocol

TEST(SubprocessLegacy, SpeaksTheProtocolAgainstTheCShim) {
  const muml::Model m = loadBci();
  mui::testing::SubprocessLegacy fw(cfgFor(m, "bciFirmware"));
  EXPECT_EQ(fw.name(), "bciFirmware");
  EXPECT_EQ(fw.pid(), -1);  // the process is spawned lazily
  EXPECT_EQ(fw.currentStateName(), "offline");
  EXPECT_GT(fw.pid(), 0);
  EXPECT_TRUE(fw.inputs() == sset(m, {"hello", "cmd"}));
  EXPECT_TRUE(fw.outputs() == sset(m, {"ack", "done"}));

  auto out = fw.step(sset(m, {"hello"}));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
  EXPECT_EQ(fw.currentStateName(), "acking");
  out = fw.step({});
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(*out == sset(m, {"ack"}));
  EXPECT_EQ(fw.currentStateName(), "ready");

  // A refusal leaves the state unchanged (a second hello once linked).
  EXPECT_FALSE(fw.step(sset(m, {"hello"})).has_value());
  EXPECT_EQ(fw.currentStateName(), "ready");

  fw.reset();
  EXPECT_EQ(fw.currentStateName(), "offline");
  EXPECT_EQ(fw.respawns(), 0u);
}

TEST(SubprocessLegacy, CloneReplaysIntoTheCurrentState) {
  const muml::Model m = loadBci();
  mui::testing::SubprocessLegacy fw(cfgFor(m, "bciFirmware"));
  ASSERT_TRUE(fw.step(sset(m, {"hello"})).has_value());
  ASSERT_TRUE(fw.step({}).has_value());  // -> ready
  const auto copy = fw.clone();
  EXPECT_EQ(copy->currentStateName(), "ready");
  // Advancing the clone must not disturb the original (separate process).
  ASSERT_TRUE(copy->step(sset(m, {"cmd"})).has_value());
  EXPECT_EQ(copy->currentStateName(), "busy");
  EXPECT_EQ(fw.currentStateName(), "ready");
}

TEST(SubprocessLegacy, RecoversFromAKilledProcessByReplay) {
  const muml::Model m = loadBci();
  mui::testing::SubprocessLegacy fw(cfgFor(m, "bciFirmware"));
  ASSERT_TRUE(fw.step(sset(m, {"hello"})).has_value());
  ASSERT_TRUE(fw.step({}).has_value());  // -> ready, two logged steps
  ASSERT_GT(fw.pid(), 0);
  ASSERT_EQ(::kill(fw.pid(), SIGKILL), 0);
  // The next exchange meets the dead process, respawns, and replays the
  // accepted-step log — reconstructing 'ready' before retrying the step.
  const auto out = fw.step(sset(m, {"cmd"}));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(fw.respawns(), 1u);
  EXPECT_EQ(fw.currentStateName(), "busy");
}

// --------------------------------------------------------- fault injection

TEST(AdapterFaults, HangHitsTheDeadlineWithinTheContainmentBudget) {
  const muml::Model m = loadFixture();
  mui::testing::SubprocessLegacy dev(cfgFor(m, "deviceHang"));
  ASSERT_TRUE(dev.step(sset(m, {"ping"})).has_value());  // step 1 answers
  const auto t0 = std::chrono::steady_clock::now();
  try {
    dev.step({});  // step 2 hangs; the 500 ms deadline must fire
    FAIL() << "expected AdapterFailure";
  } catch (const AdapterFailure& e) {
    EXPECT_EQ(e.kind(), AdapterFailure::Kind::Timeout);
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
  const auto elapsedMs = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  // One declared deadline (500 ms) plus generous CI headroom — never a
  // harness hang. Timeouts are not retried, so one deadline is the budget.
  EXPECT_LT(elapsedMs, 10000.0);
  EXPECT_EQ(dev.respawns(), 0u);
}

TEST(AdapterFaults, CrashExhaustsTheRespawnBudget) {
  const muml::Model m = loadFixture();
  mui::testing::SubprocessLegacy dev(cfgFor(m, "deviceCrash"));  // crash-at=2
  ASSERT_TRUE(dev.step(sset(m, {"ping"})).has_value());
  try {
    dev.step({});  // crashes at every process's 2nd step: budget exhausts
    FAIL() << "expected AdapterFailure";
  } catch (const AdapterFailure& e) {
    EXPECT_EQ(e.kind(), AdapterFailure::Kind::Crash);
    EXPECT_NE(std::string(e.what()).find("respawn budget"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(dev.respawns(), 2u);  // the fixture declares max-respawns 2
}

TEST(AdapterFaults, GarbageIsAProtocolErrorNotAParseAbort) {
  const muml::Model m = loadFixture();
  mui::testing::SubprocessLegacy dev(cfgFor(m, "deviceGarbage"));
  ASSERT_TRUE(dev.step(sset(m, {"ping"})).has_value());
  try {
    dev.step({});
    FAIL() << "expected AdapterFailure";
  } catch (const AdapterFailure& e) {
    EXPECT_EQ(e.kind(), AdapterFailure::Kind::Protocol);
    EXPECT_NE(std::string(e.what()).find("garbage"), std::string::npos);
  }
  EXPECT_EQ(dev.respawns(), 0u);  // protocol errors are never retried
}

TEST(AdapterFaults, ExitAfterHandshakeIsContainedAsACrash) {
  const muml::Model m = loadFixture();
  mui::testing::SubprocessLegacy dev(cfgFor(m, "deviceExitEarly"));
  try {
    dev.step(sset(m, {"ping"}));
    FAIL() << "expected AdapterFailure";
  } catch (const AdapterFailure& e) {
    EXPECT_EQ(e.kind(), AdapterFailure::Kind::Crash);
  }
  EXPECT_EQ(dev.respawns(), 1u);  // the fixture declares max-respawns 1
}

TEST(AdapterFaults, MissingBinarySurfacesAsSpawnFailure) {
  const muml::Model m = loadBci();
  mui::testing::SubprocessConfig cfg = cfgFor(m, "bciFirmware");
  cfg.binary = "/no/such/adapter";
  mui::testing::SubprocessLegacy fw(std::move(cfg));
  try {
    fw.step({});
    FAIL() << "expected AdapterFailure";
  } catch (const AdapterFailure& e) {
    // The exec failure surfaces as EOF before the hello — a spawn failure,
    // which never consumes respawn budget.
    EXPECT_EQ(e.kind(), AdapterFailure::Kind::Spawn);
  }
  EXPECT_EQ(fw.respawns(), 0u);
}

TEST(AdapterFaults, KindNamesAreStable) {
  EXPECT_STREQ(mui::testing::adapterFailureKindName(AdapterFailure::Kind::Spawn),
               "spawn");
  EXPECT_STREQ(mui::testing::adapterFailureKindName(AdapterFailure::Kind::Crash),
               "crash");
  EXPECT_STREQ(
      mui::testing::adapterFailureKindName(AdapterFailure::Kind::Timeout),
      "timeout");
  EXPECT_STREQ(
      mui::testing::adapterFailureKindName(AdapterFailure::Kind::Protocol),
      "protocol");
  EXPECT_STREQ(mui::testing::adapterFailureKindName(AdapterFailure::Kind::Replay),
               "replay");
}

// ---------------------------------------------------------- differential

TEST(DifferentialConformance, WatchdogAdapterMatchesInProcessLockstep) {
  const muml::Model m = loadFixture();
  mui::testing::SubprocessLegacy ext(cfgFor(m, "deviceOk"));
  mui::testing::AutomatonLegacy ref(automata::withInstanceName(
      m.automata.at("deviceImpl"), "device"));
  std::mt19937_64 rng(0xB1C1u);
  const automata::SignalSet ping = sset(m, {"ping"});
  std::size_t accepted = 0;
  std::size_t refused = 0;
  for (int i = 0; i < 500; ++i) {
    if (rng() % 23 == 0) {
      ext.reset();
      ref.reset();
    }
    const automata::SignalSet in =
        (rng() % 2) ? ping : automata::SignalSet{};
    const auto a = ext.step(in);
    const auto b = ref.step(in);
    ASSERT_EQ(a.has_value(), b.has_value()) << "step " << i;
    if (a.has_value()) {
      ASSERT_TRUE(*a == *b) << "step " << i;
      ++accepted;
    } else {
      ++refused;
    }
    ASSERT_EQ(ext.currentStateName(), ref.currentStateName()) << "step " << i;
  }
  // The random walk must exercise both acceptance and refusal.
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(refused, 0u);
  EXPECT_EQ(ext.respawns(), 0u);
}

TEST(DifferentialConformance, BciFirmwareMatchesTheMirrorLockstep) {
  const muml::Model m = loadBci();
  mui::testing::SubprocessLegacy ext(cfgFor(m, "bciFirmware"));
  mui::testing::AutomatonLegacy ref(m.automata.at("firmwareRef"));
  std::mt19937_64 rng(0xF1F1u);
  const automata::SignalSet hello = sset(m, {"hello"});
  const automata::SignalSet cmd = sset(m, {"cmd"});
  std::size_t accepted = 0;
  std::size_t refused = 0;
  for (int i = 0; i < 600; ++i) {
    if (rng() % 31 == 0) {
      ext.reset();
      ref.reset();
    }
    automata::SignalSet in;
    if (rng() % 2) in |= hello;
    if (rng() % 2) in |= cmd;
    const auto a = ext.step(in);
    const auto b = ref.step(in);
    ASSERT_EQ(a.has_value(), b.has_value()) << "step " << i;
    if (a.has_value()) {
      ASSERT_TRUE(*a == *b) << "step " << i;
      ++accepted;
    } else {
      ++refused;
    }
    ASSERT_EQ(ext.currentStateName(), ref.currentStateName()) << "step " << i;
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(refused, 0u);
}

TEST(DifferentialConformance, IntegrationVerdictsAndIterationsMatch) {
  // Watchdog: deviceImpl in-process vs the same automaton out-of-process.
  {
    const muml::Model m = loadFixture();
    mui::testing::AutomatonLegacy ref(automata::withInstanceName(
        m.automata.at("deviceImpl"), "device"));
    mui::testing::SubprocessLegacy ext(cfgFor(m, "deviceOk"));
    const RunStats a = runScenario(m, "Watchdog", "device", ref);
    const RunStats b = runScenario(m, "Watchdog", "device", ext);
    EXPECT_EQ(a.verdict, b.verdict);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.testPeriods, b.testPeriods);
    EXPECT_EQ(a.learnedFacts, b.learnedFacts);
    EXPECT_EQ(a.verdict, synthesis::Verdict::ProvenCorrect);
  }
  // Bci: the mirror automaton vs the hand-written C firmware shim.
  {
    const muml::Model m = loadBci();
    mui::testing::AutomatonLegacy ref(automata::withInstanceName(
        m.automata.at("firmwareRef"), "firmware"));
    mui::testing::SubprocessLegacy ext(cfgFor(m, "bciFirmware"));
    const RunStats a = runScenario(m, "BciSession", "firmware", ref);
    const RunStats b = runScenario(m, "BciSession", "firmware", ext);
    EXPECT_EQ(a.verdict, b.verdict);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.testPeriods, b.testPeriods);
    EXPECT_EQ(a.learnedFacts, b.learnedFacts);
    EXPECT_EQ(a.verdict, synthesis::Verdict::ProvenCorrect);
  }
}

// ---------------------------------------------------------------- golden

TEST(GoldenAdapter, BciFirmwareProvenInFiveIterations) {
  const muml::Model m = loadBci();
  mui::testing::SubprocessLegacy fw(cfgFor(m, "bciFirmware"));
  const RunStats g = runScenario(m, "BciSession", "firmware", fw);
  EXPECT_EQ(g.verdict, synthesis::Verdict::ProvenCorrect);
  EXPECT_EQ(g.iterations, 5u);
  EXPECT_EQ(g.testPeriods, 40u);
  EXPECT_EQ(g.learnedFacts, 11u);
}

// ------------------------------------------------------------- containment

TEST(VerifierContainment, HangYieldsTheDistinctAdapterFailureVerdict) {
  const muml::Model m = loadFixture();
  mui::testing::SubprocessLegacy dev(cfgFor(m, "deviceHang"));
  const auto t0 = std::chrono::steady_clock::now();
  const RunStats g = runScenario(m, "Watchdog", "device", dev);
  const auto elapsedMs = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  EXPECT_EQ(g.verdict, synthesis::Verdict::AdapterFailure);
  EXPECT_NE(g.explanation.find("deadline"), std::string::npos)
      << g.explanation;
  EXPECT_LT(elapsedMs, 20000.0);
}

TEST(VerifierContainment, CrashYieldsAdapterFailureAndCountsRespawns) {
  const auto respawnsBefore =
      obs::Registry::global()
          .counter("mui_adapter_respawns_total",
                   "Adapter crash recoveries (respawn + accepted-step-log "
                   "replay)")
          .value();
  const muml::Model m = loadFixture();
  mui::testing::SubprocessLegacy dev(cfgFor(m, "deviceCrash"));
  const RunStats g = runScenario(m, "Watchdog", "device", dev);
  EXPECT_EQ(g.verdict, synthesis::Verdict::AdapterFailure);
  EXPECT_NE(g.explanation.find("respawn budget"), std::string::npos)
      << g.explanation;
  const auto respawnsAfter =
      obs::Registry::global()
          .counter("mui_adapter_respawns_total",
                   "Adapter crash recoveries (respawn + accepted-step-log "
                   "replay)")
          .value();
  EXPECT_GE(respawnsAfter, respawnsBefore + 2);
}

// ------------------------------------------------------------- engine/serve

TEST(EngineAdapter, StatusNameRoundTrips) {
  EXPECT_STREQ(engine::jobStatusName(engine::JobStatus::AdapterFailure),
               "adapter-failure");
  const auto parsed = engine::jobStatusFromName("adapter-failure");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, engine::JobStatus::AdapterFailure);
}

TEST(EngineAdapter, BatchRunsExternalJobsAndNeverCachesThem) {
  obs::Journal journal;
  engine::BatchOptions options;
  options.threads = 2;
  options.journal = &journal;
  const std::vector<engine::Job> jobs = {
      externalJob("bci-fw", kBciModel, "BciSession", "firmware",
                  "bciFirmware"),
      externalJob("bci-fw-again", kBciModel, "BciSession", "firmware",
                  "bciFirmware"),
      externalJob("bci-ref", kBciModel, "BciSession", "firmware",
                  "firmwareRef"),
  };
  const engine::BatchReport report = engine::runBatch(jobs, options);
  ASSERT_EQ(report.results.size(), 3u);
  for (const auto& r : report.results) {
    EXPECT_EQ(r.status, engine::JobStatus::Proven) << r.job.name << ": "
                                                   << r.explanation;
  }
  // External jobs are never cached: the binary's content is not part of
  // the job key, so even the identical duplicate recomputes.
  EXPECT_FALSE(report.results[0].cacheHit);
  EXPECT_FALSE(report.results[1].cacheHit);
  // The adapter lifecycle is journaled and ULID-correlated with its job.
  const std::string ulid = report.results[0].job.ulid;
  ASSERT_FALSE(ulid.empty());
  bool sawCorrelatedSpawn = false;
  std::istringstream lines(journal.text());
  std::string line;
  while (std::getline(lines, line)) {
    const auto obj = obs::parseFlatJson(line);
    if (!obj) continue;
    const auto type = obj->find("type");
    if (type == obj->end() || type->second.text != "adapter") continue;
    const auto event = obj->find("event");
    const auto lineUlid = obj->find("ulid");
    if (event != obj->end() && event->second.text == "spawn" &&
        lineUlid != obj->end() && lineUlid->second.text == ulid) {
      sawCorrelatedSpawn = true;
    }
  }
  EXPECT_TRUE(sawCorrelatedSpawn);
}

TEST(EngineAdapter, HangSurfacesAsAdapterFailureStatus) {
  engine::BatchOptions options;
  const std::vector<engine::Job> jobs = {
      externalJob("hang", kFixture, "Watchdog", "device", "deviceHang")};
  const engine::BatchReport report = engine::runBatch(jobs, options);
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_EQ(report.results[0].status, engine::JobStatus::AdapterFailure);
  EXPECT_NE(report.results[0].explanation.find("deadline"),
            std::string::npos);
  EXPECT_EQ(report.count(engine::JobStatus::AdapterFailure), 1u);
}

TEST(EngineAdapter, MissingAdapterBinaryIsAdapterFailureNotEngineError) {
  // Spawn-time failures (exec of a nonexistent binary) carry the same
  // distinct status as in-loop containment aborts.
  const auto dir = testDir("missing");
  std::ofstream(dir / "m.muml")
      << "rtsc monitorRole { output ping; input pong; clock c;\n"
         "  location idle invariant c <= 3; location waiting invariant c <= "
         "2;\n"
         "  location escalated; initial idle;\n"
         "  idle -> waiting : emit ping reset c;\n"
         "  waiting -> idle : trigger pong reset c;\n"
         "  waiting -> escalated : guard c >= 2;\n"
         "  escalated -> escalated : ; }\n"
         "rtsc deviceRole { input ping; output pong; clock d;\n"
         "  location ready; location serving invariant d <= 0;\n"
         "  initial ready;\n"
         "  ready -> serving : trigger ping reset d;\n"
         "  serving -> ready : emit pong; }\n"
         "pattern Watchdog { role monitor uses monitorRole;\n"
         "  role device uses deviceRole; connector direct;\n"
         "  constraint \"AG !monitor.escalated\"; }\n"
         "legacy dev external \"./vanished\" { input ping; output pong; }\n";
  // The binary exists at resolution time but exec fails at spawn time: a
  // script with a broken interpreter line.
  std::ofstream(dir / "vanished") << "#!/no/such/interpreter\n";
  std::filesystem::permissions(dir / "vanished",
                               std::filesystem::perms::owner_all);
  const std::vector<engine::Job> jobs = {externalJob(
      "spawnfail", (dir / "m.muml").string(), "Watchdog", "device", "dev")};
  const engine::BatchReport report = engine::runBatch(jobs, {});
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_EQ(report.results[0].status, engine::JobStatus::AdapterFailure)
      << report.results[0].explanation;
}

TEST(ServeAdapter, DaemonAcceptsJobsAgainstExternalAdapters) {
  serve::ServeOptions options;
  options.host = "127.0.0.1";
  options.port = 0;
  options.threads = 2;
  options.version = "test";
  serve::Server server(options);
  server.start();

  serve::SubmitOptions client;
  client.port = server.port();
  client.clientName = "gtest-adapter";
  const std::vector<engine::Job> jobs = {
      externalJob("bci-fw", kBciModel, "BciSession", "firmware",
                  "bciFirmware"),
      externalJob("hang", kFixture, "Watchdog", "device", "deviceHang"),
  };
  const serve::SubmitOutcome outcome = serve::submitJobs(jobs, client);
  ASSERT_EQ(outcome.report.results.size(), 2u);
  EXPECT_EQ(outcome.report.results[0].status, engine::JobStatus::Proven)
      << outcome.report.results[0].explanation;
  EXPECT_EQ(outcome.report.results[1].status,
            engine::JobStatus::AdapterFailure)
      << outcome.report.results[1].explanation;

  server.requestDrain();
  server.wait();
}

}  // namespace
