// Tests for bisimulation minimization: quotients must preserve labeling,
// refinement (both directions), CTL verdicts, and composition behavior —
// which lets the quotient stand in for composed contexts and closures.

#include <gtest/gtest.h>

#include "automata/chaos.hpp"
#include "automata/compose.hpp"
#include "automata/minimize.hpp"
#include "automata/random.hpp"
#include "automata/refine.hpp"
#include "ctl/checker.hpp"
#include "ctl/parser.hpp"
#include "helpers.hpp"

namespace mui::automata {
namespace {

using test::Tables;
using test::ia;

TEST(Minimize, CollapsesDuplicatedStructure) {
  // Two bisimilar branches of the same loop: a --x--> b1/b2 --x--> a, with
  // identical labels on b1 and b2.
  Tables t;
  Automaton a(t.signals, t.props, "m");
  a.addOutput("x");
  const auto s0 = a.addState("a");
  const auto b1 = a.addState("b1");
  const auto b2 = a.addState("b2");
  a.addLabel(s0, "start");
  a.addLabel(b1, "mid");
  a.addLabel(b2, "mid");
  a.markInitial(s0);
  const Interaction doX = ia(*t.signals, {}, {"x"});
  a.addTransition(s0, doX, b1);
  a.addTransition(s0, doX, b2);
  a.addTransition(b1, doX, s0);
  a.addTransition(b2, doX, s0);
  const auto q = minimizeBisimulation(a);
  EXPECT_EQ(q.stateCount(), 2u);
  EXPECT_EQ(q.transitionCount(), 2u);
  // Distinct labels prevent collapsing.
  a.addLabel(b2, "special");
  const auto q2 = minimizeBisimulation(a);
  EXPECT_EQ(q2.stateCount(), 3u);
}

TEST(Minimize, RefusalsBlockMerging) {
  // Same labels, same outgoing label x, but one state additionally refuses
  // nothing vs refuses y (has no y-transition while the other does).
  Tables t;
  Automaton a(t.signals, t.props, "m");
  a.addOutput("x");
  a.addOutput("y");
  const auto s0 = a.addState("s0");
  const auto u = a.addState("u");
  const auto v = a.addState("v");
  a.markInitial(s0);
  const Interaction doX = ia(*t.signals, {}, {"x"});
  const Interaction doY = ia(*t.signals, {}, {"y"});
  a.addTransition(s0, doX, u);
  a.addTransition(s0, doY, v);
  a.addTransition(u, doX, u);
  a.addTransition(v, doX, v);
  a.addTransition(v, doY, v);  // v affords y, u refuses it
  const auto q = minimizeBisimulation(a);
  EXPECT_EQ(q.stateCount(), 3u);
}

class MinimizePreserves : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinimizePreserves, RefinementAndCtlVerdicts) {
  Tables t;
  RandomSpec spec;
  spec.states = 9;
  spec.inputs = 2;
  spec.outputs = 2;
  spec.deterministic = false;
  spec.labelStates = false;  // unique name labels would prevent merging
  spec.seed = GetParam();
  spec.name = "m";
  Automaton a = randomAutomaton(spec, t.signals, t.props);
  // Sprinkle a coarse label so classes can actually merge.
  for (StateId s = 0; s < a.stateCount(); ++s) {
    if (s % 2 == 0) a.addLabel(s, "even");
  }
  const Automaton q = minimizeBisimulation(a);
  EXPECT_LE(q.stateCount(), a.stateCount());

  const auto alpha = makeAlphabet(a.inputs(), a.outputs(),
                                  InteractionMode::AtMostOneSignal);
  // Mutual refinement is too strong for the name-labeled automaton (every
  // state has a unique auto-label, so nothing merges); compare with labels
  // restricted to the coarse proposition.
  RefinementOptions opts;
  opts.relevantProps = std::vector<std::string>{"even"};
  const auto down = checkRefinement(q, a, alpha, opts);
  EXPECT_TRUE(down.holds) << down.reason;
  const auto up = checkRefinement(a, q, alpha, opts);
  EXPECT_TRUE(up.holds) << up.reason;

  // CTL verdicts over the coarse label agree.
  ctl::Checker ca(a), cq(q);
  for (const char* f :
       {"AG even", "EF even", "AF even", "EG !even", "AG !deadlock",
        "AF[1,3] even", "A[!even U even]", "EF deadlock"}) {
    EXPECT_EQ(ca.holds(ctl::parseFormula(f)), cq.holds(ctl::parseFormula(f)))
        << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizePreserves,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Minimize, ClosureOfCompleteModelCollapsesTheCopies) {
  // For a *complete* incomplete automaton (every interaction in T xor T̄),
  // the (s,0) and (s,1) copies are bisimilar (no chaos edges remain) and the
  // chaos states are unreachable: the quotient is the model itself.
  Tables t;
  IncompleteAutomaton m(t.signals, t.props, "legacy");
  m.addOutput("a");
  const auto s0 = m.addState("q0");
  const auto s1 = m.addState("q1");
  m.markInitial(s0);
  const Interaction doA = ia(*t.signals, {}, {"a"});
  const Interaction idle{};
  m.addTransition(s0, doA, s1);
  m.forbid(s0, idle);
  m.addTransition(s1, idle, s1);
  m.forbid(s1, doA);
  const auto alpha = makeAlphabet(m.base().inputs(), m.base().outputs(),
                                  InteractionMode::AtMostOneSignal);
  ASSERT_TRUE(m.complete(alpha));
  const auto closure = chaoticClosure(m, alpha);
  EXPECT_EQ(closure.automaton.stateCount(), 2u * 2u + 2u);
  const auto q = minimizeBisimulation(closure.automaton);
  EXPECT_EQ(q.stateCount(), 2u);  // (q0,i) merge, (q1,i) merge, chaos pruned
}

}  // namespace
}  // namespace mui::automata
