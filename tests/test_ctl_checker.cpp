// Tests for the CCTL model checker: fixpoint operators on hand-built Kripke
// structures, bounded-window semantics over the discrete-time model, weak
// semantics on finite (deadlocking) paths, and algebraic consistency
// (dualities / equivalences) as property tests on random automata.

#include <gtest/gtest.h>

#include "automata/random.hpp"
#include "ctl/checker.hpp"
#include "ctl/parser.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"

namespace mui::ctl {
namespace {

using automata::Automaton;
using automata::InteractionMode;
using automata::RandomSpec;
using test::Tables;

/// s0 -> s1 -> s2 -> s3 (s3 is a deadlock); p holds at s2.
Automaton chain(const Tables& t) {
  Automaton a(t.signals, t.props, "chain");
  a.addOutput("step");
  for (int i = 0; i < 4; ++i) a.addState("s" + std::to_string(i));
  a.markInitial(0);
  const automata::Interaction x = test::ia(*t.signals, {}, {"step"});
  a.addTransition(0, x, 1);
  a.addTransition(1, x, 2);
  a.addTransition(2, x, 3);
  a.addLabel(2, "p");
  return a;
}

/// s0 <-> s1 cycle; p holds at s1.
Automaton cycle(const Tables& t) {
  Automaton a(t.signals, t.props, "cycle");
  a.addOutput("step");
  a.addState("s0");
  a.addState("s1");
  a.markInitial(0);
  const automata::Interaction x = test::ia(*t.signals, {}, {"step"});
  a.addTransition(0, x, 1);
  a.addTransition(1, x, 0);
  a.addLabel(1, "p");
  return a;
}

/// s0 branches to good (p, self-loop) and bad (deadlock, no p).
Automaton branching(const Tables& t) {
  Automaton a(t.signals, t.props, "branch");
  a.addOutput("step");
  a.addState("s0");
  a.addState("good");
  a.addState("bad");
  a.markInitial(0);
  const automata::Interaction x = test::ia(*t.signals, {}, {"step"});
  a.addTransition(0, x, 1);
  a.addTransition(0, x, 2);
  a.addTransition(1, x, 1);
  a.addLabel(1, "p");
  return a;
}

bool holdsOn(const Automaton& a, const char* f) {
  Checker c(a);
  return c.holds(parseFormula(f));
}

TEST(Checker, UnboundedOperatorsOnChain) {
  Tables t;
  const Automaton a = chain(t);
  EXPECT_TRUE(holdsOn(a, "EF p"));
  EXPECT_TRUE(holdsOn(a, "AF p"));
  EXPECT_FALSE(holdsOn(a, "AG p"));
  EXPECT_FALSE(holdsOn(a, "p"));
  EXPECT_TRUE(holdsOn(a, "AX AX p"));
  EXPECT_FALSE(holdsOn(a, "AX p"));
  EXPECT_TRUE(holdsOn(a, "EF deadlock"));
  EXPECT_FALSE(holdsOn(a, "AG !deadlock"));
  // q holds nowhere: AF q fails and (weak) EG !q holds via the dying path.
  EXPECT_FALSE(holdsOn(a, "AF q"));
  EXPECT_TRUE(holdsOn(a, "EG !q"));
  EXPECT_TRUE(holdsOn(a, "A[!p U p]"));
}

TEST(Checker, BoundedWindowsOnChain) {
  Tables t;
  const Automaton a = chain(t);
  EXPECT_TRUE(holdsOn(a, "AF[2,2] p"));
  EXPECT_TRUE(holdsOn(a, "AF[0,2] p"));
  EXPECT_TRUE(holdsOn(a, "AF[2,5] p"));
  EXPECT_FALSE(holdsOn(a, "AF[0,1] p"));
  EXPECT_FALSE(holdsOn(a, "AF[3,9] p"));  // the only p is at position 2
  EXPECT_TRUE(holdsOn(a, "AG[0,1] !p"));
  EXPECT_FALSE(holdsOn(a, "AG[0,2] !p"));
  EXPECT_TRUE(holdsOn(a, "AG[3,3] !p"));
  EXPECT_TRUE(holdsOn(a, "A[!p U[2,2] p]"));
  EXPECT_FALSE(holdsOn(a, "A[!p U[1,1] p]"));
  EXPECT_TRUE(holdsOn(a, "EF[2,2] p"));
  EXPECT_FALSE(holdsOn(a, "EF[3,3] p"));
  // Weak semantics past the deadlock: position 5 does not exist, so a
  // G-window there is vacuous and an F-window unsatisfiable.
  EXPECT_TRUE(holdsOn(a, "AG[5,9] p"));
  EXPECT_FALSE(holdsOn(a, "AF[5,9] p"));
  EXPECT_FALSE(holdsOn(a, "EF[5,9] p"));
}

TEST(Checker, CycleSemantics) {
  Tables t;
  const Automaton a = cycle(t);
  EXPECT_TRUE(holdsOn(a, "AF p"));
  EXPECT_TRUE(holdsOn(a, "AG EF p"));
  EXPECT_FALSE(holdsOn(a, "EG !p"));  // the only path hits p forever
  EXPECT_TRUE(holdsOn(a, "AF[1,1] p"));
  EXPECT_FALSE(holdsOn(a, "AF[2,2] p"));  // position 2 is s0 again
  EXPECT_TRUE(holdsOn(a, "AG (p -> AF[1,2] p)"));
  EXPECT_TRUE(holdsOn(a, "AG !deadlock"));
}

TEST(Checker, BranchingAndDeadlockInteraction) {
  Tables t;
  const Automaton a = branching(t);
  EXPECT_TRUE(holdsOn(a, "EF p"));
  // The branch into `bad` dies without p, so AF p fails.
  EXPECT_FALSE(holdsOn(a, "AF p"));
  EXPECT_TRUE(holdsOn(a, "EG (p || !p)"));
  EXPECT_TRUE(holdsOn(a, "EX p"));
  EXPECT_FALSE(holdsOn(a, "AX p"));
  EXPECT_TRUE(holdsOn(a, "EF deadlock"));
  // AX is vacuous at the deadlock state itself.
  Checker c(a);
  const auto sat = c.evaluate(parseFormula("AX false"));
  EXPECT_TRUE(sat[2]);   // bad (deadlock): vacuously true
  EXPECT_FALSE(sat[0]);  // s0 has successors
}

TEST(Checker, UnknownAtomsReported) {
  Tables t;
  const Automaton a = chain(t);
  Checker c(a);
  EXPECT_FALSE(c.holds(parseFormula("AF typo_prop")));
  ASSERT_EQ(c.unknownAtoms().size(), 1u);
  EXPECT_EQ(c.unknownAtoms()[0], "typo_prop");
}

// ---- Algebraic consistency on random models --------------------------------

class CheckerAlgebra : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// Random automaton with p/q sprinkled over its states.
  Automaton makeModel(const Tables& t, std::uint64_t seed) {
    RandomSpec spec;
    spec.states = 7;
    spec.densityPct = 45;
    spec.deterministic = false;
    spec.noLocalDeadlocks = false;
    spec.seed = seed;
    spec.name = "m";
    Automaton a = automata::randomAutomaton(spec, t.signals, t.props);
    util::Rng rng(seed + 99);
    for (automata::StateId s = 0; s < a.stateCount(); ++s) {
      if (rng.chance(40, 100)) a.addLabel(s, "p");
      if (rng.chance(40, 100)) a.addLabel(s, "q");
    }
    return a;
  }

  static ctl::SatSet eval(const Automaton& a, const char* f) {
    Checker c(a);
    return c.evaluate(parseFormula(f));
  }
};

TEST_P(CheckerAlgebra, Dualities) {
  Tables t;
  const Automaton a = makeModel(t, GetParam());
  const auto negate = [](ctl::SatSet v) {
    v.flip();
    return v;
  };
  EXPECT_EQ(eval(a, "AG p"), negate(eval(a, "EF !p")));
  EXPECT_EQ(eval(a, "EG p"), negate(eval(a, "AF !p")));
  EXPECT_EQ(eval(a, "AG[1,3] p"), negate(eval(a, "EF[1,3] !p")));
  EXPECT_EQ(eval(a, "EG[2,4] p"), negate(eval(a, "AF[2,4] !p")));
  EXPECT_EQ(eval(a, "AX p"), negate(eval(a, "EX !p")));
}

TEST_P(CheckerAlgebra, UntilEquivalences) {
  Tables t;
  const Automaton a = makeModel(t, GetParam());
  EXPECT_EQ(eval(a, "AF p"), eval(a, "A[true U p]"));
  EXPECT_EQ(eval(a, "EF p"), eval(a, "E[true U p]"));
  EXPECT_EQ(eval(a, "AF[1,3] p"), eval(a, "A[true U[1,3] p]"));
  EXPECT_EQ(eval(a, "EF[2,4] p"), eval(a, "E[true U[2,4] p]"));
  // Unbounded == [0,inf].
  EXPECT_EQ(eval(a, "AF p"), eval(a, "AF[0,inf] p"));
  EXPECT_EQ(eval(a, "AG p"), eval(a, "AG[0,inf] p"));
}

TEST_P(CheckerAlgebra, WindowMonotonicity) {
  Tables t;
  const Automaton a = makeModel(t, GetParam());
  const auto implies = [](const ctl::SatSet& x, const ctl::SatSet& y) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i] && !y[i]) return false;
    }
    return true;
  };
  // A wider F-window is easier to satisfy; a wider G-window is harder.
  EXPECT_TRUE(implies(eval(a, "AF[1,2] p"), eval(a, "AF[1,3] p")));
  EXPECT_TRUE(implies(eval(a, "AF[1,3] p"), eval(a, "AF[1,inf] p")));
  EXPECT_TRUE(implies(eval(a, "AG[1,3] p"), eval(a, "AG[1,2] p")));
  EXPECT_TRUE(implies(eval(a, "AG[0,inf] p"), eval(a, "AG[0,4] p")));
  EXPECT_TRUE(implies(eval(a, "EF[1,2] p"), eval(a, "EF[1,3] p")));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerAlgebra,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace mui::ctl
