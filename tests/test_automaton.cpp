// Unit tests for the core automaton model (paper Def. 1/2): construction
// validation, labeling conventions, reachability, determinism, run admission
// including the deadlock-run condition, and interaction alphabets.

#include <gtest/gtest.h>

#include "automata/automaton.hpp"
#include "automata/signals.hpp"
#include "helpers.hpp"

namespace mui::automata {
namespace {

using ARun = Run;
using test::Tables;
using test::ia;

Automaton pingPong(const Tables& t) {
  Automaton a(t.signals, t.props, "ping");
  a.addInput("ack");
  a.addOutput("req");
  const StateId s0 = a.addState("idle");
  const StateId s1 = a.addState("waiting");
  a.markInitial(s0);
  a.addTransition(s0, ia(*t.signals, {}, {"req"}), s1);
  a.addTransition(s1, ia(*t.signals, {"ack"}, {}), s0);
  return a;
}

TEST(Automaton, ConstructionValidation) {
  Tables t;
  Automaton a(t.signals, t.props, "m");
  a.addInput("x");
  const StateId s = a.addState("s");
  EXPECT_THROW(a.addState("s"), std::invalid_argument);
  // A ⊆ I and B ⊆ O are enforced.
  EXPECT_THROW(a.addTransition(s, ia(*t.signals, {"unknown"}, {}), s),
               std::invalid_argument);
  EXPECT_THROW(a.addTransition(s, ia(*t.signals, {}, {"x"}), s),
               std::invalid_argument);  // x is an input, not an output
  EXPECT_THROW(a.markInitial(99), std::out_of_range);
  a.addTransition(s, ia(*t.signals, {"x"}, {}), s);
  a.checkInvariants();
}

TEST(Automaton, DuplicateTransitionsIgnored) {
  Tables t;
  Automaton a = pingPong(t);
  const std::size_t before = a.transitionCount();
  a.addTransition(0, ia(*t.signals, {}, {"req"}), 1);
  EXPECT_EQ(a.transitionCount(), before);
}

TEST(Automaton, HierarchicalStateNameLabels) {
  Tables t;
  Automaton a(t.signals, t.props, "rearRole");
  const StateId s = a.addState("noConvoy::wait");
  a.labelWithStateName(s);
  const auto outer = t.props->lookup("rearRole.noConvoy");
  const auto inner = t.props->lookup("rearRole.noConvoy::wait");
  ASSERT_TRUE(outer.has_value());
  ASSERT_TRUE(inner.has_value());
  EXPECT_TRUE(a.labels(s).test(*outer));
  EXPECT_TRUE(a.labels(s).test(*inner));
}

TEST(Automaton, ReachabilityAndPruning) {
  Tables t;
  Automaton a(t.signals, t.props, "m");
  a.addOutput("o");
  const StateId s0 = a.addState("a");
  const StateId s1 = a.addState("b");
  const StateId s2 = a.addState("orphan");
  a.markInitial(s0);
  a.addTransition(s0, ia(*t.signals, {}, {"o"}), s1);
  a.addTransition(s2, ia(*t.signals, {}, {"o"}), s0);
  const auto reach = a.reachableStates();
  EXPECT_TRUE(reach[s0]);
  EXPECT_TRUE(reach[s1]);
  EXPECT_FALSE(reach[s2]);
  std::vector<StateId> map;
  const Automaton pruned = a.prunedToReachable(&map);
  EXPECT_EQ(pruned.stateCount(), 2u);
  EXPECT_EQ(map[s2], UINT32_MAX);
  EXPECT_TRUE(pruned.stateByName("a").has_value());
  EXPECT_FALSE(pruned.stateByName("orphan").has_value());
}

TEST(Automaton, Determinism) {
  Tables t;
  Automaton a = pingPong(t);
  EXPECT_TRUE(a.deterministic());
  a.addState("x");
  a.addTransition(0, ia(*t.signals, {}, {"req"}), 2);  // second target
  EXPECT_FALSE(a.deterministic());
}

TEST(Automaton, AdmitsRegularAndDeadlockRuns) {
  Tables t;
  Automaton a = pingPong(t);
  const Interaction send = ia(*t.signals, {}, {"req"});
  const Interaction recv = ia(*t.signals, {"ack"}, {});

  ARun regular{{0, 1, 0}, {send, recv}, false};
  EXPECT_TRUE(a.admitsRun(regular));

  // Wrong start state.
  ARun badStart{{1, 0}, {recv}, false};
  EXPECT_FALSE(a.admitsRun(badStart));

  // Deadlock run: "waiting" refuses another send (Def. 2: the final
  // interaction must have no successor).
  ARun deadlock{{0, 1}, {send, send}, true};
  EXPECT_TRUE(a.admitsRun(deadlock));

  // Not a deadlock run if the interaction is actually enabled.
  ARun notBlocked{{0, 1}, {send, recv}, true};
  EXPECT_FALSE(a.admitsRun(notBlocked));

  ARun malformed{{0}, {send, recv}, false};
  EXPECT_FALSE(a.admitsRun(malformed));
}

TEST(Automaton, EnabledInteractionsDeduplicates) {
  Tables t;
  Automaton a(t.signals, t.props, "m");
  a.addOutput("o");
  a.addState("s");
  a.addState("u");
  a.addState("v");
  const Interaction x = ia(*t.signals, {}, {"o"});
  a.addTransition(0, x, 1);
  a.addTransition(0, x, 2);  // nondeterministic, same label
  EXPECT_EQ(a.enabledInteractions(0).size(), 1u);
  EXPECT_EQ(a.successors(0, x).size(), 2u);
}

TEST(Alphabet, FullPowersetEnumerates) {
  Tables t;
  const SignalSet ins = test::sigs(*t.signals, {"a", "b"});
  const SignalSet outs = test::sigs(*t.signals, {"x"});
  const auto alpha = makeAlphabet(ins, outs, InteractionMode::FullPowerset);
  EXPECT_EQ(alpha.size(), 4u * 2u);  // ℘({a,b}) × ℘({x})
}

TEST(Alphabet, AtMostOneSignalIsLinear) {
  Tables t;
  const SignalSet ins = test::sigs(*t.signals, {"a", "b", "c"});
  const SignalSet outs = test::sigs(*t.signals, {"x", "y"});
  const auto alpha = makeAlphabet(ins, outs, InteractionMode::AtMostOneSignal);
  EXPECT_EQ(alpha.size(), 1u + 3u + 2u);
  // The idle interaction is always included.
  EXPECT_TRUE(std::any_of(alpha.begin(), alpha.end(),
                          [](const Interaction& x) { return x.idle(); }));
}

TEST(Alphabet, PowersetGuardsAgainstBlowup) {
  Tables t;
  SignalSet ins;
  for (int i = 0; i < 20; ++i) ins.set(t.signals->intern("s" + std::to_string(i)));
  EXPECT_THROW(makeAlphabet(ins, {}, InteractionMode::FullPowerset),
               std::invalid_argument);
}

TEST(Automaton, InteractionRendering) {
  Tables t;
  Automaton a = pingPong(t);
  EXPECT_EQ(a.interactionToString(ia(*t.signals, {"ack"}, {"req"})),
            "{ack}/{req}");
  EXPECT_EQ(a.interactionToString({}), "-/-");
}

TEST(Automaton, DotExportMentionsStatesAndLabels) {
  Tables t;
  const Automaton a = pingPong(t);
  const std::string dot = a.toDot();
  EXPECT_NE(dot.find("idle"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("{ack}/-"), std::string::npos);
}

}  // namespace
}  // namespace mui::automata
