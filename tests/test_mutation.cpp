// Tests for the structural mutation operators and the end-to-end mutation
// property: the integration loop's verdict on any mutant agrees with ground
// truth (no escapes), extending the verdict-agreement property to
// structured, non-random models.

#include <gtest/gtest.h>

#include "automata/compose.hpp"
#include "ctl/counterexample.hpp"
#include "ctl/parser.hpp"
#include "helpers.hpp"
#include "muml/shuttle.hpp"
#include "synthesis/verifier.hpp"
#include "testing/legacy.hpp"
#include "testing/mutation.hpp"

namespace mui::testing {
namespace {

namespace sh = muml::shuttle;
using test::Tables;

TEST(Mutation, OperatorsProduceTheAdvertisedChange) {
  Tables t;
  const auto original = sh::correctRearLegacy(t.signals, t.props);

  const auto del = mutateAutomaton(original, MutationOp::DeleteTransition, 3);
  ASSERT_TRUE(del.has_value());
  EXPECT_EQ(del->first.transitionCount(), original.transitionCount() - 1);
  EXPECT_EQ(del->first.stateCount(), original.stateCount());
  EXPECT_NE(del->second.describe(original).find("delete"), std::string::npos);

  const auto drop = mutateAutomaton(original, MutationOp::DropOutputs, 3);
  ASSERT_TRUE(drop.has_value());
  EXPECT_EQ(drop->first.transitionCount(), original.transitionCount());
  // The mutated transition now emits nothing.
  bool foundSilenced = false;
  for (const auto& tr : drop->first.transitionsFrom(drop->second.from)) {
    if (tr.label.in == drop->second.label.in && tr.label.out.empty()) {
      foundSilenced = true;
    }
  }
  EXPECT_TRUE(foundSilenced);

  const auto redir = mutateAutomaton(original, MutationOp::RedirectTarget, 3);
  ASSERT_TRUE(redir.has_value());
  EXPECT_EQ(redir->first.transitionCount(), original.transitionCount());
  EXPECT_TRUE(redir->first.hasTransitionTo(
      redir->second.from, redir->second.label, redir->second.newTarget));
}

TEST(Mutation, MutantsStayInputDeterministic) {
  Tables t;
  const auto original = sh::correctRearLegacy(t.signals, t.props);
  for (const auto op : {MutationOp::DeleteTransition, MutationOp::DropOutputs,
                        MutationOp::RedirectTarget}) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto mutant = mutateAutomaton(original, op, seed);
      ASSERT_TRUE(mutant.has_value());
      // AutomatonLegacy validates input-determinism at construction.
      EXPECT_NO_THROW(AutomatonLegacy{mutant->first});
    }
  }
}

TEST(Mutation, DeterministicInSeed) {
  Tables t;
  const auto original = sh::correctRearLegacy(t.signals, t.props);
  const auto a = mutateAutomaton(original, MutationOp::RedirectTarget, 5);
  const auto b = mutateAutomaton(original, MutationOp::RedirectTarget, 5);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->second.from, b->second.from);
  EXPECT_EQ(a->second.newTarget, b->second.newTarget);
  EXPECT_EQ(a->first.toText(), b->first.toText());
}

TEST(Mutation, NoApplicableSiteReturnsNullopt) {
  Tables t;
  automata::Automaton tiny(t.signals, t.props, "tiny");
  tiny.addState("only");
  tiny.markInitial(0);
  tiny.addTransition(0, {}, 0);  // single silent self-loop
  EXPECT_FALSE(
      mutateAutomaton(tiny, MutationOp::DropOutputs, 1).has_value());
  EXPECT_FALSE(
      mutateAutomaton(tiny, MutationOp::RedirectTarget, 1).has_value());
  EXPECT_TRUE(
      mutateAutomaton(tiny, MutationOp::DeleteTransition, 1).has_value());
}

class MutantAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutantAgreement, LoopVerdictMatchesGroundTruthOnEveryMutant) {
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  const auto original = sh::correctRearLegacy(t.signals, t.props);
  const std::uint64_t seed = GetParam();
  for (const auto op : {MutationOp::DeleteTransition, MutationOp::DropOutputs,
                        MutationOp::RedirectTarget}) {
    const auto mutant = mutateAutomaton(original, op, seed);
    ASSERT_TRUE(mutant.has_value());
    const bool truth =
        ctl::verify(automata::compose(front, mutant->first).automaton,
                    ctl::parseFormula(sh::kPatternConstraint), {})
            .holds;
    AutomatonLegacy legacy(mutant->first);
    synthesis::IntegrationConfig cfg;
    cfg.property = sh::kPatternConstraint;
    const auto res =
        synthesis::IntegrationVerifier(front, legacy, cfg).run();
    ASSERT_TRUE(res.verdict == synthesis::Verdict::ProvenCorrect ||
                res.verdict == synthesis::Verdict::RealError)
        << res.explanation;
    EXPECT_EQ(res.verdict == synthesis::Verdict::ProvenCorrect, truth)
        << mutant->second.describe(original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutantAgreement,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace mui::testing
