// Robustness tests: the parsers must either succeed or throw a ParseError /
// invalid_argument on arbitrary token soup — never crash or hang — and the
// bitset must agree with a reference implementation under random operation
// sequences.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "ctl/parser.hpp"
#include "muml/loader.hpp"
#include "util/bitset.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"

namespace mui {
namespace {

std::string randomSoup(util::Rng& rng, std::size_t tokens,
                       const std::vector<std::string>& vocab) {
  std::string out;
  for (std::size_t i = 0; i < tokens; ++i) {
    out += vocab[rng.below(vocab.size())];
    if (rng.chance(70, 100)) out += ' ';
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, CtlParserNeverCrashes) {
  const std::vector<std::string> vocab = {
      "AG",  "AF",   "EG",       "EF",    "AX",  "EX",  "A",   "E",  "U",
      "[",   "]",    "(",        ")",     "!",   "&&",  "||",  "->", "true",
      "false", "deadlock", "p",  "q.r",   "1",   "5",   ",",   "inf",
      "x::y", "@",   "AG(",      "))",    ""};
  util::Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const std::string text = randomSoup(rng, rng.range(1, 14), vocab);
    try {
      const auto f = ctl::parseFormula(text);
      // If it parsed, printing and re-parsing must be stable.
      const std::string once = f->toString();
      EXPECT_EQ(ctl::parseFormula(once)->toString(), once) << text;
    } catch (const util::ParseError&) {
      // expected for most soups
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST_P(ParserFuzz, MumlLoaderNeverCrashes) {
  const std::vector<std::string> vocab = {
      "automaton", "rtsc",      "pattern",  "input",    "output", "clock",
      "location",  "initial",   "state",    "role",     "uses",   "invariant",
      "connector", "direct",    "channel",  "delay",    "routes", "constraint",
      "trigger",   "emit",      "guard",    "reset",    "labels", "{",
      "}",         ";",         ":",        "->",       "/",      "a",
      "b",         "m1",        "<=",       ">=",       "2",      "\"AG p\"",
      "#c\n",      ""};
  util::Rng rng(GetParam() + 1000);
  for (int i = 0; i < 200; ++i) {
    const std::string text = randomSoup(rng, rng.range(1, 25), vocab);
    try {
      (void)muml::loadModel(text);
    } catch (const util::ParseError&) {
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Range<std::uint64_t>(1, 7));

class BitsetFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitsetFuzz, AgreesWithReferenceSets) {
  util::Rng rng(GetParam() * 31 + 3);
  util::DynBitset a, b;
  std::set<std::size_t> ra, rb;
  const auto check = [&](const util::DynBitset& x,
                         const std::set<std::size_t>& r) {
    ASSERT_EQ(x.count(), r.size());
    for (std::size_t bit : r) ASSERT_TRUE(x.test(bit));
    const auto bits = x.bits();
    ASSERT_TRUE(std::equal(bits.begin(), bits.end(), r.begin(), r.end()));
  };
  for (int step = 0; step < 2000; ++step) {
    const std::size_t bit = rng.below(200);
    switch (rng.below(7)) {
      case 0:
        a.set(bit);
        ra.insert(bit);
        break;
      case 1:
        a.reset(bit);
        ra.erase(bit);
        break;
      case 2:
        b.set(bit);
        rb.insert(bit);
        break;
      case 3: {  // a |= b
        a |= b;
        ra.insert(rb.begin(), rb.end());
        break;
      }
      case 4: {  // a &= b
        a &= b;
        std::set<std::size_t> inter;
        for (std::size_t v : ra) {
          if (rb.count(v)) inter.insert(v);
        }
        ra = std::move(inter);
        break;
      }
      case 5: {  // a -= b
        for (std::size_t v : rb) ra.erase(v);
        a -= b;
        break;
      }
      case 6: {  // structural equality and subset agree with the reference
        ASSERT_EQ(a == b, ra == rb);
        ASSERT_EQ(a.isSubsetOf(b),
                  std::includes(rb.begin(), rb.end(), ra.begin(), ra.end()));
        bool refIntersects = false;
        for (std::size_t v : ra) {
          if (rb.count(v)) refIntersects = true;
        }
        ASSERT_EQ(a.intersects(b), refIntersects);
        break;
      }
    }
    check(a, ra);
    check(b, rb);
    if (a == b) ASSERT_EQ(a.hash(), b.hash());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitsetFuzz,
                         ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace mui
