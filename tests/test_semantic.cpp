// The semantic static-analysis tier (analysis/semantic.hpp): verdict
// pre-solving differentially against the concrete model checker, the MUI1xx
// rules over the shipped models and purpose-built fixtures, `allow`
// suppression, and the SARIF rendering of related-location chains —
// including the invalid-UTF-8 regression for the centralized JSON escaper.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyze.hpp"
#include "analysis/render.hpp"
#include "analysis/semantic.hpp"
#include "automata/compose.hpp"
#include "automata/rename.hpp"
#include "ctl/counterexample.hpp"
#include "ctl/parser.hpp"
#include "muml/integration.hpp"
#include "muml/loader.hpp"

namespace {

using namespace mui;

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) ADD_FAILURE() << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Loads a shipped model under its repo-relative virtual path so source
/// locations (and therefore SARIF output) are machine-independent.
muml::Model loadShipped(const std::string& name) {
  return muml::loadModel(readFile(std::string(MUI_MODELS_DIR) + "/" + name),
                         "models/" + name);
}

std::size_t countRule(const analysis::Report& report, const char* ruleId) {
  std::size_t n = 0;
  for (const auto& d : report.diagnostics) {
    if (d.ruleId == ruleId) ++n;
  }
  return n;
}

const analysis::Diagnostic* findDiag(const analysis::Report& report,
                                     const char* ruleId,
                                     const std::string& subject) {
  for (const auto& d : report.diagnostics) {
    if (d.ruleId == ruleId && d.subject == subject) return &d;
  }
  return nullptr;
}

// ---- Pre-solving: definitive verdicts on the shipped models ----------------

struct PresolveCase {
  const char* hidden;
  const char* property;  // nullptr = the scenario's derived property
  analysis::PresolveVerdict expected;
};

analysis::PresolveOutcome presolveWatchdogDevice(const muml::Model& model,
                                                 const char* hidden,
                                                 const char* propertyOverride) {
  const auto& pattern = model.patterns.at("Watchdog");
  const auto scenario =
      muml::makeIntegrationScenario(pattern, 1, model.signals, model.props);
  const automata::Automaton stub =
      automata::withInstanceName(model.automata.at(hidden), "device");
  return analysis::presolveIntegration(
      scenario.context, stub,
      propertyOverride != nullptr ? propertyOverride : scenario.property);
}

TEST(Presolve, DecidesTheWatchdogCampaignStatically) {
  const muml::Model model = loadShipped("watchdog.muml");
  const PresolveCase cases[] = {
      // The derived property conjoins the device role's bounded AF response
      // invariant — outside the AG-safety fragment, so the good devices
      // fall through to the refinement loop...
      {"deviceCompliant", nullptr, analysis::PresolveVerdict::Skipped},
      {"deviceSlow", nullptr, analysis::PresolveVerdict::Skipped},
      // ...but one violated AG conjunct refutes the whole conjunction.
      {"deviceCrawl", nullptr, analysis::PresolveVerdict::Refuted},
      {"deviceMute", nullptr, analysis::PresolveVerdict::Refuted},
      {"deviceDeaf", nullptr, analysis::PresolveVerdict::Refuted},
      // The pure AG constraint is decidable both ways.
      {"deviceCompliant", "AG !monitor.escalated",
       analysis::PresolveVerdict::Proved},
      {"deviceCrawl", "AG !monitor.escalated",
       analysis::PresolveVerdict::Refuted},
  };
  for (const auto& c : cases) {
    const auto outcome = presolveWatchdogDevice(model, c.hidden, c.property);
    EXPECT_EQ(outcome.verdict, c.expected)
        << c.hidden << " / " << (c.property ? c.property : "<derived>")
        << ": " << outcome.explanation;
    if (c.expected == analysis::PresolveVerdict::Proved) {
      EXPECT_EQ(outcome.ruleId, analysis::kStaticallyProven);
      EXPECT_GT(outcome.productStates, 0u);
    }
    if (c.expected == analysis::PresolveVerdict::Refuted) {
      EXPECT_EQ(outcome.ruleId, analysis::kGuaranteedViolation);
      EXPECT_NE(outcome.explanation.find("real error"), std::string::npos);
    }
  }
}

/// The in-process mirror of fuzz oracle O6, swept over every (pattern, role,
/// composable automaton) combination of both shipped models: a definitive
/// pre-solve verdict must agree with ctl::verify on the concrete product.
TEST(Presolve, AgreesWithConcreteVerificationOnShippedModels) {
  std::size_t definitive = 0;
  for (const char* name : {"watchdog.muml", "railcab.muml"}) {
    const muml::Model model = loadShipped(name);
    for (const auto& [patternName, pattern] : model.patterns) {
      for (std::size_t r = 0; r < pattern.roles.size(); ++r) {
        const auto scenario = muml::makeIntegrationScenario(
            pattern, r, model.signals, model.props);
        for (const auto& [candName, cand] : model.automata) {
          const automata::Automaton stub =
              automata::withInstanceName(cand, pattern.roles[r].name);
          if (!scenario.context.composableWith(stub)) continue;
          const auto pre = analysis::presolveIntegration(
              scenario.context, stub, scenario.property);
          if (pre.verdict == analysis::PresolveVerdict::Skipped) continue;
          ++definitive;
          const ctl::FormulaPtr phi =
              scenario.property.empty()
                  ? nullptr
                  : ctl::parseFormula(scenario.property);
          const bool truth =
              ctl::verify(automata::compose(stub, scenario.context).automaton,
                          phi, {})
                  .holds;
          EXPECT_EQ(pre.verdict == analysis::PresolveVerdict::Proved, truth)
              << name << " " << patternName << "/"
              << pattern.roles[r].name << " hidden=" << candName << ": "
              << pre.explanation;
        }
      }
    }
  }
  EXPECT_GT(definitive, 0u) << "the sweep never produced a definitive "
                               "verdict — the pre-solver is vacuous";
}

TEST(Presolve, NeverThrowsOnGarbageProperty) {
  const muml::Model model = loadShipped("watchdog.muml");
  const auto outcome =
      presolveWatchdogDevice(model, "deviceCompliant", "AG (((");
  EXPECT_EQ(outcome.verdict, analysis::PresolveVerdict::Skipped);
  EXPECT_NE(outcome.explanation.find("parse"), std::string::npos);
}

// ---- The MUI1xx rules over the shipped models ------------------------------

TEST(Semantic, WatchdogFindings) {
  const muml::Model model = loadShipped("watchdog.muml");
  const auto report = analysis::runSemantic(model);

  // The three faulty devices pre-solve to real-error (MUI102), each with a
  // dominator must-pass chain and the iteration-0 chaos note.
  for (const char* bad : {"deviceCrawl", "deviceMute", "deviceDeaf"}) {
    const auto* d = findDiag(report, analysis::kGuaranteedViolation, bad);
    ASSERT_NE(d, nullptr) << bad;
    EXPECT_EQ(d->severity, analysis::Severity::Note);
    EXPECT_FALSE(d->related.empty()) << bad;
    bool hasChaosNote = false;
    for (const auto& note : d->related) {
      if (note.message.find("chaotic closure") != std::string::npos) {
        hasChaosNote = true;
      }
    }
    EXPECT_TRUE(hasChaosNote) << bad;
  }

  // deviceMute spins silently in escalated‖dead forever: a livelock SCC.
  EXPECT_NE(findDiag(report, analysis::kLivelockScc, "deviceMute"), nullptr);

  // The monitor's escalated self-loop never fires in the two-role protocol
  // composition (the compliant protocol device always answers in time).
  EXPECT_GE(countRule(report, analysis::kDeadTransition), 1u);

  // The good devices must NOT be flagged as guaranteed violations.
  EXPECT_EQ(findDiag(report, analysis::kGuaranteedViolation,
                     "deviceCompliant"),
            nullptr);
  EXPECT_EQ(findDiag(report, analysis::kGuaranteedViolation, "deviceSlow"),
            nullptr);
}

TEST(Semantic, RuleSetDisablingRemovesFindings) {
  const muml::Model model = loadShipped("watchdog.muml");
  auto rules = analysis::RuleSet::all();
  rules.disable(analysis::kGuaranteedViolation);
  rules.disable(analysis::kLivelockScc);
  const auto report = analysis::runSemantic(model, rules);
  EXPECT_EQ(countRule(report, analysis::kGuaranteedViolation), 0u);
  EXPECT_EQ(countRule(report, analysis::kLivelockScc), 0u);
}

// ---- Purpose-built fixtures: MUI101 proofs, MUI105 gaps, suppression -------

/// A pattern whose context declares a signal (`halt`) that no reachable
/// context transition ever emits, plus a stub that triggers on it: the
/// composition is deadlock-free (MUI101 proves it — there is no constraint,
/// so the obligation is ¬δ alone) but the halt handling is flow-dead
/// (MUI105 + MUI104).
constexpr const char* kFlowGapModel = R"(
rtsc aRole {
  output go; output halt;
  location s0;
  initial s0;
  s0 -> s0 : emit go;
}
rtsc bRole {
  input go; input halt;
  location t0;
  initial t0;
  t0 -> t0 : trigger go;
}
pattern Ping {
  role a uses aRole;
  role b uses bRole;
  connector direct;
}
automaton bStub {
  input go; input halt;
  initial t0;
  t0 -> t0 : go / ;
  t0 -> t1 : halt / ;
  t1 -> t1 : ;
}
)";

TEST(Semantic, ProvesAndFlagsFlowGapsOnFixture) {
  const muml::Model model = muml::loadModel(kFlowGapModel, "flowgap.muml");
  const auto report = analysis::runSemantic(model);

  const auto* proof = findDiag(report, analysis::kStaticallyProven, "bStub");
  ASSERT_NE(proof, nullptr);
  EXPECT_NE(proof->message.find("deadlock freedom"), std::string::npos);
  EXPECT_FALSE(proof->related.empty());

  const auto* gap = findDiag(report, analysis::kInterfaceGap, "bStub");
  ASSERT_NE(gap, nullptr);
  EXPECT_NE(gap->message.find("halt"), std::string::npos);

  // The halt transition of the stub fires in no reachable product step.
  EXPECT_NE(findDiag(report, analysis::kDeadTransition, "bStub"), nullptr);
}

TEST(Semantic, AllowClausesSuppressSemanticFindings) {
  std::string text = kFlowGapModel;
  const std::string marker = "input go; input halt;\n  initial t0;";
  const auto pos = text.find(marker);
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos + marker.size() - std::string("initial t0;").size(),
              "allow MUI101; allow MUI104; allow MUI105;\n  ");
  const muml::Model model = muml::loadModel(text, "flowgap.muml");
  const auto report = analysis::runSemantic(model);
  EXPECT_EQ(countRule(report, analysis::kStaticallyProven), 0u);
  EXPECT_EQ(findDiag(report, analysis::kInterfaceGap, "bStub"), nullptr);
  EXPECT_GE(report.suppressed, 3u);
}

// ---- Rendering: related chains and the invalid-UTF-8 regression ------------

TEST(SemanticRender, RelatedNotesAppearInTextAndSarif) {
  const muml::Model model = loadShipped("watchdog.muml");
  const auto report = analysis::runSemantic(model);
  const std::string text = analysis::renderText(report);
  EXPECT_NE(text.find("note: every path to the violation passes through"),
            std::string::npos);
  const std::string sarif = analysis::writeSarif(report);
  EXPECT_NE(sarif.find("\"relatedLocations\""), std::string::npos);
}

TEST(SemanticRender, SarifSurvivesInvalidUtf8StateNames) {
  // State names straight out of a hostile model file: an overlong sequence,
  // a lone continuation byte, an embedded quote and a control character.
  const std::string evil = std::string("state\xC0\xAF\"\x01\x80name");
  analysis::Report report;
  analysis::Diagnostic d;
  d.ruleId = analysis::kGuaranteedViolation;
  d.severity = analysis::Severity::Note;
  d.subject = evil;
  d.message = "witness '" + evil + "' violates the constraint";
  d.related.push_back({"every path passes through '" + evil + "'", {}});
  report.diagnostics.push_back(d);

  const std::string sarif = analysis::writeSarif(report);
  // The escaper replaces ill-formed sequences with U+FFFD escapes and never
  // lets raw control bytes or unescaped quotes through.
  EXPECT_NE(sarif.find("\\ufffd"), std::string::npos);
  EXPECT_EQ(sarif.find('\x01'), std::string::npos);
  EXPECT_EQ(sarif.find('\xC0'), std::string::npos);
  EXPECT_EQ(sarif.find("state\xC0"), std::string::npos);
  EXPECT_NE(sarif.find("\\\""), std::string::npos);
}

// ---- Crash-freedom over the corpus and golden SARIF snapshots --------------

TEST(Semantic, AnalyzesEveryCorpusReproducerWithoutCrashing) {
  namespace fs = std::filesystem;
  std::size_t seen = 0;
  for (const auto& entry : fs::directory_iterator(MUI_CORPUS_DIR)) {
    if (entry.path().extension() != ".muml") continue;
    ++seen;
    const muml::Model model =
        muml::loadModel(readFile(entry.path().string()),
                        entry.path().filename().string());
    const auto report = analysis::runSemantic(model);
    (void)analysis::writeSarif(report);
    (void)analysis::renderText(report);
  }
  EXPECT_GT(seen, 0u) << "corpus directory is empty";
}

/// Full `mui analyze`-equivalent SARIF for the shipped models, pinned as
/// golden files. Regenerate (from the repo root) with:
///   build/tools/mui analyze models/watchdog.muml --format json
///       > tests/golden/watchdog.analysis.sarif   (same for railcab)
void expectGoldenSarif(const std::string& modelFile,
                       const std::string& goldenFile) {
  const muml::Model model = loadShipped(modelFile);
  analysis::Report report = analysis::run(model);
  analysis::Report semantic = analysis::runSemantic(model);
  for (auto& d : semantic.diagnostics) {
    report.diagnostics.push_back(std::move(d));
  }
  const std::string golden =
      readFile(std::string(MUI_GOLDEN_DIR) + "/" + goldenFile);
  EXPECT_EQ(analysis::writeSarif(report), golden)
      << "SARIF drift for " << modelFile
      << " — if intentional, regenerate tests/golden/" << goldenFile;
}

TEST(SemanticGolden, WatchdogSarifSnapshot) {
  expectGoldenSarif("watchdog.muml", "watchdog.analysis.sarif");
}

TEST(SemanticGolden, RailcabSarifSnapshot) {
  expectGoldenSarif("railcab.muml", "railcab.analysis.sarif");
}

}  // namespace
