// Tests for the testing substrate: the black-box legacy interface, the
// hand-written legacy firmware, monitoring probe levels, the two-phase
// counterexample test driver (record + deterministic replay), the periodic
// runtime, and the composite-legacy wrapper.

#include <gtest/gtest.h>

#include "automata/conformance.hpp"
#include "helpers.hpp"
#include "muml/shuttle.hpp"
#include "testing/composite.hpp"
#include "testing/driver.hpp"
#include "testing/legacy.hpp"
#include "testing/legacy_shuttle.hpp"
#include "testing/runtime.hpp"
#include "util/rng.hpp"

namespace mui::testing {
namespace {

namespace sh = muml::shuttle;
using test::Tables;
using test::ia;

SignalSet one(const automata::SignalTableRef& t, const char* s) {
  return SignalSet::single(t->intern(s));
}

TEST(AutomatonLegacy, RejectsInputNondeterminism) {
  Tables t;
  automata::Automaton a(t.signals, t.props, "m");
  a.addOutput("x");
  a.addOutput("y");
  a.addState("s");
  a.markInitial(0);
  a.addTransition(0, ia(*t.signals, {}, {"x"}), 0);
  a.addTransition(0, ia(*t.signals, {}, {"y"}), 0);  // same input ∅
  EXPECT_THROW(AutomatonLegacy{a}, std::invalid_argument);
}

TEST(AutomatonLegacy, StepBlockResetClone) {
  Tables t;
  AutomatonLegacy legacy(sh::correctRearLegacy(t.signals, t.props));
  EXPECT_EQ(legacy.currentStateName(), "noConvoy::default");
  // Idle tick arms the proposal.
  auto out = legacy.step({});
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
  out = legacy.step({});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, one(t.signals, sh::kConvoyProposal));
  EXPECT_EQ(legacy.currentStateName(), "noConvoy::wait");

  // Unsolicited startConvoy at wait is fine; but at default it is refused
  // and the state does not change.
  auto probe = legacy.clone();
  EXPECT_TRUE(probe->step(one(t.signals, sh::kStartConvoy)).has_value());
  EXPECT_EQ(probe->currentStateName(), "convoy::default");
  EXPECT_EQ(legacy.currentStateName(), "noConvoy::wait");  // clone detached

  legacy.reset();
  EXPECT_EQ(legacy.currentStateName(), "noConvoy::default");
  EXPECT_FALSE(
      legacy.step(one(t.signals, sh::kStartConvoy)).has_value());
  EXPECT_EQ(legacy.currentStateName(), "noConvoy::default");
}

class FirmwareEquivalence : public ::testing::TestWithParam<bool> {};

TEST_P(FirmwareEquivalence, FirmwareMatchesReferenceAutomaton) {
  // The hand-written legacy firmware and the reference automaton must be
  // behaviorally identical: same outputs, same refusals, same state names,
  // under thousands of random input sequences.
  const bool faulty = GetParam();
  Tables t;
  AutomatonLegacy ref(faulty ? sh::faultyRearLegacy(t.signals, t.props)
                             : sh::correctRearLegacy(t.signals, t.props));
  FirmwareShuttleLegacy fw(t.signals, faulty);
  ASSERT_TRUE(ref.inputs() == fw.inputs());
  ASSERT_TRUE(ref.outputs() == fw.outputs());

  const auto inputBits = ref.inputs().bits();
  util::Rng rng(faulty ? 11 : 22);
  for (int episode = 0; episode < 60; ++episode) {
    ref.reset();
    fw.reset();
    for (int step = 0; step < 40; ++step) {
      SignalSet in;
      if (rng.chance(45, 100)) {
        in.set(inputBits[rng.below(inputBits.size())]);
      }
      const auto a = ref.step(in);
      const auto b = fw.step(in);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a) {
        ASSERT_EQ(*a, *b);
        ASSERT_EQ(ref.currentStateName(), fw.currentStateName());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Revisions, FirmwareEquivalence,
                         ::testing::Values(false, true));

TEST(Recorder, ProbeLevelsAndRendering) {
  Recorder target(ProbeLevel::ReplayOnly);
  target.onCurrentState("noConvoy", 0);  // dropped on the target build
  target.onMessage("convoyProposal", "rearRole", true, 1);
  target.onTiming(1);  // dropped
  target.onMessage("convoyProposalRejected", "rearRole", false, 2);
  EXPECT_EQ(target.events().size(), 2u);
  const std::string t1 = target.render();
  EXPECT_EQ(t1,
            "[Message] name=\"convoyProposal\", portName=\"rearRole\", "
            "type=\"outgoing\"\n"
            "[Message] name=\"convoyProposalRejected\", portName=\"rearRole\", "
            "type=\"incoming\"\n");

  Recorder full(ProbeLevel::Full);
  full.onCurrentState("noConvoy", 0);
  full.onMessage("convoyProposal", "rearRole", true, 1);
  full.onTiming(1);
  const std::string t2 = full.render();
  EXPECT_NE(t2.find("[CurrentState] name=\"noConvoy\""), std::string::npos);
  EXPECT_NE(t2.find("[Timing] count=1"), std::string::npos);
}

struct DriverFixture {
  Tables t;
  AutomatonLegacy legacy;
  automata::Interaction idle;
  automata::Interaction propose;
  automata::Interaction reject;
  automata::Interaction start;

  DriverFixture()
      : legacy(sh::correctRearLegacy(t.signals, t.props)),
        idle{},
        propose{{}, one(t.signals, sh::kConvoyProposal)},
        reject{one(t.signals, sh::kConvoyProposalRejected), {}},
        start{one(t.signals, sh::kStartConvoy), {}} {}
};

TEST(Driver, ConfirmedRun) {
  DriverFixture f;
  CounterexampleTestDriver driver(f.legacy, *f.t.signals);
  const auto outcome =
      driver.execute({f.idle, f.propose, f.start});
  EXPECT_EQ(outcome.kind, TestOutcome::Kind::Confirmed);
  EXPECT_EQ(outcome.executedSteps, 3u);
  ASSERT_TRUE(outcome.observed.wellFormed());
  EXPECT_FALSE(outcome.observed.blocked);
  EXPECT_EQ(outcome.observed.stateNames.back(), "convoy::default");
  EXPECT_FALSE(outcome.refusalRun.has_value());
  // The observed run is a real run of the hidden automaton.
  automata::IncompleteAutomaton learned(f.t.signals, f.t.props, "rearRole");
  learned.declareSignals(f.legacy.inputs(), f.legacy.outputs());
  learned.learn(outcome.observed);
  EXPECT_TRUE(automata::checkObservationConformance(learned, f.legacy.hidden())
                  .conforms);
  // Monitoring: states only in the replay log (probe levels, Listing 1.2
  // vs 1.3).
  EXPECT_EQ(outcome.targetLog.render().find("[CurrentState]"),
            std::string::npos);
  EXPECT_NE(outcome.replayLog.render().find("[CurrentState]"),
            std::string::npos);
  EXPECT_NE(outcome.replayLog.render().find(
                "[Message] name=\"convoyProposal\", portName=\"rearRole\", "
                "type=\"outgoing\""),
            std::string::npos);
}

TEST(Driver, DivergedRunLearnsActualAndRefused) {
  DriverFixture f;
  CounterexampleTestDriver driver(f.legacy, *f.t.signals);
  // Expect the component to propose immediately; it actually idles first.
  const auto outcome = driver.execute({f.propose});
  EXPECT_EQ(outcome.kind, TestOutcome::Kind::Diverged);
  EXPECT_EQ(outcome.executedSteps, 1u);
  // Observed: the real (idle) step.
  ASSERT_EQ(outcome.observed.labels.size(), 1u);
  EXPECT_TRUE(outcome.observed.labels[0].out.empty());
  EXPECT_EQ(outcome.observed.stateNames[1], "noConvoy::ready");
  // Refusal: the expected proposal at the initial state (Def. 12 fact).
  ASSERT_TRUE(outcome.refusalRun.has_value());
  EXPECT_TRUE(outcome.refusalRun->blocked);
  EXPECT_EQ(outcome.refusalRun->stateNames.size(), 1u);
  EXPECT_EQ(outcome.refusalRun->labels[0], f.propose);
}

TEST(Driver, BlockedRun) {
  DriverFixture f;
  CounterexampleTestDriver driver(f.legacy, *f.t.signals);
  // startConvoy at the initial state is refused outright.
  const auto outcome = driver.execute({f.start});
  EXPECT_EQ(outcome.kind, TestOutcome::Kind::Blocked);
  EXPECT_EQ(outcome.executedSteps, 0u);
  ASSERT_TRUE(outcome.observed.wellFormed());
  EXPECT_TRUE(outcome.observed.blocked);
  EXPECT_EQ(outcome.observed.stateNames.size(), 1u);
  EXPECT_EQ(outcome.observed.labels.size(), 1u);
  EXPECT_EQ(outcome.observed.labels[0], f.start);
  EXPECT_FALSE(outcome.refusalRun.has_value());
}

TEST(Driver, CountsPeriods) {
  DriverFixture f;
  CounterexampleTestDriver driver(f.legacy, *f.t.signals);
  driver.execute({f.idle, f.propose, f.reject});
  // Phase 1: 3 steps; phase 2 replays them.
  EXPECT_EQ(driver.periodsDriven(), 6u);
}

TEST(Runtime, CorrectFirmwareRunsWithoutDeadlock) {
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  FirmwareShuttleLegacy fw(t.signals, /*faultyRevision=*/false);
  PeriodicRuntime rt(front, fw, 7);
  Recorder rec(ProbeLevel::Full);
  EXPECT_EQ(rt.run(60, rec), 60u);
  // The run exercises the protocol: proposals went out.
  EXPECT_NE(rec.render().find("convoyProposal"), std::string::npos);
}

TEST(Runtime, FaultyFirmwareDeadlocksAgainstTheContext) {
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  FirmwareShuttleLegacy fw(t.signals, /*faultyRevision=*/true);
  PeriodicRuntime rt(front, fw, 7);
  Recorder rec(ProbeLevel::ReplayOnly);
  // The faulty controller jumps to convoy mode and refuses the answer; the
  // front shuttle's answer deadline then wedges the system.
  EXPECT_LT(rt.run(60, rec), 60u);
}

TEST(Composite, JointStepAndRefusal) {
  Tables t;
  auto l1 = std::make_unique<AutomatonLegacy>(
      sh::correctRearLegacy(t.signals, t.props));
  // A second, I/O-disjoint component.
  automata::Automaton b(t.signals, t.props, "aux");
  b.addInput("aux_in");
  b.addOutput("aux_out");
  b.addState("u0");
  b.addState("u1");
  b.markInitial(0);
  b.addTransition(0, ia(*t.signals, {"aux_in"}, {"aux_out"}), 1);
  b.addTransition(1, {}, 1);
  auto l2 = std::make_unique<AutomatonLegacy>(b);

  std::vector<std::unique_ptr<LegacyComponent>> parts;
  parts.push_back(std::move(l1));
  parts.push_back(std::move(l2));
  CompositeLegacy comp(std::move(parts));

  EXPECT_EQ(comp.currentStateName(), "noConvoy::default|u0");
  // Joint step: shuttle idles, aux consumes its input and answers.
  const auto out = comp.step(one(t.signals, "aux_in"));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, one(t.signals, "aux_out"));
  EXPECT_EQ(comp.currentStateName(), "noConvoy::ready|u1");
  // If any part refuses, the joint step refuses and nothing moves.
  const auto blocked = comp.step(one(t.signals, sh::kStartConvoy));
  EXPECT_FALSE(blocked.has_value());
  EXPECT_EQ(comp.currentStateName(), "noConvoy::ready|u1");
}

TEST(Composite, RequiresDisjointInterfaces) {
  Tables t;
  std::vector<std::unique_ptr<LegacyComponent>> parts;
  parts.push_back(std::make_unique<AutomatonLegacy>(
      sh::correctRearLegacy(t.signals, t.props)));
  parts.push_back(std::make_unique<FirmwareShuttleLegacy>(t.signals, false));
  EXPECT_THROW(CompositeLegacy{std::move(parts)}, std::invalid_argument);
}

}  // namespace
}  // namespace mui::testing
