// Tests for the property-based fuzzing subsystem (src/fuzz): seeded
// scenario generation, the five metamorphic oracles, greedy shrinking,
// reproducer round-trips, and campaign determinism. The harness self-test —
// an intentionally injected checker bug must be caught by O1 and shrunk to a
// handful of states — lives here too.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "fuzz/campaign.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/reproducer.hpp"
#include "fuzz/scenario.hpp"
#include "fuzz/shrink.hpp"

namespace mui::fuzz {
namespace {

TEST(FuzzScenario, GenerationIsDeterministicInTheSeed) {
  for (std::uint64_t seed : {1ull, 42ull, 31337ull}) {
    const Scenario a = generateScenario(seed);
    const Scenario b = generateScenario(seed);
    EXPECT_EQ(canonicalText(a.hidden), canonicalText(b.hidden));
    EXPECT_EQ(canonicalText(a.context), canonicalText(b.context));
    EXPECT_EQ(a.property, b.property);
  }
}

TEST(FuzzScenario, SizesStayWithinSpecAndPropertiesVary) {
  const ScenarioSpec spec;
  bool sawProperty = false;
  bool sawNoProperty = false;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const Scenario s = generateScenario(seed);
    EXPECT_GE(s.hidden.stateCount(), spec.minStates);
    EXPECT_LE(s.hidden.stateCount(), spec.maxStates);
    EXPECT_GE(s.context.stateCount(), 1u);
    sawProperty |= !s.property.empty();
    sawNoProperty |= s.property.empty();
  }
  EXPECT_TRUE(sawProperty);
  EXPECT_TRUE(sawNoProperty);
}

TEST(FuzzOracles, AllFiveOraclesCleanOverSeedRange) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const Scenario s = generateScenario(seed);
    for (const OracleId id : allOracles()) {
      const OracleResult r = checkOracle(id, s);
      EXPECT_TRUE(r.ok) << toString(id) << " violated at seed " << seed
                        << ": " << r.detail;
    }
  }
}

TEST(FuzzOracles, NameRoundTripAndCatalog) {
  for (const OracleId id : allOracles()) {
    const auto back = oracleFromString(toString(id));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, id);
    EXPECT_NE(std::string(describeOracle(id)), "");
  }
  EXPECT_FALSE(oracleFromString("O9").has_value());
  EXPECT_FALSE(bugInjectionFromString("bogus").has_value());
  EXPECT_EQ(*bugInjectionFromString(toString(BugInjection::O1DeadlockAF)),
            BugInjection::O1DeadlockAF);
}

/// First seed in [1, 80] whose scenario exposes the injected O1 bug; the
/// injection needs a transition-less (deadlock) state in the composed model
/// and a top-level AF formula, which not every tiny scenario provides.
std::optional<std::uint64_t> findInjectedFailure(const OracleOptions& opts) {
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    if (!checkOracle(OracleId::O1CheckerAgreement, generateScenario(seed),
                     opts)
             .ok) {
      return seed;
    }
  }
  return std::nullopt;
}

TEST(FuzzSelfTest, InjectedCheckerBugIsCaughtByO1AndShrunkSmall) {
  OracleOptions opts;
  opts.injectBug = BugInjection::O1DeadlockAF;
  const auto seed = findInjectedFailure(opts);
  ASSERT_TRUE(seed.has_value())
      << "no scenario in range exposed the injected bug";

  const ShrinkOutcome out =
      shrinkScenario(generateScenario(*seed), OracleId::O1CheckerAgreement,
                     opts);
  EXPECT_FALSE(out.crashed);
  EXPECT_FALSE(out.failure.empty());
  // Acceptance bar from the issue: the minimal reproducer has at most six
  // states across both automata (empirically it reaches two).
  EXPECT_LE(out.scenario.totalStates(), 6u);
  // The shrinker pins the exposing formula into the scenario property.
  EXPECT_TRUE(out.options.propertyOnly);
  EXPECT_FALSE(out.scenario.property.empty());
  // The shrunk scenario still fails the oracle (and only under injection).
  EXPECT_FALSE(
      checkOracle(OracleId::O1CheckerAgreement, out.scenario, out.options)
          .ok);
  OracleOptions noBug = out.options;
  noBug.injectBug = BugInjection::None;
  EXPECT_TRUE(
      checkOracle(OracleId::O1CheckerAgreement, out.scenario, noBug).ok);
}

TEST(FuzzReproducer, WriteParseRoundTripPreservesScenario) {
  const Scenario s = generateScenario(5);
  const Reproducer orig{OracleId::O3VerdictSound, 5, s, ""};
  const std::string text = writeReproducer(orig);
  const Reproducer back = parseReproducer(text, "roundtrip");
  EXPECT_EQ(back.oracle, OracleId::O3VerdictSound);
  EXPECT_EQ(back.seed, 5u);
  EXPECT_EQ(back.scenario.property, s.property);
  EXPECT_EQ(canonicalText(back.scenario.hidden), canonicalText(s.hidden));
  EXPECT_EQ(canonicalText(back.scenario.context), canonicalText(s.context));
  EXPECT_TRUE(back.injectBug.empty());
}

TEST(FuzzReproducer, InjectBugHeaderRoundTripsAndDrivesReplay) {
  OracleOptions opts;
  opts.injectBug = BugInjection::O1DeadlockAF;
  const auto seed = findInjectedFailure(opts);
  ASSERT_TRUE(seed.has_value());
  const ShrinkOutcome out =
      shrinkScenario(generateScenario(*seed), OracleId::O1CheckerAgreement,
                     opts);

  const Reproducer orig{OracleId::O1CheckerAgreement, *seed, out.scenario,
                        toString(BugInjection::O1DeadlockAF)};
  const std::string text = writeReproducer(orig);
  EXPECT_NE(text.find("# inject-bug: o1-deadlock-af"), std::string::npos);

  const Reproducer back = parseReproducer(text, "selftest");
  EXPECT_EQ(back.injectBug, "o1-deadlock-af");
  // replayReproducer applies the recorded injection automatically, so the
  // self-test reproducer keeps reproducing under default options...
  OracleOptions replayOpts;
  replayOpts.propertyOnly = !back.scenario.property.empty();
  EXPECT_FALSE(replayReproducer(back, replayOpts).ok);
  // ...while the same payload without the header is clean.
  Reproducer noHeader = back;
  noHeader.injectBug.clear();
  EXPECT_TRUE(replayReproducer(noHeader, replayOpts).ok);
}

TEST(FuzzReproducer, GarbledHeadersAreRejected) {
  EXPECT_THROW(parseReproducer("signals {}\n", "x"), std::invalid_argument);
  EXPECT_THROW(
      parseReproducer("# mui fuzz reproducer v1\nsignals {}\n", "x"),
      std::invalid_argument);  // missing oracle header
  EXPECT_THROW(parseReproducer(
                   "# mui fuzz reproducer v1\n# oracle: O7\nsignals {}\n",
                   "x"),
               std::invalid_argument);
  EXPECT_THROW(
      parseReproducer("# mui fuzz reproducer v1\n# oracle: O1\n"
                      "# inject-bug: nonsense\nsignals {}\n",
                      "x"),
      std::invalid_argument);
}

TEST(FuzzCampaign, SummaryIsDeterministicAcrossRunsAndJobCounts) {
  FuzzOptions opts;
  opts.seed = 7;
  opts.runs = 25;
  const std::string one = renderFuzzSummary(runCampaign(opts));
  const std::string two = renderFuzzSummary(runCampaign(opts));
  EXPECT_EQ(one, two);
  opts.jobs = 4;
  const std::string parallel = renderFuzzSummary(runCampaign(opts));
  EXPECT_EQ(one, parallel);
  EXPECT_NE(one.find("clean: no oracle violations"), std::string::npos);
}

TEST(FuzzCampaign, InjectedBugProducesShrunkO1Findings) {
  FuzzOptions opts;
  opts.seed = 1;
  opts.runs = 50;
  opts.oracles = {OracleId::O1CheckerAgreement};
  opts.oracle.injectBug = BugInjection::O1DeadlockAF;
  const FuzzReport report = runCampaign(opts);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.executed, 50u);
  ASSERT_FALSE(report.findings.empty());
  for (const FuzzFinding& f : report.findings) {
    EXPECT_EQ(f.oracle, OracleId::O1CheckerAgreement);
    EXPECT_LE(f.shrunkStates, 6u);
    // The reproducer records the injection so replay self-applies it.
    EXPECT_NE(f.reproducer.find("# inject-bug: o1-deadlock-af"),
              std::string::npos);
    const Reproducer r = parseReproducer(f.reproducer, "campaign");
    OracleOptions replayOpts;
    replayOpts.propertyOnly = !r.scenario.property.empty();
    EXPECT_FALSE(replayReproducer(r, replayOpts).ok)
        << "finding at seed " << f.scenarioSeed << " does not reproduce";
  }
  const std::string summary = renderFuzzSummary(report);
  EXPECT_NE(summary.find("FINDING O1"), std::string::npos);
  EXPECT_NE(summary.find("violations="), std::string::npos);
}

TEST(FuzzCampaign, OracleSubsetOnlyRunsRequestedOracles) {
  FuzzOptions opts;
  opts.seed = 3;
  opts.runs = 5;
  opts.oracles = {OracleId::O4IncrementalCompose,
                  OracleId::O5VerdictInvariance};
  const FuzzReport report = runCampaign(opts);
  EXPECT_EQ(report.checks.size(), 2u);
  EXPECT_EQ(report.checks.at("O4"), 5u);
  EXPECT_EQ(report.checks.at("O5"), 5u);
  EXPECT_EQ(report.checks.count("O1"), 0u);
  EXPECT_TRUE(report.clean());
}

}  // namespace
}  // namespace mui::fuzz
