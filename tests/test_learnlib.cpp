// Tests for the regular-inference baseline (paper Sec. 6): DFA utilities,
// Angluin's L* convergence against a perfect teacher and against the
// W-method conformance oracle, query accounting, and black-box checking
// verdicts — including agreement with the chaotic-closure verifier's ground
// truth.

#include <gtest/gtest.h>

#include "automata/compose.hpp"
#include "automata/random.hpp"
#include "ctl/counterexample.hpp"
#include "helpers.hpp"
#include "learnlib/bbc.hpp"
#include "learnlib/lstar.hpp"
#include "muml/shuttle.hpp"
#include "testing/legacy.hpp"
#include "util/rng.hpp"

namespace mui::learnlib {
namespace {

namespace sh = muml::shuttle;
using test::Tables;

TEST(Dfa, BasicsAndAccessWords) {
  // a-cycle of length 2 with an absorbing reject sink on b from state 1.
  Dfa d(3, 2, 0);
  d.setAccepting(0, true);
  d.setAccepting(1, true);
  d.setTransition(0, 0, 1);
  d.setTransition(0, 1, 0);
  d.setTransition(1, 0, 0);
  d.setTransition(1, 1, 2);
  d.setTransition(2, 0, 2);
  d.setTransition(2, 1, 2);
  EXPECT_TRUE(d.accepts({0, 0}));
  EXPECT_TRUE(d.accepts({1, 1}));
  EXPECT_FALSE(d.accepts({0, 1}));
  EXPECT_FALSE(d.accepts({0, 1, 0}));  // sink absorbs
  const auto access = d.accessWords();
  EXPECT_TRUE(access[0].empty());
  EXPECT_EQ(access[1], (Word{0}));
  EXPECT_EQ(access[2], (Word{0, 1}));
}

TEST(Dfa, CharacterizationSetSeparatesStates) {
  Dfa d(3, 2, 0);
  d.setAccepting(0, true);
  d.setAccepting(1, true);
  d.setTransition(0, 0, 1);
  d.setTransition(0, 1, 0);
  d.setTransition(1, 0, 0);
  d.setTransition(1, 1, 2);
  d.setTransition(2, 0, 2);
  d.setTransition(2, 1, 2);
  const auto w = d.characterizationSet();
  // Every pair of states must be separated by some suffix.
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = a + 1; b < 3; ++b) {
      bool separated = false;
      for (const auto& suffix : w) {
        std::size_t x = a, y = b;
        for (Symbol s : suffix) {
          x = d.next(x, s);
          y = d.next(y, s);
        }
        separated = separated || (d.accepting(x) != d.accepting(y));
      }
      EXPECT_TRUE(separated) << a << " vs " << b;
    }
  }
}

TEST(Dfa, Equivalence) {
  Dfa a(1, 1, 0);
  a.setAccepting(0, true);
  a.setTransition(0, 0, 0);
  Dfa b(2, 1, 0);  // same language, redundant state
  b.setAccepting(0, true);
  b.setAccepting(1, true);
  b.setTransition(0, 0, 1);
  b.setTransition(1, 0, 0);
  EXPECT_TRUE(a.equivalent(b));
  b.setAccepting(1, false);
  EXPECT_FALSE(a.equivalent(b));
}

TEST(MembershipOracleTest, QueriesExecutableTracesAndCaches) {
  Tables t;
  testing::AutomatonLegacy legacy(sh::correctRearLegacy(t.signals, t.props));
  const auto alphabet = automata::makeAlphabet(
      legacy.inputs(), legacy.outputs(),
      automata::InteractionMode::AtMostOneSignal);
  LegacyMembershipOracle oracle(legacy, alphabet);

  // Locate symbols.
  const auto symOf = [&](const automata::Interaction& x) {
    for (Symbol a = 0; a < alphabet.size(); ++a) {
      if (alphabet[a] == x) return a;
    }
    throw std::logic_error("symbol not found");
  };
  const Symbol idle = symOf({});
  automata::Interaction propose;
  propose.out.set(t.signals->intern(sh::kConvoyProposal));
  const Symbol prop = symOf(propose);
  automata::Interaction start;
  start.in.set(t.signals->intern(sh::kStartConvoy));
  const Symbol st = symOf(start);

  EXPECT_TRUE(oracle.member({}));
  EXPECT_TRUE(oracle.member({idle, prop, st}));
  EXPECT_FALSE(oracle.member({prop}));      // proposes only after the idle tick
  EXPECT_FALSE(oracle.member({st}));        // unsolicited startConvoy refused
  const auto queriesBefore = oracle.queries();
  EXPECT_TRUE(oracle.member({idle, prop, st}));  // cached
  EXPECT_EQ(oracle.queries(), queriesBefore);
}

class LStarConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LStarConvergence, LearnsTheHiddenLanguageExactly) {
  Tables t;
  automata::RandomSpec spec;
  spec.states = 5;
  spec.inputs = 2;
  spec.outputs = 1;
  spec.seed = GetParam();
  spec.name = "hid";
  const auto hidden = automata::randomAutomaton(spec, t.signals, t.props);
  const auto alphabet = automata::makeAlphabet(
      hidden.inputs(), hidden.outputs(),
      automata::InteractionMode::AtMostOneSignal);

  testing::AutomatonLegacy legacy(hidden);
  LegacyMembershipOracle oracle(legacy, alphabet);
  PerfectEquivalenceOracle teacher(hidden, alphabet);
  LStar learner(oracle, alphabet.size());
  const Dfa result = learner.learn(teacher);

  // The teacher finds no counterexample against the final hypothesis.
  EXPECT_FALSE(teacher.findCounterexample(result).has_value());
  EXPECT_GT(oracle.queries(), 0u);
  EXPECT_GE(learner.stats().equivalenceQueries, 1u);
  // Spot check on random words.
  util::Rng rng(GetParam() + 500);
  for (int i = 0; i < 200; ++i) {
    Word w;
    const std::size_t len = rng.below(7);
    for (std::size_t j = 0; j < len; ++j) {
      w.push_back(static_cast<Symbol>(rng.below(alphabet.size())));
    }
    EXPECT_EQ(result.accepts(w), oracle.member(w));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LStarConvergence,
                         ::testing::Range<std::uint64_t>(1, 9));

class RivestSchapire : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RivestSchapire, ConvergesLikeAllPrefixesWithASmallerTable) {
  Tables t;
  automata::RandomSpec spec;
  spec.states = 7;
  spec.inputs = 2;
  spec.outputs = 2;
  spec.seed = GetParam();
  spec.name = "hid";
  const auto hidden = automata::randomAutomaton(spec, t.signals, t.props);
  const auto alphabet = automata::makeAlphabet(
      hidden.inputs(), hidden.outputs(),
      automata::InteractionMode::AtMostOneSignal);

  const auto runWith = [&](CeStrategy strategy) {
    testing::AutomatonLegacy legacy(hidden);
    LegacyMembershipOracle oracle(legacy, alphabet);
    PerfectEquivalenceOracle teacher(hidden, alphabet);
    LStar learner(oracle, alphabet.size(), strategy);
    const Dfa result = learner.learn(teacher);
    EXPECT_FALSE(teacher.findCounterexample(result).has_value());
    return std::make_pair(learner.stats(), oracle.queries());
  };
  const auto [apStats, apQueries] = runWith(CeStrategy::AllPrefixes);
  const auto [rsStats, rsQueries] = runWith(CeStrategy::RivestSchapire);
  // Both converge to a correct model; Rivest–Schapire keeps the row set
  // (and usually the query count) no larger than Angluin's strategy.
  EXPECT_LE(rsStats.tableRows, apStats.tableRows);
  EXPECT_GT(rsQueries, 0u);
  (void)apQueries;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RivestSchapire,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(WMethod, DrivesLStarToTheCorrectModel) {
  Tables t;
  const auto hidden = sh::correctRearLegacy(t.signals, t.props);
  const auto alphabet = automata::makeAlphabet(
      hidden.inputs(), hidden.outputs(),
      automata::InteractionMode::AtMostOneSignal);
  testing::AutomatonLegacy legacy(hidden);
  LegacyMembershipOracle oracle(legacy, alphabet);
  // Bound: 6 real states + rejecting sink.
  WMethodOracle conformance(oracle, 7);
  LStar learner(oracle, alphabet.size());
  const Dfa result = learner.learn(conformance);

  // Validate against the white-box teacher.
  PerfectEquivalenceOracle teacher(hidden, alphabet);
  EXPECT_FALSE(teacher.findCounterexample(result).has_value());
  // The whole component had to be learned — 6 states plus the sink.
  EXPECT_EQ(result.stateCount(), 7u);
}

TEST(WMethod, InsufficientStateBoundMissesDeepDifferences) {
  // The W-method's soundness assumption in action (paper Sec. 6: the
  // conformance suite is exhaustive only "up to the assumed state bound").
  // The hidden component accepts exactly a^i for i <= 3; a hypothesis with
  // one all-accepting state survives every suite word of length <= bound-1.
  Tables t;
  automata::Automaton hid2(t.signals, t.props, "deep2");
  hid2.addOutput("a2");
  const automata::Interaction doA2 = test::ia(*t.signals, {}, {"a2"});
  for (int i = 0; i <= 3; ++i) hid2.addState("d" + std::to_string(i));
  hid2.markInitial(0);
  for (automata::StateId s = 0; s < 3; ++s) {
    hid2.addTransition(s, doA2, s + 1);
  }
  const auto alphabet = automata::makeAlphabet(
      hid2.inputs(), hid2.outputs(),
      automata::InteractionMode::AtMostOneSignal);
  // Restrict to the single "emit a2" symbol: drop the idle interaction so
  // the language is exactly {a2^i : i <= 3}.
  std::vector<automata::Interaction> sigma;
  for (const auto& x : alphabet) {
    if (!x.idle()) sigma.push_back(x);
  }
  ASSERT_EQ(sigma.size(), 1u);

  {
    // Bound 3 (< 4 real states + sink): the suite never reaches a2^4, the
    // one-state all-accepting hypothesis survives — and is wrong.
    testing::AutomatonLegacy legacy(hid2);
    LegacyMembershipOracle oracle(legacy, sigma);
    WMethodOracle weak(oracle, 3);
    LStar learner(oracle, sigma.size());
    const Dfa result = learner.learn(weak);
    EXPECT_TRUE(result.accepts({0, 0, 0, 0}));   // claims a2^4 executable
    EXPECT_FALSE(oracle.member({0, 0, 0, 0}));  // it is not
  }
  {
    // A sufficient bound exposes the difference and forces the full model.
    testing::AutomatonLegacy legacy(hid2);
    LegacyMembershipOracle oracle(legacy, sigma);
    WMethodOracle strong(oracle, 5);
    LStar learner(oracle, sigma.size());
    const Dfa result = learner.learn(strong);
    EXPECT_FALSE(result.accepts({0, 0, 0, 0}));
    EXPECT_TRUE(result.accepts({0, 0, 0}));
    PerfectEquivalenceOracle teacher(hid2, sigma);
    EXPECT_FALSE(teacher.findCounterexample(result).has_value());
  }
}

TEST(Bbc, ShuttleVerdicts) {
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);

  BbcConfig cfg;
  cfg.stateBound = 7;
  testing::AutomatonLegacy good(sh::correctRearLegacy(t.signals, t.props));
  const auto okRes = BlackBoxChecker(front, good, cfg).run();
  EXPECT_EQ(okRes.verdict, BbcVerdict::ProvenCorrectUpToBound)
      << okRes.explanation;
  EXPECT_GT(okRes.membershipQueries, 0u);

  testing::AutomatonLegacy bad(sh::faultyRearLegacy(t.signals, t.props));
  BbcConfig cfgBad;
  cfgBad.stateBound = 4;
  const auto badRes = BlackBoxChecker(front, bad, cfgBad).run();
  EXPECT_EQ(badRes.verdict, BbcVerdict::RealError) << badRes.explanation;
}

class BbcAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BbcAgreement, MatchesGroundTruthOnRandomSystems) {
  Tables t;
  automata::RandomSpec spec;
  spec.states = 4;
  spec.inputs = 1;
  spec.outputs = 1;
  spec.seed = GetParam();
  spec.name = "lg";
  const auto hidden = automata::randomAutomaton(spec, t.signals, t.props);
  const auto context = automata::mirrored(
      automata::subAutomaton(hidden, 50, GetParam() + 9, "sub"), "ctx");

  const auto truth =
      ctl::verify(automata::compose(context, hidden).automaton, nullptr, {});

  testing::AutomatonLegacy legacy(hidden);
  BbcConfig cfg;
  cfg.stateBound = spec.states + 1;
  const auto res = BlackBoxChecker(context, legacy, cfg).run();
  ASSERT_NE(res.verdict, BbcVerdict::Inconclusive) << res.explanation;
  EXPECT_EQ(res.verdict == BbcVerdict::ProvenCorrectUpToBound, truth.holds)
      << res.explanation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BbcAgreement,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace mui::learnlib
