// Tests for parallel composition (paper Def. 3): synchronous matching,
// label union, reachability restriction, n-ary folding, and run projection.

#include <gtest/gtest.h>

#include "automata/compose.hpp"
#include "automata/random.hpp"
#include "helpers.hpp"

namespace mui::automata {
namespace {

using ARun = Run;
using test::Tables;
using test::ia;

/// Sender: emits `msg` then waits for `ok`. Receiver: consumes `msg` then
/// emits `ok`. Together they form a closed two-step handshake.
struct Handshake {
  Tables t;
  Automaton sender;
  Automaton receiver;

  Handshake()
      : sender(t.signals, t.props, "snd"), receiver(t.signals, t.props, "rcv") {
    sender.addOutput("msg");
    sender.addInput("ok");
    sender.addState("s0");
    sender.addState("s1");
    sender.markInitial(0);
    sender.labelWithStateName(0);
    sender.labelWithStateName(1);
    sender.addTransition(0, ia(*t.signals, {}, {"msg"}), 1);
    sender.addTransition(1, ia(*t.signals, {"ok"}, {}), 0);

    receiver.addInput("msg");
    receiver.addOutput("ok");
    receiver.addState("r0");
    receiver.addState("r1");
    receiver.markInitial(0);
    receiver.labelWithStateName(0);
    receiver.labelWithStateName(1);
    receiver.addTransition(0, ia(*t.signals, {"msg"}, {}), 1);
    receiver.addTransition(1, ia(*t.signals, {}, {"ok"}), 0);
  }
};

TEST(Compose, SynchronousHandshake) {
  Handshake h;
  const Product p = compose(h.sender, h.receiver);
  // Lockstep: exactly the two joint states (s0,r0) and (s1,r1) are reachable.
  EXPECT_EQ(p.automaton.stateCount(), 2u);
  EXPECT_EQ(p.automaton.transitionCount(), 2u);
  EXPECT_EQ(p.automaton.initialStates().size(), 1u);
  // The joint labels are the unions of the component interactions.
  const StateId init = p.automaton.initialStates()[0];
  const auto& ts = p.automaton.transitionsFrom(init);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].label, ia(*h.t.signals, {"msg"}, {"msg"}));
}

TEST(Compose, UnconsumedMessageBlocksSynchronization) {
  // A receiver that has msg in its input alphabet but never takes it:
  // synchronous communication means the send cannot fire (Def. 3's matching
  // (A' ∩ O) = B fails), so the composition deadlocks immediately.
  Tables t2;
  Automaton snd(t2.signals, t2.props, "snd");
  snd.addOutput("msg");
  snd.addState("s0");
  snd.markInitial(0);
  snd.addTransition(0, ia(*t2.signals, {}, {"msg"}), 0);
  Automaton rcv(t2.signals, t2.props, "rcv");
  rcv.addInput("msg");
  rcv.addState("r0");
  rcv.markInitial(0);
  rcv.addTransition(0, test::idle(), 0);
  const Product p = compose(snd, rcv);
  ASSERT_EQ(p.automaton.stateCount(), 1u);
  EXPECT_TRUE(
      p.automaton.transitionsFrom(p.automaton.initialStates()[0]).empty());
}

TEST(Compose, EnvironmentFacingOutputsPassThrough) {
  // An output outside the partner's input alphabet is not subject to the
  // matching condition (open system; DESIGN.md §6).
  Tables t;
  Automaton a(t.signals, t.props, "a");
  a.addOutput("ext");  // nobody reads this
  a.addState("a0");
  a.markInitial(0);
  a.addTransition(0, ia(*t.signals, {}, {"ext"}), 0);
  Automaton b(t.signals, t.props, "b");
  b.addInput("other");
  b.addState("b0");
  b.markInitial(0);
  b.addTransition(0, test::idle(), 0);
  const Product p = compose(a, b);
  const StateId init = p.automaton.initialStates()[0];
  ASSERT_EQ(p.automaton.transitionsFrom(init).size(), 1u);
  EXPECT_EQ(p.automaton.transitionsFrom(init)[0].label,
            ia(*t.signals, {}, {"ext"}));
}

TEST(Compose, RequiresComposability) {
  Handshake h;
  Automaton clash(h.t.signals, h.t.props, "clash");
  clash.addOutput("msg");  // output overlap with sender
  clash.addState("c0");
  clash.markInitial(0);
  EXPECT_THROW(compose(h.sender, clash), std::invalid_argument);

  // Different tables are rejected too.
  Tables other;
  Automaton foreign(other.signals, other.props, "foreign");
  foreign.addState("f0");
  foreign.markInitial(0);
  EXPECT_THROW(compose(h.sender, foreign), std::invalid_argument);
}

TEST(Compose, LabelsAreUnioned) {
  Handshake h;
  const Product p = compose(h.sender, h.receiver);
  const StateId init = p.automaton.initialStates()[0];
  const auto s0 = h.t.props->lookup("snd.s0");
  const auto r0 = h.t.props->lookup("rcv.r0");
  ASSERT_TRUE(s0 && r0);
  EXPECT_TRUE(p.automaton.labels(init).test(*s0));
  EXPECT_TRUE(p.automaton.labels(init).test(*r0));
}

TEST(Compose, OrthogonalComponentsInterleaveInLockstep) {
  // Two components with disjoint, non-communicating alphabets: every joint
  // step combines one transition of each (synchronous execution).
  Tables t;
  Automaton a(t.signals, t.props, "a");
  a.addOutput("x");
  a.addState("a0");
  a.addState("a1");
  a.markInitial(0);
  a.addTransition(0, ia(*t.signals, {}, {"x"}), 1);
  a.addTransition(1, test::idle(), 1);

  Automaton b(t.signals, t.props, "b");
  b.addOutput("y");
  b.addState("b0");
  b.addState("b1");
  b.markInitial(0);
  b.addTransition(0, ia(*t.signals, {}, {"y"}), 1);
  b.addTransition(1, test::idle(), 1);

  ASSERT_TRUE(a.orthogonalTo(b));
  const Product p = compose(a, b);
  // Both must move each step: (a0,b0) -> (a1,b1) -> (a1,b1).
  EXPECT_EQ(p.automaton.stateCount(), 2u);
  const StateId init = p.automaton.initialStates()[0];
  const auto& ts = p.automaton.transitionsFrom(init);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].label, ia(*t.signals, {}, {"x", "y"}));
}

TEST(Compose, NaryFoldIsOrderInsensitiveUpToSize) {
  Tables t;
  RandomSpec specA;
  specA.states = 4;
  specA.inputs = 1;
  specA.outputs = 1;
  specA.densityPct = 30;
  specA.seed = 11;
  specA.name = "ra";
  RandomSpec specB = specA;
  specB.states = 3;
  specB.seed = 22;
  specB.name = "rb";
  RandomSpec specC = specB;
  specC.seed = 33;
  specC.name = "rc";
  const Automaton a = randomAutomaton(specA, t.signals, t.props);
  const Automaton b = randomAutomaton(specB, t.signals, t.props);
  const Automaton c = randomAutomaton(specC, t.signals, t.props);
  const Product abc = composeAll({&a, &b, &c});
  const Product cab = composeAll({&c, &a, &b});
  EXPECT_EQ(abc.automaton.stateCount(), cab.automaton.stateCount());
  EXPECT_EQ(abc.automaton.transitionCount(), cab.automaton.transitionCount());
  EXPECT_EQ(abc.componentNames.size(), 3u);
  EXPECT_EQ(abc.origins.size(), abc.automaton.stateCount());
}

TEST(Compose, ProjectionRecoversComponentRuns) {
  Handshake h;
  const Product p = compose(h.sender, h.receiver);
  const StateId init = p.automaton.initialStates()[0];
  ARun run;
  run.states.push_back(init);
  StateId cur = init;
  for (int i = 0; i < 3; ++i) {
    const auto& ts = p.automaton.transitionsFrom(cur);
    ASSERT_FALSE(ts.empty());
    run.labels.push_back(ts[0].label);
    run.states.push_back(ts[0].to);
    cur = ts[0].to;
  }
  const ARun sndRun = p.projectRun(run, 0);
  const ARun rcvRun = p.projectRun(run, 1);
  EXPECT_TRUE(h.sender.admitsRun(sndRun));
  EXPECT_TRUE(h.receiver.admitsRun(rcvRun));
  // Projections keep only the component's own signals.
  EXPECT_EQ(sndRun.labels[0], ia(*h.t.signals, {}, {"msg"}));
  EXPECT_EQ(rcvRun.labels[0], ia(*h.t.signals, {"msg"}, {}));
}

TEST(Compose, RenderRunPaperStyle) {
  Handshake h;
  const Product p = compose(h.sender, h.receiver);
  const StateId init = p.automaton.initialStates()[0];
  ARun run;
  run.states.push_back(init);
  const auto& ts = p.automaton.transitionsFrom(init);
  ASSERT_FALSE(ts.empty());
  run.labels.push_back(ts[0].label);
  run.states.push_back(ts[0].to);
  const std::string text = p.renderRun(run);
  EXPECT_NE(text.find("snd.s0, rcv.r0"), std::string::npos);
  EXPECT_NE(text.find("snd.msg!, rcv.msg?"), std::string::npos);
  EXPECT_NE(text.find("snd.s1, rcv.r1"), std::string::npos);

  // Deadlock rendering.
  ARun dead = run;
  dead.deadlock = true;  // states == labels sizes match after this trim
  dead.states.pop_back();
  const std::string dtext = p.renderRun(dead);
  EXPECT_NE(dtext.find("[blocked]"), std::string::npos);
  EXPECT_NE(dtext.find("DEADLOCK"), std::string::npos);
}

}  // namespace
}  // namespace mui::automata
