// Tests for the CCTL AST, parser, NNF, ACTL classification, and the
// chaotic-closure formula weakening (paper Sec. 2.7).

#include <gtest/gtest.h>

#include "ctl/parser.hpp"
#include "util/parse.hpp"

namespace mui::ctl {
namespace {

std::string roundTrip(std::string_view text) {
  return parseFormula(text)->toString();
}

TEST(Parser, BasicShapes) {
  EXPECT_EQ(roundTrip("true"), "true");
  EXPECT_EQ(roundTrip("rearRole.convoy"), "rearRole.convoy");
  EXPECT_EQ(roundTrip("!(a && b)"), "!((a && b))");
  EXPECT_EQ(roundTrip("AG ! (rearRole.convoy && frontRole.noConvoy)"),
            "AG (!((rearRole.convoy && frontRole.noConvoy)))");
  EXPECT_EQ(roundTrip("AG (p1 -> AF[1,5] p2)"),
            "AG ((p1 -> AF[1,5] (p2)))");
  EXPECT_EQ(roundTrip("A[a U[2,4] b]"), "A[a U[2,4] b]");
  EXPECT_EQ(roundTrip("E[a U b]"), "E[a U b]");
  EXPECT_EQ(roundTrip("AF[3,inf] p"), "AF[3,inf] (p)");
  EXPECT_EQ(roundTrip("deadlock || x"), "(deadlock || x)");
  EXPECT_EQ(roundTrip("a -> b -> c"), "(a -> (b -> c))");  // right assoc
  EXPECT_EQ(roundTrip("a || b && c"), "(a || (b && c))");  // && binds tighter
  EXPECT_EQ(roundTrip("shuttle.noConvoy::wait"), "shuttle.noConvoy::wait");
}

TEST(Parser, ParseIsStableUnderToString) {
  for (const char* f :
       {"AG (p1 -> AF[1,5] p2)", "A[a U[2,4] b]", "!(a || !b) && EF c",
        "AG !(x && y) && AG !deadlock", "EG[0,7] (a -> b)"}) {
    const std::string once = roundTrip(f);
    EXPECT_EQ(roundTrip(once), once) << f;
  }
}

TEST(Parser, Errors) {
  EXPECT_THROW(parseFormula("AG"), util::ParseError);
  EXPECT_THROW(parseFormula("(a && b"), util::ParseError);
  EXPECT_THROW(parseFormula("a b"), util::ParseError);
  EXPECT_THROW(parseFormula("AF[5,2] p"), util::ParseError);  // hi < lo
  EXPECT_THROW(parseFormula("A[a W b]"), util::ParseError);
  EXPECT_THROW(parseFormula(""), util::ParseError);
}

TEST(NNF, PushesNegationsToAtoms) {
  EXPECT_EQ(toNNF(parseFormula("!(a && b)"))->toString(),
            "(!(a) || !(b))");
  EXPECT_EQ(toNNF(parseFormula("!AG p"))->toString(), "EF (!(p))");
  EXPECT_EQ(toNNF(parseFormula("!AF[1,5] p"))->toString(),
            "EG[1,5] (!(p))");
  EXPECT_EQ(toNNF(parseFormula("!(a -> b)"))->toString(), "(a && !(b))");
  EXPECT_EQ(toNNF(parseFormula("!!a"))->toString(), "a");
  EXPECT_EQ(toNNF(parseFormula("!EX p"))->toString(), "AX (!(p))");
  EXPECT_THROW(toNNF(parseFormula("!A[a U b]")), std::invalid_argument);
}

TEST(ACTL, Classification) {
  EXPECT_TRUE(parseFormula("AG !(a && b)")->isACTL());
  EXPECT_TRUE(parseFormula("AG (p1 -> AF[1,5] p2)")->isACTL());
  EXPECT_TRUE(parseFormula("A[a U b]")->isACTL());
  EXPECT_TRUE(parseFormula("!EF bad")->isACTL());  // ≡ AG !bad
  EXPECT_FALSE(parseFormula("EF good")->isACTL());
  EXPECT_FALSE(parseFormula("AG EF reset")->isACTL());
  EXPECT_FALSE(parseFormula("!AG p")->isACTL());
}

TEST(Weakening, ChaosStatesSatisfyAllLiterals) {
  // AG ¬(a ∧ b) weakens to AG((¬a ∨ p_chaos) ∨ (¬b ∨ p_chaos)).
  const auto w = weakenForChaos(parseFormula("AG !(a && b)"), "p_chaos");
  const std::string s = w->toString();
  EXPECT_NE(s.find("p_chaos"), std::string::npos);
  EXPECT_NE(s.find("!(a)"), std::string::npos);
  // Positive literals are weakened as well.
  const auto w2 = weakenForChaos(parseFormula("AG (p -> AF[1,4] q)"));
  const std::string s2 = w2->toString();
  // NNF of p -> ... is !p ∨ ...; both !p and q pick up the disjunct.
  EXPECT_NE(s2.find("(!(p) || p_chaos)"), std::string::npos);
  EXPECT_NE(s2.find("(q || p_chaos)"), std::string::npos);
  // The deadlock atom is structural and stays unweakened.
  const auto w3 = weakenForChaos(parseFormula("AG !deadlock"));
  EXPECT_EQ(w3->toString(), "AG (!(deadlock))");
}

TEST(Bound, Defaults) {
  const auto f = parseFormula("AF p");
  EXPECT_EQ(f->bound.lo, 0u);
  EXPECT_FALSE(f->bound.bounded());
  const auto g = parseFormula("AF[2,9] p");
  EXPECT_EQ(g->bound.lo, 2u);
  EXPECT_EQ(g->bound.hi, 9u);
}

}  // namespace
}  // namespace mui::ctl
