// mui::engine — manifest parsing, thread pool, caches, and whole-batch
// behavior over the shipped models: concurrent verdicts must match the
// sequential ones, deadlines and broken jobs must stay isolated to their
// row, and duplicate jobs must be served from the result cache.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "automata/rename.hpp"
#include "engine/cache.hpp"
#include "engine/engine.hpp"
#include "engine/manifest.hpp"
#include "engine/report.hpp"
#include "engine/thread_pool.hpp"
#include "muml/integration.hpp"
#include "muml/loader.hpp"
#include "obs/journal.hpp"
#include "obs/stats.hpp"
#include "synthesis/verifier.hpp"
#include "testing/legacy.hpp"
#include "util/parse.hpp"

namespace {

using namespace mui;
using engine::Job;
using engine::JobStatus;

const std::string kWatchdog = std::string(MUI_MODELS_DIR) + "/watchdog.muml";
const std::string kRailcab = std::string(MUI_MODELS_DIR) + "/railcab.muml";

Job watchdogJob(std::string name, std::string hidden) {
  Job job;
  job.name = std::move(name);
  job.modelPath = kWatchdog;
  job.pattern = "Watchdog";
  job.legacyRole = "device";
  job.hidden = std::move(hidden);
  return job;
}

Job railcabJob(std::string name, std::string hidden) {
  Job job;
  job.name = std::move(name);
  job.modelPath = kRailcab;
  job.pattern = "DistanceCoordination";
  job.legacyRole = "rearRole";
  job.hidden = std::move(hidden);
  return job;
}

// ---------------------------------------------------------------- manifest

TEST(Manifest, DefaultsOverridesAndAutoNames) {
  const auto jobs = engine::parseManifest(
      "# a campaign\n"
      "default model=m.muml pattern=P role=r\n"
      "job hidden=a\n"
      "job name=second hidden=b timeout-ms=250 max-iterations=7\n"
      "job model=other.muml pattern=Q role=s hidden=c  // trailing comment\n");
  ASSERT_EQ(jobs.size(), 3u);

  EXPECT_EQ(jobs[0].name, "job1");  // auto-named by position
  EXPECT_EQ(jobs[0].modelPath, "m.muml");
  EXPECT_EQ(jobs[0].pattern, "P");
  EXPECT_EQ(jobs[0].legacyRole, "r");
  EXPECT_EQ(jobs[0].hidden, "a");
  EXPECT_EQ(jobs[0].timeoutMs, 0u);

  EXPECT_EQ(jobs[1].name, "second");
  EXPECT_EQ(jobs[1].timeoutMs, 250u);
  EXPECT_EQ(jobs[1].maxIterations, 7u);

  EXPECT_EQ(jobs[2].modelPath, "other.muml");  // per-job override wins
  EXPECT_EQ(jobs[2].pattern, "Q");
  EXPECT_EQ(jobs[2].legacyRole, "s");
}

TEST(Manifest, QuotedValuesCarrySpacesAndEscapes) {
  const auto jobs = engine::parseManifest(
      "job model=m pattern=P role=r hidden=h "
      "formula=\"AG (a -> \\\"b\\\" \\\\ c)\"\n");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].formula, "AG (a -> \"b\" \\ c)");
}

TEST(Manifest, RelativeModelPathsResolveAgainstBaseDir) {
  const auto jobs = engine::parseManifest(
      "job model=../models/m.muml pattern=P role=r hidden=h\n"
      "job model=/abs/m.muml pattern=P role=r hidden=h\n",
      "camp.manifest", "examples");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].modelPath, "models/m.muml");
  EXPECT_EQ(jobs[1].modelPath, "/abs/m.muml");  // absolute left alone
}

TEST(Manifest, ErrorsCarrySourceLineAndColumn) {
  try {
    engine::parseManifest("default model=m\njobs hidden=a\n", "camp.manifest");
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("camp.manifest:2:1:"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("expected 'job' or 'default'"),
              std::string::npos);
  }
}

TEST(Manifest, RejectsBadInput) {
  // Missing a required key.
  EXPECT_THROW(engine::parseManifest("job name=x pattern=P role=r hidden=h\n"),
               util::ParseError);
  // `name` makes no sense as a default.
  EXPECT_THROW(engine::parseManifest("default name=x\n"), util::ParseError);
  // Budgets must be non-negative integers.
  EXPECT_THROW(engine::parseManifest(
                   "job model=m pattern=P role=r hidden=h timeout-ms=soon\n"),
               util::ParseError);
  EXPECT_THROW(engine::parseManifest("job model=m pattern=P role=r hidden=h "
                                     "formula=\"AG unterminated\n"),
               util::ParseError);
  EXPECT_THROW(
      engine::parseManifest("job model=m pattern=P role=r hidden=h color=red\n"),
      util::ParseError);
}

TEST(Manifest, WriteRoundTrips) {
  std::vector<Job> jobs;
  jobs.push_back(watchdogJob("plain", "deviceCompliant"));
  Job fancy = railcabJob("fancy", "rearShipped");
  fancy.formula = "AG (a -> \"b\" \\ c)";
  fancy.timeoutMs = 1500;
  fancy.maxIterations = 42;
  jobs.push_back(fancy);

  const auto back = engine::parseManifest(engine::writeManifest(jobs));
  ASSERT_EQ(back.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(back[i].name, jobs[i].name);
    EXPECT_EQ(back[i].modelPath, jobs[i].modelPath);
    EXPECT_EQ(back[i].pattern, jobs[i].pattern);
    EXPECT_EQ(back[i].legacyRole, jobs[i].legacyRole);
    EXPECT_EQ(back[i].hidden, jobs[i].hidden);
    EXPECT_EQ(back[i].formula, jobs[i].formula);
    EXPECT_EQ(back[i].timeoutMs, jobs[i].timeoutMs);
    EXPECT_EQ(back[i].maxIterations, jobs[i].maxIterations);
  }
}

// ------------------------------------------------------------- thread pool

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> n{0};
  engine::ThreadPool pool(4);
  for (int i = 0; i < 200; ++i) pool.submit([&n] { ++n; });
  pool.wait();
  EXPECT_EQ(n.load(), 200);

  // The pool is reusable after wait().
  for (int i = 0; i < 50; ++i) pool.submit([&n] { ++n; });
  pool.wait();
  EXPECT_EQ(n.load(), 250);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  engine::ThreadPool pool(0);
  EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ThreadPool, ThrowingTaskDoesNotKillWorkers) {
  std::atomic<int> n{0};
  engine::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("stray"); });
  pool.wait();
  for (int i = 0; i < 20; ++i) pool.submit([&n] { ++n; });
  pool.wait();
  EXPECT_EQ(n.load(), 20);
}

// ------------------------------------------------------------------ caches

TEST(Fnv1a, SeparatesFieldsAndOrders) {
  EXPECT_EQ(engine::fnv1a(""), 14695981039346656037ull);  // empty = seed
  EXPECT_NE(engine::fnv1a("a"), engine::fnv1a("b"));
  EXPECT_NE(engine::fnv1a("b", engine::fnv1a("a")),
            engine::fnv1a("a", engine::fnv1a("b")));
}

TEST(TextCache, ServesPrimedContentAndThrowsOnMissingFile) {
  engine::TextCache texts;
  texts.prime("mem:x", "hello");
  EXPECT_EQ(texts.get("mem:x"), "hello");
  texts.prime("mem:x", "replaced");
  EXPECT_EQ(texts.get("mem:x"), "replaced");
  EXPECT_THROW(texts.get("/no/such/file.muml"), std::runtime_error);
}

TEST(ResultCache, CountsHitsAndMisses) {
  engine::ResultCache cache;
  engine::Job job;
  job.pattern = "P";
  job.legacyRole = "r";
  job.hidden = "h";
  const engine::JobKey key = engine::makeJobKey("model text", job, 0);
  EXPECT_EQ(key.hash, engine::fnv1a(key.material));
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  cache.store(key, engine::CachedOutcome{JobStatus::Proven, "ok", 3, 10, 5});
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status, JobStatus::Proven);
  EXPECT_EQ(hit->iterations, 3u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

// ------------------------------------------------------------ cancellation

TEST(Cancellation, AlwaysTrueHookYieldsCancelledVerdict) {
  const auto model = muml::loadModelFile(kWatchdog);
  const auto& pattern = model.patterns.at("Watchdog");
  const auto scenario = muml::makeIntegrationScenario(pattern, /*roleIdx=*/1,
                                                      model.signals,
                                                      model.props);
  mui::testing::AutomatonLegacy legacy(automata::withInstanceName(
      model.automata.at("deviceCompliant"), "device"));
  synthesis::IntegrationConfig cfg;
  cfg.property = scenario.property;
  cfg.cancelRequested = [] { return true; };
  const auto res = synthesis::runIntegration(scenario.context, legacy, cfg);
  EXPECT_EQ(res.verdict, synthesis::Verdict::Cancelled);
}

// ------------------------------------------------------------------- batch

/// 16 jobs over the two shipped models with known verdicts (including
/// duplicates the result cache should serve).
std::vector<Job> campaign16(std::vector<JobStatus>& expected) {
  const std::pair<const char*, JobStatus> watchdogCases[] = {
      {"deviceCompliant", JobStatus::Proven},
      {"deviceSlow", JobStatus::Proven},
      {"deviceCrawl", JobStatus::RealError},
      {"deviceMute", JobStatus::RealError},
      {"deviceDeaf", JobStatus::RealError}};
  const std::pair<const char*, JobStatus> railcabCases[] = {
      {"rearShipped", JobStatus::Proven}, {"rearFaulty", JobStatus::RealError}};

  std::vector<Job> jobs;
  expected.clear();
  for (int rep = 0; rep < 2; ++rep) {
    for (const auto& [hidden, status] : watchdogCases) {
      jobs.push_back(watchdogJob(std::string(hidden) + "-" +
                                     std::to_string(rep),
                                 hidden));
      expected.push_back(status);
    }
    for (const auto& [hidden, status] : railcabCases) {
      jobs.push_back(railcabJob(std::string(hidden) + "-" +
                                    std::to_string(rep),
                                hidden));
      expected.push_back(status);
    }
  }
  Job constraintOnly = watchdogJob("constraint-only", "deviceCompliant");
  constraintOnly.formula = "AG !monitor.escalated";
  jobs.push_back(constraintOnly);
  expected.push_back(JobStatus::Proven);
  Job budgeted = watchdogJob("budgeted", "deviceMute");
  budgeted.maxIterations = 100;
  jobs.push_back(budgeted);
  expected.push_back(JobStatus::RealError);
  return jobs;
}

TEST(Batch, ConcurrentVerdictsMatchSequential) {
  std::vector<JobStatus> expected;
  const auto jobs = campaign16(expected);
  ASSERT_GE(jobs.size(), 16u);

  engine::BatchOptions sequential;
  sequential.threads = 1;
  const auto seq = engine::runBatch(jobs, sequential);
  engine::BatchOptions concurrent;
  concurrent.threads = 4;
  const auto par = engine::runBatch(jobs, concurrent);

  ASSERT_EQ(seq.results.size(), jobs.size());
  ASSERT_EQ(par.results.size(), jobs.size());
  EXPECT_EQ(par.threads, 4u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(seq.results[i].status, expected[i]) << jobs[i].name;
    EXPECT_EQ(par.results[i].status, expected[i]) << jobs[i].name;
    EXPECT_EQ(par.results[i].job.name, jobs[i].name);  // manifest order kept
  }

  // The second repetition duplicates the first seven keys exactly, so a
  // sequential run serves at least those from the result cache.
  EXPECT_GE(seq.cacheHits, 7u);
  EXPECT_EQ(seq.cacheHits + seq.cacheMisses, jobs.size());
}

TEST(Batch, DeadlineJobTimesOutWithoutHurtingTheBatch) {
  std::vector<Job> jobs;
  Job impatient = railcabJob("impatient", "rearShipped");
  impatient.timeoutMs = 1;
  jobs.push_back(impatient);
  jobs.push_back(watchdogJob("fine", "deviceCompliant"));
  jobs.push_back(watchdogJob("broken", "deviceCrawl"));

  engine::BatchOptions options;
  options.threads = 2;
  const auto report = engine::runBatch(jobs, options);
  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_EQ(report.results[0].status, JobStatus::Timeout);
  EXPECT_NE(report.results[0].explanation.find("deadline"), std::string::npos);
  EXPECT_EQ(report.results[1].status, JobStatus::Proven);
  EXPECT_EQ(report.results[2].status, JobStatus::RealError);
  EXPECT_FALSE(report.allProven());
}

TEST(Batch, BrokenJobsBecomeEngineErrorRows) {
  std::vector<Job> jobs;
  Job missingFile = watchdogJob("missing-file", "deviceCompliant");
  missingFile.modelPath = "/no/such/model.muml";
  jobs.push_back(missingFile);
  Job badPattern = watchdogJob("bad-pattern", "deviceCompliant");
  badPattern.pattern = "NoSuchPattern";
  jobs.push_back(badPattern);
  Job badHidden = watchdogJob("bad-hidden", "deviceGhost");
  jobs.push_back(badHidden);
  jobs.push_back(watchdogJob("fine", "deviceCompliant"));

  engine::BatchOptions options;
  options.threads = 2;
  const auto report = engine::runBatch(jobs, options);
  ASSERT_EQ(report.results.size(), 4u);
  EXPECT_EQ(report.results[0].status, JobStatus::EngineError);
  EXPECT_NE(report.results[0].explanation.find("cannot open"),
            std::string::npos);
  EXPECT_EQ(report.results[1].status, JobStatus::EngineError);
  EXPECT_NE(report.results[1].explanation.find("NoSuchPattern"),
            std::string::npos);
  EXPECT_EQ(report.results[2].status, JobStatus::EngineError);
  EXPECT_EQ(report.results[3].status, JobStatus::Proven);
  EXPECT_EQ(report.count(JobStatus::EngineError), 3u);
}

TEST(Batch, ReportRenderingAndSummarySerialization) {
  std::vector<Job> jobs;
  jobs.push_back(watchdogJob("good", "deviceCompliant"));
  jobs.push_back(watchdogJob("bad", "deviceMute"));
  const auto report = engine::runBatch(jobs, {});

  const std::string table = engine::renderBatchReport(report);
  EXPECT_NE(table.find("good"), std::string::npos);
  EXPECT_NE(table.find("real-error"), std::string::npos);
  EXPECT_NE(table.find("batch: 2 jobs"), std::string::npos);

  const std::string jsonl = engine::writeBatchSummary(report);
  EXPECT_NE(jsonl.find("\"type\":\"job\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"batch\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"good\""), std::string::npos);
}

TEST(Batch, SummaryEscapesControlCharactersInJobNames) {
  // A hostile manifest name (embedded newline and quote) must not corrupt
  // the JSONL summary: every line stays one parseable JSON object.
  std::vector<Job> jobs;
  jobs.push_back(watchdogJob("evil\n\"name\"", "deviceCompliant"));
  const auto report = engine::runBatch(jobs, {});
  const std::string jsonl = engine::writeBatchSummary(report);
  EXPECT_NE(jsonl.find("evil\\n\\\"name\\\""), std::string::npos);
  std::istringstream in(jsonl);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(obs::parseFlatJson(line).has_value())
        << "unparseable summary line: " << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2u);  // one job row + the batch trailer
}

TEST(Batch, JournalCollectsJobAndBatchEvents) {
  std::vector<Job> jobs;
  jobs.push_back(watchdogJob("good", "deviceCompliant"));
  jobs.push_back(watchdogJob("bad", "deviceMute"));
  obs::Journal journal;
  engine::BatchOptions options;
  options.threads = 2;
  options.journal = &journal;
  const auto report = engine::runBatch(jobs, options);
  ASSERT_EQ(report.results.size(), 2u);

  // Per-run events (run_start/iteration/verdict) plus one "job" event per
  // job and one closing "batch" event, all aggregatable by mui stats.
  const auto stats = obs::aggregateJournals({journal.text()});
  EXPECT_EQ(stats.skipped, 0u);
  ASSERT_EQ(stats.runs.size(), 2u);
  for (const auto& run : stats.runs) {
    EXPECT_FALSE(run.verdict.empty()) << run.run;
    EXPECT_NE(run.worker.find("worker-"), std::string::npos) << run.run;
  }
  EXPECT_GT(stats.totalIterations, 0u);
  EXPECT_NE(journal.text().find("\"type\":\"batch\""), std::string::npos);
}

TEST(Batch, PrimedTextCacheRunsWithoutDisk) {
  engine::TextCache texts;
  texts.prime("mem:tiny",
              "rtsc a { output x; location l0; initial l0; l0 -> l0 : emit x; }\n"
              "rtsc b { input x; location m0; initial m0; m0 -> m0 : trigger x; }\n"
              "pattern P { role ra uses a; role rb uses b; connector direct; }\n"
              "automaton impl { input x; initial s0; s0 -> s0 : x / ; "
              "s0 -> s0 : ; }\n");
  Job job;
  job.name = "tiny";
  job.modelPath = "mem:tiny";
  job.pattern = "P";
  job.legacyRole = "rb";
  job.hidden = "impl";
  const auto report = engine::runBatch({job}, {}, texts);
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_NE(report.results[0].status, JobStatus::EngineError)
      << report.results[0].explanation;
}

}  // namespace
