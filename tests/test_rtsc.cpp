// Tests for the RTSC substrate: well-formedness, clock semantics, and the
// discrete-time compilation (1 transition = 1 time unit, invariants as
// deadlines, guards as firing windows, resets, saturation at max constant).

#include <gtest/gtest.h>

#include "ctl/checker.hpp"
#include "ctl/parser.hpp"
#include "helpers.hpp"
#include "rtsc/rtsc.hpp"

namespace mui::rtsc {
namespace {

using test::Tables;
using Rel = ClockConstraint::Rel;

TEST(ClockConstraintEval, AllRelations) {
  EXPECT_TRUE((ClockConstraint{0, Rel::Le, 3}.eval(3)));
  EXPECT_FALSE((ClockConstraint{0, Rel::Lt, 3}.eval(3)));
  EXPECT_TRUE((ClockConstraint{0, Rel::Ge, 3}.eval(3)));
  EXPECT_FALSE((ClockConstraint{0, Rel::Gt, 3}.eval(3)));
  EXPECT_TRUE((ClockConstraint{0, Rel::Eq, 3}.eval(3)));
  EXPECT_FALSE((ClockConstraint{0, Rel::Eq, 3}.eval(4)));
}

TEST(Rtsc, WellFormednessErrors) {
  RealTimeStatechart sc("m");
  EXPECT_THROW(sc.checkWellFormed(), std::invalid_argument);  // no initial
  const auto l = sc.addLocation("idle");
  sc.setInitial(l);
  sc.checkWellFormed();

  sc.addTransition({l, l, "ghost", {}, {}, {}});
  EXPECT_THROW(sc.checkWellFormed(), std::invalid_argument);  // bad trigger

  RealTimeStatechart sc2("m2");
  const auto l2 = sc2.addLocation("idle");
  sc2.setInitial(l2);
  sc2.addTransition({l2, l2, std::nullopt, {}, {{5, Rel::Le, 1}}, {}});
  EXPECT_THROW(sc2.checkWellFormed(), std::invalid_argument);  // bad clock

  EXPECT_THROW(sc2.addLocation("idle"), std::invalid_argument);  // duplicate
}

TEST(Rtsc, UntimedCompilationAddsStayLoops) {
  Tables t;
  RealTimeStatechart sc("m");
  sc.declareInput("go");
  sc.declareOutput("done");
  const auto a = sc.addLocation("a");
  const auto b = sc.addLocation("b");
  sc.setInitial(a);
  sc.addTransition({a, b, "go", {"done"}, {}, {}});
  const auto aut = sc.compile(t.signals, t.props);
  EXPECT_EQ(aut.stateCount(), 2u);
  const auto sa = *aut.stateByName("a");
  const auto sb = *aut.stateByName("b");
  EXPECT_TRUE(aut.isInitial(sa));
  // Stay loop (time passes) plus the triggered transition.
  EXPECT_TRUE(aut.hasTransitionTo(sa, {}, sa));
  EXPECT_TRUE(aut.hasTransitionTo(
      sa, test::ia(*t.signals, {"go"}, {"done"}), sb));
  EXPECT_TRUE(aut.hasTransitionTo(sb, {}, sb));
  // Location labels are hierarchical and clock-free.
  EXPECT_TRUE(t.props->lookup("m.a").has_value());
}

TEST(Rtsc, InvariantActsAsDeadline) {
  // Location `hot` has invariant c <= 2 and no outgoing transition: after
  // entering, time can pass twice, then the configuration is stuck — a
  // reachable deadlock (the δ of the paper, a missed deadline).
  Tables t;
  RealTimeStatechart sc("m");
  sc.declareInput("go");
  const auto idle = sc.addLocation("idle");
  const auto hot = sc.addLocation("hot", {{0, Rel::Le, 2}});
  sc.addClock("c");
  sc.setInitial(idle);
  sc.addTransition({idle, hot, "go", {}, {}, {0}});
  const auto aut = sc.compile(t.signals, t.props);
  ctl::Checker checker(aut);
  EXPECT_TRUE(checker.holds(ctl::parseFormula("EF deadlock")));
  // The deadline: hot is left (here: stuck) after exactly 2 more ticks.
  EXPECT_TRUE(checker.holds(ctl::parseFormula("AG (m.hot -> AF[0,2] deadlock)")));
}

TEST(Rtsc, GuardWindowAndReset) {
  // fire is only possible with c in [2, 3] (invariant caps staying at 3).
  Tables t;
  RealTimeStatechart sc("m");
  sc.declareOutput("fire");
  const auto wait = sc.addLocation("wait", {{0, Rel::Le, 3}});
  const auto done = sc.addLocation("done");
  sc.addClock("c");
  sc.setInitial(wait);
  sc.addTransition({wait, done, std::nullopt, {"fire"}, {{0, Rel::Ge, 2}}, {}});
  const auto aut = sc.compile(t.signals, t.props);
  ctl::Checker checker(aut);
  // No deadlock: the transition window opens before the invariant expires.
  EXPECT_TRUE(checker.holds(ctl::parseFormula("AG !deadlock")));
  // fire happens no earlier than tick 2 and no later than tick 4.
  EXPECT_TRUE(checker.holds(ctl::parseFormula("AF[2,4] m.done")));
  EXPECT_FALSE(checker.holds(ctl::parseFormula("EF[0,1] m.done")));

  // The compiled state space is bounded by saturation: clock values do not
  // exceed maxConstant() + 1.
  EXPECT_EQ(sc.maxConstant(), 3u);
  EXPECT_LE(aut.stateCount(), 2u * (sc.maxConstant() + 2));
}

TEST(Rtsc, ResetRestartsTheWindow) {
  // A self-loop resetting the clock keeps the invariant satisfiable forever.
  Tables t;
  RealTimeStatechart sc("m");
  sc.declareInput("kick");
  const auto l = sc.addLocation("l", {{0, Rel::Le, 1}});
  sc.addClock("c");
  sc.setInitial(l);
  sc.addTransition({l, l, "kick", {}, {}, {0}});
  const auto aut = sc.compile(t.signals, t.props);
  ctl::Checker checker(aut);
  // The kick is always available (the open input fires freely in the
  // standalone automaton), so no configuration is ever stuck — and the reset
  // keeps the clock inside the invariant window: only l@0 and l@1 exist.
  EXPECT_TRUE(checker.holds(ctl::parseFormula("AG !deadlock")));
  EXPECT_EQ(aut.stateCount(), 2u);
  EXPECT_TRUE(aut.stateByName("l@0").has_value());
  EXPECT_TRUE(aut.stateByName("l@1").has_value());
}

TEST(Rtsc, TargetInvariantCheckedOnEntry) {
  // Entering `strict` (invariant c == 0) is only possible with a reset.
  Tables t;
  RealTimeStatechart sc("m");
  sc.declareInput("a");
  sc.declareInput("b");
  const auto idle = sc.addLocation("idle");
  const auto strict = sc.addLocation("strict", {{0, Rel::Le, 0}});
  sc.addClock("c");
  sc.setInitial(idle);
  sc.addTransition({idle, strict, "a", {}, {}, {}});   // no reset: blocked
  sc.addTransition({idle, strict, "b", {}, {}, {0}});  // reset: allowed
  const auto aut = sc.compile(t.signals, t.props);
  const auto s0 = *aut.stateByName("idle@0");
  EXPECT_FALSE(aut.hasTransition(s0, test::ia(*t.signals, {"a"}, {})));
  EXPECT_TRUE(aut.hasTransition(s0, test::ia(*t.signals, {"b"}, {})));
}

TEST(Rtsc, TwoClocksResetIndependently) {
  // c0 measures the time since the last `tick` input, c1 the total phase
  // length; the phase must end (emit done) within 5 but a tick must have
  // been seen within 2 before that.
  Tables t;
  RealTimeStatechart sc("m");
  sc.declareInput("tick");
  sc.declareOutput("done");
  const auto c0 = sc.addClock("c0");
  const auto c1 = sc.addClock("c1");
  const auto run = sc.addLocation(
      "run", {{c0, Rel::Le, 2}, {c1, Rel::Le, 5}});
  const auto end = sc.addLocation("end");
  sc.setInitial(run);
  sc.addTransition({run, run, "tick", {}, {}, {c0}});
  sc.addTransition({run, end, std::nullopt, {"done"}, {{c1, Rel::Ge, 3}}, {}});
  const auto aut = sc.compile(t.signals, t.props);
  ctl::Checker checker(aut);
  // The open `tick` input is always available (and resets only c0), so the
  // standalone automaton never gets stuck ...
  EXPECT_TRUE(checker.holds(ctl::parseFormula("AG !deadlock")));
  // ... c0 never exceeds its window (tick is forced before c0 = 3 persists),
  // and the phase can only end in the [3,5] window measured by c1.
  EXPECT_TRUE(checker.holds(ctl::parseFormula("EF[3,5] m.end")));
  EXPECT_FALSE(checker.holds(ctl::parseFormula("EF[0,2] m.end")));
  EXPECT_TRUE(checker.holds(ctl::parseFormula("AF[1,6] m.end")));
  // The clock-valuation states are bounded by saturation on both clocks.
  EXPECT_LE(aut.stateCount(), 2u * 7u * 7u);
}

}  // namespace
}  // namespace mui::rtsc
