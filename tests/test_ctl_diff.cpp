// Differential tests for the performance paths introduced with the worklist
// checker and the incremental composer:
//
//  - ctl::Checker (worklist fixpoints over a predecessor index, dense
//    bitsets) against ctl::ReferenceChecker (the retained naive sweep
//    implementation) on random models and random CCTL formulas, including
//    the bounded operators;
//  - IntegrationVerifier with incrementalCompose on vs. off: verdicts,
//    journals, and rendered counterexamples must be identical — the
//    composer arena is pure reuse, never an approximation.

#include <gtest/gtest.h>

#include <vector>

#include "automata/automaton.hpp"
#include "automata/random.hpp"
#include "ctl/checker.hpp"
#include "ctl/formula.hpp"
#include "ctl/reference.hpp"
#include "helpers.hpp"
#include "muml/shuttle.hpp"
#include "synthesis/verifier.hpp"
#include "testing/legacy.hpp"
#include "util/rng.hpp"

namespace mui {
namespace {

namespace sh = muml::shuttle;
using automata::Automaton;
using automata::StateId;
using ctl::Bound;
using ctl::Formula;
using ctl::FormulaPtr;
using test::Tables;

FormulaPtr randomFormula(util::Rng& rng, std::size_t depth) {
  if (depth == 0) {
    switch (rng.below(5)) {
      case 0:
        return Formula::mkAtom("p");
      case 1:
        return Formula::mkAtom("q");
      case 2:
        return Formula::mkTrue();
      case 3:
        return Formula::mkFalse();
      default:
        return Formula::mkDeadlock();
    }
  }
  const auto sub = [&] { return randomFormula(rng, depth - 1); };
  const auto bound = [&]() -> Bound {
    switch (rng.below(3)) {
      case 0:
        return {};  // [0, inf]
      case 1: {
        const std::size_t lo = rng.below(3);
        return {lo, lo + rng.below(4)};
      }
      default:
        return {rng.below(4), Bound::kInf};
    }
  };
  switch (rng.below(12)) {
    case 0:
      return Formula::mkNot(sub());
    case 1:
      return Formula::mkAnd(sub(), sub());
    case 2:
      return Formula::mkOr(sub(), sub());
    case 3:
      return Formula::mkImplies(sub(), sub());
    case 4:
      return Formula::mkAX(sub());
    case 5:
      return Formula::mkEX(sub());
    case 6:
      return Formula::mkAF(sub(), bound());
    case 7:
      return Formula::mkEF(sub(), bound());
    case 8:
      return Formula::mkAG(sub(), bound());
    case 9:
      return Formula::mkEG(sub(), bound());
    case 10:
      return Formula::mkAU(sub(), sub(), bound());
    default:
      return Formula::mkEU(sub(), sub(), bound());
  }
}

Automaton makeModel(Tables& t, std::uint64_t seed) {
  automata::RandomSpec spec;
  spec.states = 3 + seed % 17;
  spec.seed = seed;
  spec.name = "m";
  // Cover nondeterministic models and models with genuine deadlock states —
  // the weak-semantics corner the worklist counters must get right.
  spec.deterministic = seed % 2 == 0;
  spec.noLocalDeadlocks = seed % 3 != 0;
  Automaton a = automata::randomAutomaton(spec, t.signals, t.props);
  util::Rng rng(seed + 99);
  for (StateId s = 0; s < a.stateCount(); ++s) {
    if (rng.chance(40, 100)) a.addLabel(s, "p");
    if (rng.chance(40, 100)) a.addLabel(s, "q");
  }
  return a;
}

TEST(CtlDifferential, WorklistMatchesReferenceOnRandomModels) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Tables t;
    const Automaton a = makeModel(t, seed);
    ctl::Checker fast(a);
    ctl::ReferenceChecker ref(a);
    for (StateId s = 0; s < a.stateCount(); ++s) {
      ASSERT_EQ(fast.isDeadlockState(s), ref.isDeadlockState(s))
          << "seed " << seed << " state " << s;
    }
    util::Rng rng(seed * 7919);
    for (int i = 0; i < 40; ++i) {
      const FormulaPtr f = randomFormula(rng, 1 + rng.below(3));
      const auto fastSat = fast.evaluate(f);
      const auto refSat = ref.evaluate(f);
      ASSERT_EQ(fastSat.size(), refSat.size());
      for (StateId s = 0; s < a.stateCount(); ++s) {
        ASSERT_EQ(fastSat.test(s), static_cast<bool>(refSat[s]))
            << "seed " << seed << " formula " << f->toString() << " state "
            << s << " (" << a.stateName(s) << ")";
      }
    }
  }
}

TEST(CtlDifferential, HoldsAgreesOnInitialStates) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Tables t;
    const Automaton a = makeModel(t, seed);
    ctl::Checker fast(a);
    ctl::ReferenceChecker ref(a);
    util::Rng rng(seed * 104729);
    for (int i = 0; i < 20; ++i) {
      const FormulaPtr f = randomFormula(rng, 2);
      EXPECT_EQ(fast.holds(f), ref.holds(f)) << f->toString();
    }
  }
}

// ---- Verifier: incremental composition is observationally pure ------------

void expectSameOutcome(const synthesis::IntegrationResult& scratch,
                       const synthesis::IntegrationResult& incremental,
                       const std::string& what) {
  EXPECT_EQ(scratch.verdict, incremental.verdict) << what;
  EXPECT_EQ(scratch.iterations, incremental.iterations) << what;
  EXPECT_EQ(scratch.totalLearnedFacts, incremental.totalLearnedFacts) << what;
  EXPECT_EQ(scratch.totalTestPeriods, incremental.totalTestPeriods) << what;
  EXPECT_EQ(scratch.explanation, incremental.explanation) << what;
  EXPECT_EQ(scratch.counterexampleText, incremental.counterexampleText)
      << what;
  ASSERT_EQ(scratch.journal.size(), incremental.journal.size()) << what;
  for (std::size_t i = 0; i < scratch.journal.size(); ++i) {
    const auto& a = scratch.journal[i];
    const auto& b = incremental.journal[i];
    EXPECT_EQ(a.modelStates, b.modelStates) << what << " iter " << i;
    EXPECT_EQ(a.modelTransitions, b.modelTransitions) << what << " iter " << i;
    EXPECT_EQ(a.closureStates, b.closureStates) << what << " iter " << i;
    EXPECT_EQ(a.productStates, b.productStates) << what << " iter " << i;
    EXPECT_EQ(a.checkPassed, b.checkPassed) << what << " iter " << i;
    EXPECT_EQ(a.cexWasDeadlock, b.cexWasDeadlock) << what << " iter " << i;
    EXPECT_EQ(a.cexLength, b.cexLength) << what << " iter " << i;
    EXPECT_EQ(a.learnedFacts, b.learnedFacts) << what << " iter " << i;
    EXPECT_EQ(a.cexText, b.cexText) << what << " iter " << i;
  }
}

synthesis::IntegrationResult runShuttle(bool incremental, bool faultyLegacy) {
  Tables t;
  const Automaton front = sh::frontRoleAutomaton(t.signals, t.props);
  testing::AutomatonLegacy legacy(faultyLegacy
                                      ? sh::faultyRearLegacy(t.signals, t.props)
                                      : sh::correctRearLegacy(t.signals,
                                                              t.props));
  synthesis::IntegrationConfig cfg;
  cfg.property = sh::kPatternConstraint;
  cfg.keepTraces = true;  // compare the rendered runs, not just the verdicts
  cfg.incrementalCompose = incremental;
  return synthesis::IntegrationVerifier(front, legacy, cfg).run();
}

TEST(VerifierDifferential, ShuttleScenarioIdenticalWithAndWithoutCaching) {
  for (const bool faulty : {false, true}) {
    const auto scratch = runShuttle(false, faulty);
    const auto incremental = runShuttle(true, faulty);
    expectSameOutcome(scratch, incremental,
                      faulty ? "faulty legacy" : "correct legacy");
    // The incremental run must actually reuse: every iteration past the
    // first re-encounters at least the initial product state.
    if (incremental.iterations > 1) {
      EXPECT_GT(incremental.totalProductStatesReused, 0u);
    }
  }
}

synthesis::IntegrationResult runRandomScenario(std::size_t states,
                                               std::uint64_t seed,
                                               bool incremental) {
  Tables t;
  automata::RandomSpec spec;
  spec.states = states;
  spec.seed = seed;
  spec.name = "lg";
  Automaton hidden = automata::randomAutomaton(spec, t.signals, t.props);
  const Automaton context = automata::mirrored(
      automata::subAutomaton(hidden, 60, seed + 101, "lg_sub"), "ctx");
  testing::AutomatonLegacy legacy(std::move(hidden));
  synthesis::IntegrationConfig cfg;  // deadlock freedom only
  cfg.keepTraces = true;
  cfg.incrementalCompose = incremental;
  return synthesis::IntegrationVerifier(context, legacy, cfg).run();
}

TEST(VerifierDifferential, RandomScenariosIdenticalWithAndWithoutCaching) {
  for (const std::size_t states : {4u, 8u, 16u}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto scratch = runRandomScenario(states, seed, false);
      const auto incremental = runRandomScenario(states, seed, true);
      expectSameOutcome(scratch, incremental,
                        "states=" + std::to_string(states) +
                            " seed=" + std::to_string(seed));
    }
  }
}

}  // namespace
}  // namespace mui
