// Corpus replay (regression guard for the fuzzing subsystem): every
// checked-in reproducer under tests/corpus/ is loaded and its recorded
// oracle re-run.
//
//   - Reproducers WITH an `# inject-bug:` header are harness self-tests:
//     the oracle must STILL FAIL under the recorded injection (if it stops
//     failing, the harness lost its ability to catch that bug class).
//   - Reproducers WITHOUT the header capture once-fixed real findings: the
//     oracle must PASS (if it fails again, the bug regressed).
//
// New findings from `mui fuzz --out <dir>` join the corpus by copying the
// .muml file here once the underlying bug is fixed (see docs/FUZZING.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/reproducer.hpp"

namespace mui::fuzz {
namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> out;
  for (const auto& entry :
       std::filesystem::directory_iterator(MUI_CORPUS_DIR)) {
    if (entry.path().extension() == ".muml") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(CorpusReplay, CorpusIsNotEmpty) {
  EXPECT_FALSE(corpusFiles().empty())
      << "tests/corpus/ holds no .muml reproducers";
}

TEST(CorpusReplay, EveryReproducerReassertsItsOracle) {
  for (const std::string& path : corpusFiles()) {
    SCOPED_TRACE(path);
    const Reproducer repro = loadReproducerFile(path);
    OracleOptions opts;
    opts.propertyOnly = !repro.scenario.property.empty();
    // replayReproducer applies any recorded `# inject-bug:` automatically.
    const OracleResult res = replayReproducer(repro, opts);
    if (!repro.injectBug.empty()) {
      EXPECT_FALSE(res.ok)
          << "self-test reproducer no longer reproduces under injection '"
          << repro.injectBug << "'";
    } else {
      EXPECT_TRUE(res.ok) << "fixed finding regressed: " << res.detail;
    }
  }
}

TEST(CorpusReplay, SelfTestReproducersAreCleanWithoutInjection) {
  // The planted-bug reproducers must be *only* about the injection: the
  // same scenario on the production checker is clean.
  for (const std::string& path : corpusFiles()) {
    SCOPED_TRACE(path);
    Reproducer repro = loadReproducerFile(path);
    if (repro.injectBug.empty()) continue;
    repro.injectBug.clear();
    OracleOptions opts;
    opts.propertyOnly = !repro.scenario.property.empty();
    EXPECT_TRUE(replayReproducer(repro, opts).ok);
  }
}

}  // namespace
}  // namespace mui::fuzz
