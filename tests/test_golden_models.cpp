// Golden end-to-end tests over the shipped models: the full
// verify-test-learn loop on railcab.muml and watchdog.muml must reach the
// recorded verdict in exactly the recorded number of iterations. The loop is
// deterministic (seeded test drivers, ordered worklists), so any drift in
// iteration count or verdict means a behavioral change in the engine — these
// tests pin the numbers the way golden files pin rendered output.

#include <gtest/gtest.h>

#include <string>

#include "automata/rename.hpp"
#include "muml/integration.hpp"
#include "muml/loader.hpp"
#include "synthesis/verifier.hpp"
#include "testing/legacy.hpp"

namespace mui {
namespace {

struct Golden {
  synthesis::Verdict verdict;
  std::size_t iterations;
  std::uint64_t testPeriods;
  std::size_t learnedFacts;
};

Golden runGolden(const std::string& modelFile, const std::string& patternName,
                 const std::string& roleName, const std::string& hiddenName) {
  const muml::Model model =
      muml::loadModelFile(std::string(MUI_MODELS_DIR) + "/" + modelFile);
  const auto& pattern = model.patterns.at(patternName);
  std::size_t roleIdx = pattern.roles.size();
  for (std::size_t i = 0; i < pattern.roles.size(); ++i) {
    if (pattern.roles[i].name == roleName) roleIdx = i;
  }
  EXPECT_LT(roleIdx, pattern.roles.size()) << "no role " << roleName;

  const auto scenario = muml::makeIntegrationScenario(
      pattern, roleIdx, model.signals, model.props);
  testing::AutomatonLegacy legacy(
      automata::withInstanceName(model.automata.at(hiddenName), roleName));

  synthesis::IntegrationConfig cfg;
  cfg.property = scenario.property;
  cfg.runId = modelFile + ":" + hiddenName;
  const auto res =
      synthesis::runIntegration(scenario.context, legacy, std::move(cfg));
  return {res.verdict, res.iterations, res.totalTestPeriods,
          res.totalLearnedFacts};
}

TEST(GoldenModels, RailcabRearShippedProvenInSevenIterations) {
  const Golden g = runGolden("railcab.muml", "DistanceCoordination",
                             "rearRole", "rearShipped");
  EXPECT_EQ(g.verdict, synthesis::Verdict::ProvenCorrect);
  EXPECT_EQ(g.iterations, 7u);
  EXPECT_EQ(g.testPeriods, 92u);
  EXPECT_EQ(g.learnedFacts, 19u);
}

TEST(GoldenModels, RailcabRearFaultyRealErrorInThreeIterations) {
  const Golden g = runGolden("railcab.muml", "DistanceCoordination",
                             "rearRole", "rearFaulty");
  EXPECT_EQ(g.verdict, synthesis::Verdict::RealError);
  EXPECT_EQ(g.iterations, 3u);
  EXPECT_EQ(g.testPeriods, 10u);
  EXPECT_EQ(g.learnedFacts, 6u);
}

TEST(GoldenModels, WatchdogDeviceCompliantProvenInThreeIterations) {
  const Golden g =
      runGolden("watchdog.muml", "Watchdog", "device", "deviceCompliant");
  EXPECT_EQ(g.verdict, synthesis::Verdict::ProvenCorrect);
  EXPECT_EQ(g.iterations, 3u);
  EXPECT_EQ(g.testPeriods, 12u);
  EXPECT_EQ(g.learnedFacts, 5u);
}

TEST(GoldenModels, WatchdogDeviceCrawlRealErrorInFourIterations) {
  const Golden g =
      runGolden("watchdog.muml", "Watchdog", "device", "deviceCrawl");
  EXPECT_EQ(g.verdict, synthesis::Verdict::RealError);
  EXPECT_EQ(g.iterations, 4u);
  EXPECT_EQ(g.testPeriods, 14u);
  EXPECT_EQ(g.learnedFacts, 9u);
}

// The loop must be run-to-run deterministic for the golden numbers above to
// be meaningful: two fresh runs of the same scenario agree exactly.
TEST(GoldenModels, RepeatRunsAreDeterministic) {
  const Golden a = runGolden("watchdog.muml", "Watchdog", "device",
                             "deviceCompliant");
  const Golden b = runGolden("watchdog.muml", "Watchdog", "device",
                             "deviceCompliant");
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.testPeriods, b.testPeriods);
  EXPECT_EQ(a.learnedFacts, b.learnedFacts);
}

}  // namespace
}  // namespace mui
