// Unit tests for the util module: bitsets, name interning, RNG determinism,
// table rendering, and the shared parser kit.

#include <gtest/gtest.h>

#include "util/bitset.hpp"
#include "util/json.hpp"
#include "util/name_table.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/text_table.hpp"

namespace mui::util {
namespace {

TEST(DynBitset, SetTestReset) {
  DynBitset b;
  EXPECT_TRUE(b.empty());
  b.set(3);
  b.set(130);
  EXPECT_TRUE(b.test(3));
  EXPECT_TRUE(b.test(130));
  EXPECT_FALSE(b.test(4));
  EXPECT_FALSE(b.test(1000));
  EXPECT_EQ(b.count(), 2u);
  b.reset(130);
  EXPECT_FALSE(b.test(130));
  EXPECT_EQ(b.count(), 1u);
}

TEST(DynBitset, CanonicalEqualityAcrossWidths) {
  // A set that once held a high bit must compare equal to a fresh set with
  // the same contents (no trailing-zero-word artifacts).
  DynBitset a;
  a.set(2);
  a.set(200);
  a.reset(200);
  DynBitset b;
  b.set(2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_FALSE(a < b);
  EXPECT_FALSE(b < a);
}

TEST(DynBitset, SetOperations) {
  const DynBitset a = DynBitset::of({1, 2, 3});
  const DynBitset b = DynBitset::of({3, 4});
  EXPECT_EQ((a | b), DynBitset::of({1, 2, 3, 4}));
  EXPECT_EQ((a & b), DynBitset::of({3}));
  EXPECT_EQ((a - b), DynBitset::of({1, 2}));
  EXPECT_TRUE(DynBitset::of({1, 2}).isSubsetOf(a));
  EXPECT_FALSE(a.isSubsetOf(b));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(DynBitset::of({1}).intersects(DynBitset::of({64})));
  EXPECT_TRUE(DynBitset().isSubsetOf(a));
}

TEST(DynBitset, OperationsAcrossDifferentWidths) {
  const DynBitset lo = DynBitset::of({0, 63});
  const DynBitset hi = DynBitset::of({63, 64, 200});
  EXPECT_EQ((lo & hi), DynBitset::of({63}));
  EXPECT_EQ((lo | hi), DynBitset::of({0, 63, 64, 200}));
  EXPECT_EQ((hi - lo), DynBitset::of({64, 200}));
  EXPECT_TRUE(lo.intersects(hi));
}

TEST(DynBitset, IterationAscending) {
  const DynBitset a = DynBitset::of({65, 2, 130});
  const auto bits = a.bits();
  ASSERT_EQ(bits.size(), 3u);
  EXPECT_EQ(bits[0], 2u);
  EXPECT_EQ(bits[1], 65u);
  EXPECT_EQ(bits[2], 130u);
  EXPECT_EQ(a.lowest(), 2u);
  EXPECT_EQ(a.toString(), "{2,65,130}");
}

TEST(NameTable, InternIsIdempotent) {
  NameTable t;
  const NameId a = t.intern("alpha");
  const NameId b = t.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.intern("alpha"), a);
  EXPECT_EQ(t.name(a), "alpha");
  EXPECT_EQ(t.lookup("beta"), b);
  EXPECT_FALSE(t.lookup("gamma").has_value());
  EXPECT_EQ(t.size(), 2u);
  EXPECT_THROW((void)t.name(99), std::out_of_range);
}

TEST(Rng, DeterministicAndInRange) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(Rng(42).next(), c.next());
  for (int i = 0; i < 1000; ++i) {
    const auto v = a.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double r = a.real();
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "n"});
  t.row({"x", "10"});
  t.row({"longer", "7"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_NE(s.find("longer  7"), std::string::npos);
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
}

TEST(JsonEscape, ShortEscapesAndControlChars) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("\n\t\r\b\f"), "\\n\\t\\r\\b\\f");
  // Control characters without a short form use \uXXXX.
  EXPECT_EQ(jsonEscape(std::string("\x00\x1f", 2)), "\\u0000\\u001f");
  EXPECT_EQ(jsonQuote("hi\n"), "\"hi\\n\"");
}

TEST(JsonEscape, Utf8PassesThroughInvalidBytesReplaced) {
  // Valid multi-byte sequences are preserved byte for byte.
  EXPECT_EQ(jsonEscape("caf\xC3\xA9 \xE2\x9C\x93 \xF0\x9F\x9A\x80"),
            "caf\xC3\xA9 \xE2\x9C\x93 \xF0\x9F\x9A\x80");
  // Invalid bytes become the replacement-character escape, never raw bytes.
  EXPECT_EQ(jsonEscape("\xFF"), "\\ufffd");
  EXPECT_EQ(jsonEscape("\xC3"), "\\ufffd");           // truncated 2-byte
  EXPECT_EQ(jsonEscape("\xE2\x9C"), "\\ufffd\\ufffd");  // truncated 3-byte
  // CESU-8 style surrogate encodings are not valid UTF-8.
  EXPECT_EQ(jsonEscape("\xED\xA0\x80"), "\\ufffd\\ufffd\\ufffd");
}

TEST(Cursor, TokensAndComments) {
  Cursor c("  foo.bar::baz # comment\n 42 \"hi\\\"x\" -> ");
  EXPECT_EQ(c.identifier(), "foo.bar::baz");
  EXPECT_EQ(c.integer(), 42u);
  EXPECT_EQ(c.quotedString(), "hi\"x");
  EXPECT_TRUE(c.tryConsume("->"));
  c.skipWs();
  EXPECT_TRUE(c.atEnd());
}

TEST(Cursor, KeywordBoundaries) {
  Cursor c("AGx AG");
  EXPECT_FALSE(c.tryKeyword("AG"));  // AGx is one identifier
  EXPECT_EQ(c.identifier(), "AGx");
  EXPECT_TRUE(c.tryKeyword("AG"));
}

TEST(Cursor, ErrorsCarryLocation) {
  Cursor c("a\nb !");
  c.identifier();
  c.identifier();
  try {
    c.identifier();
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

}  // namespace
}  // namespace mui::util
