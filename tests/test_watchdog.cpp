// A second complete domain scenario, driven entirely from the shipped
// .muml model file (models/watchdog.muml): a watchdog/heartbeat pattern
// with four legacy device variants. Exercises the whole pipeline — file
// loading, pattern verification, the scenario builder, instance rebinding,
// and the integration loop — the same path the `mui` CLI takes.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "automata/rename.hpp"
#include "ctl/checker.hpp"
#include "ctl/parser.hpp"
#include "muml/integration.hpp"
#include "muml/loader.hpp"
#include "muml/verify.hpp"
#include "synthesis/verifier.hpp"
#include "testing/legacy.hpp"

namespace mui {
namespace {

#ifndef MUI_MODELS_DIR
#error "MUI_MODELS_DIR must point at the repository's models/ directory"
#endif

muml::Model loadWatchdogModel() {
  const std::string path = std::string(MUI_MODELS_DIR) + "/watchdog.muml";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return muml::loadModel(buf.str());
}

TEST(Watchdog, PatternVerifies) {
  const auto model = loadWatchdogModel();
  const auto& pattern = model.patterns.at("Watchdog");
  const auto res = muml::verifyPattern(pattern, model.signals, model.props);
  EXPECT_TRUE(res.constraintHolds);
  EXPECT_TRUE(res.deadlockFree);
  EXPECT_TRUE(res.ok());
}

TEST(Watchdog, MonitorTimingIsAsSpecified) {
  // The compiled monitor pings within 4 ticks of idling and escalates
  // exactly 2 ticks into an unanswered wait.
  const auto model = loadWatchdogModel();
  const auto monitor =
      model.statecharts.at("monitorRole").compile(model.signals, model.props);
  ctl::Checker checker(monitor);
  EXPECT_TRUE(checker.holds(
      ctl::parseFormula("AG (monitorRole.idle -> AF[1,4] "
                        "(monitorRole.waiting || monitorRole.escalated))")));
  // In the open automaton the pong is always possible, so escalation is
  // avoidable...
  EXPECT_TRUE(checker.holds(
      ctl::parseFormula("EG !monitorRole.escalated")));
  // ... but a silent partner forces it (witnessed by EF).
  EXPECT_TRUE(checker.holds(ctl::parseFormula("EF monitorRole.escalated")));
}

struct WatchdogCase {
  const char* device;
  synthesis::Verdict expected;
};

class WatchdogIntegration : public ::testing::TestWithParam<WatchdogCase> {};

TEST_P(WatchdogIntegration, VerdictsMatchTheDeviceQuality) {
  const auto [deviceName, expected] = GetParam();
  const auto model = loadWatchdogModel();
  const auto& pattern = model.patterns.at("Watchdog");
  const auto scenario =
      muml::makeIntegrationScenario(pattern, 1, model.signals, model.props);

  testing::AutomatonLegacy legacy(automata::withInstanceName(
      model.automata.at(deviceName), pattern.roles[1].name));
  synthesis::IntegrationConfig cfg;
  cfg.property = scenario.property;
  const auto res =
      synthesis::IntegrationVerifier(scenario.context, legacy, cfg).run();
  EXPECT_EQ(res.verdict, expected)
      << deviceName << ": " << res.explanation << "\n"
      << res.counterexampleText;
}

INSTANTIATE_TEST_SUITE_P(
    Devices, WatchdogIntegration,
    ::testing::Values(
        WatchdogCase{"deviceCompliant", synthesis::Verdict::ProvenCorrect},
        // Two ticks of latency still meet the monitor's window: the timeout
        // only wins when no pong is offered at the deadline.
        WatchdogCase{"deviceSlow", synthesis::Verdict::ProvenCorrect},
        WatchdogCase{"deviceCrawl", synthesis::Verdict::RealError},
        WatchdogCase{"deviceMute", synthesis::Verdict::RealError},
        WatchdogCase{"deviceDeaf", synthesis::Verdict::RealError}));

TEST(Watchdog, CrawlDeviceWitnessShowsTheEscalation) {
  const auto model = loadWatchdogModel();
  const auto& pattern = model.patterns.at("Watchdog");
  const auto scenario =
      muml::makeIntegrationScenario(pattern, 1, model.signals, model.props);
  testing::AutomatonLegacy legacy(automata::withInstanceName(
      model.automata.at("deviceCrawl"), "device"));
  synthesis::IntegrationConfig cfg;
  cfg.property = scenario.property;
  const auto res =
      synthesis::IntegrationVerifier(scenario.context, legacy, cfg).run();
  ASSERT_EQ(res.verdict, synthesis::Verdict::RealError);
  // The counterexample reaches the degraded monitor mode or pinpoints the
  // missed response deadline.
  EXPECT_TRUE(res.counterexampleText.find("escalated") != std::string::npos ||
              res.explanation.find("deadlock") != std::string::npos)
      << res.counterexampleText << res.explanation;
}

}  // namespace
}  // namespace mui
