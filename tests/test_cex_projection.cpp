// Edge cases for counterexample projection (paper Sec. 4.2): projecting a
// product counterexample run back onto one component must be total — it has
// to cope with degenerate runs (empty, single-state) and with lassos whose
// loop lives entirely in the *context* while the legacy component stutters.

#include <gtest/gtest.h>

#include "automata/compose.hpp"
#include "ctl/counterexample.hpp"
#include "ctl/parser.hpp"
#include "helpers.hpp"

namespace mui::automata {
namespace {

using ARun = Run;  // ::testing::Test::Run() shadows automata::Run in TEST bodies
using test::Tables;
using test::ia;
using test::idle;

/// Legacy: a single idling state. Context: an idle two-state cycle plus an
/// unreachable `goal`-labelled state, so `AF goal` fails with a lasso whose
/// loop suffix only ever changes the context's state.
struct StutterPair {
  Tables t;
  Automaton leg;
  Automaton ctx;

  StutterPair()
      : leg(t.signals, t.props, "leg"), ctx(t.signals, t.props, "ctx") {
    leg.addState("l0");
    leg.markInitial(0);
    leg.labelWithStateName(0);
    leg.addTransition(0, idle(), 0);

    ctx.addState("c0");
    ctx.addState("c1");
    ctx.addState("c2");
    ctx.markInitial(0);
    ctx.labelWithStateName(0);
    ctx.labelWithStateName(1);
    ctx.addLabel(2, "goal");  // interns the atom; state stays unreachable
    ctx.addTransition(0, idle(), 1);
    ctx.addTransition(1, idle(), 0);
  }
};

TEST(CexProjection, EmptyRunProjectsToEmptyRun) {
  StutterPair s;
  const Product p = compose(s.leg, s.ctx);
  ARun empty;
  const ARun proj = p.projectRun(empty, 0);
  EXPECT_TRUE(proj.states.empty());
  EXPECT_TRUE(proj.labels.empty());
  EXPECT_FALSE(proj.deadlock);
}

TEST(CexProjection, SingleStateRunProjectsToComponentState) {
  StutterPair s;
  const Product p = compose(s.leg, s.ctx);
  // A propositional counterexample is a bare initial state with no steps
  // (ctl/counterexample.cpp renders it with pathExact == true).
  ARun single;
  single.states.push_back(p.automaton.initialStates()[0]);
  ASSERT_TRUE(single.wellFormed());

  const ARun onLeg = p.projectRun(single, 0);
  ASSERT_EQ(onLeg.states.size(), 1u);
  EXPECT_EQ(onLeg.states[0], 0u);  // leg.l0
  EXPECT_TRUE(onLeg.labels.empty());

  const ARun onCtx = p.projectRun(single, 1);
  ASSERT_EQ(onCtx.states.size(), 1u);
  EXPECT_EQ(p.componentStateNames[1][onCtx.states[0]], "c0");
}

TEST(CexProjection, ContextOnlyLassoProjectsToLegacyStutter) {
  StutterPair s;
  const Product p = compose(s.leg, s.ctx);
  // Only the idle cycle (l0,c0) <-> (l0,c1) is reachable.
  ASSERT_EQ(p.automaton.stateCount(), 2u);

  const ctl::VerifyResult res =
      ctl::verify(p.automaton, ctl::parseFormula("AF goal"), {});
  ASSERT_FALSE(res.holds);
  ASSERT_FALSE(res.counterexamples.empty());
  const ctl::Counterexample& cex = res.cex();
  EXPECT_EQ(cex.kind, ctl::Counterexample::Kind::Property);
  EXPECT_TRUE(cex.pathExact);
  ASSERT_TRUE(cex.run.wellFormed());
  // The lasso unrolls until a product state repeats, so it must take at
  // least two steps and revisit its loop head.
  ASSERT_GE(cex.run.states.size(), 3u);
  EXPECT_EQ(cex.run.states.front(), cex.run.states.back());

  // Projected onto the legacy component the whole lasso is a stutter: the
  // same single state, and every projected interaction is the idle step.
  const ARun onLeg = p.projectRun(cex.run, 0);
  ASSERT_EQ(onLeg.states.size(), cex.run.states.size());
  for (StateId st : onLeg.states) EXPECT_EQ(st, 0u);
  for (const Interaction& x : onLeg.labels) {
    EXPECT_TRUE(x.in.empty());
    EXPECT_TRUE(x.out.empty());
  }

  // The context projection, by contrast, carries the actual loop: both
  // cycle states appear.
  const ARun onCtx = p.projectRun(cex.run, 1);
  bool sawC0 = false;
  bool sawC1 = false;
  for (StateId st : onCtx.states) {
    const std::string& name = p.componentStateNames[1][st];
    sawC0 |= name == "c0";
    sawC1 |= name == "c1";
  }
  EXPECT_TRUE(sawC0);
  EXPECT_TRUE(sawC1);
}

TEST(CexProjection, DeadlockRunKeepsFlagAndBlockedLabel) {
  // One synchronized step, then the product is stuck: the deadlock witness
  // ends with the blocked interaction (states.size() == labels.size()), and
  // projection must preserve both the flag and the per-component share of
  // the final blocked label.
  Tables t;
  Automaton a(t.signals, t.props, "a");
  Automaton b(t.signals, t.props, "b");
  a.addOutput("go");
  a.addState("a0");
  a.addState("a1");
  a.markInitial(0);
  a.addTransition(0, ia(*t.signals, {}, {"go"}), 1);
  b.addInput("go");
  b.addState("b0");
  b.addState("b1");
  b.markInitial(0);
  b.addTransition(0, ia(*t.signals, {"go"}, {}), 1);

  const Product p = compose(a, b);
  const ctl::VerifyResult res = ctl::verify(p.automaton, nullptr, {});
  ASSERT_FALSE(res.holds);
  EXPECT_EQ(res.cex().kind, ctl::Counterexample::Kind::Deadlock);

  // Hand-build the deadlock run (one step, blocked retry of `go`).
  ARun dead;
  dead.deadlock = true;
  dead.states = {p.automaton.initialStates()[0]};
  dead.labels = {ia(*t.signals, {"go"}, {"go"})};
  ASSERT_TRUE(dead.wellFormed());
  const ARun onA = p.projectRun(dead, 0);
  EXPECT_TRUE(onA.deadlock);
  ASSERT_EQ(onA.labels.size(), 1u);
  EXPECT_EQ(onA.labels[0], ia(*t.signals, {}, {"go"}));  // a only sends
  const ARun onB = p.projectRun(dead, 1);
  ASSERT_EQ(onB.labels.size(), 1u);
  EXPECT_EQ(onB.labels[0], ia(*t.signals, {"go"}, {}));  // b only receives
}

}  // namespace
}  // namespace mui::automata
