// Tests for counterexample generation: shortest paths to invariant
// violations and deadlocks, exact suffixes for bounded leads-to violations,
// multiple counterexamples, and search-order variants (experiment E7).

#include <gtest/gtest.h>

#include "automata/random.hpp"
#include "ctl/counterexample.hpp"
#include "ctl/parser.hpp"
#include "helpers.hpp"

namespace mui::ctl {
namespace {

using automata::Automaton;
using automata::Interaction;
using test::Tables;

/// s0 -> s1 -> bad(p). s0 -> far -> far2 -> bad2(p). bad2 deadlocks.
Automaton invariantModel(const Tables& t) {
  Automaton a(t.signals, t.props, "m");
  a.addOutput("step");
  const Interaction x = test::ia(*t.signals, {}, {"step"});
  for (const char* n : {"s0", "s1", "bad", "far", "far2", "bad2"}) {
    a.addState(n);
  }
  a.markInitial(0);
  a.addTransition(0, x, 1);
  a.addTransition(1, x, 2);
  a.addTransition(2, x, 2);
  a.addTransition(0, x, 3);
  a.addTransition(3, x, 4);
  a.addTransition(4, x, 5);
  a.addLabel(2, "p");
  a.addLabel(5, "p");
  return a;
}

TEST(Cex, InvariantViolationShortestPath) {
  Tables t;
  const Automaton a = invariantModel(t);
  VerifyOptions opts;
  opts.requireDeadlockFree = false;
  const auto r = verify(a, parseFormula("AG !p"), opts);
  ASSERT_FALSE(r.holds);
  ASSERT_EQ(r.counterexamples.size(), 1u);
  const auto& cex = r.cex();
  EXPECT_EQ(cex.kind, Counterexample::Kind::Property);
  EXPECT_TRUE(cex.pathExact);
  EXPECT_TRUE(a.admitsRun(cex.run));
  // BFS: the 2-step route to `bad`, not the 3-step route to `bad2`.
  EXPECT_EQ(cex.run.length(), 2u);
  EXPECT_EQ(a.stateName(cex.run.states.back()), "bad");
}

TEST(Cex, HoldingPropertyHasNoCounterexample) {
  Tables t;
  const Automaton a = invariantModel(t);
  VerifyOptions opts;
  opts.requireDeadlockFree = false;
  const auto r = verify(a, parseFormula("AG (p || !p)"), opts);
  EXPECT_TRUE(r.holds);
  EXPECT_TRUE(r.counterexamples.empty());
}

TEST(Cex, DeadlockWitness) {
  Tables t;
  const Automaton a = invariantModel(t);
  const auto r = verify(a, nullptr, {});
  ASSERT_FALSE(r.holds);
  const auto& cex = r.cex();
  EXPECT_EQ(cex.kind, Counterexample::Kind::Deadlock);
  EXPECT_TRUE(a.admitsRun(cex.run));
  EXPECT_EQ(a.stateName(cex.run.states.back()), "bad2");
  EXPECT_EQ(cex.run.length(), 3u);
  EXPECT_NE(cex.note.find("bad2"), std::string::npos);
}

TEST(Cex, PropertyCheckedBeforeDeadlock) {
  Tables t;
  const Automaton a = invariantModel(t);
  const auto r = verify(a, parseFormula("AG !p"), {});
  ASSERT_FALSE(r.holds);
  EXPECT_EQ(r.cex().kind, Counterexample::Kind::Property);
}

TEST(Cex, MultipleCounterexamplesAreDistinct) {
  Tables t;
  const Automaton a = invariantModel(t);
  VerifyOptions opts;
  opts.requireDeadlockFree = false;
  opts.maxCounterexamples = 4;
  const auto r = verify(a, parseFormula("AG !p"), opts);
  ASSERT_EQ(r.counterexamples.size(), 2u);  // two distinct violating states
  EXPECT_NE(r.counterexamples[0].run.states.back(),
            r.counterexamples[1].run.states.back());
  for (const auto& cex : r.counterexamples) {
    EXPECT_TRUE(a.admitsRun(cex.run));
  }
}

TEST(Cex, LeadsToViolationGetsExactSuffix) {
  // AG(p -> AF[1,2] q): from `trigger` (p) the model can wander 3 steps
  // without q — the counterexample must extend past the trigger to show the
  // window expiring.
  Tables t;
  Automaton a(t.signals, t.props, "m");
  a.addOutput("step");
  const Interaction x = test::ia(*t.signals, {}, {"step"});
  for (const char* n : {"s0", "trigger", "w1", "w2", "q1"}) a.addState(n);
  a.markInitial(0);
  a.addTransition(0, x, 1);   // s0 -> trigger
  a.addTransition(1, x, 2);   // trigger -> w1
  a.addTransition(1, x, 4);   // trigger -> q1 (the good branch)
  a.addTransition(2, x, 3);   // w1 -> w2
  a.addTransition(3, x, 3);   // w2 loops
  a.addTransition(4, x, 4);
  a.addLabel(1, "p");
  a.addLabel(4, "q");

  VerifyOptions opts;
  opts.requireDeadlockFree = false;
  const auto r = verify(a, parseFormula("AG (p -> AF[1,2] q)"), opts);
  ASSERT_FALSE(r.holds);
  const auto& cex = r.cex();
  EXPECT_TRUE(cex.pathExact);
  EXPECT_TRUE(a.admitsRun(cex.run));
  // Prefix reaches `trigger` (1 step), suffix shows 2 q-less steps.
  EXPECT_GE(cex.run.length(), 3u);
  EXPECT_EQ(a.stateName(cex.run.states[1]), "trigger");
  for (std::size_t i = 2; i < cex.run.states.size(); ++i) {
    EXPECT_NE(a.stateName(cex.run.states[i]), "q1");
  }
}

TEST(Cex, TopLevelBoundedAFWitness) {
  Tables t;
  const Automaton a = invariantModel(t);
  VerifyOptions opts;
  opts.requireDeadlockFree = false;
  // p is reachable but not guaranteed within 1 step.
  const auto r = verify(a, parseFormula("AF[0,1] p"), opts);
  ASSERT_FALSE(r.holds);
  const auto& cex = r.cex();
  EXPECT_TRUE(cex.pathExact);
  EXPECT_TRUE(a.admitsRun(cex.run));
  // Every state on the witness within the window must avoid p.
  for (automata::StateId s : cex.run.states) {
    EXPECT_NE(a.stateName(s), "bad");
    EXPECT_NE(a.stateName(s), "bad2");
  }
}

TEST(Cex, DepthFirstSearchFindsSomeViolation) {
  Tables t;
  const Automaton a = invariantModel(t);
  VerifyOptions opts;
  opts.requireDeadlockFree = false;
  opts.search = CexSearch::DepthFirst;
  const auto r = verify(a, parseFormula("AG !p"), opts);
  ASSERT_FALSE(r.holds);
  EXPECT_TRUE(a.admitsRun(r.cex().run));
}

TEST(Cex, ConjunctionPeeling) {
  Tables t;
  const Automaton a = invariantModel(t);
  VerifyOptions opts;
  opts.requireDeadlockFree = false;
  const auto r =
      verify(a, parseFormula("AG (p || !p) && AG !p"), opts);
  ASSERT_FALSE(r.holds);
  EXPECT_TRUE(a.admitsRun(r.cex().run));
  EXPECT_NE(r.cex().note.find("AG"), std::string::npos);
}

TEST(Cex, UnknownAtomsSurfacedInResult) {
  Tables t;
  const Automaton a = invariantModel(t);
  VerifyOptions opts;
  opts.requireDeadlockFree = false;
  const auto r = verify(a, parseFormula("AG !nonexistent_atom"), opts);
  EXPECT_TRUE(r.holds);  // atom is false everywhere, so AG ! holds
  ASSERT_EQ(r.unknownAtoms.size(), 1u);
  EXPECT_EQ(r.unknownAtoms[0], "nonexistent_atom");
}

}  // namespace
}  // namespace mui::ctl
