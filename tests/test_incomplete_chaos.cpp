// Tests for incomplete automata (Def. 6/7), learning (Def. 11/12), the
// chaotic closure (Def. 9), and Theorem 1: the real component always refines
// the chaotic closure of any observation-conforming learned model.

#include <gtest/gtest.h>

#include "automata/chaos.hpp"
#include "automata/compose.hpp"
#include "automata/conformance.hpp"
#include "automata/random.hpp"
#include "automata/refine.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"

namespace mui::automata {
namespace {

using ARun = Run;
using test::Tables;
using test::ia;

TEST(Incomplete, ConsistencyOfTAndTBar) {
  Tables t;
  IncompleteAutomaton m(t.signals, t.props, "m");
  m.addOutput("a");
  const StateId s = m.addState("s");
  m.markInitial(s);
  const Interaction doA = ia(*t.signals, {}, {"a"});
  m.forbid(s, doA);
  // Def. 6: (s, A, B) may not be in both T and T̄.
  EXPECT_THROW(m.addTransition(s, doA, s), std::invalid_argument);
  EXPECT_TRUE(m.isForbidden(s, doA));
  EXPECT_TRUE(m.deterministic());

  IncompleteAutomaton m2(t.signals, t.props, "m2");
  m2.addOutput("a2");
  const StateId s2 = m2.addState("s");
  const Interaction doA2 = ia(*t.signals, {}, {"a2"});
  m2.addTransition(s2, doA2, s2);
  EXPECT_THROW(m2.forbid(s2, doA2), std::invalid_argument);
}

TEST(Incomplete, RunsTreatOnlyTBarAsDeadlock) {
  Tables t;
  IncompleteAutomaton m(t.signals, t.props, "m");
  m.addOutput("a");
  m.addOutput("b");
  const StateId s0 = m.addState("s0");
  const StateId s1 = m.addState("s1");
  m.markInitial(s0);
  const Interaction doA = ia(*t.signals, {}, {"a"});
  const Interaction doB = ia(*t.signals, {}, {"b"});
  m.addTransition(s0, doA, s1);
  m.forbid(s1, doB);

  ARun regular{{s0, s1}, {doA}, false};
  EXPECT_TRUE(m.admitsRun(regular));
  // Deadlock run only where T̄ says so (Def. 7).
  ARun blockedKnown{{s0, s1}, {doA, doB}, true};
  EXPECT_TRUE(m.admitsRun(blockedKnown));
  ARun blockedUnknown{{s0, s1}, {doA, doA}, true};  // doA at s1: merely unknown
  EXPECT_FALSE(m.admitsRun(blockedUnknown));
}

TEST(Incomplete, CompletenessXor) {
  Tables t;
  IncompleteAutomaton m(t.signals, t.props, "m");
  m.addOutput("a");
  const StateId s = m.addState("s");
  m.markInitial(s);
  const auto alpha =
      makeAlphabet(m.base().inputs(), m.base().outputs(),
                   InteractionMode::AtMostOneSignal);
  ASSERT_EQ(alpha.size(), 2u);  // idle and -/a
  EXPECT_FALSE(m.complete(alpha));
  m.addTransition(s, ia(*t.signals, {}, {"a"}), s);
  EXPECT_FALSE(m.complete(alpha));
  m.forbid(s, test::idle());
  EXPECT_TRUE(m.complete(alpha));
}

TEST(Incomplete, LearnRegularRunAddsStatesTransitionsInitial) {
  Tables t;
  IncompleteAutomaton m(t.signals, t.props, "legacy");
  m.addOutput("a");
  m.addOutput("b");
  const Interaction doA = ia(*t.signals, {}, {"a"});
  const Interaction doB = ia(*t.signals, {}, {"b"});

  ObservedRun run;
  run.stateNames = {"q0", "q1", "q0"};
  run.labels = {doA, doA};
  const auto d1 = m.learn(run);
  EXPECT_EQ(d1.newStates, 2u);
  EXPECT_EQ(d1.newTransitions, 2u);
  EXPECT_EQ(d1.newForbidden, 0u);
  EXPECT_TRUE(m.base().isInitial(*m.base().stateByName("q0")));
  // New states get hierarchical name labels for property checking.
  EXPECT_TRUE(t.props->lookup("legacy.q1").has_value());

  // Learning the same run again is a no-op (idempotence).
  const auto d2 = m.learn(run);
  EXPECT_FALSE(d2.any());

  // A blocked continuation learns a T̄ entry (Def. 12). The refused doB at
  // q1 must not clash with the known doA transition there.
  ObservedRun blocked;
  blocked.stateNames = {"q0", "q1"};
  blocked.labels = {doA, doB};
  blocked.blocked = true;
  const auto d3 = m.learn(blocked);
  EXPECT_EQ(d3.newForbidden, 1u);
  EXPECT_TRUE(
      m.isForbidden(*m.base().stateByName("q1"), doB));
  EXPECT_EQ(m.knowledge(), 2u + 2u + 1u);
}

TEST(Chaos, ClosureStructure) {
  Tables t;
  IncompleteAutomaton m(t.signals, t.props, "legacy");
  m.addInput("go");
  m.addOutput("done");
  const StateId s0 = m.addState("init");
  m.markInitial(s0);
  const auto alpha = makeAlphabet(m.base().inputs(), m.base().outputs(),
                                  InteractionMode::AtMostOneSignal);
  const Closure c = chaoticClosure(m, alpha);
  // Fig. 4(b): doubled known states plus s_all and s_delta.
  EXPECT_EQ(c.automaton.stateCount(), 2u * 1u + 2u);
  EXPECT_EQ(c.automaton.initialStates().size(), 2u);
  EXPECT_TRUE(c.automaton.stateByName("s_all").has_value());
  EXPECT_TRUE(c.automaton.stateByName("s_delta").has_value());
  EXPECT_TRUE(c.isChaos(c.sAll));
  EXPECT_TRUE(c.isChaos(c.sDelta));
  // (init, 0) has no outgoing transitions; (init, 1) reaches both chaos
  // states under every interaction; s_delta blocks everything.
  const StateId copy0 = *c.automaton.stateByName("init");
  const StateId copy1 = *c.automaton.stateByName("init'");
  EXPECT_TRUE(c.automaton.transitionsFrom(copy0).empty());
  EXPECT_EQ(c.automaton.transitionsFrom(copy1).size(), 2 * alpha.size());
  EXPECT_TRUE(c.automaton.transitionsFrom(c.sDelta).empty());
  EXPECT_EQ(c.automaton.transitionsFrom(c.sAll).size(), 2 * alpha.size());
  EXPECT_FALSE(c.isChaos(copy0));
  EXPECT_EQ(c.knownOrigin(copy1), s0);
  // Chaos states are labeled with the weakening proposition.
  const auto chaosId = t.props->lookup(kChaosProp);
  ASSERT_TRUE(chaosId.has_value());
  EXPECT_TRUE(c.automaton.labels(c.sAll).test(*chaosId));
  EXPECT_FALSE(c.automaton.labels(copy0).test(*chaosId));
}

TEST(Chaos, DeterministicStyleOmitsChaosEdgesForKnownInteractions) {
  Tables t;
  IncompleteAutomaton m(t.signals, t.props, "legacy");
  m.addOutput("a");
  const StateId s0 = m.addState("q0");
  const StateId s1 = m.addState("q1");
  m.markInitial(s0);
  const Interaction doA = ia(*t.signals, {}, {"a"});
  m.addTransition(s0, doA, s1);
  const auto alpha = makeAlphabet(m.base().inputs(), m.base().outputs(),
                                  InteractionMode::AtMostOneSignal);

  const Closure exact = chaoticClosure(m, alpha, ClosureStyle::PaperExact);
  const Closure det =
      chaoticClosure(m, alpha, ClosureStyle::DeterministicTarget);
  const StateId exQ0p = *exact.automaton.stateByName("q0'");
  const StateId detQ0p = *det.automaton.stateByName("q0'");
  // Paper-exact: doA from (q0,1) also reaches chaos; deterministic: not.
  EXPECT_TRUE(exact.automaton.hasTransitionTo(exQ0p, doA, exact.sAll));
  EXPECT_FALSE(det.automaton.hasTransitionTo(detQ0p, doA, det.sAll));
  // Idle is unknown at q0 in both styles: chaos edges present.
  EXPECT_TRUE(det.automaton.hasTransitionTo(detQ0p, test::idle(), det.sAll));
}

TEST(Chaos, ForbiddenInteractionsGetNoChaosEdges) {
  Tables t;
  IncompleteAutomaton m(t.signals, t.props, "legacy");
  m.addOutput("a");
  const StateId s0 = m.addState("q0");
  m.markInitial(s0);
  const Interaction doA = ia(*t.signals, {}, {"a"});
  m.forbid(s0, doA);
  const auto alpha = makeAlphabet(m.base().inputs(), m.base().outputs(),
                                  InteractionMode::AtMostOneSignal);
  const Closure c = chaoticClosure(m, alpha, ClosureStyle::PaperExact);
  const StateId q0p = *c.automaton.stateByName("q0'");
  EXPECT_FALSE(c.automaton.hasTransition(q0p, doA));
  EXPECT_TRUE(c.automaton.hasTransition(q0p, test::idle()));
}

// ---- Theorem 1 as a property test ------------------------------------------

struct Thm1Param {
  std::uint64_t seed;
  ClosureStyle style;
};

class Theorem1 : public ::testing::TestWithParam<Thm1Param> {};

TEST_P(Theorem1, RealComponentRefinesChaosOfLearnedModel) {
  const auto [seed, style] = GetParam();
  Tables t;
  RandomSpec spec;
  spec.states = 6;
  spec.densityPct = 45;
  spec.seed = seed;
  spec.name = "real";
  const Automaton real = randomAutomaton(spec, t.signals, t.props);
  const auto alpha = makeAlphabet(real.inputs(), real.outputs(),
                                  InteractionMode::AtMostOneSignal);

  // Learn a few random walks (with occasional observed refusals) from the
  // real component into an incomplete model.
  IncompleteAutomaton learned(t.signals, t.props, "real");
  learned.declareSignals(real.inputs(), real.outputs());
  // Seed the model with the (labeled) initial state via a zero-length run.
  learned.learn({{real.stateName(real.initialStates()[0])}, {}, false});
  util::Rng rng(seed * 77 + 5);
  for (int walk = 0; walk < 4; ++walk) {
    ObservedRun run;
    StateId cur = real.initialStates()[0];
    run.stateNames.push_back(real.stateName(cur));
    for (int step = 0; step < 5; ++step) {
      const auto& ts = real.transitionsFrom(cur);
      if (ts.empty()) break;
      const auto& tr = ts[rng.below(ts.size())];
      run.labels.push_back(tr.label);
      run.stateNames.push_back(real.stateName(tr.to));
      cur = tr.to;
    }
    // Half of the walks end with an observed refusal.
    if (walk % 2 == 1) {
      for (const auto& x : alpha) {
        if (!real.hasTransition(cur, x)) {
          run.labels.push_back(x);
          run.blocked = true;
          break;
        }
      }
    }
    learned.learn(run);
  }

  // The learned model is observation conforming (Def. 10)...
  const auto conf = checkObservationConformance(learned, real);
  ASSERT_TRUE(conf.conforms) << conf.reason;

  // ... so by Thm. 1 the real component refines its chaotic closure.
  const Closure c = chaoticClosure(learned, alpha, style);
  RefinementOptions opts;
  opts.wildcardProp = kChaosProp;
  const auto r = checkRefinement(real, c.automaton, alpha, opts);
  EXPECT_TRUE(r.holds) << r.reason;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndStyles, Theorem1,
    ::testing::Values(Thm1Param{1, ClosureStyle::PaperExact},
                      Thm1Param{2, ClosureStyle::PaperExact},
                      Thm1Param{3, ClosureStyle::PaperExact},
                      Thm1Param{4, ClosureStyle::DeterministicTarget},
                      Thm1Param{5, ClosureStyle::DeterministicTarget},
                      Thm1Param{6, ClosureStyle::DeterministicTarget},
                      Thm1Param{7, ClosureStyle::DeterministicTarget},
                      Thm1Param{8, ClosureStyle::PaperExact}));

// ---- Lemma 2 as a property test ---------------------------------------------

class Lemma2 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma2, CompositionPreservesRefinement) {
  // Lemma 2: M2 ⊑ M2' implies M1 ‖ M2 ⊑ M1 ‖ M2'. We instantiate it with
  // the Thm.-1 pair (M2 = real component, M2' = chaos of a learned model)
  // and M1 = a context automaton, and check the products directly.
  const std::uint64_t seed = GetParam();
  Tables t;
  RandomSpec spec;
  spec.states = 5;
  spec.seed = seed;
  spec.name = "real";
  const Automaton real = randomAutomaton(spec, t.signals, t.props);
  const auto alpha = makeAlphabet(real.inputs(), real.outputs(),
                                  InteractionMode::AtMostOneSignal);

  // Learn a short walk into an incomplete model.
  IncompleteAutomaton learned(t.signals, t.props, "real");
  learned.declareSignals(real.inputs(), real.outputs());
  ObservedRun walk;
  StateId cur = real.initialStates()[0];
  walk.stateNames.push_back(real.stateName(cur));
  util::Rng rng(seed + 4);
  for (int step = 0; step < 4; ++step) {
    const auto& ts = real.transitionsFrom(cur);
    if (ts.empty()) break;
    const auto& tr = ts[rng.below(ts.size())];
    walk.labels.push_back(tr.label);
    walk.stateNames.push_back(real.stateName(tr.to));
    cur = tr.to;
  }
  learned.learn(walk);
  const Closure closure = chaoticClosure(learned, alpha);

  // Context: the mirror of the real component (always composable).
  const Automaton ctx = mirrored(real, "ctx");
  const auto prodReal = compose(ctx, real);
  const auto prodAbs = compose(ctx, closure.automaton);

  // Product alphabet for the refinement's deadlock condition.
  const auto prodAlpha =
      makeAlphabet(prodReal.automaton.inputs(), prodReal.automaton.outputs(),
                   InteractionMode::AtMostOneSignal);
  RefinementOptions opts;
  opts.wildcardProp = kChaosProp;
  const auto r = checkRefinement(prodReal.automaton, prodAbs.automaton,
                                 prodAlpha, opts);
  EXPECT_TRUE(r.holds) << r.reason;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma2, ::testing::Range<std::uint64_t>(1, 9));

TEST(Conformance, DetectsViolations) {
  Tables t;
  Automaton real(t.signals, t.props, "real");
  real.addOutput("a");
  real.addState("q0");
  real.addState("q1");
  real.markInitial(0);
  const Interaction doA = ia(*t.signals, {}, {"a"});
  real.addTransition(0, doA, 1);

  // Wrong transition target.
  IncompleteAutomaton bad1(t.signals, t.props, "real");
  bad1.addOutput("a");
  bad1.ensureState("q0");
  bad1.markInitial(0);
  bad1.addTransition(0, doA, 0);  // real goes to q1, not q0
  EXPECT_FALSE(checkObservationConformance(bad1, real).conforms);

  // Unknown state name.
  IncompleteAutomaton bad2(t.signals, t.props, "real");
  bad2.ensureState("ghost");
  bad2.markInitial(0);
  EXPECT_FALSE(checkObservationConformance(bad2, real).conforms);

  // T̄ entry the component actually supports.
  IncompleteAutomaton bad3(t.signals, t.props, "real");
  bad3.addOutput("a");
  bad3.ensureState("q0");
  bad3.markInitial(0);
  bad3.forbid(0, doA);
  EXPECT_FALSE(checkObservationConformance(bad3, real).conforms);

  // Non-initial state claimed initial.
  IncompleteAutomaton bad4(t.signals, t.props, "real");
  bad4.ensureState("q1");
  bad4.markInitial(0);
  EXPECT_FALSE(checkObservationConformance(bad4, real).conforms);

  // And a conforming model passes.
  IncompleteAutomaton good(t.signals, t.props, "real");
  good.addOutput("a");
  good.ensureState("q0");
  good.ensureState("q1");
  good.markInitial(0);
  good.addTransition(0, doA, 1);
  good.forbid(1, doA);  // q1 has no outgoing doA in real
  EXPECT_TRUE(checkObservationConformance(good, real).conforms);
}

}  // namespace
}  // namespace mui::automata
