// Trace document validity (docs/OBSERVABILITY.md): every event line a
// chromeTrace() document emits must parse as JSON, carry the fields the
// Chrome trace-event format requires for its phase, and the async "b"/"e"
// pairs that bracket a job (client submit ring and daemon execution ring)
// must pair up per (name, id) — including after mergeChromeTraces() splices
// the rings of two processes into one document.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/journal.hpp"
#include "obs/trace.hpp"
#include "obs/ulid.hpp"

namespace mui::obs {
namespace {

struct TracerGuard {
  TracerGuard() { Tracer::enable(); }
  ~TracerGuard() {
    Tracer::disable();
    Tracer::clear();
  }
};

/// Extracts the event lines of a chromeTrace()/mergeChromeTraces document
/// (one event per line, trailing commas stripped) and asserts every one of
/// them parses as a flat JSON object.
std::vector<FlatObject> parsedEvents(const std::string& doc) {
  std::vector<FlatObject> events;
  std::istringstream in(doc);
  std::string line;
  bool inEvents = false;
  while (std::getline(in, line)) {
    if (!inEvents) {
      // The header line carries displayTimeUnit/epoch and opens the array.
      inEvents = line.find("\"traceEvents\":[") != std::string::npos;
      continue;
    }
    if (line == "]}" || line.empty()) continue;
    if (!line.empty() && line.back() == ',') line.pop_back();
    const auto obj = parseFlatJson(line);
    EXPECT_TRUE(obj.has_value()) << "unparseable event line: " << line;
    if (obj) events.push_back(*obj);
  }
  return events;
}

std::string fieldText(const FlatObject& o, const char* key) {
  const auto it = o.find(key);
  return it == o.end() ? std::string() : it->second.text;
}

/// Asserts every "b" has exactly one matching "e" (same name and id) and
/// that no "e" arrives without its "b". Begin and end may sit on different
/// threads — and, in a merged doc, different pids — by design.
void expectAsyncPairsBalanced(const std::vector<FlatObject>& events) {
  std::map<std::string, int> open;
  for (const FlatObject& ev : events) {
    const std::string ph = fieldText(ev, "ph");
    if (ph != "b" && ph != "e") continue;
    const std::string key = fieldText(ev, "name") + "\x1f" +
                            fieldText(ev, "id");
    EXPECT_FALSE(fieldText(ev, "id").empty())
        << "async event without an id: " << fieldText(ev, "name");
    open[key] += ph == "b" ? 1 : -1;
    EXPECT_GE(open[key], 0) << "async end before begin for " << key;
  }
  for (const auto& [key, count] : open) {
    EXPECT_EQ(count, 0) << "unbalanced async pair: " << key;
  }
}

TEST(TraceValidity, EveryEmittedEventLineIsWellFormed) {
  TracerGuard guard;
  setThreadName("main");
  const std::string ulid = newUlid();
  Tracer::asyncBegin("job:demo", ulid);
  {
    const ObsSpan outer("job:demo", ulid);
    const ObsSpan iter("iteration", 3, ulid);
    const ObsSpan plain("closure");
  }
  Tracer::asyncEnd("job:demo", ulid);
  Tracer::disable();

  const auto events = parsedEvents(Tracer::chromeTrace(1, "mui-test"));
  // b + 3 X + e; metadata lines vary with threads other tests registered.
  std::size_t nonMeta = 0;
  for (const FlatObject& ev : events) {
    if (fieldText(ev, "ph") != "M") ++nonMeta;
  }
  ASSERT_EQ(nonMeta, 5u);
  std::set<std::string> phases;
  for (const FlatObject& ev : events) {
    const std::string ph = fieldText(ev, "ph");
    phases.insert(ph);
    EXPECT_TRUE(ph == "X" || ph == "M" || ph == "b" || ph == "e") << ph;
    ASSERT_NE(ev.find("pid"), ev.end());
    ASSERT_NE(ev.find("tid"), ev.end());
    if (ph == "X") {
      // Complete events need a numeric timestamp and duration.
      ASSERT_NE(ev.find("ts"), ev.end());
      ASSERT_NE(ev.find("dur"), ev.end());
      EXPECT_EQ(ev.at("ts").kind, JsonValue::Kind::Number);
      EXPECT_EQ(ev.at("dur").kind, JsonValue::Kind::Number);
      EXPECT_GE(ev.at("dur").number, 0.0);
    }
    if (ph == "b" || ph == "e") {
      EXPECT_EQ(fieldText(ev, "id"), ulid);
      ASSERT_NE(ev.find("ts"), ev.end());
    }
  }
  EXPECT_EQ(phases, (std::set<std::string>{"M", "X", "b", "e"}));
  expectAsyncPairsBalanced(events);
}

TEST(TraceValidity, AsyncPairsBalancePerIdAcrossManyJobs) {
  TracerGuard guard;
  std::vector<std::string> ulids;
  for (int i = 0; i < 8; ++i) ulids.push_back(newUlid());
  // Interleaved begins and ends, as a pipelined daemon produces them.
  for (const std::string& u : ulids) Tracer::asyncBegin("job:batch", u);
  for (const std::string& u : ulids) Tracer::asyncEnd("job:batch", u);
  Tracer::disable();
  const auto events = parsedEvents(Tracer::chromeTrace());
  std::size_t asyncEvents = 0;
  for (const FlatObject& ev : events) {
    const std::string ph = fieldText(ev, "ph");
    if (ph == "b" || ph == "e") ++asyncEvents;
  }
  ASSERT_EQ(asyncEvents, 16u);
  expectAsyncPairsBalanced(events);
}

TEST(TraceValidity, MergedClientAndDaemonRingsShareTheJobUlid) {
  // Simulate `mui submit --trace-out`: the client rings (pid 1) and the
  // daemon's /trace snapshot (pid 2) carry the same job ULID; the merged
  // document must contain both processes and still balance the pairs.
  const std::string ulid = newUlid();

  Tracer::enable();
  Tracer::asyncBegin("submit:j1", ulid);
  { const ObsSpan wire("submit", ulid); }
  Tracer::asyncEnd("submit:j1", ulid);
  Tracer::disable();
  const std::string clientDoc = Tracer::chromeTrace(1, "mui-submit");

  Tracer::enable();  // resets the rings: this is "the other process"
  Tracer::asyncBegin("job:j1", ulid);
  { const ObsSpan run("job:j1", ulid); }
  Tracer::asyncEnd("job:j1", ulid);
  Tracer::disable();
  const std::string daemonDoc = Tracer::chromeTrace(2, "mui-serve");
  Tracer::clear();

  const std::string merged = mergeChromeTraces({clientDoc, daemonDoc});
  const auto events = parsedEvents(merged);
  ASSERT_GE(events.size(), 8u);
  expectAsyncPairsBalanced(events);

  std::set<double> pids;
  std::size_t taggedWithUlid = 0;
  for (const FlatObject& ev : events) {
    const auto pid = ev.find("pid");
    ASSERT_NE(pid, ev.end());
    pids.insert(pid->second.number);
    if (fieldText(ev, "id") == ulid) ++taggedWithUlid;
  }
  EXPECT_EQ(pids, (std::set<double>{1.0, 2.0}));
  // Both rings contributed their async bracket for the same job.
  EXPECT_EQ(taggedWithUlid, 4u);
  // Both process_name metadata lines survived the merge.
  EXPECT_NE(merged.find("mui-submit"), std::string::npos);
  EXPECT_NE(merged.find("mui-serve"), std::string::npos);
}

TEST(TraceValidity, MergeShiftsTheLaterDocumentOntoTheBaseTimeline) {
  // Hand-crafted documents 5ms apart: after the merge the second event
  // must be shifted by the epoch delta (5000us) onto the first timeline.
  const std::string docA =
      "{\"displayTimeUnit\":\"ms\",\"muiEpochUnixNs\":1000000000,"
      "\"traceEvents\":[\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"cat\":\"mui\",\"name\":\"a\","
      "\"ts\":100.000,\"dur\":1.000}\n]}\n";
  const std::string docB =
      "{\"displayTimeUnit\":\"ms\",\"muiEpochUnixNs\":1005000000,"
      "\"traceEvents\":[\n"
      "{\"ph\":\"X\",\"pid\":2,\"tid\":0,\"cat\":\"mui\",\"name\":\"b\","
      "\"ts\":100.000,\"dur\":1.000}\n]}\n";
  const auto events = parsedEvents(mergeChromeTraces({docA, docB}));
  ASSERT_EQ(events.size(), 2u);
  double tsA = 0;
  double tsB = 0;
  for (const FlatObject& ev : events) {
    if (fieldText(ev, "name") == "a") tsA = ev.at("ts").number;
    if (fieldText(ev, "name") == "b") tsB = ev.at("ts").number;
  }
  EXPECT_DOUBLE_EQ(tsA, 100.0);
  EXPECT_DOUBLE_EQ(tsB, 5100.0);
}

}  // namespace
}  // namespace mui::obs
