// Tests for refinement (paper Def. 4): reflexivity, the deadlock-trace
// condition, the chaotic automaton as top element (Def. 8), and agreement
// between the exact check and the simulation approximation.

#include <gtest/gtest.h>

#include "automata/chaos.hpp"
#include "automata/random.hpp"
#include "automata/refine.hpp"
#include "helpers.hpp"

namespace mui::automata {
namespace {

using test::Tables;
using test::ia;

TEST(Refinement, Reflexive) {
  Tables t;
  RandomSpec spec;
  spec.states = 5;
  spec.seed = 7;
  spec.name = "m";
  const Automaton m = randomAutomaton(spec, t.signals, t.props);
  const auto alpha =
      makeAlphabet(m.inputs(), m.outputs(), InteractionMode::AtMostOneSignal);
  EXPECT_TRUE(checkRefinement(m, m, alpha).holds);
  EXPECT_TRUE(simulates(m, m, alpha));
}

TEST(Refinement, RemovingATransitionBreaksRefinementDownward) {
  // M' := M minus one transition. Then M' has a deadlock trace that M does
  // not (condition 2), so M' does NOT refine M; and M has a trace M' lacks,
  // so M does not refine M' either (condition 1).
  Tables t;
  Automaton m(t.signals, t.props, "m");
  m.addOutput("a");
  m.addOutput("b");
  m.addState("s0");
  m.addState("s1");
  m.markInitial(0);
  m.labelWithStateName(0);
  m.labelWithStateName(1);
  const Interaction doA = ia(*t.signals, {}, {"a"});
  const Interaction doB = ia(*t.signals, {}, {"b"});
  m.addTransition(0, doA, 1);
  m.addTransition(0, doB, 1);
  m.addTransition(1, doA, 1);

  Automaton less(t.signals, t.props, "m");  // same instance name: same labels
  less.declareSignals(m.inputs(), m.outputs());
  less.addState("s0");
  less.addState("s1");
  less.markInitial(0);
  less.labelWithStateName(0);
  less.labelWithStateName(1);
  less.addTransition(0, doA, 1);
  less.addTransition(1, doA, 1);

  const auto alpha =
      makeAlphabet(m.inputs(), m.outputs(), InteractionMode::AtMostOneSignal);
  const auto down = checkRefinement(less, m, alpha);
  EXPECT_FALSE(down.holds);
  EXPECT_NE(down.reason.find("condition 2"), std::string::npos);
  const auto up = checkRefinement(m, less, alpha);
  EXPECT_FALSE(up.holds);
}

TEST(Refinement, RequiresIdenticalInterfaces) {
  Tables t;
  Automaton a(t.signals, t.props, "a");
  a.addOutput("x");
  a.addState("s");
  a.markInitial(0);
  Automaton b(t.signals, t.props, "b");
  b.addOutput("y");
  b.addState("s");
  b.markInitial(0);
  EXPECT_THROW(checkRefinement(a, b, {}), std::invalid_argument);
}

class ChaosTop : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosTop, EverythingRefinesTheChaoticAutomaton) {
  // Def. 8 / Fig. 3: the chaotic automaton is a maximal behavior — any
  // automaton over the same interface refines it (with the formula-weakening
  // wildcard on the chaos states).
  Tables t;
  RandomSpec spec;
  spec.states = 6;
  spec.densityPct = 50;
  spec.noLocalDeadlocks = false;
  spec.seed = GetParam();
  spec.name = "m";
  const Automaton m = randomAutomaton(spec, t.signals, t.props);
  const auto alpha =
      makeAlphabet(m.inputs(), m.outputs(), InteractionMode::AtMostOneSignal);
  const Automaton top = chaoticAutomaton(t.signals, t.props, m.inputs(),
                                         m.outputs(), alpha, "chaos");
  RefinementOptions opts;
  opts.wildcardProp = kChaosProp;
  const auto r = checkRefinement(m, top, alpha, opts);
  EXPECT_TRUE(r.holds) << r.reason;
  // Note: `simulates` is deliberately weaker and does not recognize the
  // chaotic top element (condition 2 needs different matching runs for
  // refusals than for continuations); only the exact check decides this.
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTop,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class SimulationSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulationSoundness, SimulatesImpliesRefines) {
  // `simulates` is a sound approximation: whenever it says yes, the exact
  // check must agree. Exercised on random pairs sharing an interface.
  Tables t;
  const std::uint64_t seed = GetParam();
  RandomSpec specA;
  specA.states = 5;
  specA.outputs = 1;
  specA.densityPct = 45;
  specA.deterministic = false;
  specA.seed = seed;
  specA.name = "p";
  const Automaton a = randomAutomaton(specA, t.signals, t.props);
  // Same-name variant over the same signals: reuse the generator with a
  // different seed, then align interfaces by construction.
  RandomSpec specB = specA;
  specB.seed = seed + 1000;
  specB.states = 7;
  const Automaton bRaw = randomAutomaton(specB, t.signals, t.props);
  // Rebuild b over a's exact I/O sets (the generator interned the same
  // signal names, so the sets coincide already).
  ASSERT_TRUE(a.inputs() == bRaw.inputs());
  ASSERT_TRUE(a.outputs() == bRaw.outputs());
  const auto alpha =
      makeAlphabet(a.inputs(), a.outputs(), InteractionMode::AtMostOneSignal);
  if (simulates(a, bRaw, alpha)) {
    const auto exact = checkRefinement(a, bRaw, alpha);
    EXPECT_TRUE(exact.holds) << exact.reason;
  }
  // And the trivial positive case.
  EXPECT_TRUE(simulates(a, a, alpha));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulationSoundness,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Refinement, PruningPreservesRefinementBothWays) {
  Tables t;
  Automaton m(t.signals, t.props, "m");
  m.addOutput("a");
  m.addState("s0");
  m.addState("s1");
  m.addState("dead");  // unreachable
  m.markInitial(0);
  const Interaction doA = ia(*t.signals, {}, {"a"});
  m.addTransition(0, doA, 1);
  m.addTransition(1, doA, 0);
  m.addTransition(2, doA, 0);
  const Automaton pruned = m.prunedToReachable();
  const auto alpha =
      makeAlphabet(m.inputs(), m.outputs(), InteractionMode::AtMostOneSignal);
  EXPECT_TRUE(checkRefinement(pruned, m, alpha).holds);
  EXPECT_TRUE(checkRefinement(m, pruned, alpha).holds);
}

}  // namespace
}  // namespace mui::automata
