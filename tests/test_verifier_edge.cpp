// Edge cases and regression tests for the synthesis engine and its
// supporting machinery: the optimistic (copy-1-only) closure, QoS-channeled
// contexts, degenerate configurations, reporting, and driver corner cases.

#include <gtest/gtest.h>

#include "automata/chaos.hpp"
#include "automata/compose.hpp"
#include "automata/rename.hpp"
#include "helpers.hpp"
#include "muml/channel.hpp"
#include "muml/shuttle.hpp"
#include "synthesis/report.hpp"
#include "synthesis/verifier.hpp"
#include "testing/driver.hpp"
#include "testing/legacy.hpp"
#include "testing/legacy_shuttle.hpp"
#include "testing/runtime.hpp"

namespace mui::synthesis {
namespace {

namespace sh = muml::shuttle;
using test::Tables;
using test::ia;

TEST(OptimisticClosure, Copy1OnlyStructure) {
  Tables t;
  automata::IncompleteAutomaton m(t.signals, t.props, "legacy");
  m.addOutput("a");
  const auto s0 = m.addState("q0");
  const auto s1 = m.addState("q1");
  m.markInitial(s0);
  const automata::Interaction doA = ia(*t.signals, {}, {"a"});
  m.addTransition(s0, doA, s1);
  m.forbid(s1, doA);
  const auto alphabet =
      automata::makeAlphabet(m.base().inputs(), m.base().outputs(),
                             automata::InteractionMode::AtMostOneSignal);
  const auto c = automata::chaoticClosure(
      m, alphabet, automata::ClosureStyle::DeterministicTarget,
      automata::ClosureCopies::Copy1Only);
  // One copy per known state (unprimed names) plus the two chaos states.
  EXPECT_EQ(c.automaton.stateCount(), 2u + 2u);
  EXPECT_TRUE(c.automaton.stateByName("q0").has_value());
  EXPECT_FALSE(c.automaton.stateByName("q0'").has_value());
  EXPECT_EQ(c.automaton.initialStates().size(), 1u);
  // Known transition kept; unknown idle goes to chaos; forbidden doA at q1
  // has no edge at all.
  const auto q0 = *c.automaton.stateByName("q0");
  const auto q1 = *c.automaton.stateByName("q1");
  EXPECT_TRUE(c.automaton.hasTransitionTo(q0, doA, q1));
  EXPECT_TRUE(c.automaton.hasTransitionTo(q0, {}, c.sAll));
  EXPECT_FALSE(c.automaton.hasTransition(q1, doA));
  // copy0 aliases copy1 in this variant.
  EXPECT_EQ(c.copy0[s0], c.copy1[s0]);
}

TEST(OptimisticClosure, BoundedLivenessNotBlamedOnIgnorance) {
  // Regression for the optimistic/pessimistic split (DESIGN.md §6.4b): a
  // pending AF-window obligation at the learning frontier must not be
  // reported as a real violation. The correct rear shuttle satisfies the
  // role invariant AG(wait -> AF[1,6] (default || convoy)); early learned
  // models end exactly at the `wait` frontier.
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  testing::AutomatonLegacy legacy(sh::correctRearLegacy(t.signals, t.props));
  IntegrationConfig cfg;
  cfg.property =
      "AG (rearRole.noConvoy::wait -> AF[1,6] "
      "(rearRole.noConvoy::default || rearRole.convoy))";
  const auto res = IntegrationVerifier(front, legacy, cfg).run();
  EXPECT_EQ(res.verdict, Verdict::ProvenCorrect) << res.explanation;
}

TEST(OptimisticClosure, RealBoundedLivenessViolationStillFound) {
  // A component that can sit in `wait` forever genuinely violates the
  // response-time invariant: the front shuttle never answers because this
  // hidden behavior never proposes — instead we construct a rear that
  // proposes and then ignores the answer beyond the window via a detour.
  Tables t;
  automata::Automaton hidden(t.signals, t.props, "rearRole");
  hidden.addInput(sh::kConvoyProposalRejected);
  hidden.addInput(sh::kStartConvoy);
  hidden.addInput(sh::kBreakConvoyRejected);
  hidden.addInput(sh::kBreakConvoyAccepted);
  hidden.addOutput(sh::kConvoyProposal);
  hidden.addOutput(sh::kBreakConvoyProposal);
  const auto def = hidden.addState("noConvoy::default");
  const auto wait = hidden.addState("noConvoy::wait");
  for (automata::StateId s = 0; s < hidden.stateCount(); ++s) {
    hidden.labelWithStateName(s);
  }
  hidden.markInitial(def);
  hidden.addTransition(def, ia(*t.signals, {}, {sh::kConvoyProposal}), wait);
  // The defect: replies are *accepted* but looped back into wait — the
  // component never reaches default or convoy mode again.
  hidden.addTransition(wait, {}, wait);
  hidden.addTransition(
      wait, ia(*t.signals, {sh::kConvoyProposalRejected}, {}), wait);
  hidden.addTransition(wait, ia(*t.signals, {sh::kStartConvoy}, {}), wait);

  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  testing::AutomatonLegacy legacy(hidden);
  IntegrationConfig cfg;
  cfg.property =
      "AG (rearRole.noConvoy::wait -> AF[1,6] "
      "(rearRole.noConvoy::default || rearRole.convoy))";
  const auto res = IntegrationVerifier(front, legacy, cfg).run();
  EXPECT_EQ(res.verdict, Verdict::RealError) << res.explanation;
}

TEST(QosContext, DelayBreaksTheSynchronousHandover) {
  // Miniature of experiment E9: the correct firmware verifies over the
  // direct connector but desynchronizes over a 1-tick radio link (the
  // breakConvoyAccepted message is in flight while the front shuttle is
  // already back in noConvoy mode).
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  const auto frontR = automata::renameSignals(
      front, {
                 {sh::kConvoyProposal, "convoyProposal_d"},
                 {sh::kBreakConvoyProposal, "breakConvoyProposal_d"},
                 {sh::kConvoyProposalRejected, "convoyProposalRejected_u"},
                 {sh::kStartConvoy, "startConvoy_u"},
                 {sh::kBreakConvoyRejected, "breakConvoyRejected_u"},
                 {sh::kBreakConvoyAccepted, "breakConvoyAccepted_u"},
             });
  const auto channel = muml::makeChannel(
      t.signals, t.props,
      {"radio",
       {
           {sh::kConvoyProposal, "convoyProposal_d"},
           {sh::kBreakConvoyProposal, "breakConvoyProposal_d"},
           {"convoyProposalRejected_u", sh::kConvoyProposalRejected},
           {"startConvoy_u", sh::kStartConvoy},
           {"breakConvoyRejected_u", sh::kBreakConvoyRejected},
           {"breakConvoyAccepted_u", sh::kBreakConvoyAccepted},
       },
       /*delay=*/1,
       /*capacity=*/2,
       /*lossy=*/false});
  const auto context = automata::composeAll({&frontR, &channel}).automaton;

  testing::FirmwareShuttleLegacy firmware(t.signals, false);
  IntegrationConfig cfg;
  cfg.property = sh::kPatternConstraint;
  const auto res = IntegrationVerifier(context, firmware, cfg).run();
  ASSERT_EQ(res.verdict, Verdict::RealError) << res.explanation;
  // The witness shows the rear still in convoy mode while the front left it.
  EXPECT_NE(res.counterexampleText.find("rearRole.convoy"),
            std::string::npos);
}

TEST(VerifierConfig, PropertyOnlyAndDeadlockOnly) {
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  // Deadlock check disabled: only the constraint is verified.
  {
    testing::AutomatonLegacy legacy(sh::correctRearLegacy(t.signals, t.props));
    IntegrationConfig cfg;
    cfg.property = sh::kPatternConstraint;
    cfg.requireDeadlockFree = false;
    const auto res = IntegrationVerifier(front, legacy, cfg).run();
    EXPECT_EQ(res.verdict, Verdict::ProvenCorrect) << res.explanation;
  }
  // Neither property nor deadlock requirement: vacuously proven at once.
  {
    testing::AutomatonLegacy legacy(sh::correctRearLegacy(t.signals, t.props));
    IntegrationConfig cfg;
    cfg.requireDeadlockFree = false;
    const auto res = IntegrationVerifier(front, legacy, cfg).run();
    EXPECT_EQ(res.verdict, Verdict::ProvenCorrect);
    EXPECT_EQ(res.iterations, 1u);
    EXPECT_EQ(res.totalTestPeriods, 0u);
  }
}

TEST(VerifierConfig, StuckContextIsARealDeadlock) {
  // A context that refuses everything after one step: a real deadlock
  // regardless of the legacy behavior (the context model is authoritative).
  Tables t;
  automata::Automaton ctx(t.signals, t.props, "ctx");
  ctx.addInput(sh::kConvoyProposal);  // reads but never enables it
  ctx.addState("only");
  ctx.markInitial(0);
  testing::AutomatonLegacy legacy(sh::correctRearLegacy(t.signals, t.props));
  const auto res = IntegrationVerifier(ctx, legacy, {}).run();
  ASSERT_EQ(res.verdict, Verdict::RealError) << res.explanation;
  EXPECT_NE(res.explanation.find("deadlock"), std::string::npos);
}

TEST(Report, JournalAndSummary) {
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  testing::AutomatonLegacy legacy(sh::correctRearLegacy(t.signals, t.props));
  IntegrationConfig cfg;
  cfg.property = sh::kPatternConstraint;
  const auto res = IntegrationVerifier(front, legacy, cfg).run();
  const std::string journal = renderJournal(res);
  EXPECT_NE(journal.find("iter"), std::string::npos);
  EXPECT_NE(journal.find("deadlock"), std::string::npos);
  const std::string summary = renderSummary(res);
  EXPECT_NE(summary.find("proven"), std::string::npos);
  EXPECT_NE(summary.find("learned model"), std::string::npos);
  EXPECT_STREQ(verdictName(Verdict::RealError), "real-error");
}

TEST(DriverEdge, EmptyTestIsTriviallyConfirmed) {
  Tables t;
  testing::AutomatonLegacy legacy(sh::correctRearLegacy(t.signals, t.props));
  testing::CounterexampleTestDriver driver(legacy, *t.signals);
  const auto outcome = driver.execute({});
  EXPECT_EQ(outcome.kind, testing::TestOutcome::Kind::Confirmed);
  EXPECT_EQ(outcome.observed.stateNames.size(), 1u);
  EXPECT_TRUE(outcome.observed.labels.empty());
  EXPECT_EQ(driver.periodsDriven(), 0u);
}

TEST(DriverEdge, ReusableAcrossTests) {
  Tables t;
  testing::AutomatonLegacy legacy(sh::correctRearLegacy(t.signals, t.props));
  testing::CounterexampleTestDriver driver(legacy, *t.signals);
  const automata::Interaction idle{};
  const auto first = driver.execute({idle});
  const auto second = driver.execute({idle});  // reset() between runs
  EXPECT_EQ(first.observed.stateNames, second.observed.stateNames);
  EXPECT_EQ(driver.periodsDriven(), 4u);  // 2 tests × (record + replay)
}

TEST(RuntimeEdge, ResetRestartsTheSystem) {
  Tables t;
  const auto front = sh::frontRoleAutomaton(t.signals, t.props);
  testing::FirmwareShuttleLegacy fw(t.signals, true);  // deadlocks quickly
  testing::PeriodicRuntime rt(front, fw, 7);
  testing::Recorder rec(testing::ProbeLevel::ReplayOnly);
  const auto firstRun = rt.run(60, rec);
  ASSERT_LT(firstRun, 60u);
  rt.reset();
  testing::Recorder rec2(testing::ProbeLevel::ReplayOnly);
  // After reset the system runs again from scratch (environment choices are
  // drawn from the ongoing RNG stream, so only the shape is deterministic:
  // the faulty firmware always wedges before the horizon).
  const auto secondRun = rt.run(60, rec2);
  EXPECT_GE(secondRun, 1u);
  EXPECT_LT(secondRun, 60u);
}

}  // namespace
}  // namespace mui::synthesis
