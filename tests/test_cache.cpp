// Cache layer under the engine and the serve daemon: JobKey injectivity,
// the ResultCache LRU bound and 64-bit-collision detection, TextCache
// disk revalidation, the PersistentResultCache log (replay, truncated
// tails, superseded records, compaction), the in-memory/durable layering,
// and concurrent access (the TSan CI job runs these tests).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/cache.hpp"
#include "engine/persistent_cache.hpp"

namespace {

using namespace mui;
using engine::CachedOutcome;
using engine::JobKey;
using engine::JobStatus;
using engine::PersistentResultCache;
using engine::ResultCache;
using engine::TextCache;

/// Fresh scratch directory per test, under the system temp dir.
std::filesystem::path testDir(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "mui_cache_tests" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void writeFile(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good());
  out << text;
}

engine::Job job(std::string pattern, std::string role, std::string hidden,
                std::string formula = "") {
  engine::Job j;
  j.pattern = std::move(pattern);
  j.legacyRole = std::move(role);
  j.hidden = std::move(hidden);
  j.formula = std::move(formula);
  return j;
}

CachedOutcome proven(std::string explanation) {
  return CachedOutcome{JobStatus::Proven, std::move(explanation), 2, 6, 1};
}

// ------------------------------------------------------------------ JobKey

TEST(JobKey, HashDigestsTheMaterial) {
  const JobKey key = engine::makeJobKey("model", job("P", "r", "h"), 100);
  EXPECT_EQ(key.hash, engine::fnv1a(key.material));
  EXPECT_NE(key.material.find("model"), std::string::npos);
}

TEST(JobKey, FieldBoundariesCannotAlias) {
  // Same concatenated bytes, different field split: the length prefixes
  // must keep the materials (and hence the hashes) apart.
  const JobKey ab_c = engine::makeJobKey("m", job("ab", "c", "h"), 0);
  const JobKey a_bc = engine::makeJobKey("m", job("a", "bc", "h"), 0);
  EXPECT_NE(ab_c.material, a_bc.material);
  EXPECT_NE(ab_c.hash, a_bc.hash);
}

TEST(JobKey, BudgetsArePartOfTheKey) {
  const auto j = job("P", "r", "h");
  const JobKey t0 = engine::makeJobKey("m", j, 0);
  const JobKey t5 = engine::makeJobKey("m", j, 5000);
  EXPECT_NE(t0.hash, t5.hash);
  auto capped = j;
  capped.maxIterations = 3;
  EXPECT_NE(engine::makeJobKey("m", capped, 0).hash, t0.hash);
}

// --------------------------------------------------------- ResultCache LRU

TEST(ResultCacheLru, EvictsLeastRecentlyUsedAtTheCap) {
  ResultCache cache(/*maxEntries=*/2);
  const JobKey k1 = engine::makeJobKey("m1", job("P", "r", "h"), 0);
  const JobKey k2 = engine::makeJobKey("m2", job("P", "r", "h"), 0);
  const JobKey k3 = engine::makeJobKey("m3", job("P", "r", "h"), 0);
  cache.store(k1, proven("one"));
  cache.store(k2, proven("two"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_GT(cache.bytes(), 0u);

  // Touch k1 so k2 becomes the LRU victim.
  EXPECT_TRUE(cache.lookup(k1).has_value());
  cache.store(k3, proven("three"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.lookup(k2).has_value());
  ASSERT_TRUE(cache.lookup(k1).has_value());
  EXPECT_EQ(cache.lookup(k1)->explanation, "one");
  EXPECT_TRUE(cache.lookup(k3).has_value());
}

TEST(ResultCacheLru, ByteAccountingShrinksOnEviction) {
  ResultCache cache(/*maxEntries=*/1);
  const JobKey k1 = engine::makeJobKey(std::string(1024, 'a'),
                                       job("P", "r", "h"), 0);
  const JobKey k2 = engine::makeJobKey("tiny", job("P", "r", "h"), 0);
  cache.store(k1, proven("big"));
  const std::size_t bigBytes = cache.bytes();
  cache.store(k2, proven("small"));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_LT(cache.bytes(), bigBytes);
  EXPECT_GT(cache.bytes(), 0u);
}

TEST(ResultCacheCollision, SameHashDifferentMaterialIsAMissNotAHit) {
  ResultCache cache;
  // Fabricated 64-bit collision: same hash, different key material.
  const JobKey a{42, "material-A"};
  const JobKey b{42, "material-B"};
  cache.store(a, proven("A's verdict"));
  EXPECT_FALSE(cache.lookup(b).has_value());
  EXPECT_EQ(cache.collisions(), 1u);
  // The resident entry must not be clobbered by the colliding store...
  cache.store(b, proven("B's verdict"));
  EXPECT_EQ(cache.collisions(), 2u);
  // ...and A keeps getting A's verdict.
  const auto hit = cache.lookup(a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->explanation, "A's verdict");
}

// --------------------------------------------------------------- TextCache

TEST(TextCache, ReloadsWhenTheFileChangesOnDisk) {
  const auto dir = testDir("text_reload");
  const auto path = (dir / "model.muml").string();
  writeFile(path, "rev one");
  TextCache texts;
  EXPECT_EQ(texts.get(path), "rev one");
  // A daemon must notice a re-saved model. Different size guarantees the
  // revalidation fires even on coarse-mtime filesystems.
  writeFile(path, "rev two, longer");
  std::filesystem::last_write_time(
      path, std::filesystem::file_time_type::clock::now());
  EXPECT_EQ(texts.get(path), "rev two, longer");
}

TEST(TextCache, ServesCachedCopyWhenTheFileVanishes) {
  const auto dir = testDir("text_vanish");
  const auto path = (dir / "model.muml").string();
  writeFile(path, "content");
  TextCache texts;
  EXPECT_EQ(texts.get(path), "content");
  std::filesystem::remove(path);
  EXPECT_EQ(texts.get(path), "content");  // robustness over strictness
}

TEST(TextCache, PrimedEntriesAreNeverRevalidated) {
  const auto dir = testDir("text_primed");
  const auto path = (dir / "model.muml").string();
  writeFile(path, "on disk");
  TextCache texts;
  texts.prime(path, "primed");
  EXPECT_EQ(texts.get(path), "primed");
  writeFile(path, "changed on disk");
  EXPECT_EQ(texts.get(path), "primed");
}

// --------------------------------------------------------- persistent log

TEST(PersistentCache, RoundTripsAcrossReopen) {
  const auto dir = testDir("persist_roundtrip");
  const auto log = (dir / "cache.jsonl").string();
  const JobKey key = engine::makeJobKey("model", job("P", "r", "h"), 0);
  {
    PersistentResultCache cache(log);
    EXPECT_EQ(cache.size(), 0u);
    cache.append(key.hash, key.material, proven("persisted"));
    EXPECT_EQ(cache.size(), 1u);
  }
  PersistentResultCache reopened(log);
  EXPECT_EQ(reopened.replayStats().replayed, 1u);
  EXPECT_EQ(reopened.replayStats().skipped, 0u);
  EXPECT_FALSE(reopened.replayStats().truncatedTail);
  const auto hit = reopened.lookup(key.hash, key.material);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->explanation, "persisted");
  EXPECT_EQ(hit->status, JobStatus::Proven);
  // A different material behind the same hash must not be served.
  EXPECT_FALSE(reopened.lookup(key.hash, "someone else").has_value());
}

TEST(PersistentCache, ReplayToleratesATruncatedTail) {
  const auto dir = testDir("persist_truncated");
  const auto log = (dir / "cache.jsonl").string();
  const JobKey key = engine::makeJobKey("model", job("P", "r", "h"), 0);
  const std::string good =
      PersistentResultCache::encodeRecord(key.hash, key.material,
                                          proven("survives"));
  // A crash mid-append leaves a partial final line with no newline.
  writeFile(log, good + "\n" + good.substr(0, good.size() / 2));
  {
    PersistentResultCache cache(log);
    EXPECT_EQ(cache.replayStats().replayed, 1u);
    EXPECT_EQ(cache.replayStats().skipped, 1u);
    EXPECT_TRUE(cache.replayStats().truncatedTail);
    EXPECT_TRUE(cache.lookup(key.hash, key.material).has_value());
    // The next append must start on a fresh line despite the torn tail.
    const JobKey other = engine::makeJobKey("other", job("P", "r", "h"), 0);
    cache.append(other.hash, other.material, proven("after the tear"));
  }
  PersistentResultCache reopened(log);
  EXPECT_EQ(reopened.replayStats().replayed, 2u);
  EXPECT_FALSE(reopened.replayStats().truncatedTail);
}

TEST(PersistentCache, NewerRecordForTheSameKeySupersedes) {
  const auto dir = testDir("persist_supersede");
  const auto log = (dir / "cache.jsonl").string();
  const JobKey key = engine::makeJobKey("model", job("P", "r", "h"), 0);
  writeFile(log,
            PersistentResultCache::encodeRecord(key.hash, key.material,
                                                proven("old")) +
                "\n" +
                PersistentResultCache::encodeRecord(key.hash, key.material,
                                                    proven("new")) +
                "\n");
  PersistentResultCache cache(log);
  EXPECT_EQ(cache.replayStats().replayed, 1u);
  EXPECT_EQ(cache.replayStats().superseded, 1u);
  EXPECT_EQ(cache.lookup(key.hash, key.material)->explanation, "new");
}

TEST(PersistentCache, ReplayRejectsRecordsWhoseKeyDoesNotDigestFromMaterial) {
  const auto dir = testDir("persist_badkey");
  const auto log = (dir / "cache.jsonl").string();
  const JobKey key = engine::makeJobKey("model", job("P", "r", "h"), 0);
  // Hand-edited material: the stored key no longer digests from it.
  writeFile(log,
            PersistentResultCache::encodeRecord(key.hash, "tampered material",
                                                proven("evil")) +
                "\nnot json at all\n");
  PersistentResultCache cache(log);
  EXPECT_EQ(cache.replayStats().replayed, 0u);
  EXPECT_EQ(cache.replayStats().skipped, 2u);
  EXPECT_FALSE(cache.lookup(key.hash, key.material).has_value());
}

TEST(PersistentCache, RuntimeCollisionPoisonsTheHash) {
  const auto dir = testDir("persist_poison");
  const auto log = (dir / "cache.jsonl").string();
  PersistentResultCache cache(log);
  cache.append(7, "material-A", proven("A"));
  ASSERT_TRUE(cache.lookup(7, "material-A").has_value());
  // A second material behind the same hash is a detected collision: the
  // hash is poisoned and neither verdict is served from then on.
  cache.append(7, "material-B", proven("B"));
  EXPECT_FALSE(cache.lookup(7, "material-A").has_value());
  EXPECT_FALSE(cache.lookup(7, "material-B").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PersistentCache, CompactKeepsOneLiveRecordPerKey) {
  const auto dir = testDir("persist_compact");
  const auto log = (dir / "cache.jsonl").string();
  const JobKey k1 = engine::makeJobKey("m1", job("P", "r", "h"), 0);
  const JobKey k2 = engine::makeJobKey("m2", job("P", "r", "h"), 0);
  writeFile(log,
            PersistentResultCache::encodeRecord(k1.hash, k1.material,
                                                proven("old")) +
                "\ngarbage line\n" +
                PersistentResultCache::encodeRecord(k1.hash, k1.material,
                                                    proven("new")) +
                "\n" +
                PersistentResultCache::encodeRecord(k2.hash, k2.material,
                                                    proven("two")) +
                "\n");
  EXPECT_EQ(PersistentResultCache::compact(log), 2u);
  PersistentResultCache reopened(log);
  EXPECT_EQ(reopened.replayStats().replayed, 2u);
  EXPECT_EQ(reopened.replayStats().skipped, 0u);
  EXPECT_EQ(reopened.replayStats().superseded, 0u);
  EXPECT_EQ(reopened.lookup(k1.hash, k1.material)->explanation, "new");
}

// ---------------------------------------------------------------- layering

TEST(LayeredCache, MemoryMissIsServedFromThePersistentLogAndPromoted) {
  const auto dir = testDir("layered_promote");
  const auto log = (dir / "cache.jsonl").string();
  const JobKey key = engine::makeJobKey("model", job("P", "r", "h"), 0);
  PersistentResultCache persistent(log);
  persistent.append(key.hash, key.material, proven("from the log"));

  ResultCache memory;
  memory.attachPersistent(&persistent);
  const auto hit = memory.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->explanation, "from the log");
  EXPECT_EQ(memory.hits(), 1u);
  EXPECT_EQ(memory.misses(), 0u);
  EXPECT_EQ(memory.size(), 1u);  // promoted into the LRU
}

TEST(LayeredCache, StoresReachThePersistentLog) {
  const auto dir = testDir("layered_store");
  const auto log = (dir / "cache.jsonl").string();
  const JobKey key = engine::makeJobKey("model", job("P", "r", "h"), 0);
  {
    PersistentResultCache persistent(log);
    ResultCache memory;
    memory.attachPersistent(&persistent);
    memory.store(key, proven("written through"));
    EXPECT_EQ(persistent.size(), 1u);
  }
  // A brand-new pair — the restart scenario — answers from the replayed log.
  PersistentResultCache reopened(log);
  ResultCache fresh;
  fresh.attachPersistent(&reopened);
  const auto hit = fresh.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->explanation, "written through");
}

// -------------------------------------------------------------- concurrency

TEST(CacheConcurrency, ParallelLookupsAndStoresStayConsistent) {
  const auto dir = testDir("concurrent");
  const auto log = (dir / "cache.jsonl").string();
  PersistentResultCache persistent(log, /*fsyncEachAppend=*/false);
  ResultCache cache(/*maxEntries=*/64);
  cache.attachPersistent(&persistent);
  TextCache texts;
  texts.prime("mem:shared", "shared text");

  constexpr int kThreads = 4;
  constexpr int kKeys = 32;
  std::vector<JobKey> keys;
  keys.reserve(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    keys.push_back(engine::makeJobKey("model " + std::to_string(k),
                                      job("P", "r", "h"), 0));
  }

  std::atomic<int> served{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 50; ++round) {
        const JobKey& key = keys[(t * 13 + round) % kKeys];
        if (const auto hit = cache.lookup(key)) {
          if (hit->status == JobStatus::Proven) served.fetch_add(1);
        } else {
          cache.store(key, proven("t" + std::to_string(t)));
        }
        texts.prime("mem:t" + std::to_string(t), "private");
        if (texts.get("mem:shared") != "shared text") std::abort();
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_GT(served.load(), 0);
  EXPECT_LE(cache.size(), 64u);
  EXPECT_EQ(cache.collisions(), 0u);
  for (const auto& key : keys) {
    EXPECT_TRUE(persistent.lookup(key.hash, key.material).has_value());
  }
}

}  // namespace
